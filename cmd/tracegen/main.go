// Command tracegen synthesizes the deployment traces of Table I.
//
//	tracegen -machine "Windows 7" -out win7.jsonl
//	tracegen -machine Linux-2 -format binary -out linux2.trace -aof linux2.aof
//
// The trace file carries the write/delete event stream; -aof additionally
// persists the populated TTKV so the repair tool can be pointed at it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ocasta/internal/trace"
	"ocasta/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	machine := flag.String("machine", "", "Table I machine name (see -list)")
	out := flag.String("out", "", "output trace file")
	format := flag.String("format", "jsonl", "trace format: jsonl or binary")
	aofPath := flag.String("aof", "", "also write the populated TTKV as an AOF")
	list := flag.Bool("list", false, "list machine profiles and exit")
	flag.Parse()

	if *list {
		for _, p := range workload.Profiles() {
			apps := make([]string, 0, len(p.Apps))
			for _, u := range p.Apps {
				apps = append(apps, u.Model.Name)
			}
			fmt.Printf("%-16s %3d days  apps: %s\n", p.Name, p.Days, strings.Join(apps, ", "))
		}
		return 0
	}
	if *machine == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -machine and -out are required (see -list)")
		return 2
	}
	p, ok := workload.ProfileByName(*machine)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown machine %q\n", *machine)
		return 2
	}
	res := workload.Generate(p)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		return 1
	}
	defer f.Close()
	switch *format {
	case "binary":
		err = trace.WriteBinary(f, res.Trace)
	case "jsonl":
		err = trace.WriteJSONL(f, res.Trace)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown format %q\n", *format)
		return 2
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen: writing trace:", err)
		return 1
	}

	if *aofPath != "" {
		af, err := os.Create(*aofPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			return 1
		}
		defer af.Close()
		if err := res.Store.WriteSnapshot(af); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen: writing AOF:", err)
			return 1
		}
	}

	st := res.Store.Stats()
	fmt.Printf("%s: %d events, %d keys accessed, %d writes, %d reads, TTKV %.1f MiB\n",
		p.Name, len(res.Trace.Events), res.AccessedKeys,
		st.Writes+st.Deletes, st.Reads, float64(st.ApproxBytes)/(1<<20))
	return 0
}
