// Command tracegen synthesizes the deployment traces of Table I.
//
//	tracegen -machine "Windows 7" -out win7.jsonl
//	tracegen -machine Linux-2 -format binary -out linux2.trace -aof linux2.aof
//
// The trace file carries the write/delete event stream; -aof additionally
// persists the populated TTKV so the repair tool can be pointed at it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ocasta/internal/trace"
	"ocasta/internal/workload"
)

func main() {
	os.Exit(run())
}

// writeAndClose runs write against f and closes it, reporting the first
// failure. For generated artifacts the close error is part of the
// durability verdict: a kernel flush failing at close would otherwise
// leave a truncated trace behind a successful exit status.
func writeAndClose(f *os.File, write func(io.Writer) error) error {
	if err := write(f); err != nil {
		_ = f.Close() // returning the write error; close is cleanup
		return err
	}
	return f.Close()
}

func run() int {
	machine := flag.String("machine", "", "Table I machine name (see -list)")
	out := flag.String("out", "", "output trace file")
	format := flag.String("format", "jsonl", "trace format: jsonl or binary")
	aofPath := flag.String("aof", "", "also write the populated TTKV as an AOF")
	list := flag.Bool("list", false, "list machine profiles and exit")
	flag.Parse()

	if *list {
		for _, p := range workload.Profiles() {
			apps := make([]string, 0, len(p.Apps))
			for _, u := range p.Apps {
				apps = append(apps, u.Model.Name)
			}
			fmt.Printf("%-16s %3d days  apps: %s\n", p.Name, p.Days, strings.Join(apps, ", "))
		}
		return 0
	}
	if *machine == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -machine and -out are required (see -list)")
		return 2
	}
	p, ok := workload.ProfileByName(*machine)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown machine %q\n", *machine)
		return 2
	}
	res := workload.Generate(p)

	var writeTrace func(io.Writer) error
	switch *format {
	case "binary":
		writeTrace = func(w io.Writer) error { return trace.WriteBinary(w, res.Trace) }
	case "jsonl":
		writeTrace = func(w io.Writer) error { return trace.WriteJSONL(w, res.Trace) }
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown format %q\n", *format)
		return 2
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		return 1
	}
	if err := writeAndClose(f, writeTrace); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen: writing trace:", err)
		return 1
	}

	if *aofPath != "" {
		af, err := os.Create(*aofPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			return 1
		}
		if err := writeAndClose(af, res.Store.WriteSnapshot); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen: writing AOF:", err)
			return 1
		}
	}

	st := res.Store.Stats()
	fmt.Printf("%s: %d events, %d keys accessed, %d writes, %d reads, TTKV %.1f MiB\n",
		p.Name, len(res.Trace.Events), res.AccessedKeys,
		st.Writes+st.Deletes, st.Reads, float64(st.ApproxBytes)/(1<<20))
	return 0
}
