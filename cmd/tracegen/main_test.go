package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// Regression for the stickyerr finding that led to writeAndClose: the
// trace and AOF outputs used to be closed via defer, so a close-time
// flush failure vanished and tracegen exited 0 with a truncated file.

func TestWriteAndCloseReportsCloseError(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The writer succeeds; the (already-closed) file makes Close fail,
	// and that failure must surface.
	err = writeAndClose(f, func(io.Writer) error { return nil })
	if !errors.Is(err, os.ErrClosed) {
		t.Fatalf("writeAndClose on a closed file = %v, want ErrClosed", err)
	}
}

func TestWriteAndClosePropagatesWriteError(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("write failed")
	if err := writeAndClose(f, func(io.Writer) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("writeAndClose = %v, want the write error", err)
	}
	// The file must still have been closed on the error path.
	if err := f.Close(); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("file was not closed on the write-error path (second close = %v)", err)
	}
}

func TestWriteAndCloseWritesThrough(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeAndClose(f, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "payload" {
		t.Fatalf("file contents = %q, want %q", data, "payload")
	}
}
