// Command ocasta is the front-end for clustering and repair:
//
//	ocasta cluster -trace win7.jsonl -app msword [-window 1s] [-threshold 2] [-linkage complete] [-parallelism 0]
//	ocasta stats   -trace win7.jsonl
//	ocasta repair  -fault 9 [-strategy dfs] [-noclust] [-parallelism 0]
//
// "repair" runs one of the paper's 16 error scenarios end to end on a
// freshly generated deployment, printing the search progress and the
// screenshots a user would inspect.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ocasta/internal/core"
	"ocasta/internal/repair"
	"ocasta/internal/repro"
	"ocasta/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var code int
	switch os.Args[1] {
	case "cluster":
		code = runCluster(os.Args[2:])
	case "stats":
		code = runStats(os.Args[2:])
	case "repair":
		code = runRepair(os.Args[2:])
	default:
		usage()
		code = 2
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ocasta <cluster|stats|repair> [flags]
  cluster -trace FILE -app NAME [-window D] [-threshold C] [-linkage L] [-parallelism N]
  stats   -trace FILE
  repair  -fault N [-strategy dfs|bfs] [-noclust] [-days N] [-parallelism N]`)
}

func loadTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//ocasta:allow stickyerr trace file opened read-only; no buffered writes to lose
	defer f.Close()
	head := make([]byte, 4)
	if _, err := f.Read(head); err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, 0); err != nil {
		return nil, err
	}
	if string(head) == "OCTR" {
		return trace.ReadBinary(f)
	}
	return trace.ReadJSONL(f)
}

func runCluster(args []string) int {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	path := fs.String("trace", "", "trace file (jsonl or binary)")
	app := fs.String("app", "", "application name to cluster")
	window := fs.Duration("window", time.Second, "co-modification window")
	threshold := fs.Float64("threshold", 2, "correlation threshold (0,2]")
	linkage := fs.String("linkage", "complete", "HAC linkage: complete, single, or average")
	parallelism := fs.Int("parallelism", 0, "concurrent component clustering bound (0 = all CPUs)")
	fs.Parse(args)
	if *path == "" || *app == "" {
		fmt.Fprintln(os.Stderr, "ocasta cluster: -trace and -app are required")
		return 2
	}
	link := core.LinkageComplete
	switch *linkage {
	case "complete":
	case "single":
		link = core.LinkageSingle
	case "average":
		link = core.LinkageAverage
	default:
		fmt.Fprintf(os.Stderr, "ocasta cluster: unknown -linkage %q\n", *linkage)
		return 2
	}
	tr, err := loadTrace(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocasta:", err)
		return 1
	}
	w := trace.NewWindower(*window, trace.GroupAnchored)
	ps := core.NewPairStats(w.GroupTrace(tr.ByApp(*app)))
	clusters := core.NewClusterer(link).
		WithParallelism(*parallelism).
		Cluster(ps, core.ThresholdFromCorrelation(*threshold))
	core.SortForRecovery(clusters)
	multi := 0
	for _, c := range clusters {
		if c.Size() > 1 {
			multi++
		}
	}
	fmt.Printf("%s: %d keys, %d clusters (%d with more than one setting)\n",
		*app, ps.NumKeys(), len(clusters), multi)
	for i, c := range clusters {
		if c.Size() < 2 {
			continue
		}
		fmt.Printf("cluster %d (modified %d times, last %s):\n",
			i, c.ModCount, c.LastModified.Format(time.RFC3339))
		for _, k := range c.Keys {
			fmt.Printf("  %s\n", k)
		}
	}
	return 0
}

func runStats(args []string) int {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	path := fs.String("trace", "", "trace file (jsonl or binary)")
	fs.Parse(args)
	if *path == "" {
		fmt.Fprintln(os.Stderr, "ocasta stats: -trace is required")
		return 2
	}
	tr, err := loadTrace(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocasta:", err)
		return 1
	}
	st := trace.Summarize(tr)
	fmt.Printf("%s: %d days, %d reads, %d writes (%d deletions), %d keys, %d apps\n",
		st.Name, st.Days, st.Reads, st.Writes, st.Deletes, st.Keys, st.Apps)
	return 0
}

func runRepair(args []string) int {
	fs := flag.NewFlagSet("repair", flag.ExitOnError)
	faultID := fs.Int("fault", 0, "Table III error id (1-16)")
	strategy := fs.String("strategy", "dfs", "search strategy: dfs or bfs")
	noclust := fs.Bool("noclust", false, "roll back one setting at a time (baseline)")
	days := fs.Int("days", repro.DefaultInjectionDays, "days before trace end to inject the error")
	parallelism := fs.Int("parallelism", 0, "concurrent component clustering bound (0 = all CPUs)")
	fs.Parse(args)
	repro.SetParallelism(*parallelism)
	if *faultID < 1 || *faultID > 16 {
		fmt.Fprintln(os.Stderr, "ocasta repair: -fault must be 1..16")
		return 2
	}
	strat := repair.StrategyDFS
	if *strategy == "bfs" {
		strat = repair.StrategyBFS
	}
	sc, err := repro.NewScenario(*faultID, *days, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocasta:", err)
		return 1
	}
	fmt.Printf("error #%d: %s\n", sc.Fault.ID, sc.Fault.Description)
	fmt.Printf("trace %s, app %s, injected %s\n",
		sc.Fault.TraceName, sc.Fault.Model().DisplayName, sc.InjectAt.Format(time.RFC3339))
	res, err := sc.Search(strat, *noclust)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocasta:", err)
		return 1
	}
	if !res.Found {
		fmt.Printf("no fix found after %d trials (%s simulated)\n", res.Trials, res.SimTime)
		return 1
	}
	fmt.Printf("fixed after %d trials (%s simulated; exhaustive search %s)\n",
		res.Trials, res.SimTime, res.SimTotalTime)
	fmt.Printf("offending cluster (%d settings):\n", res.Offending.Size())
	for _, k := range res.Offending.Keys {
		fmt.Printf("  %s\n", k)
	}
	fmt.Printf("screenshots the user examined (%d):\n", len(res.Screenshots))
	for _, s := range res.Screenshots {
		fmt.Printf("--- screenshot at trial %d ---\n%s", s.Trial, s.Rendered)
	}
	return 0
}
