package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ocasta/internal/backup"
	"ocasta/internal/ttkv"
)

// runRestore implements "ttkvd restore": offline point-in-time recovery
// from a backup directory into a fresh AOF, plus -verify-only for
// restore drills. It is a separate mode rather than a daemon flag
// because disaster recovery must not depend on a healthy daemon — it
// reads only the backup set and writes only the new AOF.
//
//	ttkvd restore -backup-dir /var/backups/ocasta -out /var/lib/ocasta/store.aof
//	ttkvd restore -backup-dir ... -out ... -at 2026-08-07T12:00:00Z
//	ttkvd restore -backup-dir ... -out ... -at 123456
//	ttkvd restore -backup-dir ... -verify-only
func runRestore(argv []string) int {
	fs := flag.NewFlagSet("ttkvd restore", flag.ExitOnError)
	dir := fs.String("backup-dir", "", "backup directory to restore from (required)")
	out := fs.String("out", "", "path for the restored AOF (required unless -verify-only)")
	at := fs.String("at", "", "restore point: a store sequence number or an RFC 3339 time (default: everything the newest backup covers)")
	shards := fs.Int("shards", ttkv.DefaultShards, "shard count of the staging store the chain is replayed into")
	verifyOnly := fs.Bool("verify-only", false, "verify the backup set (checksums, ranges, chains) and exit without restoring")
	force := fs.Bool("force", false, "overwrite an existing -out file")
	fs.Parse(argv) //nolint:errcheck — ExitOnError

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "ttkvd restore: -backup-dir is required")
		return 2
	}
	if *verifyOnly {
		return runVerify(*dir)
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "ttkvd restore: -out is required (or pass -verify-only)")
		return 2
	}
	if !*force {
		if _, err := os.Stat(*out); err == nil {
			fmt.Fprintf(os.Stderr, "ttkvd restore: %s exists; pass -force to overwrite\n", *out)
			return 2
		}
	}
	target, err := backup.ParseTarget(*at)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttkvd restore: -at:", err)
		return 2
	}

	start := time.Now()
	info, err := backup.RestoreToAOF(*dir, target, *out, *shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttkvd restore:", err)
		return 1
	}
	fmt.Printf("ttkvd restore: %d of %d records (chain of %d, head %s, covers up to seq %d) -> %s, applied seq %d, in %v\n",
		info.RecordsApplied, info.RecordsRead, info.ChainLen, info.HeadID, info.UpTo, *out,
		info.AppliedSeq, time.Since(start).Round(time.Millisecond))
	return 0
}

// runVerify prints a verification report for a backup directory;
// exit 0 means every backup in it is restorable.
func runVerify(dir string) int {
	rep, err := backup.VerifyDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttkvd restore:", err)
		return 1
	}
	fmt.Printf("ttkvd restore: verified %s: %d backups (%d full), %d record files, %d records, %d bytes\n",
		dir, rep.Manifests, rep.Fulls, rep.DataFiles, rep.Records, rep.Bytes)
	if len(rep.TempFiles) > 0 {
		fmt.Printf("ttkvd restore: %d temp files from an interrupted backup (harmless; swept by pruning)\n", len(rep.TempFiles))
	}
	if len(rep.Orphans) > 0 {
		fmt.Printf("ttkvd restore: %d unreferenced record files (harmless; swept by pruning)\n", len(rep.Orphans))
	}
	if !rep.OK() {
		for _, issue := range rep.Issues {
			fmt.Fprintln(os.Stderr, "ttkvd restore: ISSUE:", issue)
		}
		fmt.Fprintf(os.Stderr, "ttkvd restore: verification FAILED with %d issues\n", len(rep.Issues))
		return 1
	}
	fmt.Println("ttkvd restore: verification OK")
	return 0
}
