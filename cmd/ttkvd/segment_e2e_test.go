package main

// End-to-end coverage for -aof-dir: the daemon persists into sealed,
// checksummed segments, reproduces the exact history on restart via
// parallel segment replay, serves replica catch-up from a segmented
// primary, and compacts by retiring whole segments at startup.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ocasta/internal/ttkv"
	"ocasta/internal/ttkvwire"
)

const segKeys = 32

func segKeyName(i int) string { return fmt.Sprintf("/seg/app%d/key%d", i%4, i) }

func TestDaemonSegmentedE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon")
	}
	bin := buildDaemon(t)
	dir := filepath.Join(t.TempDir(), "segments")
	flags := []string{"-aof-dir", dir, "-segment-bytes", "4096", "-fsync", "always"}

	addr, stop := startDaemon(t, bin, flags...)
	cl, err := ttkvwire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}

	// Sequential Sets so every write is its own group-commit batch:
	// batches never split across a roll, so small batches are what lets
	// the 4KiB segment cap actually produce rolls.
	base := time.Unix(1_750_000_000, 0).UTC()
	for v := 0; v < 8; v++ {
		for i := 0; i < segKeys; i++ {
			if err := cl.Set(segKeyName(i), fmt.Sprintf("v%d-%d", i, v), base.Add(time.Duration(v)*time.Minute)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := cl.Delete(segKeyName(7), base.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	want := make(map[string][]ttkv.Version, segKeys)
	for i := 0; i < segKeys; i++ {
		h, err := cl.History(segKeyName(i))
		if err != nil {
			t.Fatal(err)
		}
		want[segKeyName(i)] = h
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	stop()

	// The directory holds rolled segment files plus the manifest.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs, manifest := 0, false
	for _, e := range entries {
		switch {
		case strings.HasPrefix(e.Name(), "seg-") && strings.HasSuffix(e.Name(), ".ock"):
			segs++
		case e.Name() == "segments.idx":
			manifest = true
		}
	}
	if segs < 2 || !manifest {
		t.Fatalf("segment dir after shutdown: %d segment files, manifest=%v (want >=2, true)", segs, manifest)
	}

	// Restart on the same directory: parallel replay must reproduce the
	// history exactly, and the segmented primary must stream it to a
	// replica (catch-up is served straight from the segment files).
	addr, stop = startDaemon(t, bin, flags...)
	cl, err = ttkvwire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for key, wh := range want {
		h, err := cl.History(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(h) != len(wh) {
			t.Fatalf("History(%s) after restart: %d versions, want %d", key, len(h), len(wh))
		}
		for i := range h {
			if h[i].Value != wh[i].Value || h[i].Deleted != wh[i].Deleted || !h[i].Time.Equal(wh[i].Time) {
				t.Fatalf("History(%s)[%d] after restart: %+v, want %+v", key, i, h[i], wh[i])
			}
		}
	}

	raddr, _, stopReplica := startDaemonKillable(t, bin, "-replica-of", addr)
	rcl, err := ttkvwire.Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		pst, err := cl.ReplStatus()
		if err != nil {
			t.Fatal(err)
		}
		rst, err := rcl.ReplStatus()
		if err != nil {
			t.Fatal(err)
		}
		if rst.AppliedSeq == pst.DurableSeq && pst.DurableSeq > 0 && rst.State == "streaming" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never drained from segmented primary: primary %+v, replica %+v", pst, rst)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, key := range []string{segKeyName(0), segKeyName(7), segKeyName(31)} {
		ph, err := cl.History(key)
		if err != nil {
			t.Fatal(err)
		}
		rh, err := rcl.History(key)
		if err != nil || len(rh) != len(ph) {
			t.Fatalf("replica History(%s): %d vs %d versions (%v)", key, len(rh), len(ph), err)
		}
	}
	stopReplica()
	stop()

	// Startup compaction retires whole segments: only the newest version
	// of each key survives a -retain 1 restart.
	addr, stop = startDaemon(t, bin, append(flags, "-compact", "-retain", "1")...)
	ccl, err := ttkvwire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ccl.Close()
	for i := 0; i < segKeys; i++ {
		key := segKeyName(i)
		h, err := ccl.History(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(h) != 1 {
			t.Fatalf("History(%s) after compaction: %d versions, want 1", key, len(h))
		}
		last := want[key][len(want[key])-1]
		if h[0].Value != last.Value || h[0].Deleted != last.Deleted || !h[0].Time.Equal(last.Time) {
			t.Fatalf("History(%s) after compaction: %+v, want %+v", key, h[0], last)
		}
	}
	stop()
}
