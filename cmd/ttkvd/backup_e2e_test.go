package main

// End-to-end disaster-recovery drill: run the real ttkvd with an AOF and
// a backup directory, take a full and an incremental backup over the
// wire while writing, SIGKILL the daemon, corrupt the live AOF, and
// prove "ttkvd restore" rebuilds a byte-identical store — at latest, at
// a sequence number, and at a wall-clock instant — then serves reads
// from the restored AOF.

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"ocasta/internal/ttkv"
	"ocasta/internal/ttkvwire"
)

// dumpStore snapshots a store to bytes for equivalence checks.
func dumpStore(t *testing.T, s *ttkv.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runRestoreCmd invokes the ttkvd restore subcommand and returns its
// combined output, failing the test on a non-zero exit.
func runRestoreCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"restore"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("ttkvd restore %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestDaemonBackupRestoreDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	aof := filepath.Join(dir, "store.aof")
	bdir := filepath.Join(dir, "backups")

	// -fsync always so every acked write is on disk: the SIGKILL below
	// loses nothing, making the post-corruption ground truth exact.
	addr, proc, _ := startDaemonKillable(t, bin,
		"-aof", aof,
		"-fsync", "always",
		"-backup-dir", bdir,
		"-recluster-interval", "0",
	)
	client, err := ttkvwire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Phase 1: a versioned config workload, stamped in the past.
	base := time.Now().Add(-time.Hour).Truncate(time.Second).UTC()
	ts := func(i int) time.Time { return base.Add(time.Duration(i) * time.Millisecond) }
	n := 0
	write := func(key, val string) {
		t.Helper()
		n++
		if err := client.Set(key, val, ts(n)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 120; i++ {
		write(fmt.Sprintf("/etc/app/%02d.conf", i%15), fmt.Sprintf("phase1-rev%d", i))
	}
	if err := client.Delete("/etc/app/03.conf", ts(n+1)); err != nil {
		t.Fatal(err)
	}
	n++

	full, err := client.Backup("full")
	if err != nil {
		t.Fatalf("BACKUP FULL: %v", err)
	}
	if full.Kind != "full" || full.UpTo == 0 {
		t.Fatalf("full = %+v", full)
	}

	// Phase 2: more churn, then the point-in-time cut we will restore to.
	for i := 0; i < 60; i++ {
		write(fmt.Sprintf("/etc/app/%02d.conf", i%15), fmt.Sprintf("phase2-rev%d", i))
	}
	cut := ts(n) // everything at or before here survives an -at restore
	for i := 0; i < 40; i++ {
		write(fmt.Sprintf("/etc/app/%02d.conf", i%15), fmt.Sprintf("phase3-rev%d", i))
	}

	incr, err := client.Backup("incr")
	if err != nil {
		t.Fatalf("BACKUP INCR: %v", err)
	}
	if incr.Parent != full.ID || incr.Base != full.UpTo {
		t.Fatalf("incr = %+v (full %+v)", incr, full)
	}
	list, err := client.Backups()
	if err != nil || len(list) != 2 {
		t.Fatalf("BSTAT = %+v, %v", list, err)
	}

	// Ground truth for the time-target restore, recorded over the wire
	// from the live daemon before the disaster.
	keys, err := client.Keys()
	if err != nil {
		t.Fatal(err)
	}
	atCut := make(map[string]ttkv.Version, len(keys))
	for _, k := range keys {
		v, err := client.GetAt(k, cut)
		if err != nil {
			t.Fatalf("GetAt(%s): %v", k, err)
		}
		atCut[k] = v
	}

	// Disaster: SIGKILL the daemon, then corrupt the live AOF the way a
	// bad disk would — flip bytes in the middle and tear off the tail.
	if err := proc.Kill(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(aof)
	if err != nil {
		t.Fatal(err)
	}
	reference, err := ttkv.LoadAOF(aof) // pre-corruption ground truth
	if err != nil {
		t.Fatal(err)
	}
	mangled := append([]byte(nil), raw...)
	for i := len(mangled) / 3; i < len(mangled)/3+64 && i < len(mangled); i++ {
		mangled[i] ^= 0xA5
	}
	mangled = mangled[:len(mangled)*4/5]
	if err := os.WriteFile(aof, mangled, 0o644); err != nil {
		t.Fatal(err)
	}

	// The drill proper: verify the backup set, restore it, compare dumps.
	out := runRestoreCmd(t, bin, "-backup-dir", bdir, "-verify-only")
	t.Logf("verify-only: %s", out)

	restoredAOF := filepath.Join(dir, "restored.aof")
	runRestoreCmd(t, bin, "-backup-dir", bdir, "-out", restoredAOF)
	restored, err := ttkv.LoadAOF(restoredAOF)
	if err != nil {
		t.Fatalf("loading restored AOF: %v", err)
	}
	if !bytes.Equal(dumpStore(t, restored), dumpStore(t, reference)) {
		t.Fatal("restored dump differs from the pre-corruption AOF state")
	}
	if restored.CurrentSeq() != reference.CurrentSeq() {
		t.Fatalf("restored seq %d, want %d", restored.CurrentSeq(), reference.CurrentSeq())
	}

	// Sequence-target restore: the full backup's boundary must equal the
	// reference store's pinned view at that seq.
	seqAOF := filepath.Join(dir, "at-seq.aof")
	runRestoreCmd(t, bin, "-backup-dir", bdir, "-out", seqAOF, "-at", fmt.Sprint(full.UpTo))
	atSeq, err := ttkv.LoadAOF(seqAOF)
	if err != nil {
		t.Fatal(err)
	}
	view := reference.ViewAt(full.UpTo)
	if got, want := atSeq.Keys(), view.Keys(); len(got) != len(want) {
		t.Fatalf("at-seq restore has %d keys, want %d", len(got), len(want))
	}
	for _, k := range view.Keys() {
		want, _ := view.History(k)
		got, err := atSeq.History(k)
		if err != nil || len(got) != len(want) {
			t.Fatalf("at-seq key %s: %d versions (%v), want %d", k, len(got), err, len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("at-seq key %s version %d: %+v != %+v", k, i, got[i], want[i])
			}
		}
	}

	// Time-target restore: checked against the GetAt answers the live
	// daemon gave before it died.
	timeAOF := filepath.Join(dir, "at-time.aof")
	runRestoreCmd(t, bin, "-backup-dir", bdir, "-out", timeAOF, "-at", cut.Format(time.RFC3339Nano))
	atTime, err := ttkv.LoadAOF(timeAOF)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range atCut {
		got, err := atTime.GetAt(k, cut)
		if err != nil {
			t.Fatalf("restored GetAt(%s): %v", k, err)
		}
		// The wire GETAT reply carries value/time/deleted but not seq, so
		// the recorded ground truth compares those three fields.
		if got.Value != want.Value || got.Deleted != want.Deleted || !got.Time.Equal(want.Time) {
			t.Fatalf("key %s at cut: %+v, want %+v", k, got, want)
		}
	}

	// Back in business: a fresh daemon serves reads from the restored AOF.
	addr2, stop2 := startDaemon(t, bin, "-aof", restoredAOF, "-recluster-interval", "0")
	client2, err := ttkvwire.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	v, err := client2.Get("/etc/app/00.conf")
	if err != nil {
		t.Fatal(err)
	}
	ref, ok := reference.Get("/etc/app/00.conf")
	if !ok || v != ref {
		t.Fatalf("restored daemon Get = %q, want %q", v, ref)
	}
	stop2()
}
