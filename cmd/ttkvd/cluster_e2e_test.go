package main

// End-to-end hash-slot cluster test against the real daemon: three
// partitions of the default slot space, partition 0 served by a failover
// pair, the others by plain primaries. Covers MOVED redirects over the
// wire, globally-merged analytics (a co-modification window spanning two
// partitions must surface in CLUSTERS on a third node), riding through a
// SIGKILLed partition leader, and rehoming a live slot with the migrate
// subcommand without losing history.

import (
	"context"
	"errors"
	"fmt"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"ocasta/internal/ttkv"
	"ocasta/internal/ttkvwire"
)

func TestDaemonClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon")
	}
	bin := buildDaemon(t)
	addrs := freeAddrs(t, 4) // [a1 a2 b c]: a1+a2 form partition 0's failover pair
	a1, a2, b, c := addrs[0], addrs[1], addrs[2], addrs[3]
	const slots = ttkv.DefaultSlotCount
	r0, r1, r2 := "0-5461", "5462-10922", "10923-16383"

	peersFor := func(ranges ...string) string { return strings.Join(ranges, ",") }
	common := []string{"-recluster-interval", "50ms"}
	launch := func(addr string, extra ...string) (proc interface{ Kill() error }, stop func()) {
		args := append(append([]string{}, common...), extra...)
		args = append(args, "-addr", addr) // overrides the helper's :0
		_, p, s := startDaemonKillable(t, bin, args...)
		return p, s
	}
	procA1, _ := launch(a1,
		"-failover", "-peers", a2, "-lease-interval", "100ms",
		"-slot-range", r0, "-slot-peers", peersFor(r1+"="+b, r2+"="+c))
	_, stopA2 := launch(a2,
		"-failover", "-peers", a1, "-replica-of", a1,
		"-slot-range", r0, "-slot-peers", peersFor(r1+"="+b, r2+"="+c))
	defer stopA2()
	_, stopB := launch(b,
		"-slot-range", r1, "-slot-peers", peersFor(r0+"="+a1, r2+"="+c))
	defer stopB()
	_, stopC := launch(c,
		"-slot-range", r2, "-slot-peers", peersFor(r0+"="+a1, r1+"="+b))
	defer stopC()

	keyInRange := func(prefix string, lo, hi int) string {
		for i := 0; ; i++ {
			k := fmt.Sprintf("%s%d", prefix, i)
			if s := ttkv.KeySlot(k, slots); s >= lo && s <= hi {
				return k
			}
		}
	}
	kA := keyInRange("/e2e/a", 0, 5461)
	kB := keyInRange("/e2e/b", 5462, 10922)
	kC := keyInRange("/e2e/c", 10923, 16383)

	ctx := context.Background()
	fc, err := ttkvwire.DialCluster(ctx,
		ttkvwire.WithPeers(addrs...),
		ttkvwire.WithCallTimeout(5*time.Second),
		ttkvwire.WithMaxRedirects(40),
		ttkvwire.WithRetryBackoff(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	// Co-modified cross-partition pair (kA on the failover group, kB on
	// node b), stamped live so every node's drainer-fed engine windows
	// them together; kC is background noise on the third partition.
	for i := 0; i < 3; i++ {
		ts := time.Now()
		for _, k := range []string{kA, kB} {
			if err := fc.Set(ctx, k, fmt.Sprintf("v%d", i), ts); err != nil {
				t.Fatalf("Set %s: %v", k, err)
			}
		}
		if err := fc.Set(ctx, kC, fmt.Sprintf("n%d", i), ts.Add(400*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A write for a foreign slot is refused with MOVED naming the owner.
	bcl, err := ttkvwire.Dial(b)
	if err != nil {
		t.Fatal(err)
	}
	defer bcl.Close()
	var moved *ttkvwire.ErrNotLeader
	if werr := bcl.Set(kA, "wrong-node", time.Now()); !errors.As(werr, &moved) || moved.Leader != a1 {
		t.Fatalf("foreign-slot write to %s: %v, want MOVED %s", b, werr, a1)
	}

	// Global analytics: node c never saw kA or kB locally, but its
	// drainer merges every partition's stream, so the cross-partition
	// pair must appear as one cluster there.
	ccl, err := ttkvwire.Dial(c)
	if err != nil {
		t.Fatal(err)
	}
	defer ccl.Close()
	waitCond(t, 15*time.Second, "cross-partition cluster on node c", func() bool {
		snap, err := ccl.Clusters(2)
		if err != nil {
			return false
		}
		for _, cl := range snap.Clusters {
			hasA, hasB := false, false
			for _, k := range cl.Keys {
				hasA = hasA || k == kA
				hasB = hasB || k == kB
			}
			if hasA && hasB {
				return true
			}
		}
		return false
	})

	// SIGKILL partition 0's leader: the pair's replica promotes and the
	// slot-aware client rides through on the same keys.
	if err := procA1.Kill(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 10*time.Second, "partition 0 replica self-promotes", func() bool {
		topo, err := topoOf(a2)
		return err == nil && topo.Role == ttkvwire.RolePrimary
	})
	if err := fc.Set(ctx, kA, "post-failover", time.Now()); err != nil {
		t.Fatalf("write to failed partition after promotion: %v", err)
	}
	if got, err := fc.Get(ctx, kA); err != nil || got != "post-failover" {
		t.Fatalf("read-back after failover: %q, %v", got, err)
	}

	// Rehome kB's slot from b to c with the operator subcommand; the
	// history must survive the move and ownership must flip both ways.
	slotB := ttkv.KeySlot(kB, slots)
	out, err := exec.Command(bin, "migrate",
		"-from", b, "-to", c, "-slots", strconv.Itoa(slotB)).CombinedOutput()
	if err != nil {
		t.Fatalf("ttkvd migrate: %v\n%s", err, out)
	}
	beforeHist, err := ccl.History(kB)
	if err != nil {
		t.Fatalf("history on new owner after migrate: %v", err)
	}
	if len(beforeHist) != 3 {
		t.Fatalf("migrated history has %d versions, want 3\n%s", len(beforeHist), out)
	}
	if werr := bcl.Set(kB, "stale-owner", time.Now()); !errors.As(werr, &moved) || moved.Leader != c {
		t.Fatalf("write to old owner after migrate: %v, want MOVED %s", werr, c)
	}
	if err := ccl.Set(kB, "rehomed", time.Now()); err != nil {
		t.Fatalf("write on new owner: %v", err)
	}
	if err := fc.Set(ctx, kB, "rehomed-via-client", time.Now()); err != nil {
		t.Fatalf("client write after migration: %v", err)
	}
	if got, err := fc.Get(ctx, kB); err != nil || got != "rehomed-via-client" {
		t.Fatalf("client read after migration: %q, %v", got, err)
	}
}
