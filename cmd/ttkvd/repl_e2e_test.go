package main

// End-to-end replicated-pair test: build the real ttkvd, run a primary
// and a -replica-of read replica as child processes, replay a workload
// over the wire, and assert the replica serves identical reads, history,
// and locally-computed clusters; that it rejects writes; and — after
// SIGKILLing the primary — that it keeps answering GET/GetAt/CLUSTERS.

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"ocasta/internal/ttkvwire"
)

// startDaemonKillable launches ttkvd like startDaemon but also returns
// the process handle so tests can SIGKILL it; its stop function tolerates
// an already-dead process.
func startDaemonKillable(t *testing.T, bin string, extra ...string) (addr string, proc *os.Process, stop func()) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	lines := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for lines.Scan() {
			if _, rest, ok := strings.Cut(lines.Text(), "serving on "); ok {
				addrCh <- strings.Fields(rest)[0]
			}
		}
	}()
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not report its listen address")
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		cmd.Process.Signal(os.Interrupt) //nolint:errcheck — may already be dead
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Error("daemon did not exit")
		}
	}
	t.Cleanup(stop)
	return addr, cmd.Process, stop
}

func TestDaemonReplicationE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon")
	}
	bin := buildDaemon(t)
	paddr, pproc, _ := startDaemonKillable(t, bin, "-recluster-interval", "50ms")
	raddr, _, stopReplica := startDaemonKillable(t, bin,
		"-replica-of", paddr,
		"-recluster-interval", "50ms",
	)

	pcl, err := ttkvwire.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pcl.Close()
	rcl, err := ttkvwire.Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()

	// A co-modified pair plus background noise, stamped in the past so
	// the analytics watermark (advanced to the wall clock each tick)
	// closes every group.
	base := time.Now().Add(-24 * time.Hour).Truncate(time.Second)
	pipe := pcl.Pipeline()
	const pairA, pairB = "/apps/demo/pair_a", "/apps/demo/pair_b"
	for i := 0; i < 8; i++ {
		ts := base.Add(time.Duration(i) * 10 * time.Second)
		pipe.Set(pairA, fmt.Sprintf("a%d", i), ts)
		pipe.Set(pairB, fmt.Sprintf("b%d", i), ts)
		pipe.Set(fmt.Sprintf("/noise/k%d", i), "n", ts.Add(3*time.Second))
	}
	if err := pipe.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := pcl.Delete("/noise/k0", base.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	// Wait until the replica has applied everything the primary holds.
	deadline := time.Now().Add(30 * time.Second)
	for {
		pst, err := pcl.ReplStatus()
		if err != nil {
			t.Fatal(err)
		}
		rst, err := rcl.ReplStatus()
		if err != nil {
			t.Fatal(err)
		}
		if pst.Role != "primary" {
			t.Fatalf("primary REPLSTAT role = %q", pst.Role)
		}
		if rst.Role != "replica" {
			t.Fatalf("replica REPLSTAT role = %q", rst.Role)
		}
		if rst.AppliedSeq == pst.DurableSeq && pst.DurableSeq > 0 && rst.State == "streaming" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never drained: primary %+v, replica %+v", pst, rst)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Replica reads match the primary exactly.
	for _, key := range []string{pairA, pairB, "/noise/k3"} {
		pv, perr := pcl.Get(key)
		rv, rerr := rcl.Get(key)
		if pv != rv || !errors.Is(rerr, perr) && (perr != nil || rerr != nil) {
			t.Fatalf("Get(%s): primary (%q,%v) replica (%q,%v)", key, pv, perr, rv, rerr)
		}
		ph, err := pcl.History(key)
		if err != nil {
			t.Fatal(err)
		}
		rh, err := rcl.History(key)
		if err != nil || len(ph) != len(rh) {
			t.Fatalf("History(%s): %d vs %d versions (%v)", key, len(ph), len(rh), err)
		}
	}
	midpoint := base.Add(35 * time.Second)
	pver, err := pcl.GetAt(pairA, midpoint)
	if err != nil {
		t.Fatal(err)
	}
	rver, err := rcl.GetAt(pairA, midpoint)
	if err != nil || rver.Value != pver.Value || !rver.Time.Equal(pver.Time) {
		t.Fatalf("GetAt: primary %+v, replica %+v (%v)", pver, rver, err)
	}

	// Writes are rejected on the replica with a typed redirect carrying
	// the primary's address.
	err = rcl.Set("/nope", "x", time.Now())
	if !errors.Is(err, ttkvwire.ErrReadOnly) {
		t.Fatalf("replica SET err = %v, want errors.Is(err, ErrReadOnly)", err)
	}
	var moved *ttkvwire.ErrNotLeader
	if !errors.As(err, &moved) || moved.Leader != paddr {
		t.Fatalf("replica SET err = %v, want MOVED redirect to %s", err, paddr)
	}

	// The replica's own engine clusters the replicated stream.
	for {
		snap, err := rcl.Clusters(2)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, cl := range snap.Clusters {
			if cl.Contains(pairA) && cl.Contains(pairB) {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never clustered the pair: %+v", snap.Clusters)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Kill the primary outright. The replica must keep serving reads,
	// history, and clusters from its local store and engine.
	if err := pproc.Kill(); err != nil {
		t.Fatal(err)
	}
	pproc.Wait() //nolint:errcheck — reap
	if v, err := rcl.Get(pairA); err != nil || v != "a7" {
		t.Fatalf("replica Get after primary death = %q, %v", v, err)
	}
	if ver, err := rcl.GetAt(pairA, midpoint); err != nil || ver.Value != pver.Value {
		t.Fatalf("replica GetAt after primary death = %+v, %v", ver, err)
	}
	if snap, err := rcl.Clusters(2); err != nil || len(snap.Clusters) == 0 {
		t.Fatalf("replica Clusters after primary death = %+v, %v", snap, err)
	}
	// And report a non-streaming state once the dead feed is noticed.
	stateDeadline := time.Now().Add(30 * time.Second)
	for {
		st, err := rcl.ReplStatus()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "streaming" {
			break
		}
		if time.Now().After(stateDeadline) {
			t.Fatalf("replica still claims streaming from a dead primary: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Clean SIGTERM shutdown of the replica (its reconnect loop must not
	// wedge shutdown while the primary is gone).
	stopReplica()
}

// TestDaemonReplFlagValidation covers the new replication flag rejects.
func TestDaemonReplFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon")
	}
	bin := buildDaemon(t)
	for _, args := range [][]string{
		{"-replica-of", "127.0.0.1:1", "-aof", "/tmp/x.aof"},
		{"-repl-outbox", "0"},
	} {
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 2 {
			t.Errorf("%v: err = %v (out %q), want exit 2", args, err, out)
		}
	}
}
