package main

// End-to-end automatic-failover test against the real daemon: three
// ttkvd processes form a failover group; the primary is SIGKILLed, the
// highest-applied replica must self-promote and serve writes, a
// cluster-aware client must ride through the failover, and the revived
// stale primary must fence itself, redirect writes, and reconverge on
// the new leader's history.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"ocasta/internal/ttkvwire"
)

// freeAddrs reserves n distinct loopback addresses. The listeners are
// closed before the daemons start; the tiny reuse race is acceptable in
// tests.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// topoOf fetches one node's TOPO with a short-lived connection; errors
// are returned rather than fatal so pollers can tolerate nodes that are
// down or mid-transition.
func topoOf(addr string) (ttkvwire.Topology, error) {
	cl, err := ttkvwire.Dial(addr)
	if err != nil {
		return ttkvwire.Topology{}, err
	}
	defer cl.Close()
	return cl.Topology()
}

// nodeHistory reads a node's full keyspace and per-key histories into a
// comparable form.
func nodeHistory(addr string) (map[string][]string, error) {
	cl, err := ttkvwire.Dial(addr)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	keys, err := cl.Keys()
	if err != nil {
		return nil, err
	}
	hist := make(map[string][]string, len(keys))
	for _, k := range keys {
		versions, err := cl.History(k)
		if err != nil {
			return nil, err
		}
		for _, v := range versions {
			hist[k] = append(hist[k], fmt.Sprintf("%s@%d:%d:%v", v.Value, v.Seq, v.Time.UnixNano(), v.Deleted))
		}
	}
	return hist, nil
}

func waitCond(t *testing.T, timeout time.Duration, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", timeout, msg)
}

func TestDaemonFailoverE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon")
	}
	bin := buildDaemon(t)
	addrs := freeAddrs(t, 3)
	lease := 100 * time.Millisecond
	peersOf := func(i int) string {
		var others []string
		for j, a := range addrs {
			if j != i {
				others = append(others, a)
			}
		}
		return strings.Join(others, ",")
	}
	// startDaemonKillable pins -addr 127.0.0.1:0 first; repeating -addr
	// overrides it (the flag package keeps the last occurrence).
	launch := func(i int, extra ...string) (proc interface{ Kill() error }, stop func()) {
		args := []string{
			"-failover",
			"-peers", peersOf(i),
			"-lease-interval", lease.String(),
			"-recluster-interval", "0",
			"-addr", addrs[i],
		}
		args = append(args, extra...)
		_, p, s := startDaemonKillable(t, bin, args...)
		return p, s
	}

	proc0, _ := launch(0)
	_, stop1 := launch(1, "-replica-of", addrs[0])
	defer stop1()
	_, stop2 := launch(2, "-replica-of", addrs[0])
	defer stop2()

	// Seed a workload through the cluster-aware client.
	ctx := context.Background()
	fc, err := ttkvwire.DialCluster(ctx,
		ttkvwire.WithPeers(addrs...),
		ttkvwire.WithCallTimeout(5*time.Second),
		ttkvwire.WithMaxRedirects(40),
		ttkvwire.WithRetryBackoff(20*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if fc.Leader() != addrs[0] {
		t.Fatalf("client discovered leader %s, want %s", fc.Leader(), addrs[0])
	}
	base := time.Now()
	for i := 0; i < 30; i++ {
		if err := fc.Set(ctx, fmt.Sprintf("/fo/k%02d", i), fmt.Sprintf("v%d", i), base.Add(time.Duration(i)*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, 10*time.Second, "replicas caught up", func() bool {
		for _, a := range addrs[1:] {
			topo, err := topoOf(a)
			if err != nil || topo.AppliedSeq < 30 {
				return false
			}
		}
		return true
	})

	// SIGKILL the primary: a replica must self-promote at epoch 2. The
	// lease detector needs 2 intervals of silence before the election;
	// the bound here leaves CI scheduling slack on top.
	if err := proc0.Kill(); err != nil {
		t.Fatal(err)
	}
	killedAt := time.Now()
	var newPrimary string
	waitCond(t, 10*time.Second, "a replica self-promotes", func() bool {
		for _, a := range addrs[1:] {
			if topo, err := topoOf(a); err == nil && topo.Role == ttkvwire.RolePrimary && topo.Epoch == 2 {
				newPrimary = a
				return true
			}
		}
		return false
	})
	t.Logf("promotion observed %v after SIGKILL (lease %v)", time.Since(killedAt), lease)

	// The surviving replica re-follows the winner, and the cluster
	// client rides through the failover without reconfiguration.
	other := addrs[1]
	if other == newPrimary {
		other = addrs[2]
	}
	waitCond(t, 10*time.Second, "survivor follows the new primary", func() bool {
		topo, err := topoOf(other)
		return err == nil && topo.Role == ttkvwire.RoleReplica && topo.Leader == newPrimary
	})
	if err := fc.Set(ctx, "/fo/after", "survived", base.Add(time.Second)); err != nil {
		t.Fatalf("write through failover client after kill: %v", err)
	}
	if got, err := fc.Get(ctx, "/fo/after"); err != nil || got != "survived" {
		t.Fatalf("read-back after failover: %q, %v", got, err)
	}
	waitCond(t, 10*time.Second, "post-failover write replicated", func() bool {
		cl, err := ttkvwire.Dial(other)
		if err != nil {
			return false
		}
		defer cl.Close()
		v, err := cl.Get("/fo/after")
		return err == nil && v == "survived"
	})

	// Revive the old primary with its original (primary) configuration:
	// fencing must demote it under the epoch-2 leader.
	_, stopRevived := launch(0)
	defer stopRevived()
	waitCond(t, 10*time.Second, "revived primary fenced to replica", func() bool {
		topo, err := topoOf(addrs[0])
		return err == nil && topo.Role == ttkvwire.RoleReplica && topo.Leader == newPrimary
	})
	rcl, err := ttkvwire.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	werr := rcl.Set("/fo/fenced", "no", base.Add(2*time.Second))
	var moved *ttkvwire.ErrNotLeader
	if !errors.Is(werr, ttkvwire.ErrReadOnly) || !errors.As(werr, &moved) || moved.Leader != newPrimary {
		t.Fatalf("write to fenced node: %v, want MOVED %s", werr, newPrimary)
	}

	// All three nodes converge on identical histories.
	waitCond(t, 15*time.Second, "histories identical on all nodes", func() bool {
		ref, err := nodeHistory(addrs[0])
		if err != nil {
			return false
		}
		for _, a := range addrs[1:] {
			h, err := nodeHistory(a)
			if err != nil || !reflect.DeepEqual(h, ref) {
				return false
			}
		}
		return true
	})
}
