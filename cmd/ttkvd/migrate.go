package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"ocasta/internal/ttkv"
	"ocasta/internal/ttkvwire"
)

// runMigrate implements "ttkvd migrate": rehome hash slots from one live
// primary to another without losing acked writes. It drives the MIGSTART
// / MIGDUMP / MIGAPPLY / MIGFENCE / MIGTAKE / MIGFLIP sequence from the
// outside, one slot at a time; killing it at any point and rerunning the
// same command converges (source-sequence watermarks make batch delivery
// exactly-once, and a slot the target already owns is skipped after
// re-advertising the flip). It is a subcommand rather than a daemon flag
// because the operator, not either daemon, owns rebalancing.
//
//	ttkvd migrate -from host1:7677 -to host2:7677 -slots 100-200,4096
func runMigrate(argv []string) int {
	fs := flag.NewFlagSet("ttkvd migrate", flag.ExitOnError)
	from := fs.String("from", "", "source node address: the slots' current owner (required)")
	to := fs.String("to", "", "target node address: the slots' new owner (required)")
	slotSpec := fs.String("slots", "", "slots to move: comma-separated \"lo-hi\" ranges or single slots (required)")
	space := fs.Int("cluster-slots", ttkv.DefaultSlotCount, "slot-space size; must match the cluster's")
	batch := fs.Int("batch", 0, "records per copy batch (0 = default)")
	timeout := fs.Duration("timeout", 0, "overall deadline; an expired run is safe to rerun (0 = none)")
	quiet := fs.Bool("quiet", false, "suppress per-batch progress")
	fs.Parse(argv) //nolint:errcheck — ExitOnError

	if *from == "" || *to == "" {
		fmt.Fprintln(os.Stderr, "ttkvd migrate: -from and -to are required")
		return 2
	}
	if *slotSpec == "" {
		fmt.Fprintln(os.Stderr, "ttkvd migrate: -slots is required")
		return 2
	}
	if *space < 1 {
		fmt.Fprintf(os.Stderr, "ttkvd migrate: -cluster-slots must be >= 1, got %d\n", *space)
		return 2
	}
	ranges, err := ttkvwire.ParseSlotRanges(*slotSpec, *space)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttkvd migrate: -slots:", err)
		return 2
	}
	if len(ranges) == 0 {
		fmt.Fprintln(os.Stderr, "ttkvd migrate: -slots named no slots")
		return 2
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := ttkvwire.MigrateOptions{BatchSize: *batch}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Printf("ttkvd migrate: "+format+"\n", args...)
		}
	}
	start := time.Now()
	moved := 0
	for _, r := range ranges {
		for slot := r.Lo; slot <= r.Hi; slot++ {
			if err := ttkvwire.MigrateSlot(ctx, *from, *to, slot, opts); err != nil {
				fmt.Fprintf(os.Stderr, "ttkvd migrate: slot %d: %v (%d slots moved; rerun to resume)\n", slot, err, moved)
				return 1
			}
			moved++
		}
	}
	fmt.Printf("ttkvd migrate: moved %d slots %s -> %s in %v\n",
		moved, *from, *to, time.Since(start).Round(time.Millisecond))
	return 0
}
