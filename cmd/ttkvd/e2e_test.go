package main

// End-to-end daemon test: build the real ttkvd binary, run it as a child
// process, replay a Table-I style generated workload through the wire
// client, inject a Table-III style configuration error, and drive the
// paper's full recovery loop — REPAIR (submit the trial and oracle
// markers), RSTAT (poll progress and screenshots), RFIX (apply the
// confirmed rollback) — asserting the store's post-fix point-in-time
// reads return the known-good values. Finally SIGTERM must shut the
// daemon down cleanly.

import (
	"bufio"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/trace"
	"ocasta/internal/ttkv"
	"ocasta/internal/ttkvwire"
	"ocasta/internal/workload"
)

const (
	evoOffline = "/apps/evolution/shell/start_offline"
	evoSync    = "/apps/evolution/shell/offline_sync"
)

// buildDaemon compiles ttkvd into a temp dir once per test run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ttkvd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building ttkvd: %v\n%s", err, out)
	}
	return bin
}

// startDaemon launches ttkvd with the given extra flags on an ephemeral
// port and returns its address and a stop function that SIGTERMs the
// process and asserts a clean exit.
func startDaemon(t *testing.T, bin string, extra ...string) (addr string, stop func()) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The daemon prints the resolved listener address on startup.
	lines := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for lines.Scan() {
			line := lines.Text()
			if _, rest, ok := strings.Cut(line, "serving on "); ok {
				addrCh <- strings.Fields(rest)[0]
			}
		}
	}()
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon did not report its listen address")
	}
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		if err := cmd.Process.Signal(os.Interrupt); err != nil {
			t.Fatalf("signalling daemon: %v", err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon exit: %v", err)
			}
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Error("daemon did not shut down on SIGTERM")
		}
	}
	t.Cleanup(stop)
	return addr, stop
}

// replayWorkload generates a small Table-I style deployment for the
// evolution mail client and replays its write trace into the daemon over
// the wire, pipelined. Returns the generated deployment and the newest
// event time.
func replayWorkload(t *testing.T, client *ttkvwire.Client) (*workload.Result, time.Time) {
	t.Helper()
	res := workload.Generate(workload.MachineProfile{
		Name: "e2e-linux", User: "e2e", Days: 20, Seed: 4242,
		Apps: []workload.AppUsage{{
			Model:             apps.ModelByName("evolution"),
			SessionsPerDay:    2,
			ScansPerSession:   1,
			NoiseWritesPerDay: 10,
		}},
	})
	pipe := client.Pipeline()
	var last time.Time
	for _, ev := range res.Trace.Events {
		switch ev.Op {
		case trace.OpWrite:
			pipe.Set(ev.Key, ev.Value, ev.Time)
		case trace.OpDelete:
			pipe.Delete(ev.Key, ev.Time)
		default:
			continue
		}
		if ev.Time.After(last) {
			last = ev.Time
		}
	}
	if err := pipe.Flush(); err != nil {
		t.Fatalf("replaying workload: %v", err)
	}
	return res, last
}

func TestDaemonRepairE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon")
	}
	bin := buildDaemon(t)
	addr, stop := startDaemon(t, bin,
		"-recluster-interval", "50ms",
		"-repair-workers", "8",
	)
	client, err := ttkvwire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}

	_, traceEnd := replayWorkload(t, client)

	// Known-good values before the fault, straight from the daemon.
	goodOffline, err := client.Get(evoOffline)
	if err != nil {
		t.Fatalf("pre-fault %s: %v", evoOffline, err)
	}
	if goodOffline != "b:false" {
		t.Fatalf("workload left %s = %q, want b:false", evoOffline, goodOffline)
	}
	goodSync, err := client.Get(evoSync)
	if err != nil {
		t.Fatal(err)
	}

	// The fault, two weeks after the trace: offline mode flipped on, with
	// its dialog partner co-written, as the application persists groups.
	errAt := traceEnd.Add(14 * 24 * time.Hour)
	if err := client.Set(evoOffline, "b:true", errAt); err != nil {
		t.Fatal(err)
	}
	if err := client.Set(evoSync, goodSync, errAt); err != nil {
		t.Fatal(err)
	}

	// Wait for the live clustering to publish the offline pair.
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap, err := client.Clusters(2)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, cl := range snap.Clusters {
			if cl.Contains(evoOffline) && cl.Contains(evoSync) {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("live clustering never published the offline pair: %+v", snap.Clusters)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// REPAIR: submit the recovery search against the live clustering.
	id, err := client.RepairSubmit(ttkvwire.RepairRequest{
		App:          "evolution",
		Trial:        []string{"launch"},
		FixedMarker:  "[x] online-mode",
		BrokenMarker: "[ ] online-mode",
		Live:         true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// RSTAT: poll until done; the paper's user then picks the screenshot
	// showing the fixed application.
	st, err := client.RepairWait(id, 10*time.Millisecond, 60*time.Second)
	if err != nil {
		t.Fatalf("repair job: %v (status %+v)", err, st)
	}
	if st.State != ttkvwire.JobDone || !st.Found {
		t.Fatalf("repair job = %+v, want done+found", st)
	}
	if !st.FixAt.Before(errAt) {
		t.Errorf("FixAt = %v, want before the error at %v", st.FixAt, errAt)
	}
	hasOffline := false
	for _, k := range st.Offending {
		if k == evoOffline {
			hasOffline = true
		}
	}
	if !hasOffline {
		t.Fatalf("offending cluster %v does not contain %s", st.Offending, evoOffline)
	}
	if len(st.Screenshots) == 0 {
		t.Fatal("no screenshots to confirm")
	}
	finalShot := st.Screenshots[len(st.Screenshots)-1]
	if !strings.Contains(finalShot.Rendered, "[x] online-mode") {
		t.Errorf("final screenshot does not show the fix:\n%s", finalShot.Rendered)
	}

	// The values the rollback will restore, read at the fix point.
	wantOffline, err := client.GetAt(evoOffline, st.FixAt)
	if err != nil {
		t.Fatal(err)
	}
	wantSync, err := client.GetAt(evoSync, st.FixAt)
	if err != nil {
		t.Fatal(err)
	}

	// RFIX: the user confirmed; apply the rollback.
	applyAt := errAt.Add(time.Hour)
	n, err := client.RepairFix(id, applyAt)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(st.Offending) {
		t.Errorf("RFIX reverted %d keys, want %d", n, len(st.Offending))
	}

	// Post-fix: current and point-in-time reads match the known-good
	// values everywhere.
	for _, check := range []struct {
		key  string
		want ttkv.Version
	}{{evoOffline, wantOffline}, {evoSync, wantSync}} {
		got, err := client.GetAt(check.key, applyAt)
		if err != nil {
			t.Fatalf("GetAt(%s, applyAt): %v", check.key, err)
		}
		if got.Value != check.want.Value || got.Deleted != check.want.Deleted {
			t.Errorf("GetAt(%s, applyAt) = %+v, want the fix-point value %+v", check.key, got, check.want)
		}
	}
	if v, err := client.Get(evoOffline); err != nil || v != "b:false" {
		t.Errorf("post-fix Get(%s) = %q, %v; want b:false", evoOffline, v, err)
	}
	// The error remains in history (time travel is never rewritten).
	atErr, err := client.GetAt(evoOffline, errAt)
	if err != nil || atErr.Value != "b:true" {
		t.Errorf("GetAt(errAt) = %+v, %v; history must keep the fault", atErr, err)
	}

	// Clean SIGTERM shutdown.
	stop()
}

// TestDaemonFlagValidation covers the new repair flag validation paths.
func TestDaemonFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real daemon")
	}
	bin := buildDaemon(t)
	for _, args := range [][]string{
		{"-repair-workers", "0"},
		{"-repair-max-active", "0"},
		{"-repair-max-jobs", "-1"},
	} {
		cmd := exec.Command(bin, args...)
		out, err := cmd.CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 2 {
			t.Errorf("%v: err = %v (out %q), want exit 2", args, err, out)
		}
	}
}
