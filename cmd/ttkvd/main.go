// Command ttkvd runs the TTKV daemon: the shared time-travel key-value
// store Ocasta's loggers record into (the role Redis played in the paper's
// deployment).
//
//	ttkvd -addr 127.0.0.1:7677 -aof /var/lib/ocasta/store.aof \
//	      -shards 16 -fsync interval -fsync-interval 50ms
//
// With -aof, existing history is replayed on startup and every write is
// appended durably through a group-commit batch writer. -compact rewrites
// the AOF as an atomic snapshot after replay (optionally trimming each
// key's history to -retain versions) so replay cost stays bounded across
// restarts.
//
// -aof-dir keeps the same record stream in a segmented log instead of one
// flat file: sealed, checksummed segments (rolled past -segment-bytes)
// plus an active tail. Startup replays sealed segments in parallel,
// replica catch-up is served straight from the covering segment files,
// and -compact rewrites history as a fresh segment generation committed
// by an atomic index swap:
//
//	ttkvd -addr 127.0.0.1:7677 -aof-dir /var/lib/ocasta/segments \
//	      -segment-bytes 67108864 -compact -retain 1000
//
// The daemon also serves the paper's recovery loop over the wire: REPAIR
// submits an asynchronous cluster-rollback search (parallel trial workers,
// bounded by -repair-workers / -repair-max-active / -repair-max-jobs),
// RSTAT polls progress and screenshots, RFIX applies a confirmed fix
// atomically.
//
// Every ttkvd is a replication primary: replicas attach with SYNC and
// receive a snapshot plus a live tail of committed records. Run a read
// replica with
//
//	ttkvd -addr 127.0.0.1:7678 -replica-of 127.0.0.1:7677
//
// The replica serves reads, history, CLUSTERS/CORR (computed locally from
// the replayed stream), and repair diagnosis; writes and RFIX are rejected
// with a typed READONLY/MOVED redirect. REPLSTAT reports role and lag on
// both ends.
//
// With -failover, the daemon joins an automatic-failover group: each
// member leases its view of the primary off the replication stream's
// heartbeats, the highest-applied replica self-promotes (epoch-fenced)
// when the lease expires, and a revived stale primary demotes itself and
// resyncs. -peers names the other members; -semi-sync-acks makes write
// acknowledgements wait for K replica acks so promotion never loses an
// acked write:
//
//	ttkvd -addr :7677 -failover -peers 127.0.0.1:7678,127.0.0.1:7679 \
//	      -semi-sync-acks 1
//
// With -slot-range, the daemon joins a multi-primary hash-slot cluster:
// the keyspace is partitioned over a fixed slot space (-cluster-slots,
// default 16384; a key's slot is CRC16 of its hash-tag), each primary
// serves only its owned ranges and answers writes for foreign slots with
// a MOVED redirect naming the owner (-slot-peers seeds the redirect map;
// migration flips update it live). Analytics switch from the local
// observer to a cluster-wide drainer that merges every node's replication
// stream by event time, so CLUSTERS/CORR stay globally correct even for
// co-modification windows spanning nodes:
//
//	ttkvd -addr :7677 -slot-range 0-5461 \
//	      -slot-peers "5462-10922=host2:7677,10923-16383=host3:7677"
//
// The migrate subcommand rehomes slots between live primaries without
// losing acked writes (batched copy, source-sequence watermarks for
// exactly-once hand-off, a brief write fence for the tail, then an
// ownership flip that both sides advertise):
//
//	ttkvd migrate -from host1:7677 -to host2:7677 -slots 100-200
//
// With -backup-dir, the daemon serves the BACKUP and BSTAT commands
// (-backup-interval adds a schedule: a full backup first, incrementals
// after, pruned to -backup-keep chains), writing self-verifying backup
// sets that survive the loss of every AOF. The restore subcommand
// materializes a set — optionally at a historical sequence number or
// timestamp — into a fresh AOF, entirely offline:
//
//	ttkvd -addr :7677 -aof store.aof -backup-dir backups -backup-interval 5m
//	ttkvd restore -backup-dir backups -out store.aof -at 2026-08-07T12:00:00Z
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ocasta/internal/backup"
	"ocasta/internal/core"
	"ocasta/internal/trace"
	"ocasta/internal/ttkv"
	"ocasta/internal/ttkvwire"
)

func main() {
	// "ttkvd restore" is offline disaster recovery: it must work with no
	// daemon running (and typically with the daemon's AOF lost), so it is
	// a subcommand with its own flags, not a serve-mode option.
	if len(os.Args) > 1 && os.Args[1] == "restore" {
		os.Exit(runRestore(os.Args[2:]))
	}
	// "ttkvd migrate" drives a slot migration between two live daemons
	// from the outside (it is restartable at any point), so it too is a
	// subcommand rather than a serve-mode option.
	if len(os.Args) > 1 && os.Args[1] == "migrate" {
		os.Exit(runMigrate(os.Args[2:]))
	}
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:7677", "listen address")
	aofPath := flag.String("aof", "", "append-only file for durable history (optional)")
	aofDir := flag.String("aof-dir", "", "segmented append-only log directory for durable history (alternative to -aof: sealed checksummed segments, parallel replay, segment-served replica catch-up)")
	segmentBytes := flag.Int64("segment-bytes", ttkv.DefaultSegmentBytes, "with -aof-dir, seal the active segment and roll to a new one past this size")
	shards := flag.Int("shards", ttkv.DefaultShards, "store shard count (rounded up to a power of two)")
	fsyncMode := flag.String("fsync", "interval", "AOF fsync policy: always, interval, or never")
	fsyncEvery := flag.Duration("fsync-interval", 50*time.Millisecond, "group-commit flush/fsync interval")
	compact := flag.Bool("compact", false, "rewrite the AOF as a snapshot after replay")
	retain := flag.Int("retain", 0, "with -compact, keep only the newest N versions per key (0 = all)")
	reclusterEvery := flag.Duration("recluster-interval", time.Second, "live clustering recluster period (0 disables analytics)")
	window := flag.Duration("window", time.Second, "analytics co-modification window (0 groups only identical timestamps)")
	horizon := flag.Duration("horizon", trace.DefaultHorizon, "analytics reorder horizon for out-of-order write timestamps")
	advance := flag.Bool("recluster-advance", true, "advance the analytics watermark to the wall clock on each recluster tick (disable when replaying historical timestamps slowly)")
	maxSkew := flag.Duration("max-future-skew", 30*time.Second, "quarantine writes stamped further than this beyond the wall clock from analytics windowing (0 trusts all timestamps; set 0 when loading historical traces)")
	repairWorkers := flag.Int("repair-workers", 8, "trial workers per repair job (1 searches sequentially)")
	repairActive := flag.Int("repair-max-active", 2, "repair searches running concurrently; extra accepted jobs queue")
	repairJobs := flag.Int("repair-max-jobs", 64, "repair jobs retained (running+finished); beyond it the oldest finished job is evicted")
	replicaOf := flag.String("replica-of", "", "run as a read replica of the given primary host:port (rejects writes; incompatible with -aof)")
	replOutbox := flag.Int("repl-outbox", ttkv.DefaultOutboxBytes, "per-replica feed outbox bound in bytes; a replica lagging further is dropped and resyncs")
	failover := flag.Bool("failover", false, "join an automatic-failover group: lease failure detection, epoch-fenced replica promotion, stale-primary demotion (configure members with -peers)")
	peersFlag := flag.String("peers", "", "comma-separated addresses of the other failover group members")
	advertiseFlag := flag.String("advertise", "", "address peers and clients should reach this node at (default: the resolved listen address)")
	leaseEvery := flag.Duration("lease-interval", 500*time.Millisecond, "failover lease: a replica that hears nothing from its primary for 2 intervals starts an election")
	semiAcks := flag.Int("semi-sync-acks", 0, "replica acknowledgements each write waits for before the client is acked (0 = asynchronous replication)")
	semiTimeout := flag.Duration("semi-sync-timeout", 2*time.Second, "how long a write waits for semi-sync acks before returning RETRY (applied locally, replication unconfirmed)")
	clusterSlots := flag.Int("cluster-slots", 0, "hash-slot space size for cluster mode (0 with -slot-range selects the default 16384; must match across the cluster)")
	slotRange := flag.String("slot-range", "", "comma-separated slot ranges this node owns, e.g. \"0-5461\" (enables hash-slot cluster mode)")
	slotPeers := flag.String("slot-peers", "", "peer-owned slot ranges for MOVED redirects, e.g. \"5462-10922=host2:7677,10923-16383=host3:7677\" (advisory; migration flips update them live)")
	backupDir := flag.String("backup-dir", "", "backup directory; enables the BACKUP/BSTAT commands (and 'ttkvd restore' reads it)")
	backupEvery := flag.Duration("backup-interval", 0, "take a backup automatically every interval (full first, then incrementals; 0 = manual BACKUP commands only; requires -backup-dir)")
	backupKeep := flag.Int("backup-keep", 3, "with -backup-interval, full-backup chains retained by pruning after each scheduled backup (0 = keep everything)")
	flag.Parse()

	if *shards < 1 || *shards > 1<<16 {
		fmt.Fprintf(os.Stderr, "ttkvd: -shards must be in [1, %d], got %d\n", 1<<16, *shards)
		return 2
	}
	policy, err := ttkv.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttkvd: -fsync:", err)
		return 2
	}
	if *fsyncEvery <= 0 {
		fmt.Fprintf(os.Stderr, "ttkvd: -fsync-interval must be positive, got %v\n", *fsyncEvery)
		return 2
	}
	if *retain < 0 {
		fmt.Fprintf(os.Stderr, "ttkvd: -retain must be >= 0, got %d\n", *retain)
		return 2
	}
	if *retain > 0 && !*compact {
		fmt.Fprintln(os.Stderr, "ttkvd: -retain requires -compact")
		return 2
	}
	if *compact && *aofPath == "" && *aofDir == "" {
		fmt.Fprintln(os.Stderr, "ttkvd: -compact requires -aof or -aof-dir")
		return 2
	}
	if *aofPath != "" && *aofDir != "" {
		fmt.Fprintln(os.Stderr, "ttkvd: -aof and -aof-dir are mutually exclusive")
		return 2
	}
	if *segmentBytes <= 0 {
		fmt.Fprintf(os.Stderr, "ttkvd: -segment-bytes must be positive, got %d\n", *segmentBytes)
		return 2
	}
	if *reclusterEvery < 0 {
		fmt.Fprintf(os.Stderr, "ttkvd: -recluster-interval must be >= 0, got %v\n", *reclusterEvery)
		return 2
	}
	if *window < 0 {
		fmt.Fprintf(os.Stderr, "ttkvd: -window must be >= 0, got %v\n", *window)
		return 2
	}
	if *horizon < 0 {
		fmt.Fprintf(os.Stderr, "ttkvd: -horizon must be >= 0, got %v\n", *horizon)
		return 2
	}
	if *maxSkew < 0 {
		fmt.Fprintf(os.Stderr, "ttkvd: -max-future-skew must be >= 0, got %v\n", *maxSkew)
		return 2
	}
	if *repairWorkers < 1 {
		fmt.Fprintf(os.Stderr, "ttkvd: -repair-workers must be >= 1, got %d\n", *repairWorkers)
		return 2
	}
	if *repairActive < 1 {
		fmt.Fprintf(os.Stderr, "ttkvd: -repair-max-active must be >= 1, got %d\n", *repairActive)
		return 2
	}
	if *repairJobs < 1 {
		fmt.Fprintf(os.Stderr, "ttkvd: -repair-max-jobs must be >= 1, got %d\n", *repairJobs)
		return 2
	}
	if *replOutbox < 1 {
		fmt.Fprintf(os.Stderr, "ttkvd: -repl-outbox must be >= 1, got %d\n", *replOutbox)
		return 2
	}
	if *replicaOf != "" && (*aofPath != "" || *aofDir != "") {
		// A replica replays the primary's records verbatim (same sequence
		// numbers) and resyncs from the primary after a restart; it never
		// keeps its own log.
		fmt.Fprintln(os.Stderr, "ttkvd: -replica-of is incompatible with -aof/-aof-dir (replicas resync from the primary)")
		return 2
	}
	if *leaseEvery <= 0 {
		fmt.Fprintf(os.Stderr, "ttkvd: -lease-interval must be positive, got %v\n", *leaseEvery)
		return 2
	}
	if *semiAcks < 0 {
		fmt.Fprintf(os.Stderr, "ttkvd: -semi-sync-acks must be >= 0, got %d\n", *semiAcks)
		return 2
	}
	if *semiTimeout <= 0 {
		fmt.Fprintf(os.Stderr, "ttkvd: -semi-sync-timeout must be positive, got %v\n", *semiTimeout)
		return 2
	}
	if *backupEvery < 0 {
		fmt.Fprintf(os.Stderr, "ttkvd: -backup-interval must be >= 0, got %v\n", *backupEvery)
		return 2
	}
	if *backupEvery > 0 && *backupDir == "" {
		fmt.Fprintln(os.Stderr, "ttkvd: -backup-interval requires -backup-dir")
		return 2
	}
	if *backupKeep < 0 {
		fmt.Fprintf(os.Stderr, "ttkvd: -backup-keep must be >= 0, got %d\n", *backupKeep)
		return 2
	}
	var peers []string
	for _, p := range strings.Split(*peersFlag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	if !*failover && *peersFlag != "" {
		fmt.Fprintln(os.Stderr, "ttkvd: -peers requires -failover")
		return 2
	}
	clusterMode := *slotRange != ""
	if *clusterSlots < 0 {
		fmt.Fprintf(os.Stderr, "ttkvd: -cluster-slots must be >= 0, got %d\n", *clusterSlots)
		return 2
	}
	if (*clusterSlots > 0 || *slotPeers != "") && !clusterMode {
		fmt.Fprintln(os.Stderr, "ttkvd: -cluster-slots/-slot-peers require -slot-range")
		return 2
	}
	slotSpace := *clusterSlots
	if slotSpace == 0 {
		slotSpace = ttkv.DefaultSlotCount
	}
	var ownedRanges, peerRanges []ttkvwire.SlotRange
	if clusterMode {
		if ownedRanges, err = ttkvwire.ParseSlotRanges(*slotRange, slotSpace); err != nil {
			fmt.Fprintln(os.Stderr, "ttkvd: -slot-range:", err)
			return 2
		}
		if peerRanges, err = ttkvwire.ParseSlotRanges(*slotPeers, slotSpace); err != nil {
			fmt.Fprintln(os.Stderr, "ttkvd: -slot-peers:", err)
			return 2
		}
		for _, r := range peerRanges {
			if r.Addr == "" {
				fmt.Fprintf(os.Stderr, "ttkvd: -slot-peers range %d-%d needs an =addr owner\n", r.Lo, r.Hi)
				return 2
			}
		}
	}

	store := ttkv.NewSharded(*shards)
	var engine *core.Engine
	if *reclusterEvery > 0 {
		engWindow := *window
		if engWindow == 0 {
			engWindow = -1 // EngineConfig: negative selects the zero-second window
		}
		engine = core.NewEngine(core.EngineConfig{
			Window:        engWindow,
			Horizon:       *horizon,
			MaxFutureSkew: *maxSkew,
		})
		if *aofDir == "" && !clusterMode {
			// Attached before AOF replay, so restored history feeds the live
			// clustering exactly like fresh writes would. (Segmented replay
			// is parallel and bypasses observers; that path backfills with
			// ObserveHistory after replay instead. In cluster mode the
			// engine's only feed is the cross-node drainer — which also
			// covers this node's own history, replayed or live.)
			store.SetStatsObserver(engine)
		}
	}
	var gc *ttkv.GroupCommit
	closeAOF := func() {
		// GroupCommit.Close is idempotent, so this is safe even after a
		// failover demotion already retired the appender.
		if gc != nil {
			if cerr := gc.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "ttkvd: closing AOF:", cerr)
			}
		}
	}
	var segs *ttkv.SegmentedAOF
	if *aofDir != "" {
		segCfg := ttkv.SegmentedConfig{MaxSegmentBytes: *segmentBytes}
		if *compact {
			// Segment compaction rewrites the directory as a fresh
			// generation before the log is opened for appending; there is
			// no close-and-reopen dance because the commit is the index
			// swap, not a file rename.
			if err := ttkv.CompactSegmentDir(*aofDir, *shards, *retain, segCfg); err != nil {
				fmt.Fprintln(os.Stderr, "ttkvd: compacting segments:", err)
				return 1
			}
			fmt.Printf("ttkvd: compacted %s (retain=%d)\n", *aofDir, *retain)
		}
		sa, err := ttkv.OpenSegmentedInto(*aofDir, store, segCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ttkvd: replaying segments:", err)
			return 1
		}
		if st := sa.Stats(); store.Len() > 0 {
			fmt.Printf("ttkvd: replayed %d keys (%d records, %d sealed segments) from %s\n",
				store.Len(), st.Records, st.Sealed, *aofDir)
		}
		if engine != nil && !clusterMode {
			// Parallel segment replay bypasses observers; feed the replayed
			// history through in sequence order, then attach for live writes.
			// (In cluster mode the drainer feeds the engine instead.)
			store.ObserveHistory(engine)
			store.SetStatsObserver(engine)
		}
		segs = sa
		gc = ttkv.NewGroupCommit(sa, ttkv.GroupCommitConfig{
			FlushInterval: *fsyncEvery,
			Fsync:         policy,
		})
	}
	if *aofPath != "" {
		// One pass replays existing history into the store, repairs a
		// crash-truncated tail, and leaves the file open for appending.
		aof, err := ttkv.OpenAOFInto(*aofPath, store)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ttkvd: replaying AOF:", err)
			return 1
		}
		if store.Len() > 0 {
			fmt.Printf("ttkvd: replayed %d keys from %s\n", store.Len(), *aofPath)
		}
		if *compact {
			// Compaction rewrites the file by rename, so the open handle
			// must be dropped first and the snapshot (known clean, just
			// written) reopened for appending.
			if err := aof.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "ttkvd:", err)
				return 1
			}
			if err := store.CompactTo(*aofPath, *retain); err != nil {
				fmt.Fprintln(os.Stderr, "ttkvd: compacting AOF:", err)
				return 1
			}
			fmt.Printf("ttkvd: compacted %s (retain=%d)\n", *aofPath, *retain)
			if aof, err = ttkv.OpenAOFForAppend(*aofPath); err != nil {
				fmt.Fprintln(os.Stderr, "ttkvd:", err)
				return 1
			}
		}
		gc = ttkv.NewGroupCommit(aof, ttkv.GroupCommitConfig{
			FlushInterval: *fsyncEvery,
			Fsync:         policy,
		})
	}

	srv := ttkvwire.NewServer(store)
	var backups *backup.Manager
	if *backupDir != "" {
		// The manager works the same on a primary and a read-only replica
		// (backups never take the store's write locks), so BACKUP/BSTAT
		// stay available across failover role changes.
		if backups, err = backup.NewManager(store, *backupDir, backup.Options{}); err != nil {
			fmt.Fprintln(os.Stderr, "ttkvd:", err)
			closeAOF()
			return 1
		}
		srv.SetBackups(backups)
	}
	srv.SetRepair(ttkvwire.RepairConfig{
		Workers:   *repairWorkers,
		MaxActive: *repairActive,
		MaxJobs:   *repairJobs,
	})

	// Listening happens before replication wiring so the advertised
	// address can default to the resolved one (-addr :0 stays usable).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ttkvd: listen:", err)
		closeAOF()
		return 1
	}
	advertise := *advertiseFlag
	if advertise == "" {
		advertise = ln.Addr().String()
	}
	srv.SetAdvertise(advertise)
	if clusterMode {
		if err := srv.EnableCluster(slotSpace, ownedRanges, peerRanges); err != nil {
			fmt.Fprintln(os.Stderr, "ttkvd: enabling cluster mode:", err)
			ln.Close()
			closeAOF()
			return 1
		}
	}

	semiSync := ttkvwire.SemiSyncConfig{Acks: *semiAcks, Timeout: *semiTimeout}
	logf := func(format string, args ...any) {
		fmt.Printf("ttkvd: "+format+"\n", args...)
	}
	role := "primary"
	var replica *ttkvwire.ReplicaClient
	var node *ttkvwire.Node
	switch {
	case *failover:
		ncfg := ttkvwire.NodeConfig{
			Store:         store,
			Server:        srv,
			Self:          advertise,
			Peers:         peers,
			LeaseInterval: *leaseEvery,
			Replication:   ttkvwire.ReplicationConfig{OutboxBytes: *replOutbox},
			SemiSync:      semiSync,
			Logf:          logf,
		}
		if engine != nil && !clusterMode {
			// In cluster mode the engine is drainer-fed, not store-fed: a
			// local resync neither duplicates its records nor needs a reset
			// (the drainer detects peer incarnation changes on its own).
			ncfg.OnReset = engine.Reset
		}
		if *replicaOf == "" {
			rl := ttkv.NewReplLog(gc)
			if err := store.AttachReplLog(rl); err != nil {
				fmt.Fprintln(os.Stderr, "ttkvd: attaching replication log:", err)
				ln.Close()
				closeAOF()
				return 1
			}
			ncfg.Primary = true
			ncfg.ReplLog = rl
			ncfg.GroupCommit = gc
			role = "primary, failover"
		} else {
			ncfg.PrimaryAddr = *replicaOf
			role = "replica of " + *replicaOf + ", failover"
		}
		if node, err = ttkvwire.StartNode(ncfg); err != nil {
			fmt.Fprintln(os.Stderr, "ttkvd: starting failover node:", err)
			ln.Close()
			closeAOF()
			return 1
		}
	case *replicaOf == "":
		// Every non-replica ttkvd can feed replicas: the replication log
		// wraps the group-commit appender (nil without -aof, in which case
		// records are shippable the instant they apply) and becomes the
		// store's sink and sequence minter.
		rl := ttkv.NewReplLog(gc)
		if err := store.AttachReplLog(rl); err != nil {
			fmt.Fprintln(os.Stderr, "ttkvd: attaching replication log:", err)
			ln.Close()
			closeAOF()
			return 1
		}
		// Segments (when running on -aof-dir) lets SYNC serve catch-up
		// ranges straight from the segment files. Only safe here, on a
		// permanent primary: a failover node can demote and resync, after
		// which the store renumbers but the retired segment files do not.
		srv.EnableReplication(rl, ttkvwire.ReplicationConfig{OutboxBytes: *replOutbox, Segments: segs})
		srv.SetSemiSync(semiSync)
	default:
		role = "replica of " + *replicaOf
		srv.SetReadOnly(true)
		srv.SetLeaderHint(*replicaOf)
		rcfg := ttkvwire.ReplicaConfig{
			Primary: *replicaOf,
			Store:   store,
			Logf:    logf,
		}
		if engine != nil && !clusterMode {
			// A full resync replays the new primary's history through the
			// observer from scratch; stale statistics must not remain.
			// (Drainer-fed engines track incarnations themselves.)
			rcfg.OnReset = engine.Reset
		}
		if replica, err = ttkvwire.StartReplica(rcfg); err != nil {
			fmt.Fprintln(os.Stderr, "ttkvd: starting replication:", err)
			ln.Close()
			closeAOF()
			return 1
		}
		srv.SetReplicaStatus(replica)
	}
	stopMembers := func() {
		if node != nil {
			node.Stop()
		}
		if replica != nil {
			replica.Stop()
		}
	}
	var reclusterStop chan struct{}
	if engine != nil {
		srv.SetAnalytics(engine)
		if clusterMode {
			// Global analytics: one drainer pulls every primary's
			// replication stream (this node's included, over loopback like
			// the rest) and time-merges them into the engine, so windows
			// spanning node boundaries reassemble. The drain interval rides
			// the recluster interval; keep both below -horizon or live
			// cross-node grouping degrades to per-round granularity.
			drainPeers := []string{advertise}
			seen := map[string]bool{advertise: true}
			for _, r := range peerRanges {
				if !seen[r.Addr] {
					seen[r.Addr] = true
					drainPeers = append(drainPeers, r.Addr)
				}
			}
			drainer, derr := ttkvwire.NewAnalyticsDrainer(ttkvwire.AnalyticsDrainerConfig{
				Engine: engine,
				Peers:  drainPeers,
				Logf:   logf,
			})
			if derr != nil {
				fmt.Fprintln(os.Stderr, "ttkvd: starting analytics drainer:", derr)
				stopMembers()
				ln.Close()
				closeAOF()
				return 1
			}
			drainCtx, drainCancel := context.WithCancel(context.Background())
			defer drainCancel()
			go drainer.Run(drainCtx, *reclusterEvery)
		}
		// Fold in whatever the replay produced before serving: CLUSTERS is
		// then meaningful from the first request.
		engine.AdvanceTo(time.Now())
		engine.Recluster()
		reclusterStop = make(chan struct{})
		go func() {
			ticker := time.NewTicker(*reclusterEvery)
			defer ticker.Stop()
			for {
				select {
				case <-reclusterStop:
					return
				case <-ticker.C:
					// On a replica mid-catch-up, the stream carries
					// historical timestamps; advancing the watermark to
					// the wall clock would make them bypass the reorder
					// buffer and window in arrival order, diverging the
					// replica's clusters from the primary's. Advance only
					// once the replica is streaming live records (the
					// primary's own replay finishes before this ticker
					// starts, so it never has the problem).
					catchingUp := false
					if node != nil {
						if st, ok := node.ReplicaStatus(); ok {
							catchingUp = st.State != ttkvwire.ReplicaStreaming
						}
					} else if replica != nil {
						catchingUp = replica.ReplicaStatus().State != ttkvwire.ReplicaStreaming
					}
					if *advance && !catchingUp {
						engine.AdvanceTo(time.Now())
					}
					engine.Recluster()
				}
			}
		}()
	}
	var backupStop chan struct{}
	if backups != nil && *backupEvery > 0 {
		backupStop = make(chan struct{})
		go func() {
			ticker := time.NewTicker(*backupEvery)
			defer ticker.Stop()
			for {
				select {
				case <-backupStop:
					return
				case <-ticker.C:
					man, err := backups.Auto()
					switch {
					case errors.Is(err, backup.ErrUpToDate):
						// No new records since the last backup; nothing to do.
					case err != nil:
						// Failures (including a replica full-resync racing the
						// export) are logged and retried next tick; the
						// schedule never stops.
						logf("backup failed: %v", err)
					default:
						logf("backup %s (%s) covering seqs (%d, %d]: %d records, %d bytes in %d files",
							man.ID, man.Kind, man.Base, man.UpTo, man.Records(), man.TotalBytes(), len(man.Files))
						if *backupKeep > 0 {
							res, err := backups.Prune(*backupKeep)
							if err != nil {
								logf("backup prune failed: %v", err)
							} else if res.Backups > 0 || res.DataFiles > 0 || res.TempFiles > 0 {
								logf("backup prune: removed %d backups, %d record files, %d temp files",
									res.Backups, res.DataFiles, res.TempFiles)
							}
						}
					}
				}
			}
		}()
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	analyticsState := "off"
	if engine != nil {
		analyticsState = fmt.Sprintf("every %v", *reclusterEvery)
	}
	// The signal handler must be armed before the readiness line below:
	// supervisors treat "serving on" as permission to manage the process,
	// and a SIGTERM landing in the gap would bypass the graceful path.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if clusterMode {
		fmt.Printf("ttkvd: cluster mode: %d slots, serving %s\n", slotSpace, *slotRange)
	}
	// The resolved listener address (not the flag) so -addr :0 is usable.
	fmt.Printf("ttkvd: serving on %s (role=%s shards=%d fsync=%s recluster=%s repair-workers=%d)\n",
		ln.Addr(), role, store.NumShards(), policy, analyticsState, *repairWorkers)
	select {
	case <-sig:
		fmt.Println("ttkvd: shutting down")
		// The failover loop stops first so no promotion or demotion races
		// the teardown; a replica finishes applying its in-flight frame
		// and stops acking before the server drops its clients; a
		// primary's Close severs the feeds (replicas resume from their
		// applied seq).
		stopMembers()
		srv.Close()
		<-done
	case err := <-done:
		if err != nil && err != ttkvwire.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "ttkvd:", err)
			if reclusterStop != nil {
				close(reclusterStop)
			}
			if backupStop != nil {
				close(backupStop)
			}
			stopMembers()
			closeAOF()
			return 1
		}
	}
	if reclusterStop != nil {
		close(reclusterStop)
	}
	if backupStop != nil {
		close(backupStop)
	}
	if gc != nil {
		// Close drains pending batches, fsyncs, and closes the file (a
		// no-op if a demotion already retired the appender).
		if err := gc.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ttkvd: closing AOF:", err)
			return 1
		}
	}
	return 0
}
