// Command ttkvd runs the TTKV daemon: the shared time-travel key-value
// store Ocasta's loggers record into (the role Redis played in the paper's
// deployment).
//
//	ttkvd -addr 127.0.0.1:7677 -aof /var/lib/ocasta/store.aof
//
// With -aof, existing history is replayed on startup and every write is
// appended durably.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ocasta/internal/ttkv"
	"ocasta/internal/ttkvwire"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:7677", "listen address")
	aofPath := flag.String("aof", "", "append-only file for durable history (optional)")
	flag.Parse()

	store := ttkv.New()
	if *aofPath != "" {
		if _, err := os.Stat(*aofPath); err == nil {
			loaded, err := ttkv.LoadAOF(*aofPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ttkvd: replaying AOF:", err)
				return 1
			}
			store = loaded
			fmt.Printf("ttkvd: replayed %d keys from %s\n", store.Len(), *aofPath)
			aof, err := ttkv.OpenAOFForAppend(*aofPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ttkvd:", err)
				return 1
			}
			defer aof.Close()
			store.AttachAOF(aof)
		} else {
			aof, err := ttkv.CreateAOF(*aofPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ttkvd:", err)
				return 1
			}
			defer aof.Close()
			store.AttachAOF(aof)
		}
	}

	srv := ttkvwire.NewServer(store)
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()
	fmt.Printf("ttkvd: serving on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		fmt.Println("ttkvd: shutting down")
		srv.Close()
		<-done
	case err := <-done:
		if err != nil && err != ttkvwire.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "ttkvd:", err)
			return 1
		}
	}
	if err := store.SyncAOF(); err != nil {
		fmt.Fprintln(os.Stderr, "ttkvd: syncing AOF:", err)
		return 1
	}
	return 0
}
