// ocastalint is the project's static-analysis suite: it machine-checks
// the store's concurrency and durability conventions (see internal/lint
// for the rules and the //ocasta: annotation vocabulary).
//
// Standalone:
//
//	ocastalint [-list] [packages]        # defaults to ./...
//
// As a vet tool, so the rules run under the standard toolchain driver:
//
//	go vet -vettool=$(which ocastalint) ./...
//
// Exit status: 0 clean, 1 findings, 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ocasta/internal/lint"
	"ocasta/internal/lint/atomicsnapshot"
	"ocasta/internal/lint/lockorder"
	"ocasta/internal/lint/nocallunderlock"
	"ocasta/internal/lint/stickyerr"
)

var analyzers = []*lint.Analyzer{
	lockorder.Analyzer,
	nocallunderlock.Analyzer,
	atomicsnapshot.Analyzer,
	stickyerr.Analyzer,
}

func main() {
	args := os.Args[1:]

	// The go vet driver protocol: probe for version and flags, then one
	// invocation per package with a JSON config file argument.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			printVersion()
			return
		}
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}

	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocastalint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocastalint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
