package main

// The go vet -vettool driver protocol, mirrored from the reference
// unitchecker: vet invokes the tool once per package with a single
// JSON config-file argument describing the unit — source files, the
// import map, and export-data files for every dependency — plus the
// version/flags probes handled in main. Facts are not exchanged (the
// ocastalint analyzers use the built-in annotation seeds for
// cross-package contracts), but the .vetx output file must still be
// written so the driver's cache stays consistent.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"ocasta/internal/lint"
)

// vetConfig is the subset of the driver's config the tool consumes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package unit and returns the process exit code.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocastalint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ocastalint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// The driver expects the facts file to exist even though we carry no
	// facts; write it first so every exit path below leaves it in place.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "ocastalint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ocastalint:", err)
			return 2
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		exportFile, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exportFile)
	}
	info := lint.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "ocastalint:", err)
		return 2
	}

	pkgs := []*lint.Package{{Fset: fset, Syntax: files, Types: tpkg, Info: info}}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocastalint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printVersion implements -V=full: the go command uses the line as the
// tool's cache key, so it must change whenever the binary does — hash
// the executable, as the reference unitchecker does.
func printVersion() {
	name := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocastalint:", err)
		os.Exit(2)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ocastalint:", err)
		os.Exit(2)
	}
	sum := sha256.Sum256(data)
	fmt.Printf("%s version devel buildID=%02x\n", name, sum)
}
