// Command repro regenerates the tables and figures of the paper's
// evaluation. With no flags it prints everything; -table and -fig select
// individual experiments.
//
//	repro -table 2        # Table II clustering accuracy
//	repro -fig 2a         # Fig 2a DFS vs BFS by injection age
//	repro -quick          # smaller sweeps for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ocasta/internal/repro"
)

func main() {
	table := flag.String("table", "", "table to print: 1, 2, 3, or 4 (default all)")
	fig := flag.String("fig", "", "figure to print: 2a, 2b, 2c, 3a, 3b, or 4 (default all)")
	quick := flag.Bool("quick", false, "use reduced sweeps for the figures")
	seed := flag.Int64("seed", 1, "user-study seed")
	parallelism := flag.Int("parallelism", 0, "concurrent component clustering bound (0 = all CPUs)")
	flag.Parse()
	repro.SetParallelism(*parallelism)

	all := *table == "" && *fig == ""
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}

	faultIDs := repro.AllFaultIDs()
	fig2aDays := repro.DefaultFig2aDays()
	fig2bSp := repro.DefaultFig2bSpurious()
	fig2cBounds := repro.DefaultFig2cBounds()
	if *quick {
		faultIDs = []int{1, 8, 13, 16}
		fig2aDays = []int{2, 8, 14}
		fig2cBounds = []int{14, 40, 80}
	}

	if all || *table == "1" {
		rows, err := repro.Table1()
		if err != nil {
			fail(err)
		}
		fmt.Println(repro.RenderTable1(rows))
	}
	if all || *table == "2" {
		fmt.Println(repro.RenderTable2(repro.Table2()))
	}
	if all || *table == "3" {
		fmt.Println(repro.RenderTable3(repro.Table3()))
	}
	if all || *table == "4" {
		start := time.Now()
		rows, err := repro.Table4()
		if err != nil {
			fail(err)
		}
		fmt.Println(repro.RenderTable4(rows))
		fmt.Printf("(computed in %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if all || *fig == "2a" {
		pts, err := repro.Fig2a(faultIDs, fig2aDays)
		if err != nil {
			fail(err)
		}
		fmt.Println(repro.RenderFig2("Fig 2a: Trials by time of errors", "Injection days", pts))
	}
	if all || *fig == "2b" {
		pts, err := repro.Fig2b(faultIDs, fig2bSp)
		if err != nil {
			fail(err)
		}
		fmt.Println(repro.RenderFig2("Fig 2b: Trials by number of spurious writes", "Spurious writes", pts))
	}
	if all || *fig == "2c" {
		pts, err := repro.Fig2c(faultIDs, fig2cBounds)
		if err != nil {
			fail(err)
		}
		fmt.Println(repro.RenderFig2("Fig 2c: Trials by time length searched", "Time bound (days)", pts))
	}
	if all || *fig == "3a" {
		fmt.Println(repro.RenderFig3("Fig 3a: Average cluster size by window size",
			"Window (seconds)", repro.Fig3a(repro.DefaultFig3aWindows())))
	}
	if all || *fig == "3b" {
		fmt.Println(repro.RenderFig3("Fig 3b: Average cluster size by clustering threshold",
			"Threshold (corr)", repro.Fig3b(repro.DefaultFig3bThresholds())))
	}
	if all || *fig == "4" {
		fmt.Println(repro.RenderFig4(repro.Fig4(*seed)))
	}
}
