package ocasta

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices documented in README.md. The
// figure benches use reduced axes so `go test -bench=.` completes in
// minutes; `cmd/repro` regenerates every experiment at full scale.

import (
	"fmt"
	"testing"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/core"
	"ocasta/internal/repair"
	"ocasta/internal/repro"
	"ocasta/internal/trace"
	"ocasta/internal/ttkv"
	"ocasta/internal/workload"
)

// BenchmarkTable1TraceStats measures generating one deployment machine and
// computing its Table I row (Linux-1: Evolution + Eye of GNOME + GEdit).
func BenchmarkTable1TraceStats(b *testing.B) {
	p, _ := workload.ProfileByName("Linux-1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := workload.Generate(p)
		st := res.Store.Stats()
		if st.Keys == 0 {
			b.Fatal("empty deployment")
		}
	}
}

// BenchmarkTable2ClusteringAccuracy measures the full Table II study: all
// 11 applications generated, windowed, clustered, and scored.
func BenchmarkTable2ClusteringAccuracy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := repro.Table2()
		if res.Overall < 0.85 || res.Overall > 0.92 {
			b.Fatalf("overall accuracy drifted: %v", res.Overall)
		}
	}
}

// BenchmarkTable4Repair measures the recovery experiment on one error per
// logger kind plus the worst-case file error (#16).
func BenchmarkTable4Repair(b *testing.B) {
	ids := []int{1, 9, 13, 16}
	// Warm the machine cache outside the timed region.
	for _, id := range ids {
		if _, err := repro.NewScenario(id, repro.DefaultInjectionDays, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			sc, err := repro.NewScenario(id, repro.DefaultInjectionDays, 0)
			if err != nil {
				b.Fatal(err)
			}
			res, err := sc.Search(repair.StrategyDFS, false)
			if err != nil || !res.Found {
				b.Fatalf("#%d: found=%v err=%v", id, res != nil && res.Found, err)
			}
		}
	}
}

// BenchmarkFig2aInjectionAge measures the DFS/BFS sweep over injection
// ages (reduced axes).
func BenchmarkFig2aInjectionAge(b *testing.B) {
	warm(b, 1, 8, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig2a([]int{1, 8, 13}, []int{2, 14}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2bSpuriousWrites measures the spurious-write sweep.
func BenchmarkFig2bSpuriousWrites(b *testing.B) {
	warm(b, 1, 8, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig2b([]int{1, 8, 13}, []int{0, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2cTimeBound measures the search-bound sweep.
func BenchmarkFig2cTimeBound(b *testing.B) {
	warm(b, 13, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Fig2c([]int{13, 16}, []int{14, 80}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3aWindowSize measures the window-size sensitivity sweep,
// including the zero-second cliff point.
func BenchmarkFig3aWindowSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := repro.Fig3a([]time.Duration{0, time.Second, 600 * time.Second})
		if pts[1].AvgSize <= pts[0].AvgSize {
			b.Fatal("window cliff missing")
		}
	}
}

// BenchmarkFig3bThreshold measures the threshold sensitivity sweep.
func BenchmarkFig3bThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := repro.Fig3b([]float64{0.5, 2})
		if pts[0].AvgSize <= 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkFig4UserStudy measures the simulated 19-participant study.
func BenchmarkFig4UserStudy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := repro.Fig4(int64(i + 1))
		if len(out.Errors) != 4 {
			b.Fatal("study shape wrong")
		}
	}
}

// --- ablation benches (design choices documented in README.md) ---

// benchLinkage clusters the largest application (Acrobat, 751 keys) under
// one linkage criterion.
func benchLinkage(b *testing.B, linkage core.Linkage) {
	b.Helper()
	m := apps.Acrobat()
	res := workload.Generate(workload.StudyUsage(m, 108))
	w := trace.NewWindower(trace.DefaultWindow, trace.GroupAnchored)
	ps := core.NewPairStats(w.GroupTrace(res.Trace.ByApp(m.Name)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clusters := core.NewClusterer(linkage).Cluster(ps, core.DefaultThreshold)
		if len(clusters) == 0 {
			b.Fatal("no clusters")
		}
	}
}

// BenchmarkAblationLinkageComplete is the paper's choice (maximum
// linkage).
func BenchmarkAblationLinkageComplete(b *testing.B) { benchLinkage(b, core.LinkageComplete) }

// BenchmarkAblationLinkageSingle ablates to single linkage.
func BenchmarkAblationLinkageSingle(b *testing.B) { benchLinkage(b, core.LinkageSingle) }

// BenchmarkAblationLinkageAverage ablates to average linkage (UPGMA).
func BenchmarkAblationLinkageAverage(b *testing.B) { benchLinkage(b, core.LinkageAverage) }

// BenchmarkAblationNoClust measures the single-setting-rollback baseline
// on error #9, which it cannot fix — the search exhausts its space.
func BenchmarkAblationNoClust(b *testing.B) {
	warm(b, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := repro.NewScenario(9, repro.DefaultInjectionDays, 0)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sc.Search(repair.StrategyDFS, true)
		if err != nil {
			b.Fatal(err)
		}
		if res.Found {
			b.Fatal("NoClust must not fix the mark-seen pair")
		}
	}
}

// BenchmarkAblationSecondGranularity contrasts clustering Evolution (whose
// oversized clusters come from 1-second timestamps) at 0s vs 1s windows —
// the paper's stated root cause analysis.
func BenchmarkAblationSecondGranularity(b *testing.B) {
	m := apps.Evolution()
	res := workload.Generate(workload.StudyUsage(m, 101))
	tr := res.Trace.ByApp(m.Name)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, window := range []time.Duration{0, time.Second} {
			w := trace.NewWindower(window, trace.GroupAnchored)
			ps := core.NewPairStats(w.GroupTrace(tr))
			core.NewClusterer(core.LinkageComplete).Cluster(ps, core.DefaultThreshold)
		}
	}
}

// --- core micro-benches ---

// BenchmarkClusteringPipeline measures windowing + correlation + HAC for
// the largest application.
func BenchmarkClusteringPipeline(b *testing.B) {
	m := apps.Acrobat()
	res := workload.Generate(workload.StudyUsage(m, 108))
	tr := res.Trace.ByApp(m.Name)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := trace.NewWindower(trace.DefaultWindow, trace.GroupAnchored)
		ps := core.NewPairStats(w.GroupTrace(tr))
		core.NewClusterer(core.LinkageComplete).Cluster(ps, core.DefaultThreshold)
	}
}

// BenchmarkTTKVSet measures raw store write throughput.
func BenchmarkTTKVSet(b *testing.B) {
	store := ttkv.New()
	base := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := store.Set("bench-key", "value", base.Add(time.Duration(i)*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTTKVGetAt measures point-in-time reads over a 10k-version
// history.
func BenchmarkTTKVGetAt(b *testing.B) {
	store := ttkv.New()
	base := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10_000; i++ {
		if err := store.Set("k", "v", base.Add(time.Duration(i)*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := store.GetAt("k", base.Add(time.Duration(i%10_000)*time.Second)); err != nil {
			b.Fatal(err)
		}
	}
}

// warm populates the machine cache for the given faults outside timing.
func warm(b *testing.B, ids ...int) {
	b.Helper()
	for _, id := range ids {
		if _, err := repro.NewScenario(id, repro.DefaultInjectionDays, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- scale benches (nearest-neighbour-chain clusterer) ---

// syntheticScaleEvents builds a write stream over k keys whose
// co-modification graph is one sparse component (ring plus chords) — a key
// universe far beyond the paper's largest application (Acrobat, 751 keys).
// Each episode gets its own window.
func syntheticScaleEvents(k int) []Event {
	base := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	key := func(i int) string { return fmt.Sprintf("key%05d", i%k) }
	var events []Event
	episode := 0
	emit := func(keys ...string) {
		ts := base.Add(time.Duration(episode) * 10 * time.Second)
		episode++
		for _, kk := range keys {
			events = append(events, Event{
				Time: ts, Op: OpWrite, Store: StoreRegistry,
				App: "scale", Key: kk, Value: "v",
			})
		}
	}
	for i := 0; i < k; i++ {
		emit(key(i), key(i+1))
		if i%3 == 0 {
			emit(key(i), key(i+1), key(i+2))
		}
		if i%5 == 0 {
			emit(key(i), key(i+7))
		}
	}
	return events
}

// BenchmarkClusterScale measures the public clustering pipeline
// (windowing + pair statistics + nearest-neighbour-chain HAC with parallel
// component clustering) on synthetic sparse key universes; see
// internal/core's BenchmarkClusterLargeComponent for the comparison
// against the naive O(k³) reference.
func BenchmarkClusterScale(b *testing.B) {
	for _, k := range []int{500, 2000, 5000} {
		events := syntheticScaleEvents(k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				clusters := ClusterEvents(events, Config{Threshold: 1})
				if len(clusters) == 0 {
					b.Fatal("no clusters")
				}
			}
		})
	}
}
