package ocasta

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2013, 6, 1, 12, 0, 0, 0, time.UTC)

func TestClusterEventsFacade(t *testing.T) {
	var events []Event
	for i := 0; i < 3; i++ {
		ts := t0.Add(time.Duration(i) * time.Hour)
		events = append(events,
			Event{Time: ts, Op: OpWrite, Store: StoreGConf, App: "a", Key: "/k1", Value: "x"},
			Event{Time: ts, Op: OpWrite, Store: StoreGConf, App: "a", Key: "/k2", Value: "y"},
		)
	}
	events = append(events, Event{
		Time: t0.Add(9 * time.Hour), Op: OpWrite, Store: StoreGConf, App: "a", Key: "/solo", Value: "z",
	})
	clusters := ClusterEvents(events, Config{})
	if len(clusters) != 2 {
		t.Fatalf("clusters = %+v, want pair + singleton", clusters)
	}
	multi := MultiKey(clusters)
	if len(multi) != 1 || multi[0].Size() != 2 {
		t.Fatalf("multi = %+v", multi)
	}
	if got := Correlation(3, 3, 3); got != 2 {
		t.Errorf("Correlation = %v, want 2", got)
	}
}

func TestClusterTraceAndEvaluate(t *testing.T) {
	tr := &Trace{Name: "m"}
	for i := 0; i < 2; i++ {
		ts := t0.Add(time.Duration(i) * time.Hour)
		tr.Events = append(tr.Events,
			Event{Time: ts, Op: OpWrite, App: "app", Store: StoreFile, Key: "f:/a"},
			Event{Time: ts, Op: OpWrite, App: "app", Store: StoreFile, Key: "f:/b"},
			Event{Time: ts, Op: OpWrite, App: "other", Store: StoreFile, Key: "g:/x"},
		)
	}
	clusters := ClusterTrace(tr, "app", Config{Threshold: 2})
	gt := NewGroundTruth([][]string{{"f:/a", "f:/b"}})
	rep := Evaluate("app", clusters, gt)
	if rep.MultiKey != 1 || rep.Exact != 1 {
		t.Fatalf("report = %+v", rep)
	}
	SortForRecovery(clusters)
}

func TestStoreFacadeAndTraceCodecs(t *testing.T) {
	store := NewStore()
	if err := store.Set("k", "v", t0); err != nil {
		t.Fatal(err)
	}
	if v, ok := store.Get("k"); !ok || v != "v" {
		t.Fatal("store facade broken")
	}
	tr := &Trace{Name: "x", Events: []Event{{Time: t0, Op: OpWrite, Store: StoreFile, App: "a", Key: "k"}}}
	var buf bytes.Buffer
	if err := WriteTraceBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceBinary(&buf)
	if err != nil || got.Name != "x" || len(got.Events) != 1 {
		t.Fatalf("binary codec: %+v, %v", got, err)
	}
	buf.Reset()
	if err := WriteTraceJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTraceJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if st := SummarizeTrace(tr); st.Writes != 1 {
		t.Errorf("SummarizeTrace = %+v", st)
	}
}

func TestRepairFacadeEndToEnd(t *testing.T) {
	// Tiny end-to-end through the public API only: record history, break a
	// setting, repair it.
	store := NewStore()
	model := AppModelByName("eog")
	if model == nil {
		t.Fatal("model roster missing eog")
	}
	key := "/apps/eog/print/enable_printing"
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(store.Set(key, "b:true", t0))
	must(store.Set(key, "b:true", t0.Add(time.Hour)))
	must(store.Set(key, "b:false", t0.Add(48*time.Hour))) // the error

	tool := NewRepairTool(store, model)
	res, err := tool.Search(RepairOptions{
		Strategy: StrategyDFS,
		Trial:    []string{"launch", "print"},
		Oracle:   MarkerOracle("[x] print-dialog", "[ ] print-dialog"),
	})
	if err != nil || !res.Found {
		t.Fatalf("repair failed: %+v, %v", res, err)
	}
	must(tool.ApplyFix(res, t0.Add(72*time.Hour)))
	if v, _ := store.Get(key); v != "b:true" {
		t.Errorf("after fix, key = %q", v)
	}
}

func TestCatalogFacades(t *testing.T) {
	if len(AppModels()) != 11 {
		t.Error("AppModels != 11")
	}
	if len(FaultCatalog()) != 16 {
		t.Error("FaultCatalog != 16")
	}
	if len(MachineProfiles()) != 9 {
		t.Error("MachineProfiles != 9")
	}
	f, err := FaultByID(8)
	if err != nil || f.AppName != "evolution" {
		t.Errorf("FaultByID(8) = %+v, %v", f, err)
	}
	dep := GenerateDeployment(MachineProfiles()[6]) // Linux-2, small
	if dep.Store.Len() == 0 || len(dep.Trace.Events) == 0 {
		t.Error("GenerateDeployment produced an empty deployment")
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{}.normalized()
	if c.Window != DefaultWindow || c.Threshold != DefaultCorrelationThreshold || c.Linkage != LinkageComplete {
		t.Errorf("normalized defaults wrong: %+v", c)
	}
	c = Config{Threshold: 3}.normalized() // out of range -> default
	if c.Threshold != DefaultCorrelationThreshold {
		t.Errorf("out-of-range threshold should normalize, got %v", c.Threshold)
	}
}

// TestClusterEventsParallelismDeterminism pins the facade knob: any
// Parallelism setting must produce identical clusters.
func TestClusterEventsParallelismDeterminism(t *testing.T) {
	base := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	var events []Event
	for i := 0; i < 200; i++ {
		ts := base.Add(time.Duration(i) * 10 * time.Second)
		a := fmt.Sprintf("k%d", i%37)
		b := fmt.Sprintf("k%d", (i*5+1)%37)
		events = append(events,
			Event{Time: ts, Op: OpWrite, Store: StoreRegistry, App: "app", Key: a, Value: "v"},
			Event{Time: ts, Op: OpWrite, Store: StoreRegistry, App: "app", Key: b, Value: "v"},
		)
	}
	ref := ClusterEvents(events, Config{Threshold: 1, Parallelism: 1})
	for _, par := range []int{0, 2, 7} {
		got := ClusterEvents(events, Config{Threshold: 1, Parallelism: par})
		if len(got) != len(ref) {
			t.Fatalf("parallelism %d: %d clusters, want %d", par, len(got), len(ref))
		}
		for i := range got {
			if strings.Join(got[i].Keys, ",") != strings.Join(ref[i].Keys, ",") {
				t.Fatalf("parallelism %d cluster %d: %v != %v", par, i, got[i].Keys, ref[i].Keys)
			}
		}
	}
}

// TestEngineFacadeMatchesBatch sanity-checks the facade's streaming
// engine against ClusterEvents on the same stream (the exhaustive
// property tests live in internal/core).
func TestEngineFacadeMatchesBatch(t *testing.T) {
	base := time.Date(2013, 6, 1, 12, 0, 0, 0, time.UTC)
	var events []Event
	for ep := 0; ep < 5; ep++ {
		ts := base.Add(time.Duration(ep) * 10 * time.Second)
		for _, k := range []string{"pair/a", "pair/b"} {
			events = append(events, Event{Time: ts, Op: OpWrite, Store: StoreRegistry, App: "app", Key: k})
		}
		events = append(events, Event{Time: ts.Add(5 * time.Second), Op: OpWrite, Store: StoreRegistry, App: "app", Key: "lone"})
	}
	want := ClusterEvents(events, Config{})

	eng := NewEngine(EngineConfig{})
	for _, ev := range events {
		eng.Push(ev)
	}
	eng.Flush()
	got := eng.Recluster()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("engine clusters = %+v, want %+v", got, want)
	}
	if eng.Version() != 1 {
		t.Errorf("Version = %d, want 1", eng.Version())
	}
}
