// Package ocasta is a from-scratch reproduction of "Ocasta: Clustering
// Configuration Settings For Error Recovery" (Huang & Lie, DSN 2014).
//
// Ocasta observes an application's accesses to its configuration store,
// statistically clusters settings that are modified together (and are
// therefore likely related), and uses those clusters to repair
// configuration errors that span more than one setting by rolling back a
// whole cluster at a time to historical values kept in a time-travel
// key-value store (TTKV).
//
// The package is a facade over the implementation packages:
//
//   - clustering: Correlation metric + hierarchical agglomerative
//     clustering with a tunable threshold (ClusterEvents, ClusterTrace).
//   - TTKV: versioned store with point-in-time reads, append-only-file
//     persistence, and a network protocol (NewStore, LoadStore, Serve).
//   - Loggers: Windows-registry, GConf, and configuration-file
//     interception feeding the TTKV (NewLogger).
//   - Repair: sandboxed rollback search over cluster histories
//     (NewRepairTool).
//
// See README.md for the quickstart (build, test, and CLI usage); `go run
// ./cmd/repro` regenerates the paper-versus-measured comparison of every
// table and figure.
package ocasta

import (
	"time"

	"ocasta/internal/core"
	"ocasta/internal/trace"
)

// Re-exported clustering types.
type (
	// Cluster is a group of related configuration settings.
	Cluster = core.Cluster
	// Linkage selects the HAC linkage criterion.
	Linkage = core.Linkage
	// GroundTruth scores extracted clusters against known relations.
	GroundTruth = core.GroundTruth
	// Report is a per-application accuracy report (a Table II row).
	Report = core.Report
	// PairStats holds co-modification statistics.
	PairStats = core.PairStats
	// Verdict classifies one cluster against ground truth.
	Verdict = core.Verdict
)

// Re-exported trace types.
type (
	// Event is one logged configuration-store access.
	Event = trace.Event
	// Trace is an ordered event sequence from one machine or user.
	Trace = trace.Trace
	// Op is the access kind (read, write, delete).
	Op = trace.Op
	// StoreKind identifies the configuration store a key lives in.
	StoreKind = trace.StoreKind
	// GroupMode selects the sliding-window grouping behaviour.
	GroupMode = trace.GroupMode
	// Group is one co-modification episode (a window's key set).
	Group = trace.Group
	// StreamWindower windows a live write stream incrementally.
	StreamWindower = trace.StreamWindower
)

// Re-exported streaming analytics types.
type (
	// Engine is the streaming analytics engine: push events (or attach it
	// to a Store with SetStatsObserver), recluster periodically, read the
	// published clusters. Its output is byte-identical to the batch
	// pipeline over the same events, with bounded staleness.
	Engine = core.Engine
	// EngineConfig tunes an Engine; the zero value selects the paper's
	// defaults.
	EngineConfig = core.EngineConfig
)

// NewEngine returns an empty streaming analytics engine.
func NewEngine(cfg EngineConfig) *Engine { return core.NewEngine(cfg) }

// NewStreamWindower returns a push-based windower emitting groups to
// emit; see trace.NewStreamWindower for the horizon and buffer-borrowing
// contract.
func NewStreamWindower(window time.Duration, mode GroupMode, horizon time.Duration, emit func(*Group)) *StreamWindower {
	return trace.NewStreamWindower(window, mode, horizon, emit)
}

// Re-exported constants.
const (
	OpRead   = trace.OpRead
	OpWrite  = trace.OpWrite
	OpDelete = trace.OpDelete

	StoreRegistry = trace.StoreRegistry
	StoreGConf    = trace.StoreGConf
	StoreFile     = trace.StoreFile

	LinkageComplete = core.LinkageComplete
	LinkageSingle   = core.LinkageSingle
	LinkageAverage  = core.LinkageAverage

	VerdictExact      = core.VerdictExact
	VerdictUndersized = core.VerdictUndersized
	VerdictOversized  = core.VerdictOversized

	// DefaultWindow is the paper's default 1-second co-modification
	// window.
	DefaultWindow = trace.DefaultWindow
	// DefaultCorrelationThreshold is the paper's default: only settings
	// that are always modified together cluster.
	DefaultCorrelationThreshold = 2.0
)

// Config tunes the clustering pipeline. The zero value selects the
// paper's defaults.
type Config struct {
	// Window is the sliding co-modification window (default 1 s).
	Window time.Duration
	// Threshold is the correlation threshold in (0, 2] (default 2).
	Threshold float64
	// Linkage is the HAC criterion (default complete/maximum linkage).
	Linkage Linkage
	// Parallelism bounds how many connected components of the
	// co-modification graph are clustered concurrently; <= 0 (the
	// default) uses all CPUs. Output is identical at every setting.
	Parallelism int
}

func (c Config) normalized() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Threshold <= 0 || c.Threshold > 2 {
		c.Threshold = DefaultCorrelationThreshold
	}
	if c.Linkage == 0 {
		c.Linkage = LinkageComplete
	}
	return c
}

// ClusterEvents extracts clusters of related configuration settings from a
// write/delete event stream (events of other operations are ignored).
func ClusterEvents(events []Event, cfg Config) []Cluster {
	cfg = cfg.normalized()
	tr := &Trace{Events: events}
	w := trace.NewWindower(cfg.Window, trace.GroupAnchored)
	ps := core.NewPairStats(w.Groups(tr.Writes()))
	return core.NewClusterer(cfg.Linkage).
		WithParallelism(cfg.Parallelism).
		Cluster(ps, core.ThresholdFromCorrelation(cfg.Threshold))
}

// ClusterTrace extracts clusters for one application from a recorded
// trace; events of other applications are grouped independently and
// excluded.
func ClusterTrace(tr *Trace, app string, cfg Config) []Cluster {
	return ClusterEvents(tr.ByApp(app).Events, cfg)
}

// Correlation computes the paper's pairwise metric from co-modification
// episode counts: |A∩B|/|A| + |A∩B|/|B|, in [0, 2].
func Correlation(co, a, b int) float64 { return core.Correlation(co, a, b) }

// PairStatsOf computes co-modification statistics for an application's
// write stream under cfg's window.
func PairStatsOf(tr *Trace, app string, cfg Config) *PairStats {
	cfg = cfg.normalized()
	w := trace.NewWindower(cfg.Window, trace.GroupAnchored)
	return core.NewPairStats(w.GroupTrace(tr.ByApp(app)))
}

// NewGroundTruth builds a reference partition from groups of related
// setting names.
func NewGroundTruth(groups [][]string) *GroundTruth { return core.NewGroundTruth(groups) }

// Evaluate scores clusters against ground truth, as in Table II.
func Evaluate(app string, clusters []Cluster, gt *GroundTruth) Report {
	return core.Evaluate(app, clusters, gt)
}

// SortForRecovery orders clusters the way the repair tool searches them:
// rarely-modified (configuration-like) clusters first.
func SortForRecovery(clusters []Cluster) { core.SortForRecovery(clusters) }

// MultiKey filters to clusters with more than one setting.
func MultiKey(clusters []Cluster) []Cluster { return core.MultiKey(clusters) }
