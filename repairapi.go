package ocasta

import (
	"ocasta/internal/apps"
	"ocasta/internal/faults"
	"ocasta/internal/repair"
	"ocasta/internal/workload"
)

// Re-exported repair types.
type (
	// RepairTool searches a TTKV's history for configuration fixes.
	RepairTool = repair.Tool
	// RepairOptions configures one search.
	RepairOptions = repair.Options
	// RepairResult reports a search.
	RepairResult = repair.Result
	// Screenshot is one deduplicated trial screen.
	Screenshot = repair.Screenshot
	// Strategy selects DFS or BFS search order.
	Strategy = repair.Strategy
	// UserOracle is the user's screenshot check.
	UserOracle = repair.UserOracle
)

// Search strategies.
const (
	StrategyDFS = repair.StrategyDFS
	StrategyBFS = repair.StrategyBFS
)

// Re-exported application-model types (the simulated substrate).
type (
	// AppModel is a simulated desktop application.
	AppModel = apps.Model
	// AppConfig is an application's configuration state.
	AppConfig = apps.Config
	// Fault is one of the paper's 16 configuration errors.
	Fault = faults.Fault
	// MachineProfile describes one Table I deployment machine.
	MachineProfile = workload.MachineProfile
	// Deployment is a generated machine: trace plus populated TTKV.
	Deployment = workload.Result
)

// NewRepairTool builds a repair tool over a recorded store for one
// application.
func NewRepairTool(store *Store, model *AppModel) *RepairTool {
	return repair.NewTool(store, model)
}

// MarkerOracle builds a screenshot oracle from fixed/broken markers.
func MarkerOracle(fixed, broken string) UserOracle { return repair.MarkerOracle(fixed, broken) }

// AppModels returns the 11 simulated applications of Table II.
func AppModels() []*AppModel { return apps.Models() }

// AppModelByName returns a model by canonical name ("msword", "acrobat",
// ...), or nil.
func AppModelByName(name string) *AppModel { return apps.ModelByName(name) }

// FaultCatalog returns the 16 configuration errors of Table III.
func FaultCatalog() []Fault { return faults.Catalog() }

// FaultByID returns one Table III error (1-16).
func FaultByID(id int) (Fault, error) { return faults.ByID(id) }

// MachineProfiles returns the nine Table I deployment machines.
func MachineProfiles() []MachineProfile { return workload.Profiles() }

// GenerateDeployment synthesizes a machine's usage trace and TTKV.
func GenerateDeployment(p MachineProfile) *Deployment { return workload.Generate(p) }
