package ocasta

import (
	"ocasta/internal/apps"
	"ocasta/internal/faults"
	"ocasta/internal/repair"
	"ocasta/internal/ttkvwire"
	"ocasta/internal/workload"
)

// Re-exported repair types.
type (
	// RepairTool searches a TTKV's history for configuration fixes.
	RepairTool = repair.Tool
	// RepairOptions configures one search. Workers > 1 executes trials on
	// a worker pool with results byte-identical to the sequential search;
	// Clusters accepts a pre-computed (live engine) clustering; Sandbox
	// overrides trial execution; Cancel/OnProgress support job managers.
	RepairOptions = repair.Options
	// RepairResult reports a search.
	RepairResult = repair.Result
	// RepairReader is the read-only store surface searches run against; a
	// *Store and a *StoreView both satisfy it.
	RepairReader = repair.Reader
	// RepairSandbox executes one sandboxed trial (see RepairOptions).
	RepairSandbox = repair.SandboxFunc
	// Screenshot is one deduplicated trial screen.
	Screenshot = repair.Screenshot
	// Strategy selects DFS or BFS search order.
	Strategy = repair.Strategy
	// UserOracle is the user's screenshot check.
	UserOracle = repair.UserOracle
)

// Re-exported remote-repair types (the REPAIR/RSTAT/RFIX wire commands).
type (
	// RepairRequest describes one remote repair search.
	RepairRequest = ttkvwire.RepairRequest
	// RemoteRepairStatus is the polled state of one remote repair job.
	RemoteRepairStatus = ttkvwire.RepairStatus
	// RemoteScreenshot is one trial screen reported by a remote job.
	RemoteScreenshot = ttkvwire.RepairScreenshot
	// RepairServerConfig bounds a server's repair job manager.
	RepairServerConfig = ttkvwire.RepairConfig
)

// Search strategies.
const (
	StrategyDFS = repair.StrategyDFS
	StrategyBFS = repair.StrategyBFS
)

// Remote repair job states.
const (
	RepairJobQueued  = ttkvwire.JobQueued
	RepairJobRunning = ttkvwire.JobRunning
	RepairJobDone    = ttkvwire.JobDone
	RepairJobFailed  = ttkvwire.JobFailed
)

// ErrRepairCancelled is returned by cancelled searches.
var ErrRepairCancelled = repair.ErrCancelled

// ParseStrategy parses "dfs" or "bfs".
func ParseStrategy(s string) (Strategy, error) { return repair.ParseStrategy(s) }

// ClustersForApp restricts a store-wide clustering (e.g. a live Engine
// snapshot) to one application's keys; see repair.ClustersForApp.
func ClustersForApp(clusters []Cluster, model *AppModel) []Cluster {
	return repair.ClustersForApp(clusters, model)
}

// Re-exported application-model types (the simulated substrate).
type (
	// AppModel is a simulated desktop application.
	AppModel = apps.Model
	// AppConfig is an application's configuration state.
	AppConfig = apps.Config
	// Fault is one of the paper's 16 configuration errors.
	Fault = faults.Fault
	// MachineProfile describes one Table I deployment machine.
	MachineProfile = workload.MachineProfile
	// Deployment is a generated machine: trace plus populated TTKV.
	Deployment = workload.Result
)

// NewRepairTool builds a repair tool over a recorded store for one
// application.
func NewRepairTool(store *Store, model *AppModel) *RepairTool {
	return repair.NewTool(store, model)
}

// MarkerOracle builds a screenshot oracle from fixed/broken markers.
func MarkerOracle(fixed, broken string) UserOracle { return repair.MarkerOracle(fixed, broken) }

// AppModels returns the 11 simulated applications of Table II.
func AppModels() []*AppModel { return apps.Models() }

// AppModelByName returns a model by canonical name ("msword", "acrobat",
// ...), or nil.
func AppModelByName(name string) *AppModel { return apps.ModelByName(name) }

// FaultCatalog returns the 16 configuration errors of Table III.
func FaultCatalog() []Fault { return faults.Catalog() }

// FaultByID returns one Table III error (1-16).
func FaultByID(id int) (Fault, error) { return faults.ByID(id) }

// MachineProfiles returns the nine Table I deployment machines.
func MachineProfiles() []MachineProfile { return workload.Profiles() }

// GenerateDeployment synthesizes a machine's usage trace and TTKV.
func GenerateDeployment(p MachineProfile) *Deployment { return workload.Generate(p) }
