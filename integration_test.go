package ocasta

// Integration tests across the public facade: live stores and loggers
// feeding a TTKV daemon over real TCP, clustering from the recorded
// history, error injection, and repair.

import (
	"errors"
	"net"
	"testing"
	"time"

	"ocasta/internal/gconf"
	"ocasta/internal/ttkvwire"
)

// TestFullPipelineOverWire drives the complete deployment architecture:
// a GConf application instrumented by the preload logger, recording over
// TCP into a ttkvd-style server, then clustering and repairing against the
// server's store — the paper's exact component topology.
func TestFullPipelineOverWire(t *testing.T) {
	base := time.Date(2013, 6, 1, 9, 0, 0, 0, time.UTC)

	// The shared TTKV daemon.
	serverStore := NewStore()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, errc := Serve(serverStore, ln)
	defer func() {
		srv.Close()
		if err := <-errc; !errors.Is(err, ttkvwire.ErrServerClosed) {
			t.Errorf("server exit: %v", err)
		}
	}()

	// The instrumented process: GConf client + preload hook + wire sink.
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	logger := NewLogger(NewRemoteSink(client), WithTraceRecording("Linux-1"))
	db := gconf.New()
	defer db.Attach(logger.GConfHook())()
	evo := db.Client("evolution")

	const offline = "/apps/evolution/shell/start_offline"
	const sync = "/apps/evolution/shell/offline_sync"
	for day := 0; day < 4; day++ {
		ts := base.Add(time.Duration(day) * 24 * time.Hour)
		if err := evo.SetBool(offline, false, ts); err != nil {
			t.Fatal(err)
		}
		if err := evo.SetBool(sync, day%2 == 0, ts); err != nil {
			t.Fatal(err)
		}
	}
	// The error, two weeks later.
	errAt := base.Add(18 * 24 * time.Hour)
	if err := evo.SetBool(offline, true, errAt); err != nil {
		t.Fatal(err)
	}
	if err := evo.SetBool(sync, true, errAt); err != nil {
		t.Fatal(err)
	}
	if err := logger.Err(); err != nil {
		t.Fatalf("logger sink error: %v", err)
	}

	// The daemon's store holds the full history.
	hist, err := serverStore.History(offline)
	if err != nil || len(hist) != 5 {
		t.Fatalf("server history = %d versions, %v; want 5", len(hist), err)
	}

	// Clustering from the recorded trace identifies the dialog pair.
	clusters := ClusterTrace(logger.Trace(), "evolution", Config{})
	multi := MultiKey(clusters)
	if len(multi) != 1 || multi[0].Size() != 2 {
		t.Fatalf("clusters = %+v, want the offline pair", multi)
	}

	// Repair against the server's store.
	model := AppModelByName("evolution")
	tool := NewRepairTool(serverStore, model)
	res, err := tool.Search(RepairOptions{
		Trial:  []string{"launch"},
		Oracle: MarkerOracle("[x] online-mode", "[ ] online-mode"),
	})
	if err != nil || !res.Found {
		t.Fatalf("repair: %+v, %v", res, err)
	}
	if !res.Offending.Contains(offline) {
		t.Errorf("offending cluster = %v, want it to contain %s", res.Offending.Keys, offline)
	}
	if err := tool.ApplyFix(res, errAt.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if v, _ := serverStore.Get(offline); v != "b:false" {
		t.Errorf("after fix, %s = %q, want b:false", offline, v)
	}
}

// TestRemoteRepairOverFacade drives the asynchronous repair loop through
// the public facade: REPAIR submits the job, RSTAT polls it, RFIX applies
// the confirmed rollback atomically — the full paper recovery loop over
// real TCP.
func TestRemoteRepairOverFacade(t *testing.T) {
	base := time.Date(2013, 6, 1, 9, 0, 0, 0, time.UTC)
	store := NewStore()
	const offline = "/apps/evolution/shell/start_offline"
	const sync = "/apps/evolution/shell/offline_sync"
	for day := 0; day < 4; day++ {
		ts := base.Add(time.Duration(day) * 24 * time.Hour)
		if err := store.Set(offline, "b:false", ts); err != nil {
			t.Fatal(err)
		}
		if err := store.Set(sync, "b:true", ts); err != nil {
			t.Fatal(err)
		}
	}
	errAt := base.Add(18 * 24 * time.Hour)
	if err := store.Set(offline, "b:true", errAt); err != nil {
		t.Fatal(err)
	}
	if err := store.Set(sync, "b:true", errAt); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, errc := Serve(store, ln)
	defer func() {
		srv.Close()
		if err := <-errc; !errors.Is(err, ttkvwire.ErrServerClosed) {
			t.Errorf("server exit: %v", err)
		}
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	id, err := client.RepairSubmit(RepairRequest{
		App: "evolution", Trial: []string{"launch"},
		FixedMarker: "[x] online-mode", BrokenMarker: "[ ] online-mode",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.RepairWait(id, time.Millisecond, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != RepairJobDone || !st.Found {
		t.Fatalf("remote repair job = %+v, want done+found", st)
	}
	if _, err := client.RepairFix(id, errAt.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if v, _ := store.Get(offline); v != "b:false" {
		t.Errorf("after remote fix, %s = %q, want b:false", offline, v)
	}
}

// TestAOFSurvivesRestart checks the durability loop the daemon relies on:
// record, crash, replay, keep recording, repair from the replayed history.
func TestAOFSurvivesRestart(t *testing.T) {
	base := time.Date(2013, 6, 1, 9, 0, 0, 0, time.UTC)
	dir := t.TempDir()
	path := dir + "/store.aof"

	aof, err := CreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	store := NewStore()
	store.AttachAOF(aof)
	key := "/apps/eog/print/enable_printing"
	if err := store.Set(key, "b:true", base); err != nil {
		t.Fatal(err)
	}
	if err := store.Set(key, "b:false", base.Add(24*time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := aof.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": replay and repair from the replayed history.
	replayed, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	tool := NewRepairTool(replayed, AppModelByName("eog"))
	res, err := tool.Search(RepairOptions{
		Trial:  []string{"launch", "print"},
		Oracle: MarkerOracle("[x] print-dialog", "[ ] print-dialog"),
	})
	if err != nil || !res.Found {
		t.Fatalf("repair from replayed AOF failed: %+v, %v", res, err)
	}
}
