package ocasta

// Streaming-analytics benchmarks: the batch trace pipeline versus the
// incremental engine on identical event sets, and dirty-component
// reclustering versus a full HAC pass. Measured results are recorded in
// BENCH_pipeline.json (format documented in README.md).

import (
	"bytes"
	"testing"

	"ocasta/internal/core"
	"ocasta/internal/trace"
	"ocasta/internal/workload"
)

// pipelineSpec generates exactly 1,000,000 events: 150k episodes, every
// third writing half its 8-key component.
var pipelineSpec = workload.StreamSpec{
	Apps:             8,
	Components:       400,
	KeysPerComponent: 8,
	Episodes:         150_000,
	Seed:             1,
}

// encodePipelineTrace materialises the benchmark trace in the binary
// codec format, the shape both pipelines consume.
func encodePipelineTrace(b *testing.B) []byte {
	b.Helper()
	tr := workload.SyntheticStream(pipelineSpec)
	if got, want := len(tr.Events), pipelineSpec.Events(); got != want {
		b.Fatalf("spec generated %d events, want %d", got, want)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkPipelineEndToEnd runs decode→window→stats→cluster over the
// 1M-event trace, batch versus streaming. The batch side is the public
// pipeline (ReadBinary, Windower.GroupTrace, NewPairStats, Cluster); the
// streaming side is the incremental engine fed event-by-event from the
// streaming decoder. Outputs are identical (property-tested in
// internal/core); only the cost differs.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	encoded := encodePipelineTrace(b)
	events := pipelineSpec.Events()

	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		var clusters int
		for i := 0; i < b.N; i++ {
			tr, err := trace.ReadBinary(bytes.NewReader(encoded))
			if err != nil {
				b.Fatal(err)
			}
			w := trace.NewWindower(trace.DefaultWindow, trace.GroupAnchored)
			ps := core.NewPairStats(w.GroupTrace(tr))
			clusters = len(core.NewClusterer(core.LinkageComplete).Cluster(ps, core.DefaultThreshold))
		}
		if clusters == 0 {
			b.Fatal("no clusters")
		}
		b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})

	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		var clusters int
		for i := 0; i < b.N; i++ {
			eng := core.NewEngine(core.EngineConfig{})
			// Metadata-only decode: clustering never inspects values.
			if _, err := trace.ReadBinaryStreamMeta(bytes.NewReader(encoded), func(ev trace.Event) error {
				eng.Push(ev)
				return nil
			}); err != nil {
				b.Fatal(err)
			}
			eng.Flush()
			clusters = len(eng.Recluster())
		}
		if clusters == 0 {
			b.Fatal("no clusters")
		}
		b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	})
}

// reclusterSpec builds a 1000-component universe (10k keys, 250k events)
// whose steady state the dirty benchmark perturbs.
var reclusterSpec = workload.StreamSpec{
	Apps:             1,
	Components:       1000,
	KeysPerComponent: 10,
	Episodes:         30_000,
	Seed:             2,
}

// feedEngine pushes a trace through an engine.
func feedEngine(eng *core.Engine, tr *trace.Trace) {
	for _, ev := range tr.Events {
		eng.Push(ev)
	}
}

// BenchmarkReclusterDirty measures one "10 fresh episodes touching 1% of
// components, then recluster" cycle. The dirty variant reclusters through
// the engine (clean components spliced from cache); the full variant
// re-runs HAC over the whole universe from the same incremental
// statistics — what a periodic batch job would do.
func BenchmarkReclusterDirty(b *testing.B) {
	const (
		dirtyComponents   = 10 // 1% of reclusterSpec.Components
		episodesPerUpdate = 10
	)
	baseTrace := workload.SyntheticStream(reclusterSpec)

	b.Run("dirty-1pct", func(b *testing.B) {
		eng := core.NewEngine(core.EngineConfig{})
		feedEngine(eng, baseTrace)
		eng.Flush()
		if len(eng.Recluster()) == 0 {
			b.Fatal("empty base clustering")
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			update := workload.DirtyEpisodes(reclusterSpec, dirtyComponents, episodesPerUpdate, i)
			feedEngine(eng, update)
			eng.Flush()
			if len(eng.Recluster()) == 0 {
				b.Fatal("empty clustering")
			}
		}
	})

	b.Run("full", func(b *testing.B) {
		w := trace.NewWindower(trace.DefaultWindow, trace.GroupAnchored)
		ps := core.NewPairStats(w.GroupTrace(baseTrace))
		clusterer := core.NewClusterer(core.LinkageComplete)
		if len(clusterer.Cluster(ps, core.DefaultThreshold)) == 0 {
			b.Fatal("empty base clustering")
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			update := workload.DirtyEpisodes(reclusterSpec, dirtyComponents, episodesPerUpdate, i)
			for _, g := range w.GroupTrace(update) {
				ps.Add(g)
			}
			if len(clusterer.Cluster(ps, core.DefaultThreshold)) == 0 {
				b.Fatal("empty clustering")
			}
		}
	})
}
