#!/usr/bin/env sh
# Regenerates the numbers behind BENCH_cluster.json: the fixed write
# workload routed across 1/2/3 hash-slot primaries (node-scaling = total
# writes / max writes on any one node — the per-node work balance that
# becomes the capacity multiple once nodes own their own cores), and the
# full analytics drain that rebuilds global CLUSTERS from every node's
# replication stream. Run from the repo root and update the JSON from
# the output.
set -eu

go test -run '^$' -bench 'BenchmarkClusterWrite|BenchmarkClusterAnalyticsDrain' -benchtime=2s ./internal/ttkvwire/
