#!/usr/bin/env sh
# Regenerates the numbers behind BENCH_store.json: the lock-free MVCC
# read path against the locked baseline, and startup replay across log
# layouts. Run from the repo root and update the JSON from the output.
set -eu

go test -run '^$' -bench 'BenchmarkStoreRead' -benchtime=2s ./internal/ttkv/
go test -run '^$' -bench 'BenchmarkReplay' -benchtime=5x ./internal/ttkv/
