package ocasta

import (
	"io"
	"net"

	"ocasta/internal/logger"
	"ocasta/internal/trace"
	"ocasta/internal/ttkv"
	"ocasta/internal/ttkvwire"
)

// Re-exported TTKV types.
type (
	// Store is the time-travel key-value store. Store.ViewAt pins a
	// read-only point-in-time view; Store.RevertCluster atomically rolls
	// a cluster of keys back to a historical state.
	Store = ttkv.Store
	// StoreView is a read-only point-in-time view of a Store, pinned at a
	// version sequence number: concurrent writers never change its
	// answers. Repair trials run against one.
	StoreView = ttkv.View
	// Version is one entry in a key's value history.
	Version = ttkv.Version
	// StoreStats summarizes a store (Table I's volume columns).
	StoreStats = ttkv.Stats
	// AOF is the store's append-only persistence file.
	AOF = ttkv.AOF
	// SegmentedAOF is a segmented append-only log directory: sealed,
	// checksummed segments plus one active tail. Sealed segments replay
	// in parallel on open and serve replica catch-up by sequence range.
	SegmentedAOF = ttkv.SegmentedAOF
	// SegmentedConfig tunes a SegmentedAOF (segment size, replay
	// parallelism).
	SegmentedConfig = ttkv.SegmentedConfig
	// SegmentedStats summarizes a segment directory.
	SegmentedStats = ttkv.SegmentedStats
	// GroupCommit batches AOF writes off the store's hot path.
	GroupCommit = ttkv.GroupCommit
	// GroupCommitConfig tunes a GroupCommit's flush and fsync cadence.
	GroupCommitConfig = ttkv.GroupCommitConfig
	// FsyncPolicy selects when the group-commit appender fsyncs.
	FsyncPolicy = ttkv.FsyncPolicy
	// Mutation is one entry of a batch applied with Store.Apply or
	// Client.MSet.
	Mutation = ttkv.Mutation
	// Server exposes a store over TCP.
	Server = ttkvwire.Server
	// Client talks to a remote store.
	Client = ttkvwire.Client
	// Pipeline queues client commands for a single-round-trip flush.
	Pipeline = ttkvwire.Pipeline
	// StatsObserver receives every successful store mutation; an *Engine
	// satisfies it (install with Store.SetStatsObserver for live
	// clustering).
	StatsObserver = ttkv.StatsObserver
	// ClusterSnapshot is a client-side CLUSTERS reply: the server's
	// published live clustering plus its publish counter.
	ClusterSnapshot = ttkvwire.ClusterSnapshot
	// ReplLog is the primary side of replication: a seq-assigning
	// persistence sink whose committed records fan out to replica feeds.
	// Attach with Store.AttachReplLog, serve with Server.EnableReplication.
	ReplLog = ttkv.ReplLog
	// ReplRecord is one replicated mutation, carrying the primary's
	// store-wide sequence number; Store.ApplyReplicated replays them.
	ReplRecord = ttkv.ReplRecord
	// ReplicationConfig tunes a primary's replica feeds (outbox bound,
	// heartbeat cadence).
	ReplicationConfig = ttkvwire.ReplicationConfig
	// ReplicaClient maintains asynchronous replication from a primary
	// into a local read-only store, reconnecting with backoff and
	// resuming from its last applied sequence.
	ReplicaClient = ttkvwire.ReplicaClient
	// ReplicaConfig configures a ReplicaClient.
	ReplicaConfig = ttkvwire.ReplicaConfig
	// ReplicaStatus is a replica client's progress snapshot.
	ReplicaStatus = ttkvwire.ReplicaStatus
	// ReplStatus is a parsed REPLSTAT reply (Client.ReplStatus).
	ReplStatus = ttkvwire.ReplStatus
)

// Group-commit fsync policies, re-exported so external callers can fill
// GroupCommitConfig.Fsync.
const (
	// FsyncInterval fsyncs once per flush interval (the default).
	FsyncInterval = ttkv.FsyncInterval
	// FsyncAlways flushes+fsyncs eagerly on every append.
	FsyncAlways = ttkv.FsyncAlways
	// FsyncNever leaves fsync to the OS and explicit Sync calls.
	FsyncNever = ttkv.FsyncNever
)

// ParseFsyncPolicy parses "always", "interval", or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return ttkv.ParseFsyncPolicy(s) }

// NewStore returns an empty TTKV with the default shard count.
func NewStore() *Store { return ttkv.New() }

// NewShardedStore returns an empty TTKV striped across n lock shards
// (rounded up to a power of two); writers to distinct keys never contend.
//
// Deprecated: use OpenStore(StoreOptions{Shards: n}).
func NewShardedStore(n int) *Store { return ttkv.NewSharded(n) }

// LoadStore replays an append-only file into a fresh store, tolerating a
// truncated tail.
func LoadStore(path string) (*Store, error) { return ttkv.LoadAOF(path) }

// CreateAOF creates an append-only file; attach it with Store.AttachAOF,
// or wrap it with NewGroupCommit to batch disk I/O off the write path.
func CreateAOF(path string) (*AOF, error) { return ttkv.CreateAOF(path) }

// OpenOrCreateAOF opens an AOF for appending, creating it if absent. A
// crash-truncated tail is repaired before appending.
//
// Deprecated: use OpenStore(StoreOptions{AOFPath: path}), which replays,
// repairs, and attaches the file in one call.
func OpenOrCreateAOF(path string) (*AOF, error) { return ttkv.OpenOrCreateAOF(path) }

// OpenAOFInto is OpenOrCreateAOF fused with replay into store — the
// single-pass startup path a daemon wants.
//
// Deprecated: use OpenStore(StoreOptions{AOFPath: path}).
func OpenAOFInto(path string, store *Store) (*AOF, error) { return ttkv.OpenAOFInto(path, store) }

// OpenSegmentedInto opens (or creates) a segmented AOF directory and
// replays its history into store, sealed segments in parallel. Prefer
// OpenStore(StoreOptions{AOFDir: dir}), which also assembles the
// group-commit pipeline.
func OpenSegmentedInto(dir string, store *Store, cfg SegmentedConfig) (*SegmentedAOF, error) {
	return ttkv.OpenSegmentedInto(dir, store, cfg)
}

// CompactSegmentDir rewrites a segment directory as a fresh generation
// of sealed snapshot segments, keeping the newest retain versions per
// key (0 keeps all). The directory must not be open.
func CompactSegmentDir(dir string, shards, retain int, cfg SegmentedConfig) error {
	return ttkv.CompactSegmentDir(dir, shards, retain, cfg)
}

// NewGroupCommit wraps an AOF in a group-commit batch appender; attach it
// with Store.AttachGroupCommit.
//
// Deprecated: use OpenStore, which assembles the group-commit pipeline
// (StoreOptions.Fsync, StoreOptions.FlushInterval) and returns it on the
// handle.
func NewGroupCommit(a *AOF, cfg GroupCommitConfig) *GroupCommit {
	return ttkv.NewGroupCommit(a, cfg)
}

// NewServer wraps a store in a TTKV network server.
func NewServer(store *Store) *Server { return ttkvwire.NewServer(store) }

// NewReplLog returns a replication log feeding gc (nil for an in-memory
// primary: records are then shippable the instant they apply). Attach it
// with Store.AttachReplLog and serve with Server.EnableReplication.
//
// Deprecated: use OpenStore(StoreOptions{Replicate: true}), which builds
// and attaches the log.
func NewReplLog(gc *GroupCommit) *ReplLog { return ttkv.NewReplLog(gc) }

// StartReplica begins asynchronous replication from a primary into a
// local store (serve it read-only with Server.SetReadOnly).
//
// Deprecated: use StartNode, which manages the replica client together
// with failure detection, promotion, and fencing.
func StartReplica(cfg ReplicaConfig) (*ReplicaClient, error) { return ttkvwire.StartReplica(cfg) }

// Dial connects to a TTKV server.
func Dial(addr string) (*Client, error) { return ttkvwire.Dial(addr) }

// Serve exposes store on ln until the returned server is closed.
func Serve(store *Store, ln net.Listener) (*Server, <-chan error) {
	srv := ttkvwire.NewServer(store)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	return srv, errc
}

// Re-exported logging types.
type (
	// Logger multiplexes store hooks into a TTKV sink and an optional
	// trace recording.
	Logger = logger.Logger
	// LoggerOption configures a Logger.
	LoggerOption = logger.Option
	// FileSpec describes one watched configuration file.
	FileSpec = logger.FileSpec
	// FileLogger infers per-key events from whole-file flushes.
	FileLogger = logger.FileLogger
	// Sink receives abstracted key-value events.
	Sink = logger.Sink
)

// NewLogger returns a logger writing to sink (a *Store satisfies Sink; use
// NewRemoteSink for a network store).
func NewLogger(sink Sink, opts ...LoggerOption) *Logger { return logger.New(sink, opts...) }

// WithUser tags recorded events with a user name.
func WithUser(user string) LoggerOption { return logger.WithUser(user) }

// WithTraceRecording accumulates an in-memory trace alongside sink writes.
func WithTraceRecording(name string) LoggerOption { return logger.WithTraceRecording(name) }

// NewRemoteSink adapts a network client into a logger sink.
func NewRemoteSink(c *Client) Sink { return logger.NewRemoteSink(c) }

// Trace codecs.

// WriteTraceBinary writes a trace in the compact binary format.
func WriteTraceBinary(w io.Writer, tr *Trace) error { return trace.WriteBinary(w, tr) }

// ReadTraceBinary reads a binary trace.
func ReadTraceBinary(r io.Reader) (*Trace, error) { return trace.ReadBinary(r) }

// WriteTraceJSONL writes a trace as JSON lines.
func WriteTraceJSONL(w io.Writer, tr *Trace) error { return trace.WriteJSONL(w, tr) }

// ReadTraceJSONL reads a JSON-lines trace.
func ReadTraceJSONL(r io.Reader) (*Trace, error) { return trace.ReadJSONL(r) }

// SummarizeTrace computes Table I-style statistics.
func SummarizeTrace(tr *Trace) trace.Stats { return trace.Summarize(tr) }
