package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Standalone package loading: `go list -export -deps` resolves build
// metadata and materializes export data for every dependency in the build
// cache, and importer.ForCompiler turns those export files into
// types.Packages. This gives full cross-package type information with no
// dependencies beyond the go toolchain itself.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (a directory inside the module), parses the
// matched packages' non-test sources, and type-checks them against export
// data for their dependencies. Packages are returned in go list order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	fields := "ImportPath,Name,Dir,Export,GoFiles,DepOnly,Error"
	args := append([]string{"list", "-e", "-export", "-deps", "-json=" + fields, "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{Fset: fset, Syntax: files, Types: tpkg, Info: info})
	}
	return pkgs, nil
}
