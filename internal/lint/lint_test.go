package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestParseDirectivesRejectsMalformedAllows(t *testing.T) {
	fset, f := parseSrc(t, `package p

func a() {
	//ocasta:allow
	_ = 1
	//ocasta:allow stickyerr
	_ = 2
	//ocasta:allow stickyerr the file is read-only
	_ = 3
}
`)
	d, diags := ParseDirectives(fset, []*ast.File{f})
	if len(diags) != 2 {
		t.Fatalf("got %d directive diagnostics, want 2: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "requires an analyzer name and a justification") {
		t.Errorf("bare allow diagnostic = %q", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "requires a justification string") {
		t.Errorf("justification-less allow diagnostic = %q", diags[1].Message)
	}
	// Only the well-formed allow (line 8) suppresses — on its own line
	// and the line below.
	for _, line := range []int{8, 9} {
		if !d.Allowed("stickyerr", token.Position{Filename: "d.go", Line: line}) {
			t.Errorf("well-formed allow does not cover line %d", line)
		}
	}
	// The malformed ones suppress nothing.
	for _, line := range []int{4, 5, 6, 7} {
		if d.Allowed("stickyerr", token.Position{Filename: "d.go", Line: line}) {
			t.Errorf("malformed allow wrongly suppresses line %d", line)
		}
	}
}

func TestParseDirectivesAllowIsPerAnalyzer(t *testing.T) {
	fset, f := parseSrc(t, `package p

func a() {
	//ocasta:allow lockorder indices disjoint by construction
	_ = 1
}
`)
	d, diags := ParseDirectives(fset, []*ast.File{f})
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	pos := token.Position{Filename: "d.go", Line: 5}
	if !d.Allowed("lockorder", pos) {
		t.Error("allow does not cover its own analyzer")
	}
	if d.Allowed("stickyerr", pos) {
		t.Error("allow leaks across analyzers")
	}
}

func TestParseDirectivesUnknownVerb(t *testing.T) {
	fset, f := parseSrc(t, `package p

//ocasta:frobnicate
func a() {}
`)
	_, diags := ParseDirectives(fset, []*ast.File{f})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unknown directive") {
		t.Fatalf("diagnostics = %v, want one unknown-directive report", diags)
	}
}

func TestCollectAnnotationsFromSource(t *testing.T) {
	fset, f := parseSrc(t, `package p

type obs interface {
	//ocasta:nolock
	Notify(k string)
}

type gc struct {
	//ocasta:nolock
	onCommit func(uint64)
	//ocasta:atomic
	gen uint64
}

//ocasta:durable
type wal struct{}

//ocasta:lockfn
func lockAll() func() { return nil }
`)
	// Type-check with no imports so Defs is populated.
	pkg, err := typeCheckForTest(fset, f)
	if err != nil {
		t.Fatal(err)
	}
	ann := NewAnnotations()
	ann.CollectAnnotations([]*Package{pkg})
	for key, m := range map[string]map[string]bool{
		"(p.obs).Notify": ann.NoLock,
		"p.gc.onCommit":  ann.NoLock,
		"p.gc.gen":       ann.AtomicFields,
		"p.wal":          ann.Durable,
		"p.lockAll":      ann.LockFns,
	} {
		if !m[key] {
			t.Errorf("annotation %q not collected", key)
		}
	}
}

// TestBuiltinSeeds pins the cross-package annotation seeds that must
// hold even when the declaring package is loaded from export data: the
// MVCC publication fields and the durable log types.
func TestBuiltinSeeds(t *testing.T) {
	ann := NewAnnotations()
	for _, key := range []string{
		"ocasta/internal/ttkv.record.state",
		"ocasta/internal/ttkv.shard.records",
		"ocasta/internal/ttkv.publisher.visible",
	} {
		if !ann.AtomicFields[key] {
			t.Errorf("atomic-field seed %q missing", key)
		}
	}
	for _, key := range []string{
		"ocasta/internal/ttkv.AOF",
		"ocasta/internal/ttkv.SegmentedAOF",
		"ocasta/internal/ttkv.GroupCommit",
	} {
		if !ann.Durable[key] {
			t.Errorf("durable seed %q missing", key)
		}
	}
}

func typeCheckForTest(fset *token.FileSet, f *ast.File) (*Package, error) {
	info := NewInfo()
	var conf types.Config
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Syntax: []*ast.File{f}, Types: tpkg, Info: info}, nil
}
