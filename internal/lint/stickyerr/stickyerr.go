// Package stickyerr enforces that durability verdicts are never dropped:
// an error returned by a method of a type annotated //ocasta:durable
// (GroupCommit, AOF, ReplLog, os.File, bufio.Writer — the types whose
// Close/Sync/Flush is where buffered writes meet the disk) must be
// checked. Discarding one is allowed only explicitly — `_ = f.Close()`
// with an explanatory comment on the same or preceding line — and
// deferred or goroutine-spawned calls that drop the error are flagged
// because there is no way to observe it at all.
//
// Tests are excluded: teardown in _test.go legitimately discards errors.
package stickyerr

import (
	"go/ast"
	"go/types"
	"strings"

	"ocasta/internal/lint"
)

// Analyzer is the stickyerr rule.
var Analyzer = &lint.Analyzer{
	Name: "stickyerr",
	Doc: "error results of methods on //ocasta:durable types (AOF, " +
		"GroupCommit, ReplLog, os.File, bufio.Writer) must be checked, or " +
		"discarded explicitly with `_ =` plus a comment",
	SkipTests: true,
	Run:       run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		commented := commentLines(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if recv, m := durableErrCall(pass, n.X); m != "" {
					pass.Reportf(n.Pos(), "result of (%s).%s carries a durability verdict; check it or discard with `_ =` and a comment", recv, m)
				}
			case *ast.DeferStmt:
				if recv, m := durableErrCall(pass, n.Call); m != "" {
					pass.Reportf(n.Pos(), "deferred (%s).%s discards its durability error; close explicitly on the success path", recv, m)
				}
			case *ast.GoStmt:
				if recv, m := durableErrCall(pass, n.Call); m != "" {
					pass.Reportf(n.Pos(), "go (%s).%s discards its durability error", recv, m)
				}
			case *ast.AssignStmt:
				checkBlankDiscard(pass, n, commented)
			}
			return true
		})
	}
	return nil
}

// checkBlankDiscard flags `_ = durableCall()` without an explanatory
// comment on the same or preceding line.
func checkBlankDiscard(pass *lint.Pass, n *ast.AssignStmt, commented map[int]bool) {
	if len(n.Rhs) != 1 {
		return
	}
	for _, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return
		}
	}
	recv, m := durableErrCall(pass, n.Rhs[0])
	if m == "" {
		return
	}
	line := pass.Fset.Position(n.Pos()).Line
	if !commented[line] && !commented[line-1] {
		pass.Reportf(n.Pos(), "explicit discard of (%s).%s needs a comment saying why the durability error does not matter here", recv, m)
	}
}

// durableErrCall reports whether e is a call to an error-returning method
// on an //ocasta:durable type, returning the receiver type's short name
// and the method name.
func durableErrCall(pass *lint.Pass, e ast.Expr) (recvName, method string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok {
		return "", ""
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok {
		return "", ""
	}
	key := lint.TypeKey(selection.Recv())
	if key == "" || !pass.Ann.Durable[key] {
		return "", ""
	}
	if !returnsError(fn) {
		return "", ""
	}
	return shortName(key), fn.Name()
}

// returnsError reports whether fn's last result is error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// shortName trims the package path from an annotation key:
// "ocasta/internal/ttkv.AOF" -> "ttkv.AOF", "os.File" -> "os.File".
func shortName(key string) string {
	slash := -1
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '/' {
			slash = i
			break
		}
	}
	return key[slash+1:]
}

// commentLines records which lines of f carry any comment.
func commentLines(pass *lint.Pass, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			// linttest expectation markers are not explanatory comments.
			if strings.HasPrefix(c.Text, "// want ") {
				continue
			}
			start := pass.Fset.Position(c.Pos()).Line
			end := pass.Fset.Position(c.End()).Line
			for l := start; l <= end; l++ {
				lines[l] = true
			}
		}
	}
	return lines
}
