package stickyerr_test

import (
	"testing"

	"ocasta/internal/lint/linttest"
	"ocasta/internal/lint/stickyerr"
)

func TestStickyErr(t *testing.T) {
	linttest.Run(t, "testdata/src/a", stickyerr.Analyzer)
}
