// Package a exercises the stickyerr analyzer: durability-bearing error
// results must be checked or explicitly, explainedly discarded.
package a

import (
	"bufio"
	"os"
)

// wal is durability-bearing by annotation.
//
//ocasta:durable
type wal struct{}

func (w *wal) Append(b []byte) error { return nil }
func (w *wal) Close() error          { return nil }
func (w *wal) name() string          { return "wal" }

// plain is an ordinary type; errcheck-style strictness does not apply.
type plain struct{}

func (p *plain) Close() error { return nil }

// Discarding the result of a durable method is flagged.
func discarded(w *wal) {
	w.Append(nil) // want "result of .* carries a durability verdict"
}

// Checking it is the happy path.
func checked(w *wal) error {
	if err := w.Append(nil); err != nil {
		return err
	}
	return w.Close()
}

// A deferred close silently drops a flush-at-close failure.
func deferred(w *wal) {
	defer w.Close() // want "deferred .* discards its durability error"
}

// So does handing it to a goroutine.
func goDropped(w *wal) {
	go w.Close() // want "discards its durability error"
}

// A blank discard needs a comment explaining itself.
func blankNoComment(w *wal) {
	_ = w.Close() // want "needs a comment saying why the durability error does not matter"
}

// With an explanation it is accepted.
func blankWithComment(w *wal) error {
	err := w.Append(nil)
	_ = w.Close() // the append error is the verdict; close is cleanup
	return err
}

// Non-error methods on durable types are not durability results.
func named(w *wal) string {
	return w.name()
}

// Non-durable types are out of scope.
func plainOK(p *plain) {
	p.Close()
}

// The built-in seeds cover types whose sources are never loaded.
func seededFile(f *os.File) {
	f.Close() // want "result of .os.File..Close carries a durability verdict"
}

func seededWriter(bw *bufio.Writer) {
	bw.Flush() // want "result of .bufio.Writer..Flush carries a durability verdict"
}

// A justified suppression is honored.
func allowedDefer(f *os.File) {
	//ocasta:allow stickyerr file opened read-only by the caller; nothing buffered
	defer f.Close()
}

// A suppression without a justification is rejected and suppresses
// nothing.
func rejectedDefer(f *os.File) {
	//ocasta:allow stickyerr // want "requires a justification string"
	defer f.Close() // want "deferred .* discards its durability error"
}
