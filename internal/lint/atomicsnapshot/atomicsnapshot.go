// Package atomicsnapshot enforces atomic-pointer-only snapshot
// publication: once a struct field is the subject of a sync/atomic
// operation anywhere in the package — or is annotated //ocasta:atomic —
// every other access must also go through sync/atomic. A plain read of
// such a field races with its atomic writers; a plain write (including
// reassigning a field of one of the sync/atomic wrapper types) tears the
// publication protocol. Engine.published and the ttkv shard read counters
// are the archetypes.
package atomicsnapshot

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ocasta/internal/lint"
)

// Analyzer is the atomicsnapshot rule.
var Analyzer = &lint.Analyzer{
	Name: "atomicsnapshot",
	Doc: "a field accessed via sync/atomic (or annotated //ocasta:atomic) " +
		"must never be read or written directly, and values of the " +
		"sync/atomic wrapper types must not be copied or reassigned",
	Run: run,
}

func run(pass *lint.Pass) error {
	atomicFields := collectAtomicFields(pass)
	for _, f := range pass.Files {
		checkFile(pass, f, atomicFields)
	}
	return nil
}

// atomicOps are the sync/atomic function names whose &x.f argument marks
// f as atomically accessed.
func isAtomicOp(name string) bool {
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "Or", "And"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// collectAtomicFields finds every field passed by address to a
// function-style sync/atomic operation anywhere in the package.
func collectAtomicFields(pass *lint.Pass) map[*types.Var]bool {
	fields := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !isAtomicOp(fn.Name()) {
				return true
			}
			if v := addrOfField(pass, call.Args[0]); v != nil {
				fields[v] = true
			}
			return true
		})
	}
	return fields
}

// addrOfField matches &x.f and returns f's object.
func addrOfField(pass *lint.Pass, e ast.Expr) *types.Var {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// checkFile reports direct accesses to atomic fields and copies or
// reassignments of sync/atomic wrapper values.
func checkFile(pass *lint.Pass, f *ast.File, atomicFields map[*types.Var]bool) {
	// exempt marks selector expressions that are the legitimate atomic
	// access itself: the &x.f argument of a sync/atomic call, and the
	// receiver of a wrapper-type method call (x.f.Load()).
	exempt := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if fn.Pkg().Path() == "sync/atomic" && isAtomicOp(fn.Name()) && len(call.Args) > 0 {
				if u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND {
					if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
						exempt[sel] = true
					}
				}
			}
			// x.f.Load(): the method's receiver expression is x.f.
			if isWrapperType(fn.Type().(*types.Signature).Recv()) {
				if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
					exempt[sel] = true
				}
			}
		}
		return true
	})

	// writes marks selectors on the left of an assignment.
	writes := make(map[ast.Expr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				writes[ast.Unparen(lhs)] = true
			}
		case *ast.IncDecStmt:
			writes[ast.Unparen(n.X)] = true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// Taking the address alone is not an access; the atomic
				// call cases are filtered by exempt above, and &x.f passed
				// elsewhere is out of scope for this rule.
				if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok {
					exempt[sel] = true
				}
			}
		}
		return true
	})

	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || exempt[sel] {
			return true
		}
		v, ok := pass.Info.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return true
		}
		marked := atomicFields[v]
		if !marked {
			if s, ok := pass.Info.Selections[sel]; ok {
				marked = pass.Ann.AtomicFields[lint.FieldKey(v, s.Recv())]
			}
		}
		wrapper := isWrapperVar(v)
		if !marked && !wrapper {
			return true
		}
		verb := "read"
		if writes[ast.Expr(sel)] {
			verb = "written"
		}
		switch {
		case wrapper && writes[ast.Expr(sel)]:
			pass.Reportf(sel.Pos(), "field %s has a sync/atomic type and must not be reassigned; use its Store method", v.Name())
		case wrapper:
			pass.Reportf(sel.Pos(), "field %s has a sync/atomic type and must not be copied; use its Load method", v.Name())
		default:
			pass.Reportf(sel.Pos(), "field %s is atomic (sync/atomic access elsewhere or //ocasta:atomic) and must not be %s directly", v.Name(), verb)
		}
		return true
	})
}

// isWrapperType reports whether recv is one of the sync/atomic wrapper
// types (atomic.Pointer[T], atomic.Value, atomic.Int64, ...).
func isWrapperType(recv *types.Var) bool {
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// isWrapperVar reports whether v's type is a sync/atomic wrapper type.
func isWrapperVar(v *types.Var) bool {
	t := v.Type()
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
