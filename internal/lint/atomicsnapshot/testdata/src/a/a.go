// Package a exercises the atomicsnapshot analyzer: fields published
// atomically must never be touched directly.
package a

import "sync/atomic"

type box struct{ v int }

type engine struct {
	// published is an atomic.Pointer: wrapper-type misuse is flagged
	// structurally, no marking needed.
	published atomic.Pointer[box]
	// count is a plain int64 accessed through function-style sync/atomic
	// calls elsewhere in the package.
	count int64
	// plain is an ordinary field; direct access is fine.
	plain int
	// gen is atomic by annotation even though no sync/atomic call in this
	// package touches it.
	//ocasta:atomic
	gen uint64
}

// Wrapper methods are the sanctioned access path.
func (e *engine) snapshot() *box {
	return e.published.Load()
}

func (e *engine) publish(b *box) {
	e.published.Store(b)
}

// Function-style atomics mark count as atomic for the whole package.
func (e *engine) inc() {
	atomic.AddInt64(&e.count, 1)
}

func (e *engine) badRead() int64 {
	return e.count // want "field count is atomic .* and must not be read directly"
}

func (e *engine) badWrite() {
	e.count = 0 // want "field count is atomic .* and must not be written directly"
}

func (e *engine) badCopy() atomic.Pointer[box] {
	return e.published // want "field published has a sync/atomic type and must not be copied; use its Load method"
}

func (e *engine) badReassign() {
	e.published = atomic.Pointer[box]{} // want "field published has a sync/atomic type and must not be reassigned; use its Store method"
}

func (e *engine) annotatedRead() uint64 {
	return e.gen // want "field gen is atomic .* and must not be read directly"
}

func (e *engine) annotatedAtomicUse() uint64 {
	return atomic.LoadUint64(&e.gen)
}

func (e *engine) plainUse() int {
	e.plain++
	return e.plain
}

// The MVCC publication pattern: a record's immutable state is built as
// a successor value and published with one Store; readers Load and walk
// the slice. The wrapper type makes any other access structurally wrong.
type version struct{ seq uint64 }

type recState struct{ versions []version }

type mvccRecord struct {
	state atomic.Pointer[recState]
}

func (r *mvccRecord) insert(v version) {
	st := r.state.Load()
	vs := st.versions
	ns := &recState{versions: append(vs[:len(vs):len(vs)], v)}
	r.state.Store(ns)
}

func (r *mvccRecord) badStateCopy() atomic.Pointer[recState] {
	return r.state // want "field state has a sync/atomic type and must not be copied; use its Load method"
}

func (r *mvccRecord) badStateReassign() {
	r.state = atomic.Pointer[recState]{} // want "field state has a sync/atomic type and must not be reassigned; use its Store method"
}

// A justified suppression is honored.
func (e *engine) allowedRead() int64 {
	//ocasta:allow atomicsnapshot read under the engine init lock before any concurrent access
	return e.count
}

// A suppression without a justification is rejected and suppresses
// nothing.
func (e *engine) rejectedRead() int64 {
	//ocasta:allow atomicsnapshot // want "requires a justification string"
	return e.count // want "field count is atomic .* and must not be read directly"
}
