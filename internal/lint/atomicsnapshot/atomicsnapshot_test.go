package atomicsnapshot_test

import (
	"testing"

	"ocasta/internal/lint/atomicsnapshot"
	"ocasta/internal/lint/linttest"
)

func TestAtomicSnapshot(t *testing.T) {
	linttest.Run(t, "testdata/src/a", atomicsnapshot.Analyzer)
}
