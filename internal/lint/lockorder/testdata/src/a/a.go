// Package a exercises the lockorder analyzer: striped locks held
// together must be acquired in ascending index order.
package a

import (
	"sort"
	"sync"
)

type shard struct {
	mu   sync.Mutex
	vals map[string]string
}

type store struct {
	shards []shard
}

// Inverted sequential acquisition: j's ordering against i is unprovable.
func (s *store) inverted(i, j int) {
	s.shards[j].mu.Lock()
	s.shards[i].mu.Lock() // want "locked while .* is held without a proven ascending index order"
	s.shards[i].mu.Unlock()
	s.shards[j].mu.Unlock()
}

// Integer literals prove the ordering.
func (s *store) literalsAscending() {
	s.shards[0].mu.Lock()
	s.shards[2].mu.Lock()
	s.shards[2].mu.Unlock()
	s.shards[0].mu.Unlock()
}

func (s *store) literalsDescending() {
	s.shards[2].mu.Lock()
	s.shards[0].mu.Lock() // want "locked while .* is held without a proven ascending index order"
	s.shards[0].mu.Unlock()
	s.shards[2].mu.Unlock()
}

// Accumulating over an index range is the canonical lock-all shape.
func (s *store) lockAllAscending() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}

// Accumulating in descending order is a deadlock against lockAllAscending.
func (s *store) lockAllDescending() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Lock() // want "accumulated across loop iterations without a proven ascending index order"
	}
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
}

// A subset is fine once the index slice is proven sorted.
func (s *store) sortedSubset(idxs []int) {
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	for _, i := range idxs {
		s.shards[i].mu.Lock()
	}
	for _, i := range idxs {
		s.shards[i].mu.Unlock()
	}
}

func (s *store) unsortedSubset(idxs []int) {
	for _, i := range idxs {
		s.shards[i].mu.Lock() // want "accumulated across loop iterations without a proven ascending index order"
	}
	for _, i := range idxs {
		s.shards[i].mu.Unlock()
	}
}

// Per-iteration lock/unlock pairs never overlap, so even an unordered
// iteration (a map) needs no proof.
func (s *store) perIterationMapOrder(m map[int]bool) {
	for i := range m {
		s.shards[i].mu.Lock()
		s.shards[i].vals["k"] = "v"
		s.shards[i].mu.Unlock()
	}
}

// Element aliases participate: sh is a stripe of s.shards.
func (s *store) aliasedPair(i, j int) {
	sh := &s.shards[j]
	sh.mu.Lock()
	s.shards[i].mu.Lock() // want "locked while .* is held without a proven ascending index order"
	s.shards[i].mu.Unlock()
	sh.mu.Unlock()
}

// lockAll acquires every stripe; the returned func releases them.
//
//ocasta:lockfn
func (s *store) lockAll() (unlock func()) {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	return func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}
}

// Taking a stripe while a lockfn's sorted set is held is unprovable.
func (s *store) fnThenStripe() {
	unlock := s.lockAll()
	s.shards[0].mu.Lock() // want "taken while locks from an //ocasta:lockfn call are held"
	s.shards[0].mu.Unlock()
	unlock()
}

// And so is calling a lockfn while already holding a stripe.
func (s *store) stripeThenFn() {
	s.shards[0].mu.Lock()
	unlock := s.lockAll() // want "while stripe lock .* is held"
	unlock()
	s.shards[0].mu.Unlock()
}

// The canonical lockfn usage: acquire, defer, release early.
func (s *store) fnProperly() {
	unlock := s.lockAll()
	defer unlock()
	s.shards[0].vals["k"] = "v"
	unlock()
}

// A justified suppression is honored.
func (s *store) allowedInversion(i, j int) {
	s.shards[j].mu.Lock()
	//ocasta:allow lockorder caller contract guarantees i and j never overlap
	s.shards[i].mu.Lock()
	s.shards[i].mu.Unlock()
	s.shards[j].mu.Unlock()
}

// A suppression without a justification is rejected and suppresses
// nothing.
func (s *store) rejectedSuppression(i, j int) {
	s.shards[j].mu.Lock()
	//ocasta:allow lockorder // want "requires a justification string"
	s.shards[i].mu.Lock() // want "locked while .* is held without a proven ascending index order"
	s.shards[i].mu.Unlock()
	s.shards[j].mu.Unlock()
}
