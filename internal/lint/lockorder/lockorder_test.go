package lockorder_test

import (
	"testing"

	"ocasta/internal/lint/linttest"
	"ocasta/internal/lint/lockorder"
)

func TestLockOrder(t *testing.T) {
	linttest.Run(t, "testdata/src/a", lockorder.Analyzer)
}
