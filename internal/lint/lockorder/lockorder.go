// Package lockorder enforces the store's deadlock-freedom convention for
// striped locks: when more than one stripe of a lock array
// (s.shards[i].mu) is held at once, the stripes must have been acquired
// in ascending index order. ttkv.Store.lockShardsFor and Store.Reset are
// the archetypes; any new multi-shard locker must follow the same shape
// or carry an //ocasta:allow lockorder justification.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"ocasta/internal/lint"
)

// Analyzer is the lockorder rule.
var Analyzer = &lint.Analyzer{
	Name: "lockorder",
	Doc: "striped locks (shards[i].mu) held together must be acquired in " +
		"ascending index order: loops that accumulate stripe locks must " +
		"iterate a proven-ascending index sequence, and a second stripe " +
		"lock outside a loop needs a provable index ordering",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, body := range lint.FuncBodies(f) {
			checkFunc(pass, body)
		}
	}
	return nil
}

func checkFunc(pass *lint.Pass, body *ast.BlockStmt) {
	events := lint.TraceFunc(pass, body)
	lint.ReplayLocks(pass, events, func(ev lint.Event, held *lint.Held) {
		switch ev.Kind {
		case lint.EvLock:
			if ev.Shard == nil || ev.Deferred {
				return
			}
			checkStripeLock(pass, events, ev, held)
		case lint.EvCall:
			// A lockfn acquires its stripes in sorted order internally,
			// but that order cannot be sequenced against stripes the
			// caller already holds.
			if lint.IsLockFn(pass, ev.Callee) && !ev.Deferred && len(held.Shards()) > 0 {
				pass.Reportf(ev.Pos, "call to //ocasta:lockfn function %s while stripe lock %s is held: the sorted acquisition inside cannot be ordered against it",
					ev.Callee.Name(), held.Shards()[0].Mutex)
			}
		}
	})
}

// checkStripeLock validates one stripe acquisition against what is held
// and, for accumulating loops, the loop's iteration order.
func checkStripeLock(pass *lint.Pass, events []lint.Event, ev lint.Event, held *lint.Held) {
	if held.HoldingFn() {
		pass.Reportf(ev.Pos, "stripe lock %s taken while locks from an //ocasta:lockfn call are held: acquisition order against the sorted set is unprovable", ev.Mutex)
		return
	}
	for _, prev := range held.Shards() {
		if prev.Shard.Base != ev.Shard.Base {
			continue
		}
		if prev.Mutex == ev.Mutex && prev.Shard.Index == ev.Shard.Index {
			// Re-replay of the same source lock (loop accumulation);
			// ordering across iterations is the loop proof's job below.
			continue
		}
		if !literalLess(prev.Shard.Index, ev.Shard.Index) {
			pass.Reportf(ev.Pos, "%s locked while %s is held without a proven ascending index order", ev.Mutex, prev.Mutex)
			return
		}
	}
	if ev.Loop != nil && accumulatesInLoop(events, ev) && !ascendingLoop(pass, events, ev.Loop, ev.Shard) {
		pass.Reportf(ev.Pos, "stripe lock %s accumulated across loop iterations without a proven ascending index order", ev.Mutex)
	}
}

// accumulatesInLoop reports whether a stripe lock taken inside a loop is
// still held when the next iteration begins: there is no non-deferred
// unlock of the same mutex later in the same loop. Per-iteration
// lock/unlock pairs need no ordering proof.
func accumulatesInLoop(events []lint.Event, lock lint.Event) bool {
	for _, ev := range events {
		if ev.Kind == lint.EvUnlock && !ev.Deferred && ev.Pos > lock.Pos &&
			ev.Loop == lock.Loop && ev.Mutex == lock.Mutex && ev.Read == lock.Read {
			return false
		}
	}
	return true
}

// literalLess proves a < b for integer-literal index expressions.
func literalLess(a, b ast.Expr) bool {
	av, aok := intLit(a)
	bv, bok := intLit(b)
	return aok && bok && av < bv
}

func intLit(e ast.Expr) (int64, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	v, err := strconv.ParseInt(lit.Value, 0, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// ascendingLoop proves that loop visits shard.Index in strictly
// ascending order. Accepted shapes:
//
//	for i := range base          — index is the range key over the array
//	for i := 0; i < n; i++       — index is a monotonically incremented var
//	for _, i := range idxs       — idxs was sorted ascending earlier in the
//	                               function (slices.Sort, sort.Ints, or
//	                               sort.Slice with an ascending comparator)
func ascendingLoop(pass *lint.Pass, events []lint.Event, loop ast.Stmt, shard *lint.ShardRef) bool {
	idxObj := identObj(pass, shard.Index)
	if idxObj == nil {
		return false
	}
	switch l := loop.(type) {
	case *ast.RangeStmt:
		if keyObj := declObj(pass, l.Key); keyObj != nil && keyObj == idxObj &&
			lint.ExprText(pass.Fset, l.X) == shard.Base {
			return true
		}
		if valObj := declObj(pass, l.Value); valObj != nil && valObj == idxObj {
			if src := identObj(pass, l.X); src != nil {
				return sortedBefore(pass, events, src, loop.Pos())
			}
		}
	case *ast.ForStmt:
		return countsUp(pass, l, idxObj)
	}
	return false
}

// countsUp matches `for i := <int>; i < n; i++` (or i <= n) with i being
// obj.
func countsUp(pass *lint.Pass, l *ast.ForStmt, obj types.Object) bool {
	init, ok := l.Init.(*ast.AssignStmt)
	if !ok || init.Tok != token.DEFINE || len(init.Lhs) != 1 {
		return false
	}
	id, ok := init.Lhs[0].(*ast.Ident)
	if !ok || pass.Info.Defs[id] != obj {
		return false
	}
	post, ok := l.Post.(*ast.IncDecStmt)
	if !ok || post.Tok != token.INC {
		return false
	}
	pid, ok := ast.Unparen(post.X).(*ast.Ident)
	return ok && pass.Info.Uses[pid] == obj
}

// sortedBefore reports whether slice obj was sorted ascending by a call
// earlier in the function than pos: slices.Sort(x), sort.Ints(x), or
// sort.Slice(x, func(a, b) bool { return x[a] < x[b] }).
func sortedBefore(pass *lint.Pass, events []lint.Event, slice types.Object, pos token.Pos) bool {
	for _, ev := range events {
		if ev.Kind != lint.EvCall || ev.Pos >= pos || ev.Deferred {
			continue
		}
		fn, ok := ev.Callee.(*types.Func)
		if !ok || len(ev.Call.Args) == 0 {
			continue
		}
		if identObj(pass, ev.Call.Args[0]) != slice {
			continue
		}
		switch fn.FullName() {
		case "slices.Sort", "sort.Ints":
			return true
		case "sort.Slice":
			if len(ev.Call.Args) == 2 && ascendingComparator(pass, ev.Call.Args[1], slice) {
				return true
			}
		}
	}
	return false
}

// ascendingComparator matches func(a, b int) bool { return x[a] < x[b] }.
func ascendingComparator(pass *lint.Pass, e ast.Expr, slice types.Object) bool {
	fl, ok := ast.Unparen(e).(*ast.FuncLit)
	if !ok || len(fl.Body.List) != 1 {
		return false
	}
	ret, ok := fl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	cmp, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
	if !ok || cmp.Op != token.LSS {
		return false
	}
	params := fl.Type.Params.List
	var names []*ast.Ident
	for _, p := range params {
		names = append(names, p.Names...)
	}
	if len(names) != 2 {
		return false
	}
	a := pass.Info.Defs[names[0]]
	b := pass.Info.Defs[names[1]]
	return indexedBy(pass, cmp.X, slice, a) && indexedBy(pass, cmp.Y, slice, b)
}

// indexedBy matches the expression slice[param].
func indexedBy(pass *lint.Pass, e ast.Expr, slice, param types.Object) bool {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	return identObj(pass, ix.X) == slice && identObj(pass, ix.Index) == param
}

// identObj resolves an identifier expression to its object.
func identObj(pass *lint.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info.Uses[id]
}

// declObj resolves a range-clause key/value to the variable it defines or
// assigns.
func declObj(pass *lint.Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}
