// Package linttest is the self-test harness for the ocastalint
// analyzers, in the style of golang.org/x/tools/go/analysis/analysistest
// but built on the standard library only. A test points Run at a
// testdata package (testdata/src/<name>, invisible to the go tool),
// which is parsed, type-checked against toolchain export data, and
// analyzed; diagnostics are compared against expectation comments:
//
//	f.Close() // want "regexp matching the message"
//
// Every diagnostic must be claimed by a want on its line and every want
// must be matched — directive diagnostics (malformed //ocasta:allow)
// included, so testdata can assert that a suppression without a
// justification is rejected.
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"ocasta/internal/lint"
)

// Run analyzes the testdata package in dir (relative to the test's
// package directory, e.g. "testdata/src/a") with a and checks the
// diagnostics against the package's // want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	pkg, err := loadTestdata(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, pkg, diags)
}

// loadTestdata parses and type-checks the single package rooted at dir.
func loadTestdata(dir string) (*lint.Package, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			imports[path] = true
		}
	}

	exports, err := exportData(imports)
	if err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	info := lint.NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check("testdata/"+filepath.Base(dir), fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Package{Fset: fset, Syntax: files, Types: tpkg, Info: info}, nil
}

// exportData resolves import paths (plus transitive deps) to export
// files via the build cache.
func exportData(imports map[string]bool) (map[string]string, error) {
	exports := make(map[string]string)
	if len(imports) == 0 {
		return exports, nil
	}
	paths := make([]string, 0, len(imports))
	for p := range imports {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export", "--"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// want is one expectation: a diagnostic on a given line whose message
// matches re.
type want struct {
	pos     string // file:line
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`// want (.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// collectWants extracts // want "re" expectations from every comment.
func collectWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
				if len(quoted) == 0 {
					t.Errorf("%s: // want comment with no quoted regexp", pos)
					continue
				}
				for _, q := range quoted {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, q[1], err)
						continue
					}
					wants = append(wants, &want{
						pos: fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
						re:  re,
					})
				}
			}
		}
	}
	return wants
}

// checkWants pairs diagnostics with expectations one-to-one per line.
func checkWants(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		pos := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		claimed := false
		for _, w := range wants {
			if !w.matched && w.pos == pos && w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.re)
		}
	}
}
