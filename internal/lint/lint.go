// Package lint is the project's static-analysis framework: a minimal,
// dependency-free analogue of golang.org/x/tools/go/analysis that the
// ocastalint analyzers run on. The repo's concurrency and durability
// conventions — shard locks are taken in ascending index order, observers
// are notified outside locks, sequence numbers are minted inside the sink
// critical section, snapshots are published only through atomic pointers,
// durability-bearing errors are never dropped — are stated in comments all
// over internal/ttkv and internal/core; this package and its analyzers
// turn them into machine-checked rules (cmd/ocastalint, wired into CI as a
// blocking step).
//
// # Annotation vocabulary
//
// Rules are driven by directive comments placed on declarations:
//
//	//ocasta:nolock   on a function, interface method, or func-typed
//	                  struct field: it must never be called while a
//	                  tracked mutex is held (nocallunderlock).
//	//ocasta:lockfn   on a function: calling it acquires locks; invoking
//	                  the function value it returns releases them
//	                  (ttkv.Store.lockShardsFor is the archetype).
//	//ocasta:durable  on a type: error results of its methods carry a
//	                  durability verdict and must be checked (stickyerr).
//	//ocasta:atomic   on a struct field: every access must go through
//	                  sync/atomic (atomicsnapshot).
//
// A diagnostic is suppressed by an allow directive on the same line or the
// line directly above, and the justification string is mandatory:
//
//	//ocasta:allow <analyzer> <justification>
//
// An allow without a justification is itself reported and does not
// suppress anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static-analysis rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ocasta:allow directives.
	Name string
	// Doc is the one-paragraph description printed by ocastalint -list.
	Doc string
	// SkipTests excludes _test.go files from the run (stickyerr sets it:
	// tests legitimately discard teardown errors).
	SkipTests bool
	// Run reports the analyzer's findings on one package via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Ann is the annotation index, built from every package loaded in
	// this run plus the built-in seeds, so cross-package contracts
	// (ttkv.StatsObserver.ObserveWrite, os.File, ...) hold even when the
	// declaring package is only available as export data.
	Ann *Annotations

	report func(Diagnostic)
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Directive prefixes.
const (
	directivePrefix = "//ocasta:"
	allowDirective  = "//ocasta:allow"
)

// declDirectives are the directives that attach to declarations.
var declDirectives = map[string]bool{
	"nolock":  true,
	"lockfn":  true,
	"durable": true,
	"atomic":  true,
}

// allowKey locates one allow directive: a file/line pair plus the analyzer
// it suppresses.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// Directives indexes a package's //ocasta:allow comments for suppression
// lookups.
type Directives struct {
	allows map[allowKey]bool
}

// ParseDirectives scans every comment in files for //ocasta: directives,
// indexing well-formed allows and reporting malformed ones (an allow
// without a justification, or an unknown directive verb) — a suppression
// that cannot explain itself is rejected rather than honored.
func ParseDirectives(fset *token.FileSet, files []*ast.File) (*Directives, []Diagnostic) {
	d := &Directives{allows: make(map[allowKey]bool)}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: "ocastadirective",
			Pos:      fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				// Strip a trailing linttest expectation so testdata can
				// assert diagnostics reported on directive comments
				// themselves; "// want" never occurs in a real
				// justification.
				if i := strings.Index(text, " // want"); i >= 0 {
					text = strings.TrimRight(text[:i], " \t")
				}
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				if strings.HasPrefix(text, allowDirective) {
					rest := strings.TrimPrefix(text, allowDirective)
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						report(c.Pos(), "//ocasta:allow requires an analyzer name and a justification")
						continue
					}
					if len(fields) < 2 {
						report(c.Pos(), "//ocasta:allow %s requires a justification string", fields[0])
						continue
					}
					pos := fset.Position(c.Pos())
					d.allows[allowKey{file: pos.Filename, line: pos.Line, analyzer: fields[0]}] = true
					continue
				}
				verb := strings.TrimPrefix(text, directivePrefix)
				if i := strings.IndexAny(verb, " \t"); i >= 0 {
					verb = verb[:i]
				}
				if !declDirectives[verb] {
					report(c.Pos(), "unknown directive //ocasta:%s (known: nolock, lockfn, durable, atomic, allow)", verb)
				}
			}
		}
	}
	return d, diags
}

// Allowed reports whether a diagnostic from analyzer at pos is suppressed:
// a well-formed //ocasta:allow <analyzer> <justification> sits on the same
// line or the line directly above.
func (d *Directives) Allowed(analyzer string, pos token.Position) bool {
	return d.allows[allowKey{file: pos.Filename, line: pos.Line, analyzer: analyzer}] ||
		d.allows[allowKey{file: pos.Filename, line: pos.Line - 1, analyzer: analyzer}]
}

// Annotations is the cross-package index of annotated declarations. Keys:
//   - NoLock, LockFns: types.Func FullName ("pkg.F",
//     "(pkg.T).M", "(*pkg.T).M", "(pkg.I).M"), or "pkgpath.Type.field" for
//     func-typed struct fields.
//   - Durable: "pkgpath.TypeName".
//   - AtomicFields: "pkgpath.Type.field".
type Annotations struct {
	NoLock       map[string]bool
	LockFns      map[string]bool
	Durable      map[string]bool
	AtomicFields map[string]bool
}

// NewAnnotations returns an index seeded with the contracts that must hold
// even when the declaring package is not loaded from source in this run
// (export-data imports, go vet -vettool single-package units). The ocasta
// entries mirror in-tree //ocasta: annotations; the std entries cover
// types whose sources we never load.
func NewAnnotations() *Annotations {
	return &Annotations{
		NoLock: map[string]bool{
			// Store observers run on the writer's goroutine after the shard
			// lock is released; the analytics engine serializes internally,
			// so an under-lock call would let one slow observer stall
			// unrelated writers (and deadlock if the observer re-enters the
			// store).
			"(ocasta/internal/ttkv.StatsObserver).ObserveWrite": true,
		},
		LockFns: map[string]bool{
			"(*ocasta/internal/ttkv.Store).lockShardsFor": true,
		},
		Durable: map[string]bool{
			// Close/Sync/Flush on these types is where buffered writes meet
			// the disk: a dropped error here is silent data loss.
			"os.File":                           true,
			"bufio.Writer":                      true,
			"ocasta/internal/ttkv.GroupCommit":  true,
			"ocasta/internal/ttkv.AOF":          true,
			"ocasta/internal/ttkv.ReplLog":      true,
			"ocasta/internal/ttkv.SegmentedAOF": true,
		},
		AtomicFields: map[string]bool{
			// The MVCC publication protocol: each record's version array
			// and each shard's key map are immutable values published by a
			// single atomic pointer store, and the watermark gates what
			// readers may see. A direct read of any of these races with
			// publication; a direct write tears it.
			"ocasta/internal/ttkv.record.state":      true,
			"ocasta/internal/ttkv.shard.records":     true,
			"ocasta/internal/ttkv.publisher.visible": true,
		},
	}
}

// CollectAnnotations folds every //ocasta: declaration annotation found in
// pkgs into the index. Call after type-checking, before running analyzers.
func (a *Annotations) CollectAnnotations(pkgs []*Package) {
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			a.collectFile(pkg, f)
		}
	}
}

func commentHas(groups []*ast.CommentGroup, directive string) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := c.Text
			if text == directivePrefix+directive ||
				strings.HasPrefix(text, directivePrefix+directive+" ") {
				return true
			}
		}
	}
	return false
}

func (a *Annotations) collectFile(pkg *Package, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			obj, _ := pkg.Info.Defs[d.Name].(*types.Func)
			if obj == nil {
				continue
			}
			if commentHas([]*ast.CommentGroup{d.Doc}, "nolock") {
				a.NoLock[obj.FullName()] = true
			}
			if commentHas([]*ast.CommentGroup{d.Doc}, "lockfn") {
				a.LockFns[obj.FullName()] = true
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				docs := []*ast.CommentGroup{d.Doc, ts.Doc, ts.Comment}
				typeName := pkg.Types.Path() + "." + ts.Name.Name
				if commentHas(docs, "durable") {
					a.Durable[typeName] = true
				}
				a.collectTypeFields(pkg, ts)
			}
		}
	}
}

// collectTypeFields picks up nolock interface methods, nolock func-typed
// struct fields, and atomic struct fields.
func (a *Annotations) collectTypeFields(pkg *Package, ts *ast.TypeSpec) {
	typePrefix := pkg.Types.Path() + "." + ts.Name.Name + "."
	switch t := ts.Type.(type) {
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			if !commentHas([]*ast.CommentGroup{m.Doc, m.Comment}, "nolock") {
				continue
			}
			for _, name := range m.Names {
				if obj, ok := pkg.Info.Defs[name].(*types.Func); ok {
					a.NoLock[obj.FullName()] = true
				}
			}
		}
	case *ast.StructType:
		for _, field := range t.Fields.List {
			docs := []*ast.CommentGroup{field.Doc, field.Comment}
			nolock := commentHas(docs, "nolock")
			atomic := commentHas(docs, "atomic")
			if !nolock && !atomic {
				continue
			}
			for _, name := range field.Names {
				if nolock {
					a.NoLock[typePrefix+name.Name] = true
				}
				if atomic {
					a.AtomicFields[typePrefix+name.Name] = true
				}
			}
		}
	}
}

// FieldKey returns the index key for a struct field object
// ("pkgpath.Type.field"), or "" if v is not a named struct's field.
func FieldKey(v *types.Var, structType types.Type) string {
	if v == nil || !v.IsField() {
		return ""
	}
	t := structType
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name() + "." + v.Name()
}

// TypeKey returns the index key "pkgpath.TypeName" for a (possibly
// pointer-to) named type, or "" for anything else.
func TypeKey(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// Run executes analyzers over pkgs, applies //ocasta:allow suppression,
// and returns the surviving diagnostics sorted by position. Malformed
// directives are reported once per package, whatever analyzers run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ann := NewAnnotations()
	ann.CollectAnnotations(pkgs)
	var out []Diagnostic
	for _, pkg := range pkgs {
		dirs, dirDiags := ParseDirectives(pkg.Fset, pkg.Syntax)
		out = append(out, dirDiags...)
		for _, an := range analyzers {
			files := pkg.Syntax
			if an.SkipTests {
				files = nonTestFiles(pkg.Fset, files)
			}
			pass := &Pass{
				Analyzer: an,
				Fset:     pkg.Fset,
				Files:    files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Ann:      ann,
				report: func(d Diagnostic) {
					if !dirs.Allowed(d.Analyzer, d.Pos) {
						out = append(out, d)
					}
				},
			}
			if err := an.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Types.Path(), an.Name, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}

func nonTestFiles(fset *token.FileSet, files []*ast.File) []*ast.File {
	out := make([]*ast.File, 0, len(files))
	for _, f := range files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			out = append(out, f)
		}
	}
	return out
}
