package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// This file is the shared lock-state machinery behind the lockorder and
// nocallunderlock analyzers: it flattens a function body into a source-
// ordered event stream (lock/unlock operations, lock-function calls,
// assignments, ordinary calls) and provides the Held tracker that replays
// the stream into "which mutexes are held here" state.
//
// The model is deliberately flow-insensitive within a function: events are
// replayed in source order, so a lock in an early branch is considered
// held by later statements until a matching unlock appears. That
// over-approximation is the right default for the store's conventions
// (every lock in this codebase is released in the same function, in
// source order, or via defer) and keeps the analyzers predictable; the
// //ocasta:allow escape hatch covers the rare intentional exception.

// EventKind discriminates Event.
type EventKind int

// Event kinds.
const (
	// EvLock is a call to Lock/RLock/TryLock on a sync.Mutex or
	// sync.RWMutex.
	EvLock EventKind = iota
	// EvUnlock is a call to Unlock/RUnlock.
	EvUnlock
	// EvAssign is a single-variable assignment or definition.
	EvAssign
	// EvCall is any other function or method call.
	EvCall
)

// ShardRef identifies a lock whose receiver chains through an index
// expression (s.shards[i].mu): the signature of one stripe of a lock-
// striped array, the locks the ascending-order convention governs.
type ShardRef struct {
	// Base is the canonical text of the indexed expression ("s.shards").
	Base string
	// Index is the index expression.
	Index ast.Expr
}

// Event is one step of a function body's lock-relevant behavior.
type Event struct {
	Kind EventKind
	Pos  token.Pos
	// Deferred marks events inside a defer statement: they run at return,
	// not at their source position, so the Held replay skips them.
	Deferred bool
	// Loop is the innermost enclosing for/range statement, nil at top
	// level.
	Loop ast.Stmt

	// EvLock / EvUnlock:
	Mutex string    // canonical receiver text ("sh.mu")
	Read  bool      // RLock/RUnlock
	Shard *ShardRef // non-nil for striped locks

	// EvAssign:
	LHS types.Object // defined/assigned variable (nil for blanks)
	RHS ast.Expr

	// EvCall:
	Call   *ast.CallExpr
	Callee types.Object // resolved called object, nil for computed calls
}

// ExprText renders an expression in canonical source form, the key used
// to match a lock's acquisition to its release.
func ExprText(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, e) // writes to a bytes.Buffer cannot fail
	return buf.String()
}

// tracer walks one function body collecting events.
type tracer struct {
	pass    *Pass
	events  []Event
	aliases map[types.Object]*ShardRef // x := &base[i] element aliases
}

// TraceFunc flattens body into its source-ordered event stream. Nested
// function literals are not descended into — each is its own region,
// enumerated by FuncBodies.
func TraceFunc(pass *Pass, body *ast.BlockStmt) []Event {
	tr := &tracer{pass: pass, aliases: make(map[types.Object]*ShardRef)}
	tr.stmt(body, nil, false)
	return tr.events
}

// FuncBodies returns every function body in f — declarations and function
// literals — each to be traced and replayed as an independent lock region.
func FuncBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

func (tr *tracer) stmt(s ast.Stmt, loop ast.Stmt, deferred bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			tr.stmt(st, loop, deferred)
		}
	case *ast.ExprStmt:
		tr.expr(s.X, loop, deferred)
	case *ast.AssignStmt:
		tr.assign(s, loop, deferred)
	case *ast.DeferStmt:
		tr.expr(s.Call, loop, true)
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the spawner's lock state;
		// its body is traced when its FuncLit is reached below.
		tr.expr(s.Call, loop, true)
	case *ast.IfStmt:
		tr.stmt(s.Init, loop, deferred)
		tr.expr(s.Cond, loop, deferred)
		tr.stmt(s.Body, loop, deferred)
		tr.stmt(s.Else, loop, deferred)
	case *ast.ForStmt:
		tr.stmt(s.Init, loop, deferred)
		if s.Cond != nil {
			tr.expr(s.Cond, s, deferred)
		}
		tr.stmt(s.Body, s, deferred)
		tr.stmt(s.Post, s, deferred)
	case *ast.RangeStmt:
		tr.expr(s.X, loop, deferred)
		tr.stmt(s.Body, s, deferred)
	case *ast.SwitchStmt:
		tr.stmt(s.Init, loop, deferred)
		if s.Tag != nil {
			tr.expr(s.Tag, loop, deferred)
		}
		tr.stmt(s.Body, loop, deferred)
	case *ast.TypeSwitchStmt:
		tr.stmt(s.Init, loop, deferred)
		tr.stmt(s.Assign, loop, deferred)
		tr.stmt(s.Body, loop, deferred)
	case *ast.CaseClause:
		for _, e := range s.List {
			tr.expr(e, loop, deferred)
		}
		for _, st := range s.Body {
			tr.stmt(st, loop, deferred)
		}
	case *ast.SelectStmt:
		tr.stmt(s.Body, loop, deferred)
	case *ast.CommClause:
		tr.stmt(s.Comm, loop, deferred)
		for _, st := range s.Body {
			tr.stmt(st, loop, deferred)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			tr.expr(e, loop, deferred)
		}
	case *ast.SendStmt:
		tr.expr(s.Chan, loop, deferred)
		tr.expr(s.Value, loop, deferred)
	case *ast.IncDecStmt:
		tr.expr(s.X, loop, deferred)
	case *ast.LabeledStmt:
		tr.stmt(s.Stmt, loop, deferred)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						tr.expr(v, loop, deferred)
					}
				}
			}
		}
	}
}

func (tr *tracer) assign(s *ast.AssignStmt, loop ast.Stmt, deferred bool) {
	for _, rhs := range s.Rhs {
		tr.expr(rhs, loop, deferred)
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	var obj types.Object
	if s.Tok == token.DEFINE {
		obj = tr.pass.Info.Defs[id]
	} else {
		obj = tr.pass.Info.Uses[id]
	}
	// Element-alias tracking: sh := &s.shards[i] makes sh.mu a striped
	// lock on s.shards with index i.
	rhs := s.Rhs[0]
	if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
		rhs = u.X
	}
	if ix, ok := rhs.(*ast.IndexExpr); ok && obj != nil {
		tr.aliases[obj] = &ShardRef{Base: ExprText(tr.pass.Fset, ix.X), Index: ix.Index}
	}
	tr.events = append(tr.events, Event{
		Kind: EvAssign, Pos: s.Pos(), Deferred: deferred, Loop: loop,
		LHS: obj, RHS: s.Rhs[0],
	})
}

func (tr *tracer) expr(e ast.Expr, loop ast.Stmt, deferred bool) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		for _, arg := range e.Args {
			tr.expr(arg, loop, deferred)
		}
		tr.call(e, loop, deferred)
	case *ast.FuncLit:
		// The literal's body runs when it is invoked, not here, with its
		// own lock discipline; FuncBodies yields it as a separate region.
	case *ast.BinaryExpr:
		tr.expr(e.X, loop, deferred)
		tr.expr(e.Y, loop, deferred)
	case *ast.UnaryExpr:
		tr.expr(e.X, loop, deferred)
	case *ast.ParenExpr:
		tr.expr(e.X, loop, deferred)
	case *ast.SelectorExpr:
		tr.expr(e.X, loop, deferred)
	case *ast.IndexExpr:
		tr.expr(e.X, loop, deferred)
		tr.expr(e.Index, loop, deferred)
	case *ast.SliceExpr:
		tr.expr(e.X, loop, deferred)
	case *ast.StarExpr:
		tr.expr(e.X, loop, deferred)
	case *ast.TypeAssertExpr:
		tr.expr(e.X, loop, deferred)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			tr.expr(el, loop, deferred)
		}
	case *ast.KeyValueExpr:
		tr.expr(e.Value, loop, deferred)
	}
}

// mutexMethods classifies the sync.Mutex/RWMutex method set.
var mutexMethods = map[string]struct {
	kind EventKind
	read bool
}{
	"Lock":     {EvLock, false},
	"TryLock":  {EvLock, false},
	"RLock":    {EvLock, true},
	"TryRLock": {EvLock, true},
	"Unlock":   {EvUnlock, false},
	"RUnlock":  {EvUnlock, true},
}

func (tr *tracer) call(c *ast.CallExpr, loop ast.Stmt, deferred bool) {
	ev := Event{Kind: EvCall, Pos: c.Pos(), Deferred: deferred, Loop: loop, Call: c}
	switch fun := ast.Unparen(c.Fun).(type) {
	case *ast.SelectorExpr:
		ev.Callee = tr.pass.Info.Uses[fun.Sel]
		if m, ok := mutexMethods[fun.Sel.Name]; ok && tr.isMutex(fun.X) {
			ev.Kind = m.kind
			ev.Read = m.read
			ev.Mutex = ExprText(tr.pass.Fset, fun.X)
			ev.Shard = tr.shardRef(fun.X)
		}
	case *ast.Ident:
		ev.Callee = tr.pass.Info.Uses[fun]
	}
	tr.events = append(tr.events, ev)
}

// isMutex reports whether e's type is sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func (tr *tracer) isMutex(e ast.Expr) bool {
	tv, ok := tr.pass.Info.Types[e]
	if !ok {
		return false
	}
	switch TypeKey(tv.Type) {
	case "sync.Mutex", "sync.RWMutex":
		return true
	}
	return false
}

// shardRef extracts the striped-lock signature of a mutex receiver: an
// index expression somewhere in its selector chain (s.shards[i].mu), or a
// tracked element alias (sh := &s.shards[i]; sh.mu).
func (tr *tracer) shardRef(e ast.Expr) *ShardRef {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			return &ShardRef{Base: ExprText(tr.pass.Fset, x.X), Index: x.Index}
		case *ast.Ident:
			if obj := tr.pass.Info.Uses[x]; obj != nil {
				if ref, ok := tr.aliases[obj]; ok {
					return ref
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// heldLock is one currently held mutex during a replay.
type heldLock struct {
	Mutex string
	Read  bool
	Shard *ShardRef
	Pos   token.Pos
}

// Held replays lock state over an event stream in source order. LockFn
// calls (functions annotated //ocasta:lockfn) are modeled through
// AcquireFn/ReleaseFn: the binding variable of the returned unlock
// function identifies the hold.
type Held struct {
	locks  []heldLock
	fnVars map[types.Object]token.Pos // lockfn unlock-var -> acquire pos
	// anonFn counts lockfn acquisitions whose unlock func was discarded;
	// they can never be released in source order.
	anonFn int
}

// NewHeld returns an empty lock-state tracker.
func NewHeld() *Held {
	return &Held{fnVars: make(map[types.Object]token.Pos)}
}

// Lock records an acquisition.
func (h *Held) Lock(ev Event) {
	h.locks = append(h.locks, heldLock{Mutex: ev.Mutex, Read: ev.Read, Shard: ev.Shard, Pos: ev.Pos})
}

// Unlock releases the most recent acquisition with the same receiver text.
func (h *Held) Unlock(ev Event) {
	for i := len(h.locks) - 1; i >= 0; i-- {
		if h.locks[i].Mutex == ev.Mutex {
			h.locks = append(h.locks[:i], h.locks[i+1:]...)
			return
		}
	}
}

// AcquireFn records a lockfn acquisition bound to unlockVar (nil when the
// unlock func was discarded).
func (h *Held) AcquireFn(unlockVar types.Object, pos token.Pos) {
	if unlockVar == nil {
		h.anonFn++
		return
	}
	h.fnVars[unlockVar] = pos
}

// ReleaseFn releases a lockfn hold by its unlock variable; it reports
// whether v was a tracked unlock variable.
func (h *Held) ReleaseFn(v types.Object) bool {
	if _, ok := h.fnVars[v]; ok {
		delete(h.fnVars, v)
		return true
	}
	return false
}

// Any reports whether any lock is currently held.
func (h *Held) Any() bool {
	return len(h.locks) > 0 || len(h.fnVars) > 0 || h.anonFn > 0
}

// Shards returns the currently held striped locks.
func (h *Held) Shards() []heldLock {
	var out []heldLock
	for _, l := range h.locks {
		if l.Shard != nil {
			out = append(out, l)
		}
	}
	return out
}

// HoldingFn reports whether any lockfn acquisition is outstanding.
func (h *Held) HoldingFn() bool {
	return len(h.fnVars) > 0 || h.anonFn > 0
}

// ReplayLocks steps through a function's event stream maintaining lock
// state. visit is called for every event with the state as of just before
// the event takes effect; deferred events never change state. A call to a
// function annotated //ocasta:lockfn records a hold keyed by the variable
// its returned unlock func is bound to; calling that variable releases it.
func ReplayLocks(pass *Pass, events []Event, visit func(ev Event, held *Held)) {
	held := NewHeld()
	for i, ev := range events {
		visit(ev, held)
		if ev.Deferred {
			continue
		}
		switch ev.Kind {
		case EvLock:
			held.Lock(ev)
		case EvUnlock:
			held.Unlock(ev)
		case EvCall:
			if IsLockFn(pass, ev.Callee) {
				var bind types.Object
				if i+1 < len(events) && events[i+1].Kind == EvAssign &&
					ast.Unparen(events[i+1].RHS) == ast.Expr(ev.Call) {
					bind = events[i+1].LHS
				}
				held.AcquireFn(bind, ev.Pos)
			} else if ev.Callee != nil {
				held.ReleaseFn(ev.Callee)
			}
		}
	}
}

// IsLockFn reports whether obj is a function annotated //ocasta:lockfn.
func IsLockFn(pass *Pass, obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	return ok && pass.Ann.LockFns[fn.FullName()]
}

// Describe names what is held, for diagnostics.
func (h *Held) Describe() string {
	if len(h.locks) > 0 {
		return h.locks[len(h.locks)-1].Mutex
	}
	if len(h.fnVars) > 0 || h.anonFn > 0 {
		return "locks acquired via an //ocasta:lockfn call"
	}
	return "no locks"
}
