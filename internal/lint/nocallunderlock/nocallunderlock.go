// Package nocallunderlock enforces the observers-outside-locks contract:
// a function, interface method, or func-typed struct field annotated
// //ocasta:nolock must never be invoked while a tracked mutex (any
// sync.Mutex/RWMutex, or locks acquired through an //ocasta:lockfn call)
// is held. The rule is an annotation-driven taint pass: a package
// function that calls a nolock target directly is itself poisonous to
// call under a lock, transitively to a fixed point.
//
// The lock model is source-ordered (see internal/lint/locks.go): a
// nolock call placed after the unlock that protects it — the
// Store.apply / GroupCommit.flushCycle shape — passes; a call lexically
// between Lock and Unlock is flagged. Deferred calls and calls routed
// through goroutine-spawned function literals are each analyzed in their
// own region.
package nocallunderlock

import (
	"go/ast"
	"go/types"

	"ocasta/internal/lint"
)

// Analyzer is the nocallunderlock rule.
var Analyzer = &lint.Analyzer{
	Name: "nocallunderlock",
	Doc: "functions annotated //ocasta:nolock (observer notifications, " +
		"commit callbacks, wire writes) must not be called, directly or " +
		"through package-local callees, while any mutex is held",
	Run: run,
}

func run(pass *lint.Pass) error {
	taint := buildTaint(pass)
	for _, f := range pass.Files {
		for _, body := range lint.FuncBodies(f) {
			checkBody(pass, body, taint)
		}
	}
	return nil
}

// buildTaint computes, for every function declared in this package, the
// name of the //ocasta:nolock target it (transitively) calls, or "" if it
// calls none. Function literals are excluded: a literal runs under the
// lock state of its call site, which checkBody analyzes separately.
func buildTaint(pass *lint.Pass) map[*types.Func]string {
	type decl struct {
		obj  *types.Func
		body *ast.BlockStmt
	}
	var decls []decl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls = append(decls, decl{obj, fd.Body})
			}
		}
	}
	taint := make(map[*types.Func]string)
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if taint[d.obj] != "" {
				continue
			}
			if name := bodyReaches(pass, d.body, taint); name != "" {
				taint[d.obj] = name
				changed = true
			}
		}
	}
	return taint
}

// bodyReaches returns the name of a nolock target reachable from body via
// direct calls, given the taint known so far.
func bodyReaches(pass *lint.Pass, body *ast.BlockStmt, taint map[*types.Func]string) string {
	var found string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, _ := nolockTarget(pass, ast.Unparen(call.Fun)); name != "" {
			found = name
			return false
		}
		if fn, ok := calleeFunc(pass, call); ok && taint[fn] != "" {
			found = taint[fn]
			return false
		}
		return true
	})
	return found
}

// checkBody replays one function body's lock state and reports nolock
// targets invoked while anything is held.
func checkBody(pass *lint.Pass, body *ast.BlockStmt, taint map[*types.Func]string) {
	events := lint.TraceFunc(pass, body)
	// varTaint tracks locals bound to nolock function values
	// (cb := gc.onCommit) so calling the copy is caught too.
	varTaint := make(map[types.Object]string)
	lint.ReplayLocks(pass, events, func(ev lint.Event, held *lint.Held) {
		switch ev.Kind {
		case lint.EvAssign:
			if ev.LHS == nil || ev.RHS == nil {
				return
			}
			if name := valueTaint(pass, ast.Unparen(ev.RHS), taint, varTaint); name != "" {
				varTaint[ev.LHS] = name
			}
		case lint.EvCall:
			if ev.Deferred || !held.Any() {
				return
			}
			fun := ast.Unparen(ev.Call.Fun)
			if name, kind := nolockTarget(pass, fun); name != "" {
				pass.Reportf(ev.Pos, "%s %s is annotated //ocasta:nolock but is called with %s held", kind, name, held.Describe())
				return
			}
			if fn, ok := ev.Callee.(*types.Func); ok && taint[fn] != "" {
				pass.Reportf(ev.Pos, "%s calls //ocasta:nolock %s and is invoked with %s held", fn.Name(), taint[fn], held.Describe())
				return
			}
			if v, ok := ev.Callee.(*types.Var); ok && varTaint[v] != "" {
				pass.Reportf(ev.Pos, "%s is bound to //ocasta:nolock %s and is called with %s held", v.Name(), varTaint[v], held.Describe())
			}
		}
	})
}

// nolockTarget resolves a call/value expression to an annotated nolock
// target, returning its display name and kind ("function" or "field").
func nolockTarget(pass *lint.Pass, fun ast.Expr) (name, kind string) {
	switch fun := fun.(type) {
	case *ast.SelectorExpr:
		switch obj := pass.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			if pass.Ann.NoLock[obj.FullName()] {
				return obj.Name(), "function"
			}
		case *types.Var:
			if sel, ok := pass.Info.Selections[fun]; ok && obj.IsField() {
				if pass.Ann.NoLock[lint.FieldKey(obj, sel.Recv())] {
					return obj.Name(), "field"
				}
			}
		}
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok && pass.Ann.NoLock[fn.FullName()] {
			return fn.Name(), "function"
		}
	}
	return "", ""
}

// valueTaint resolves a right-hand side to the nolock target it denotes:
// a method/func value, an annotated field value, or a previously tainted
// local.
func valueTaint(pass *lint.Pass, rhs ast.Expr, taint map[*types.Func]string, varTaint map[types.Object]string) string {
	if name, _ := nolockTarget(pass, rhs); name != "" {
		return name
	}
	switch rhs := rhs.(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[rhs.Sel].(*types.Func); ok && taint[fn] != "" {
			return taint[fn]
		}
	case *ast.Ident:
		switch obj := pass.Info.Uses[rhs].(type) {
		case *types.Func:
			if taint[obj] != "" {
				return taint[obj]
			}
		case *types.Var:
			if varTaint[obj] != "" {
				return varTaint[obj]
			}
		}
	}
	return ""
}

// calleeFunc resolves a call to the *types.Func it invokes, if static.
func calleeFunc(pass *lint.Pass, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, ok := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn, ok
	case *ast.Ident:
		fn, ok := pass.Info.Uses[fun].(*types.Func)
		return fn, ok
	}
	return nil, false
}
