package nocallunderlock_test

import (
	"testing"

	"ocasta/internal/lint/linttest"
	"ocasta/internal/lint/nocallunderlock"
)

func TestNoCallUnderLock(t *testing.T) {
	linttest.Run(t, "testdata/src/a", nocallunderlock.Analyzer)
}
