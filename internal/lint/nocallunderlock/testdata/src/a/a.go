// Package a exercises the nocallunderlock analyzer: //ocasta:nolock
// targets must not run while any mutex is held.
package a

import "sync"

type observer interface {
	//ocasta:nolock
	Notify(key string)
}

type store struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	obs observer
	// Commit callbacks fire on the flusher goroutine outside the lock.
	//ocasta:nolock
	onCommit func(gen uint64)
}

// Direct call under the mutex.
func (s *store) underLock(k string) {
	s.mu.Lock()
	s.obs.Notify(k) // want "function Notify is annotated //ocasta:nolock but is called with s.mu held"
	s.mu.Unlock()
}

// Read locks count too.
func (s *store) underRLock(k string) {
	s.rw.RLock()
	s.obs.Notify(k) // want "function Notify is annotated //ocasta:nolock but is called with s.rw held"
	s.rw.RUnlock()
}

// The store's contract shape: notify after releasing.
func (s *store) afterUnlock(k string) {
	s.mu.Lock()
	s.mu.Unlock()
	s.obs.Notify(k)
}

// notify is poisoned: calling it reaches the nolock observer.
func (s *store) notify(k string) {
	s.obs.Notify(k)
}

func (s *store) transitive(k string) {
	s.mu.Lock()
	s.notify(k) // want "notify calls //ocasta:nolock Notify and is invoked with s.mu held"
	s.mu.Unlock()
}

// Annotated func-typed fields are targets as well.
func (s *store) fieldUnderLock(gen uint64) {
	s.mu.Lock()
	s.onCommit(gen) // want "field onCommit is annotated //ocasta:nolock but is called with s.mu held"
	s.mu.Unlock()
}

// Copying the field does not launder the annotation.
func (s *store) aliasUnderLock(gen uint64) {
	cb := s.onCommit
	s.mu.Lock()
	cb(gen) // want "cb is bound to //ocasta:nolock onCommit and is called with s.mu held"
	s.mu.Unlock()
}

// The flushCycle shape: snapshot the callback under the lock, invoke it
// after releasing.
func (s *store) snapshotThenCall(gen uint64) {
	s.mu.Lock()
	cb := s.onCommit
	s.mu.Unlock()
	if cb != nil {
		cb(gen)
	}
}

// A justified suppression is honored.
func (s *store) allowed(k string) {
	s.mu.Lock()
	//ocasta:allow nocallunderlock observer is a no-op recorder in this configuration
	s.obs.Notify(k)
	s.mu.Unlock()
}

// A suppression without a justification is rejected and suppresses
// nothing.
func (s *store) rejected(k string) {
	s.mu.Lock()
	//ocasta:allow nocallunderlock // want "requires a justification string"
	s.obs.Notify(k) // want "function Notify is annotated //ocasta:nolock but is called with s.mu held"
	s.mu.Unlock()
}
