// Package repro regenerates every table and figure of the paper's
// evaluation (§VI): Table I (trace statistics), Table II (clustering
// accuracy), Table III (the error catalog), Table IV (recovery
// performance), Fig 2 (DFS vs BFS trial counts), Fig 3 (cluster-size
// sensitivity), and Fig 4 (the user study). Each experiment has a data
// function returning structured rows/series and a renderer producing the
// same layout the paper reports.
package repro

import (
	"fmt"
	"sync"
	"time"

	"ocasta/internal/faults"
	"ocasta/internal/repair"
	"ocasta/internal/ttkv"
	"ocasta/internal/workload"
)

// machineCache holds pristine generated deployments; scenarios clone the
// store before injecting errors so experiments never contaminate each
// other.
var (
	machineMu    sync.Mutex
	machineCache = make(map[string]*workload.Result)
)

// Machine returns the pristine deployment for a Table I machine,
// generating it on first use.
func Machine(name string) (*workload.Result, error) {
	machineMu.Lock()
	defer machineMu.Unlock()
	if res, ok := machineCache[name]; ok {
		return res, nil
	}
	p, ok := workload.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("repro: unknown machine %q", name)
	}
	res := workload.Generate(p)
	machineCache[name] = res
	return res, nil
}

// ResetCache drops all cached machines (tests use it to bound memory).
func ResetCache() {
	machineMu.Lock()
	defer machineMu.Unlock()
	machineCache = make(map[string]*workload.Result)
}

// Scenario is one injected configuration error ready to repair: a cloned
// store containing the fault, plus the experiment's timing parameters.
type Scenario struct {
	Fault    faults.Fault
	Store    *ttkv.Store
	InjectAt time.Time
	End      time.Time
}

// DefaultInjectionDays is the paper's main-experiment injection point: 14
// days before the end of the trace.
const DefaultInjectionDays = 14

// NewScenario prepares fault id injected daysBack days before the end of
// its trace, with n spurious repair-attempt writes after it.
func NewScenario(id, daysBack, spurious int) (*Scenario, error) {
	f, err := faults.ByID(id)
	if err != nil {
		return nil, err
	}
	pristine, err := Machine(f.TraceName)
	if err != nil {
		return nil, err
	}
	_, end, ok := pristine.Trace.Span()
	if !ok {
		return nil, fmt.Errorf("repro: machine %q has an empty trace", f.TraceName)
	}
	injectAt := end.Add(-time.Duration(daysBack) * 24 * time.Hour)
	store := pristine.Store.Clone()
	if err := faults.Inject(f, store, nil, injectAt); err != nil {
		return nil, fmt.Errorf("repro: scenario #%d: %w", id, err)
	}
	if spurious > 0 {
		if err := faults.InjectSpurious(f, store, injectAt, spurious); err != nil {
			return nil, fmt.Errorf("repro: scenario #%d: %w", id, err)
		}
	}
	return &Scenario{Fault: f, Store: store, InjectAt: injectAt, End: end}, nil
}

// SearchOptions builds the repair options for this scenario: the fault's
// parameter overrides, the user-supplied start bound just before the
// injection (the user knows roughly when the error appeared), and the
// fault's trial and screenshot oracle.
func (s *Scenario) SearchOptions(strategy repair.Strategy, noClust bool) repair.Options {
	return repair.Options{
		Strategy:  strategy,
		Window:    s.Fault.Window,
		Threshold: s.Fault.Threshold,
		Start:     s.InjectAt.Add(-time.Hour),
		End:       s.End,
		NoClust:   noClust,
		Trial:     s.Fault.TrialActions,
		Oracle:    repair.MarkerOracle(s.Fault.FixedMarker, s.Fault.BrokenMarker),
	}
}

// Search runs the repair search for this scenario.
func (s *Scenario) Search(strategy repair.Strategy, noClust bool) (*repair.Result, error) {
	tool := repair.NewTool(s.Store, s.Fault.Model())
	tool.Parallelism = clusterParallelism()
	return tool.Search(s.SearchOptions(strategy, noClust))
}

// SearchBounded is Search with an explicit start bound (Fig 2c sweeps the
// bound independently of the injection point).
func (s *Scenario) SearchBounded(strategy repair.Strategy, start time.Time) (*repair.Result, error) {
	opts := s.SearchOptions(strategy, false)
	opts.Start = start
	tool := repair.NewTool(s.Store, s.Fault.Model())
	tool.Parallelism = clusterParallelism()
	return tool.Search(opts)
}
