package repro

import (
	"fmt"
	"strings"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/core"
	"ocasta/internal/faults"
	"ocasta/internal/repair"
	"ocasta/internal/trace"
	"ocasta/internal/workload"
)

// Table1Row is one machine of Table I.
type Table1Row struct {
	Name    string
	Days    int
	Reads   uint64
	Writes  uint64
	Keys    int
	TTKVMiB float64
}

// Table1 generates the trace statistics of every Table I machine.
func Table1() ([]Table1Row, error) {
	rows := make([]Table1Row, 0, 9)
	for _, p := range workload.Profiles() {
		res, err := Machine(p.Name)
		if err != nil {
			return nil, err
		}
		st := res.Store.Stats()
		rows = append(rows, Table1Row{
			Name:    p.Name,
			Days:    p.Days,
			Reads:   st.Reads,
			Writes:  st.Writes + st.Deletes,
			Keys:    res.AccessedKeys,
			TTKVMiB: float64(st.ApproxBytes) / (1 << 20),
		})
	}
	return rows, nil
}

// RenderTable1 formats Table I.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table I: Summary of trace statistics\n")
	fmt.Fprintf(&b, "%-16s %5s %10s %9s %7s %9s\n", "Name", "Days", "Reads", "Writes", "#Keys", "TTKV Size")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %5d %10s %9s %7d %8.1fM\n",
			r.Name, r.Days, humanCount(r.Reads), humanCount(r.Writes), r.Keys, r.TTKVMiB)
	}
	return b.String()
}

func humanCount(n uint64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.2fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Table2Row is one application of Table II.
type Table2Row struct {
	App         string
	Description string
	Keys        int
	MultiKey    int
	Clusters    int
	Correct     int
	Oversized   int
	Undersized  int
	Accuracy    float64
	AccuracyNA  bool
}

// Table2Result carries the per-application rows plus the paper's two
// aggregates.
type Table2Result struct {
	Rows    []Table2Row
	Overall float64 // total correct / total multi-key (88.6% in the paper)
	Mean    float64 // per-application mean (72.3% in the paper)
}

// ClusterApp runs the full clustering pipeline for one application model
// over its study trace and scores it against ground truth.
func ClusterApp(m *apps.Model, seed int64, window time.Duration, corrThreshold float64) core.Report {
	res := workload.Generate(workload.StudyUsage(m, seed))
	w := trace.NewWindower(window, trace.GroupAnchored)
	ps := core.NewPairStats(w.GroupTrace(res.Trace.ByApp(m.Name)))
	clusters := core.NewClusterer(core.LinkageComplete).
		WithParallelism(clusterParallelism()).
		Cluster(ps, core.ThresholdFromCorrelation(corrThreshold))
	gt := core.NewGroundTruth(m.GroundTruthGroups())
	rep := core.Evaluate(m.DisplayName, clusters, gt)
	// Table II's #Keys column counts all accessed settings, including
	// read-only ones the clustering never sees.
	rep.Keys = m.KeyCount()
	return rep
}

// Table2 generates the clustering-accuracy study with the paper's default
// parameters (1-second window, correlation threshold 2).
func Table2() Table2Result {
	var out Table2Result
	var reports []core.Report
	for i, m := range apps.Models() {
		rep := ClusterApp(m, int64(100+i), trace.DefaultWindow, 2)
		reports = append(reports, rep)
		row := Table2Row{
			App: m.DisplayName, Description: m.Description,
			Keys: rep.Keys, MultiKey: rep.MultiKey, Clusters: rep.Clusters,
			Correct: rep.Correct, Oversized: rep.Oversized, Undersized: rep.Undersized,
		}
		if acc, ok := rep.Accuracy(); ok {
			row.Accuracy = acc
		} else {
			row.AccuracyNA = true
		}
		out.Rows = append(out.Rows, row)
	}
	out.Overall, out.Mean = core.Overall(reports)
	return out
}

// RenderTable2 formats Table II.
func RenderTable2(res Table2Result) string {
	var b strings.Builder
	b.WriteString("Table II: Applications and their clusters identified by Ocasta\n")
	fmt.Fprintf(&b, "%-22s %-16s %6s %10s %9s\n", "Application", "Description", "#Keys", "#Clusters", "%Accuracy")
	totalKeys, totalMulti, totalAll := 0, 0, 0
	for _, r := range res.Rows {
		acc := "N/A"
		if !r.AccuracyNA {
			acc = fmt.Sprintf("%.1f%%", r.Accuracy*100)
		}
		fmt.Fprintf(&b, "%-22s %-16s %6d %6d/%-4d %9s\n",
			r.App, r.Description, r.Keys, r.MultiKey, r.Clusters, acc)
		totalKeys += r.Keys
		totalMulti += r.MultiKey
		totalAll += r.Clusters
	}
	fmt.Fprintf(&b, "%-22s %-16s %6d %6d/%-4d %8.1f%%\n",
		"Total", "N/A", totalKeys, totalMulti, totalAll, res.Overall*100)
	fmt.Fprintf(&b, "(mean per-application accuracy: %.1f%%)\n", res.Mean*100)
	return b.String()
}

// Table3 returns the error catalog (Table III is data, not measurement).
func Table3() []faults.Fault { return faults.Catalog() }

// RenderTable3 formats Table III.
func RenderTable3(cat []faults.Fault) string {
	var b strings.Builder
	b.WriteString("Table III: Real configuration errors used in the evaluation\n")
	fmt.Fprintf(&b, "%-4s %-15s %-22s %-8s %s\n", "Case", "Trace", "Application", "Logger", "Description")
	for _, f := range cat {
		m := f.Model()
		name := f.AppName
		if m != nil {
			name = m.DisplayName
		}
		logger := map[trace.StoreKind]string{
			trace.StoreRegistry: "Registry", trace.StoreGConf: "GConf", trace.StoreFile: "File",
		}[f.Logger]
		fmt.Fprintf(&b, "%-4d %-15s %-22s %-8s %s\n", f.ID, f.TraceName, name, logger, f.Description)
	}
	return b.String()
}

// Table4Row is one error's recovery performance.
type Table4Row struct {
	Case        int
	ClusterSize int
	Trials      int
	TotalTrials int
	TimeFind    time.Duration
	TimeTotal   time.Duration
	Screens     int
	OcastaFix   bool
	NoClustFix  bool
}

// Table4 runs the recovery experiment for all 16 errors with the paper's
// setup (DFS, injection 14 days before trace end, per-fault parameter
// overrides where the paper needed them).
func Table4() ([]Table4Row, error) {
	rows := make([]Table4Row, 0, 16)
	for _, f := range faults.Catalog() {
		sc, err := NewScenario(f.ID, DefaultInjectionDays, 0)
		if err != nil {
			return nil, err
		}
		res, err := sc.Search(repair.StrategyDFS, false)
		if err != nil {
			return nil, err
		}
		noclust, err := sc.Search(repair.StrategyDFS, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table4Row{
			Case:        f.ID,
			ClusterSize: res.Offending.Size(),
			Trials:      res.Trials,
			TotalTrials: res.TotalTrials,
			TimeFind:    res.SimTime,
			TimeTotal:   res.SimTotalTime,
			Screens:     len(res.Screenshots),
			OcastaFix:   res.Found,
			NoClustFix:  noclust.Found,
		})
	}
	return rows, nil
}

// RenderTable4 formats Table IV.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table IV: Ocasta recovery performance\n")
	fmt.Fprintf(&b, "%-4s %7s %6s %17s %7s %6s %7s\n",
		"Case", "Cl.Size", "Trials", "Time(find/total)", "Screens", "Ocasta", "NoClust")
	var findSum, totalSum float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d %7d %6d %8s/%-8s %7d %6s %7s\n",
			r.Case, r.ClusterSize, r.Trials, mmss(r.TimeFind), mmss(r.TimeTotal),
			r.Screens, yn(r.OcastaFix), yn(r.NoClustFix))
		if r.TimeTotal > 0 {
			findSum += r.TimeFind.Seconds()
			totalSum += r.TimeTotal.Seconds()
		}
	}
	if totalSum > 0 {
		fmt.Fprintf(&b, "(offending cluster found %.0f%% faster than searching the full history)\n",
			(1-findSum/totalSum)*100)
	}
	return b.String()
}

func mmss(d time.Duration) string {
	total := int(d.Round(time.Second).Seconds())
	return fmt.Sprintf("%d:%02d", total/60, total%60)
}

func yn(b bool) string {
	if b {
		return "Y"
	}
	return "N"
}
