package repro

import (
	"fmt"
	"strings"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/core"
	"ocasta/internal/repair"
	"ocasta/internal/study"
	"ocasta/internal/trace"
	"ocasta/internal/workload"
)

// AllFaultIDs lists every Table III error.
func AllFaultIDs() []int {
	ids := make([]int, 16)
	for i := range ids {
		ids[i] = i + 1
	}
	return ids
}

// Fig2Point is one x position of a Fig 2 series: the average trial count
// for BFS and DFS over the selected errors.
type Fig2Point struct {
	X   float64
	BFS float64
	DFS float64
}

// Fig2a sweeps the error-injection age (days before trace end) and reports
// the average number of trials for both strategies (Fig 2a of the paper).
func Fig2a(faultIDs []int, days []int) ([]Fig2Point, error) {
	points := make([]Fig2Point, 0, len(days))
	for _, d := range days {
		var bfsSum, dfsSum float64
		n := 0
		for _, id := range faultIDs {
			sc, err := NewScenario(id, d, 0)
			if err != nil {
				return nil, err
			}
			dfs, err := sc.Search(repair.StrategyDFS, false)
			if err != nil {
				return nil, err
			}
			bfs, err := sc.Search(repair.StrategyBFS, false)
			if err != nil {
				return nil, err
			}
			dfsSum += float64(dfs.Trials)
			bfsSum += float64(bfs.Trials)
			n++
		}
		points = append(points, Fig2Point{X: float64(d), BFS: bfsSum / float64(n), DFS: dfsSum / float64(n)})
	}
	return points, nil
}

// Fig2b sweeps the number of spurious repair-attempt writes after the
// injected error (Fig 2b), with the injection fixed at 14 days.
func Fig2b(faultIDs []int, spurious []int) ([]Fig2Point, error) {
	points := make([]Fig2Point, 0, len(spurious))
	for _, sp := range spurious {
		var bfsSum, dfsSum float64
		n := 0
		for _, id := range faultIDs {
			sc, err := NewScenario(id, DefaultInjectionDays, sp)
			if err != nil {
				return nil, err
			}
			dfs, err := sc.Search(repair.StrategyDFS, false)
			if err != nil {
				return nil, err
			}
			bfs, err := sc.Search(repair.StrategyBFS, false)
			if err != nil {
				return nil, err
			}
			dfsSum += float64(dfs.Trials)
			bfsSum += float64(bfs.Trials)
			n++
		}
		points = append(points, Fig2Point{X: float64(sp), BFS: bfsSum / float64(n), DFS: dfsSum / float64(n)})
	}
	return points, nil
}

// Fig2c sweeps the search start bound (days of history searched) with the
// injection fixed at 14 days (Fig 2c). Bounds shorter than each machine's
// trace are clamped to its full length.
func Fig2c(faultIDs []int, boundDays []int) ([]Fig2Point, error) {
	points := make([]Fig2Point, 0, len(boundDays))
	for _, bound := range boundDays {
		var bfsSum, dfsSum float64
		n := 0
		for _, id := range faultIDs {
			sc, err := NewScenario(id, DefaultInjectionDays, 0)
			if err != nil {
				return nil, err
			}
			start := sc.End.Add(-time.Duration(bound) * 24 * time.Hour)
			dfs, err := sc.SearchBounded(repair.StrategyDFS, start)
			if err != nil {
				return nil, err
			}
			bfs, err := sc.SearchBounded(repair.StrategyBFS, start)
			if err != nil {
				return nil, err
			}
			dfsSum += float64(dfs.Trials)
			bfsSum += float64(bfs.Trials)
			n++
		}
		points = append(points, Fig2Point{X: float64(bound), BFS: bfsSum / float64(n), DFS: dfsSum / float64(n)})
	}
	return points, nil
}

// RenderFig2 formats a Fig 2 series.
func RenderFig2(title, xlabel string, points []Fig2Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-18s %10s %10s\n", xlabel, "BFS", "DFS")
	for _, p := range points {
		fmt.Fprintf(&b, "%-18.0f %10.1f %10.1f\n", p.X, p.BFS, p.DFS)
	}
	return b.String()
}

// Fig3Point is one x position of a Fig 3 series.
type Fig3Point struct {
	X       float64
	AvgSize float64
}

// avgMultiSize computes the mean size of multi-key clusters across all 11
// applications for given parameters.
func avgMultiSize(window time.Duration, corrThreshold float64) float64 {
	totalKeys, totalClusters := 0, 0
	for i, m := range apps.Models() {
		res := workload.Generate(workload.StudyUsage(m, int64(100+i)))
		w := trace.NewWindower(window, trace.GroupAnchored)
		ps := core.NewPairStats(w.GroupTrace(res.Trace.ByApp(m.Name)))
		clusters := core.NewClusterer(core.LinkageComplete).
			WithParallelism(clusterParallelism()).
			Cluster(ps, core.ThresholdFromCorrelation(corrThreshold))
		for _, c := range core.MultiKey(clusters) {
			totalKeys += c.Size()
			totalClusters++
		}
	}
	if totalClusters == 0 {
		return 0
	}
	return float64(totalKeys) / float64(totalClusters)
}

// Fig3a sweeps the clustering window size (Fig 3a); the sharp drop from
// one second to zero reproduces the paper's second-granularity artifact.
func Fig3a(windows []time.Duration) []Fig3Point {
	points := make([]Fig3Point, 0, len(windows))
	for _, w := range windows {
		points = append(points, Fig3Point{X: w.Seconds(), AvgSize: avgMultiSize(w, 2)})
	}
	return points
}

// Fig3b sweeps the clustering threshold (Fig 3b) at the default 1-second
// window.
func Fig3b(thresholds []float64) []Fig3Point {
	points := make([]Fig3Point, 0, len(thresholds))
	for _, th := range thresholds {
		points = append(points, Fig3Point{X: th, AvgSize: avgMultiSize(trace.DefaultWindow, th)})
	}
	return points
}

// RenderFig3 formats a Fig 3 series.
func RenderFig3(title, xlabel string, points []Fig3Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-24s %16s\n", xlabel, "Avg cluster size")
	for _, p := range points {
		fmt.Fprintf(&b, "%-24g %16.2f\n", p.X, p.AvgSize)
	}
	return b.String()
}

// Fig4 runs the simulated user study.
func Fig4(seed int64) study.Outcome { return study.Run(seed) }

// RenderFig4 formats the user-study comparison.
func RenderFig4(out study.Outcome) string {
	var b strings.Builder
	b.WriteString("Fig 4: Time to fix with Ocasta vs manual (19 participants, 5-minute manual cutoff)\n")
	fmt.Fprintf(&b, "%-6s %14s %14s %14s\n", "Case", "Ocasta(avg)", "Manual(avg)", "Manual fixes")
	for _, e := range out.Errors {
		fmt.Fprintf(&b, "%-6d %14s %14s %10d/%d\n",
			e.FaultID, mmss(e.OcastaAvg), mmss(e.ManualAvg), e.ManualFixed, e.Participants)
	}
	b.WriteString("Trial-creation difficulty ratings: ")
	b.WriteString(renderRatings(out.TrialDifficulty))
	b.WriteString("\nScreenshot-selection difficulty ratings: ")
	b.WriteString(renderRatings(out.ScreenshotDifficulty))
	b.WriteByte('\n')
	return b.String()
}

func renderRatings(r study.Ratings) string {
	parts := make([]string, 0, 5)
	for i := 1; i <= 5; i++ {
		if r[i] > 0 {
			parts = append(parts, fmt.Sprintf("%d:%.0f%%", i, r[i]*100))
		}
	}
	return strings.Join(parts, " ")
}

// DefaultFig2aDays is the paper's Fig 2a x axis.
func DefaultFig2aDays() []int { return []int{0, 2, 4, 6, 8, 10, 12, 14} }

// DefaultFig2bSpurious is the paper's Fig 2b x axis.
func DefaultFig2bSpurious() []int { return []int{0, 1, 2} }

// DefaultFig2cBounds is the paper's Fig 2c x axis (days of history).
func DefaultFig2cBounds() []int { return []int{14, 20, 30, 40, 50, 60, 70, 80} }

// DefaultFig3aWindows is the paper's Fig 3a x axis.
func DefaultFig3aWindows() []time.Duration {
	return []time.Duration{
		0, time.Second, 2 * time.Second, 5 * time.Second, 15 * time.Second,
		30 * time.Second, 60 * time.Second, 120 * time.Second,
		300 * time.Second, 600 * time.Second,
	}
}

// DefaultFig3bThresholds is the paper's Fig 3b x axis (correlation).
func DefaultFig3bThresholds() []float64 {
	return []float64{0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}
}
