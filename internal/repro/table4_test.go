package repro

import (
	"testing"
	"time"
)

// TestTable4FullRegression runs the complete Table IV experiment — all 16
// errors, clustered and NoClust — and pins the qualitative results the
// paper reports. Skipped under -short (it generates all nine machines).
func TestTable4FullRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table IV takes several seconds; run without -short")
	}
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
	noclustFail := map[int]bool{2: true, 4: true, 6: true, 7: true, 9: true}
	wantSize := map[int]int{
		1: 2, 2: 9, 3: 2, 4: 3, 5: 4, 6: 8, 7: 2, 8: 2,
		9: 2, 10: 2, 11: 1, 12: 1, 13: 1, 14: 1, 15: 1, 16: 1,
	}
	var findSum, totalSum time.Duration
	screens := 0
	for _, r := range rows {
		if !r.OcastaFix {
			t.Errorf("#%d: Ocasta failed to fix", r.Case)
		}
		if r.NoClustFix == noclustFail[r.Case] {
			t.Errorf("#%d: NoClust fix = %v, want %v", r.Case, r.NoClustFix, !noclustFail[r.Case])
		}
		if r.ClusterSize != wantSize[r.Case] {
			t.Errorf("#%d: offending cluster size = %d, want %d (paper's Cl.Size column)",
				r.Case, r.ClusterSize, wantSize[r.Case])
		}
		if r.Trials <= 0 || r.Trials > r.TotalTrials {
			t.Errorf("#%d: trials %d / total %d inconsistent", r.Case, r.Trials, r.TotalTrials)
		}
		if r.Screens < 1 || r.Screens > 11 {
			t.Errorf("#%d: screens = %d, want within the paper's 1..11 range", r.Case, r.Screens)
		}
		findSum += r.TimeFind
		totalSum += r.TimeTotal
		screens += r.Screens
	}
	// The sort's headline: finding the offending cluster is much faster
	// than exhaustive search (paper: 78% faster on average).
	if findSum >= totalSum/2 {
		t.Errorf("find time %v not clearly faster than exhaustive %v", findSum, totalSum)
	}
	// Average screenshots examined stays modest (paper: 3).
	if avg := float64(screens) / 16; avg > 6 {
		t.Errorf("average screenshots = %.1f, want a modest count near the paper's 3", avg)
	}
}
