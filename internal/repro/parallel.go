package repro

import "sync/atomic"

// parallelism is the worker bound handed to every clusterer the
// reproduction experiments build; 0 (the default) lets clustering use all
// CPUs. It is stored atomically so cmd/repro can set it once at startup
// while table/figure helpers run from tests concurrently.
var parallelism atomic.Int64

// SetParallelism bounds how many co-modification-graph components the
// experiment pipelines cluster concurrently; n <= 0 restores the default
// (all CPUs). Results are identical at every setting.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// clusterParallelism returns the configured worker bound.
func clusterParallelism() int {
	return int(parallelism.Load())
}
