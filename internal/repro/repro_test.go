package repro

import (
	"math"
	"strings"
	"testing"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/repair"
	"ocasta/internal/trace"
)

func TestMachineCache(t *testing.T) {
	a, err := Machine("Linux-2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Machine("Linux-2")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Machine must cache deployments")
	}
	if _, err := Machine("no-such-machine"); err == nil {
		t.Error("unknown machine must error")
	}
}

func TestScenarioCloneIsolation(t *testing.T) {
	pristine, err := Machine("Linux-2")
	if err != nil {
		t.Fatal(err)
	}
	before := pristine.Store.Stats().Writes
	if _, err := NewScenario(13, DefaultInjectionDays, 2); err != nil {
		t.Fatal(err)
	}
	after := pristine.Store.Stats().Writes
	if before != after {
		t.Error("scenarios must not mutate the cached pristine store")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	res := Table2()
	if len(res.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(res.Rows))
	}
	// The headline result: 88.6% overall accuracy over 255 multi-key
	// clusters and 1005 clusters in total.
	totalMulti, totalAll := 0, 0
	for _, r := range res.Rows {
		totalMulti += r.MultiKey
		totalAll += r.Clusters
	}
	if totalMulti != 255 {
		t.Errorf("multi-key clusters = %d, want 255", totalMulti)
	}
	if totalAll != 1005 {
		t.Errorf("total clusters = %d, want 1005", totalAll)
	}
	if math.Abs(res.Overall-0.886) > 0.005 {
		t.Errorf("overall accuracy = %.3f, want 0.886", res.Overall)
	}
	if res.Mean < 0.60 || res.Mean > 0.85 {
		t.Errorf("mean accuracy = %.3f, want near the paper's 0.723", res.Mean)
	}
	// Spot-check per-application accuracies against Table II.
	want := map[string]float64{
		"MS Outlook":     0.970,
		"Evolution Mail": 0.389,
		"Chrome Browser": 1.0,
		"GNOME Edit":     0.0,
		"Acrobat Reader": 0.958,
	}
	for _, r := range res.Rows {
		if expected, ok := want[r.App]; ok {
			if r.AccuracyNA || math.Abs(r.Accuracy-expected) > 0.01 {
				t.Errorf("%s accuracy = %.3f (na=%v), want %.3f", r.App, r.Accuracy, r.AccuracyNA, expected)
			}
		}
		if r.App == "Eye of GNOME" && !r.AccuracyNA {
			t.Error("Eye of GNOME must report N/A accuracy")
		}
	}
	out := RenderTable2(res)
	if !strings.Contains(out, "88.6%") {
		t.Errorf("rendered table missing the 88.6%% aggregate:\n%s", out)
	}
}

func TestTable3Rendering(t *testing.T) {
	out := RenderTable3(Table3())
	for _, want := range []string{"Case", "Acrobat Reader", "GConf", "Bookmark bar is missing."} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 18 { // header x2 + 16 rows
		t.Errorf("Table III has %d lines, want 18", got)
	}
}

func TestScenarioRepairEndToEnd(t *testing.T) {
	// Representative subset across the three logger kinds: registry (#1),
	// gconf (#9, a NoClust-failing pair), file (#13).
	cases := []struct {
		id         int
		noClustFix bool
	}{
		{1, true}, {9, false}, {13, true},
	}
	for _, tc := range cases {
		sc, err := NewScenario(tc.id, DefaultInjectionDays, 0)
		if err != nil {
			t.Fatalf("#%d: %v", tc.id, err)
		}
		res, err := sc.Search(repair.StrategyDFS, false)
		if err != nil {
			t.Fatalf("#%d: %v", tc.id, err)
		}
		if !res.Found {
			t.Errorf("#%d: Ocasta must find the fix", tc.id)
		}
		noclust, err := sc.Search(repair.StrategyDFS, true)
		if err != nil {
			t.Fatalf("#%d: %v", tc.id, err)
		}
		if noclust.Found != tc.noClustFix {
			t.Errorf("#%d: NoClust found=%v, want %v", tc.id, noclust.Found, tc.noClustFix)
		}
	}
}

func TestApplyFixHealsApplication(t *testing.T) {
	sc, err := NewScenario(8, DefaultInjectionDays, 0)
	if err != nil {
		t.Fatal(err)
	}
	tool := repair.NewTool(sc.Store, sc.Fault.Model())
	res, err := tool.Search(sc.SearchOptions(repair.StrategyDFS, false))
	if err != nil || !res.Found {
		t.Fatalf("search: %+v, %v", res, err)
	}
	if err := tool.ApplyFix(res, sc.End.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	// After the permanent rollback the symptom is gone from a fresh trial.
	cfg := tool.Snapshot()
	screen := sc.Fault.Model().Render(cfg, sc.Fault.TrialActions)
	oracle := repair.MarkerOracle(sc.Fault.FixedMarker, sc.Fault.BrokenMarker)
	if !oracle(screen) {
		t.Errorf("application still broken after ApplyFix:\n%s", screen)
	}
}

func TestFig2aShape(t *testing.T) {
	// A small sweep over three errors: trials must not shrink as the
	// injection moves further into the past, and DFS must beat BFS on
	// average.
	pts, err := Fig2a([]int{1, 8, 13}, []int{2, 8, 14})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].DFS > pts[len(pts)-1].DFS {
		t.Errorf("DFS trials should grow with injection age: %+v", pts)
	}
	var dfsSum, bfsSum float64
	for _, p := range pts {
		dfsSum += p.DFS
		bfsSum += p.BFS
	}
	if dfsSum > bfsSum {
		t.Errorf("DFS (%v) should need no more trials than BFS (%v) overall", dfsSum, bfsSum)
	}
}

func TestFig2bShape(t *testing.T) {
	pts, err := Fig2b([]int{1, 8, 13}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	// BFS is highly sensitive to spurious writes; DFS only mildly.
	bfsGrowth := pts[1].BFS - pts[0].BFS
	dfsGrowth := pts[1].DFS - pts[0].DFS
	if bfsGrowth <= 0 {
		t.Errorf("BFS trials must grow with spurious writes: %+v", pts)
	}
	if dfsGrowth < 0 {
		t.Errorf("DFS trials must not shrink with spurious writes: %+v", pts)
	}
	if bfsGrowth < dfsGrowth {
		t.Errorf("BFS must be more sensitive than DFS: bfs+%.1f dfs+%.1f", bfsGrowth, dfsGrowth)
	}
}

func TestFig2cShape(t *testing.T) {
	pts, err := Fig2c([]int{13, 16}, []int{14, 40, 80})
	if err != nil {
		t.Fatal(err)
	}
	// Trials grow roughly linearly with the searched time span.
	if !(pts[0].DFS <= pts[1].DFS && pts[1].DFS <= pts[2].DFS) {
		t.Errorf("DFS trials must grow with the time bound: %+v", pts)
	}
}

func TestFig3aShape(t *testing.T) {
	pts := Fig3a([]time.Duration{0, time.Second, 600 * time.Second})
	if len(pts) != 3 {
		t.Fatal("points")
	}
	// The paper's cliff: zero-second windows split staggered flushes.
	if pts[0].AvgSize >= pts[1].AvgSize {
		t.Errorf("zero-window avg (%.2f) must drop below 1s (%.2f)", pts[0].AvgSize, pts[1].AvgSize)
	}
	// And the curve is otherwise relatively insensitive: the 600s value
	// stays within ~50%% of the 1s value.
	if pts[2].AvgSize < pts[1].AvgSize*0.8 || pts[2].AvgSize > pts[1].AvgSize*1.8 {
		t.Errorf("600s avg %.2f should stay near the 1s avg %.2f", pts[2].AvgSize, pts[1].AvgSize)
	}
}

func TestFig3bShape(t *testing.T) {
	pts := Fig3b([]float64{0.5, 1.0, 2.0})
	// The paper's finding: average cluster size is relatively insensitive
	// to the threshold (within ~25% of its value over the whole range).
	min, max := pts[0].AvgSize, pts[0].AvgSize
	for _, p := range pts {
		if p.AvgSize < min {
			min = p.AvgSize
		}
		if p.AvgSize > max {
			max = p.AvgSize
		}
	}
	if min <= 0 || max/min > 1.5 {
		t.Errorf("avg size should be relatively flat across thresholds: %+v", pts)
	}
}

func TestFig4Rendering(t *testing.T) {
	out := RenderFig4(Fig4(1))
	for _, want := range []string{"Case", "Ocasta", "Manual", "difficulty"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 4 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1SmallMachines(t *testing.T) {
	// Only validate the small Linux machines here (the Windows machines
	// are exercised by cmd/repro and the benches; generating them all in
	// unit tests would dominate the suite's runtime).
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]Table1Row)
	for _, r := range rows {
		byName[r.Name] = r
	}
	l2 := byName["Linux-2"]
	if l2.Days != 84 {
		t.Errorf("Linux-2 days = %d, want 84", l2.Days)
	}
	if l2.Keys != 35 {
		t.Errorf("Linux-2 keys = %d, want 35 (Chrome's universe)", l2.Keys)
	}
	if l2.Writes < 300 || l2.Writes > 1500 {
		t.Errorf("Linux-2 writes = %d, want near the paper's 480", l2.Writes)
	}
	l4 := byName["Linux-4"]
	if l4.Keys != 751 {
		t.Errorf("Linux-4 keys = %d, want 751 (Acrobat's universe)", l4.Keys)
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Windows 7") || !strings.Contains(out, "Linux-4") {
		t.Errorf("Table I rendering incomplete:\n%s", out)
	}
}

func TestClusterAppHonorsParameters(t *testing.T) {
	m := apps.Word()
	def := ClusterApp(m, 105, trace.DefaultWindow, 2)
	tuned := ClusterApp(m, 105, 30*time.Second, 1)
	// With the paper's error-#2 tuning, Max Display merges with the Item
	// keys, so there are fewer clusters overall.
	if tuned.Clusters >= def.Clusters {
		t.Errorf("tuned clusters = %d, want fewer than default %d", tuned.Clusters, def.Clusters)
	}
}

func TestRenderTable4(t *testing.T) {
	rows := []Table4Row{{
		Case: 1, ClusterSize: 2, Trials: 10, TotalTrials: 100,
		TimeFind: 90 * time.Second, TimeTotal: 900 * time.Second,
		Screens: 3, OcastaFix: true, NoClustFix: false,
	}}
	out := RenderTable4(rows)
	if !strings.Contains(out, "1:30") || !strings.Contains(out, "15:00") {
		t.Errorf("mm:ss formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "Y") || !strings.Contains(out, "N") {
		t.Errorf("Y/N flags missing:\n%s", out)
	}
	if !strings.Contains(out, "90% faster") {
		t.Errorf("speedup footer missing:\n%s", out)
	}
}

func TestDefaultAxes(t *testing.T) {
	if len(AllFaultIDs()) != 16 || AllFaultIDs()[15] != 16 {
		t.Error("AllFaultIDs wrong")
	}
	if len(DefaultFig2aDays()) == 0 || len(DefaultFig2bSpurious()) != 3 ||
		len(DefaultFig2cBounds()) == 0 || len(DefaultFig3aWindows()) == 0 ||
		len(DefaultFig3bThresholds()) == 0 {
		t.Error("default axes must be non-empty")
	}
}
