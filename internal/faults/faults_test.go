package faults

import (
	"errors"
	"testing"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/trace"
	"ocasta/internal/ttkv"
	"ocasta/internal/workload"
)

var t0 = time.Date(2013, 10, 1, 12, 0, 0, 0, time.UTC)

func TestCatalogIntegrity(t *testing.T) {
	cat := Catalog()
	if len(cat) != 16 {
		t.Fatalf("catalog has %d faults, want 16 (Table III)", len(cat))
	}
	traces := map[string]bool{}
	for _, p := range workload.Profiles() {
		traces[p.Name] = true
	}
	for i, f := range cat {
		if f.ID != i+1 {
			t.Errorf("fault %d has ID %d", i, f.ID)
		}
		if !traces[f.TraceName] {
			t.Errorf("#%d references unknown trace %q", f.ID, f.TraceName)
		}
		m := f.Model()
		if m == nil {
			t.Fatalf("#%d references unknown app %q", f.ID, f.AppName)
		}
		if m.Store != f.Logger {
			t.Errorf("#%d logger %v != model store %v", f.ID, f.Logger, m.Store)
		}
		if len(f.BadWrites) == 0 {
			t.Errorf("#%d has no bad writes", f.ID)
		}
		for _, bw := range f.BadWrites {
			if !m.OwnsKey(bw.Key) {
				t.Errorf("#%d bad-write key %q not owned by %s", f.ID, bw.Key, m.Name)
			}
		}
		for _, k := range f.CoWrites {
			if !m.OwnsKey(k) {
				t.Errorf("#%d co-write key %q not owned by %s", f.ID, k, m.Name)
			}
		}
		if f.FixedMarker == "" || f.BrokenMarker == "" || len(f.TrialActions) == 0 {
			t.Errorf("#%d missing trial or markers", f.ID)
		}
		if f.Description == "" {
			t.Errorf("#%d missing description", f.ID)
		}
	}
}

func TestCatalogNoClustColumn(t *testing.T) {
	// Table IV: Ocasta-NoClust fails exactly errors 2, 4, 6, 7, 9.
	wantFail := map[int]bool{2: true, 4: true, 6: true, 7: true, 9: true}
	failures := 0
	for _, f := range Catalog() {
		if f.NoClustCanFix == wantFail[f.ID] {
			t.Errorf("#%d NoClustCanFix = %v, want %v", f.ID, f.NoClustCanFix, !wantFail[f.ID])
		}
		if !f.NoClustCanFix {
			failures++
		}
	}
	if failures != 5 {
		t.Errorf("NoClust failures = %d, want 5", failures)
	}
}

func TestByID(t *testing.T) {
	f, err := ByID(15)
	if err != nil || f.AppName != "acrobat" {
		t.Errorf("ByID(15) = %+v, %v", f, err)
	}
	if _, err := ByID(0); !errors.Is(err, ErrUnknownFault) {
		t.Errorf("ByID(0) err = %v", err)
	}
	if _, err := ByID(17); !errors.Is(err, ErrUnknownFault) {
		t.Errorf("ByID(17) err = %v", err)
	}
}

func TestInjectWritesAndDeletes(t *testing.T) {
	store := ttkv.New()
	// Pre-error history for the co-written partner and a deleted item.
	if err := store.Set(apps.KeyWordMaxDisplay, "REG_DWORD:9", t0.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := store.Set(apps.WordItemKey(1), "REG_SZ:a.docx", t0.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	f, err := ByID(2)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{Name: "x"}
	if err := Inject(f, store, tr, t0); err != nil {
		t.Fatal(err)
	}
	if v, _ := store.Get(apps.KeyWordMaxDisplay); v != "REG_DWORD:0" {
		t.Errorf("Max Display = %q, want erroneous REG_DWORD:0", v)
	}
	if _, ok := store.Get(apps.WordItemKey(1)); ok {
		t.Error("Item 1 must be deleted by the injection")
	}
	// Trace received the same events, timestamped at the injection point.
	if len(tr.Events) == 0 {
		t.Fatal("trace must record injected events")
	}
	for _, ev := range tr.Events {
		if !ev.Time.Equal(t0) {
			t.Errorf("event time %v, want %v", ev.Time, t0)
		}
	}
}

func TestInjectCoWrites(t *testing.T) {
	store := ttkv.New()
	if err := store.Set(apps.KeyOutlookNavPane, "REG_DWORD:1", t0.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := store.Set(apps.KeyOutlookNavWidth, "REG_DWORD:250", t0.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	f, err := ByID(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Inject(f, store, nil, t0); err != nil {
		t.Fatal(err)
	}
	// The co-written partner carries its previous value at the new time.
	hist, err := store.History(apps.KeyOutlookNavWidth)
	if err != nil || len(hist) != 2 {
		t.Fatalf("co-write history = %v, %v", hist, err)
	}
	if hist[1].Value != "REG_DWORD:250" || !hist[1].Time.Equal(t0) {
		t.Errorf("co-write = %+v", hist[1])
	}
}

func TestInjectCoWriteWithoutHistoryFails(t *testing.T) {
	f, err := ByID(1)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh store: the partner has no history, which the paper forbids
	// ("the offending setting(s) must have been modified in our traces").
	if err := Inject(f, ttkv.New(), nil, t0); err == nil {
		t.Error("injection without history must fail")
	}
}

func TestInjectSpurious(t *testing.T) {
	store := ttkv.New()
	if err := store.Set(apps.KeyAcroShowFind, "true", t0.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	f, err := ByID(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := Inject(f, store, nil, t0); err != nil {
		t.Fatal(err)
	}
	if err := InjectSpurious(f, store, t0, 2); err != nil {
		t.Fatal(err)
	}
	hist, _ := store.History(apps.KeyAcroShowFind)
	if len(hist) != 4 { // original + injection + 2 spurious
		t.Fatalf("history = %d versions, want 4", len(hist))
	}
	// Spurious attempts keep the error manifest.
	if v, _ := store.Get(apps.KeyAcroShowFind); v != "false" {
		t.Errorf("current value = %q, must stay erroneous", v)
	}
}

func TestOffendingKeys(t *testing.T) {
	f, err := ByID(4)
	if err != nil {
		t.Fatal(err)
	}
	keys := f.OffendingKeys()
	if len(keys) != 3 {
		t.Fatalf("OffendingKeys = %v, want 3 keys", keys)
	}
}

func TestPaperParameterOverrides(t *testing.T) {
	// Only errors #2 and #4 needed tuning in the paper.
	for _, f := range Catalog() {
		tuned := f.Window != 0 || f.Threshold != 0
		if (f.ID == 2 || f.ID == 4) != tuned {
			t.Errorf("#%d tuned=%v, want tuning exactly on #2 and #4", f.ID, tuned)
		}
	}
}
