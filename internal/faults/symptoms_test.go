package faults

import (
	"strings"
	"testing"

	"ocasta/internal/apps"
	"ocasta/internal/repair"
)

// goodConfig builds an application's healthy configuration from the
// models' value generators (episode 0).
func goodConfig(m *apps.Model) apps.Config {
	cfg := make(apps.Config)
	for i := range m.Groups {
		for _, ks := range m.Groups[i].Keys {
			cfg[ks.Key] = ks.Value(0)
		}
	}
	for i := range m.Singletons {
		cfg[m.Singletons[i].Key] = m.Singletons[i].Value(0)
	}
	return cfg
}

// applyFault mutates cfg the way the fault's injection would.
func applyFault(cfg apps.Config, f Fault) {
	for _, bw := range f.BadWrites {
		if bw.Delete {
			delete(cfg, bw.Key)
		} else {
			cfg[bw.Key] = bw.Value
		}
	}
}

// Every fault's symptom wiring must hold: the healthy configuration shows
// the fixed marker, and the corrupted configuration shows the broken
// marker. This validates all 16 scenarios without generating deployments.
func TestSymptomWiringAllFaults(t *testing.T) {
	for _, f := range Catalog() {
		t.Run(f.Description, func(t *testing.T) {
			m := f.Model()
			good := goodConfig(m)
			screen := m.Render(good, f.TrialActions)
			if !strings.Contains(screen, f.FixedMarker) {
				t.Fatalf("#%d healthy screen missing fixed marker %q:\n%s", f.ID, f.FixedMarker, screen)
			}
			if strings.Contains(screen, f.BrokenMarker) {
				t.Fatalf("#%d healthy screen shows broken marker %q:\n%s", f.ID, f.BrokenMarker, screen)
			}

			broken := good.Clone()
			applyFault(broken, f)
			screen = m.Render(broken, f.TrialActions)
			if !strings.Contains(screen, f.BrokenMarker) {
				t.Fatalf("#%d corrupted screen missing broken marker %q:\n%s", f.ID, f.BrokenMarker, screen)
			}
			if strings.Contains(screen, f.FixedMarker) {
				t.Fatalf("#%d corrupted screen shows fixed marker %q:\n%s", f.ID, f.FixedMarker, screen)
			}

			// The oracle built from the markers agrees.
			oracle := repair.MarkerOracle(f.FixedMarker, f.BrokenMarker)
			if !oracle(m.Render(good, f.TrialActions)) {
				t.Errorf("#%d oracle rejects the healthy screen", f.ID)
			}
			if oracle(m.Render(broken, f.TrialActions)) {
				t.Errorf("#%d oracle accepts the corrupted screen", f.ID)
			}
		})
	}
}

// For the five NoClust-failing errors, fixing any single offending key
// must be insufficient: with only one key restored the symptom persists.
func TestMultiKeyErrorsNeedWholeCluster(t *testing.T) {
	for _, id := range []int{2, 4, 6, 7, 9} {
		f, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		m := f.Model()
		good := goodConfig(m)
		for i := range f.BadWrites {
			// Corrupt everything, then restore only key i.
			partial := good.Clone()
			applyFault(partial, f)
			bw := f.BadWrites[i]
			if bw.Delete {
				partial[bw.Key] = good[bw.Key]
			} else {
				partial[bw.Key] = good[bw.Key]
			}
			screen := m.Render(partial, f.TrialActions)
			if strings.Contains(screen, f.FixedMarker) && !strings.Contains(screen, f.BrokenMarker) {
				t.Errorf("#%d: restoring only %q already fixes the symptom; NoClust would succeed",
					id, bw.Key)
			}
		}
	}
}
