// Package faults catalogs the 16 real-world configuration errors of
// Table III and implements their injection into a recorded deployment,
// following the paper's methodology: the erroneous value is written into
// the trace/TTKV at a chosen time (14 days before the end of the trace in
// the main experiment), and spurious repair-attempt writes can be appended
// after it (Fig 2b).
package faults

import (
	"errors"
	"fmt"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/trace"
	"ocasta/internal/ttkv"
)

// ErrUnknownFault is returned for an out-of-range fault id.
var ErrUnknownFault = errors.New("faults: unknown fault id")

// BadWrite is one erroneous mutation a fault injects.
type BadWrite struct {
	Key    string
	Value  string // ignored when Delete
	Delete bool
}

// Fault is one Table III configuration error.
type Fault struct {
	ID          int
	TraceName   string // Table III "Trace" column
	AppName     string // canonical model name
	Logger      trace.StoreKind
	Description string

	// BadWrites are the erroneous mutations; CoWrites are related settings
	// the application persists in the same flush with their current
	// values (dialog groups are written together, so a misconfiguration
	// episode is still one co-modification episode).
	BadWrites []BadWrite
	CoWrites  []string

	// TrialActions is the UI script whose screen makes the symptom
	// visible.
	TrialActions []string
	// FixedMarker appears in the screenshot iff the symptom is gone;
	// BrokenMarker appears while the error manifests.
	FixedMarker  string
	BrokenMarker string

	// Window and Threshold override Ocasta's defaults where the paper had
	// to tune them (errors #2 and #4). Zero values mean the defaults
	// (1-second window, correlation threshold 2).
	Window    time.Duration
	Threshold float64

	// NoClustCanFix records Table IV's comparison column: whether rolling
	// back one setting at a time can also fix the error.
	NoClustCanFix bool
	// PaperClusterSize and PaperTrials record the Table IV reference
	// values for the paper-versus-measured comparisons cmd/repro prints.
	PaperClusterSize int
	PaperTrials      int
}

// Model returns the fault's application model.
func (f *Fault) Model() *apps.Model { return apps.ModelByName(f.AppName) }

// OffendingKeys returns the keys the fault corrupts.
func (f *Fault) OffendingKeys() []string {
	out := make([]string, 0, len(f.BadWrites))
	for _, bw := range f.BadWrites {
		out = append(out, bw.Key)
	}
	return out
}

// Catalog returns all 16 faults of Table III.
func Catalog() []Fault {
	return []Fault{
		{
			ID: 1, TraceName: "Windows 7", AppName: "outlook", Logger: trace.StoreRegistry,
			Description:   "User is unable to use Navigation Panel.",
			BadWrites:     []BadWrite{{Key: apps.KeyOutlookNavPane, Value: "REG_DWORD:0"}},
			CoWrites:      []string{apps.KeyOutlookNavWidth},
			TrialActions:  []string{"launch"},
			FixedMarker:   "[x] navigation-panel",
			BrokenMarker:  "[ ] navigation-panel",
			NoClustCanFix: true, PaperClusterSize: 2, PaperTrials: 15,
		},
		{
			ID: 2, TraceName: "Windows 7", AppName: "msword", Logger: trace.StoreRegistry,
			Description: "User loses the list of recently accessed documents.",
			BadWrites: append(
				[]BadWrite{{Key: apps.KeyWordMaxDisplay, Value: "REG_DWORD:0"}},
				deleteItems()...,
			),
			TrialActions: []string{"launch"},
			FixedMarker:  "[x] recent-documents",
			BrokenMarker: "[ ] recent-documents",
			// The paper could not fix this error with the defaults: the
			// dominant Max Display splits from the Item keys. It succeeds
			// with a 30-second window and a correlation threshold of 1.
			Window: 30 * time.Second, Threshold: 1,
			NoClustCanFix: false, PaperClusterSize: 8, PaperTrials: 2,
		},
		{
			ID: 3, TraceName: "Windows 7", AppName: "ie", Logger: trace.StoreRegistry,
			Description:   "Dialog to disable add-ons always pops up.",
			BadWrites:     []BadWrite{{Key: apps.KeyIENoAddonDlg, Value: "REG_DWORD:0"}},
			CoWrites:      []string{apps.KeyIEApprovedCnt},
			TrialActions:  []string{"launch"},
			FixedMarker:   "[ ] addon-warning-dialog",
			BrokenMarker:  "[x] addon-warning-dialog",
			NoClustCanFix: true, PaperClusterSize: 2, PaperTrials: 14,
		},
		{
			ID: 4, TraceName: "Windows Vista", AppName: "explorer", Logger: trace.StoreRegistry,
			Description: `"Open with" menu does not show installed applications that can open .flv file.`,
			BadWrites: []BadWrite{
				{Key: apps.KeyFlvMRUList, Value: "REG_SZ:"},
				{Key: apps.KeyFlvAppA, Delete: true},
				{Key: apps.KeyFlvAppB, Delete: true},
			},
			TrialActions: []string{"launch", "context-menu-flv"},
			FixedMarker:  "[x] openwith-flv-apps",
			BrokenMarker: "[ ] openwith-flv-apps",
			// The MRU order list changes even when the application names do
			// not; reducing the threshold to 1 clusters list and names.
			Threshold:     1,
			NoClustCanFix: false, PaperClusterSize: 3, PaperTrials: 33,
		},
		{
			ID: 5, TraceName: "Windows XP", AppName: "wmp", Logger: trace.StoreRegistry,
			Description: "Caption is not shown while playing video.",
			BadWrites:   []BadWrite{{Key: apps.KeyWMPCaptionsOn, Value: "REG_DWORD:0"}},
			CoWrites: []string{
				apps.KeyWMPCaptionsLang, apps.KeyWMPCaptionsSize, apps.KeyWMPCaptionsClr,
			},
			TrialActions:  []string{"launch", "play-video"},
			FixedMarker:   "[x] captions",
			BrokenMarker:  "[ ] captions",
			NoClustCanFix: true, PaperClusterSize: 4, PaperTrials: 60,
		},
		{
			ID: 6, TraceName: "Windows XP", AppName: "mspaint", Logger: trace.StoreRegistry,
			Description: "Text tool bar does not pop up automatically when entering text.",
			BadWrites: []BadWrite{
				{Key: apps.KeyPaintShowTextTool, Value: "REG_DWORD:0"},
				{Key: apps.PaintPrefix + `\View\TextToolX`, Delete: true},
				{Key: apps.PaintPrefix + `\View\TextToolY`, Delete: true},
			},
			CoWrites: []string{
				apps.PaintPrefix + `\View\TextFont`, apps.PaintPrefix + `\View\TextSize`,
				apps.PaintPrefix + `\View\TextBold`, apps.PaintPrefix + `\View\TextItalic`,
				apps.PaintPrefix + `\View\TextCharset`,
			},
			TrialActions:  []string{"launch", "enter-text"},
			FixedMarker:   "[x] text-toolbar",
			BrokenMarker:  "[ ] text-toolbar",
			NoClustCanFix: false, PaperClusterSize: 8, PaperTrials: 8,
		},
		{
			ID: 7, TraceName: "Windows XP", AppName: "explorer", Logger: trace.StoreRegistry,
			Description: "Image files are always opened in a maximized window.",
			BadWrites: []BadWrite{
				{Key: apps.KeyImgWindowMode, Value: "REG_SZ:maximized"},
				{Key: apps.KeyImgWindowPlace, Value: "REG_BINARY:ffff"},
			},
			TrialActions:  []string{"launch", "open-image"},
			FixedMarker:   "[x] image-window-normal",
			BrokenMarker:  "[ ] image-window-normal",
			NoClustCanFix: false, PaperClusterSize: 2, PaperTrials: 134,
		},
		{
			ID: 8, TraceName: "Linux-1", AppName: "evolution", Logger: trace.StoreGConf,
			Description:   "Evolution Mail starts in offline mode unexpectedly.",
			BadWrites:     []BadWrite{{Key: apps.KeyEvoStartOffline, Value: "b:true"}},
			CoWrites:      []string{apps.KeyEvoOfflineSync},
			TrialActions:  []string{"launch"},
			FixedMarker:   "[x] online-mode",
			BrokenMarker:  "[ ] online-mode",
			NoClustCanFix: true, PaperClusterSize: 2, PaperTrials: 7,
		},
		{
			ID: 9, TraceName: "Linux-1", AppName: "evolution", Logger: trace.StoreGConf,
			Description: "Evolution Mail does not mark read mail automatically.",
			BadWrites: []BadWrite{
				{Key: apps.KeyEvoMarkSeen, Value: "b:false"},
				{Key: apps.KeyEvoMarkSeenTime, Value: "i:-1"},
			},
			TrialActions:  []string{"launch", "open-mail"},
			FixedMarker:   "[x] auto-mark-read",
			BrokenMarker:  "[ ] auto-mark-read",
			NoClustCanFix: false, PaperClusterSize: 2, PaperTrials: 9,
		},
		{
			ID: 10, TraceName: "Linux-1", AppName: "evolution", Logger: trace.StoreGConf,
			Description:   "Evolution Mail does not start a reply at the top of an e-mail.",
			BadWrites:     []BadWrite{{Key: apps.KeyEvoReplyBottom, Value: "b:true"}},
			CoWrites:      []string{apps.KeyEvoTopSignature},
			TrialActions:  []string{"launch", "reply"},
			FixedMarker:   "[x] reply-at-top",
			BrokenMarker:  "[ ] reply-at-top",
			NoClustCanFix: true, PaperClusterSize: 2, PaperTrials: 12,
		},
		{
			ID: 11, TraceName: "Linux-1", AppName: "eog", Logger: trace.StoreGConf,
			Description:   "User is unable to print image files.",
			BadWrites:     []BadWrite{{Key: apps.KeyEOGPrinting, Value: "b:false"}},
			TrialActions:  []string{"launch", "print"},
			FixedMarker:   "[x] print-dialog",
			BrokenMarker:  "[ ] print-dialog",
			NoClustCanFix: true, PaperClusterSize: 1, PaperTrials: 2,
		},
		{
			ID: 12, TraceName: "Linux-1", AppName: "gedit", Logger: trace.StoreGConf,
			Description:   "User is unable to save any document.",
			BadWrites:     []BadWrite{{Key: apps.KeyGEditSaveScheme, Value: "s:dav://broken"}},
			TrialActions:  []string{"launch", "edit"},
			FixedMarker:   "[x] save-button",
			BrokenMarker:  "[ ] save-button",
			NoClustCanFix: true, PaperClusterSize: 1, PaperTrials: 2,
		},
		{
			ID: 13, TraceName: "Linux-2", AppName: "chrome", Logger: trace.StoreFile,
			Description:   "Bookmark bar is missing.",
			BadWrites:     []BadWrite{{Key: apps.KeyChromeBookmarkBar, Value: "false"}},
			TrialActions:  []string{"launch"},
			FixedMarker:   "[x] bookmark-bar",
			BrokenMarker:  "[ ] bookmark-bar",
			NoClustCanFix: true, PaperClusterSize: 1, PaperTrials: 7,
		},
		{
			ID: 14, TraceName: "Linux-2", AppName: "chrome", Logger: trace.StoreFile,
			Description:   "Home button is missing from the tool bar.",
			BadWrites:     []BadWrite{{Key: apps.KeyChromeHomeButton, Value: "false"}},
			TrialActions:  []string{"launch"},
			FixedMarker:   "[x] home-button",
			BrokenMarker:  "[ ] home-button",
			NoClustCanFix: true, PaperClusterSize: 1, PaperTrials: 7,
		},
		{
			ID: 15, TraceName: "Linux-3", AppName: "acrobat", Logger: trace.StoreFile,
			Description:   "Menu bar disappears for certain PDF document.",
			BadWrites:     []BadWrite{{Key: apps.KeyAcroShowMenuBar, Value: "false"}},
			TrialActions:  []string{"launch", "open-fullscreen.pdf"},
			FixedMarker:   "[x] menu-bar",
			BrokenMarker:  "[ ] menu-bar",
			NoClustCanFix: true, PaperClusterSize: 1, PaperTrials: 17,
		},
		{
			ID: 16, TraceName: "Linux-4", AppName: "acrobat", Logger: trace.StoreFile,
			Description:   "Find box is missing from the tool bar.",
			BadWrites:     []BadWrite{{Key: apps.KeyAcroShowFind, Value: "false"}},
			TrialActions:  []string{"launch"},
			FixedMarker:   "[x] find-box",
			BrokenMarker:  "[ ] find-box",
			NoClustCanFix: true, PaperClusterSize: 1, PaperTrials: 157,
		},
	}
}

func deleteItems() []BadWrite {
	out := make([]BadWrite, 0, apps.WordMRUSlots)
	for i := 1; i <= apps.WordMRUSlots; i++ {
		out = append(out, BadWrite{Key: apps.WordItemKey(i), Delete: true})
	}
	return out
}

// ByID returns fault id (1-16).
func ByID(id int) (Fault, error) {
	for _, f := range Catalog() {
		if f.ID == id {
			return f, nil
		}
	}
	return Fault{}, fmt.Errorf("%w: %d", ErrUnknownFault, id)
}

// Inject writes the fault's erroneous mutations into the store and trace
// at time at, together with the same-flush co-writes of related settings
// (carrying their pre-error values). The trace may be nil.
func Inject(f Fault, store *ttkv.Store, tr *trace.Trace, at time.Time) error {
	model := f.Model()
	if model == nil {
		return fmt.Errorf("faults: fault %d references unknown app %q", f.ID, f.AppName)
	}
	record := func(op trace.Op, key, value string) {
		if tr == nil {
			return
		}
		tr.Events = append(tr.Events, trace.Event{
			Time: at, Op: op, Store: f.Logger, App: model.Name, Key: key, Value: value,
		})
	}
	for _, bw := range f.BadWrites {
		if bw.Delete {
			if err := store.Delete(bw.Key, at); err != nil {
				return fmt.Errorf("faults: injecting delete of %s: %w", bw.Key, err)
			}
			record(trace.OpDelete, bw.Key, "")
			continue
		}
		if err := store.Set(bw.Key, bw.Value, at); err != nil {
			return fmt.Errorf("faults: injecting write of %s: %w", bw.Key, err)
		}
		record(trace.OpWrite, bw.Key, bw.Value)
	}
	for _, key := range f.CoWrites {
		v, err := store.GetAt(key, at)
		if err != nil {
			return fmt.Errorf("faults: co-write of %s: %w", key, err)
		}
		if v.Deleted {
			continue
		}
		if err := store.Set(key, v.Value, at); err != nil {
			return fmt.Errorf("faults: co-write of %s: %w", key, err)
		}
		record(trace.OpWrite, key, v.Value)
	}
	if tr != nil {
		tr.SortByTime()
	}
	return nil
}

// InjectSpurious simulates n failed user repair attempts after the error
// (the Fig 2b workload). Each attempt reopens the settings dialog and
// applies a change that does not cure the symptom; the application
// persists the whole dialog group again, so the offending cluster gains
// extra recent versions the search must wade through without its
// correlation structure changing.
func InjectSpurious(f Fault, store *ttkv.Store, after time.Time, n int) error {
	for i := 0; i < n; i++ {
		t := after.Add(time.Duration(i+1) * time.Minute)
		for _, bw := range f.BadWrites {
			var err error
			if bw.Delete {
				err = store.Delete(bw.Key, t)
			} else {
				err = store.Set(bw.Key, bw.Value, t)
			}
			if err != nil {
				return fmt.Errorf("faults: spurious write %d: %w", i+1, err)
			}
		}
		for _, key := range f.CoWrites {
			v, err := store.GetAt(key, t)
			if err != nil || v.Deleted {
				continue
			}
			if err := store.Set(key, v.Value, t); err != nil {
				return fmt.Errorf("faults: spurious co-write %d: %w", i+1, err)
			}
		}
	}
	return nil
}
