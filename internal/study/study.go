// Package study simulates the paper's 19-participant user study (§VI-D,
// Fig 4): each participant repairs errors #11, #13, #15, and #16 of
// Table III twice — once with Ocasta (create the trial, then pick the
// fixed screenshot) and once manually with a five-minute cutoff.
//
// Human timing is drawn from per-error distributions calibrated to the
// aggregates the paper reports; the comparison logic (Ocasta time = trial
// creation + screenshot selection vs manual fix with cutoff, where
// unfinished manual attempts contribute the cutoff as a lower bound) is
// implemented faithfully. The substitution is documented in README.md.
package study

import (
	"math"
	"math/rand"
	"time"
)

// ManualCutoff is the paper's five-minute cap on manual repair attempts.
const ManualCutoff = 5 * time.Minute

// StudyFaultIDs are the Table III errors used in the user study.
var StudyFaultIDs = []int{11, 13, 15, 16}

// Participant is one study subject.
type Participant struct {
	ID        int
	Technical bool
}

// Participants returns the paper's cohort: 19 subjects, 6 of whom are
// non-technical.
func Participants() []Participant {
	out := make([]Participant, 19)
	for i := range out {
		out[i] = Participant{ID: i + 1, Technical: i >= 6}
	}
	return out
}

// errorProfile calibrates one error's human-timing distributions.
type errorProfile struct {
	faultID int
	// Means and standard deviations in seconds.
	trialMean, trialSD float64 // creating the trial
	shotMean, shotSD   float64 // selecting the fixed screenshot
	manualFixProb      float64 // chance a participant fixes it manually in time
	manualMean         float64 // time for a successful manual fix
	manualSD           float64
	// nonTechPenalty multiplies times for non-technical participants.
	nonTechPenalty float64
}

// profiles are calibrated so the study reproduces the paper's Fig 4 shape:
// Ocasta beats manual repair for every error except #16, where most
// participants fixed the error manually and quickly.
var profiles = []errorProfile{
	{faultID: 11, trialMean: 45, trialSD: 12, shotMean: 25, shotSD: 8,
		manualFixProb: 0.15, manualMean: 220, manualSD: 50, nonTechPenalty: 1.5},
	{faultID: 13, trialMean: 35, trialSD: 10, shotMean: 20, shotSD: 6,
		manualFixProb: 0.25, manualMean: 200, manualSD: 60, nonTechPenalty: 1.4},
	{faultID: 15, trialMean: 55, trialSD: 15, shotMean: 30, shotSD: 10,
		manualFixProb: 0.10, manualMean: 250, manualSD: 40, nonTechPenalty: 1.6},
	{faultID: 16, trialMean: 50, trialSD: 14, shotMean: 28, shotSD: 9,
		manualFixProb: 0.75, manualMean: 110, manualSD: 35, nonTechPenalty: 1.5},
}

// ErrorOutcome aggregates one error across all participants.
type ErrorOutcome struct {
	FaultID int
	// OcastaAvg is the mean time to create the trial plus select the
	// fixed screenshot.
	OcastaAvg time.Duration
	// ManualAvg is the mean manual repair time; participants who failed
	// within the cutoff contribute the cutoff, so it is a lower bound —
	// the bias the paper itself notes.
	ManualAvg time.Duration
	// ManualFixed counts participants who fixed the error manually in
	// time.
	ManualFixed  int
	Participants int
}

// Rating histograms, indexed by difficulty 1..5, as fractions.
type Ratings [6]float64

// Outcome is the full study result.
type Outcome struct {
	Errors []ErrorOutcome
	// TrialDifficulty and ScreenshotDifficulty reproduce the paper's
	// qualitative ratings ("1" is easiest).
	TrialDifficulty      Ratings
	ScreenshotDifficulty Ratings
}

// Run executes the simulated study deterministically for a seed.
func Run(seed int64) Outcome {
	rng := rand.New(rand.NewSource(seed))
	people := Participants()
	out := Outcome{}

	var trialRatings, shotRatings []int
	for _, prof := range profiles {
		agg := ErrorOutcome{FaultID: prof.faultID, Participants: len(people)}
		var ocastaSum, manualSum float64
		for _, p := range people {
			penalty := 1.0
			if !p.Technical {
				penalty = prof.nonTechPenalty
			}
			trial := truncNorm(rng, prof.trialMean*penalty, prof.trialSD, 10)
			shot := truncNorm(rng, prof.shotMean*penalty, prof.shotSD, 5)
			ocastaSum += trial + shot

			if rng.Float64() < prof.manualFixProb/math.Sqrt(penalty) {
				manualSum += math.Min(truncNorm(rng, prof.manualMean*penalty, prof.manualSD, 30),
					ManualCutoff.Seconds())
				agg.ManualFixed++
			} else {
				manualSum += ManualCutoff.Seconds()
			}

			trialRatings = append(trialRatings, sampleRating(rng, [5]float64{0.74, 0.21, 0.05, 0, 0}))
			shotRatings = append(shotRatings, sampleRating(rng, [5]float64{0.80, 0.11, 0.08, 0.01, 0}))
		}
		agg.OcastaAvg = time.Duration(ocastaSum/float64(len(people))) * time.Second
		agg.ManualAvg = time.Duration(manualSum/float64(len(people))) * time.Second
		out.Errors = append(out.Errors, agg)
	}
	out.TrialDifficulty = histogram(trialRatings)
	out.ScreenshotDifficulty = histogram(shotRatings)
	return out
}

// truncNorm samples a normal value clamped below at min seconds.
func truncNorm(rng *rand.Rand, mean, sd, min float64) float64 {
	v := rng.NormFloat64()*sd + mean
	if v < min {
		return min
	}
	return v
}

// sampleRating draws a difficulty 1..5 from the given distribution.
func sampleRating(rng *rand.Rand, dist [5]float64) int {
	x := rng.Float64()
	acc := 0.0
	for i, p := range dist {
		acc += p
		if x < acc {
			return i + 1
		}
	}
	return 1
}

func histogram(ratings []int) Ratings {
	var h Ratings
	if len(ratings) == 0 {
		return h
	}
	for _, r := range ratings {
		if r >= 1 && r <= 5 {
			h[r]++
		}
	}
	for i := range h {
		h[i] /= float64(len(ratings))
	}
	return h
}
