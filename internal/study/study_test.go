package study

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestParticipants(t *testing.T) {
	people := Participants()
	if len(people) != 19 {
		t.Fatalf("participants = %d, want 19", len(people))
	}
	nonTech := 0
	for _, p := range people {
		if !p.Technical {
			nonTech++
		}
	}
	if nonTech != 6 {
		t.Errorf("non-technical = %d, want 6", nonTech)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, b := Run(7), Run(7)
	for i := range a.Errors {
		if a.Errors[i] != b.Errors[i] {
			t.Fatalf("error %d differs between identical seeds", i)
		}
	}
}

func TestRunCoversStudyErrors(t *testing.T) {
	out := Run(1)
	if len(out.Errors) != 4 {
		t.Fatalf("errors = %d, want 4 (#11 #13 #15 #16)", len(out.Errors))
	}
	want := map[int]bool{11: true, 13: true, 15: true, 16: true}
	for _, e := range out.Errors {
		if !want[e.FaultID] {
			t.Errorf("unexpected fault id %d", e.FaultID)
		}
		if e.Participants != 19 {
			t.Errorf("#%d participants = %d", e.FaultID, e.Participants)
		}
	}
}

// The Fig 4 shape: Ocasta is faster than manual repair for every error
// except #16, where most participants fix the error manually.
func TestFig4Shape(t *testing.T) {
	out := Run(42)
	for _, e := range out.Errors {
		switch e.FaultID {
		case 16:
			if e.ManualAvg >= ManualCutoff {
				t.Errorf("#16 manual avg %v should be well under the cutoff", e.ManualAvg)
			}
			if e.ManualFixed < 10 {
				t.Errorf("#16 manually fixed by %d/19, want a majority", e.ManualFixed)
			}
		default:
			if e.OcastaAvg >= e.ManualAvg {
				t.Errorf("#%d: Ocasta %v should beat manual %v", e.FaultID, e.OcastaAvg, e.ManualAvg)
			}
			if e.ManualFixed > 9 {
				t.Errorf("#%d manually fixed by %d/19, want a minority", e.FaultID, e.ManualFixed)
			}
		}
		if e.OcastaAvg <= 0 || e.OcastaAvg > 10*time.Minute {
			t.Errorf("#%d implausible Ocasta time %v", e.FaultID, e.OcastaAvg)
		}
		if e.ManualAvg > ManualCutoff+time.Second {
			t.Errorf("#%d manual avg %v exceeds the cutoff", e.FaultID, e.ManualAvg)
		}
	}
}

func TestDifficultyRatings(t *testing.T) {
	out := Run(3)
	sum := func(r Ratings) float64 {
		s := 0.0
		for _, v := range r {
			s += v
		}
		return s
	}
	if math.Abs(sum(out.TrialDifficulty)-1) > 1e-9 {
		t.Errorf("trial ratings sum to %v", sum(out.TrialDifficulty))
	}
	if math.Abs(sum(out.ScreenshotDifficulty)-1) > 1e-9 {
		t.Errorf("screenshot ratings sum to %v", sum(out.ScreenshotDifficulty))
	}
	// The paper: creating a trial was rated "1" 74% of the time, selecting
	// the screenshot "1" 80% of the time; our samples should be close.
	if out.TrialDifficulty[1] < 0.60 || out.TrialDifficulty[1] > 0.90 {
		t.Errorf("trial difficulty 1 fraction = %v, want near 0.74", out.TrialDifficulty[1])
	}
	if out.ScreenshotDifficulty[1] < 0.65 || out.ScreenshotDifficulty[1] > 0.95 {
		t.Errorf("screenshot difficulty 1 fraction = %v, want near 0.80", out.ScreenshotDifficulty[1])
	}
}

func TestTruncNorm(t *testing.T) {
	out := Run(9)
	_ = out
	// Directly exercise the clamp.
	for i := 0; i < 100; i++ {
		if v := truncNorm(newTestRng(int64(i)), 0, 100, 10); v < 10 {
			t.Fatalf("truncNorm produced %v below the minimum", v)
		}
	}
}

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
