package ttkv

import (
	"errors"
	"sort"
	"time"
)

// ErrNoCluster is returned by RevertCluster for an empty key set.
var ErrNoCluster = errors.New("ttkv: revert of an empty cluster")

// RevertCluster atomically rolls a cluster of keys back to its state at
// fixAt, recording the rollback as new writes at applyAt — the paper's
// final step once the user confirms the fixed screenshot. For each key,
// the value in effect at fixAt is re-written; a key with no value then
// (never existed, or deleted) receives a deletion tombstone if it
// currently exists, and is skipped otherwise. History is preserved: the
// revert appends versions, it never rewrites them.
//
// The whole batch occupies one contiguous run of sequence numbers and is
// released to readers by a single advance of the publication watermark,
// so a concurrent reader sees either none or all of the cluster's keys
// reverted — never a half-applied fix, which for correlated settings is
// exactly the broken intermediate state the paper's clustering exists to
// avoid. Writers are excluded by holding every involved shard lock at
// once, taken in shard order so concurrent RevertCluster calls cannot
// deadlock. The in-memory transition is also all-or-nothing against
// persistence failures: every record is enqueued to the sink before
// anything is inserted, so a sticky AOF error leaves memory untouched (at
// worst the AOF gains a replayable prefix of the revert — the superset
// crash window every write path shares). Returns how many mutations were
// applied.
func (s *Store) RevertCluster(keys []string, fixAt, applyAt time.Time) (int, error) {
	if len(keys) == 0 {
		return 0, ErrNoCluster
	}
	if fixAt.IsZero() || applyAt.IsZero() {
		return 0, ErrZeroTime
	}
	for _, k := range keys {
		if k == "" {
			return 0, ErrEmptyKey
		}
		if len(k) > MaxStringLen {
			return 0, ErrOversize
		}
	}
	if err := s.waitSinkCapacity(); err != nil {
		return 0, err
	}

	// Lock every involved shard, each exactly once, in shard order.
	unlock := s.lockShardsFor(func(yield func(string) bool) {
		for _, k := range keys {
			if !yield(k) {
				return
			}
		}
	})
	defer unlock()

	// With every shard lock held, no writer can interleave: the
	// read-compute-write below is one indivisible transition. It runs in
	// three phases so a persistence failure cannot leave the cluster
	// half-reverted in memory: plan every mutation, enqueue all of them
	// to the sink, and only then insert — in-memory state is
	// all-or-nothing. A sink error mid-enqueue may leave a prefix of the
	// revert in the AOF with nothing in memory; replay then applies it,
	// the same record-then-crash superset window every write path has.
	plan := make([]Mutation, 0, len(keys))
	for _, key := range keys {
		sh := &s.shards[s.shardIndex(key)]
		target, ok := versionAtLocked(sh, key, fixAt)
		switch {
		case !ok || target.Deleted:
			// The key did not exist at the fix point; tombstone it if it
			// currently exists, otherwise there is nothing to undo.
			if !existsLocked(sh, key) {
				continue
			}
			plan = append(plan, Mutation{Key: key, Time: applyAt, Delete: true})
		default:
			plan = append(plan, Mutation{Key: key, Value: target.Value, Time: applyAt})
		}
	}
	if len(plan) == 0 {
		return 0, nil
	}
	seqs, err := s.sinkAppendBatch(plan)
	if err != nil {
		return 0, err
	}
	if seqs == nil {
		// No seq-assigning sink: reserve one contiguous block from the
		// store counter while every involved shard is still locked (no
		// other writer can mint into the gap), so the watermark can cross
		// the whole revert in one step.
		last := s.seq.Add(uint64(len(plan)))
		first := last - uint64(len(plan)) + 1
		seqs = make([]uint64, len(plan))
		for i := range seqs {
			seqs[i] = first + uint64(i)
		}
	}
	for i, m := range plan {
		s.insertLocked(&s.shards[s.shardIndex(m.Key)], m.Key, m.Value, m.Time, m.Delete, seqs[i])
	}

	// Observer calls run outside the shard locks by contract; the unlock
	// is idempotent, so the deferred call becomes a no-op. Publication
	// happens after the unlock (the watermark wait must not hold shard
	// locks) and before the observers (whatever they trigger sees the
	// revert).
	unlock()
	s.pub.completeSeqs(seqs)
	observeRange(s.statsObserver(), plan)
	return len(plan), nil
}

// batchSeqSink is the optional sink extension that enqueues a whole
// mutation batch under one sink lock hold: the batch occupies a contiguous
// run of sequence numbers (and of the replication stream), flagged so a
// replica applies it as one atomic group. RevertCluster uses it so a
// cluster revert can never interleave with other writers in the stream.
type batchSeqSink interface {
	appendSeqBatch(muts []Mutation) ([]uint64, error)
}

// sinkAppendBatch enqueues a mutation batch to the persistence sink and
// returns the per-mutation sequence numbers a seq-assigning sink minted.
// With no sink, or a plain sink that does not mint, it returns a nil
// slice and the caller mints. The sink box is snapshotted once for the
// whole batch: re-loading s.sink per mutation would let a concurrent
// bind/detach split one revert across two sinks (or between sink-minted
// and store-minted sequence numbers).
func (s *Store) sinkAppendBatch(plan []Mutation) ([]uint64, error) {
	box := s.sink.Load()
	if box == nil {
		return nil, nil
	}
	if bs, ok := box.sink.(batchSeqSink); ok {
		return bs.appendSeqBatch(plan)
	}
	if ss, ok := box.sink.(seqSink); ok {
		seqs := make([]uint64, len(plan))
		for i := range plan {
			m := &plan[i]
			seq, err := ss.appendSeq(m.Key, m.Value, m.Time, m.Delete)
			if err != nil {
				return nil, err
			}
			seqs[i] = seq
		}
		return seqs, nil
	}
	for i := range plan {
		m := &plan[i]
		if err := box.sink.append(m.Key, m.Value, m.Time, m.Delete); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

// versionAtLocked is GetAt's lookup with the shard lock already held. It
// reads the record's full published state, watermark included: under the
// lock there are no in-flight writers, so everything published is the
// current truth.
func versionAtLocked(sh *shard, key string, t time.Time) (Version, bool) {
	rec := sh.load()[key]
	if rec == nil {
		return Version{}, false
	}
	vs := rec.state.Load().versions
	i := sort.Search(len(vs), func(i int) bool {
		return vs[i].Time.After(t)
	})
	if i == 0 {
		return Version{}, false
	}
	return vs[i-1], true
}

// existsLocked reports whether key currently has a live (non-deleted)
// value, with the shard lock already held.
func existsLocked(sh *shard, key string) bool {
	rec := sh.load()[key]
	if rec == nil {
		return false
	}
	vs := rec.state.Load().versions
	return len(vs) > 0 && !vs[len(vs)-1].Deleted
}
