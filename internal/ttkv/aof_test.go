package ttkv

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/iotest"
)

func TestAOFRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.aof")
	aof, err := CreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AttachAOF(aof)
	must(t, s.Set("alpha", "1", at(0)))
	must(t, s.Set("beta", "x", at(1)))
	must(t, s.Set("alpha", "2", at(2)))
	must(t, s.Delete("beta", at(3)))
	if err := s.SyncAOF(); err != nil {
		t.Fatal(err)
	}
	if err := aof.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := loaded.Get("alpha"); !ok || v != "2" {
		t.Errorf("alpha = %q,%v, want 2", v, ok)
	}
	if _, ok := loaded.Get("beta"); ok {
		t.Error("beta must be deleted after replay")
	}
	origHist, _ := s.History("alpha")
	loadHist, _ := loaded.History("alpha")
	if len(origHist) != len(loadHist) {
		t.Fatalf("history length %d != %d", len(loadHist), len(origHist))
	}
	for i := range origHist {
		if origHist[i].Value != loadHist[i].Value || !origHist[i].Time.Equal(loadHist[i].Time) {
			t.Errorf("version %d mismatch: %+v vs %+v", i, origHist[i], loadHist[i])
		}
	}
}

func TestAOFAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.aof")
	aof, err := CreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AttachAOF(aof)
	must(t, s.Set("k", "v1", at(0)))
	if err := aof.Close(); err != nil {
		t.Fatal(err)
	}

	aof2, err := OpenAOFForAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s2.AttachAOF(aof2)
	must(t, s2.Set("k", "v2", at(1)))
	if err := aof2.Close(); err != nil {
		t.Fatal(err)
	}

	final, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := final.Get("k"); v != "v2" {
		t.Errorf("after reopen+append, k = %q, want v2", v)
	}
	hist, _ := final.History("k")
	if len(hist) != 2 {
		t.Errorf("history = %d versions, want 2", len(hist))
	}
}

func TestAOFTruncatedTailRecovered(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.aof")
	aof, err := CreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AttachAOF(aof)
	must(t, s.Set("good", "1", at(0)))
	must(t, s.Set("partial", "2", at(1)))
	if err := aof.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the final record to simulate a crash mid-append.
	for _, cut := range []int{3, 7, 11} {
		if cut >= len(raw) {
			continue
		}
		chopped := raw[:len(raw)-cut]
		loaded, err := ReadAOF(bytes.NewReader(chopped))
		if err != nil {
			t.Fatalf("cut %d: ReadAOF must tolerate a truncated tail, got %v", cut, err)
		}
		if v, ok := loaded.Get("good"); !ok || v != "1" {
			t.Errorf("cut %d: complete record lost: good = %q,%v", cut, v, ok)
		}
	}
}

func TestAOFBadMagic(t *testing.T) {
	if _, err := ReadAOF(bytes.NewReader([]byte("XXXX\x01\x00"))); !errors.Is(err, ErrAOFMagic) {
		t.Errorf("err = %v, want ErrAOFMagic", err)
	}
}

func TestAOFBadVersion(t *testing.T) {
	if _, err := ReadAOF(bytes.NewReader([]byte("OCKV\xFF\x00"))); !errors.Is(err, ErrAOFVersion) {
		t.Errorf("err = %v, want ErrAOFVersion", err)
	}
}

func TestAOFCorruptOp(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("OCKV")
	buf.Write([]byte{0x01, 0x00}) // version
	buf.WriteByte(0x77)           // invalid op
	if _, err := ReadAOF(&buf); !errors.Is(err, ErrAOFCorrupt) {
		t.Errorf("err = %v, want ErrAOFCorrupt", err)
	}
}

func TestAOFOversizedString(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("OCKV")
	buf.Write([]byte{0x01, 0x00})
	buf.WriteByte(opSet)
	buf.Write(make([]byte, 8))                // timestamp
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB key
	if _, err := ReadAOF(&buf); !errors.Is(err, ErrAOFCorrupt) {
		t.Errorf("err = %v, want ErrAOFCorrupt", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New()
	must(t, s.Set("k", "v1", at(0)))
	must(t, s.Set("k", "v2", at(5)))
	must(t, s.Set("other", "x", at(3)))
	must(t, s.Delete("other", at(8)))
	// Out-of-order injected write, to prove the snapshot preserves
	// chronological histories even with odd sequence/time interleavings.
	must(t, s.Set("k", "injected", at(2)))

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadAOF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range s.Keys() {
		want, _ := s.History(key)
		got, err := loaded.History(key)
		if err != nil {
			t.Fatalf("History(%s): %v", key, err)
		}
		if len(want) != len(got) {
			t.Fatalf("%s: %d versions, want %d", key, len(got), len(want))
		}
		for i := range want {
			if want[i].Value != got[i].Value || !want[i].Time.Equal(got[i].Time) ||
				want[i].Deleted != got[i].Deleted {
				t.Errorf("%s version %d: got %+v, want %+v", key, i, got[i], want[i])
			}
		}
	}
	if !reflect.DeepEqual(s.Keys(), loaded.Keys()) {
		t.Errorf("key sets differ: %v vs %v", loaded.Keys(), s.Keys())
	}
}

func TestSyncAOFWithoutAttachment(t *testing.T) {
	if err := New().SyncAOF(); err != nil {
		t.Errorf("SyncAOF with no AOF attached = %v, want nil", err)
	}
}

// Regression: CreateAOF used to os.Create, silently truncating existing
// history. It must now refuse to clobber.
func TestCreateAOFRefusesClobber(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.aof")
	aof, err := CreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AttachAOF(aof)
	must(t, s.Set("k", "precious", at(0)))
	if err := aof.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateAOF(path); !errors.Is(err, ErrAOFExists) {
		t.Fatalf("CreateAOF on existing file = %v, want ErrAOFExists", err)
	}
	loaded, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := loaded.Get("k"); !ok || v != "precious" {
		t.Fatalf("history damaged by refused create: %q,%v", v, ok)
	}
}

func TestOpenOrCreateAOF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.aof")

	// Fresh path: creates the file with a header.
	aof, err := OpenOrCreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AttachAOF(aof)
	must(t, s.Set("k", "v1", at(0)))
	if err := aof.Close(); err != nil {
		t.Fatal(err)
	}

	// Existing path: appends to the history instead of truncating it.
	aof2, err := OpenOrCreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s2.AttachAOF(aof2)
	must(t, s2.Set("k", "v2", at(1)))
	if err := aof2.Close(); err != nil {
		t.Fatal(err)
	}

	final, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	hist, _ := final.History("k")
	if len(hist) != 2 || hist[0].Value != "v1" || hist[1].Value != "v2" {
		t.Fatalf("history after reopen = %+v, want v1 then v2", hist)
	}
}

// Regression: appending after a crash-truncated tail used to land new
// records behind the partial garbage, where replay (which stops at the
// first incomplete record) could never reach them. OpenOrCreateAOF must
// truncate the damaged tail before appending.
func TestOpenOrCreateAOFRepairsTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.aof")
	aof, err := CreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AttachAOF(aof)
	must(t, s.Set("good", "1", at(0)))
	must(t, s.Set("partial", "2", at(1)))
	if err := aof.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the final record to simulate a crash.
	if err := os.WriteFile(path, raw[:len(raw)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	aof2, err := OpenOrCreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s2.AttachAOF(aof2)
	must(t, s2.Set("after-crash", "3", at(2)))
	if err := aof2.Close(); err != nil {
		t.Fatal(err)
	}

	final, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := final.Get("good"); !ok || v != "1" {
		t.Errorf("pre-crash record lost: good = %q,%v", v, ok)
	}
	if v, ok := final.Get("after-crash"); !ok || v != "3" {
		t.Errorf("post-crash record unreachable: after-crash = %q,%v", v, ok)
	}
	if _, ok := final.Get("partial"); ok {
		t.Error("the chopped record must stay discarded")
	}
}

// A non-EOF read error mid-record must surface as an error, not be
// misdiagnosed as a clean truncated tail — OpenOrCreateAOF turns a
// truncation verdict into a destructive Truncate.
func TestReadAOFSurfacesIOErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.aof")
	aof, err := CreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AttachAOF(aof)
	must(t, s.Set("first", "1", at(0)))
	must(t, s.Set("second", "2", at(1)))
	if err := aof.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec1End := aofHeaderLen + len(appendRecord(nil, "first", "1", at(0), false))
	errDisk := errors.New("simulated disk error")
	// The stream fails partway into the second record's timestamp: not a
	// truncation, so the error must propagate.
	r := io.MultiReader(bytes.NewReader(raw[:rec1End+3]), iotest.ErrReader(errDisk))
	if err := ReadAOFInto(r, New()); !errors.Is(err, errDisk) {
		t.Fatalf("ReadAOFInto with mid-record I/O error = %v, want %v", err, errDisk)
	}
	// A genuine truncation at the same offset stays tolerated.
	if _, err := ReadAOF(bytes.NewReader(raw[:rec1End+3])); err != nil {
		t.Fatalf("genuine truncation must stay tolerated, got %v", err)
	}
}

// OpenAOFInto fuses replay and open-for-append in one pass.
func TestOpenAOFInto(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.aof")

	// Fresh path: creates the file; nothing to replay.
	empty := New()
	aof, err := OpenAOFInto(path, empty)
	if err != nil {
		t.Fatal(err)
	}
	empty.AttachAOF(aof)
	must(t, empty.Set("k", "v1", at(0)))
	must(t, empty.Set("k", "v2", at(1)))
	if err := aof.Close(); err != nil {
		t.Fatal(err)
	}

	// Existing path: replays into the given store and appends after the
	// replayed records.
	s := NewSharded(4)
	aof2, err := OpenAOFInto(path, s)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("replayed %d keys, want 1", s.Len())
	}
	s.AttachAOF(aof2)
	must(t, s.Set("k", "v3", at(2)))
	if err := aof2.Close(); err != nil {
		t.Fatal(err)
	}

	final, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	hist, _ := final.History("k")
	if len(hist) != 3 || hist[2].Value != "v3" {
		t.Fatalf("history = %+v, want v1,v2,v3", hist)
	}
}

func TestOpenOrCreateAOFRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-an-aof")
	if err := os.WriteFile(path, []byte("garbage contents"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenOrCreateAOF(path); !errors.Is(err, ErrAOFMagic) {
		t.Fatalf("OpenOrCreateAOF on garbage = %v, want ErrAOFMagic", err)
	}
}

func TestCompactToFullFidelity(t *testing.T) {
	s := New()
	must(t, s.Set("k", "v1", at(0)))
	must(t, s.Set("k", "v2", at(5)))
	must(t, s.Set("other", "x", at(3)))
	must(t, s.Delete("other", at(8)))
	must(t, s.Set("k", "injected", at(2))) // out-of-order history survives

	path := filepath.Join(t.TempDir(), "compacted.aof")
	if err := s.CompactTo(path, 0); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range s.Keys() {
		want, _ := s.History(k)
		got, err := loaded.History(k)
		if err != nil || len(got) != len(want) {
			t.Fatalf("%q: %d versions,%v, want %d", k, len(got), err, len(want))
		}
		for i := range want {
			if want[i].Value != got[i].Value || !want[i].Time.Equal(got[i].Time) ||
				want[i].Deleted != got[i].Deleted {
				t.Errorf("%q version %d: %+v vs %+v", k, i, got[i], want[i])
			}
		}
	}
}

func TestCompactToRetention(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		must(t, s.Set("hot", fmt.Sprintf("v%d", i), at(i)))
	}
	must(t, s.Set("cold", "only", at(0)))

	path := filepath.Join(t.TempDir(), "trimmed.aof")
	if err := s.CompactTo(path, 3); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := loaded.History("hot")
	if err != nil || len(hist) != 3 {
		t.Fatalf("retained history = %d versions,%v, want 3", len(hist), err)
	}
	// The newest versions survive, oldest are shed.
	if hist[0].Value != "v7" || hist[2].Value != "v9" {
		t.Errorf("retained versions = %+v, want v7..v9", hist)
	}
	if h, err := loaded.History("cold"); err != nil || len(h) != 1 {
		t.Errorf("short history must be untouched: %v,%v", h, err)
	}
	// The in-memory store keeps full history.
	if h, _ := s.History("hot"); len(h) != 10 {
		t.Errorf("CompactTo must not trim the live store (got %d versions)", len(h))
	}
}

// CompactTo replaces an existing AOF atomically: the target keeps valid
// content, and the temp file is gone afterwards.
func TestCompactToReplacesExisting(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.aof")
	aof, err := CreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AttachAOF(aof)
	for i := 0; i < 5; i++ {
		must(t, s.Set("k", fmt.Sprintf("v%d", i), at(i)))
	}
	if err := aof.Close(); err != nil {
		t.Fatal(err)
	}
	// Compacting over the live AOF path is refused while a sink is still
	// attached — the old handle would keep writing to the replaced inode.
	if err := s.CompactTo(path, 1); !errors.Is(err, ErrAOFAttached) {
		t.Fatalf("CompactTo with attached AOF = %v, want ErrAOFAttached", err)
	}
	s.AttachAOF(nil)
	if err := s.CompactTo(path, 1); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("compaction left extra files: %v", entries)
	}
	loaded, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	hist, _ := loaded.History("k")
	if len(hist) != 1 || hist[0].Value != "v4" {
		t.Fatalf("compacted history = %+v, want just v4", hist)
	}
	// And the compacted file accepts appends via OpenOrCreateAOF.
	aof2, err := OpenOrCreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded.AttachAOF(aof2)
	must(t, loaded.Set("k", "v5", at(9)))
	if err := aof2.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	if hist, _ := final.History("k"); len(hist) != 2 {
		t.Fatalf("append after compaction: history = %+v, want 2 versions", hist)
	}
}
