package ttkv

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestAOFRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.aof")
	aof, err := CreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AttachAOF(aof)
	must(t, s.Set("alpha", "1", at(0)))
	must(t, s.Set("beta", "x", at(1)))
	must(t, s.Set("alpha", "2", at(2)))
	must(t, s.Delete("beta", at(3)))
	if err := s.SyncAOF(); err != nil {
		t.Fatal(err)
	}
	if err := aof.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := loaded.Get("alpha"); !ok || v != "2" {
		t.Errorf("alpha = %q,%v, want 2", v, ok)
	}
	if _, ok := loaded.Get("beta"); ok {
		t.Error("beta must be deleted after replay")
	}
	origHist, _ := s.History("alpha")
	loadHist, _ := loaded.History("alpha")
	if len(origHist) != len(loadHist) {
		t.Fatalf("history length %d != %d", len(loadHist), len(origHist))
	}
	for i := range origHist {
		if origHist[i].Value != loadHist[i].Value || !origHist[i].Time.Equal(loadHist[i].Time) {
			t.Errorf("version %d mismatch: %+v vs %+v", i, origHist[i], loadHist[i])
		}
	}
}

func TestAOFAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.aof")
	aof, err := CreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AttachAOF(aof)
	must(t, s.Set("k", "v1", at(0)))
	if err := aof.Close(); err != nil {
		t.Fatal(err)
	}

	aof2, err := OpenAOFForAppend(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s2.AttachAOF(aof2)
	must(t, s2.Set("k", "v2", at(1)))
	if err := aof2.Close(); err != nil {
		t.Fatal(err)
	}

	final, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := final.Get("k"); v != "v2" {
		t.Errorf("after reopen+append, k = %q, want v2", v)
	}
	hist, _ := final.History("k")
	if len(hist) != 2 {
		t.Errorf("history = %d versions, want 2", len(hist))
	}
}

func TestAOFTruncatedTailRecovered(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.aof")
	aof, err := CreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New()
	s.AttachAOF(aof)
	must(t, s.Set("good", "1", at(0)))
	must(t, s.Set("partial", "2", at(1)))
	if err := aof.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the final record to simulate a crash mid-append.
	for _, cut := range []int{3, 7, 11} {
		if cut >= len(raw) {
			continue
		}
		chopped := raw[:len(raw)-cut]
		loaded, err := ReadAOF(bytes.NewReader(chopped))
		if err != nil {
			t.Fatalf("cut %d: ReadAOF must tolerate a truncated tail, got %v", cut, err)
		}
		if v, ok := loaded.Get("good"); !ok || v != "1" {
			t.Errorf("cut %d: complete record lost: good = %q,%v", cut, v, ok)
		}
	}
}

func TestAOFBadMagic(t *testing.T) {
	if _, err := ReadAOF(bytes.NewReader([]byte("XXXX\x01\x00"))); !errors.Is(err, ErrAOFMagic) {
		t.Errorf("err = %v, want ErrAOFMagic", err)
	}
}

func TestAOFBadVersion(t *testing.T) {
	if _, err := ReadAOF(bytes.NewReader([]byte("OCKV\xFF\x00"))); !errors.Is(err, ErrAOFVersion) {
		t.Errorf("err = %v, want ErrAOFVersion", err)
	}
}

func TestAOFCorruptOp(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("OCKV")
	buf.Write([]byte{0x01, 0x00}) // version
	buf.WriteByte(0x77)           // invalid op
	if _, err := ReadAOF(&buf); !errors.Is(err, ErrAOFCorrupt) {
		t.Errorf("err = %v, want ErrAOFCorrupt", err)
	}
}

func TestAOFOversizedString(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("OCKV")
	buf.Write([]byte{0x01, 0x00})
	buf.WriteByte(opSet)
	buf.Write(make([]byte, 8))                // timestamp
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB key
	if _, err := ReadAOF(&buf); !errors.Is(err, ErrAOFCorrupt) {
		t.Errorf("err = %v, want ErrAOFCorrupt", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := New()
	must(t, s.Set("k", "v1", at(0)))
	must(t, s.Set("k", "v2", at(5)))
	must(t, s.Set("other", "x", at(3)))
	must(t, s.Delete("other", at(8)))
	// Out-of-order injected write, to prove the snapshot preserves
	// chronological histories even with odd sequence/time interleavings.
	must(t, s.Set("k", "injected", at(2)))

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadAOF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range s.Keys() {
		want, _ := s.History(key)
		got, err := loaded.History(key)
		if err != nil {
			t.Fatalf("History(%s): %v", key, err)
		}
		if len(want) != len(got) {
			t.Fatalf("%s: %d versions, want %d", key, len(got), len(want))
		}
		for i := range want {
			if want[i].Value != got[i].Value || !want[i].Time.Equal(got[i].Time) ||
				want[i].Deleted != got[i].Deleted {
				t.Errorf("%s version %d: got %+v, want %+v", key, i, got[i], want[i])
			}
		}
	}
	if !reflect.DeepEqual(s.Keys(), loaded.Keys()) {
		t.Errorf("key sets differ: %v vs %v", loaded.Keys(), s.Keys())
	}
}

func TestSyncAOFWithoutAttachment(t *testing.T) {
	if err := New().SyncAOF(); err != nil {
		t.Errorf("SyncAOF with no AOF attached = %v, want nil", err)
	}
}
