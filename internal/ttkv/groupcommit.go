package ttkv

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrAppenderClosed is returned by GroupCommit operations after Close.
var ErrAppenderClosed = errors.New("ttkv: group-commit appender closed")

// FsyncPolicy controls when a GroupCommit fsyncs the AOF.
type FsyncPolicy int

// Fsync policies.
const (
	// FsyncInterval fsyncs once per flush interval: the default, bounding
	// data loss to one interval of mutations (Redis "everysec" semantics).
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways wakes the flusher on every append and fsyncs every
	// batch it writes, shrinking the loss window to the one batch in
	// flight (records that arrived while the previous fsync ran). Group
	// commit amortizes the fsync across that batch. Appends still do not
	// block on durability; use Sync for a hard barrier.
	FsyncAlways
	// FsyncNever leaves fsync to the OS (and to explicit Sync calls).
	FsyncNever
)

// ParseFsyncPolicy parses "always", "interval", or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return 0, fmt.Errorf("ttkv: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// String returns the flag spelling of p.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// GroupCommitConfig tunes a GroupCommit appender. Zero values select the
// defaults noted per field.
type GroupCommitConfig struct {
	// FlushInterval is the longest a record waits in memory before the
	// batch is written (and, per policy, fsynced). Default 50ms.
	FlushInterval time.Duration
	// MaxBatchBytes triggers an early flush once this many encoded bytes
	// are pending. Default 256 KiB.
	MaxBatchBytes int
	// MaxPendingBytes caps the unflushed backlog: writers block (before
	// taking any store lock, so readers are unaffected) once about this
	// many encoded bytes await the flusher — a stalled disk applies
	// backpressure instead of growing memory without bound. Default 4 MiB
	// (never below 2x MaxBatchBytes).
	MaxPendingBytes int
	// Fsync is the durability policy. Default FsyncInterval.
	Fsync FsyncPolicy
}

func (c GroupCommitConfig) withDefaults() GroupCommitConfig {
	if c.FlushInterval <= 0 {
		c.FlushInterval = 50 * time.Millisecond
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 256 << 10
	}
	if c.MaxPendingBytes <= 0 {
		c.MaxPendingBytes = 4 << 20
	}
	if c.MaxPendingBytes < 2*c.MaxBatchBytes {
		c.MaxPendingBytes = 2 * c.MaxBatchBytes
	}
	return c
}

// LogWriter is the append-only log a GroupCommit flushes into: a flat
// AOF or a SegmentedAOF. The methods are unexported on purpose — only
// this package's log types can be group-committed, which keeps the
// batching contract internal (writeBatch and flushOS are called from the
// single flusher goroutine only).
type LogWriter interface {
	// writeBatch appends a batch of pre-encoded AOF records; records is
	// how many complete records the batch holds (the segmented log uses
	// it to maintain its per-segment sequence-range index, a flat file
	// ignores it).
	writeBatch(encoded []byte, records int) error
	// flushOS pushes buffered bytes to the OS without fsyncing.
	flushOS() error
	// Sync flushes buffered bytes and fsyncs.
	Sync() error
	// Close flushes and closes the log.
	Close() error
}

// GroupCommit batches AOF appends off the store's shard locks. Writers
// encode records into an in-memory buffer (a cheap memcpy under the shard
// lock); a background goroutine writes accumulated batches to the log and
// fsyncs per policy. Sync is a barrier: it returns once everything
// appended before the call is flushed AND fsynced, whatever the policy.
// Close drains all pending records, fsyncs, and closes the log.
//
// Because writers enqueue while still holding their shard lock, the log
// preserves per-key mutation order exactly; replay therefore rebuilds
// identical per-key histories.
//
//ocasta:durable
type GroupCommit struct {
	aof LogWriter
	cfg GroupCommitConfig

	mu          sync.Mutex
	cond        *sync.Cond
	pending     []byte // encoded records not yet handed to the flusher
	pendingRecs int    // how many complete records pending holds
	scratch     []byte // recycled buffer for the next pending batch
	gen         uint64 // generation of the latest appended record
	synced      uint64 // generation fsynced
	wantSync    uint64 // highest generation an explicit Sync requires durable
	err         error  // first flush error; sticky
	closed      bool

	// syncs counts completed fsyncs (observability; tests assert an idle
	// appender stops syncing).
	syncs atomic.Uint64

	// onCommit, when set, is called after each successful flush cycle with
	// the total number of records committed to the AOF so far (written to
	// the OS, and fsynced when the policy or a Sync barrier required it).
	// The replication log uses it as its durability gate: a record is
	// shipped to replicas only once this callback has covered it. Called
	// from the flusher goroutine only, outside gc.mu, in strictly
	// non-decreasing gen order. Set before any append (setOnCommit).
	//ocasta:nolock
	onCommit func(gen uint64)
	notified uint64 // highest gen passed to onCommit; flusher-only

	wake      chan struct{}
	quit      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeDone chan struct{} // closed once the AOF is closed and gc.err final
}

// SyncCount reports how many fsyncs the appender has performed.
func (gc *GroupCommit) SyncCount() uint64 { return gc.syncs.Load() }

// setOnCommit installs the post-flush commit callback. It must be called
// before the appender receives its first record (NewReplLog does, before
// the log is attached to a store), so no commit can be missed.
func (gc *GroupCommit) setOnCommit(fn func(gen uint64)) {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	gc.onCommit = fn
}

// NewGroupCommit wraps a (typically freshly opened) log — a flat *AOF or
// a *SegmentedAOF — in a group-commit appender and starts its background
// flusher. The appender assumes sole ownership of the log until Close.
func NewGroupCommit(a LogWriter, cfg GroupCommitConfig) *GroupCommit {
	gc := &GroupCommit{
		aof:       a,
		cfg:       cfg.withDefaults(),
		wake:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		closeDone: make(chan struct{}),
	}
	gc.cond = sync.NewCond(&gc.mu)
	go gc.run()
	return gc
}

// append implements aofSink. It only copies bytes; disk I/O happens on the
// flusher goroutine. A sticky flush error is reported here so writers
// learn that persistence is failing.
// waitCapacity implements the store's pre-lock backpressure gate: it
// blocks while the backlog is at its cap, so a disk stall pauses writers
// before they take any shard lock — readers stay unaffected. The cap is
// approximate: writers already past the gate may overshoot it by their
// in-flight records.
func (gc *GroupCommit) waitCapacity() error {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	for len(gc.pending) >= gc.cfg.MaxPendingBytes && gc.err == nil && !gc.closed {
		gc.signal()
		gc.cond.Wait()
	}
	if gc.err != nil {
		return gc.err
	}
	if gc.closed {
		return ErrAppenderClosed
	}
	return nil
}

func (gc *GroupCommit) append(key, value string, t time.Time, deleted bool) error {
	gc.mu.Lock()
	if gc.err != nil {
		err := gc.err
		gc.mu.Unlock()
		return err
	}
	if gc.closed {
		gc.mu.Unlock()
		return ErrAppenderClosed
	}
	gc.pending = appendRecord(gc.pending, key, value, t, deleted)
	gc.pendingRecs++
	gc.gen++
	full := len(gc.pending) >= gc.cfg.MaxBatchBytes
	gc.mu.Unlock()
	// FsyncAlways flushes eagerly on every append, not just on batch-size
	// pressure, so a record's loss window is one in-flight batch rather
	// than a full flush interval.
	if full || gc.cfg.Fsync == FsyncAlways {
		gc.signal()
	}
	return nil
}

// appendEncodedBatch enqueues n pre-encoded AOF records as one indivisible
// unit: all n land in the same flush batch, so the commit callback can
// never cover a prefix of them. The replication log uses it for atomic
// cluster-revert batches — the durable watermark (and with it the
// snapshot/tail boundary a resuming replica syncs at) stays batch-aligned.
func (gc *GroupCommit) appendEncodedBatch(encoded []byte, n int) error {
	gc.mu.Lock()
	if gc.err != nil {
		err := gc.err
		gc.mu.Unlock()
		return err
	}
	if gc.closed {
		gc.mu.Unlock()
		return ErrAppenderClosed
	}
	gc.pending = append(gc.pending, encoded...)
	gc.pendingRecs += n
	gc.gen += uint64(n)
	full := len(gc.pending) >= gc.cfg.MaxBatchBytes
	gc.mu.Unlock()
	if full || gc.cfg.Fsync == FsyncAlways {
		gc.signal()
	}
	return nil
}

func (gc *GroupCommit) signal() {
	select {
	case gc.wake <- struct{}{}:
	default:
	}
}

// Sync blocks until every record appended before the call is written and
// fsynced, regardless of fsync policy.
func (gc *GroupCommit) Sync() error {
	gc.mu.Lock()
	if gc.err != nil {
		err := gc.err
		gc.mu.Unlock()
		return err
	}
	if gc.closed {
		gc.mu.Unlock()
		return ErrAppenderClosed
	}
	g := gc.gen
	if g > gc.wantSync {
		gc.wantSync = g
	}
	gc.mu.Unlock()
	gc.signal()
	gc.mu.Lock()
	defer gc.mu.Unlock()
	for gc.synced < g && gc.err == nil && !gc.closed {
		gc.cond.Wait()
	}
	if gc.err != nil {
		return gc.err
	}
	if gc.synced < g {
		return ErrAppenderClosed
	}
	return nil
}

// Close drains pending records, fsyncs, closes the AOF, and stops the
// flusher. It is idempotent and safe for concurrent use: every caller
// blocks until shutdown has fully completed (AOF closed, final error
// recorded) and observes the same result. After Close, append and Sync
// fail.
func (gc *GroupCommit) Close() error {
	gc.closeOnce.Do(func() {
		gc.mu.Lock()
		gc.closed = true
		gc.mu.Unlock()
		close(gc.quit)
		<-gc.done // final drain flush has run
		aofErr := gc.aof.Close()
		gc.mu.Lock()
		if gc.err == nil {
			gc.err = aofErr
		}
		gc.cond.Broadcast()
		gc.mu.Unlock()
		close(gc.closeDone)
	})
	<-gc.closeDone
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return gc.err
}

// run is the flusher goroutine: it wakes on the interval ticker, on
// batch-size pressure, and on Sync barriers, and performs one flush cycle
// per wakeup.
func (gc *GroupCommit) run() {
	defer close(gc.done)
	ticker := time.NewTicker(gc.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-gc.quit:
			gc.flushCycle(true) // final drain: always durable
			return
		case <-ticker.C:
			gc.flushCycle(gc.cfg.Fsync != FsyncNever)
		case <-gc.wake:
			gc.flushCycle(gc.cfg.Fsync == FsyncAlways)
		}
	}
}

// flushCycle hands the pending batch to the AOF, flushes it to the OS, and
// fsyncs when the policy or a pending Sync barrier requires it.
func (gc *GroupCommit) flushCycle(policySync bool) {
	gc.mu.Lock()
	if gc.err != nil {
		gc.mu.Unlock()
		return
	}
	batch := gc.pending
	batchRecs := gc.pendingRecs
	gc.pending = gc.scratch[:0]
	gc.pendingRecs = 0
	gc.scratch = batch
	target := gc.gen
	commitCb := gc.onCommit
	// Sync only when there is something new to make durable: an idle
	// daemon must not fsync an unchanged file every tick.
	doSync := (policySync || gc.wantSync > gc.synced) && target > gc.synced
	gc.mu.Unlock()

	var err error
	if len(batch) > 0 {
		err = gc.aof.writeBatch(batch, batchRecs)
	}
	if err == nil {
		if doSync {
			if err = gc.aof.Sync(); err == nil {
				gc.syncs.Add(1)
			}
		} else if len(batch) > 0 {
			err = gc.aof.flushOS()
		}
	}

	// Report the commit before updating synced/broadcasting, so a Sync
	// caller that unblocks has the guarantee that the replication log's
	// durability watermark already covers its records.
	if err == nil && target > gc.notified {
		gc.notified = target
		if commitCb != nil {
			commitCb(target)
		}
	}

	gc.mu.Lock()
	if err != nil {
		if gc.err == nil {
			gc.err = err
		}
	} else if doSync && target > gc.synced {
		gc.synced = target
	}
	gc.cond.Broadcast()
	gc.mu.Unlock()
}
