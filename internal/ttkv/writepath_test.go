package ttkv

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// swappingSink is a plain persistence sink (no sequence minting) that
// rebinds the store to a second sink the moment its first record
// arrives — the concurrent AttachAOF a revert batch must not be split
// across.
type swappingSink struct {
	s    *Store
	next *countingSink

	mu   sync.Mutex
	keys []string
}

func (w *swappingSink) append(key, value string, t time.Time, deleted bool) error {
	w.mu.Lock()
	w.keys = append(w.keys, key)
	w.mu.Unlock()
	if w.next != nil {
		w.s.sink.Store(&sinkBox{sink: w.next})
		w.next = nil
	}
	return nil
}

func (w *swappingSink) Sync() error { return nil }

type countingSink struct {
	mu   sync.Mutex
	keys []string
}

func (c *countingSink) append(key, value string, t time.Time, deleted bool) error {
	c.mu.Lock()
	c.keys = append(c.keys, key)
	c.mu.Unlock()
	return nil
}

func (c *countingSink) Sync() error { return nil }

// TestRevertSinkSnapshotted: the whole revert batch must land on the
// sink that was attached when the batch started, even if the store is
// rebound to another sink mid-batch. (Regression: the fallback loop
// re-loaded s.sink per mutation, splitting one atomic revert across two
// logs.)
func TestRevertSinkSnapshotted(t *testing.T) {
	s := New()
	base := time.Unix(100, 0)
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Set(k, "old-"+k, base); err != nil {
			t.Fatal(err)
		}
		if err := s.Set(k, "new-"+k, base.Add(10*time.Second)); err != nil {
			t.Fatal(err)
		}
	}

	second := &countingSink{}
	first := &swappingSink{s: s, next: second}
	s.sink.Store(&sinkBox{sink: first})

	n, err := s.RevertCluster([]string{"a", "b", "c"}, base.Add(time.Second), base.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("reverted %d keys, want 3", n)
	}
	if len(first.keys) != 3 {
		t.Fatalf("original sink got %d records (%v), want all 3", len(first.keys), first.keys)
	}
	if len(second.keys) != 0 {
		t.Fatalf("swapped-in sink got %d records (%v), want none until the batch completes", len(second.keys), second.keys)
	}
}

// TestApplyPartialCount: a persistence error mid-batch must report
// exactly how many mutations were applied, and those must be visible.
// (Regression: Apply returned a bare error, so MSET callers could not
// tell a clean failure from a half-applied batch.)
func TestApplyPartialCount(t *testing.T) {
	s := New()
	s.sink.Store(&sinkBox{sink: &failingSink{allow: 3}})

	base := time.Unix(100, 0)
	muts := make([]Mutation, 6)
	for i := range muts {
		muts[i] = Mutation{Key: fmt.Sprintf("k%d", i), Value: "v", Time: base.Add(time.Duration(i) * time.Second)}
	}
	applied, err := s.Apply(muts)
	if err == nil {
		t.Fatal("Apply with a failing sink returned nil error")
	}
	if applied != 3 {
		t.Fatalf("applied = %d, want 3", applied)
	}
	// The reported prefix is applied and visible; the rest is not.
	for i := range muts {
		_, err := s.Latest(muts[i].Key)
		if i < applied && err != nil {
			t.Errorf("key %s: reported applied but Latest says %v", muts[i].Key, err)
		}
		if i >= applied && !errors.Is(err, ErrNoKey) {
			t.Errorf("key %s: reported unapplied but Latest says %v", muts[i].Key, err)
		}
	}

	// A clean batch reports the full count.
	s.sink.Store(nil)
	applied, err = s.Apply(muts)
	if err != nil || applied != len(muts) {
		t.Fatalf("clean Apply = (%d, %v), want (%d, nil)", applied, err, len(muts))
	}
}

// TestModTimesWallClock: ModTimes must deduplicate, compare, and sort on
// wall-clock nanoseconds only. (Regression: it deduplicated on UnixNano
// but sorted with Time.After, which prefers the monotonic reading —
// time.Now()-stamped writes could sort inconsistently with their own
// dedup key.)
func TestModTimesWallClock(t *testing.T) {
	s := New()
	now := time.Now() // carries a monotonic reading
	if err := s.Set("a", "1", now); err != nil {
		t.Fatal(err)
	}
	// Same wall-clock instant, monotonic reading stripped: one distinct
	// timestamp, not two.
	if err := s.Set("b", "1", now.Round(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("a", "2", now.Add(-time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("b", "2", now.Add(time.Hour).Round(0)); err != nil {
		t.Fatal(err)
	}

	times := s.ModTimes([]string{"a", "b"})
	if len(times) != 3 {
		t.Fatalf("ModTimes returned %d timestamps (%v), want 3 distinct wall-clock instants", len(times), times)
	}
	for i, tm := range times {
		if tm != tm.Round(0) {
			t.Errorf("times[%d] retains a monotonic reading", i)
		}
		if i > 0 && times[i-1].UnixNano() <= tm.UnixNano() {
			t.Errorf("times not strictly descending on wall clock: %v then %v", times[i-1], tm)
		}
	}

	v := s.ViewAt(s.CurrentSeq())
	vtimes := v.ModTimes([]string{"a", "b"})
	if len(vtimes) != len(times) {
		t.Fatalf("View.ModTimes returned %d timestamps, want %d", len(vtimes), len(times))
	}
	for i := range times {
		if !vtimes[i].Equal(times[i]) {
			t.Fatalf("View.ModTimes[%d] = %v, Store.ModTimes = %v", i, vtimes[i], times[i])
		}
	}
}
