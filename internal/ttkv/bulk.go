package ttkv

import "time"

// CountReads records n application reads of key at once. The workload
// generator uses it to reproduce the paper's read volumes (tens of
// millions of registry reads per machine) without per-event overhead.
//
// Unlike Get and CountRead — which model live application traffic, where a
// miss is still a real read — CountReads is a bulk stats-reproduction API:
// reads of a key the store has never seen are not counted, so workload
// read volumes reflect only keys that exist.
func (s *Store) CountReads(key string, n int) {
	if n <= 0 {
		return
	}
	sh := s.shardFor(key)
	sh.mu.RLock()
	rec, ok := sh.records[key]
	sh.mu.RUnlock()
	if !ok {
		return
	}
	rec.reads.Add(uint64(n))
	sh.reads.Add(uint64(n))
}

// Mutation is one entry of a batch mutation: a Set, or a Delete when
// Delete is true (Value is then ignored).
type Mutation struct {
	Key    string
	Value  string
	Time   time.Time
	Delete bool
}

// Apply applies a batch of mutations in order. The batch is validated
// up front, so a malformed entry fails the whole batch before any entry is
// applied; a persistence error mid-batch leaves earlier entries applied.
// Consecutive mutations that land on the same shard are applied under one
// lock acquisition, which is what makes the wire protocol's MSET and the
// workload generator's bursts cheaper than per-op calls.
func (s *Store) Apply(muts []Mutation) error {
	// The validation pass doubles as the hashing pass: each key's shard is
	// computed exactly once.
	shards := make([]*shard, len(muts))
	for i := range muts {
		if muts[i].Key == "" {
			return ErrEmptyKey
		}
		if muts[i].Time.IsZero() {
			return ErrZeroTime
		}
		if len(muts[i].Key) > MaxStringLen || len(muts[i].Value) > MaxStringLen {
			return ErrOversize
		}
		shards[i] = s.shardFor(muts[i].Key)
	}
	obs := s.statsObserver()
	for i := 0; i < len(muts); {
		// Backpressure gate per same-shard run, before the lock, so a
		// stalled disk never blocks a batch while it holds a shard.
		if err := s.waitSinkCapacity(); err != nil {
			return err
		}
		sh := shards[i]
		runStart := i
		sh.mu.Lock()
		for ; i < len(muts) && shards[i] == sh; i++ {
			m := &muts[i]
			if err := s.applyLocked(sh, m.Key, m.Value, m.Time, m.Delete); err != nil {
				sh.mu.Unlock()
				// Mutations before the failing one were applied and must
				// still reach the observer.
				observeRange(obs, muts[runStart:i])
				return err
			}
		}
		sh.mu.Unlock()
		// Observe outside the shard lock: the analytics engine serialises
		// internally, and holding a shard across it would let one slow
		// observer stall unrelated writers.
		observeRange(obs, muts[runStart:i])
	}
	return nil
}

func observeRange(obs StatsObserver, muts []Mutation) {
	if obs == nil {
		return
	}
	for i := range muts {
		obs.ObserveWrite(muts[i].Key, muts[i].Time, muts[i].Delete)
	}
}
