package ttkv

// CountReads records n application reads of key at once. The workload
// generator uses it to reproduce the paper's read volumes (tens of
// millions of registry reads per machine) without per-event overhead.
func (s *Store) CountReads(key string, n int) {
	if n <= 0 {
		return
	}
	s.mu.RLock()
	rec, ok := s.records[key]
	s.mu.RUnlock()
	if ok {
		rec.reads.Add(uint64(n))
	}
	s.reads.Add(uint64(n))
}
