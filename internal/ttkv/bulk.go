package ttkv

import "time"

// CountReads records n application reads of key at once. The workload
// generator uses it to reproduce the paper's read volumes (tens of
// millions of registry reads per machine) without per-event overhead.
//
// Unlike Get and CountRead — which model live application traffic, where a
// miss is still a real read — CountReads is a bulk stats-reproduction API:
// reads of a key the store has never seen are not counted, so workload
// read volumes reflect only keys that exist. Lock-free.
func (s *Store) CountReads(key string, n int) {
	if n <= 0 {
		return
	}
	sh := s.shardFor(key)
	rec := sh.load()[key]
	if rec == nil {
		return
	}
	rec.reads.Add(uint64(n))
	sh.reads.Add(uint64(n))
}

// Mutation is one entry of a batch mutation: a Set, or a Delete when
// Delete is true (Value is then ignored).
type Mutation struct {
	Key    string
	Value  string
	Time   time.Time
	Delete bool
}

// Apply applies a batch of mutations in order and returns how many were
// applied. The batch is validated up front, so a malformed entry fails the
// whole batch (0, err) before any entry is applied; a persistence error
// mid-batch leaves earlier entries applied and reports exactly how many —
// the caller (the wire protocol's MSET) can tell what persisted instead of
// guessing. On success the count equals len(muts). Consecutive mutations
// that land on the same shard are applied under one lock acquisition,
// which is what makes MSET and the workload generator's bursts cheaper
// than per-op calls.
func (s *Store) Apply(muts []Mutation) (int, error) {
	applied, _, err := s.ApplyWithSeq(muts)
	return applied, err
}

// ApplyWithSeq is Apply additionally returning the highest sequence number
// minted for the batch (0 when nothing applied) — the semi-sync gate's
// per-write watermark for an MSET, analogous to SetWithSeq.
func (s *Store) ApplyWithSeq(muts []Mutation) (int, uint64, error) {
	// The validation pass doubles as the hashing pass: each key's shard is
	// computed exactly once.
	shards := make([]*shard, len(muts))
	for i := range muts {
		if muts[i].Key == "" {
			return 0, 0, ErrEmptyKey
		}
		if muts[i].Time.IsZero() {
			return 0, 0, ErrZeroTime
		}
		if len(muts[i].Key) > MaxStringLen || len(muts[i].Value) > MaxStringLen {
			return 0, 0, ErrOversize
		}
		shards[i] = s.shardFor(muts[i].Key)
	}
	obs := s.statsObserver()
	applied := 0
	var lastSeq uint64
	var runSeqs []uint64
	for i := 0; i < len(muts); {
		// Backpressure gate per same-shard run, before the lock, so a
		// stalled disk never blocks a batch while it holds a shard.
		if err := s.waitSinkCapacity(); err != nil {
			return applied, lastSeq, err
		}
		sh := shards[i]
		runStart := i
		var runErr error
		runSeqs = runSeqs[:0]
		sh.mu.Lock()
		for ; i < len(muts) && shards[i] == sh; i++ {
			m := &muts[i]
			seq, err := s.applyLocked(sh, m.Key, m.Value, m.Time, m.Delete)
			if err != nil {
				runErr = err
				break
			}
			runSeqs = append(runSeqs, seq)
		}
		sh.mu.Unlock()
		// Publish the run, then observe outside the shard lock: the
		// analytics engine serialises internally, and holding a shard
		// across it would let one slow observer stall unrelated writers.
		// Mutations before a failing one were applied and must still
		// reach readers and the observer.
		s.pub.completeSeqs(runSeqs)
		applied += len(runSeqs)
		if n := len(runSeqs); n > 0 && runSeqs[n-1] > lastSeq {
			lastSeq = runSeqs[n-1]
		}
		observeRange(obs, muts[runStart:runStart+len(runSeqs)])
		if runErr != nil {
			return applied, lastSeq, runErr
		}
	}
	return applied, lastSeq, nil
}

func observeRange(obs StatsObserver, muts []Mutation) {
	if obs == nil {
		return
	}
	for i := range muts {
		obs.ObserveWrite(muts[i].Key, muts[i].Time, muts[i].Delete)
	}
}
