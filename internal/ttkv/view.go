package ttkv

import (
	"sort"
	"time"
)

// CurrentSeq returns the newest version sequence number the store has
// minted. Pass it to ViewAt to pin a point-in-time view of everything
// written so far.
func (s *Store) CurrentSeq() uint64 { return s.seq.Load() }

// View is a read-only point-in-time view of a store: it answers every
// read as if no version with a sequence number above its bound existed.
// Concurrent writers keep mutating the live store freely; the view's
// answers never change, because new writes always carry higher sequence
// numbers. The repair tool's parallel trial executor runs every sandboxed
// trial against one pinned view, so trials never race live writers and
// all workers search byte-identical history.
//
// A View is cheap (it copies nothing) and safe for concurrent use. Unlike
// Store.Get, View.Get does not count as an application read: views serve
// the recovery path, not live traffic.
type View struct {
	s   *Store
	seq uint64
}

// ViewAt returns a read-only view of the store pinned at sequence number
// seq (typically CurrentSeq()). Versions minted after seq are invisible.
func (s *Store) ViewAt(seq uint64) *View { return &View{s: s, seq: seq} }

// Seq returns the view's pinned sequence bound.
func (v *View) Seq() uint64 { return v.seq }

// visible reports whether a version existed when the view was pinned.
func (v *View) visible(ver *Version) bool { return ver.Seq <= v.seq }

// Get returns the value of key as of the view: the chronologically newest
// visible version, if it is not a deletion.
func (v *View) Get(key string) (string, bool) {
	sh := v.s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.records[key]
	if !ok {
		return "", false
	}
	for i := len(rec.versions) - 1; i >= 0; i-- {
		if v.visible(&rec.versions[i]) {
			if rec.versions[i].Deleted {
				return "", false
			}
			return rec.versions[i].Value, true
		}
	}
	return "", false
}

// GetAt returns the visible version of key in effect at time t: the latest
// visible version with Time <= t.
func (v *View) GetAt(key string, t time.Time) (Version, error) {
	sh := v.s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.records[key]
	if !ok {
		return Version{}, ErrNoKey
	}
	// Versions are chronological; a version written after the pin may sit
	// anywhere in the slice (out-of-order timestamps), so scan backwards
	// from the last one at or before t to the newest visible one.
	i := sort.Search(len(rec.versions), func(i int) bool {
		return rec.versions[i].Time.After(t)
	})
	for i--; i >= 0; i-- {
		if v.visible(&rec.versions[i]) {
			return rec.versions[i], nil
		}
	}
	return Version{}, ErrNoVersion
}

// History returns a copy of key's visible version history, oldest first.
// A key with no visible versions does not exist in the view.
func (v *View) History(key string) ([]Version, error) {
	sh := v.s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.records[key]
	if !ok {
		return nil, ErrNoKey
	}
	out := make([]Version, 0, len(rec.versions))
	for i := range rec.versions {
		if v.visible(&rec.versions[i]) {
			out = append(out, rec.versions[i])
		}
	}
	if len(out) == 0 {
		return nil, ErrNoKey
	}
	return out, nil
}

// Keys returns every key with at least one visible version, sorted.
func (v *View) Keys() []string {
	var keys []string
	for i := range v.s.shards {
		sh := &v.s.shards[i]
		sh.mu.RLock()
		for k, rec := range sh.records {
			for j := range rec.versions {
				if v.visible(&rec.versions[j]) {
					keys = append(keys, k)
					break
				}
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(keys)
	return keys
}

// ModTimes returns every distinct visible modification timestamp of the
// given keys, newest first (the repair tool's rollback-candidate
// enumeration, over frozen history).
func (v *View) ModTimes(keys []string) []time.Time {
	seen := make(map[int64]struct{})
	var times []time.Time
	for _, k := range keys {
		sh := v.s.shardFor(k)
		sh.mu.RLock()
		rec, ok := sh.records[k]
		if !ok {
			sh.mu.RUnlock()
			continue
		}
		for i := range rec.versions {
			if !v.visible(&rec.versions[i]) {
				continue
			}
			ns := rec.versions[i].Time.UnixNano()
			if _, dup := seen[ns]; !dup {
				seen[ns] = struct{}{}
				times = append(times, rec.versions[i].Time)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(times, func(i, j int) bool { return times[i].After(times[j]) })
	return times
}
