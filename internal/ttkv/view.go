package ttkv

import (
	"sort"
	"time"
)

// CurrentSeq returns the newest *published* version sequence number: every
// version at or below it is fully inserted and visible to lock-free
// readers. Pass it to ViewAt to pin a point-in-time view of everything
// written so far. (The store may have minted higher sequence numbers for
// writes still in flight; those are excluded on purpose — a view pinned at
// the watermark can never observe half of an atomic batch.)
func (s *Store) CurrentSeq() uint64 { return s.pub.visible.Load() }

// View is a read-only point-in-time view of a store: it answers every
// read as if no version with a sequence number above its bound existed.
// Concurrent writers keep mutating the live store freely; the view's
// answers never change, because new writes always carry higher sequence
// numbers. The repair tool's parallel trial executor runs every sandboxed
// trial against one pinned view, so trials never race live writers and
// all workers search byte-identical history.
//
// A View is cheap (it copies nothing), lock-free, and safe for concurrent
// use. Unlike Store.Get, View.Get does not count as an application read:
// views serve the recovery path, not live traffic.
type View struct {
	s   *Store
	seq uint64
}

// ViewAt returns a read-only view of the store pinned at sequence number
// seq (typically CurrentSeq()). Versions minted after seq are invisible.
// A pin above the publication watermark waits for the watermark to catch
// up first, so every version the view can see is fully inserted; a pin
// the store can never reach returns immediately (the view then simply has
// headroom).
func (s *Store) ViewAt(seq uint64) *View {
	s.waitVisible(seq)
	return &View{s: s, seq: seq}
}

// Seq returns the view's pinned sequence bound.
func (v *View) Seq() uint64 { return v.seq }

// visible reports whether a version existed when the view was pinned.
func (v *View) visible(ver *Version) bool { return ver.Seq <= v.seq }

// Get returns the value of key as of the view: the chronologically newest
// visible version, if it is not a deletion.
func (v *View) Get(key string) (string, bool) {
	rec := v.s.shardFor(key).load()[key]
	if rec == nil {
		return "", false
	}
	vs := rec.state.Load().versions
	for i := len(vs) - 1; i >= 0; i-- {
		if v.visible(&vs[i]) {
			if vs[i].Deleted {
				return "", false
			}
			return vs[i].Value, true
		}
	}
	return "", false
}

// GetAt returns the visible version of key in effect at time t: the latest
// visible version with Time <= t.
func (v *View) GetAt(key string, t time.Time) (Version, error) {
	rec := v.s.shardFor(key).load()[key]
	if rec == nil {
		return Version{}, ErrNoKey
	}
	// Versions are chronological; a version written after the pin may sit
	// anywhere in the slice (out-of-order timestamps), so scan backwards
	// from the last one at or before t to the newest visible one.
	vs := rec.state.Load().versions
	i := sort.Search(len(vs), func(i int) bool {
		return vs[i].Time.After(t)
	})
	for i--; i >= 0; i-- {
		if v.visible(&vs[i]) {
			return vs[i], nil
		}
	}
	return Version{}, ErrNoVersion
}

// History returns a copy of key's visible version history, oldest first.
// A key with no visible versions does not exist in the view.
func (v *View) History(key string) ([]Version, error) {
	rec := v.s.shardFor(key).load()[key]
	if rec == nil {
		return nil, ErrNoKey
	}
	vs := rec.state.Load().versions
	out := make([]Version, 0, len(vs))
	for i := range vs {
		if v.visible(&vs[i]) {
			out = append(out, vs[i])
		}
	}
	if len(out) == 0 {
		return nil, ErrNoKey
	}
	return out, nil
}

// Keys returns every key with at least one visible version, sorted.
func (v *View) Keys() []string {
	var keys []string
	for i := range v.s.shards {
		for k, rec := range v.s.shards[i].load() {
			if recVisible(rec, v.seq) {
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// ModTimes returns every distinct visible modification timestamp of the
// given keys, newest first (the repair tool's rollback-candidate
// enumeration, over frozen history). Like Store.ModTimes, timestamps are
// deduplicated, compared, and sorted on wall-clock nanoseconds.
func (v *View) ModTimes(keys []string) []time.Time {
	seen := make(map[int64]struct{})
	var times []time.Time
	for _, k := range keys {
		rec := v.s.shardFor(k).load()[k]
		if rec == nil {
			continue
		}
		vs := rec.state.Load().versions
		for i := range vs {
			if !v.visible(&vs[i]) {
				continue
			}
			ns := vs[i].Time.UnixNano()
			if _, dup := seen[ns]; !dup {
				seen[ns] = struct{}{}
				times = append(times, vs[i].Time.Round(0))
			}
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i].UnixNano() > times[j].UnixNano() })
	return times
}
