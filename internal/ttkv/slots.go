package ttkv

import (
	"sort"
	"strings"
)

// Hash-slot keyspace partitioning. A cluster of N primaries divides a
// fixed slot space among themselves; every key hashes (CRC16, the
// Redis-Cluster polynomial, so slot assignments are compatible with
// existing tooling expectations) to exactly one slot and every slot has
// exactly one owner. The store itself stays slot-agnostic — slots exist
// at the wire layer — except for the slot-scoped export below, which is
// what live slot migration streams.

// DefaultSlotCount is the default hash-slot space, matching Redis
// Cluster's 16384.
const DefaultSlotCount = 16384

// crc16Table is the CRC16-CCITT (XMODEM, polynomial 0x1021, init 0)
// lookup table Redis Cluster hashes keys with.
var crc16Table = func() [256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}()

// crc16 computes CRC16-CCITT/XMODEM over s (crc16("123456789") == 0x31C3).
func crc16(s string) uint16 {
	var crc uint16
	for i := 0; i < len(s); i++ {
		crc = crc<<8 ^ crc16Table[byte(crc>>8)^s[i]]
	}
	return crc
}

// KeySlot maps a key onto its hash slot in a space of slots (<= 0 selects
// DefaultSlotCount). Hash tags work as in Redis Cluster: if the key
// contains a non-empty "{...}" section, only the text between the first
// '{' and the next '}' is hashed, so "user:{42}:name" and "user:{42}:mail"
// share a slot and can be batched or migrated together.
func KeySlot(key string, slots int) int {
	if slots <= 0 {
		slots = DefaultSlotCount
	}
	if i := strings.IndexByte(key, '{'); i >= 0 {
		if j := strings.IndexByte(key[i+1:], '}'); j > 0 {
			key = key[i+1 : i+1+j]
		}
	}
	return int(crc16(key)) % slots
}

// SlotSnapshot collects every version of every key in the given slot with
// sequence number in (afterSeq, upToSeq], ordered by sequence — the
// slot-scoped form of ReplSnapshot that live slot migration streams in
// bounded batches. Like ReplSnapshot the scan is lock-free: it waits for
// the publication watermark to cover upToSeq and then walks published
// record states without blocking writers.
func (s *Store) SlotSnapshot(slot, slots int, afterSeq, upToSeq uint64) []ReplRecord {
	s.waitVisible(upToSeq)
	var out []ReplRecord
	for i := range s.shards {
		for k, rec := range s.shards[i].load() {
			if KeySlot(k, slots) != slot {
				continue
			}
			vs := rec.state.Load().versions
			for j := range vs {
				v := &vs[j]
				if v.Seq > afterSeq && v.Seq <= upToSeq {
					out = append(out, ReplRecord{
						Seq: v.Seq, Key: k, Value: v.Value, Time: v.Time, Deleted: v.Deleted,
					})
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}
