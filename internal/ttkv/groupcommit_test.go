package ttkv

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// dumpEqual compares the full logical dump of two stores: key sets and
// per-key histories (time, value, tombstone). Sequence numbers are
// excluded — they renumber on replay.
func dumpEqual(t *testing.T, got, want *Store) {
	t.Helper()
	gotKeys, wantKeys := got.Keys(), want.Keys()
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("key count %d, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("key[%d] = %q, want %q", i, gotKeys[i], wantKeys[i])
		}
	}
	for _, k := range wantKeys {
		wh, err := want.History(k)
		if err != nil {
			t.Fatal(err)
		}
		gh, err := got.History(k)
		if err != nil {
			t.Fatalf("History(%q): %v", k, err)
		}
		if len(gh) != len(wh) {
			t.Fatalf("%q: %d versions, want %d", k, len(gh), len(wh))
		}
		for i := range wh {
			if gh[i].Value != wh[i].Value || !gh[i].Time.Equal(wh[i].Time) || gh[i].Deleted != wh[i].Deleted {
				t.Errorf("%q version %d: got %+v, want %+v", k, i, gh[i], wh[i])
			}
		}
	}
}

func newTestGroupCommit(t *testing.T, cfg GroupCommitConfig) (*GroupCommit, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "store.aof")
	aof, err := CreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	return NewGroupCommit(aof, cfg), path
}

func TestGroupCommitRoundTrip(t *testing.T) {
	gc, path := newTestGroupCommit(t, GroupCommitConfig{})
	s := New()
	s.AttachGroupCommit(gc)
	must(t, s.Set("alpha", "1", at(0)))
	must(t, s.Set("beta", "x", at(1)))
	must(t, s.Set("alpha", "2", at(2)))
	must(t, s.Delete("beta", at(3)))
	if err := s.SyncAOF(); err != nil {
		t.Fatal(err)
	}
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	dumpEqual(t, loaded, s)
}

func TestGroupCommitSyncBarrierForcesDurability(t *testing.T) {
	// With FsyncNever and an hour-long interval nothing reaches the file
	// on its own; the Sync barrier alone must push records through.
	gc, path := newTestGroupCommit(t, GroupCommitConfig{
		FlushInterval: time.Hour,
		Fsync:         FsyncNever,
	})
	defer gc.Close()
	s := New()
	s.AttachGroupCommit(gc)
	must(t, s.Set("k", "v", at(0)))
	if err := s.SyncAOF(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := loaded.Get("k"); !ok || v != "v" {
		t.Fatalf("after Sync barrier, replay = %q,%v, want v,true", v, ok)
	}
}

func TestGroupCommitFsyncAlwaysFlushesEagerly(t *testing.T) {
	// With an hour-long interval, only FsyncAlways's per-append wakeup can
	// get a lone record to disk — no Sync, no ticker, no size pressure.
	gc, path := newTestGroupCommit(t, GroupCommitConfig{
		FlushInterval: time.Hour,
		Fsync:         FsyncAlways,
	})
	defer gc.Close()
	s := New()
	s.AttachGroupCommit(gc)
	must(t, s.Set("k", "v", at(0)))
	deadline := time.Now().Add(5 * time.Second)
	for {
		loaded, err := LoadAOF(path)
		if err == nil {
			if v, ok := loaded.Get("k"); ok && v == "v" {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("record did not reach the AOF without Sync under FsyncAlways")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGroupCommitCloseDrains(t *testing.T) {
	gc, path := newTestGroupCommit(t, GroupCommitConfig{FlushInterval: time.Hour})
	s := New()
	s.AttachGroupCommit(gc)
	const n = 500
	for i := 0; i < n; i++ {
		must(t, s.Set(fmt.Sprintf("k%03d", i), "v", at(i)))
	}
	// No Sync: Close alone must drain every pending record.
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != n {
		t.Fatalf("replayed %d keys, want %d", loaded.Len(), n)
	}
}

func TestGroupCommitAfterCloseFails(t *testing.T) {
	gc, _ := newTestGroupCommit(t, GroupCommitConfig{})
	s := New()
	s.AttachGroupCommit(gc)
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("k", "v", at(0)); !errors.Is(err, ErrAppenderClosed) {
		t.Errorf("Set after Close = %v, want ErrAppenderClosed", err)
	}
	// A write rejected by persistence must not mutate the in-memory store,
	// or memory and log would diverge.
	if s.Len() != 0 {
		t.Errorf("rejected write landed in the store: Len = %d, want 0", s.Len())
	}
	if st := s.Stats(); st.Writes != 0 {
		t.Errorf("rejected write counted: Writes = %d, want 0", st.Writes)
	}
	if err := gc.Sync(); !errors.Is(err, ErrAppenderClosed) {
		t.Errorf("Sync after Close = %v, want ErrAppenderClosed", err)
	}
	if err := gc.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

// White-box: with no flusher draining, writers must block at the backlog
// cap instead of growing memory — before taking any shard lock, so
// readers of the same keys stay live — and resume once a flush cycle
// drains the backlog.
func TestGroupCommitBackpressure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.aof")
	aof, err := CreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	defer aof.Close()
	// Construct without starting the flusher goroutine, so the backlog
	// only drains when the test says so.
	gc := &GroupCommit{
		aof: aof,
		cfg: GroupCommitConfig{
			FlushInterval:   time.Hour,
			MaxBatchBytes:   32,
			MaxPendingBytes: 64,
		}.withDefaults(),
		wake:      make(chan struct{}, 1),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		closeDone: make(chan struct{}),
	}
	gc.cond = sync.NewCond(&gc.mu)

	s := New()
	s.AttachGroupCommit(gc)
	for i := 0; gc.pendingLen() < gc.cfg.MaxPendingBytes; i++ {
		must(t, s.Set("key", "value", at(i)))
	}
	blocked := make(chan error, 1)
	go func() { blocked <- s.Set("key", "over-cap", at(999)) }()
	select {
	case err := <-blocked:
		t.Fatalf("write past the backlog cap returned %v, want it to block", err)
	case <-time.After(30 * time.Millisecond):
	}
	// The blocked writer must not be holding the shard: reads of the same
	// key still serve.
	if v, ok := s.Get("key"); !ok || v != "value" {
		t.Fatalf("read stalled behind backpressured writer: %q,%v", v, ok)
	}
	gc.flushCycle(false) // drain: the blocked write must now complete
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("write after drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still blocked after the backlog drained")
	}
}

func (gc *GroupCommit) pendingLen() int {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	return len(gc.pending)
}

func TestGroupCommitIdleDoesNotSync(t *testing.T) {
	gc, _ := newTestGroupCommit(t, GroupCommitConfig{
		FlushInterval: 2 * time.Millisecond,
		Fsync:         FsyncInterval,
	})
	defer gc.Close()
	s := New()
	s.AttachGroupCommit(gc)
	// Nothing appended: ticker fires repeatedly but must not fsync.
	time.Sleep(40 * time.Millisecond)
	if n := gc.SyncCount(); n != 0 {
		t.Fatalf("idle appender performed %d fsyncs, want 0", n)
	}
	must(t, s.Set("k", "v", at(0)))
	if err := s.SyncAOF(); err != nil {
		t.Fatal(err)
	}
	if n := gc.SyncCount(); n == 0 {
		t.Fatal("append + Sync performed no fsync")
	}
	// Once the record is durable, the ticker must go quiet again.
	settled := gc.SyncCount()
	time.Sleep(40 * time.Millisecond)
	if n := gc.SyncCount(); n != settled {
		t.Fatalf("idle appender kept fsyncing: %d -> %d", settled, n)
	}
}

// TestGroupCommitCrashDurability chops a group-commit-written AOF at every
// possible offset and asserts replay recovers exactly the records that lie
// fully before the damage — the group-commit analogue of the existing
// truncated-tail tolerance.
func TestGroupCommitCrashDurability(t *testing.T) {
	gc, path := newTestGroupCommit(t, GroupCommitConfig{})
	s := New()
	s.AttachGroupCommit(gc)
	type mut struct {
		key, value string
		sec        int
		del        bool
	}
	muts := []mut{
		{key: "a", value: "1", sec: 0},
		{key: "b", value: "two", sec: 1},
		{key: "a", value: "3", sec: 2},
		{key: "b", sec: 3, del: true},
		{key: "c", value: "final", sec: 4},
	}
	// Record the byte offset at which each record ends, using the same
	// encoder the appender uses.
	ends := make([]int, len(muts))
	off := aofHeaderLen
	for i, m := range muts {
		off += len(appendRecord(nil, m.key, m.value, at(m.sec), m.del))
		ends[i] = off
		if m.del {
			must(t, s.Delete(m.key, at(m.sec)))
		} else {
			must(t, s.Set(m.key, m.value, at(m.sec)))
		}
	}
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != off {
		t.Fatalf("AOF is %d bytes, expected %d", len(raw), off)
	}

	tmp := filepath.Join(t.TempDir(), "chopped.aof")
	for cut := aofHeaderLen; cut <= len(raw); cut++ {
		complete := 0
		for _, end := range ends {
			if end <= cut {
				complete++
			}
		}
		if err := os.WriteFile(tmp, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadAOF(tmp)
		if err != nil {
			t.Fatalf("cut %d: replay must tolerate truncation, got %v", cut, err)
		}
		st := loaded.Stats()
		if got := int(st.Writes + st.Deletes); got != complete {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, got, complete)
		}
		// Every fully-written record must replay with its exact content.
		for i := 0; i < complete; i++ {
			m := muts[i]
			v, err := loaded.GetAt(m.key, at(m.sec))
			if err != nil {
				t.Fatalf("cut %d: record %d (%q) lost: %v", cut, i, m.key, err)
			}
			if v.Deleted != m.del || (!m.del && v.Value != m.value) {
				t.Fatalf("cut %d: record %d = %+v, want value %q del %v", cut, i, v, m.value, m.del)
			}
		}
	}
}

// TestShardedGroupCommitMatchesUnshardedBaseline is the acceptance check:
// a sharded store fed by concurrent writers through a group-commit AOF
// must replay to the same full dump as an unsharded, synchronously-built
// baseline.
func TestShardedGroupCommitMatchesUnshardedBaseline(t *testing.T) {
	const writers = 8
	const perWriter = 100

	gc, path := newTestGroupCommit(t, GroupCommitConfig{})
	sharded := NewSharded(16)
	sharded.AttachGroupCommit(gc)

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%10)
				if i%7 == 6 {
					if err := sharded.Delete(key, at(i)); err != nil {
						errs <- err
						return
					}
					continue
				}
				if err := sharded.Set(key, fmt.Sprintf("v%d", i), at(i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := sharded.SyncAOF(); err != nil {
		t.Fatal(err)
	}
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}

	// Baseline: the same per-writer mutation streams applied sequentially
	// to a single-shard store. Writers own disjoint key sets, so per-key
	// order is deterministic regardless of scheduling.
	baseline := NewSharded(1)
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			key := fmt.Sprintf("w%d-k%d", w, i%10)
			if i%7 == 6 {
				must(t, baseline.Delete(key, at(i)))
			} else {
				must(t, baseline.Set(key, fmt.Sprintf("v%d", i), at(i)))
			}
		}
	}

	dumpEqual(t, sharded, baseline)

	replayed, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	dumpEqual(t, replayed, baseline)
}
