package ttkv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Segmented-log errors.
var (
	// ErrSegCorrupt marks damage the segment store cannot repair: a sealed
	// segment whose contents disagree with the index (record count, byte
	// length, or checksum), a segment file the index does not account for,
	// or an unreadable index. Sealed segments are immutable after the index
	// commit, so — unlike the active tail — damage in one is never a crash
	// artifact and is not silently truncated away.
	ErrSegCorrupt = errors.New("ttkv: corrupt segment store")
	// ErrSegRange is returned by RangeRecords for a sequence range the
	// segment files do not (yet) cover — e.g. the tail of the range is
	// still in the appender's buffer. Callers fall back to
	// Store.ReplSnapshot.
	ErrSegRange = errors.New("ttkv: sequence range not covered by segments")
)

const (
	segMagic   = "OCSG"
	segVersion = 1
	// segHeaderLen is the magic, a little-endian uint16 version, and the
	// little-endian uint64 base sequence number.
	segHeaderLen = len(segMagic) + 2 + 8

	// segIndexName is the manifest file naming every sealed segment of the
	// current generation. Its atomic rename is the commit point for both
	// sealing and compaction.
	segIndexName  = "segments.idx"
	segIndexMagic = "ocasta-segments v1"

	// DefaultSegmentBytes is the roll threshold when SegmentedConfig does
	// not choose one: large enough that the per-segment index stays tiny,
	// small enough that startup replay parallelizes and compaction can
	// retire history segment-by-segment.
	DefaultSegmentBytes = 64 << 20
)

// segCRCTable is the Castagnoli table used for segment record checksums
// and the index's self-check line.
var segCRCTable = crc32.MakeTable(crc32.Castagnoli)

// segMeta describes one sealed segment as recorded in the index: records
// carry sequence numbers base+1 .. base+records, the file is exactly
// bytes long (header included), and crc covers every record byte after
// the header.
type segMeta struct {
	base    uint64
	records uint64
	bytes   int64
	crc     uint32
}

// segName returns the file name for a segment: the generation ties every
// file to one index epoch (compaction bumps it, so renumbered segments
// never collide with the files they replace), and the base orders
// segments by sequence coverage lexicographically.
func segName(gen, base uint64) string {
	return fmt.Sprintf("seg-%08d-%020d.ock", gen, base)
}

// parseSegName inverts segName.
func parseSegName(name string) (gen, base uint64, ok bool) {
	rest, found := strings.CutPrefix(name, "seg-")
	if !found {
		return 0, 0, false
	}
	rest, found = strings.CutSuffix(rest, ".ock")
	if !found {
		return 0, 0, false
	}
	gs, bs, found := strings.Cut(rest, "-")
	if !found || len(gs) != 8 || len(bs) != 20 {
		return 0, 0, false
	}
	gen, err := strconv.ParseUint(gs, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	base, err = strconv.ParseUint(bs, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return gen, base, true
}

func segHeader(base uint64) []byte {
	h := make([]byte, 0, segHeaderLen)
	h = append(h, segMagic...)
	h = binary.LittleEndian.AppendUint16(h, uint16(segVersion))
	return binary.LittleEndian.AppendUint64(h, base)
}

// readSegHeader consumes exactly segHeaderLen bytes from r and returns
// the segment's base sequence number.
func readSegHeader(r io.Reader) (uint64, error) {
	hdr := make([]byte, segHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, fmt.Errorf("%w: segment header: %v", ErrSegCorrupt, err)
	}
	if string(hdr[:len(segMagic)]) != segMagic {
		return 0, fmt.Errorf("%w: bad segment magic", ErrSegCorrupt)
	}
	if ver := binary.LittleEndian.Uint16(hdr[len(segMagic):]); ver != segVersion {
		return 0, fmt.Errorf("%w: segment version %d", ErrSegCorrupt, ver)
	}
	return binary.LittleEndian.Uint64(hdr[len(segMagic)+2:]), nil
}

// SegmentedConfig tunes a segmented log. The zero value picks defaults.
type SegmentedConfig struct {
	// MaxSegmentBytes is the roll threshold: a batch that would land in an
	// active segment already at or past this size goes to a fresh segment
	// instead (segments therefore exceed it by at most one batch).
	// Defaults to DefaultSegmentBytes.
	MaxSegmentBytes int64
	// Parallelism caps the worker goroutines replaying sealed segments on
	// open. Defaults to GOMAXPROCS.
	Parallelism int
}

func (c SegmentedConfig) withDefaults() SegmentedConfig {
	if c.MaxSegmentBytes <= 0 {
		c.MaxSegmentBytes = DefaultSegmentBytes
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// SegmentedAOF is the AOF record stream split across sealed, checksummed
// segment files plus one active tail, with a manifest (segments.idx)
// recording each sealed segment's sequence range. Compared to the flat
// AOF it buys three things: startup replays sealed segments in parallel
// (each holds an independent record run whose sequence numbers are
// derived from the manifest), SYNC catch-up reads a sequence range by
// seeking to the covering segments instead of scanning the whole
// keyspace, and compaction rewrites history segment-by-segment into a
// fresh generation rather than rewriting one monolithic file.
//
// Sequence numbers are positional — record i of a segment based at b has
// sequence b+i — which is exactly faithful when the feeder appends in
// sequence order (a ReplLog-fed GroupCommit, the intended arrangement:
// the ReplLog mints sequence numbers under the same lock that orders
// appends). Without a ReplLog the derived numbers are simply log order,
// matching what flat-AOF replay would re-mint.
//
// It implements LogWriter, so it plugs into a GroupCommit wherever an
// *AOF does. Write errors are sticky: after one failed append the writer
// refuses further work, because a hole in the middle of the log must not
// be papered over by later successes.
//
//ocasta:durable
type SegmentedAOF struct {
	dir string
	cfg SegmentedConfig

	mu     sync.Mutex
	err    error // sticky first write/flush error
	gen    uint64
	sealed []segMeta
	active *os.File
	w      *bufio.Writer
	aBase  uint64 // active segment's base sequence number
	aRecs  uint64 // complete records in the active segment
	aBytes int64  // active file length, header included
	aCRC   uint32 // running CRC of the active segment's record bytes
}

// OpenSegmented opens (or initializes) the segment directory dir for
// appending without replaying records into a store.
func OpenSegmented(dir string, cfg SegmentedConfig) (*SegmentedAOF, error) {
	return OpenSegmentedInto(dir, nil, cfg)
}

// OpenSegmentedInto opens the segment directory dir, replays its records
// into s (pass nil to skip replay), and returns the log ready for
// appending. Sealed segments replay on cfg.Parallelism goroutines —
// their record runs are independent, and the manifest supplies each
// record's sequence number, so insertion order across segments does not
// matter — then the active tail replays sequentially, with a partial
// final record (crash mid-append) truncated away exactly like the flat
// AOF's tail repair. A sealed segment that disagrees with the manifest
// is ErrSegCorrupt: past the index commit those bytes were fsynced and
// immutable, so damage there is never a crash artifact.
//
// Crash leftovers are swept: *.tmp files and segments from other
// generations (an interrupted compaction) are removed. A current-
// generation segment file the manifest does not account for is
// ErrSegCorrupt.
func OpenSegmentedInto(dir string, s *Store, cfg SegmentedConfig) (*SegmentedAOF, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ttkv: creating segment dir: %w", err)
	}
	gen, sealed, found, err := readSegIndex(dir)
	if err != nil {
		return nil, err
	}
	if !found {
		// The index is first written when a segment seals, so its absence
		// is legitimate only before the first seal.
		gen = 1
	}
	activeBase := uint64(0)
	if n := len(sealed); n > 0 {
		activeBase = sealed[n-1].base + sealed[n-1].records
	}
	if err := sweepSegmentDir(dir, gen, found, sealed, activeBase); err != nil {
		return nil, err
	}
	sa := &SegmentedAOF{dir: dir, cfg: cfg, gen: gen, sealed: sealed}
	if err := sa.replaySealed(s); err != nil {
		return nil, err
	}
	if err := sa.openActive(s, activeBase); err != nil {
		return nil, err
	}
	if sa.aBytes >= cfg.MaxSegmentBytes && sa.aRecs > 0 {
		// The tail outgrew the threshold before the previous process
		// rolled (or the threshold shrank); seal it now so it stops
		// growing.
		if err := sa.rollLocked(); err != nil {
			_ = sa.active.Close() // returning the roll error; close is cleanup
			return nil, err
		}
	}
	if s != nil {
		total := sa.aBase + sa.aRecs
		s.seq.Store(total)
		s.pub.advanceTo(total)
	}
	return sa, nil
}

// sweepSegmentDir removes crash leftovers (temp files, other-generation
// segments) and rejects segment files the manifest cannot account for.
func sweepSegmentDir(dir string, gen uint64, haveIndex bool, sealed []segMeta, activeBase uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("ttkv: reading segment dir: %w", err)
	}
	sealedBases := make(map[uint64]bool, len(sealed))
	for _, m := range sealed {
		sealedBases[m.base] = true
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("ttkv: sweeping temp file: %w", err)
			}
			continue
		}
		g, b, ok := parseSegName(name)
		if !ok {
			continue // not ours (segments.idx, stray files)
		}
		if !haveIndex {
			// Before the first seal only the initial active segment may
			// exist; anything else means the index was lost.
			if g != gen || b != 0 {
				return fmt.Errorf("%w: segment %s present but no index", ErrSegCorrupt, name)
			}
			continue
		}
		if g != gen {
			// Another generation: an interrupted compaction (newer gen not
			// yet committed) or its unswept leavings (older gen). The
			// index is the commit point, so these are dead either way.
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("ttkv: sweeping stale segment: %w", err)
			}
			continue
		}
		if !sealedBases[b] && b != activeBase {
			return fmt.Errorf("%w: segment %s not in index", ErrSegCorrupt, name)
		}
	}
	// Every sealed segment the index promises must exist; replay would
	// also notice, but a clear error beats an open() failure mid-replay.
	for _, m := range sealed {
		if _, err := os.Stat(filepath.Join(dir, segName(gen, m.base))); err != nil {
			return fmt.Errorf("%w: sealed segment %s missing: %v", ErrSegCorrupt, segName(gen, m.base), err)
		}
	}
	return nil
}

// replaySealed replays every sealed segment into s on a bounded worker
// pool, verifying each against its manifest entry. With s == nil it
// still verifies. Only called during open, before sa is shared.
func (sa *SegmentedAOF) replaySealed(s *Store) error {
	if len(sa.sealed) == 0 {
		return nil
	}
	workers := sa.cfg.Parallelism
	if workers > len(sa.sealed) {
		workers = len(sa.sealed)
	}
	jobs := make(chan segMeta)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range jobs {
				if err := sa.replaySegment(m, s); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	for _, m := range sa.sealed {
		jobs <- m
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// replaySegment replays one sealed segment, checking the record count,
// byte length, and checksum against the manifest. Truncation surfaces as
// a count/length mismatch — a sealed segment has no repairable tail.
func (sa *SegmentedAOF) replaySegment(m segMeta, s *Store) error {
	path := filepath.Join(sa.dir, segName(sa.gen, m.base))
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("ttkv: opening segment: %w", err)
	}
	//ocasta:allow stickyerr file opened read-only; no buffered writes to lose
	defer f.Close()
	base, err := readSegHeader(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if base != m.base {
		return fmt.Errorf("%w: %s: header base %d, index says %d", ErrSegCorrupt, path, base, m.base)
	}
	ord := uint64(0)
	n, valid, crc, err := scanRecords(f, func(key, value string, t time.Time, deleted bool) error {
		ord++
		if s == nil {
			return nil
		}
		return s.replayInsert(key, value, t, deleted, m.base+ord)
	})
	if err != nil {
		// Any scan or insert failure inside a sealed segment is corruption:
		// the index committed these bytes, so they must parse cleanly.
		return fmt.Errorf("%w: %s: %v", ErrSegCorrupt, path, err)
	}
	if n != m.records || int64(segHeaderLen)+valid != m.bytes || crc != m.crc {
		return fmt.Errorf("%w: %s: has %d records/%d bytes/crc %08x, index says %d/%d/%08x",
			ErrSegCorrupt, path, n, int64(segHeaderLen)+valid, crc, m.records, m.bytes, m.crc)
	}
	return nil
}

// openActive opens (or creates) the active segment at base, replays its
// records into s, repairs a crash-truncated tail, and leaves the file
// positioned for appends. Only called during open, before sa is shared.
func (sa *SegmentedAOF) openActive(s *Store, base uint64) error {
	path := filepath.Join(sa.dir, segName(sa.gen, base))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("ttkv: opening active segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // returning the stat error; close is cleanup
		return fmt.Errorf("ttkv: stat active segment: %w", err)
	}
	if st.Size() < int64(segHeaderLen) {
		// Brand new, or a crash landed mid-header: no complete record can
		// exist yet, so (re)initialize.
		if err := f.Truncate(0); err != nil {
			_ = f.Close() // returning the real error; close is cleanup
			return fmt.Errorf("ttkv: resetting active segment: %w", err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			_ = f.Close() // returning the real error; close is cleanup
			return fmt.Errorf("ttkv: seeking active segment: %w", err)
		}
		if _, err := f.Write(segHeader(base)); err != nil {
			_ = f.Close() // returning the real error; close is cleanup
			return err
		}
		if err := syncDir(sa.dir); err != nil {
			_ = f.Close() // returning the real error; close is cleanup
			return err
		}
		sa.setActive(f, base, 0, int64(segHeaderLen), 0)
		return nil
	}
	hb, err := readSegHeader(f)
	if err != nil {
		_ = f.Close() // returning the real error; close is cleanup
		return fmt.Errorf("%s: %w", path, err)
	}
	if hb != base {
		_ = f.Close() // returning the real error; close is cleanup
		return fmt.Errorf("%w: %s: header base %d, expected %d", ErrSegCorrupt, path, hb, base)
	}
	ord := uint64(0)
	n, valid, crc, err := scanRecords(f, func(key, value string, t time.Time, deleted bool) error {
		ord++
		if s == nil {
			return nil
		}
		return s.replayInsert(key, value, t, deleted, base+ord)
	})
	if err != nil {
		_ = f.Close() // returning the real error; close is cleanup
		return fmt.Errorf("%s: %w", path, err)
	}
	end := int64(segHeaderLen) + valid
	if end < st.Size() {
		if err := f.Truncate(end); err != nil {
			_ = f.Close() // returning the real error; close is cleanup
			return fmt.Errorf("ttkv: truncating damaged segment tail: %w", err)
		}
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		_ = f.Close() // returning the real error; close is cleanup
		return fmt.Errorf("ttkv: seeking segment end: %w", err)
	}
	sa.setActive(f, base, n, end, crc)
	return nil
}

func (sa *SegmentedAOF) setActive(f *os.File, base, recs uint64, bytes int64, crc uint32) {
	sa.active = f
	sa.w = bufio.NewWriter(f)
	sa.aBase = base
	sa.aRecs = recs
	sa.aBytes = bytes
	sa.aCRC = crc
}

// rollLocked seals the active segment — flush, fsync, record it in the
// index (the commit point), — and starts a fresh active at the next
// base. Caller holds sa.mu (or has exclusive access during open).
func (sa *SegmentedAOF) rollLocked() error {
	if err := sa.w.Flush(); err != nil {
		return err
	}
	if err := sa.active.Sync(); err != nil {
		return err
	}
	sealed := append(sa.sealed, segMeta{base: sa.aBase, records: sa.aRecs, bytes: sa.aBytes, crc: sa.aCRC})
	if err := writeSegIndex(sa.dir, sa.gen, sealed); err != nil {
		return err
	}
	sa.sealed = sealed
	if err := sa.active.Close(); err != nil {
		return err
	}
	nextBase := sa.aBase + sa.aRecs
	path := filepath.Join(sa.dir, segName(sa.gen, nextBase))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("ttkv: creating segment: %w", err)
	}
	if _, err := f.Write(segHeader(nextBase)); err != nil {
		_ = f.Close() // returning the write error; close is cleanup
		return err
	}
	if err := syncDir(sa.dir); err != nil {
		_ = f.Close() // returning the real error; close is cleanup
		return err
	}
	sa.setActive(f, nextBase, 0, int64(segHeaderLen), 0)
	return nil
}

// writeBatch appends pre-encoded records (implementing LogWriter),
// rolling to a fresh segment first if the active one is full. The batch
// lands in one segment whole — record count accounting is per batch, so
// splitting one across a roll would corrupt the sequence index.
func (sa *SegmentedAOF) writeBatch(encoded []byte, records int) error {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.err != nil {
		return sa.err
	}
	if sa.aBytes >= sa.cfg.MaxSegmentBytes && sa.aRecs > 0 {
		if err := sa.rollLocked(); err != nil {
			sa.err = err
			return err
		}
	}
	if _, err := sa.w.Write(encoded); err != nil {
		sa.err = err
		return err
	}
	sa.aCRC = crc32.Update(sa.aCRC, segCRCTable, encoded)
	sa.aRecs += uint64(records)
	sa.aBytes += int64(len(encoded))
	return nil
}

// flushOS pushes buffered records to the OS without fsyncing
// (implementing LogWriter).
func (sa *SegmentedAOF) flushOS() error {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.err != nil {
		return sa.err
	}
	if err := sa.w.Flush(); err != nil {
		sa.err = err
		return err
	}
	return nil
}

// Sync flushes buffered records and fsyncs the active segment.
func (sa *SegmentedAOF) Sync() error {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if sa.err != nil {
		return sa.err
	}
	if err := sa.w.Flush(); err != nil {
		sa.err = err
		return err
	}
	if err := sa.active.Sync(); err != nil {
		sa.err = err
		return err
	}
	return nil
}

// Close flushes and closes the active segment. Sealed segments hold no
// open handles.
func (sa *SegmentedAOF) Close() error {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	if err := sa.w.Flush(); err != nil {
		_ = sa.active.Close() // the flush error is the durability verdict; close is cleanup
		return err
	}
	return sa.active.Close()
}

// SegmentedStats is a point-in-time summary of a segmented log.
type SegmentedStats struct {
	Sealed  int    // sealed segment count
	Records uint64 // total records, sealed plus active
	Bytes   int64  // total file bytes, sealed plus active
}

// Stats summarizes the log's current shape.
func (sa *SegmentedAOF) Stats() SegmentedStats {
	sa.mu.Lock()
	defer sa.mu.Unlock()
	st := SegmentedStats{Sealed: len(sa.sealed), Records: sa.aBase + sa.aRecs, Bytes: sa.aBytes}
	for _, m := range sa.sealed {
		st.Bytes += m.bytes
	}
	return st
}

// Dir returns the segment directory.
func (sa *SegmentedAOF) Dir() string { return sa.dir }

// errStopScan is the sentinel a RangeRecords scan callback returns to
// end a segment scan early once the range is satisfied.
var errStopScan = errors.New("ttkv: stop scan")

// RangeRecords returns every record with sequence number in
// (afterSeq, upToSeq], ordered by sequence, read from the segment files —
// the O(covering segments) alternative to ReplSnapshot's full keyspace
// scan for SYNC catch-up. Like ReplSnapshot, the returned records carry
// no atomic-batch flags. Positional sequence numbering means the result
// matches the store only when the log is fed in sequence order (a
// ReplLog-fed GroupCommit); upToSeq must be at or below the durable
// watermark — committed records are flushed to the OS before the
// watermark advances, so a fresh read of the active file sees them. A
// range the files do not cover returns ErrSegRange and the caller falls
// back to ReplSnapshot.
func (sa *SegmentedAOF) RangeRecords(afterSeq, upToSeq uint64) ([]ReplRecord, error) {
	if upToSeq <= afterSeq {
		return nil, nil
	}
	sa.mu.Lock()
	// Push buffered appends to the OS so the file read below can see
	// everything written so far; harmless for the durable-watermark
	// contract, and it spares non-GroupCommit callers a footgun.
	if sa.err == nil {
		if err := sa.w.Flush(); err != nil {
			sa.err = err
			sa.mu.Unlock()
			return nil, err
		}
	}
	gen := sa.gen
	sealed := append([]segMeta(nil), sa.sealed...)
	aBase := sa.aBase
	sa.mu.Unlock()

	out := make([]ReplRecord, 0, upToSeq-afterSeq)
	for _, m := range sealed {
		if m.base+m.records <= afterSeq {
			continue
		}
		if m.base >= upToSeq {
			break
		}
		if err := readSegRange(filepath.Join(sa.dir, segName(gen, m.base)), m.base, afterSeq, upToSeq, &out); err != nil {
			return nil, err
		}
	}
	if len(out) == 0 || out[len(out)-1].Seq < upToSeq {
		if aBase < upToSeq {
			if err := readSegRange(filepath.Join(sa.dir, segName(gen, aBase)), aBase, afterSeq, upToSeq, &out); err != nil {
				return nil, err
			}
		}
	}
	if uint64(len(out)) != upToSeq-afterSeq {
		return nil, fmt.Errorf("%w: (%d, %d] yielded %d records", ErrSegRange, afterSeq, upToSeq, len(out))
	}
	return out, nil
}

// readSegRange appends the records of one segment file whose sequence
// numbers fall in (afterSeq, upToSeq] to *out. A truncated tail ends the
// scan (the active segment may end mid-append); the caller decides
// whether the collected range is complete.
func readSegRange(path string, base, afterSeq, upToSeq uint64, out *[]ReplRecord) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("ttkv: opening segment: %w", err)
	}
	//ocasta:allow stickyerr file opened read-only; no buffered writes to lose
	defer f.Close()
	if hb, err := readSegHeader(f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	} else if hb != base {
		return fmt.Errorf("%w: %s: header base %d, expected %d", ErrSegCorrupt, path, hb, base)
	}
	seq := base
	_, _, _, err = scanRecords(f, func(key, value string, t time.Time, deleted bool) error {
		seq++
		if seq <= afterSeq {
			return nil
		}
		if seq > upToSeq {
			return errStopScan
		}
		*out = append(*out, ReplRecord{Seq: seq, Key: key, Value: value, Time: t, Deleted: deleted})
		return nil
	})
	if err != nil && !errors.Is(err, errStopScan) {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// replayInsert applies one replayed record with an explicit sequence
// number — the per-record work of segment replay. It bypasses the
// persistence sink and the stats observer: replay happens before either
// is attached, and the record is already durable. Publication is the
// caller's bulk advance after replay completes.
func (s *Store) replayInsert(key, value string, t time.Time, deleted bool, seq uint64) error {
	if key == "" {
		return ErrEmptyKey
	}
	if t.IsZero() {
		return ErrZeroTime
	}
	if len(key) > MaxStringLen || len(value) > MaxStringLen {
		return ErrOversize
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	s.insertLocked(sh, key, value, t, deleted, seq)
	sh.mu.Unlock()
	return nil
}

// writeSegIndex atomically replaces dir's manifest. The format is
// line-oriented text with a trailing CRC self-check:
//
//	ocasta-segments v1
//	gen <generation>
//	seg <base> <records> <bytes> <crc32c-hex>   (one per sealed segment)
//	end <crc32c-hex of all preceding bytes>
//
// The rename is the commit point for sealing and compaction alike.
func writeSegIndex(dir string, gen uint64, sealed []segMeta) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\ngen %d\n", segIndexMagic, gen)
	for _, m := range sealed {
		fmt.Fprintf(&b, "seg %d %d %d %08x\n", m.base, m.records, m.bytes, m.crc)
	}
	body := b.String()
	content := fmt.Sprintf("%send %08x\n", body, crc32.Checksum([]byte(body), segCRCTable))
	tmp := filepath.Join(dir, segIndexName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ttkv: writing segment index: %w", err)
	}
	if _, err := f.WriteString(content); err != nil {
		_ = f.Close() // returning the write error; close is cleanup
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // returning the real error; close is cleanup
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, segIndexName)); err != nil {
		return fmt.Errorf("ttkv: committing segment index: %w", err)
	}
	return syncDir(dir)
}

// readSegIndex parses dir's manifest. found reports whether the file
// exists; its absence is legitimate only before the first seal.
func readSegIndex(dir string) (gen uint64, sealed []segMeta, found bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, segIndexName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil, false, nil
		}
		return 0, nil, false, fmt.Errorf("ttkv: reading segment index: %w", err)
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) < 3 || lines[0] != segIndexMagic {
		return 0, nil, false, fmt.Errorf("%w: bad index header", ErrSegCorrupt)
	}
	// The last populated line is the self-check over everything before it.
	if lines[len(lines)-1] != "" {
		return 0, nil, false, fmt.Errorf("%w: index missing final newline", ErrSegCorrupt)
	}
	endLine := lines[len(lines)-2]
	wantCRC, ok := strings.CutPrefix(endLine, "end ")
	if !ok {
		return 0, nil, false, fmt.Errorf("%w: index missing end line", ErrSegCorrupt)
	}
	body := string(data[:len(data)-len(endLine)-1])
	crc, perr := strconv.ParseUint(wantCRC, 16, 32)
	if perr != nil || crc32.Checksum([]byte(body), segCRCTable) != uint32(crc) {
		return 0, nil, false, fmt.Errorf("%w: index checksum mismatch", ErrSegCorrupt)
	}
	if _, err := fmt.Sscanf(lines[1], "gen %d", &gen); err != nil || gen == 0 {
		return 0, nil, false, fmt.Errorf("%w: bad index generation", ErrSegCorrupt)
	}
	for _, line := range lines[2 : len(lines)-2] {
		var m segMeta
		if _, err := fmt.Sscanf(line, "seg %d %d %d %x", &m.base, &m.records, &m.bytes, &m.crc); err != nil {
			return 0, nil, false, fmt.Errorf("%w: bad index entry %q", ErrSegCorrupt, line)
		}
		sealed = append(sealed, m)
	}
	// Entries must tile the sequence space contiguously from zero.
	next := uint64(0)
	for _, m := range sealed {
		if m.base != next || m.records == 0 {
			return 0, nil, false, fmt.Errorf("%w: index entries not contiguous", ErrSegCorrupt)
		}
		next = m.base + m.records
	}
	return gen, sealed, true, nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry
// survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ttkv: opening dir for sync: %w", err)
	}
	//ocasta:allow stickyerr directory handle; no buffered writes to lose
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ttkv: syncing dir: %w", err)
	}
	return nil
}

// CompactSegmentDir rewrites dir's history as a fresh generation of
// sealed segments — the segmented counterpart of CompactTo, except
// history retires segment-by-segment instead of rewriting one monolithic
// file, and the swap is the index rename rather than a file rename. The
// directory must not be open in a live SegmentedAOF. The existing
// segments replay into a scratch store (shards as NewSharded), the
// snapshot — full history, or the newest retain versions per key when
// retain > 0 — is written as generation+1 segments sized by cfg, the new
// index commits atomically, and the old generation's files are swept. A
// crash anywhere before the index commit leaves the old generation
// intact (the new files are other-generation orphans the next open
// removes); a crash after it leaves only the sweep to redo.
func CompactSegmentDir(dir string, shards, retain int, cfg SegmentedConfig) error {
	cfg = cfg.withDefaults()
	scratch := NewSharded(shards)
	sa, err := OpenSegmentedInto(dir, scratch, cfg)
	if err != nil {
		return err
	}
	gen := sa.gen
	if err := sa.Close(); err != nil {
		return err
	}
	entries := scratch.snapshotEntries(retain)
	newGen := gen + 1

	var metas []segMeta
	var f *os.File
	var w *bufio.Writer
	var cur segMeta
	var buf []byte
	seal := func() error {
		if err := w.Flush(); err != nil {
			_ = f.Close() // returning the real error; close is cleanup
			return err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close() // returning the real error; close is cleanup
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		metas = append(metas, cur)
		f = nil
		return nil
	}
	for _, e := range entries {
		if f == nil {
			base := uint64(0)
			if n := len(metas); n > 0 {
				base = metas[n-1].base + metas[n-1].records
			}
			f, err = os.OpenFile(filepath.Join(dir, segName(newGen, base)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
			if err != nil {
				return fmt.Errorf("ttkv: creating compacted segment: %w", err)
			}
			w = bufio.NewWriter(f)
			if _, err := w.Write(segHeader(base)); err != nil {
				_ = f.Close() // returning the real error; close is cleanup
				return err
			}
			cur = segMeta{base: base, bytes: int64(segHeaderLen)}
		}
		buf = appendRecord(buf[:0], e.key, e.v.Value, e.v.Time, e.v.Deleted)
		if _, err := w.Write(buf); err != nil {
			_ = f.Close() // returning the real error; close is cleanup
			return err
		}
		cur.crc = crc32.Update(cur.crc, segCRCTable, buf)
		cur.records++
		cur.bytes += int64(len(buf))
		if cur.bytes >= cfg.MaxSegmentBytes {
			if err := seal(); err != nil {
				return err
			}
		}
	}
	if f != nil {
		if err := seal(); err != nil {
			return err
		}
	}
	// Commit: the new index supersedes the old generation atomically.
	if err := writeSegIndex(dir, newGen, metas); err != nil {
		return err
	}
	// Sweep the retired generation. Best-effort ordering only — the next
	// open sweeps anything a crash leaves behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("ttkv: reading segment dir: %w", err)
	}
	for _, e := range ents {
		if g, _, ok := parseSegName(e.Name()); ok && g != newGen {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("ttkv: sweeping retired segment: %w", err)
			}
		}
	}
	return syncDir(dir)
}
