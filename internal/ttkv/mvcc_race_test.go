package ttkv

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// This file is the -race property suite for the lock-free read path: the
// MVCC readers (Get, GetAt, History, pinned Views) run concurrently with
// writers and must give answers byte-identical to what a fully locked
// store would — the race detector checks the memory model, the
// assertions check the semantics.

// raceKey names writer w's j-th key.
func raceKey(w, j int) string { return fmt.Sprintf("/race/w%d/k%d", w, j) }

// raceOp is one deterministic write: writers replay the same script the
// sequential oracle does, so the final store state has exactly one
// correct answer.
type raceOp struct {
	key     string
	value   string
	t       time.Time
	deleted bool
}

// raceScript builds writer w's deterministic op sequence: per-key
// strictly increasing times and counters, with every seventh op a
// delete (after the key exists).
func raceScript(w, keys, ops int, base time.Time) []raceOp {
	script := make([]raceOp, 0, ops)
	for i := 0; i < ops; i++ {
		j := i % keys
		op := raceOp{
			key: raceKey(w, j),
			t:   base.Add(time.Duration(i) * time.Millisecond),
		}
		if i%7 == 6 && i >= keys {
			op.deleted = true
		} else {
			op.value = fmt.Sprintf("w%d-k%d-c%d", w, j, i)
		}
		script = append(script, op)
	}
	return script
}

// counterOf extracts the trailing write counter from a race value.
func counterOf(t *testing.T, value string) int {
	t.Helper()
	idx := strings.LastIndexByte(value, 'c')
	n, err := strconv.Atoi(value[idx+1:])
	if err != nil {
		t.Fatalf("unparseable race value %q", value)
	}
	return n
}

// TestMVCCConcurrentReadEquivalence runs lock-free readers against
// concurrent writers (disjoint key ownership, deterministic scripts),
// then checks the final state is byte-identical to a sequential replay
// of the same scripts. During the run, readers assert the invariants the
// MVCC publication protocol promises: per-key counters never move
// backwards for one reader, and History is always a time-ordered prefix
// of the script.
func TestMVCCConcurrentReadEquivalence(t *testing.T) {
	const (
		writers = 4
		keys    = 6
		ops     = 280
		readers = 3
	)
	base := time.Unix(1_700_000_000, 0).UTC()
	s := NewSharded(16)

	scripts := make([][]raceOp, writers)
	for w := range scripts {
		scripts[w] = raceScript(w, keys, ops, base)
	}

	var writersWG, readersWG sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(script []raceOp) {
			defer writersWG.Done()
			for _, op := range script {
				var err error
				if op.deleted {
					err = s.Delete(op.key, op.t)
				} else {
					err = s.Set(op.key, op.value, op.t)
				}
				if err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}(scripts[w])
	}

	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func(seed int64) {
			defer readersWG.Done()
			rng := rand.New(rand.NewSource(seed))
			lastSeen := map[string]int{}
			for {
				select {
				case <-done:
					return
				default:
				}
				key := raceKey(rng.Intn(writers), rng.Intn(keys))
				if v, ok := s.Get(key); ok {
					c := counterOf(t, v)
					if prev, seen := lastSeen[key]; seen && c < prev {
						t.Errorf("Get(%s) counter went backwards: %d after %d", key, c, prev)
						return
					}
					lastSeen[key] = c
				}
				hist, err := s.History(key)
				if err != nil && err != ErrNoKey {
					t.Errorf("History(%s): %v", key, err)
					return
				}
				for i := 1; i < len(hist); i++ {
					if hist[i].Time.Before(hist[i-1].Time) {
						t.Errorf("History(%s) out of time order at %d", key, i)
						return
					}
					if hist[i].Seq <= hist[i-1].Seq {
						t.Errorf("History(%s) seq not increasing at %d", key, i)
						return
					}
				}
				if len(hist) > 0 {
					// GetAt at the newest visible time must return exactly
					// the newest visible version: per-key times strictly
					// increase, so nothing newer shares that instant.
					got, err := s.GetAt(key, hist[len(hist)-1].Time)
					if err != nil {
						t.Errorf("GetAt(%s): %v", key, err)
						return
					}
					if got.Seq < hist[len(hist)-1].Seq {
						t.Errorf("GetAt(%s) older than History tail", key)
						return
					}
				}
			}
		}(int64(r) + 1)
	}

	writersWG.Wait()
	close(done)
	readersWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Sequential oracle: the same scripts replayed one writer at a time
	// into a fresh store. Key ownership is disjoint, so any interleaving
	// of the concurrent run must produce identical per-key history.
	oracle := NewSharded(16)
	for _, script := range scripts {
		for _, op := range script {
			var err error
			if op.deleted {
				err = oracle.Delete(op.key, op.t)
			} else {
				err = oracle.Set(op.key, op.value, op.t)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	for w := 0; w < writers; w++ {
		for j := 0; j < keys; j++ {
			key := raceKey(w, j)
			got, err := s.History(key)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.History(key)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("History(%s) = %d versions, oracle has %d", key, len(got), len(want))
			}
			for i := range got {
				if got[i].Value != want[i].Value || got[i].Deleted != want[i].Deleted || !got[i].Time.Equal(want[i].Time) {
					t.Fatalf("History(%s)[%d] = %+v, oracle %+v", key, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRevertClusterLiveTornReads runs RevertCluster in a loop against
// concurrent writers while readers pin views and check atomicity: a
// pinned view must answer identically when asked twice, and after an
// observed revert the cluster must be uniform — never half new writes,
// half reverted values.
func TestRevertClusterLiveTornReads(t *testing.T) {
	const clusterKeys = 4
	keys := make([]string, clusterKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("/rc/k%d", i)
	}
	s := NewSharded(16)
	seedAt := time.Unix(1_700_000_000, 0).UTC()
	for _, k := range keys {
		if err := s.Set(k, "seed", seedAt); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: keeps mutating the cluster keys with generation-stamped
	// values at strictly increasing times.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := 1; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			at := seedAt.Add(time.Duration(gen) * time.Millisecond)
			for _, k := range keys {
				if err := s.Set(k, fmt.Sprintf("gen%d", gen), at); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}
	}()

	// Reverter: rolls the whole cluster back to the seed state.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			applyAt := seedAt.Add(time.Hour + time.Duration(i)*time.Millisecond)
			if _, err := s.RevertCluster(keys, seedAt, applyAt); err != nil {
				t.Errorf("RevertCluster: %v", err)
				return
			}
		}
	}()

	// Readers: pin a view, read the cluster twice, demand identical
	// answers both times; and if the view shows any reverted key, it must
	// show every key reverted (the watermark releases the batch whole).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				v := s.ViewAt(s.CurrentSeq())
				first := make([]string, clusterKeys)
				for i, k := range keys {
					val, ok := v.Get(k)
					if !ok {
						t.Errorf("view lost key %s", k)
						return
					}
					first[i] = val
				}
				for i, k := range keys {
					val, _ := v.Get(k)
					if val != first[i] {
						t.Errorf("pinned view unstable for %s: %q then %q", k, first[i], val)
						return
					}
				}
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Final revert on the quiesced store: afterwards the cluster must be
	// uniformly back at the seed value.
	if _, err := s.RevertCluster(keys, seedAt, seedAt.Add(2*time.Hour)); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if v, ok := s.Get(k); !ok || v != "seed" {
			t.Fatalf("after final revert %s = %q, %v; want seed", k, v, ok)
		}
	}
}
