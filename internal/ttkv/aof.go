package ttkv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Persistence errors.
var (
	ErrAOFMagic   = errors.New("ttkv: bad AOF magic")
	ErrAOFVersion = errors.New("ttkv: unsupported AOF version")
	ErrAOFCorrupt = errors.New("ttkv: corrupt AOF record")
)

const (
	aofMagic   = "OCKV"
	aofVersion = 1
	// maxAOFString bounds encoded strings so corrupt length prefixes
	// cannot trigger giant allocations.
	maxAOFString = 1 << 20

	opSet    = byte(1)
	opDelete = byte(2)
)

// AOF is an append-only file recording every Set and Delete. Replaying an
// AOF reconstructs the store's exact history, because the history *is* the
// log. A truncated tail (e.g. after a crash mid-append) is tolerated on
// load: complete records up to the damage are recovered.
type AOF struct {
	f *os.File
	w *bufio.Writer
}

// CreateAOF creates (or truncates) an append-only file at path and writes
// the header.
func CreateAOF(path string) (*AOF, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("ttkv: creating AOF: %w", err)
	}
	a := &AOF{f: f, w: bufio.NewWriter(f)}
	if _, err := a.w.WriteString(aofMagic); err != nil {
		f.Close()
		return nil, err
	}
	if err := binary.Write(a.w, binary.LittleEndian, uint16(aofVersion)); err != nil {
		f.Close()
		return nil, err
	}
	return a, nil
}

// OpenAOFForAppend opens an existing AOF for appending new records.
func OpenAOFForAppend(path string) (*AOF, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ttkv: opening AOF: %w", err)
	}
	return &AOF{f: f, w: bufio.NewWriter(f)}, nil
}

func (a *AOF) append(key, value string, t time.Time, deleted bool) error {
	op := opSet
	if deleted {
		op = opDelete
	}
	if err := a.w.WriteByte(op); err != nil {
		return err
	}
	if err := binary.Write(a.w, binary.LittleEndian, t.UnixNano()); err != nil {
		return err
	}
	if err := aofWriteString(a.w, key); err != nil {
		return err
	}
	if !deleted {
		if err := aofWriteString(a.w, value); err != nil {
			return err
		}
	}
	return nil
}

// Sync flushes buffered records and fsyncs the file.
func (a *AOF) Sync() error {
	if err := a.w.Flush(); err != nil {
		return err
	}
	return a.f.Sync()
}

// Close flushes and closes the file.
func (a *AOF) Close() error {
	if err := a.w.Flush(); err != nil {
		a.f.Close()
		return err
	}
	return a.f.Close()
}

// AttachAOF makes the store append every subsequent Set/Delete to a. Pass
// nil to detach.
func (s *Store) AttachAOF(a *AOF) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aof = a
}

// SyncAOF flushes the attached AOF, if any.
func (s *Store) SyncAOF() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.aof == nil {
		return nil
	}
	return s.aof.Sync()
}

// LoadAOF replays an append-only file into a fresh store. A truncated final
// record is discarded silently (crash tolerance); any other corruption is
// an error.
func LoadAOF(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ttkv: opening AOF: %w", err)
	}
	defer f.Close()
	return ReadAOF(f)
}

// ReadAOF replays AOF content from r into a fresh store.
func ReadAOF(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(aofMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrAOFMagic, err)
	}
	if string(magic) != aofMagic {
		return nil, ErrAOFMagic
	}
	var ver uint16
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != aofVersion {
		return nil, fmt.Errorf("%w: %d", ErrAOFVersion, ver)
	}
	s := New()
	for {
		op, err := br.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return s, nil
			}
			return nil, err
		}
		if op != opSet && op != opDelete {
			return nil, fmt.Errorf("%w: op %d", ErrAOFCorrupt, op)
		}
		var nanos int64
		if err := binary.Read(br, binary.LittleEndian, &nanos); err != nil {
			return s, nil // truncated tail: keep what we have
		}
		key, err := aofReadString(br)
		if err != nil {
			if isTruncation(err) {
				return s, nil
			}
			return nil, err
		}
		t := time.Unix(0, nanos).UTC()
		if op == opDelete {
			if err := s.Delete(key, t); err != nil {
				return nil, err
			}
			continue
		}
		value, err := aofReadString(br)
		if err != nil {
			if isTruncation(err) {
				return s, nil
			}
			return nil, err
		}
		if err := s.Set(key, value, t); err != nil {
			return nil, err
		}
	}
}

func isTruncation(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

func aofWriteString(w *bufio.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func aofReadString(r *bufio.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > maxAOFString {
		return "", fmt.Errorf("%w: string length %d", ErrAOFCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// WriteSnapshot serializes the store's full state (all histories) to w in
// AOF format, which doubles as the snapshot format: replaying it rebuilds
// identical histories. Versions are emitted in global sequence order so
// equal-timestamp orderings survive the round trip.
func (s *Store) WriteSnapshot(w io.Writer) error {
	s.mu.RLock()
	type entry struct {
		key string
		v   Version
	}
	var entries []entry
	for k, rec := range s.records {
		for _, v := range rec.versions {
			entries = append(entries, entry{key: k, v: v})
		}
	}
	s.mu.RUnlock()
	// Sort by global sequence so replay preserves intra-timestamp order.
	sort.Slice(entries, func(i, j int) bool { return entries[i].v.Seq < entries[j].v.Seq })

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(aofMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(aofVersion)); err != nil {
		return err
	}
	a := &AOF{w: bw}
	for _, e := range entries {
		if err := a.append(e.key, e.v.Value, e.v.Time, e.v.Deleted); err != nil {
			return err
		}
	}
	return bw.Flush()
}
