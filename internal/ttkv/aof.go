package ttkv

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Persistence errors.
var (
	ErrAOFMagic   = errors.New("ttkv: bad AOF magic")
	ErrAOFVersion = errors.New("ttkv: unsupported AOF version")
	ErrAOFCorrupt = errors.New("ttkv: corrupt AOF record")
	ErrAOFExists  = errors.New("ttkv: AOF already exists")
	// ErrAOFAttached is returned by CompactTo while a persistence sink is
	// attached: renaming a snapshot over the live AOF would divert every
	// subsequent append to the unlinked old inode, silently losing it.
	ErrAOFAttached = errors.New("ttkv: store has an attached AOF; detach before compacting")
)

const (
	aofMagic   = "OCKV"
	aofVersion = 1
	// aofHeaderLen is the magic plus the little-endian uint16 version.
	aofHeaderLen = len(aofMagic) + 2
	// maxAOFString bounds encoded strings so corrupt length prefixes
	// cannot trigger giant allocations on replay. It equals MaxStringLen,
	// which the write path enforces, so every accepted write replays.
	maxAOFString = MaxStringLen

	opSet    = byte(1)
	opDelete = byte(2)
)

// aofSink is the persistence hook a Store writes through. Implementations
// must be safe for concurrent append calls: with a sharded store, writers
// in different shards append concurrently.
type aofSink interface {
	append(key, value string, t time.Time, deleted bool) error
	Sync() error
}

// appendRecord encodes one mutation record onto dst and returns the
// extended slice. This is the single encoder shared by the synchronous AOF
// writer, the group-commit appender, and snapshots.
func appendRecord(dst []byte, key, value string, t time.Time, deleted bool) []byte {
	op := opSet
	if deleted {
		op = opDelete
	}
	dst = append(dst, op)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t.UnixNano()))
	dst = appendLenPrefixed(dst, key)
	if !deleted {
		dst = appendLenPrefixed(dst, value)
	}
	return dst
}

func appendLenPrefixed(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(s)))
	return append(dst, s...)
}

// aofHeader returns the encoded file header.
func aofHeader() []byte {
	h := make([]byte, 0, aofHeaderLen)
	h = append(h, aofMagic...)
	return binary.LittleEndian.AppendUint16(h, uint16(aofVersion))
}

// AOF is an append-only file recording every Set and Delete. Replaying an
// AOF reconstructs the store's exact history, because the history *is* the
// log. A truncated tail (e.g. after a crash mid-append) is tolerated on
// load: complete records up to the damage are recovered.
//
// An AOF attached directly to a Store (AttachAOF) writes synchronously
// under the writer's shard lock; wrap it in a GroupCommit to batch disk
// I/O off the hot path.
//
//ocasta:durable
type AOF struct {
	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	buf []byte // scratch encode buffer, guarded by mu
}

// CreateAOF creates a new append-only file at path and writes the header.
// It refuses to clobber an existing file (ErrAOFExists); use
// OpenOrCreateAOF to append to existing history.
func CreateAOF(path string) (*AOF, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("%w: %s", ErrAOFExists, path)
		}
		return nil, fmt.Errorf("ttkv: creating AOF: %w", err)
	}
	a := &AOF{f: f, w: bufio.NewWriter(f)}
	if _, err := a.w.Write(aofHeader()); err != nil {
		_ = f.Close() // returning the write error; close is cleanup
		return nil, err
	}
	return a, nil
}

// OpenAOFForAppend opens an existing AOF for appending new records. It
// assumes the file was closed cleanly; prefer OpenOrCreateAOF, which also
// repairs a crash-truncated tail before appending.
func OpenAOFForAppend(path string) (*AOF, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ttkv: opening AOF: %w", err)
	}
	return &AOF{f: f, w: bufio.NewWriter(f)}, nil
}

// OpenOrCreateAOF opens path for appending, creating it (with a header) if
// it does not exist or is empty. An existing non-empty file must carry a
// valid header; its records are preserved and new appends extend them. A
// partial record at the tail (crash mid-append) is truncated away first —
// otherwise new records written after the damage would be unreachable to
// replay, which stops at the first incomplete record.
func OpenOrCreateAOF(path string) (*AOF, error) {
	return openAOFInto(path, nil)
}

// OpenAOFInto is OpenOrCreateAOF fused with replay: existing records are
// applied to s during the same pass that locates (and repairs) the file
// tail, so a daemon's startup parses the log once instead of twice.
func OpenAOFInto(path string, s *Store) (*AOF, error) {
	return openAOFInto(path, s)
}

func openAOFInto(path string, s *Store) (*AOF, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ttkv: opening AOF: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // returning the stat error; close is cleanup
		return nil, fmt.Errorf("ttkv: stat AOF: %w", err)
	}
	a := &AOF{f: f, w: bufio.NewWriter(f)}
	if st.Size() == 0 {
		if _, err := a.w.Write(aofHeader()); err != nil {
			_ = f.Close() // returning the write error; close is cleanup
			return nil, err
		}
		return a, nil
	}
	// One pass over the existing records (header included): replay into s
	// when given, and find the end of the last complete record.
	valid, err := readAOF(f, s)
	if err != nil {
		_ = f.Close() // returning the replay error; close is cleanup
		return nil, err
	}
	if valid < st.Size() {
		if err := f.Truncate(valid); err != nil {
			_ = f.Close() // returning the truncate error; close is cleanup
			return nil, fmt.Errorf("ttkv: truncating damaged AOF tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		_ = f.Close() // returning the seek error; close is cleanup
		return nil, fmt.Errorf("ttkv: seeking AOF end: %w", err)
	}
	return a, nil
}

func (a *AOF) append(key, value string, t time.Time, deleted bool) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.buf = appendRecord(a.buf[:0], key, value, t, deleted)
	_, err := a.w.Write(a.buf)
	return err
}

// writeBatch appends pre-encoded records (implementing LogWriter). Used
// by the group-commit appender, which encodes on the writers' side and
// flushes here. A flat file has no per-batch metadata, so the record
// count is unused; the segmented log uses it for its sequence index.
func (a *AOF) writeBatch(encoded []byte, records int) error {
	_ = records
	a.mu.Lock()
	defer a.mu.Unlock()
	_, err := a.w.Write(encoded)
	return err
}

// flushOS pushes buffered records to the OS without fsyncing.
func (a *AOF) flushOS() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.w.Flush()
}

// Sync flushes buffered records and fsyncs the file.
func (a *AOF) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.syncLocked()
}

func (a *AOF) syncLocked() error {
	if err := a.w.Flush(); err != nil {
		return err
	}
	return a.f.Sync()
}

// Close flushes and closes the file.
func (a *AOF) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if err := a.w.Flush(); err != nil {
		_ = a.f.Close() // the flush error is the durability verdict; close is cleanup
		return err
	}
	return a.f.Close()
}

// AttachAOF makes the store append every subsequent Set/Delete to a,
// synchronously under the writer's shard lock. Pass nil to detach. For
// high write rates prefer AttachGroupCommit, which moves disk I/O onto a
// background batch writer.
func (s *Store) AttachAOF(a *AOF) {
	if a == nil {
		s.sink.Store(nil)
		return
	}
	s.sink.Store(&sinkBox{sink: a})
}

// AttachGroupCommit makes the store enqueue every subsequent Set/Delete to
// g's batch writer. Pass nil to detach.
func (s *Store) AttachGroupCommit(g *GroupCommit) {
	if g == nil {
		s.sink.Store(nil)
		return
	}
	s.sink.Store(&sinkBox{sink: g})
}

// SyncAOF flushes the attached persistence sink (direct AOF or group
// commit), if any, through to fsync.
func (s *Store) SyncAOF() error {
	box := s.sink.Load()
	if box == nil {
		return nil
	}
	return box.sink.Sync()
}

// LoadAOF replays an append-only file into a fresh store with the default
// shard count. A truncated final record is discarded silently (crash
// tolerance); any other corruption is an error.
func LoadAOF(path string) (*Store, error) {
	s := New()
	if err := LoadAOFInto(path, s); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadAOFInto replays an append-only file into s (typically a fresh store
// constructed with a specific shard count).
func LoadAOFInto(path string, s *Store) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("ttkv: opening AOF: %w", err)
	}
	//ocasta:allow stickyerr file opened read-only; no buffered writes to lose
	defer f.Close()
	return ReadAOFInto(f, s)
}

// ReadAOF replays AOF content from r into a fresh store.
func ReadAOF(r io.Reader) (*Store, error) {
	s := New()
	if err := ReadAOFInto(r, s); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadAOFInto replays AOF content from r into s.
func ReadAOFInto(r io.Reader, s *Store) error {
	_, err := readAOF(r, s)
	return err
}

// countingReader tracks how many bytes have been pulled from the
// underlying reader, so readAOF can report record boundaries.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readAOF is the flat-file AOF loop: header check plus the shared record
// scanner. It parses records from r and applies them to s (pass nil to
// parse without building a store), and returns the byte offset just past
// the last complete record — the truncation point OpenOrCreateAOF repairs
// a damaged tail to. A truncated final record is tolerated; any other
// corruption is an error.
func readAOF(r io.Reader, s *Store) (int64, error) {
	hdr := make([]byte, aofHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrAOFMagic, err)
	}
	if string(hdr[:len(aofMagic)]) != aofMagic {
		return 0, ErrAOFMagic
	}
	if ver := binary.LittleEndian.Uint16(hdr[len(aofMagic):]); ver != aofVersion {
		return 0, fmt.Errorf("%w: %d", ErrAOFVersion, ver)
	}
	_, valid, _, err := scanRecords(r, func(key, value string, t time.Time, deleted bool) error {
		if s == nil {
			return nil
		}
		if deleted {
			return s.Delete(key, t)
		}
		return s.Set(key, value, t)
	})
	return int64(aofHeaderLen) + valid, err
}

// scanRecords is the single record-stream loop shared by flat-AOF replay,
// segment replay, tail repair, and segment range reads. It parses
// AOF-encoded records from r (positioned just past any header), calls fn
// for each complete record, and returns the record count, the byte offset
// just past the last complete record, and the running CRC of the complete
// records' bytes. A truncated final record is tolerated (crash
// mid-append); any other corruption is an error — misreporting a
// transient I/O failure as a clean tail would let tail repair truncate
// away good records behind it. fn may stop the scan early with a sentinel
// error, which is returned verbatim.
func scanRecords(r io.Reader, fn func(key, value string, t time.Time, deleted bool) error) (n uint64, valid int64, crc uint32, err error) {
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	// consumed reports the stream offset of the parse position: bytes
	// pulled from r minus bytes still sitting in the bufio buffer.
	consumed := func() int64 { return cr.n - int64(br.Buffered()) }
	var buf []byte
	for {
		op, err := br.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return n, valid, crc, nil
			}
			return n, valid, crc, err
		}
		if op != opSet && op != opDelete {
			return n, valid, crc, fmt.Errorf("%w: op %d", ErrAOFCorrupt, op)
		}
		var nanos int64
		if err := binary.Read(br, binary.LittleEndian, &nanos); err != nil {
			if isTruncation(err) {
				return n, valid, crc, nil // truncated tail: keep what we have
			}
			return n, valid, crc, err
		}
		key, err := aofReadString(br)
		if err != nil {
			if isTruncation(err) {
				return n, valid, crc, nil
			}
			return n, valid, crc, err
		}
		t := time.Unix(0, nanos).UTC()
		deleted := op == opDelete
		var value string
		if !deleted {
			if value, err = aofReadString(br); err != nil {
				if isTruncation(err) {
					return n, valid, crc, nil
				}
				return n, valid, crc, err
			}
		}
		if fn != nil {
			if err := fn(key, value, t, deleted); err != nil {
				return n, valid, crc, err
			}
		}
		// Re-encode for the CRC: the encoding round-trips exactly, so this
		// equals the record's on-disk bytes without plumbing raw spans out
		// of the buffered reader.
		buf = appendRecord(buf[:0], key, value, t, deleted)
		crc = crc32.Update(crc, segCRCTable, buf)
		n++
		valid = consumed()
	}
}

func isTruncation(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

func aofReadString(r *bufio.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > maxAOFString {
		return "", fmt.Errorf("%w: string length %d", ErrAOFCorrupt, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// snapshotEntries collects every visible version in the store, sorted by
// global sequence number so equal-timestamp orderings survive a replay.
// With maxVersionsPerKey > 0 only the newest versions of each key are
// kept. The scan is lock-free and pinned at the publication watermark, so
// under concurrent writers it captures a globally consistent cut (atomic
// batches are included whole or not at all).
func (s *Store) snapshotEntries(maxVersionsPerKey int) []snapEntry {
	bound := s.pub.visible.Load()
	var entries []snapEntry
	for i := range s.shards {
		for k, rec := range s.shards[i].load() {
			vs := rec.state.Load().versions
			visible := vs
			for j := range vs {
				// An invisible version can sit anywhere in the slice
				// (out-of-order timestamps), so filtering needs a full
				// scan; the common all-visible case stays copy-free.
				if vs[j].Seq > bound {
					f := make([]Version, 0, len(vs)-1)
					for _, v := range vs {
						if v.Seq <= bound {
							f = append(f, v)
						}
					}
					visible = f
					break
				}
			}
			if maxVersionsPerKey > 0 && len(visible) > maxVersionsPerKey {
				visible = visible[len(visible)-maxVersionsPerKey:]
			}
			for _, v := range visible {
				entries = append(entries, snapEntry{key: k, v: v})
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].v.Seq < entries[j].v.Seq })
	return entries
}

type snapEntry struct {
	key string
	v   Version
}

// WriteSnapshot serializes the store's full state (all histories) to w in
// AOF format, which doubles as the snapshot format: replaying it rebuilds
// identical histories. Versions are emitted in global sequence order so
// equal-timestamp orderings survive the round trip. Under concurrent
// writes the snapshot is a globally consistent cut pinned at the
// publication watermark.
func (s *Store) WriteSnapshot(w io.Writer) error {
	return s.writeSnapshot(w, 0)
}

func (s *Store) writeSnapshot(w io.Writer, maxVersionsPerKey int) error {
	entries := s.snapshotEntries(maxVersionsPerKey)
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(aofHeader()); err != nil {
		return err
	}
	var buf []byte
	for _, e := range entries {
		buf = appendRecord(buf[:0], e.key, e.v.Value, e.v.Time, e.v.Deleted)
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// CompactTo writes an atomic snapshot of the store to path: the snapshot
// lands in a temp file, is fsynced, and replaces path by rename, so a
// crash mid-compaction never damages the existing AOF. Replaying the
// result rebuilds the store exactly, while shedding whatever append-order
// redundancy the live log accumulated.
//
// maxVersionsPerKey > 0 additionally retains only the newest N versions of
// each key in the written file, which is what keeps replay cost bounded on
// long-lived deployments; 0 keeps full history. The in-memory store is not
// modified either way.
//
// CompactTo refuses (ErrAOFAttached) while a persistence sink is attached:
// the attached file handle would keep appending to the replaced inode.
// Compact before attaching (as cmd/ttkvd does), or detach first. The sink
// is re-checked immediately before the rename, but attaching concurrently
// with an in-flight CompactTo is still a caller error — the two must be
// sequenced.
func (s *Store) CompactTo(path string, maxVersionsPerKey int) error {
	if maxVersionsPerKey < 0 {
		return fmt.Errorf("ttkv: negative version retention %d", maxVersionsPerKey)
	}
	if s.sink.Load() != nil {
		return ErrAOFAttached
	}
	tmp := path + ".compact.tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ttkv: creating compaction temp: %w", err)
	}
	if err := s.writeSnapshot(f, maxVersionsPerKey); err != nil {
		_ = f.Close() // returning the snapshot-write error; close is cleanup
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // returning the sync error; close is cleanup
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// Narrow the check-then-act window: a sink attached while the
	// snapshot was being written must abort the rename.
	if s.sink.Load() != nil {
		os.Remove(tmp)
		return ErrAOFAttached
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ttkv: installing compacted AOF: %w", err)
	}
	// Best-effort directory sync so the rename itself is durable.
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync()  // best-effort: the data file itself was already synced
		_ = dir.Close() // read-only directory handle; nothing buffered
	}
	return nil
}
