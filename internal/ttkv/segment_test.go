package ttkv

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// newSegStore opens a segmented log in dir wired the production way:
// store → ReplLog → GroupCommit → SegmentedAOF. Returns the store and
// the group commit (Close tears the whole stack down).
func newSegStore(t *testing.T, dir string, cfg SegmentedConfig) (*Store, *SegmentedAOF, *GroupCommit) {
	t.Helper()
	s := New()
	sa, err := OpenSegmentedInto(dir, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gc := NewGroupCommit(sa, GroupCommitConfig{})
	rl := NewReplLog(gc)
	if err := s.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	return s, sa, gc
}

// fillSegStore writes n records (key k<i%17>, distinct timestamps, every
// 5th a delete), syncing every few writes so batches stay small and the
// tiny segment threshold in these tests forces frequent rolls.
func fillSegStore(t *testing.T, s *Store, n int) {
	t.Helper()
	base := time.Unix(1000, 0)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%02d", i%17)
		tm := base.Add(time.Duration(i) * time.Second)
		var err error
		if i%5 == 4 {
			err = s.Delete(k, tm)
		} else {
			err = s.Set(k, fmt.Sprintf("v%04d", i), tm)
		}
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			if err := s.SyncAOF(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.SyncAOF(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := SegmentedConfig{MaxSegmentBytes: 128}
	s, sa, gc := newSegStore(t, dir, cfg)
	fillSegStore(t, s, 100)
	if st := sa.Stats(); st.Sealed < 3 {
		t.Fatalf("Sealed = %d, want several rolls at a 128-byte threshold", st.Sealed)
	} else if st.Records != 100 {
		t.Fatalf("Stats records = %d, want 100", st.Records)
	}
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := New()
	sa2, err := OpenSegmentedInto(dir, s2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dumpEqual(t, s2, s)
	if got := s2.CurrentSeq(); got != 100 {
		t.Fatalf("CurrentSeq after replay = %d, want 100", got)
	}

	// Appends continue the sequence space where replay left off.
	gc2 := NewGroupCommit(sa2, GroupCommitConfig{})
	rl2 := NewReplLog(gc2)
	if err := s2.AttachReplLog(rl2); err != nil {
		t.Fatal(err)
	}
	if err := s2.Set("after", "reopen", time.Unix(5000, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s2.SyncAOF(); err != nil {
		t.Fatal(err)
	}
	if got := rl2.DurableSeq(); got != 101 {
		t.Fatalf("DurableSeq after reopen+append = %d, want 101", got)
	}
	if err := gc2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := New()
	if _, err := OpenSegmentedInto(dir, s3, cfg); err != nil {
		t.Fatal(err)
	}
	dumpEqual(t, s3, s2)
}

// TestSegmentedParallelReplayEquivalence: replaying the same segment
// directory with 1 worker and with 8 must produce byte-identical
// histories including sequence numbers — parallel replay inserts
// out of order, but (Time, Seq) slotting makes the result order-
// independent.
func TestSegmentedParallelReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	cfg := SegmentedConfig{MaxSegmentBytes: 100}
	s, sa, gc := newSegStore(t, dir, cfg)
	fillSegStore(t, s, 300)
	if st := sa.Stats(); st.Sealed < 8 {
		t.Fatalf("Sealed = %d, want >= 8 for a meaningful parallel replay", st.Sealed)
	}
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}

	serial, parallel := New(), New()
	if _, err := OpenSegmentedInto(dir, serial, SegmentedConfig{MaxSegmentBytes: 100, Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentedInto(dir, parallel, SegmentedConfig{MaxSegmentBytes: 100, Parallelism: 8}); err != nil {
		t.Fatal(err)
	}
	dumpEqual(t, parallel, serial)
	// Sequence numbers too, not just logical content: both derive them
	// from the manifest, so the full replication snapshots must match.
	a := serial.ReplSnapshot(0, serial.CurrentSeq())
	b := parallel.ReplSnapshot(0, parallel.CurrentSeq())
	if len(a) != len(b) {
		t.Fatalf("snapshot lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Key != b[i].Key || a[i].Value != b[i].Value ||
			!a[i].Time.Equal(b[i].Time) || a[i].Deleted != b[i].Deleted {
			t.Fatalf("record %d: serial %+v, parallel %+v", i, a[i], b[i])
		}
	}
}

func TestSegmentedTailRepair(t *testing.T) {
	dir := t.TempDir()
	cfg := SegmentedConfig{MaxSegmentBytes: 1 << 20} // no rolls: all records in the active tail
	s, _, gc := newSegStore(t, dir, cfg)
	fillSegStore(t, s, 10)
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop a few bytes off the active segment, as a crash mid-append would.
	active := filepath.Join(dir, segName(1, 0))
	st, err := os.Stat(active)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(active, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := New()
	sa2, err := OpenSegmentedInto(dir, s2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.CurrentSeq(); got != 9 {
		t.Fatalf("CurrentSeq after tail repair = %d, want 9 (last record chopped)", got)
	}
	// The file itself is repaired: appends after the truncation point are
	// replayable.
	gc2 := NewGroupCommit(sa2, GroupCommitConfig{})
	rl2 := NewReplLog(gc2)
	if err := s2.AttachReplLog(rl2); err != nil {
		t.Fatal(err)
	}
	if err := s2.Set("post", "repair", time.Unix(9000, 0)); err != nil {
		t.Fatal(err)
	}
	if err := gc2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := New()
	if _, err := OpenSegmentedInto(dir, s3, cfg); err != nil {
		t.Fatal(err)
	}
	dumpEqual(t, s3, s2)
}

func TestSegmentedSealedCorruption(t *testing.T) {
	dir := t.TempDir()
	cfg := SegmentedConfig{MaxSegmentBytes: 128}
	s, sa, gc := newSegStore(t, dir, cfg)
	fillSegStore(t, s, 50)
	if sa.Stats().Sealed == 0 {
		t.Fatal("test needs at least one sealed segment")
	}
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one record byte in the first sealed segment. Unlike a torn
	// active tail this is not crash damage: the index committed these
	// bytes, so the open must refuse, not silently truncate.
	seg := filepath.Join(dir, segName(1, 0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderLen+12] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentedInto(dir, New(), cfg); !errors.Is(err, ErrSegCorrupt) {
		t.Fatalf("open with corrupt sealed segment: err = %v, want ErrSegCorrupt", err)
	}

	// Truncating a sealed segment is equally fatal.
	if err := os.WriteFile(seg, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentedInto(dir, New(), cfg); !errors.Is(err, ErrSegCorrupt) {
		t.Fatalf("open with truncated sealed segment: err = %v, want ErrSegCorrupt", err)
	}
}

func TestSegmentedIndexCorruption(t *testing.T) {
	dir := t.TempDir()
	cfg := SegmentedConfig{MaxSegmentBytes: 128}
	s, _, gc := newSegStore(t, dir, cfg)
	fillSegStore(t, s, 50)
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}

	idx := filepath.Join(dir, segIndexName)
	orig, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}

	// A flipped byte fails the index's own checksum.
	mangled := append([]byte(nil), orig...)
	mangled[len(segIndexMagic)+7] ^= 0x01
	if err := os.WriteFile(idx, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentedInto(dir, New(), cfg); !errors.Is(err, ErrSegCorrupt) {
		t.Fatalf("open with corrupt index: err = %v, want ErrSegCorrupt", err)
	}

	// A deleted index cannot be confused with a fresh directory while
	// sealed segments exist.
	if err := os.Remove(idx); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentedInto(dir, New(), cfg); !errors.Is(err, ErrSegCorrupt) {
		t.Fatalf("open with missing index: err = %v, want ErrSegCorrupt", err)
	}
}

// TestSegmentedSweep: crash leftovers — temp files, segments from an
// interrupted compaction's generation, a missing active file after a
// crash between index commit and first append — are cleaned up or
// tolerated; a current-generation segment the index does not know is
// corruption.
func TestSegmentedSweep(t *testing.T) {
	dir := t.TempDir()
	cfg := SegmentedConfig{MaxSegmentBytes: 128}
	s, sa, gc := newSegStore(t, dir, cfg)
	fillSegStore(t, s, 50)
	sealed := sa.Stats().Sealed
	if sealed == 0 {
		t.Fatal("test needs at least one sealed segment")
	}
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}

	tmp := filepath.Join(dir, segIndexName+".tmp")
	stale := filepath.Join(dir, segName(7, 0))
	for _, p := range []string{tmp, stale} {
		if err := os.WriteFile(p, []byte("leftover"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2 := New()
	if _, err := OpenSegmentedInto(dir, s2, cfg); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{tmp, stale} {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s survived the sweep (err %v)", p, err)
		}
	}
	dumpEqual(t, s2, s)

	// Losing the unsynced active right after a roll: reopen recreates it
	// and keeps every sealed record.
	var activeBase uint64
	for _, m := range mustReadIndex(t, dir) {
		activeBase = m.base + m.records
	}
	if err := os.Remove(filepath.Join(dir, segName(1, activeBase))); err != nil {
		t.Fatal(err)
	}
	s3 := New()
	if _, err := OpenSegmentedInto(dir, s3, cfg); err != nil {
		t.Fatal(err)
	}
	if got := s3.CurrentSeq(); got != activeBase {
		t.Fatalf("CurrentSeq after losing active = %d, want %d (sealed records only)", got, activeBase)
	}

	// An extra current-generation segment the index does not account for
	// is corruption, not something to guess about.
	rogue := filepath.Join(dir, segName(1, 999999))
	if err := os.WriteFile(rogue, segHeader(999999), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentedInto(dir, New(), cfg); !errors.Is(err, ErrSegCorrupt) {
		t.Fatalf("open with rogue segment: err = %v, want ErrSegCorrupt", err)
	}
}

func mustReadIndex(t *testing.T, dir string) []segMeta {
	t.Helper()
	_, sealed, found, err := readSegIndex(dir)
	if err != nil || !found {
		t.Fatalf("readSegIndex: found %v, err %v", found, err)
	}
	return sealed
}

// TestSegmentedRangeRecords: range reads from the segment files must
// match ReplSnapshot record-for-record, and a range the files cannot
// serve must be ErrSegRange (the caller's cue to fall back).
func TestSegmentedRangeRecords(t *testing.T) {
	dir := t.TempDir()
	cfg := SegmentedConfig{MaxSegmentBytes: 128}
	s, sa, gc := newSegStore(t, dir, cfg)
	fillSegStore(t, s, 100)
	defer gc.Close()

	ranges := [][2]uint64{{0, 100}, {0, 1}, {99, 100}, {17, 63}, {40, 41}, {0, 50}, {50, 100}}
	for _, r := range ranges {
		want := s.ReplSnapshot(r[0], r[1])
		got, err := sa.RangeRecords(r[0], r[1])
		if err != nil {
			t.Fatalf("RangeRecords(%d, %d): %v", r[0], r[1], err)
		}
		if len(got) != len(want) {
			t.Fatalf("RangeRecords(%d, %d) = %d records, want %d", r[0], r[1], len(got), len(want))
		}
		for i := range want {
			if got[i].Seq != want[i].Seq || got[i].Key != want[i].Key || got[i].Value != want[i].Value ||
				!got[i].Time.Equal(want[i].Time) || got[i].Deleted != want[i].Deleted {
				t.Fatalf("range (%d, %d] record %d: got %+v, want %+v", r[0], r[1], i, got[i], want[i])
			}
		}
	}

	if recs, err := sa.RangeRecords(42, 42); err != nil || recs != nil {
		t.Fatalf("empty range: got %d records, err %v", len(recs), err)
	}
	if _, err := sa.RangeRecords(0, 105); !errors.Is(err, ErrSegRange) {
		t.Fatalf("range past the log end: err = %v, want ErrSegRange", err)
	}
}

func TestCompactSegmentDir(t *testing.T) {
	dir := t.TempDir()
	cfg := SegmentedConfig{MaxSegmentBytes: 128}
	s, _, gc := newSegStore(t, dir, cfg)
	fillSegStore(t, s, 100)
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}

	// Full-history compaction: logically identical store, all files
	// renumbered into generation 2.
	if err := CompactSegmentDir(dir, 16, 0, cfg); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if g, _, ok := parseSegName(e.Name()); ok && g != 2 {
			t.Fatalf("generation-%d file %s survived compaction", g, e.Name())
		}
	}
	s2 := New()
	sa2, err := OpenSegmentedInto(dir, s2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dumpEqual(t, s2, s)

	// The compacted directory keeps accepting appends.
	gc2 := NewGroupCommit(sa2, GroupCommitConfig{})
	rl2 := NewReplLog(gc2)
	if err := s2.AttachReplLog(rl2); err != nil {
		t.Fatal(err)
	}
	if err := s2.Set("post", "compact", time.Unix(9000, 0)); err != nil {
		t.Fatal(err)
	}
	if err := gc2.Close(); err != nil {
		t.Fatal(err)
	}

	// retain=1 keeps only each key's newest version.
	if err := CompactSegmentDir(dir, 16, 1, cfg); err != nil {
		t.Fatal(err)
	}
	s3 := New()
	if _, err := OpenSegmentedInto(dir, s3, cfg); err != nil {
		t.Fatal(err)
	}
	for _, k := range s3.Keys() {
		h, err := s3.History(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(h) != 1 {
			t.Fatalf("key %q: %d versions after retain=1 compaction", k, len(h))
		}
		want, werr := s2.Latest(k)
		got, gerr := s3.Latest(k)
		if werr != nil || gerr != nil || got.Value != want.Value || !got.Time.Equal(want.Time) || got.Deleted != want.Deleted {
			t.Fatalf("key %q: latest %+v (err %v), want %+v (err %v)", k, got, gerr, want, werr)
		}
	}
}

// TestSegmentedBatchAtomicity: a multi-record atomic batch lands in one
// segment whole even when it overshoots the roll threshold, so the
// per-segment record accounting (and thus every derived sequence
// number) stays exact.
func TestSegmentedBatchAtomicity(t *testing.T) {
	dir := t.TempDir()
	cfg := SegmentedConfig{MaxSegmentBytes: 64}
	s, _, gc := newSegStore(t, dir, cfg)
	base := time.Unix(2000, 0)
	var muts []Mutation
	for i := 0; i < 40; i++ {
		muts = append(muts, Mutation{Key: fmt.Sprintf("b%02d", i), Value: strings.Repeat("x", 20), Time: base.Add(time.Duration(i) * time.Second)})
	}
	if _, err := s.Apply(muts); err != nil {
		t.Fatal(err)
	}
	if err := s.SyncAOF(); err != nil {
		t.Fatal(err)
	}
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := New()
	if _, err := OpenSegmentedInto(dir, s2, cfg); err != nil {
		t.Fatal(err)
	}
	dumpEqual(t, s2, s)
	if got := s2.CurrentSeq(); got != 40 {
		t.Fatalf("CurrentSeq = %d, want 40", got)
	}
}
