package ttkv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Replication errors.
var (
	// ErrReplCorrupt is returned by DecodeReplRecord for bytes that are
	// not a well-formed replication record.
	ErrReplCorrupt = errors.New("ttkv: corrupt replication record")
	// ErrReplUnbound is returned by a ReplLog that receives an append
	// before being attached to a store.
	ErrReplUnbound = errors.New("ttkv: replication log not attached to a store")
	// ErrReplBound is returned by AttachReplLog when the log is already
	// attached to a different store.
	ErrReplBound = errors.New("ttkv: replication log already attached to another store")
	// ErrReplSeq is returned by ApplyReplicated when a record's sequence
	// number does not advance past everything already applied — the
	// exactly-once tripwire: a duplicated or reordered stream trips it
	// instead of silently corrupting history.
	ErrReplSeq = errors.New("ttkv: replicated record does not advance the applied sequence")
	// ErrReplSinkAttached is returned by ApplyReplicated and Reset on a
	// store with a persistence sink: replicas replay the primary's records
	// verbatim and must not re-log or re-mint them.
	ErrReplSinkAttached = errors.New("ttkv: store has a persistence sink attached")
	// ErrReplSubClosed is returned by ReplSub.Next after Close.
	ErrReplSubClosed = errors.New("ttkv: replication subscription closed")
	// ErrReplSubLagging is returned by ReplSub.Next when the subscriber's
	// bounded outbox overflowed: the replica fell too far behind and must
	// reconnect (it will resume from its last applied sequence).
	ErrReplSubLagging = errors.New("ttkv: replication subscriber outbox overflowed")
)

// ReplRecord is one replicated store mutation. Unlike an AOF record it
// carries the primary's store-wide sequence number, so a replica rebuilds
// not just the same per-key histories but the same global version order —
// dumps of a drained replica are byte-identical to the primary's.
// BatchOpen marks a record as a non-final member of an atomic batch (a
// cluster revert): a replica buffers until the batch closes and applies
// the whole group under every involved shard lock at once, preserving the
// primary's all-or-nothing visibility.
type ReplRecord struct {
	Seq       uint64
	Key       string
	Value     string
	Time      time.Time
	Deleted   bool
	BatchOpen bool
}

// Replication record flag bits.
const (
	replFlagDeleted   = 0x1
	replFlagBatchOpen = 0x2
	replFlagsKnown    = replFlagDeleted | replFlagBatchOpen
)

// AppendReplRecord encodes r onto dst and returns the extended slice.
// Layout: flags u8 | seq u64 | unixnanos i64 | keylen u32 | key
// [| vallen u32 | value], the value omitted for deletions (as in the AOF
// format, which this framing extends with flags and the sequence number).
func AppendReplRecord(dst []byte, r ReplRecord) []byte {
	var flags byte
	if r.Deleted {
		flags |= replFlagDeleted
	}
	if r.BatchOpen {
		flags |= replFlagBatchOpen
	}
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint64(dst, r.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Time.UnixNano()))
	dst = appendLenPrefixed(dst, r.Key)
	if !r.Deleted {
		dst = appendLenPrefixed(dst, r.Value)
	}
	return dst
}

// DecodeReplRecord decodes one record from the front of b, returning the
// record and how many bytes it consumed. Truncated or malformed bytes are
// ErrReplCorrupt: the stream framing delivers whole records, so a partial
// record is damage, not a retry condition.
func DecodeReplRecord(b []byte) (ReplRecord, int, error) {
	const header = 1 + 8 + 8 // flags + seq + nanos
	if len(b) < header {
		return ReplRecord{}, 0, fmt.Errorf("%w: truncated header", ErrReplCorrupt)
	}
	flags := b[0]
	if flags&^byte(replFlagsKnown) != 0 {
		return ReplRecord{}, 0, fmt.Errorf("%w: unknown flags %#x", ErrReplCorrupt, flags)
	}
	r := ReplRecord{
		Seq:       binary.LittleEndian.Uint64(b[1:]),
		Time:      time.Unix(0, int64(binary.LittleEndian.Uint64(b[9:]))).UTC(),
		Deleted:   flags&replFlagDeleted != 0,
		BatchOpen: flags&replFlagBatchOpen != 0,
	}
	n := header
	var err error
	if r.Key, n, err = replDecodeString(b, n); err != nil {
		return ReplRecord{}, 0, err
	}
	if !r.Deleted {
		if r.Value, n, err = replDecodeString(b, n); err != nil {
			return ReplRecord{}, 0, err
		}
	}
	return r, n, nil
}

// replDecodeString decodes one length-prefixed string at offset n.
func replDecodeString(b []byte, n int) (string, int, error) {
	if len(b)-n < 4 {
		return "", 0, fmt.Errorf("%w: truncated length", ErrReplCorrupt)
	}
	l := binary.LittleEndian.Uint32(b[n:])
	if l > MaxStringLen {
		return "", 0, fmt.Errorf("%w: string length %d", ErrReplCorrupt, l)
	}
	n += 4
	if len(b)-n < int(l) {
		return "", 0, fmt.Errorf("%w: truncated string", ErrReplCorrupt)
	}
	return string(b[n : n+int(l)]), n + int(l), nil
}

// replEntry is one committed-pending record in the log window.
type replEntry struct {
	seq     uint64
	gcIndex uint64 // the group-commit gen this record was accepted as
	data    []byte // its full encoding, shared read-only with outboxes
}

// ReplLog is the primary side of replication: a seq-assigning persistence
// sink that sits between the store and its group-commit appender. Every
// mutation flows through appendSeq under the log's lock, which mints the
// store-wide sequence number and forwards the record to the AOF appender
// in the same critical section — so the AOF byte order, the replication
// stream order, and the sequence order all coincide, and AOF replay on
// restart re-mints identical sequence numbers.
//
// Records are fanned out to subscriber outboxes only once the appender's
// commit callback covers them (written to the OS, fsynced per policy):
// a replica never sees a record the primary itself could still lose.
// With no appender (an in-memory primary), records commit instantly.
//
// Outboxes are bounded: a subscriber that falls behind its byte budget is
// dropped (ErrReplSubLagging) and the replica reconnects, resuming from
// its last applied sequence — backpressure never propagates to writers.
//
//ocasta:durable
type ReplLog struct {
	gc *GroupCommit // nil: records commit the instant they append

	mu          sync.Mutex
	store       *Store
	window      []replEntry // appended but not yet committed, in seq order
	gcCount     uint64      // records accepted by gc (== its gen, as its sole feeder)
	durableSeq  uint64      // newest committed (fanned-out) sequence
	appendedSeq uint64      // newest minted sequence
	epoch       uint64      // failover fencing term of this primary incarnation
	subs        map[*ReplSub]struct{}
}

// NewReplLog returns a replication log feeding gc (which must be fresh:
// the log must observe every commit). gc may be nil for an in-memory
// primary with no AOF; records are then shippable the moment they apply.
// Attach the log with Store.AttachReplLog.
func NewReplLog(gc *GroupCommit) *ReplLog {
	rl := &ReplLog{gc: gc, subs: make(map[*ReplSub]struct{})}
	if gc != nil {
		gc.setOnCommit(rl.onCommit)
	}
	return rl
}

// AttachReplLog makes rl the store's persistence sink and sequence minter:
// every subsequent mutation is encoded into the replication stream (and
// forwarded to rl's group-commit appender, if any). Attach after AOF
// replay, before serving writes. Pass nil to detach the sink.
func (s *Store) AttachReplLog(rl *ReplLog) error {
	if rl == nil {
		s.sink.Store(nil)
		return nil
	}
	rl.mu.Lock()
	if rl.store != nil && rl.store != s {
		rl.mu.Unlock()
		return ErrReplBound
	}
	rl.store = s
	// The store counter continues from whatever replay minted; the log's
	// own watermarks start at that boundary, so pre-attach history is
	// served to replicas via snapshots, never from the live window.
	seq := s.seq.Load()
	if rl.appendedSeq < seq {
		rl.appendedSeq = seq
	}
	if rl.durableSeq < seq {
		rl.durableSeq = seq
	}
	rl.mu.Unlock()
	s.sink.Store(&sinkBox{sink: rl})
	return nil
}

// DurableSeq returns the newest sequence number committed to the AOF per
// policy and therefore shippable to replicas. Everything at or below it is
// also visible in the store (appends and inserts share the shard lock).
func (rl *ReplLog) DurableSeq() uint64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.durableSeq
}

// AppendedSeq returns the newest minted sequence number.
func (rl *ReplLog) AppendedSeq() uint64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.appendedSeq
}

// SetEpoch records the failover fencing term of this primary incarnation.
// Epochs are strictly increasing across promotions: a node promoting
// itself adopts one more than the highest epoch it has observed, so a
// revived stale primary — still carrying the old epoch — recognizes the
// new leader as more recent and demotes. Set once, before the log starts
// serving replicas.
func (rl *ReplLog) SetEpoch(epoch uint64) {
	rl.mu.Lock()
	rl.epoch = epoch
	rl.mu.Unlock()
}

// Epoch returns the fencing term set by SetEpoch (zero when failover is
// not in use).
func (rl *ReplLog) Epoch() uint64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.epoch
}

// Sync implements the sink's durability barrier by delegating to the
// appender; with no appender it is a no-op. After Sync returns, every
// record appended before the call is also past the replication durability
// gate (the commit callback runs before Sync unblocks).
func (rl *ReplLog) Sync() error {
	if rl.gc != nil {
		return rl.gc.Sync()
	}
	return nil
}

// append implements aofSink. The store prefers the seq-assigning variant;
// this exists so a ReplLog is a valid sink wherever one is expected.
func (rl *ReplLog) append(key, value string, t time.Time, deleted bool) error {
	_, err := rl.appendSeq(key, value, t, deleted)
	return err
}

// waitCapacity forwards the store's pre-lock backpressure gate to the
// appender, preserving the disk-stall behavior of a plain group commit.
func (rl *ReplLog) waitCapacity() error {
	if rl.gc != nil {
		return rl.gc.waitCapacity()
	}
	return nil
}

// appendSeq implements seqSink: forward to the AOF appender, mint the
// sequence number, and stage the encoded record for post-commit fan-out —
// all under rl.mu, which is what makes stream order equal seq order.
func (rl *ReplLog) appendSeq(key, value string, t time.Time, deleted bool) (uint64, error) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	seq, err := rl.appendLocked(key, value, t, deleted)
	if err != nil {
		return 0, err
	}
	if rl.gc == nil {
		rl.commitLocked(rl.gcCount)
	}
	return seq, nil
}

// appendSeqBatch implements batchSeqSink: the whole batch is staged under
// one lock hold and handed to the appender as one indivisible enqueue, so
// it occupies a contiguous run of sequence numbers, of the replication
// stream, and of a single flush batch — the durable watermark can never
// land mid-batch, and a replica applies the group atomically whether it
// arrives on the live tail or sits just past a resume boundary. An
// appender error rejects the whole batch: nothing reaches the AOF,
// nothing is minted.
func (rl *ReplLog) appendSeqBatch(muts []Mutation) ([]uint64, error) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if rl.store == nil {
		return nil, ErrReplUnbound
	}
	if rl.gc != nil {
		var encoded []byte
		for i := range muts {
			encoded = appendRecord(encoded, muts[i].Key, muts[i].Value, muts[i].Time, muts[i].Delete)
		}
		if err := rl.gc.appendEncodedBatch(encoded, len(muts)); err != nil {
			return nil, err
		}
	}
	seqs := make([]uint64, len(muts))
	for i := range muts {
		m := &muts[i]
		seqs[i] = rl.stageLocked(m.Key, m.Value, m.Time, m.Delete, i < len(muts)-1)
	}
	if rl.gc == nil {
		rl.commitLocked(rl.gcCount)
	}
	return seqs, nil
}

// stageLocked mints one record's sequence number and stages its encoding
// for post-commit fan-out. Caller holds rl.mu, has verified the log is
// bound, and has already handed the record to the appender (gcIndex
// mirrors the appender's gen because this log is its sole feeder).
func (rl *ReplLog) stageLocked(key, value string, t time.Time, deleted, batchOpen bool) uint64 {
	rl.gcCount++
	seq := rl.store.seq.Add(1)
	rec := ReplRecord{Seq: seq, Key: key, Value: value, Time: t, Deleted: deleted, BatchOpen: batchOpen}
	rl.window = append(rl.window, replEntry{seq: seq, gcIndex: rl.gcCount, data: AppendReplRecord(nil, rec)})
	rl.appendedSeq = seq
	return seq
}

// appendLocked forwards one record to the appender, mints its sequence
// number, and stages its encoding. Caller holds rl.mu.
func (rl *ReplLog) appendLocked(key, value string, t time.Time, deleted bool) (uint64, error) {
	if rl.store == nil {
		return 0, ErrReplUnbound
	}
	if rl.gc != nil {
		if err := rl.gc.append(key, value, t, deleted); err != nil {
			return 0, err
		}
	}
	return rl.stageLocked(key, value, t, deleted, false), nil
}

// onCommit is the appender's post-flush callback: records accepted as gen
// <= upTo are now committed; fan them out. Runs on the flusher goroutine.
func (rl *ReplLog) onCommit(upTo uint64) {
	rl.mu.Lock()
	rl.commitLocked(upTo)
	rl.mu.Unlock()
}

// commitLocked fans every window entry accepted at or before gc gen upTo
// out to the subscribers and advances the durable watermark. Caller holds
// rl.mu. Entries are in both seq and gen order, so this is a prefix move.
func (rl *ReplLog) commitLocked(upTo uint64) {
	n := 0
	for n < len(rl.window) && rl.window[n].gcIndex <= upTo {
		n++
	}
	if n == 0 {
		return
	}
	batch := rl.window[:n]
	for sub := range rl.subs {
		sub.push(batch)
	}
	rl.durableSeq = batch[n-1].seq
	rl.window = append(rl.window[:0], rl.window[n:]...)
}

// Subscribe registers a bounded outbox. Records with sequence numbers
// above the returned watermark will be delivered to it exactly once, in
// order; everything at or below the watermark is already committed and
// visible in the store, so the caller snapshots that range directly
// (Store.ReplSnapshot) — the two sources partition the stream cleanly.
// maxBytes bounds the outbox backlog; beyond it the subscriber is dropped.
func (rl *ReplLog) Subscribe(maxBytes int) (*ReplSub, uint64) {
	if maxBytes <= 0 {
		maxBytes = DefaultOutboxBytes
	}
	sub := &ReplSub{rl: rl, max: maxBytes, wake: make(chan struct{}, 1)}
	rl.mu.Lock()
	rl.subs[sub] = struct{}{}
	from := rl.durableSeq
	rl.mu.Unlock()
	return sub, from
}

// DefaultOutboxBytes is the per-replica outbox bound used when the caller
// does not choose one: large enough to ride out a multi-second stall on a
// busy primary, small enough that a wedged replica cannot hold the heap.
const DefaultOutboxBytes = 64 << 20

// ReplSub is one subscriber's bounded outbox of committed records.
type ReplSub struct {
	rl   *ReplLog
	max  int
	wake chan struct{}

	mu    sync.Mutex
	queue [][]byte // encoded records, oldest first
	bytes int
	last  uint64 // newest queued sequence
	err   error  // terminal: lagging or closed
}

// push stages committed entries; called with rl.mu held.
func (sub *ReplSub) push(entries []replEntry) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.err != nil {
		return
	}
	for i := range entries {
		sub.bytes += len(entries[i].data)
	}
	if sub.bytes > sub.max {
		sub.err = ErrReplSubLagging
		sub.queue, sub.bytes = nil, 0
		sub.signal()
		return
	}
	for i := range entries {
		sub.queue = append(sub.queue, entries[i].data)
	}
	sub.last = entries[len(entries)-1].seq
	sub.signal()
}

func (sub *ReplSub) signal() {
	select {
	case sub.wake <- struct{}{}:
	default:
	}
}

// Next blocks until records are queued, the timeout elapses (nil, nil —
// the caller's heartbeat turn), or the subscription terminates. Returned
// slices are shared read-only encodings; the newest delivered sequence
// number accompanies them for lag accounting.
func (sub *ReplSub) Next(timeout time.Duration) (data [][]byte, lastSeq uint64, err error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		sub.mu.Lock()
		if len(sub.queue) > 0 {
			data, lastSeq = sub.queue, sub.last
			sub.queue, sub.bytes = nil, 0
			sub.mu.Unlock()
			return data, lastSeq, nil
		}
		if sub.err != nil {
			err = sub.err
			sub.mu.Unlock()
			return nil, 0, err
		}
		sub.mu.Unlock()
		select {
		case <-sub.wake:
		case <-timer.C:
			return nil, 0, nil
		}
	}
}

// QueuedBytes reports the outbox backlog, for lag accounting.
func (sub *ReplSub) QueuedBytes() int {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.bytes
}

// Close unregisters the subscriber and wakes any blocked Next.
func (sub *ReplSub) Close() {
	sub.rl.mu.Lock()
	delete(sub.rl.subs, sub)
	sub.rl.mu.Unlock()
	sub.mu.Lock()
	if sub.err == nil {
		sub.err = ErrReplSubClosed
	}
	sub.queue, sub.bytes = nil, 0
	sub.signal()
	sub.mu.Unlock()
}

// ReplSnapshot collects every version with sequence number in
// (afterSeq, upToSeq], ordered by sequence — the snapshot phase of a SYNC.
// upToSeq must be at or below a committed watermark (ReplLog.Subscribe
// returns one). The scan is lock-free: it first waits for the publication
// watermark to cover upToSeq — every version it promises to return is then
// fully inserted into its record's published state — and then walks the
// published states without touching a lock, so a snapshot of any size
// never blocks writers. Callers stream large histories in bounded
// sub-ranges; the returned records carry no atomic-batch flags (the store
// does not record batch membership), so catch-up replay is record-ordered
// like an AOF replay — resume boundaries themselves stay batch-aligned
// because the durable watermark never lands inside a batch.
func (s *Store) ReplSnapshot(afterSeq, upToSeq uint64) []ReplRecord {
	s.waitVisible(upToSeq)
	var out []ReplRecord
	for i := range s.shards {
		for k, rec := range s.shards[i].load() {
			vs := rec.state.Load().versions
			for j := range vs {
				v := &vs[j]
				if v.Seq > afterSeq && v.Seq <= upToSeq {
					out = append(out, ReplRecord{
						Seq: v.Seq, Key: k, Value: v.Value, Time: v.Time, Deleted: v.Deleted,
					})
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// ErrExportRange is returned by ExportRange for a range the store cannot
// serve consistently: the range is inverted, ends past the store's
// current sequence, or the store was Reset (replica full resync) while
// the export scanned — its counter fell below the pinned bound, so the
// scan may mix sequence incarnations and is discarded.
var ErrExportRange = errors.New("ttkv: export range not consistently readable")

// ExportRange returns every version with sequence number in
// (afterSeq, upToSeq], ordered by sequence — ReplSnapshot plus the
// validation a backup needs. Pinning upToSeq at a value read from
// CurrentSeq before the scan is safe on any store: CurrentSeq is the
// publication watermark, so everything at or below the pin is already
// fully inserted into the published record states the lock-free scan
// walks — the export never misses a record it claims to cover, without
// taking a single lock or blocking writers at all. A pin above the
// watermark (a caller racing in-flight writers) waits for publication to
// catch up before scanning. The post-scan counter re-check downgrades the
// one hole — a replica Reset for full resync mid-scan — from silent
// corruption to an error; the caller retries after the resync settles.
func (s *Store) ExportRange(afterSeq, upToSeq uint64) ([]ReplRecord, error) {
	if afterSeq > upToSeq {
		return nil, fmt.Errorf("%w: (%d, %d]", ErrExportRange, afterSeq, upToSeq)
	}
	if cur := s.seq.Load(); cur < upToSeq {
		return nil, fmt.Errorf("%w: store at seq %d, range ends at %d", ErrExportRange, cur, upToSeq)
	}
	if !s.waitVisible(upToSeq) {
		return nil, fmt.Errorf("%w: store reset while waiting for seq %d to publish", ErrExportRange, upToSeq)
	}
	recs := s.ReplSnapshot(afterSeq, upToSeq)
	if cur := s.seq.Load(); cur < upToSeq {
		return nil, fmt.Errorf("%w: store reset mid-export (seq fell to %d)", ErrExportRange, cur)
	}
	return recs, nil
}

// ApplyReplicated applies a chunk of replicated records to a replica
// store: each version is inserted with the primary's sequence number, so
// the replica's histories — and its snapshot dumps — are byte-identical
// to the primary's once lag drains. The whole chunk is inserted before
// the publication watermark advances across it in one step, so an atomic
// batch inside it (a cluster revert) is never readable half-applied,
// exactly as on the primary. Sequence numbers must strictly ascend past
// everything already applied (ErrReplSeq otherwise — a duplicate or
// reordered stream fails loudly), and the store must have no persistence
// sink attached.
func (s *Store) ApplyReplicated(recs []ReplRecord) error {
	if len(recs) == 0 {
		return nil
	}
	if s.sink.Load() != nil {
		return ErrReplSinkAttached
	}
	last := s.seq.Load()
	for i := range recs {
		r := &recs[i]
		if r.Key == "" {
			return ErrEmptyKey
		}
		if r.Time.IsZero() {
			return ErrZeroTime
		}
		if len(r.Key) > MaxStringLen || len(r.Value) > MaxStringLen {
			return ErrOversize
		}
		if r.Seq <= last {
			return fmt.Errorf("%w: seq %d after %d", ErrReplSeq, r.Seq, last)
		}
		last = r.Seq
	}

	unlock := s.lockShardsFor(func(yield func(string) bool) {
		for i := range recs {
			if !yield(recs[i].Key) {
				return
			}
		}
	})
	for i := range recs {
		r := &recs[i]
		s.insertLocked(&s.shards[s.shardIndex(r.Key)], r.Key, r.Value, r.Time, r.Deleted, r.Seq)
	}
	// Advance the counter so ViewAt bounds cover the chunk; max-CAS in
	// case a misuse races this with local minting (the sink check above
	// rules out the supported configurations).
	for {
		cur := s.seq.Load()
		if cur >= last || s.seq.CompareAndSwap(cur, last) {
			break
		}
	}
	unlock()
	// Publish the whole chunk in one watermark jump: lock-free readers
	// flip from seeing none of it to all of it atomically.
	s.pub.advanceTo(last)

	// Observer calls run outside the shard locks by contract.
	if obs := s.statsObserver(); obs != nil {
		for i := range recs {
			obs.ObserveWrite(recs[i].Key, recs[i].Time, recs[i].Deleted)
		}
	}
	return nil
}

// Reset empties the store in place: all histories, counters, and the
// sequence counter. A replica told to full-resync (the primary restarted
// or was replaced) calls it before replaying the new snapshot, so stale
// divergent history cannot shadow the new stream. Refused while a
// persistence sink is attached.
func (s *Store) Reset() error {
	if s.sink.Load() != nil {
		return ErrReplSinkAttached
	}
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	for i := range s.shards {
		sh := &s.shards[i]
		m := make(map[string]*record)
		sh.records.Store(&m)
		sh.writes.Store(0)
		sh.deletes.Store(0)
		sh.reads.Store(0)
	}
	s.seq.Store(0)
	// Rewind the publication watermark after the counter: a waiter woken
	// by the reset re-checks the counter and bails out instead of waiting
	// for a sequence number that no longer exists.
	s.pub.reset()
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
	return nil
}
