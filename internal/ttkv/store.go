// Package ttkv implements Ocasta's Time Travel Key-Value store: a versioned
// key-value store that records, for every configuration key, the full
// timestamped history of its values including deletions, together with
// read/write/delete counters.
//
// The paper built the TTKV on top of Redis, mapping each key to a record
// holding the number of writes and deletions plus a list of historical
// values with timestamps, with a special value type representing deletions.
// This package implements that record schema natively, adds point-in-time
// reads (the primitive the repair tool's rollback search is built on), and
// provides append-only-file persistence (aof.go) so a logging daemon can
// survive restarts.
package ttkv

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Store errors.
var (
	ErrNoKey     = errors.New("ttkv: no such key")
	ErrZeroTime  = errors.New("ttkv: zero timestamp")
	ErrEmptyKey  = errors.New("ttkv: empty key")
	ErrNoVersion = errors.New("ttkv: no version at or before requested time")
)

// Version is one entry in a key's value history. Deleted versions are the
// paper's "special type of value ... used to represent deletions", kept in
// the history like any other value.
type Version struct {
	Time    time.Time
	Value   string
	Deleted bool
	// Seq is a store-wide monotone sequence number that orders versions
	// carrying identical timestamps (second-granularity traces make those
	// common).
	Seq uint64
}

// record is the per-key schema from the paper: write/delete counts plus the
// chronological value history.
type record struct {
	versions []Version
	writes   int
	deletes  int
	reads    atomic.Uint64
}

// Store is an in-memory TTKV. It is safe for concurrent use. The zero
// value is not usable; construct with New.
type Store struct {
	mu      sync.RWMutex
	records map[string]*record
	seq     atomic.Uint64
	reads   atomic.Uint64
	writes  atomic.Uint64
	deletes atomic.Uint64
	aof     *AOF // optional; appended to while holding mu
}

// New returns an empty store.
func New() *Store {
	return &Store{records: make(map[string]*record)}
}

// Set records a write of value to key at time t. Timestamps may arrive out
// of order (error injection deliberately writes into the past); the version
// is inserted at its chronological position, after any existing version
// with the same timestamp.
func (s *Store) Set(key, value string, t time.Time) error {
	return s.apply(key, value, t, false)
}

// Delete records a deletion of key at time t. The deletion is a tombstone
// version in the history; prior values remain reachable via GetAt.
func (s *Store) Delete(key string, t time.Time) error {
	return s.apply(key, "", t, true)
}

func (s *Store) apply(key, value string, t time.Time, deleted bool) error {
	if key == "" {
		return ErrEmptyKey
	}
	if t.IsZero() {
		return ErrZeroTime
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.records[key]
	if !ok {
		rec = &record{}
		s.records[key] = rec
	}
	v := Version{Time: t, Value: value, Deleted: deleted, Seq: s.seq.Add(1)}
	rec.insert(v)
	if deleted {
		rec.deletes++
		s.deletes.Add(1)
	} else {
		rec.writes++
		s.writes.Add(1)
	}
	if s.aof != nil {
		if err := s.aof.append(key, value, t, deleted); err != nil {
			return err
		}
	}
	return nil
}

// insert places v at its chronological position: after the last version
// whose time is <= v.Time.
func (r *record) insert(v Version) {
	i := sort.Search(len(r.versions), func(i int) bool {
		return r.versions[i].Time.After(v.Time)
	})
	r.versions = append(r.versions, Version{})
	copy(r.versions[i+1:], r.versions[i:])
	r.versions[i] = v
}

// Get returns the current value of key. ok is false when the key was never
// written or its latest version is a deletion. Get counts as a read.
func (s *Store) Get(key string) (value string, ok bool) {
	s.mu.RLock()
	rec, exists := s.records[key]
	if !exists {
		s.mu.RUnlock()
		s.reads.Add(1)
		return "", false
	}
	last := rec.versions[len(rec.versions)-1]
	s.mu.RUnlock()
	rec.reads.Add(1)
	s.reads.Add(1)
	if last.Deleted {
		return "", false
	}
	return last.Value, true
}

// GetAt returns the version of key in effect at time t: the latest version
// with Time <= t. It does not count as a read (it is a recovery-path
// operation, not application activity).
func (s *Store) GetAt(key string, t time.Time) (Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.records[key]
	if !ok {
		return Version{}, ErrNoKey
	}
	i := sort.Search(len(rec.versions), func(i int) bool {
		return rec.versions[i].Time.After(t)
	})
	if i == 0 {
		return Version{}, ErrNoVersion
	}
	return rec.versions[i-1], nil
}

// History returns a copy of key's full version history, oldest first.
func (s *Store) History(key string) ([]Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.records[key]
	if !ok {
		return nil, ErrNoKey
	}
	out := make([]Version, len(rec.versions))
	copy(out, rec.versions)
	return out, nil
}

// Latest returns the newest version of key.
func (s *Store) Latest(key string) (Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.records[key]
	if !ok {
		return Version{}, ErrNoKey
	}
	return rec.versions[len(rec.versions)-1], nil
}

// Keys returns all keys ever written, sorted.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.records))
	for k := range s.records {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of keys ever written.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// WriteCount returns how many non-delete writes key received.
func (s *Store) WriteCount(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if rec, ok := s.records[key]; ok {
		return rec.writes
	}
	return 0
}

// DeleteCount returns how many deletions key received.
func (s *Store) DeleteCount(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if rec, ok := s.records[key]; ok {
		return rec.deletes
	}
	return 0
}

// ModCount returns writes + deletions of key: its total number of recorded
// modifications, the quantity Ocasta's repair tool sorts clusters by.
func (s *Store) ModCount(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if rec, ok := s.records[key]; ok {
		return rec.writes + rec.deletes
	}
	return 0
}

// Stats summarizes the store, including the approximate in-memory size of
// all histories (the "TTKV size" column of Table I).
type Stats struct {
	Keys        int
	Writes      uint64
	Deletes     uint64
	Reads       uint64
	Versions    int
	ApproxBytes int64
}

// versionOverhead approximates the fixed per-version bookkeeping cost
// (time, sequence number, flags, slice header share).
const versionOverhead = 40

// keyOverhead approximates the fixed per-key bookkeeping cost.
const keyOverhead = 64

// Stats returns a snapshot of the store's counters and size.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Keys:    len(s.records),
		Writes:  s.writes.Load(),
		Deletes: s.deletes.Load(),
		Reads:   s.reads.Load(),
	}
	for k, rec := range s.records {
		st.Versions += len(rec.versions)
		st.ApproxBytes += int64(len(k)) + keyOverhead
		for i := range rec.versions {
			st.ApproxBytes += int64(len(rec.versions[i].Value)) + versionOverhead
		}
	}
	return st
}

// CountRead records an application read of key without fetching the value;
// loggers use it when they observe read traffic they do not need the result
// of.
func (s *Store) CountRead(key string) {
	s.mu.RLock()
	rec, ok := s.records[key]
	s.mu.RUnlock()
	if ok {
		rec.reads.Add(1)
	}
	s.reads.Add(1)
}

// Clone returns a deep copy of the store's contents (counters included,
// AOF binding excluded). Used by tests and by sandboxed trials that need a
// writable copy.
func (s *Store) Clone() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := New()
	out.seq.Store(s.seq.Load())
	out.reads.Store(s.reads.Load())
	out.writes.Store(s.writes.Load())
	out.deletes.Store(s.deletes.Load())
	for k, rec := range s.records {
		nr := &record{
			versions: make([]Version, len(rec.versions)),
			writes:   rec.writes,
			deletes:  rec.deletes,
		}
		copy(nr.versions, rec.versions)
		nr.reads.Store(rec.reads.Load())
		out.records[k] = nr
	}
	return out
}

// ModTimes returns every distinct modification timestamp of the given keys,
// newest first. The repair tool uses this to enumerate the historical
// versions of a cluster: each timestamp at which any member key changed is
// one candidate rollback point.
func (s *Store) ModTimes(keys []string) []time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[int64]struct{})
	var times []time.Time
	for _, k := range keys {
		rec, ok := s.records[k]
		if !ok {
			continue
		}
		for i := range rec.versions {
			ns := rec.versions[i].Time.UnixNano()
			if _, dup := seen[ns]; !dup {
				seen[ns] = struct{}{}
				times = append(times, rec.versions[i].Time)
			}
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i].After(times[j]) })
	return times
}
