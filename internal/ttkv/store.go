// Package ttkv implements Ocasta's Time Travel Key-Value store: a versioned
// key-value store that records, for every configuration key, the full
// timestamped history of its values including deletions, together with
// read/write/delete counters.
//
// The paper built the TTKV on top of Redis, mapping each key to a record
// holding the number of writes and deletions plus a list of historical
// values with timestamps, with a special value type representing deletions.
// This package implements that record schema natively, adds point-in-time
// reads (the primitive the repair tool's rollback search is built on), and
// provides append-only-file persistence (aof.go, groupcommit.go) so a
// logging daemon can survive restarts.
//
// The store is sharded: keys are hash-partitioned across N lock-striped
// shards so writers to distinct keys never contend on a lock. Version
// sequence numbers remain store-wide and monotone, so point-in-time
// ordering semantics are identical to a single-shard store.
package ttkv

import (
	"errors"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Store errors.
var (
	ErrNoKey     = errors.New("ttkv: no such key")
	ErrZeroTime  = errors.New("ttkv: zero timestamp")
	ErrEmptyKey  = errors.New("ttkv: empty key")
	ErrNoVersion = errors.New("ttkv: no version at or before requested time")
	ErrOversize  = errors.New("ttkv: key or value exceeds MaxStringLen")
)

// MaxStringLen bounds keys and values (it matches the wire protocol's
// bulk-string limit). Enforcing it on the write path keeps the AOF
// replayable: the replay side rejects longer strings as corruption.
const MaxStringLen = 8 << 20

// Version is one entry in a key's value history. Deleted versions are the
// paper's "special type of value ... used to represent deletions", kept in
// the history like any other value.
type Version struct {
	Time    time.Time
	Value   string
	Deleted bool
	// Seq is a store-wide monotone sequence number that orders versions
	// carrying identical timestamps (second-granularity traces make those
	// common).
	Seq uint64
}

// record is the per-key schema from the paper: write/delete counts plus the
// chronological value history.
type record struct {
	versions []Version
	writes   int
	deletes  int
	reads    atomic.Uint64
}

// shard is one lock stripe: a private map plus private counters, so
// concurrent writers to keys in different shards share no mutable state
// except the store-wide sequence counter.
type shard struct {
	mu      sync.RWMutex
	records map[string]*record
	writes  uint64 // guarded by mu
	deletes uint64 // guarded by mu
	reads   atomic.Uint64
	// pad spaces shards at least a cache line apart so one shard's lock
	// traffic does not false-share with its neighbors.
	_ [64]byte
}

// DefaultShards is the shard count used by New. It is a modest power of
// two: enough stripes that GOMAXPROCS writers rarely collide, small enough
// that iteration (Keys, Stats, snapshots) stays cheap.
const DefaultShards = 16

// Store is an in-memory TTKV. It is safe for concurrent use. The zero
// value is not usable; construct with New or NewSharded.
type Store struct {
	shards   []shard
	mask     uint64 // len(shards)-1; len is a power of two
	seq      atomic.Uint64
	sink     atomic.Pointer[sinkBox]     // optional persistence; see aof.go
	observer atomic.Pointer[observerBox] // optional analytics hook
}

// sinkBox wraps the persistence interface so it can live in an
// atomic.Pointer (interfaces cannot).
type sinkBox struct{ sink aofSink }

// StatsObserver receives every successful mutation of the store, the hook
// the streaming analytics engine (core.Engine) feeds from. Implementations
// must be safe for concurrent use: the store invokes the observer from
// whichever goroutine performed the write, after releasing the shard lock,
// so calls from writers on different shards overlap and same-instant
// writes to different keys may be observed slightly out of order (the
// analytics engine's reorder horizon absorbs this; grouping follows the
// mutation timestamps, not observation order).
type StatsObserver interface {
	//ocasta:nolock
	ObserveWrite(key string, t time.Time, deleted bool)
}

// observerBox wraps the observer interface so it can live in an
// atomic.Pointer.
type observerBox struct{ obs StatsObserver }

// SetStatsObserver installs (or, with nil, removes) the store's mutation
// observer. Attach it before replaying an AOF to feed historical writes
// through the same hook.
func (s *Store) SetStatsObserver(obs StatsObserver) {
	if obs == nil {
		s.observer.Store(nil)
		return
	}
	s.observer.Store(&observerBox{obs: obs})
}

// statsObserver returns the current observer, nil if none.
func (s *Store) statsObserver() StatsObserver {
	if box := s.observer.Load(); box != nil {
		return box.obs
	}
	return nil
}

// New returns an empty store with DefaultShards shards.
func New() *Store { return NewSharded(DefaultShards) }

// NewSharded returns an empty store striped across n shards. n is rounded
// up to the next power of two; n <= 1 yields a single-shard store, which
// behaves exactly like the historical single-lock implementation.
func NewSharded(n int) *Store {
	if n < 1 {
		n = 1
	}
	n = 1 << bits.Len(uint(n-1)) // next power of two (n itself if already one)
	s := &Store{shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i].records = make(map[string]*record)
	}
	return s
}

// NumShards reports the store's shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// shardIndex hashes key (FNV-1a) onto a shard index.
func (s *Store) shardIndex(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h & s.mask
}

// shardFor hashes key onto its shard.
func (s *Store) shardFor(key string) *shard {
	return &s.shards[s.shardIndex(key)]
}

// lockShardsFor write-locks every shard holding any of keys, each exactly
// once, in ascending index order — the one ordering every multi-shard
// locker (RevertCluster, ApplyReplicated) uses, so they can never
// deadlock against each other. The returned unlock is idempotent, so it
// can both be deferred and called early (observers run outside the
// locks by contract).
//
//ocasta:lockfn
func (s *Store) lockShardsFor(keys func(yield func(string) bool)) (unlock func()) {
	idxSet := make(map[uint64]struct{})
	keys(func(k string) bool {
		idxSet[s.shardIndex(k)] = struct{}{}
		return true
	})
	idxs := make([]uint64, 0, len(idxSet))
	for i := range idxSet {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	for _, i := range idxs {
		s.shards[i].mu.Lock()
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			for _, i := range idxs {
				s.shards[i].mu.Unlock()
			}
		})
	}
}

// Set records a write of value to key at time t. Timestamps may arrive out
// of order (error injection deliberately writes into the past); the version
// is inserted at its chronological position, after any existing version
// with the same timestamp.
func (s *Store) Set(key, value string, t time.Time) error {
	return s.apply(key, value, t, false)
}

// Delete records a deletion of key at time t. The deletion is a tombstone
// version in the history; prior values remain reachable via GetAt.
func (s *Store) Delete(key string, t time.Time) error {
	return s.apply(key, "", t, true)
}

func (s *Store) apply(key, value string, t time.Time, deleted bool) error {
	if key == "" {
		return ErrEmptyKey
	}
	if t.IsZero() {
		return ErrZeroTime
	}
	if len(key) > MaxStringLen || len(value) > MaxStringLen {
		return ErrOversize
	}
	if err := s.waitSinkCapacity(); err != nil {
		return err
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	err := s.applyLocked(sh, key, value, t, deleted)
	sh.mu.Unlock()
	if err == nil {
		if obs := s.statsObserver(); obs != nil {
			obs.ObserveWrite(key, t, deleted)
		}
	}
	return err
}

// capacityWaiter is the optional backpressure gate a persistence sink can
// expose (GroupCommit does). It is consulted before any shard lock is
// taken, so a stalled disk pauses writers without blocking readers.
type capacityWaiter interface{ waitCapacity() error }

func (s *Store) waitSinkCapacity() error {
	if box := s.sink.Load(); box != nil {
		if cw, ok := box.sink.(capacityWaiter); ok {
			return cw.waitCapacity()
		}
	}
	return nil
}

// applyLocked performs one mutation with sh.mu already held. The
// persistence enqueue happens under the shard lock so the AOF records
// same-key mutations in exactly their in-memory insertion order (the
// group-commit sink only copies bytes here; disk I/O happens on its own
// goroutine). The enqueue runs first: if persistence rejects the record
// (sticky flush error, closed appender), the in-memory store stays
// untouched, so memory and log cannot diverge. The reverse crash window —
// record in the AOF, process dies before the insert — only makes replay a
// superset, which is the correct durability direction.
func (s *Store) applyLocked(sh *shard, key, value string, t time.Time, deleted bool) error {
	seq, err := s.sinkAppend(key, value, t, deleted)
	if err != nil {
		return err
	}
	s.insertLocked(sh, key, value, t, deleted, seq)
	return nil
}

// seqSink is the optional sink extension a replication log implements: the
// sink mints the record's store-wide sequence number itself, under its own
// lock, so the replication stream, the AOF byte order, and the sequence
// order all coincide. A seq of 0 is never minted.
type seqSink interface {
	appendSeq(key, value string, t time.Time, deleted bool) (uint64, error)
}

// sinkAppend enqueues one record to the persistence sink, if attached. A
// seq-assigning sink returns the sequence number it minted for the record;
// plain sinks return 0 and the caller mints from the store counter.
func (s *Store) sinkAppend(key, value string, t time.Time, deleted bool) (uint64, error) {
	if box := s.sink.Load(); box != nil {
		if ss, ok := box.sink.(seqSink); ok {
			return ss.appendSeq(key, value, t, deleted)
		}
		return 0, box.sink.append(key, value, t, deleted)
	}
	return 0, nil
}

// insertLocked performs the in-memory half of one mutation with sh.mu
// held: version insert plus counters. seq is the sink-assigned sequence
// number, or 0 to mint one from the store counter.
func (s *Store) insertLocked(sh *shard, key, value string, t time.Time, deleted bool, seq uint64) {
	if seq == 0 {
		seq = s.seq.Add(1)
	}
	rec, ok := sh.records[key]
	if !ok {
		rec = &record{}
		sh.records[key] = rec
	}
	v := Version{Time: t, Value: value, Deleted: deleted, Seq: seq}
	rec.insert(v)
	if deleted {
		rec.deletes++
		sh.deletes++
	} else {
		rec.writes++
		sh.writes++
	}
}

// insert places v at its chronological position: after the last version
// whose time is <= v.Time.
func (r *record) insert(v Version) {
	i := sort.Search(len(r.versions), func(i int) bool {
		return r.versions[i].Time.After(v.Time)
	})
	r.versions = append(r.versions, Version{})
	copy(r.versions[i+1:], r.versions[i:])
	r.versions[i] = v
}

// Get returns the current value of key. ok is false when the key was never
// written or its latest version is a deletion. Get counts as a read (a miss
// is still application read traffic).
func (s *Store) Get(key string) (value string, ok bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	rec, exists := sh.records[key]
	if !exists {
		sh.mu.RUnlock()
		sh.reads.Add(1)
		return "", false
	}
	last := rec.versions[len(rec.versions)-1]
	sh.mu.RUnlock()
	rec.reads.Add(1)
	sh.reads.Add(1)
	if last.Deleted {
		return "", false
	}
	return last.Value, true
}

// GetAt returns the version of key in effect at time t: the latest version
// with Time <= t. It does not count as a read (it is a recovery-path
// operation, not application activity).
func (s *Store) GetAt(key string, t time.Time) (Version, error) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.records[key]
	if !ok {
		return Version{}, ErrNoKey
	}
	i := sort.Search(len(rec.versions), func(i int) bool {
		return rec.versions[i].Time.After(t)
	})
	if i == 0 {
		return Version{}, ErrNoVersion
	}
	return rec.versions[i-1], nil
}

// History returns a copy of key's full version history, oldest first.
func (s *Store) History(key string) ([]Version, error) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.records[key]
	if !ok {
		return nil, ErrNoKey
	}
	out := make([]Version, len(rec.versions))
	copy(out, rec.versions)
	return out, nil
}

// Latest returns the newest version of key.
func (s *Store) Latest(key string) (Version, error) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.records[key]
	if !ok {
		return Version{}, ErrNoKey
	}
	return rec.versions[len(rec.versions)-1], nil
}

// Keys returns all keys ever written, sorted.
func (s *Store) Keys() []string {
	var keys []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.records {
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(keys)
	return keys
}

// Len returns the number of keys ever written.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.records)
		sh.mu.RUnlock()
	}
	return n
}

// WriteCount returns how many non-delete writes key received.
func (s *Store) WriteCount(key string) int {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if rec, ok := sh.records[key]; ok {
		return rec.writes
	}
	return 0
}

// DeleteCount returns how many deletions key received.
func (s *Store) DeleteCount(key string) int {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if rec, ok := sh.records[key]; ok {
		return rec.deletes
	}
	return 0
}

// ModCount returns writes + deletions of key: its total number of recorded
// modifications, the quantity Ocasta's repair tool sorts clusters by.
func (s *Store) ModCount(key string) int {
	sh := s.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if rec, ok := sh.records[key]; ok {
		return rec.writes + rec.deletes
	}
	return 0
}

// Stats summarizes the store, including the approximate in-memory size of
// all histories (the "TTKV size" column of Table I).
type Stats struct {
	Keys        int
	Writes      uint64
	Deletes     uint64
	Reads       uint64
	Versions    int
	ApproxBytes int64
}

// versionOverhead approximates the fixed per-version bookkeeping cost
// (time, sequence number, flags, slice header share).
const versionOverhead = 40

// keyOverhead approximates the fixed per-key bookkeeping cost.
const keyOverhead = 64

// Stats returns a snapshot of the store's counters and size. Counters are
// summed shard by shard; under concurrent writes the snapshot is
// consistent per shard, not across the whole store.
func (s *Store) Stats() Stats {
	var st Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		st.Keys += len(sh.records)
		st.Writes += sh.writes
		st.Deletes += sh.deletes
		st.Reads += sh.reads.Load()
		for k, rec := range sh.records {
			st.Versions += len(rec.versions)
			st.ApproxBytes += int64(len(k)) + keyOverhead
			for i := range rec.versions {
				st.ApproxBytes += int64(len(rec.versions[i].Value)) + versionOverhead
			}
		}
		sh.mu.RUnlock()
	}
	return st
}

// CountRead records an application read of key without fetching the value;
// loggers use it when they observe read traffic they do not need the result
// of. Like Get, a read of a never-written key still counts globally (it is
// real application read traffic).
func (s *Store) CountRead(key string) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	rec, ok := sh.records[key]
	sh.mu.RUnlock()
	if ok {
		rec.reads.Add(1)
	}
	sh.reads.Add(1)
}

// Clone returns a deep copy of the store's contents (counters and shard
// layout included, AOF binding excluded). Used by tests and by sandboxed
// trials that need a writable copy.
func (s *Store) Clone() *Store {
	out := NewSharded(len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		osh := &out.shards[i]
		sh.mu.RLock()
		osh.writes = sh.writes
		osh.deletes = sh.deletes
		osh.reads.Store(sh.reads.Load())
		for k, rec := range sh.records {
			nr := &record{
				versions: make([]Version, len(rec.versions)),
				writes:   rec.writes,
				deletes:  rec.deletes,
			}
			copy(nr.versions, rec.versions)
			nr.reads.Store(rec.reads.Load())
			osh.records[k] = nr
		}
		sh.mu.RUnlock()
	}
	// Load seq only after every shard is copied: a concurrent writer may
	// have minted sequence numbers we did not copy (a harmless gap), but
	// loading first could hand the clone a counter below copied versions,
	// making later clone writes mint duplicate Seqs.
	out.seq.Store(s.seq.Load())
	return out
}

// ModTimes returns every distinct modification timestamp of the given keys,
// newest first. The repair tool uses this to enumerate the historical
// versions of a cluster: each timestamp at which any member key changed is
// one candidate rollback point.
func (s *Store) ModTimes(keys []string) []time.Time {
	seen := make(map[int64]struct{})
	var times []time.Time
	for _, k := range keys {
		sh := s.shardFor(k)
		sh.mu.RLock()
		rec, ok := sh.records[k]
		if !ok {
			sh.mu.RUnlock()
			continue
		}
		for i := range rec.versions {
			ns := rec.versions[i].Time.UnixNano()
			if _, dup := seen[ns]; !dup {
				seen[ns] = struct{}{}
				times = append(times, rec.versions[i].Time)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(times, func(i, j int) bool { return times[i].After(times[j]) })
	return times
}
