// Package ttkv implements Ocasta's Time Travel Key-Value store: a versioned
// key-value store that records, for every configuration key, the full
// timestamped history of its values including deletions, together with
// read/write/delete counters.
//
// The paper built the TTKV on top of Redis, mapping each key to a record
// holding the number of writes and deletions plus a list of historical
// values with timestamps, with a special value type representing deletions.
// This package implements that record schema natively, adds point-in-time
// reads (the primitive the repair tool's rollback search is built on), and
// provides append-only-file persistence (aof.go, segment.go, groupcommit.go)
// so a logging daemon can survive restarts.
//
// The store is sharded: keys are hash-partitioned across N lock-striped
// shards so writers to distinct keys never contend on a lock. Version
// sequence numbers remain store-wide and monotone, so point-in-time
// ordering semantics are identical to a single-shard store.
//
// Reads are lock-free (MVCC): every key's record publishes an immutable
// version-array snapshot through an atomic pointer, and a store-wide
// publication watermark tells readers which sequence numbers are fully
// inserted. Readers load the watermark once, load one pointer per record,
// and walk an immutable slice — no mutex, no spinning, which is what makes
// read interception effectively free (the paper's viability requirement
// for logging tens of millions of reads per machine per day).
package ttkv

import (
	"errors"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Store errors.
var (
	ErrNoKey     = errors.New("ttkv: no such key")
	ErrZeroTime  = errors.New("ttkv: zero timestamp")
	ErrEmptyKey  = errors.New("ttkv: empty key")
	ErrNoVersion = errors.New("ttkv: no version at or before requested time")
	ErrOversize  = errors.New("ttkv: key or value exceeds MaxStringLen")
)

// MaxStringLen bounds keys and values (it matches the wire protocol's
// bulk-string limit). Enforcing it on the write path keeps the AOF
// replayable: the replay side rejects longer strings as corruption.
const MaxStringLen = 8 << 20

// Version is one entry in a key's value history. Deleted versions are the
// paper's "special type of value ... used to represent deletions", kept in
// the history like any other value.
type Version struct {
	Time    time.Time
	Value   string
	Deleted bool
	// Seq is a store-wide monotone sequence number that orders versions
	// carrying identical timestamps (second-granularity traces make those
	// common).
	Seq uint64
}

// recordState is one immutable published snapshot of a key's record: the
// paper's per-key schema (write/delete counts plus the chronological value
// history). A state is never mutated after publication; writers build a
// successor and swap the record's pointer, so a reader that loaded the
// pointer owns a consistent view for as long as it keeps it.
type recordState struct {
	versions []Version
	writes   int
	deletes  int
}

// record is a key's mutable cell: the atomically published state plus the
// read counter, which stays a plain atomic because read counting must not
// write-share the version history.
type record struct {
	state atomic.Pointer[recordState]
	reads atomic.Uint64
}

// newRecord returns a record published with an empty state.
func newRecord() *record {
	r := &record{}
	r.state.Store(&recordState{})
	return r
}

// shard is one lock stripe. The mutex serializes writers only; readers go
// through the atomically published map and record states. The map itself
// is copy-on-write: inserting a new key swaps in a fresh map, so readers
// never observe a map mid-insert.
type shard struct {
	mu      sync.Mutex                         // serializes writers; readers never take it
	records atomic.Pointer[map[string]*record] // copy-on-write on new-key insert
	writes  atomic.Uint64
	deletes atomic.Uint64
	reads   atomic.Uint64
	// pad spaces shards at least a cache line apart so one shard's lock
	// traffic does not false-share with its neighbors.
	_ [64]byte
}

// load returns the shard's current key map. The map is immutable once
// published; records inside it publish their own states.
func (sh *shard) load() map[string]*record { return *sh.records.Load() }

// DefaultShards is the shard count used by New. It is a modest power of
// two: enough stripes that GOMAXPROCS writers rarely collide, small enough
// that iteration (Keys, Stats, snapshots) stays cheap.
const DefaultShards = 16

// Store is an in-memory TTKV. It is safe for concurrent use. The zero
// value is not usable; construct with New or NewSharded.
type Store struct {
	shards   []shard
	mask     uint64 // len(shards)-1; len is a power of two
	seq      atomic.Uint64
	pub      publisher                   // publication watermark for lock-free readers
	sink     atomic.Pointer[sinkBox]     // optional persistence; see aof.go
	observer atomic.Pointer[observerBox] // optional analytics hook
}

// publisher tracks which minted sequence numbers have finished inserting.
// Minting and inserting are two steps (the sink mints under its own lock,
// the insert happens under the shard lock, publication is the final
// pointer swap), so at any instant some minted sequence numbers are not
// yet readable. The watermark advances only contiguously: everything at or
// below it is fully published. Readers load it once per operation and
// ignore versions above it — which is also what makes a contiguous batch
// (a cluster revert) become visible in one atomic step: the watermark
// jumps across the whole batch in a single store.
type publisher struct {
	// visible is the watermark. It is written only under mu, in one atomic
	// store per advance, and read lock-free by every reader.
	visible atomic.Uint64
	mu      sync.Mutex
	cond    *sync.Cond
	// done holds finished publication runs that cannot advance the
	// watermark yet because a lower sequence number is still in flight:
	// first sequence of the run -> last sequence of the run.
	done map[uint64]uint64
	// resets counts Reset calls, so a writer waiting for its own
	// publication cannot hang across a concurrent Reset (which rewinds
	// the sequence space out from under it).
	resets uint64
}

func (p *publisher) init() {
	p.cond = sync.NewCond(&p.mu)
	p.done = make(map[uint64]uint64)
}

// advanceLocked folds every run that now touches the watermark into it.
// Caller holds p.mu.
func (p *publisher) advanceLocked() {
	v := p.visible.Load()
	advanced := false
	for {
		last, ok := p.done[v+1]
		if !ok {
			break
		}
		delete(p.done, v+1)
		v = last
		advanced = true
	}
	if advanced {
		p.visible.Store(v)
		p.cond.Broadcast()
	}
}

// completeRange marks the contiguous run [first, last] fully inserted and
// blocks until the watermark covers it, so a writer that returns has
// read-your-writes: its own mutation is already visible to lock-free
// readers. The wait is short by construction — between minting and
// completing there are only in-memory inserts, never I/O.
func (p *publisher) completeRange(first, last uint64) {
	p.mu.Lock()
	p.done[first] = last
	p.advanceLocked()
	r0 := p.resets
	for p.visible.Load() < last && p.resets == r0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// completeSeqs is completeRange for a strictly ascending (possibly gapped)
// sequence list: the list is coalesced into contiguous runs first.
func (p *publisher) completeSeqs(seqs []uint64) {
	if len(seqs) == 0 {
		return
	}
	p.mu.Lock()
	first, last := seqs[0], seqs[0]
	for _, q := range seqs[1:] {
		if q == last+1 {
			last = q
			continue
		}
		p.done[first] = last
		first, last = q, q
	}
	p.done[first] = last
	p.advanceLocked()
	r0 := p.resets
	for p.visible.Load() < last && p.resets == r0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// advanceTo jump-advances the watermark (replica replay and segment
// replay, where one applier owns the whole sequence space and gaps cannot
// exist below what it has applied).
func (p *publisher) advanceTo(seq uint64) {
	p.mu.Lock()
	if p.visible.Load() < seq {
		p.visible.Store(seq)
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// reset rewinds the publisher for Store.Reset and wakes every waiter.
func (p *publisher) reset() {
	p.mu.Lock()
	p.done = make(map[uint64]uint64)
	p.visible.Store(0)
	p.resets++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// waitVisible blocks until every version with sequence number at or below
// upTo is published, and reports whether that was reached. It returns
// false when the store can no longer get there: the sequence counter sits
// below upTo (a bound from a different sequence incarnation, or a Reset
// rewound the space mid-wait).
func (s *Store) waitVisible(upTo uint64) bool {
	if s.pub.visible.Load() >= upTo {
		return true
	}
	s.pub.mu.Lock()
	defer s.pub.mu.Unlock()
	for s.pub.visible.Load() < upTo {
		if s.seq.Load() < upTo {
			return false
		}
		s.pub.cond.Wait()
	}
	return true
}

// sinkBox wraps the persistence interface so it can live in an
// atomic.Pointer (interfaces cannot).
type sinkBox struct{ sink aofSink }

// StatsObserver receives every successful mutation of the store, the hook
// the streaming analytics engine (core.Engine) feeds from. Implementations
// must be safe for concurrent use: the store invokes the observer from
// whichever goroutine performed the write, after releasing the shard lock,
// so calls from writers on different shards overlap and same-instant
// writes to different keys may be observed slightly out of order (the
// analytics engine's reorder horizon absorbs this; grouping follows the
// mutation timestamps, not observation order).
type StatsObserver interface {
	//ocasta:nolock
	ObserveWrite(key string, t time.Time, deleted bool)
}

// observerBox wraps the observer interface so it can live in an
// atomic.Pointer.
type observerBox struct{ obs StatsObserver }

// SetStatsObserver installs (or, with nil, removes) the store's mutation
// observer. Attach it before replaying an AOF to feed historical writes
// through the same hook (or use ObserveHistory after a parallel segment
// replay).
func (s *Store) SetStatsObserver(obs StatsObserver) {
	if obs == nil {
		s.observer.Store(nil)
		return
	}
	s.observer.Store(&observerBox{obs: obs})
}

// statsObserver returns the current observer, nil if none.
func (s *Store) statsObserver() StatsObserver {
	if box := s.observer.Load(); box != nil {
		return box.obs
	}
	return nil
}

// ObserveHistory replays every version already in the store, in global
// sequence order, through obs. It is the analytics bridge for parallel
// segment replay, which (unlike single-pass AOF replay) bypasses the
// per-write observer hook; call it once after replay, before serving
// writes.
func (s *Store) ObserveHistory(obs StatsObserver) {
	if obs == nil {
		return
	}
	for _, e := range s.snapshotEntries(0) {
		obs.ObserveWrite(e.key, e.v.Time, e.v.Deleted)
	}
}

// New returns an empty store with DefaultShards shards.
func New() *Store { return NewSharded(DefaultShards) }

// NewSharded returns an empty store striped across n shards. n is rounded
// up to the next power of two; n <= 1 yields a single-shard store, which
// behaves exactly like the historical single-lock implementation.
func NewSharded(n int) *Store {
	if n < 1 {
		n = 1
	}
	n = 1 << bits.Len(uint(n-1)) // next power of two (n itself if already one)
	s := &Store{shards: make([]shard, n), mask: uint64(n - 1)}
	for i := range s.shards {
		m := make(map[string]*record)
		s.shards[i].records.Store(&m)
	}
	s.pub.init()
	return s
}

// NumShards reports the store's shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// shardIndex hashes key (FNV-1a) onto a shard index.
func (s *Store) shardIndex(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h & s.mask
}

// shardFor hashes key onto its shard.
func (s *Store) shardFor(key string) *shard {
	return &s.shards[s.shardIndex(key)]
}

// lockShardsFor write-locks every shard holding any of keys, each exactly
// once, in ascending index order — the one ordering every multi-shard
// locker (RevertCluster, ApplyReplicated) uses, so they can never
// deadlock against each other. The returned unlock is idempotent, so it
// can both be deferred and called early (observers run outside the
// locks by contract).
//
//ocasta:lockfn
func (s *Store) lockShardsFor(keys func(yield func(string) bool)) (unlock func()) {
	idxSet := make(map[uint64]struct{})
	keys(func(k string) bool {
		idxSet[s.shardIndex(k)] = struct{}{}
		return true
	})
	idxs := make([]uint64, 0, len(idxSet))
	for i := range idxSet {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	for _, i := range idxs {
		s.shards[i].mu.Lock()
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			for _, i := range idxs {
				s.shards[i].mu.Unlock()
			}
		})
	}
}

// Set records a write of value to key at time t. Timestamps may arrive out
// of order (error injection deliberately writes into the past); the version
// is inserted at its chronological position, after any existing version
// with the same timestamp.
func (s *Store) Set(key, value string, t time.Time) error {
	_, err := s.apply(key, value, t, false)
	return err
}

// SetWithSeq is Set additionally returning the sequence number minted for
// the write, so a caller that must wait on *this* write's replication (the
// wire server's semi-sync gate) has its exact watermark instead of a
// store-wide one inflated by concurrent writers.
func (s *Store) SetWithSeq(key, value string, t time.Time) (uint64, error) {
	return s.apply(key, value, t, false)
}

// Delete records a deletion of key at time t. The deletion is a tombstone
// version in the history; prior values remain reachable via GetAt.
func (s *Store) Delete(key string, t time.Time) error {
	_, err := s.apply(key, "", t, true)
	return err
}

// DeleteWithSeq is Delete additionally returning the minted sequence
// number (see SetWithSeq).
func (s *Store) DeleteWithSeq(key string, t time.Time) (uint64, error) {
	return s.apply(key, "", t, true)
}

func (s *Store) apply(key, value string, t time.Time, deleted bool) (uint64, error) {
	if key == "" {
		return 0, ErrEmptyKey
	}
	if t.IsZero() {
		return 0, ErrZeroTime
	}
	if len(key) > MaxStringLen || len(value) > MaxStringLen {
		return 0, ErrOversize
	}
	if err := s.waitSinkCapacity(); err != nil {
		return 0, err
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	seq, err := s.applyLocked(sh, key, value, t, deleted)
	sh.mu.Unlock()
	if err != nil {
		return 0, err
	}
	// Publish before observing: anything the observer triggers already
	// sees the write.
	s.pub.completeRange(seq, seq)
	if obs := s.statsObserver(); obs != nil {
		obs.ObserveWrite(key, t, deleted)
	}
	return seq, nil
}

// capacityWaiter is the optional backpressure gate a persistence sink can
// expose (GroupCommit does). It is consulted before any shard lock is
// taken, so a stalled disk pauses writers without blocking readers.
type capacityWaiter interface{ waitCapacity() error }

func (s *Store) waitSinkCapacity() error {
	if box := s.sink.Load(); box != nil {
		if cw, ok := box.sink.(capacityWaiter); ok {
			return cw.waitCapacity()
		}
	}
	return nil
}

// applyLocked performs one mutation with sh.mu already held and returns
// the minted sequence number. The persistence enqueue happens under the
// shard lock so the AOF records same-key mutations in exactly their
// in-memory insertion order (the group-commit sink only copies bytes
// here; disk I/O happens on its own goroutine). The enqueue runs first:
// if persistence rejects the record (sticky flush error, closed
// appender), the in-memory store stays untouched, so memory and log
// cannot diverge. The reverse crash window — record in the AOF, process
// dies before the insert — only makes replay a superset, which is the
// correct durability direction. The caller must complete publication
// (s.pub) after releasing the shard lock.
func (s *Store) applyLocked(sh *shard, key, value string, t time.Time, deleted bool) (uint64, error) {
	seq, err := s.sinkAppend(key, value, t, deleted)
	if err != nil {
		return 0, err
	}
	return s.insertLocked(sh, key, value, t, deleted, seq), nil
}

// seqSink is the optional sink extension a replication log implements: the
// sink mints the record's store-wide sequence number itself, under its own
// lock, so the replication stream, the AOF byte order, and the sequence
// order all coincide. A seq of 0 is never minted.
type seqSink interface {
	appendSeq(key, value string, t time.Time, deleted bool) (uint64, error)
}

// sinkAppend enqueues one record to the persistence sink, if attached. A
// seq-assigning sink returns the sequence number it minted for the record;
// plain sinks return 0 and the caller mints from the store counter.
func (s *Store) sinkAppend(key, value string, t time.Time, deleted bool) (uint64, error) {
	if box := s.sink.Load(); box != nil {
		if ss, ok := box.sink.(seqSink); ok {
			return ss.appendSeq(key, value, t, deleted)
		}
		return 0, box.sink.append(key, value, t, deleted)
	}
	return 0, nil
}

// insertLocked performs the in-memory half of one mutation with sh.mu
// held: version insert plus counters, returning the sequence number used.
// seq is the sink-assigned sequence number, or 0 to mint one from the
// store counter. The new version is published immediately (readers with a
// fresh state pointer can see it) but only becomes *visible* once the
// publication watermark covers it — the caller completes that after
// unlocking.
func (s *Store) insertLocked(sh *shard, key, value string, t time.Time, deleted bool, seq uint64) uint64 {
	if seq == 0 {
		seq = s.seq.Add(1)
	}
	m := sh.load()
	rec, ok := m[key]
	if !ok {
		// New key: copy-on-write map swap, so lock-free readers never see
		// a map mutation in flight.
		rec = newRecord()
		nm := make(map[string]*record, len(m)+1)
		for k, r := range m {
			nm[k] = r
		}
		nm[key] = rec
		sh.records.Store(&nm)
	}
	st := rec.state.Load()
	rec.state.Store(st.insert(Version{Time: t, Value: value, Deleted: deleted, Seq: seq}))
	if deleted {
		sh.deletes.Add(1)
	} else {
		sh.writes.Add(1)
	}
	return seq
}

// versionSlot returns the index at which a version with time t and
// sequence number seq belongs: after every chronologically earlier
// version and, among equal timestamps, after every lower sequence number.
// Live writes always carry the record's highest sequence number (minting
// and inserting happen under the same shard lock), so they land after any
// equal-time version exactly as before; explicit-sequence insertion
// (parallel segment replay, replicated chunks) becomes order-independent.
func versionSlot(vs []Version, t time.Time, seq uint64) int {
	return sort.Search(len(vs), func(i int) bool {
		if vs[i].Time.After(t) {
			return true
		}
		return vs[i].Time.Equal(t) && vs[i].Seq > seq
	})
}

// insert returns the successor state with v added at its chronological
// position. The returned state shares the old backing array only for a
// pure tail append, which is safe to publish: readers holding the old
// state's shorter slice header can never index the appended element.
// Mid-slice inserts copy to a fresh array, so published elements are
// never moved or overwritten in place.
func (st *recordState) insert(v Version) *recordState {
	ns := &recordState{writes: st.writes, deletes: st.deletes}
	if v.Deleted {
		ns.deletes++
	} else {
		ns.writes++
	}
	vs := st.versions
	if i := versionSlot(vs, v.Time, v.Seq); i == len(vs) {
		ns.versions = append(vs, v)
	} else {
		nv := make([]Version, len(vs)+1)
		copy(nv, vs[:i])
		nv[i] = v
		copy(nv[i+1:], vs[i:])
		ns.versions = nv
	}
	return ns
}

// Get returns the current value of key: the newest visible version, if it
// is not a deletion. ok is false when the key was never written or its
// latest version is a deletion. Get counts as a read (a miss is still
// application read traffic). Lock-free.
func (s *Store) Get(key string) (value string, ok bool) {
	sh := s.shardFor(key)
	bound := s.pub.visible.Load()
	rec := sh.load()[key]
	sh.reads.Add(1)
	if rec == nil {
		return "", false
	}
	rec.reads.Add(1)
	vs := rec.state.Load().versions
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].Seq > bound {
			continue
		}
		if vs[i].Deleted {
			return "", false
		}
		return vs[i].Value, true
	}
	return "", false
}

// GetAt returns the version of key in effect at time t: the latest visible
// version with Time <= t. It does not count as a read (it is a
// recovery-path operation, not application activity). Lock-free.
func (s *Store) GetAt(key string, t time.Time) (Version, error) {
	sh := s.shardFor(key)
	bound := s.pub.visible.Load()
	rec := sh.load()[key]
	if rec == nil {
		return Version{}, ErrNoKey
	}
	vs := rec.state.Load().versions
	i := sort.Search(len(vs), func(i int) bool {
		return vs[i].Time.After(t)
	})
	// A version written after the bound may sit anywhere at or before i
	// (out-of-order timestamps), so scan backwards to the newest visible
	// one.
	for i--; i >= 0; i-- {
		if vs[i].Seq <= bound {
			return vs[i], nil
		}
	}
	return Version{}, ErrNoVersion
}

// History returns a copy of key's visible version history, oldest first.
// Lock-free.
func (s *Store) History(key string) ([]Version, error) {
	sh := s.shardFor(key)
	bound := s.pub.visible.Load()
	rec := sh.load()[key]
	if rec == nil {
		return nil, ErrNoKey
	}
	vs := rec.state.Load().versions
	out := make([]Version, 0, len(vs))
	for i := range vs {
		if vs[i].Seq <= bound {
			out = append(out, vs[i])
		}
	}
	if len(out) == 0 {
		return nil, ErrNoKey
	}
	return out, nil
}

// Latest returns the newest visible version of key. Lock-free.
func (s *Store) Latest(key string) (Version, error) {
	sh := s.shardFor(key)
	bound := s.pub.visible.Load()
	rec := sh.load()[key]
	if rec == nil {
		return Version{}, ErrNoKey
	}
	vs := rec.state.Load().versions
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].Seq <= bound {
			return vs[i], nil
		}
	}
	return Version{}, ErrNoKey
}

// Keys returns all keys with at least one visible version, sorted.
// Lock-free.
func (s *Store) Keys() []string {
	bound := s.pub.visible.Load()
	var keys []string
	for i := range s.shards {
		for k, rec := range s.shards[i].load() {
			if recVisible(rec, bound) {
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// recVisible reports whether rec has any version at or below bound. The
// scan short-circuits on the first hit, which for a live key is the first
// element.
func recVisible(rec *record, bound uint64) bool {
	vs := rec.state.Load().versions
	for i := range vs {
		if vs[i].Seq <= bound {
			return true
		}
	}
	return false
}

// Len returns the number of keys with at least one visible version.
// Lock-free.
func (s *Store) Len() int {
	bound := s.pub.visible.Load()
	n := 0
	for i := range s.shards {
		for _, rec := range s.shards[i].load() {
			if recVisible(rec, bound) {
				n++
			}
		}
	}
	return n
}

// WriteCount returns how many non-delete writes key received. The count
// may lead visibility by the writes currently in flight (it tracks the
// published state, not the watermark). Lock-free.
func (s *Store) WriteCount(key string) int {
	if rec := s.shardFor(key).load()[key]; rec != nil {
		return rec.state.Load().writes
	}
	return 0
}

// DeleteCount returns how many deletions key received. Lock-free.
func (s *Store) DeleteCount(key string) int {
	if rec := s.shardFor(key).load()[key]; rec != nil {
		return rec.state.Load().deletes
	}
	return 0
}

// ModCount returns writes + deletions of key: its total number of recorded
// modifications, the quantity Ocasta's repair tool sorts clusters by.
// Lock-free.
func (s *Store) ModCount(key string) int {
	if rec := s.shardFor(key).load()[key]; rec != nil {
		st := rec.state.Load()
		return st.writes + st.deletes
	}
	return 0
}

// Stats summarizes the store, including the approximate in-memory size of
// all histories (the "TTKV size" column of Table I).
type Stats struct {
	Keys        int
	Writes      uint64
	Deletes     uint64
	Reads       uint64
	Versions    int
	ApproxBytes int64
}

// versionOverhead approximates the fixed per-version bookkeeping cost
// (time, sequence number, flags, slice header share).
const versionOverhead = 40

// keyOverhead approximates the fixed per-key bookkeeping cost.
const keyOverhead = 64

// Stats returns a snapshot of the store's counters and size, lock-free.
// Under concurrent writes the snapshot is approximate: each record's
// published state is internally consistent, but counters across records
// are read at slightly different instants.
func (s *Store) Stats() Stats {
	var st Stats
	for i := range s.shards {
		sh := &s.shards[i]
		m := sh.load()
		st.Keys += len(m)
		st.Writes += sh.writes.Load()
		st.Deletes += sh.deletes.Load()
		st.Reads += sh.reads.Load()
		for k, rec := range m {
			versions := rec.state.Load().versions
			st.Versions += len(versions)
			st.ApproxBytes += int64(len(k)) + keyOverhead
			for i := range versions {
				st.ApproxBytes += int64(len(versions[i].Value)) + versionOverhead
			}
		}
	}
	return st
}

// CountRead records an application read of key without fetching the value;
// loggers use it when they observe read traffic they do not need the result
// of. Like Get, a read of a never-written key still counts globally (it is
// real application read traffic). Lock-free.
func (s *Store) CountRead(key string) {
	sh := s.shardFor(key)
	if rec := sh.load()[key]; rec != nil {
		rec.reads.Add(1)
	}
	sh.reads.Add(1)
}

// Clone returns a deep copy of the store's contents (counters and shard
// layout included, AOF binding excluded). Used by tests and by sandboxed
// trials that need a writable copy. The clone's watermark covers
// everything copied: versions a concurrent writer had published but not
// yet completed become immediately visible in the clone.
func (s *Store) Clone() *Store {
	out := NewSharded(len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		osh := &out.shards[i]
		osh.writes.Store(sh.writes.Load())
		osh.deletes.Store(sh.deletes.Load())
		osh.reads.Store(sh.reads.Load())
		m := sh.load()
		nm := make(map[string]*record, len(m))
		for k, rec := range m {
			st := rec.state.Load()
			ns := &recordState{
				versions: make([]Version, len(st.versions)),
				writes:   st.writes,
				deletes:  st.deletes,
			}
			copy(ns.versions, st.versions)
			nr := &record{}
			nr.state.Store(ns)
			nr.reads.Store(rec.reads.Load())
			nm[k] = nr
		}
		osh.records.Store(&nm)
	}
	// Load seq only after every shard is copied: a concurrent writer may
	// have minted sequence numbers we did not copy (a harmless gap), but
	// loading first could hand the clone a counter below copied versions,
	// making later clone writes mint duplicate Seqs.
	seq := s.seq.Load()
	out.seq.Store(seq)
	out.pub.advanceTo(seq)
	return out
}

// ModTimes returns every distinct visible modification timestamp of the
// given keys, newest first. The repair tool uses this to enumerate the
// historical versions of a cluster: each timestamp at which any member key
// changed is one candidate rollback point. Timestamps are deduplicated,
// compared, and sorted on wall-clock nanoseconds (monotonic readings are
// stripped), so ordering can never disagree with deduplication for
// time.Now()-stamped writes. Lock-free.
func (s *Store) ModTimes(keys []string) []time.Time {
	bound := s.pub.visible.Load()
	seen := make(map[int64]struct{})
	var times []time.Time
	for _, k := range keys {
		rec := s.shardFor(k).load()[k]
		if rec == nil {
			continue
		}
		vs := rec.state.Load().versions
		for i := range vs {
			if vs[i].Seq > bound {
				continue
			}
			ns := vs[i].Time.UnixNano()
			if _, dup := seen[ns]; !dup {
				seen[ns] = struct{}{}
				times = append(times, vs[i].Time.Round(0))
			}
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i].UnixNano() > times[j].UnixNano() })
	return times
}
