package ttkv

import (
	"fmt"
	"testing"
	"time"
)

// TestCRC16Vectors pins the CRC16 variant to the Redis Cluster one via
// the standard XMODEM check value and two published key/slot vectors.
func TestCRC16Vectors(t *testing.T) {
	if got := crc16("123456789"); got != 0x31C3 {
		t.Fatalf("crc16(123456789) = %#04x, want 0x31c3", got)
	}
	if got := crc16(""); got != 0 {
		t.Fatalf("crc16(\"\") = %#04x, want 0", got)
	}
	for _, tc := range []struct {
		key  string
		slot int
	}{
		{"foo", 12182},
		{"bar", 5061},
		{"123456789", 12739}, // 0x31C3 % 16384
	} {
		if got := KeySlot(tc.key, DefaultSlotCount); got != tc.slot {
			t.Fatalf("KeySlot(%q) = %d, want %d", tc.key, got, tc.slot)
		}
	}
}

// TestKeySlotHashTags checks the Redis hash-tag rules: a non-empty {...}
// section hashes alone; empty or unterminated braces hash the whole key.
func TestKeySlotHashTags(t *testing.T) {
	if a, b := KeySlot("user:{42}:name", 0), KeySlot("user:{42}:mail", 0); a != b {
		t.Fatalf("hash-tagged keys landed on different slots: %d vs %d", a, b)
	}
	if got, want := KeySlot("{tag}suffix", 0), KeySlot("tag", 0); got != want {
		t.Fatalf("KeySlot({tag}suffix) = %d, want slot of \"tag\" = %d", got, want)
	}
	// Empty tag "{}" and unterminated "{" hash the full key.
	for _, k := range []string{"{}full", "{unterminated"} {
		if got, want := KeySlot(k, 0), int(crc16(k))%DefaultSlotCount; got != want {
			t.Fatalf("KeySlot(%q) = %d, want whole-key slot %d", k, got, want)
		}
	}
	// Only the first '{' opens a tag.
	if got, want := KeySlot("a{b}{c}", 0), KeySlot("x{b}", 0); got != want {
		t.Fatalf("first-brace rule violated: %d vs %d", got, want)
	}
}

// TestKeySlotRange checks every key lands inside [0, slots) for odd slot
// counts too.
func TestKeySlotRange(t *testing.T) {
	for _, slots := range []int{1, 7, 64, DefaultSlotCount} {
		for i := 0; i < 1000; i++ {
			k := fmt.Sprintf("key-%d", i)
			if s := KeySlot(k, slots); s < 0 || s >= slots {
				t.Fatalf("KeySlot(%q, %d) = %d out of range", k, slots, s)
			}
		}
	}
}

// TestSlotSnapshot checks the slot-scoped export returns exactly the
// versions of keys in the slot, seq-ordered and range-bounded, and that
// the union over all slots is the full ReplSnapshot.
func TestSlotSnapshot(t *testing.T) {
	const slots = 16
	s := NewSharded(8)
	base := time.Unix(0, 0)
	var n uint64
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i%50)
		if i%7 == 3 {
			if err := s.Delete(k, base.Add(time.Duration(i)*time.Millisecond)); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := s.Set(k, fmt.Sprintf("v%d", i), base.Add(time.Duration(i)*time.Millisecond)); err != nil {
				t.Fatal(err)
			}
		}
		n++
	}

	full := s.ReplSnapshot(0, n)
	if len(full) != int(n) {
		t.Fatalf("ReplSnapshot returned %d records, want %d", len(full), n)
	}
	var union int
	for slot := 0; slot < slots; slot++ {
		recs := s.SlotSnapshot(slot, slots, 0, n)
		union += len(recs)
		for i, r := range recs {
			if KeySlot(r.Key, slots) != slot {
				t.Fatalf("slot %d snapshot contains key %q (slot %d)", slot, r.Key, KeySlot(r.Key, slots))
			}
			if i > 0 && recs[i-1].Seq >= r.Seq {
				t.Fatalf("slot %d snapshot not seq-ascending at %d", slot, i)
			}
		}
		// Range bounds: a mid-range export must be the tail of the full one.
		mid := recs[:0:0]
		for _, r := range recs {
			if r.Seq > n/2 {
				mid = append(mid, r)
			}
		}
		got := s.SlotSnapshot(slot, slots, n/2, n)
		if len(got) != len(mid) {
			t.Fatalf("slot %d: range export returned %d records, want %d", slot, len(got), len(mid))
		}
	}
	if union != len(full) {
		t.Fatalf("slot snapshots union %d records, full snapshot has %d", union, len(full))
	}
}

// TestSetWithSeqReturnsMintedSeq checks the seq-returning write variants
// hand back exactly the version's sequence number.
func TestSetWithSeqReturnsMintedSeq(t *testing.T) {
	s := New()
	base := time.Unix(0, 0)
	seq1, err := s.SetWithSeq("a", "1", base.Add(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := s.DeleteWithSeq("a", base.Add(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if seq1 != 1 || seq2 != 2 {
		t.Fatalf("minted seqs = %d, %d, want 1, 2", seq1, seq2)
	}
	applied, last, err := s.ApplyWithSeq([]Mutation{
		{Key: "b", Value: "1", Time: base.Add(3 * time.Second)},
		{Key: "c", Value: "2", Time: base.Add(4 * time.Second)},
	})
	if err != nil || applied != 2 {
		t.Fatalf("ApplyWithSeq = (%d, %v), want (2, nil)", applied, err)
	}
	if last != 4 {
		t.Fatalf("ApplyWithSeq last seq = %d, want 4", last)
	}
	recs := s.ReplSnapshot(0, 4)
	for _, r := range recs {
		switch {
		case r.Key == "a" && r.Deleted && r.Seq != seq2:
			t.Fatalf("tombstone seq %d, want %d", r.Seq, seq2)
		case r.Key == "a" && !r.Deleted && r.Seq != seq1:
			t.Fatalf("version seq %d, want %d", r.Seq, seq1)
		}
	}
}
