package ttkv

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Benchmarks behind BENCH_store.json: the lock-free MVCC read path
// against a faithful reproduction of the pre-MVCC locked read path, and
// startup replay across log layouts. Regenerate the JSON with
// scripts/bench_store.sh.

// lockedStore reproduces the store's pre-MVCC read path — per-shard
// RWMutex around a map of version slices — as the baseline the lock-free
// readers are measured against.
type lockedStore struct {
	shards []lockedShard
	mask   uint64
	seq    atomic.Uint64
}

type lockedRecord struct {
	reads    atomic.Uint64
	versions []Version
}

type lockedShard struct {
	mu    sync.RWMutex
	recs  map[string]*lockedRecord
	reads atomic.Uint64
	_     [24]byte // keep neighboring shard locks off one cache line
}

func newLockedStore(n int) *lockedStore {
	ls := &lockedStore{shards: make([]lockedShard, n), mask: uint64(n - 1)}
	for i := range ls.shards {
		ls.shards[i].recs = make(map[string]*lockedRecord)
	}
	return ls
}

func (ls *lockedStore) shardFor(key string) *lockedShard {
	// Same FNV-1a stripe selection as the real store.
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &ls.shards[h&ls.mask]
}

func (ls *lockedStore) setLocked(sh *lockedShard, key, value string, t time.Time, deleted bool, seq uint64) {
	rec, ok := sh.recs[key]
	if !ok {
		rec = &lockedRecord{}
		sh.recs[key] = rec
	}
	rec.versions = append(rec.versions, Version{Time: t, Value: value, Deleted: deleted, Seq: seq})
}

func (ls *lockedStore) Set(key, value string, t time.Time) {
	sh := ls.shardFor(key)
	sh.mu.Lock()
	ls.setLocked(sh, key, value, t, false, ls.seq.Add(1))
	sh.mu.Unlock()
}

func (ls *lockedStore) Delete(key string, t time.Time) {
	sh := ls.shardFor(key)
	sh.mu.Lock()
	ls.setLocked(sh, key, "", t, true, ls.seq.Add(1))
	sh.mu.Unlock()
}

// ApplyBatch mirrors Store.Apply's locking: consecutive same-shard
// mutations are appended under one write-lock acquisition.
func (ls *lockedStore) ApplyBatch(muts []Mutation) {
	for i := 0; i < len(muts); {
		sh := ls.shardFor(muts[i].Key)
		sh.mu.Lock()
		for ; i < len(muts) && ls.shardFor(muts[i].Key) == sh; i++ {
			ls.setLocked(sh, muts[i].Key, muts[i].Value, muts[i].Time, muts[i].Delete, ls.seq.Add(1))
		}
		sh.mu.Unlock()
	}
}

// RevertCluster mirrors the pre-MVCC Store.RevertCluster locking
// discipline: every involved shard is write-locked at once for the whole
// plan-and-apply batch, so the revert is atomic against readers — by
// blocking them.
func (ls *lockedStore) RevertCluster(keys []string, fixAt, applyAt time.Time) {
	locked := make(map[*lockedShard]bool, len(ls.shards))
	for i := range ls.shards {
		sh := &ls.shards[i]
		for _, k := range keys {
			if ls.shardFor(k) == sh {
				locked[sh] = true
				//ocasta:allow lockorder the outer loop walks ls.shards by ascending index, so acquisition order is fixed
				sh.mu.Lock()
				break
			}
		}
	}
	for _, k := range keys {
		sh := ls.shardFor(k)
		rec := sh.recs[k]
		if rec == nil {
			continue
		}
		// The version in effect at fixAt: newest with Time <= fixAt,
		// binary-searched like the real GetAt.
		var val string
		haveTarget, liveTarget := false, false
		if i := sort.Search(len(rec.versions), func(i int) bool {
			return rec.versions[i].Time.After(fixAt)
		}); i > 0 {
			haveTarget = true
			liveTarget = !rec.versions[i-1].Deleted
			val = rec.versions[i-1].Value
		}
		switch {
		case !haveTarget || !liveTarget:
			// Dead at the fix point: tombstone the key if it is currently
			// live, otherwise there is nothing to undo — the same skip the
			// real RevertCluster takes.
			if n := len(rec.versions); n > 0 && !rec.versions[n-1].Deleted {
				rec.versions = append(rec.versions, Version{Time: applyAt, Deleted: true, Seq: ls.seq.Add(1)})
			}
		default:
			rec.versions = append(rec.versions, Version{Time: applyAt, Value: val, Seq: ls.seq.Add(1)})
		}
	}
	for sh := range locked {
		sh.mu.Unlock()
	}
}

// Get matches the pre-MVCC read path exactly: shared-lock the shard,
// count the read, scan the version slice from the tail.
func (ls *lockedStore) Get(key string) (string, bool) {
	sh := ls.shardFor(key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec := sh.recs[key]
	sh.reads.Add(1)
	if rec == nil {
		return "", false
	}
	rec.reads.Add(1)
	vs := rec.versions
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].Deleted {
			return "", false
		}
		return vs[i].Value, true
	}
	return "", false
}

const (
	benchKeys     = 4096
	benchVersions = 4
)

var benchBase = time.Unix(1_700_000_000, 0).UTC()

func benchKeyName(i int) string { return fmt.Sprintf("/bench/app%d/key%d", i%32, i) }

// benchBatch builds one generation of the background write batch.
func benchBatch(batchKeys []string, gen int) []Mutation {
	at := benchBase.Add(time.Duration(benchVersions+gen) * time.Second)
	muts := make([]Mutation, len(batchKeys))
	for i, k := range batchKeys {
		muts[i] = Mutation{Key: k, Value: "w", Time: at}
	}
	return muts
}

// BenchmarkStoreRead measures Get throughput under reader concurrency
// while a background writer runs the paper's repair loop against a
// 512-key cluster: dirty a window, then revert-sweep the cluster clean.
// impl=locked reproduces the pre-MVCC RWMutex read path (readers block
// for every sweep's all-shard lock hold); impl=mvcc is the lock-free
// store (readers never block).
func BenchmarkStoreRead(b *testing.B) {
	for _, impl := range []string{"locked", "mvcc"} {
		for _, g := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("impl=%s/goroutines=%d", impl, g), func(b *testing.B) {
				keys := make([]string, benchKeys)
				for i := range keys {
					keys[i] = benchKeyName(i)
				}
				// The repair cluster: every 8th key, grouped by shard. The
				// cluster is seeded tombstoned at fixAt, so a revert sweep
				// plans across all of it under every shard lock but appends
				// only for keys a dirty batch has re-livened since the last
				// sweep — lock-held time stays high while history growth
				// stays bounded.
				ref := NewSharded(16)
				batchKeys := make([]string, 0, benchKeys/8)
				for i := 0; i < benchKeys; i += 8 {
					batchKeys = append(batchKeys, keys[i])
				}
				sort.Slice(batchKeys, func(i, j int) bool {
					return ref.shardIndex(batchKeys[i]) < ref.shardIndex(batchKeys[j])
				})
				fixAt := benchBase.Add(time.Duration(benchVersions) * time.Second)
				const dirtyWindow = 64
				dirty := func(gen int) []string {
					start := (gen / 8 * dirtyWindow) % len(batchKeys)
					return batchKeys[start : start+dirtyWindow]
				}

				var get func(string) (string, bool)
				var applyBatch func(gen int)
				switch impl {
				case "locked":
					ls := newLockedStore(16)
					for v := 0; v < benchVersions; v++ {
						for i, k := range keys {
							ls.Set(k, fmt.Sprintf("v%d-%d", i, v), benchBase.Add(time.Duration(v)*time.Second))
						}
					}
					for _, k := range batchKeys {
						ls.Delete(k, fixAt)
					}
					get = ls.Get
					applyBatch = func(gen int) {
						if gen%8 == 1 {
							ls.ApplyBatch(benchBatch(dirty(gen), gen))
						} else {
							ls.RevertCluster(batchKeys, fixAt, benchBase.Add(time.Duration(benchVersions+gen)*time.Second))
						}
					}
				case "mvcc":
					s := NewSharded(16)
					for v := 0; v < benchVersions; v++ {
						for i, k := range keys {
							if err := s.Set(k, fmt.Sprintf("v%d-%d", i, v), benchBase.Add(time.Duration(v)*time.Second)); err != nil {
								b.Fatal(err)
							}
						}
					}
					for _, k := range batchKeys {
						if err := s.Delete(k, fixAt); err != nil {
							b.Fatal(err)
						}
					}
					get = s.Get
					applyBatch = func(gen int) {
						if gen%8 == 1 {
							if _, err := s.Apply(benchBatch(dirty(gen), gen)); err != nil {
								b.Error(err)
							}
						} else if _, err := s.RevertCluster(batchKeys, fixAt, benchBase.Add(time.Duration(benchVersions+gen)*time.Second)); err != nil {
							b.Error(err)
						}
					}
				}

				// The writer models a continuous repair loop: dirty a 64-key
				// window of the cluster, then revert-sweep the whole cluster
				// until it is clean again, back to back. It is one goroutine
				// in both implementations, so the scheduler offers it the
				// same CPU share either way; the only asymmetry is that
				// locked sweeps block readers and MVCC sweeps do not.
				stop := make(chan struct{})
				var writerWG sync.WaitGroup
				var gen atomic.Int64
				writerWG.Add(1)
				go func() {
					defer writerWG.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						applyBatch(int(gen.Add(1)))
					}
				}()

				var mu sync.Mutex
				var samples []time.Duration
				b.SetParallelism(g)
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := uint64(0x9e3779b97f4a7c15)
					local := make([]time.Duration, 0, 512)
					n := 0
					for pb.Next() {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						key := keys[rng%benchKeys]
						if n%128 == 0 {
							t0 := time.Now()
							get(key)
							local = append(local, time.Since(t0))
						} else {
							get(key)
						}
						n++
					}
					mu.Lock()
					samples = append(samples, local...)
					mu.Unlock()
				})
				b.StopTimer()
				close(stop)
				writerWG.Wait()
				if len(samples) > 0 {
					sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
					p99 := samples[len(samples)*99/100]
					b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
				}
			})
		}
	}
}

// buildFlatAOF writes n records through the normal append path into a
// single flat AOF and returns its path.
func buildFlatAOF(b *testing.B, dir string, n int) string {
	b.Helper()
	path := filepath.Join(dir, "bench.aof")
	s := New()
	aof, err := OpenAOFInto(path, s)
	if err != nil {
		b.Fatal(err)
	}
	gc := NewGroupCommit(aof, GroupCommitConfig{Fsync: FsyncNever})
	s.AttachGroupCommit(gc)
	fillBenchHistory(b, s, n)
	if err := gc.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

// buildSegmentDir writes n records through the normal append path into a
// segmented AOF directory and returns it.
func buildSegmentDir(b *testing.B, dir string, n int) string {
	b.Helper()
	segDir := filepath.Join(dir, "segs")
	s := New()
	sa, err := OpenSegmentedInto(segDir, s, SegmentedConfig{MaxSegmentBytes: 256 << 10})
	if err != nil {
		b.Fatal(err)
	}
	gc := NewGroupCommit(sa, GroupCommitConfig{Fsync: FsyncNever})
	s.AttachGroupCommit(gc)
	fillBenchHistory(b, s, n)
	if err := gc.Close(); err != nil {
		b.Fatal(err)
	}
	return segDir
}

func fillBenchHistory(b *testing.B, s *Store, n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		k := benchKeyName(i % benchKeys)
		if err := s.Set(k, fmt.Sprintf("value-%d", i), benchBase.Add(time.Duration(i)*time.Millisecond)); err != nil {
			b.Fatal(err)
		}
		// Periodic sync bounds group-commit batches so the segmented
		// writer actually rolls (a batch never splits across segments).
		if i%512 == 511 {
			if err := s.SyncAOF(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := s.SyncAOF(); err != nil {
		b.Fatal(err)
	}
}

var replaySizes = []int{20000, 80000}

// BenchmarkReplayFlat is the baseline startup cost: sequential replay of
// a single flat AOF, linear in total history.
func BenchmarkReplayFlat(b *testing.B) {
	for _, n := range replaySizes {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			path := buildFlatAOF(b, b.TempDir(), n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := NewSharded(16)
				if err := LoadAOFInto(path, s); err != nil {
					b.Fatal(err)
				}
				if got := s.CurrentSeq(); got != uint64(n) {
					b.Fatalf("replayed %d records, want %d", got, n)
				}
			}
		})
	}
}

// BenchmarkReplaySegmented replays a segmented directory: sealed
// segments fan out across the worker pool, so wall-clock cost is the
// per-worker share plus the active tail.
func BenchmarkReplaySegmented(b *testing.B) {
	for _, n := range replaySizes {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			segDir := buildSegmentDir(b, b.TempDir(), n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := NewSharded(16)
				sa, err := OpenSegmentedInto(segDir, s, SegmentedConfig{MaxSegmentBytes: 256 << 10})
				if err != nil {
					b.Fatal(err)
				}
				if got := s.CurrentSeq(); got != uint64(n) {
					b.Fatalf("replayed %d records, want %d", got, n)
				}
				if err := sa.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplaySegmentedCompacted replays after segment-level
// compaction with full retention dropped to the newest version per key:
// startup cost tracks the live keyspace, not the history length — the
// sub-linear curve in BENCH_store.json.
func BenchmarkReplaySegmentedCompacted(b *testing.B) {
	for _, n := range replaySizes {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			segDir := buildSegmentDir(b, b.TempDir(), n)
			cfg := SegmentedConfig{MaxSegmentBytes: 256 << 10}
			if err := CompactSegmentDir(segDir, 16, 1, cfg); err != nil {
				b.Fatal(err)
			}
			live := benchKeys
			if n < benchKeys {
				live = n
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := NewSharded(16)
				sa, err := OpenSegmentedInto(segDir, s, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if got := s.Len(); got != live {
					b.Fatalf("replayed %d keys, want %d", got, live)
				}
				if err := sa.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
