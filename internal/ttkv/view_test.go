package ttkv

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var vt0 = time.Date(2013, 10, 1, 12, 0, 0, 0, time.UTC)

func vat(sec int) time.Time { return vt0.Add(time.Duration(sec) * time.Second) }

func TestViewFreezesHistory(t *testing.T) {
	s := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Set("a", "1", vat(0)))
	must(s.Set("a", "2", vat(10)))
	must(s.Set("b", "x", vat(5)))

	v := s.ViewAt(s.CurrentSeq())
	wantKeys := []string{"a", "b"}
	wantTimes := v.ModTimes([]string{"a", "b"})
	wantHist, err := v.History("a")
	must(err)

	// Mutate the live store every way a writer can.
	must(s.Set("a", "3", vat(20)))
	must(s.Set("a", "1.5", vat(2))) // out-of-order write into the past
	must(s.Delete("b", vat(30)))
	must(s.Set("c", "new", vat(40)))

	if got, _ := v.Get("a"); got != "2" {
		t.Errorf("view Get(a) = %q, want 2 (pre-pin value)", got)
	}
	if got, ok := v.Get("b"); !ok || got != "x" {
		t.Errorf("view Get(b) = %q,%v, want x,true (deletion is post-pin)", got, ok)
	}
	if _, ok := v.Get("c"); ok {
		t.Error("view sees key created after the pin")
	}
	if got := v.Keys(); !reflect.DeepEqual(got, wantKeys) {
		t.Errorf("view Keys = %v, want %v", got, wantKeys)
	}
	if got := v.ModTimes([]string{"a", "b"}); !reflect.DeepEqual(got, wantTimes) {
		t.Errorf("view ModTimes changed after live writes: %v vs %v", got, wantTimes)
	}
	got, err := v.History("a")
	must(err)
	if !reflect.DeepEqual(got, wantHist) {
		t.Errorf("view History changed after live writes: %v vs %v", got, wantHist)
	}
	// The past-time write is invisible even though it sorts before the pin.
	ver, err := v.GetAt("a", vat(3))
	must(err)
	if ver.Value != "1" {
		t.Errorf("view GetAt(a, t=3) = %q, want 1 (past-time write is post-pin)", ver.Value)
	}
	// The live store, by contrast, sees everything.
	if got, _ := s.Get("a"); got != "3" {
		t.Errorf("live Get(a) = %q, want 3", got)
	}
}

func TestViewGetAtMatchesStoreWhenQuiescent(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i%7)
		if err := s.Set(key, fmt.Sprintf("v%d", i), vat(i*3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("k0", vat(200)); err != nil {
		t.Fatal(err)
	}
	v := s.ViewAt(s.CurrentSeq())
	for i := 0; i < 7; i++ {
		key := fmt.Sprintf("k%d", i)
		for sec := -1; sec < 210; sec += 13 {
			want, werr := s.GetAt(key, vat(sec))
			got, gerr := v.GetAt(key, vat(sec))
			if (werr == nil) != (gerr == nil) || got != want {
				t.Fatalf("GetAt(%s, %d): view %v/%v, store %v/%v", key, sec, got, gerr, want, werr)
			}
		}
		wv, wok := s.Get(key)
		if gv, gok := v.Get(key); gv != wv || gok != wok {
			t.Fatalf("Get(%s): view %q/%v, store %q/%v", key, gv, gok, wv, wok)
		}
	}
	if !reflect.DeepEqual(v.Keys(), s.Keys()) {
		t.Error("quiescent view Keys differ from store Keys")
	}
}

func TestViewZeroSeqSeesNothing(t *testing.T) {
	s := New()
	if err := s.Set("a", "1", vat(0)); err != nil {
		t.Fatal(err)
	}
	v := s.ViewAt(0)
	if _, ok := v.Get("a"); ok {
		t.Error("seq-0 view must be empty")
	}
	if _, err := v.History("a"); err == nil {
		t.Error("seq-0 view History must report ErrNoKey")
	}
	if keys := v.Keys(); len(keys) != 0 {
		t.Errorf("seq-0 view Keys = %v, want none", keys)
	}
}

// TestViewStableUnderConcurrentWriters pins a view and hammers the store
// with concurrent writers while readers assert the view's answers never
// change. Run under -race this is the no-trial-races-live-writers
// guarantee the parallel repair search depends on.
func TestViewStableUnderConcurrentWriters(t *testing.T) {
	s := NewSharded(4)
	for i := 0; i < 20; i++ {
		if err := s.Set(fmt.Sprintf("k%d", i), "frozen", vat(i)); err != nil {
			t.Fatal(err)
		}
	}
	v := s.ViewAt(s.CurrentSeq())
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				key := fmt.Sprintf("k%d", (i+w)%20)
				_ = s.Set(key, "live", vat(1000+i))
				if i%5 == 0 {
					_ = s.Delete(key, vat(2000+i))
				}
			}
		}(w)
	}
	for r := 0; r < 200; r++ {
		key := fmt.Sprintf("k%d", r%20)
		if got, ok := v.Get(key); !ok || got != "frozen" {
			t.Errorf("view Get(%s) = %q,%v under concurrent writers", key, got, ok)
			break
		}
		hist, err := v.History(key)
		if err != nil || len(hist) != 1 || hist[0].Value != "frozen" {
			t.Errorf("view History(%s) = %v,%v under concurrent writers", key, hist, err)
			break
		}
	}
	stop.Store(true)
	wg.Wait()
}

func TestRevertClusterRestoresState(t *testing.T) {
	s := New()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Set("a", "good-a", vat(0)))
	must(s.Set("b", "good-b", vat(0)))
	must(s.Set("a", "bad-a", vat(100)))
	must(s.Set("b", "bad-b", vat(100)))
	must(s.Set("c", "born-late", vat(100))) // did not exist at the fix point

	n, err := s.RevertCluster([]string{"a", "b", "c"}, vat(50), vat(200))
	must(err)
	if n != 3 {
		t.Errorf("reverted %d mutations, want 3", n)
	}
	if got, _ := s.Get("a"); got != "good-a" {
		t.Errorf("a = %q, want good-a", got)
	}
	if got, _ := s.Get("b"); got != "good-b" {
		t.Errorf("b = %q, want good-b", got)
	}
	if _, ok := s.Get("c"); ok {
		t.Error("c existed only after the fix point; revert must delete it")
	}
	// History is preserved: revert appends, never rewrites.
	hist, err := s.History("a")
	must(err)
	if len(hist) != 3 {
		t.Errorf("a history = %d versions, want 3 (2 + revert)", len(hist))
	}
	// Reverting a key that is absent both at the fix point and now is a
	// no-op, not a tombstone.
	n, err = s.RevertCluster([]string{"never-written"}, vat(50), vat(300))
	must(err)
	if n != 0 {
		t.Errorf("reverting an absent key applied %d mutations, want 0", n)
	}
	if _, err := s.History("never-written"); err == nil {
		t.Error("no-op revert must not create history")
	}
}

func TestRevertClusterValidation(t *testing.T) {
	s := New()
	if _, err := s.RevertCluster(nil, vat(0), vat(1)); err != ErrNoCluster {
		t.Errorf("empty cluster err = %v", err)
	}
	if _, err := s.RevertCluster([]string{"a"}, time.Time{}, vat(1)); err != ErrZeroTime {
		t.Errorf("zero fixAt err = %v", err)
	}
	if _, err := s.RevertCluster([]string{"a"}, vat(0), time.Time{}); err != ErrZeroTime {
		t.Errorf("zero applyAt err = %v", err)
	}
	if _, err := s.RevertCluster([]string{""}, vat(0), vat(1)); err != ErrEmptyKey {
		t.Errorf("empty key err = %v", err)
	}
}

// TestRevertClusterAtomicVisibility checks that a concurrent reader never
// observes a half-reverted cluster: both keys flip from bad to good in one
// indivisible step even though they live on different shards.
func TestRevertClusterAtomicVisibility(t *testing.T) {
	s := NewSharded(16)
	// Find two keys on different shards.
	a, b := "a", ""
	for i := 0; ; i++ {
		cand := fmt.Sprintf("b%d", i)
		if s.shardIndex(cand) != s.shardIndex(a) {
			b = cand
			break
		}
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Set(a, "good", vat(0)))
	must(s.Set(b, "good", vat(0)))
	must(s.Set(a, "bad", vat(100)))
	must(s.Set(b, "bad", vat(100)))

	start := make(chan struct{})
	tornReads := make(chan string, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 100000; i++ {
			// Read in fixed order a then b. Revert applies in the same
			// order under all locks, so (a=bad, b=good) would be a torn
			// state — and (a=good, b=bad) tears the other way.
			va, _ := s.Get(a)
			vb, _ := s.Get(b)
			if va != vb {
				select {
				case tornReads <- fmt.Sprintf("a=%s b=%s", va, vb):
				default:
				}
			}
			if va == "good" && vb == "good" {
				return
			}
		}
	}()
	close(start)
	if _, err := s.RevertCluster([]string{a, b}, vat(50), vat(200)); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	select {
	case torn := <-tornReads:
		t.Errorf("reader observed half-reverted cluster: %s", torn)
	default:
	}
}

// failingSink rejects appends after allowing the first n.
type failingSink struct {
	mu    sync.Mutex
	allow int
}

func (f *failingSink) append(string, string, time.Time, bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.allow > 0 {
		f.allow--
		return nil
	}
	return fmt.Errorf("sink: disk on fire")
}

func (f *failingSink) Sync() error { return nil }

// TestRevertClusterSinkFailureLeavesMemoryUntouched: a persistence error
// mid-revert must not leave the cluster half-reverted in memory — the
// atomicity RevertCluster promises covers failure paths too.
func TestRevertClusterSinkFailureLeavesMemoryUntouched(t *testing.T) {
	s := NewSharded(4)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	keys := []string{"a", "b", "c"}
	for _, k := range keys {
		must(s.Set(k, "good", vat(0)))
		must(s.Set(k, "bad", vat(100)))
	}
	// Sink that accepts exactly one record, then fails: without the
	// plan/append/insert phasing, key "a" would be reverted and "b"/"c"
	// left broken.
	s.sink.Store(&sinkBox{sink: &failingSink{allow: 1}})
	n, err := s.RevertCluster(keys, vat(50), vat(200))
	if err == nil {
		t.Fatal("revert with a failing sink must error")
	}
	if n != 0 {
		t.Errorf("failed revert reported %d applied mutations, want 0", n)
	}
	for _, k := range keys {
		if v, _ := s.Get(k); v != "bad" {
			t.Errorf("after failed revert, %s = %q; memory must be untouched", k, v)
		}
		hist, _ := s.History(k)
		if len(hist) != 2 {
			t.Errorf("after failed revert, %s history = %d versions, want 2", k, len(hist))
		}
	}
	// With the sink healthy again the same revert applies atomically.
	s.sink.Store(nil)
	n, err = s.RevertCluster(keys, vat(50), vat(300))
	must(err)
	if n != 3 {
		t.Errorf("healthy revert applied %d, want 3", n)
	}
	for _, k := range keys {
		if v, _ := s.Get(k); v != "good" {
			t.Errorf("after revert, %s = %q, want good", k, v)
		}
	}
}

func TestRevertClusterReachesObserverAndSink(t *testing.T) {
	s := New()
	obs := &recordingObserver{}
	if err := s.Set("a", "good", vat(0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("a", "bad", vat(100)); err != nil {
		t.Fatal(err)
	}
	s.SetStatsObserver(obs)
	if _, err := s.RevertCluster([]string{"a"}, vat(0), vat(200)); err != nil {
		t.Fatal(err)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	want := []string{fmt.Sprintf("a@%d", vat(200).Unix())}
	if !reflect.DeepEqual(obs.seen, want) {
		t.Errorf("observer saw %v, want %v", obs.seen, want)
	}
}
