package ttkv

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// snapBytes returns the store's snapshot dump, the byte-identity oracle
// the replication suite compares stores with (version seqs included via
// global ordering).
func snapBytes(t *testing.T, s *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReplRecordRoundtrip(t *testing.T) {
	base := time.Date(2014, 6, 23, 10, 0, 0, 0, time.UTC)
	recs := []ReplRecord{
		{Seq: 1, Key: "k", Value: "v", Time: base},
		{Seq: 2, Key: "k", Value: "", Time: base.Add(time.Second)},
		{Seq: 3, Key: "gone", Time: base.Add(2 * time.Second), Deleted: true},
		{Seq: 4, Key: "a/b", Value: "x\x00y", Time: base, BatchOpen: true},
		{Seq: 1<<64 - 1, Key: "max", Value: "v", Time: base, Deleted: false, BatchOpen: true},
	}
	var buf []byte
	for _, r := range recs {
		buf = AppendReplRecord(buf, r)
	}
	for _, want := range recs {
		got, n, err := DecodeReplRecord(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.Seq != want.Seq || got.Key != want.Key || got.Value != want.Value ||
			!got.Time.Equal(want.Time) || got.Deleted != want.Deleted || got.BatchOpen != want.BatchOpen {
			t.Fatalf("roundtrip: got %+v, want %+v", got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d bytes left after decoding all records", len(buf))
	}
}

func TestReplRecordDecodeCorrupt(t *testing.T) {
	good := AppendReplRecord(nil, ReplRecord{Seq: 9, Key: "key", Value: "value", Time: time.Unix(10, 0)})
	for _, tc := range []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"truncated header", good[:10]},
		{"truncated key", good[:1+8+8+4+1]},
		{"truncated value length", good[:1+8+8+4+3+2]},
		{"unknown flags", append([]byte{0x80}, good[1:]...)},
		{"oversize length", func() []byte {
			b := append([]byte(nil), good...)
			// Stamp the key length with something past MaxStringLen.
			b[17], b[18], b[19], b[20] = 0xff, 0xff, 0xff, 0xff
			return b
		}()},
	} {
		if _, _, err := DecodeReplRecord(tc.b); !errors.Is(err, ErrReplCorrupt) {
			t.Errorf("%s: err = %v, want ErrReplCorrupt", tc.name, err)
		}
	}
}

// TestReplLogCommitGate: with a group-commit appender, records must not
// reach subscribers before the appender commits them — and a Sync barrier
// must push them through before it returns.
func TestReplLogCommitGate(t *testing.T) {
	gc, _ := newTestGroupCommit(t, GroupCommitConfig{
		FlushInterval: time.Hour, // only explicit Sync flushes
		Fsync:         FsyncInterval,
	})
	defer gc.Close()
	s := New()
	rl := NewReplLog(gc)
	if err := s.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	sub, from := rl.Subscribe(1 << 20)
	defer sub.Close()
	if from != 0 {
		t.Fatalf("fresh log durable watermark = %d, want 0", from)
	}

	base := time.Unix(100, 0)
	for i := 0; i < 5; i++ {
		if err := s.Set(fmt.Sprintf("k%d", i), "v", base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if data, _, err := sub.Next(50 * time.Millisecond); err != nil || data != nil {
		t.Fatalf("records leaked to the subscriber before commit: %d frames, err %v", len(data), err)
	}
	if got := rl.DurableSeq(); got != 0 {
		t.Fatalf("DurableSeq = %d before any flush, want 0", got)
	}

	if err := s.SyncAOF(); err != nil {
		t.Fatal(err)
	}
	// The commit callback runs before Sync returns: the watermark is
	// already advanced, no polling needed.
	if got := rl.DurableSeq(); got != 5 {
		t.Fatalf("DurableSeq after Sync = %d, want 5", got)
	}
	data, last, err := sub.Next(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if last != 5 {
		t.Fatalf("delivered watermark = %d, want 5", last)
	}
	var seqs []uint64
	for _, d := range data {
		for len(d) > 0 {
			rec, n, err := DecodeReplRecord(d)
			if err != nil {
				t.Fatal(err)
			}
			seqs = append(seqs, rec.Seq)
			d = d[n:]
		}
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("stream seqs = %v, want 1..5 in order", seqs)
		}
	}
	if len(seqs) != 5 {
		t.Fatalf("delivered %d records, want 5", len(seqs))
	}
}

// TestReplLogInMemoryImmediate: with no appender there is nothing the
// primary could lose, so records are shippable the instant they apply.
func TestReplLogInMemoryImmediate(t *testing.T) {
	s := New()
	rl := NewReplLog(nil)
	if err := s.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	sub, _ := rl.Subscribe(1 << 20)
	defer sub.Close()
	if err := s.Set("k", "v", time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	data, last, err := sub.Next(time.Second)
	if err != nil || len(data) == 0 || last != 1 {
		t.Fatalf("Next = (%d frames, last %d, %v), want immediate delivery of seq 1", len(data), last, err)
	}
}

// TestReplLogSubscribePartition: records committed before Subscribe are
// not delivered through the outbox (the snapshot range serves them);
// records after are. Together they cover the stream exactly once.
func TestReplLogSubscribePartition(t *testing.T) {
	s := New()
	rl := NewReplLog(nil)
	if err := s.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Set(fmt.Sprintf("pre%d", i), "v", time.Unix(int64(i+1), 0)); err != nil {
			t.Fatal(err)
		}
	}
	sub, from := rl.Subscribe(1 << 20)
	defer sub.Close()
	if from != 3 {
		t.Fatalf("subscribe watermark = %d, want 3", from)
	}
	snap := s.ReplSnapshot(0, from)
	if len(snap) != 3 {
		t.Fatalf("snapshot range has %d records, want 3", len(snap))
	}
	for i, r := range snap {
		if r.Seq != uint64(i+1) {
			t.Fatalf("snapshot seqs out of order: %+v", snap)
		}
	}
	if err := s.Set("post", "v", time.Unix(10, 0)); err != nil {
		t.Fatal(err)
	}
	data, last, err := sub.Next(time.Second)
	if err != nil || last != 4 {
		t.Fatalf("Next = (last %d, %v), want the post-subscribe record seq 4", last, err)
	}
	rec, _, err := DecodeReplRecord(data[0])
	if err != nil || rec.Key != "post" {
		t.Fatalf("outbox delivered %+v, %v; want key \"post\"", rec, err)
	}
}

// TestReplSubOverflowDrops: a subscriber that exceeds its byte budget is
// dropped with ErrReplSubLagging instead of growing without bound.
func TestReplSubOverflowDrops(t *testing.T) {
	s := New()
	rl := NewReplLog(nil)
	if err := s.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	sub, _ := rl.Subscribe(64) // tiny budget
	defer sub.Close()
	big := string(bytes.Repeat([]byte("x"), 128))
	if err := s.Set("k", big, time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sub.Next(time.Second); !errors.Is(err, ErrReplSubLagging) {
		t.Fatalf("Next err = %v, want ErrReplSubLagging", err)
	}
	// The log itself keeps serving other subscribers and writers.
	if err := s.Set("k2", "v", time.Unix(2, 0)); err != nil {
		t.Fatal(err)
	}
}

// TestApplyReplicatedRebuildsExactly: a replica that replays the stream
// reproduces byte-identical dumps (same seqs, same order) and the same
// counters, and re-applying any prefix trips the exactly-once guard.
func TestApplyReplicatedRebuildsExactly(t *testing.T) {
	primary := New()
	rl := NewReplLog(nil)
	if err := primary.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	sub, _ := rl.Subscribe(1 << 20)
	defer sub.Close()

	base := time.Unix(1000, 0)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key%02d", rng.Intn(20))
		if rng.Intn(10) == 0 {
			if err := primary.Delete(k, base.Add(time.Duration(i)*time.Second)); err != nil {
				t.Fatal(err)
			}
		} else if err := primary.Set(k, fmt.Sprintf("v%d", i), base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}

	var recs []ReplRecord
	for {
		data, _, err := sub.Next(20 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if data == nil {
			break
		}
		for _, d := range data {
			for len(d) > 0 {
				rec, n, err := DecodeReplRecord(d)
				if err != nil {
					t.Fatal(err)
				}
				recs = append(recs, rec)
				d = d[n:]
			}
		}
	}
	if len(recs) != 200 {
		t.Fatalf("streamed %d records, want 200", len(recs))
	}

	replica := NewSharded(4) // different shard count must not matter
	if err := replica.ApplyReplicated(recs); err != nil {
		t.Fatal(err)
	}
	if got, want := snapBytes(t, replica), snapBytes(t, primary); !bytes.Equal(got, want) {
		t.Fatal("replica dump differs from primary dump")
	}
	if replica.CurrentSeq() != primary.CurrentSeq() {
		t.Fatalf("replica seq %d, primary seq %d", replica.CurrentSeq(), primary.CurrentSeq())
	}
	for _, k := range primary.Keys() {
		if replica.ModCount(k) != primary.ModCount(k) {
			t.Fatalf("%s: replica modcount %d, primary %d", k, replica.ModCount(k), primary.ModCount(k))
		}
	}
	pm, rm := primary.ModTimes(primary.Keys()), replica.ModTimes(replica.Keys())
	if len(pm) != len(rm) {
		t.Fatalf("modtimes length %d vs %d", len(rm), len(pm))
	}
	for i := range pm {
		if !pm[i].Equal(rm[i]) {
			t.Fatalf("modtimes[%d] %v vs %v", i, rm[i], pm[i])
		}
	}

	// Exactly-once: any duplicate application must fail loudly, leaving
	// the store untouched.
	before := snapBytes(t, replica)
	if err := replica.ApplyReplicated(recs[len(recs)-3:]); !errors.Is(err, ErrReplSeq) {
		t.Fatalf("duplicate apply err = %v, want ErrReplSeq", err)
	}
	if !bytes.Equal(before, snapBytes(t, replica)) {
		t.Fatal("failed duplicate apply mutated the store")
	}
}

// TestApplyReplicatedValidation covers the reject paths.
func TestApplyReplicatedValidation(t *testing.T) {
	s := New()
	good := ReplRecord{Seq: 1, Key: "k", Value: "v", Time: time.Unix(1, 0)}
	for _, tc := range []struct {
		name string
		recs []ReplRecord
		want error
	}{
		{"empty key", []ReplRecord{{Seq: 1, Time: time.Unix(1, 0)}}, ErrEmptyKey},
		{"zero time", []ReplRecord{{Seq: 1, Key: "k"}}, ErrZeroTime},
		{"non-ascending", []ReplRecord{good, {Seq: 1, Key: "k2", Value: "v", Time: time.Unix(2, 0)}}, ErrReplSeq},
		{"zero seq", []ReplRecord{{Seq: 0, Key: "k", Value: "v", Time: time.Unix(1, 0)}}, ErrReplSeq},
	} {
		if err := s.ApplyReplicated(tc.recs); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	if s.Len() != 0 {
		t.Fatal("rejected batches must leave the store empty")
	}

	withSink := New()
	rl := NewReplLog(nil)
	if err := withSink.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	if err := withSink.ApplyReplicated([]ReplRecord{good}); !errors.Is(err, ErrReplSinkAttached) {
		t.Fatalf("apply with sink attached err = %v, want ErrReplSinkAttached", err)
	}
}

// TestApplyReplicatedAtomicVisibility: a replicated batch spanning shards
// is never readable half-applied — the torn-read guarantee a cluster
// revert has on the primary survives replication.
func TestApplyReplicatedAtomicVisibility(t *testing.T) {
	s := NewSharded(16)
	keys := []string{"pair/a", "pair/b"}
	base := time.Unix(1, 0)
	if err := s.ApplyReplicated([]ReplRecord{
		{Seq: 1, Key: keys[0], Value: "old", Time: base},
		{Seq: 2, Key: keys[1], Value: "old", Time: base},
	}); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var torn sync.Map
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				a, _ := s.Get(keys[0])
				b, _ := s.Get(keys[1])
				if a != b {
					torn.Store(a+"|"+b, true)
				}
			}
		}()
	}

	seq := uint64(2)
	for i := 0; i < 200; i++ {
		val := fmt.Sprintf("v%d", i)
		batch := []ReplRecord{
			{Seq: seq + 1, Key: keys[0], Value: val, Time: base.Add(time.Duration(i+1) * time.Second), BatchOpen: true},
			{Seq: seq + 2, Key: keys[1], Value: val, Time: base.Add(time.Duration(i+1) * time.Second)},
		}
		seq += 2
		if err := s.ApplyReplicated(batch); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	torn.Range(func(k, _ any) bool {
		t.Errorf("torn read observed: %v", k)
		return true
	})
}

// TestRevertClusterReplBatch: a cluster revert on a replicated primary
// occupies one contiguous batch-flagged run of the stream even while
// unrelated writers race it — the regression test for mutations flowing
// through the replication tap in commit order.
func TestRevertClusterReplBatch(t *testing.T) {
	s := NewSharded(8)
	rl := NewReplLog(nil)
	if err := s.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1000, 0)
	cluster := []string{"c/a", "c/b", "c/c"}
	for i, k := range cluster {
		if err := s.Set(k, "good", base.Add(time.Duration(i)*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
		if err := s.Set(k, "bad", base.Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
	}

	sub, _ := rl.Subscribe(1 << 20)
	defer sub.Close()

	// Unrelated writers race the revert.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Set(fmt.Sprintf("noise/%d", w), fmt.Sprintf("n%d", i), base.Add(2*time.Hour))
			}
		}(w)
	}
	applyAt := base.Add(3 * time.Hour)
	n, err := s.RevertCluster(cluster, base.Add(time.Minute), applyAt)
	close(stop)
	wg.Wait()
	if err != nil || n != len(cluster) {
		t.Fatalf("RevertCluster = (%d, %v), want (%d, nil)", n, err, len(cluster))
	}

	// Drain the stream and find the revert's records.
	var recs []ReplRecord
	for {
		data, _, err := sub.Next(20 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if data == nil {
			break
		}
		for _, d := range data {
			for len(d) > 0 {
				rec, n, err := DecodeReplRecord(d)
				if err != nil {
					t.Fatal(err)
				}
				recs = append(recs, rec)
				d = d[n:]
			}
		}
	}
	var revert []ReplRecord
	for i, r := range recs {
		if i > 0 && r.Seq != recs[i-1].Seq+1 {
			t.Fatalf("stream seqs not contiguous at %d: %d after %d", i, r.Seq, recs[i-1].Seq)
		}
		if r.Time.Equal(applyAt) {
			revert = append(revert, r)
		}
	}
	if len(revert) != len(cluster) {
		t.Fatalf("found %d revert records in the stream, want %d", len(revert), len(cluster))
	}
	for i, r := range revert {
		if i > 0 && r.Seq != revert[i-1].Seq+1 {
			t.Fatalf("revert interleaved with other writers: seqs %d then %d", revert[i-1].Seq, r.Seq)
		}
		if wantOpen := i < len(revert)-1; r.BatchOpen != wantOpen {
			t.Fatalf("revert record %d BatchOpen = %v, want %v", i, r.BatchOpen, wantOpen)
		}
		if r.Value != "good" {
			t.Fatalf("revert record %d value %q, want \"good\"", i, r.Value)
		}
	}
}

// TestReplDurableWatermarkBatchAligned: the durable watermark — and with
// it the snapshot/tail boundary a resuming replica syncs at — must never
// land strictly inside an atomic batch. A revert batch enters the
// appender as one indivisible enqueue, so no flush cycle can ever observe
// (and commit) a prefix of it. The test wraps the commit callback to see
// every committed gen while a Sync hammer forces flushes at arbitrary
// points between appends; the single-writer workload makes each gen's
// batch position computable, so one mid-batch commit fails the test.
func TestReplDurableWatermarkBatchAligned(t *testing.T) {
	gc, _ := newTestGroupCommit(t, GroupCommitConfig{
		FlushInterval: time.Millisecond,
		MaxBatchBytes: 1, // every append wakes the flusher immediately
		Fsync:         FsyncNever,
	})
	s := NewSharded(8)
	rl := NewReplLog(gc)
	if err := s.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	// Observe every committed gen (not a sampling race): the wrapper runs
	// on the flusher goroutine for each flush cycle.
	var genMu sync.Mutex
	var gens []uint64
	gc.setOnCommit(func(gen uint64) {
		genMu.Lock()
		gens = append(gens, gen)
		genMu.Unlock()
		rl.onCommit(gen)
	})

	// Fat values stretch the per-record work inside the batch append to
	// microseconds, so a flusher woken per append has ample time to flush
	// between two records of a batch that is not enqueued atomically.
	const clusterKeys = 16
	fat := string(bytes.Repeat([]byte("v"), 256<<10))
	base := time.Unix(1000, 0)
	cluster := make([]string, clusterKeys)
	for i := range cluster {
		cluster[i] = fmt.Sprintf("c/k%02d", i)
		if err := s.Set(cluster[i], fat, base.Add(time.Duration(i)*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 12
	// fixAt sits after every seed write, so each revert's plan re-writes
	// all clusterKeys keys: every batch is exactly clusterKeys records.
	fixAt := base.Add(time.Second)
	for i := 0; i < rounds; i++ {
		if _, err := s.RevertCluster(cluster, fixAt, base.Add(time.Duration(i+1)*time.Hour)); err != nil {
			t.Fatal(err)
		}
		if err := s.Set("noise", fmt.Sprintf("n%d", i), base.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SyncAOF(); err != nil {
		t.Fatal(err)
	}

	// Gen layout (single writer): clusterKeys seed sets, then per round a
	// clusterKeys-record batch followed by 1 noise set. Any committed gen
	// strictly inside a batch is a torn resume boundary.
	genMu.Lock()
	defer genMu.Unlock()
	if len(gens) == 0 {
		t.Fatal("commit callback never ran")
	}
	const span = clusterKeys + 1
	last := uint64(clusterKeys + span*rounds)
	for _, g := range gens {
		if g <= clusterKeys || g > last {
			continue
		}
		if pos := (g - clusterKeys - 1) % span; pos < clusterKeys-1 {
			t.Fatalf("flusher committed gen %d: strictly inside a revert batch (position %d of %d)", g, pos, clusterKeys)
		}
	}
	if final := gens[len(gens)-1]; final != last {
		t.Fatalf("final committed gen %d, want %d", final, last)
	}
}

// TestReplAOFOrderMatchesSeqOrder: with a replication log attached, the
// AOF byte order IS the sequence order even under concurrent writers, so
// replay re-mints identical sequence numbers and dumps are byte-identical
// across a restart — the invariant resumable replication rests on.
func TestReplAOFOrderMatchesSeqOrder(t *testing.T) {
	gc, path := newTestGroupCommit(t, GroupCommitConfig{FlushInterval: time.Millisecond})
	s := NewSharded(16)
	rl := NewReplLog(gc)
	if err := s.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	base := time.Unix(5000, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("w%d/k%d", w, i%17)
				if i%13 == 0 {
					s.Delete(k, base.Add(time.Duration(i)*time.Second))
				} else {
					s.Set(k, fmt.Sprintf("v%d", i), base.Add(time.Duration(i)*time.Second))
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.SyncAOF(); err != nil {
		t.Fatal(err)
	}
	s.AttachReplLog(nil)
	if err := gc.Close(); err != nil {
		t.Fatal(err)
	}

	replayed, err := LoadAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := snapBytes(t, replayed), snapBytes(t, s); !bytes.Equal(got, want) {
		t.Fatal("replayed dump differs: AOF order diverged from seq order")
	}
}

// TestStoreReset empties everything and refuses with a sink attached.
func TestStoreReset(t *testing.T) {
	s := New()
	if err := s.Set("k", "v", time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	s.CountRead("k")
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.CurrentSeq() != 0 {
		t.Fatalf("after Reset: len %d seq %d, want 0 0", s.Len(), s.CurrentSeq())
	}
	st := s.Stats()
	if st.Writes != 0 || st.Deletes != 0 || st.Reads != 0 || st.Versions != 0 {
		t.Fatalf("after Reset: stats %+v, want zeros", st)
	}
	if err := s.Set("k", "v2", time.Unix(2, 0)); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("k"); v != "v2" {
		t.Fatalf("store unusable after Reset: Get = %q", v)
	}

	rl := NewReplLog(nil)
	if err := s.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(); !errors.Is(err, ErrReplSinkAttached) {
		t.Fatalf("Reset with sink err = %v, want ErrReplSinkAttached", err)
	}
}

// TestReplLogRebindRejected: one log cannot serve two stores.
func TestReplLogRebindRejected(t *testing.T) {
	rl := NewReplLog(nil)
	a, b := New(), New()
	if err := a.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	if err := b.AttachReplLog(rl); !errors.Is(err, ErrReplBound) {
		t.Fatalf("second attach err = %v, want ErrReplBound", err)
	}
	// Re-attaching to the same store is fine (idempotent).
	if err := a.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
}
