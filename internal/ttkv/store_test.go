package ttkv

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2013, 6, 1, 12, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

func TestSetGet(t *testing.T) {
	s := New()
	if err := s.Set("k", "v1", at(0)); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("k")
	if !ok || v != "v1" {
		t.Fatalf("Get = %q,%v, want v1,true", v, ok)
	}
	if err := s.Set("k", "v2", at(1)); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("k"); v != "v2" {
		t.Fatalf("Get after update = %q, want v2", v)
	}
}

func TestGetMissing(t *testing.T) {
	s := New()
	if _, ok := s.Get("nope"); ok {
		t.Error("Get on missing key must report ok=false")
	}
}

func TestValidation(t *testing.T) {
	s := New()
	if err := s.Set("", "v", at(0)); !errors.Is(err, ErrEmptyKey) {
		t.Errorf("empty key: err = %v, want ErrEmptyKey", err)
	}
	if err := s.Set("k", "v", time.Time{}); !errors.Is(err, ErrZeroTime) {
		t.Errorf("zero time: err = %v, want ErrZeroTime", err)
	}
	if err := s.Delete("", at(0)); !errors.Is(err, ErrEmptyKey) {
		t.Errorf("delete empty key: err = %v, want ErrEmptyKey", err)
	}
}

func TestDeleteTombstone(t *testing.T) {
	s := New()
	must(t, s.Set("k", "v1", at(0)))
	must(t, s.Delete("k", at(1)))
	if _, ok := s.Get("k"); ok {
		t.Error("deleted key must not be gettable")
	}
	// But the history retains both versions, and GetAt can see past the
	// tombstone.
	hist, err := s.History("k")
	if err != nil || len(hist) != 2 {
		t.Fatalf("History = %v,%v, want 2 versions", hist, err)
	}
	if !hist[1].Deleted {
		t.Error("latest version must be a tombstone")
	}
	v, err := s.GetAt("k", at(0))
	if err != nil || v.Value != "v1" || v.Deleted {
		t.Fatalf("GetAt before delete = %+v,%v, want v1", v, err)
	}
}

func TestGetAt(t *testing.T) {
	s := New()
	must(t, s.Set("k", "v0", at(0)))
	must(t, s.Set("k", "v10", at(10)))
	must(t, s.Set("k", "v20", at(20)))
	tests := []struct {
		sec     int
		want    string
		wantErr error
	}{
		{-1, "", ErrNoVersion},
		{0, "v0", nil},
		{5, "v0", nil},
		{10, "v10", nil},
		{15, "v10", nil},
		{25, "v20", nil},
	}
	for _, tt := range tests {
		v, err := s.GetAt("k", at(tt.sec))
		if tt.wantErr != nil {
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("GetAt(%d): err = %v, want %v", tt.sec, err, tt.wantErr)
			}
			continue
		}
		if err != nil || v.Value != tt.want {
			t.Errorf("GetAt(%d) = %q,%v, want %q", tt.sec, v.Value, err, tt.want)
		}
	}
	if _, err := s.GetAt("missing", at(0)); !errors.Is(err, ErrNoKey) {
		t.Errorf("GetAt(missing) err = %v, want ErrNoKey", err)
	}
}

func TestOutOfOrderInsert(t *testing.T) {
	// Error injection writes into the past; history must stay chronological.
	s := New()
	must(t, s.Set("k", "new", at(100)))
	must(t, s.Set("k", "injected", at(50)))
	hist, _ := s.History("k")
	if len(hist) != 2 || hist[0].Value != "injected" || hist[1].Value != "new" {
		t.Fatalf("history = %+v, want injected then new", hist)
	}
	// Current value must still be the chronologically newest.
	if v, _ := s.Get("k"); v != "new" {
		t.Errorf("Get = %q, want new", v)
	}
	if v, err := s.GetAt("k", at(60)); err != nil || v.Value != "injected" {
		t.Errorf("GetAt(60) = %+v,%v, want injected", v, err)
	}
}

func TestEqualTimestampOrdering(t *testing.T) {
	// Same-second writes (second-granularity traces) keep insertion order.
	s := New()
	must(t, s.Set("k", "first", at(5)))
	must(t, s.Set("k", "second", at(5)))
	hist, _ := s.History("k")
	if hist[0].Value != "first" || hist[1].Value != "second" {
		t.Fatalf("equal-timestamp order = %+v", hist)
	}
	if v, _ := s.Get("k"); v != "second" {
		t.Errorf("Get = %q, want second (last inserted at equal time)", v)
	}
}

func TestLatest(t *testing.T) {
	s := New()
	must(t, s.Set("k", "a", at(0)))
	must(t, s.Set("k", "b", at(1)))
	v, err := s.Latest("k")
	if err != nil || v.Value != "b" {
		t.Fatalf("Latest = %+v,%v, want b", v, err)
	}
	if _, err := s.Latest("missing"); !errors.Is(err, ErrNoKey) {
		t.Errorf("Latest(missing) err = %v, want ErrNoKey", err)
	}
}

func TestHistoryMissing(t *testing.T) {
	if _, err := New().History("missing"); !errors.Is(err, ErrNoKey) {
		t.Errorf("History(missing) err = %v, want ErrNoKey", err)
	}
}

func TestKeysSorted(t *testing.T) {
	s := New()
	for _, k := range []string{"zeta", "alpha", "mid"} {
		must(t, s.Set(k, "v", at(0)))
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "alpha" || keys[2] != "zeta" {
		t.Fatalf("Keys = %v, want sorted", keys)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestCounters(t *testing.T) {
	s := New()
	must(t, s.Set("k", "a", at(0)))
	must(t, s.Set("k", "b", at(1)))
	must(t, s.Delete("k", at(2)))
	if s.WriteCount("k") != 2 || s.DeleteCount("k") != 1 || s.ModCount("k") != 3 {
		t.Errorf("counts = %d/%d/%d, want 2/1/3",
			s.WriteCount("k"), s.DeleteCount("k"), s.ModCount("k"))
	}
	if s.WriteCount("missing") != 0 || s.DeleteCount("missing") != 0 || s.ModCount("missing") != 0 {
		t.Error("missing key must report zero counts")
	}
}

func TestStats(t *testing.T) {
	s := New()
	must(t, s.Set("key1", "value1", at(0)))
	must(t, s.Set("key1", "value2", at(1)))
	must(t, s.Delete("key1", at(2)))
	must(t, s.Set("key2", "v", at(3)))
	s.Get("key1")
	s.Get("key2")
	s.CountRead("key1")
	s.CountRead("unknown")
	st := s.Stats()
	if st.Keys != 2 {
		t.Errorf("Keys = %d, want 2", st.Keys)
	}
	if st.Writes != 3 || st.Deletes != 1 {
		t.Errorf("Writes/Deletes = %d/%d, want 3/1", st.Writes, st.Deletes)
	}
	if st.Reads != 4 {
		t.Errorf("Reads = %d, want 4", st.Reads)
	}
	if st.Versions != 4 {
		t.Errorf("Versions = %d, want 4", st.Versions)
	}
	if st.ApproxBytes <= 0 {
		t.Errorf("ApproxBytes = %d, want positive", st.ApproxBytes)
	}
}

func TestClone(t *testing.T) {
	s := New()
	must(t, s.Set("k", "orig", at(0)))
	c := s.Clone()
	must(t, c.Set("k", "changed", at(1)))
	must(t, c.Set("new", "x", at(1)))
	if v, _ := s.Get("k"); v != "orig" {
		t.Error("mutating the clone leaked into the original")
	}
	if s.Len() != 1 {
		t.Error("clone key set leaked into the original")
	}
	if v, _ := c.Get("k"); v != "changed" {
		t.Error("clone did not apply its own write")
	}
}

func TestModTimes(t *testing.T) {
	s := New()
	must(t, s.Set("a", "1", at(10)))
	must(t, s.Set("b", "1", at(10))) // duplicate timestamp deduped
	must(t, s.Set("a", "2", at(30)))
	must(t, s.Set("b", "2", at(20)))
	times := s.ModTimes([]string{"a", "b", "missing"})
	if len(times) != 3 {
		t.Fatalf("ModTimes = %v, want 3 distinct times", times)
	}
	if !times[0].Equal(at(30)) || !times[1].Equal(at(20)) || !times[2].Equal(at(10)) {
		t.Errorf("ModTimes order = %v, want newest first", times)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%10)
				_ = s.Set(key, "v", at(i))
				s.Get(key)
				_, _ = s.GetAt(key, at(i))
				_, _ = s.History(key)
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Writes != 8*200 {
		t.Errorf("Writes = %d, want %d", st.Writes, 8*200)
	}
}

// Property: GetAt(k, t) always returns the version with the largest
// timestamp <= t, regardless of insertion order.
func TestGetAtProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func(offsets []uint8) bool {
		if len(offsets) == 0 {
			return true
		}
		s := New()
		for i, off := range offsets {
			if err := s.Set("k", fmt.Sprintf("v%d", i), at(int(off))); err != nil {
				return false
			}
		}
		// Reference: track max offset <= query.
		for q := 0; q <= 255; q += 17 {
			var wantOff = -1
			for _, off := range offsets {
				if int(off) <= q && int(off) > wantOff {
					wantOff = int(off)
				}
			}
			v, err := s.GetAt("k", at(q))
			if wantOff == -1 {
				if !errors.Is(err, ErrNoVersion) {
					return false
				}
				continue
			}
			if err != nil || !v.Time.Equal(at(wantOff)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: history is always chronologically sorted.
func TestHistorySortedProperty(t *testing.T) {
	prop := func(offsets []uint8) bool {
		s := New()
		for i, off := range offsets {
			if i%5 == 4 {
				if err := s.Delete("k", at(int(off))); err != nil {
					return false
				}
			} else if err := s.Set("k", "v", at(int(off))); err != nil {
				return false
			}
		}
		if len(offsets) == 0 {
			return true
		}
		hist, err := s.History("k")
		if err != nil {
			return false
		}
		for i := 1; i < len(hist); i++ {
			if hist[i].Time.Before(hist[i-1].Time) {
				return false
			}
		}
		return len(hist) == len(offsets)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewShardedRounding(t *testing.T) {
	for _, tt := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		if got := NewSharded(tt.in).NumShards(); got != tt.want {
			t.Errorf("NewSharded(%d).NumShards() = %d, want %d", tt.in, got, tt.want)
		}
	}
}

// Regression: CountReads must not skew global read stats with reads of
// keys the store has never seen.
func TestCountReadsMissingKeyNotCounted(t *testing.T) {
	s := New()
	s.CountReads("ghost", 50)
	if st := s.Stats(); st.Reads != 0 {
		t.Fatalf("Reads after CountReads(missing) = %d, want 0", st.Reads)
	}
	must(t, s.Set("real", "v", at(0)))
	s.CountReads("real", 7)
	s.CountReads("ghost", 3)
	if st := s.Stats(); st.Reads != 7 {
		t.Fatalf("Reads = %d, want 7 (only the existing key counts)", st.Reads)
	}
}

func TestApplyBatch(t *testing.T) {
	s := New()
	muts := []Mutation{
		{Key: "a", Value: "1", Time: at(0)},
		{Key: "b", Value: "x", Time: at(1)},
		{Key: "a", Value: "2", Time: at(2)},
		{Key: "b", Time: at(3), Delete: true},
		// Equal-timestamp pair: batch order must be preserved.
		{Key: "a", Value: "first", Time: at(5)},
		{Key: "a", Value: "second", Time: at(5)},
	}
	if _, err := s.Apply(muts); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Get("a"); v != "second" {
		t.Errorf("a = %q, want second", v)
	}
	if _, ok := s.Get("b"); ok {
		t.Error("b must be deleted")
	}
	hist, _ := s.History("a")
	if len(hist) != 4 || hist[2].Value != "first" || hist[3].Value != "second" {
		t.Fatalf("a history = %+v, want batch order preserved at equal timestamps", hist)
	}
	if st := s.Stats(); st.Writes != 5 || st.Deletes != 1 {
		t.Errorf("Writes/Deletes = %d/%d, want 5/1", st.Writes, st.Deletes)
	}
}

// Oversized keys/values must be rejected at write time: the AOF replay
// side treats strings past MaxStringLen as corruption, so accepting one
// would make the log permanently unreplayable.
func TestOversizeRejected(t *testing.T) {
	s := New()
	big := string(make([]byte, MaxStringLen+1))
	if err := s.Set("k", big, at(0)); !errors.Is(err, ErrOversize) {
		t.Errorf("oversized value: err = %v, want ErrOversize", err)
	}
	if err := s.Set(big, "v", at(0)); !errors.Is(err, ErrOversize) {
		t.Errorf("oversized key: err = %v, want ErrOversize", err)
	}
	_, err := s.Apply([]Mutation{{Key: "k", Value: big, Time: at(0)}})
	if !errors.Is(err, ErrOversize) {
		t.Errorf("oversized batch value: err = %v, want ErrOversize", err)
	}
	if s.Len() != 0 {
		t.Error("rejected oversize writes must not land")
	}
}

func TestApplyValidatesUpFront(t *testing.T) {
	s := New()
	_, err := s.Apply([]Mutation{
		{Key: "good", Value: "v", Time: at(0)},
		{Key: "", Value: "v", Time: at(1)},
	})
	if !errors.Is(err, ErrEmptyKey) {
		t.Fatalf("err = %v, want ErrEmptyKey", err)
	}
	if s.Len() != 0 {
		t.Error("validation failure must apply no entries")
	}
	_, err = s.Apply([]Mutation{{Key: "k", Value: "v"}})
	if !errors.Is(err, ErrZeroTime) {
		t.Fatalf("err = %v, want ErrZeroTime", err)
	}
}

// Sharded and single-shard stores must be observationally identical for
// any mutation sequence applied in the same order.
func TestShardedMatchesSingleShard(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	single := NewSharded(1)
	sharded := NewSharded(16)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("k%d", rng.Intn(50))
		sec := rng.Intn(300)
		if rng.Intn(10) == 0 {
			must(t, single.Delete(key, at(sec)))
			must(t, sharded.Delete(key, at(sec)))
		} else {
			v := fmt.Sprintf("v%d", i)
			must(t, single.Set(key, v, at(sec)))
			must(t, sharded.Set(key, v, at(sec)))
		}
	}
	if got, want := sharded.Keys(), single.Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("key sets differ: %v vs %v", got, want)
	}
	for _, k := range single.Keys() {
		wh, _ := single.History(k)
		gh, _ := sharded.History(k)
		if len(wh) != len(gh) {
			t.Fatalf("%q: %d versions, want %d", k, len(gh), len(wh))
		}
		for i := range wh {
			if wh[i].Value != gh[i].Value || !wh[i].Time.Equal(gh[i].Time) ||
				wh[i].Deleted != gh[i].Deleted || wh[i].Seq != gh[i].Seq {
				t.Errorf("%q version %d: %+v vs %+v", k, i, gh[i], wh[i])
			}
		}
		if single.ModCount(k) != sharded.ModCount(k) {
			t.Errorf("%q ModCount: %d vs %d", k, sharded.ModCount(k), single.ModCount(k))
		}
	}
	ss, st := single.Stats(), sharded.Stats()
	if ss != st {
		t.Errorf("stats differ: %+v vs %+v", st, ss)
	}
}

func TestConcurrentDistinctKeyWriters(t *testing.T) {
	s := NewSharded(16)
	const writers = 16
	const perWriter = 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("writer-%d", w)
			for i := 0; i < perWriter; i++ {
				_ = s.Set(key, "v", at(i))
				s.Get(key)
				_, _ = s.GetAt(key, at(i))
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Writes != writers*perWriter {
		t.Errorf("Writes = %d, want %d", st.Writes, writers*perWriter)
	}
	if st.Keys != writers {
		t.Errorf("Keys = %d, want %d", st.Keys, writers)
	}
	for w := 0; w < writers; w++ {
		hist, err := s.History(fmt.Sprintf("writer-%d", w))
		if err != nil || len(hist) != perWriter {
			t.Fatalf("writer-%d history = %d,%v, want %d", w, len(hist), err, perWriter)
		}
	}
}

// BenchmarkStoreParallel measures concurrent writers hitting distinct
// keys. The shards=1 case is the historical single-lock store; at
// GOMAXPROCS >= 8 the sharded configurations should win by well over 3x
// because distinct-key writers share no locks, only the atomic sequence
// counter.
func BenchmarkStoreParallel(b *testing.B) {
	for _, shards := range []int{1, 8, 16, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := NewSharded(shards)
			var id atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				key := fmt.Sprintf("writer-%d", id.Add(1))
				i := 0
				for pb.Next() {
					i++
					if err := s.Set(key, "value", at(i)); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkStoreParallelGroupCommit is the same write-heavy workload with
// a group-commit AOF attached, to quantify the persistence overhead on
// the hot path (an in-memory memcpy; disk I/O is off-thread).
func BenchmarkStoreParallelGroupCommit(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.aof")
	aof, err := CreateAOF(path)
	if err != nil {
		b.Fatal(err)
	}
	gc := NewGroupCommit(aof, GroupCommitConfig{Fsync: FsyncNever})
	defer gc.Close()
	s := NewSharded(16)
	s.AttachGroupCommit(gc)
	var id atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		key := fmt.Sprintf("writer-%d", id.Add(1))
		i := 0
		for pb.Next() {
			i++
			if err := s.Set(key, "value", at(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkApplyBatch times the batch API per mutation (b.N counts
// mutations, applied in batches of 100) against one persistent store, so
// the number reflects Apply itself rather than store construction.
func BenchmarkApplyBatch(b *testing.B) {
	const batchSize = 100
	s := NewSharded(16)
	muts := make([]Mutation, batchSize)
	for i := range muts {
		muts[i] = Mutation{Key: fmt.Sprintf("k%d", i), Value: "value"}
	}
	b.ReportAllocs()
	b.ResetTimer()
	t := 0
	for n := 0; n < b.N; n += batchSize {
		for j := range muts {
			t++
			muts[j].Time = at(t)
		}
		if _, err := s.Apply(muts); err != nil {
			b.Fatal(err)
		}
	}
}

// recordingObserver captures StatsObserver callbacks.
type recordingObserver struct {
	mu   sync.Mutex
	seen []string
}

func (r *recordingObserver) ObserveWrite(key string, t time.Time, deleted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	suffix := ""
	if deleted {
		suffix = "!"
	}
	r.seen = append(r.seen, fmt.Sprintf("%s@%d%s", key, t.Unix(), suffix))
}

func TestStatsObserverSeesAllMutationPaths(t *testing.T) {
	s := New()
	obs := &recordingObserver{}
	s.SetStatsObserver(obs)
	if err := s.Set("a", "1", at(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a", at(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]Mutation{
		{Key: "b", Value: "2", Time: at(3)},
		{Key: "c", Value: "3", Time: at(4), Delete: true},
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@" + fmt.Sprint(at(1).Unix()), "a@" + fmt.Sprint(at(2).Unix()) + "!",
		"b@" + fmt.Sprint(at(3).Unix()), "c@" + fmt.Sprint(at(4).Unix()) + "!"}
	if !reflect.DeepEqual(obs.seen, want) {
		t.Fatalf("observer saw %v, want %v", obs.seen, want)
	}

	// Rejected writes must not reach the observer.
	if err := s.Set("", "x", at(5)); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.Set("d", "x", time.Time{}); err == nil {
		t.Fatal("zero time accepted")
	}
	if len(obs.seen) != 4 {
		t.Fatalf("rejected writes reached the observer: %v", obs.seen)
	}

	// Detaching stops the callbacks.
	s.SetStatsObserver(nil)
	if err := s.Set("e", "x", at(6)); err != nil {
		t.Fatal(err)
	}
	if len(obs.seen) != 4 {
		t.Fatalf("detached observer still called: %v", obs.seen)
	}
}

func TestStatsObserverSeesReplayedAOF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "replay.aof")
	src := New()
	aof, err := CreateAOF(path)
	if err != nil {
		t.Fatal(err)
	}
	src.AttachAOF(aof)
	if err := src.Set("k1", "v1", at(1)); err != nil {
		t.Fatal(err)
	}
	if err := src.Delete("k1", at(2)); err != nil {
		t.Fatal(err)
	}
	if err := aof.Close(); err != nil {
		t.Fatal(err)
	}

	dst := New()
	obs := &recordingObserver{}
	dst.SetStatsObserver(obs)
	re, err := OpenAOFInto(path, dst)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	want := []string{"k1@" + fmt.Sprint(at(1).Unix()), "k1@" + fmt.Sprint(at(2).Unix()) + "!"}
	if !reflect.DeepEqual(obs.seen, want) {
		t.Fatalf("replay observer saw %v, want %v", obs.seen, want)
	}
}
