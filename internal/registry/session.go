package registry

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Session is an application-tagged handle to the registry. All operations
// made through a session are reported to attached hooks under the
// session's application name, exactly as the paper's injected DLL
// attributes registry traffic to the hooked process.
type Session struct {
	reg *Registry
	app string
}

// App returns the application name the session is tagged with.
func (s *Session) App() string { return s.app }

// CreateKey creates the key path (and any missing parents). Creating an
// existing key is a no-op, as with RegCreateKeyEx.
func (s *Session) CreateKey(path string) error {
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	_, err := s.reg.ensure(path)
	return err
}

// KeyExists reports whether the key path exists.
func (s *Session) KeyExists(path string) bool {
	s.reg.mu.RLock()
	defer s.reg.mu.RUnlock()
	_, err := s.reg.lookup(path)
	return err == nil
}

// SetValue writes a value under path (creating the key chain if missing)
// and notifies hooks.
func (s *Session) SetValue(path, name string, v Value, t time.Time) error {
	canon, err := CanonicalPath(path)
	if err != nil {
		return err
	}
	s.reg.mu.Lock()
	node, err := s.reg.ensure(canon)
	if err != nil {
		s.reg.mu.Unlock()
		return err
	}
	node.values[name] = v
	hooks := s.reg.snapshotHooks()
	s.reg.mu.Unlock()
	full := FullKey(canon, name)
	for _, h := range hooks {
		h.SetValue(s.app, full, v, t)
	}
	return nil
}

// QueryValue reads a value and notifies hooks of the read.
func (s *Session) QueryValue(path, name string, t time.Time) (Value, error) {
	canon, err := CanonicalPath(path)
	if err != nil {
		return Value{}, err
	}
	s.reg.mu.RLock()
	node, err := s.reg.lookup(canon)
	var v Value
	var ok bool
	if err == nil {
		v, ok = node.values[name]
	}
	hooks := s.reg.snapshotHooks()
	s.reg.mu.RUnlock()
	full := FullKey(canon, name)
	for _, h := range hooks {
		h.QueryValue(s.app, full, t)
	}
	if err != nil {
		return Value{}, err
	}
	if !ok {
		return Value{}, fmt.Errorf("%w: %q under %q", ErrNoValue, name, path)
	}
	return v, nil
}

// DeleteValue removes a value and notifies hooks.
func (s *Session) DeleteValue(path, name string, t time.Time) error {
	canon, err := CanonicalPath(path)
	if err != nil {
		return err
	}
	s.reg.mu.Lock()
	node, err := s.reg.lookup(canon)
	if err != nil {
		s.reg.mu.Unlock()
		return err
	}
	if _, ok := node.values[name]; !ok {
		s.reg.mu.Unlock()
		return fmt.Errorf("%w: %q under %q", ErrNoValue, name, path)
	}
	delete(node.values, name)
	hooks := s.reg.snapshotHooks()
	s.reg.mu.Unlock()
	full := FullKey(canon, name)
	for _, h := range hooks {
		h.DeleteValue(s.app, full, t)
	}
	return nil
}

// DeleteKey removes a key that has no subkeys (RegDeleteKey semantics).
// Its values are deleted first, each reported to hooks.
func (s *Session) DeleteKey(path string, t time.Time) error {
	canon, err := CanonicalPath(path)
	if err != nil {
		return err
	}
	hive, parts, err := splitPath(canon)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot delete hive %q", ErrBadPath, path)
	}
	s.reg.mu.Lock()
	parentPath := hive
	if len(parts) > 1 {
		parentPath = hive + `\` + strings.Join(parts[:len(parts)-1], `\`)
	}
	parent, err := s.reg.lookup(parentPath)
	if err != nil {
		s.reg.mu.Unlock()
		return err
	}
	leaf := lowerKey(parts[len(parts)-1])
	child, ok := parent.children[leaf]
	if !ok {
		s.reg.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoKey, path)
	}
	if len(child.node.children) > 0 {
		s.reg.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrKeyHasSubkeys, path)
	}
	names := make([]string, 0, len(child.node.values))
	for name := range child.node.values {
		names = append(names, name)
	}
	sort.Strings(names)
	delete(parent.children, leaf)
	hooks := s.reg.snapshotHooks()
	s.reg.mu.Unlock()
	for _, name := range names {
		full := FullKey(canon, name)
		for _, h := range hooks {
			h.DeleteValue(s.app, full, t)
		}
	}
	return nil
}

// EnumSubkeys lists the display names of path's immediate subkeys, sorted.
func (s *Session) EnumSubkeys(path string) ([]string, error) {
	s.reg.mu.RLock()
	defer s.reg.mu.RUnlock()
	node, err := s.reg.lookup(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(node.children))
	for _, child := range node.children {
		out = append(out, child.display)
	}
	sort.Strings(out)
	return out, nil
}

// EnumValues lists the value names of path, sorted, with the default value
// reported under its placeholder name.
func (s *Session) EnumValues(path string) ([]string, error) {
	s.reg.mu.RLock()
	defer s.reg.mu.RUnlock()
	node, err := s.reg.lookup(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(node.values))
	for name := range node.values {
		if name == "" {
			name = Default
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Snapshot returns every value under prefix (inclusive) as encoded strings
// keyed by FullKey. Repair tools use this to capture an application's
// registry footprint.
func (s *Session) Snapshot(prefix string) (map[string]string, error) {
	canon, err := CanonicalPath(prefix)
	if err != nil {
		return nil, err
	}
	s.reg.mu.RLock()
	defer s.reg.mu.RUnlock()
	node, err := s.reg.lookup(canon)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string)
	var walk func(path string, n *keyNode)
	walk = func(path string, n *keyNode) {
		for name, v := range n.values {
			out[FullKey(path, name)] = v.Encode()
		}
		for _, child := range n.children {
			walk(path+`\`+child.display, child.node)
		}
	}
	walk(canon, node)
	return out, nil
}

// ApplyEncoded writes an encoded value (as stored in the TTKV) back into
// the registry — the rollback primitive. An encoded tombstone is expressed
// by deleting the value instead.
func (s *Session) ApplyEncoded(fullKey, encoded string, t time.Time) error {
	path, name, err := SplitFullKey(fullKey)
	if err != nil {
		return err
	}
	v, err := DecodeValue(encoded)
	if err != nil {
		return err
	}
	return s.SetValue(path, name, v, t)
}

// RemoveEncoded deletes the value identified by a TTKV full key — the
// rollback primitive for historical deletions.
func (s *Session) RemoveEncoded(fullKey string, t time.Time) error {
	path, name, err := SplitFullKey(fullKey)
	if err != nil {
		return err
	}
	return s.DeleteValue(path, name, t)
}
