// Package registry implements a simulated Windows registry: hives, nested
// subkeys, and typed values, with an interception layer that mirrors the
// paper's Detours-style logger shim (every mutation and query made through
// a Session is observable by attached hooks, tagged with the application
// that made it).
//
// The real Ocasta injects a DLL into Explorer and hooks the registry APIs
// of every descendant process; here each simulated application obtains a
// Session (its "process"), and hooks see the same event stream the DLL
// would capture: who touched which key, with what value, when.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Registry errors.
var (
	ErrBadPath        = errors.New("registry: malformed key path")
	ErrNoKey          = errors.New("registry: key does not exist")
	ErrNoValue        = errors.New("registry: value does not exist")
	ErrKeyHasSubkeys  = errors.New("registry: key still has subkeys")
	ErrBadEncoding    = errors.New("registry: malformed encoded value")
	ErrUnknownHive    = errors.New("registry: unknown hive")
	ErrEmptyValueName = errors.New("registry: empty value name not allowed; use Default")
)

// Default is the canonical name of a key's default (unnamed) value,
// matching how regedit displays it.
const Default = "(Default)"

// ValueType enumerates the registry value types Ocasta's logger handles.
type ValueType uint8

// Registry value types.
const (
	SZ ValueType = iota + 1
	DWord
	Binary
	MultiSZ
)

// String returns the Win32 type name.
func (t ValueType) String() string {
	switch t {
	case SZ:
		return "REG_SZ"
	case DWord:
		return "REG_DWORD"
	case Binary:
		return "REG_BINARY"
	case MultiSZ:
		return "REG_MULTI_SZ"
	default:
		return fmt.Sprintf("REG_TYPE(%d)", uint8(t))
	}
}

// Value is one typed registry value.
type Value struct {
	Type  ValueType
	SZ    string
	DWord uint32
	Bin   []byte
	Multi []string
}

// String constructs a REG_SZ value.
func String(s string) Value { return Value{Type: SZ, SZ: s} }

// DWordValue constructs a REG_DWORD value.
func DWordValue(n uint32) Value { return Value{Type: DWord, DWord: n} }

// BinaryValue constructs a REG_BINARY value.
func BinaryValue(b []byte) Value { return Value{Type: Binary, Bin: b} }

// MultiString constructs a REG_MULTI_SZ value.
func MultiString(items ...string) Value { return Value{Type: MultiSZ, Multi: items} }

// Encode renders the value as a single string for storage in the TTKV.
// The encoding is type-prefixed and reversible via DecodeValue.
func (v Value) Encode() string {
	switch v.Type {
	case SZ:
		return "REG_SZ:" + v.SZ
	case DWord:
		return "REG_DWORD:" + strconv.FormatUint(uint64(v.DWord), 10)
	case Binary:
		return "REG_BINARY:" + hexEncode(v.Bin)
	case MultiSZ:
		return "REG_MULTI_SZ:" + strings.Join(v.Multi, "\x00")
	default:
		return "REG_UNKNOWN:"
	}
}

// DecodeValue parses a string produced by Value.Encode.
func DecodeValue(s string) (Value, error) {
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return Value{}, fmt.Errorf("%w: %q", ErrBadEncoding, s)
	}
	typ, payload := s[:colon], s[colon+1:]
	switch typ {
	case "REG_SZ":
		return String(payload), nil
	case "REG_DWORD":
		n, err := strconv.ParseUint(payload, 10, 32)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad dword %q", ErrBadEncoding, payload)
		}
		return DWordValue(uint32(n)), nil
	case "REG_BINARY":
		b, err := hexDecode(payload)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad binary %q", ErrBadEncoding, payload)
		}
		return BinaryValue(b), nil
	case "REG_MULTI_SZ":
		if payload == "" {
			return MultiString(), nil
		}
		return MultiString(strings.Split(payload, "\x00")...), nil
	default:
		return Value{}, fmt.Errorf("%w: unknown type %q", ErrBadEncoding, typ)
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool { return v.Encode() == o.Encode() }

func hexEncode(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, len(b)*2)
	for _, c := range b {
		out = append(out, digits[c>>4], digits[c&0xf])
	}
	return string(out)
}

func hexDecode(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("odd hex length")
	}
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		hi, err1 := hexNibble(s[2*i])
		lo, err2 := hexNibble(s[2*i+1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad hex digit")
		}
		out[i] = hi<<4 | lo
	}
	return out, nil
}

func hexNibble(c byte) (byte, error) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', nil
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, nil
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, nil
	}
	return 0, fmt.Errorf("bad hex digit %q", c)
}

// Hook observes registry activity, mirroring the paper's injected logger.
// fullKey is "path\valueName" with the Default placeholder for unnamed
// values.
type Hook interface {
	SetValue(app, fullKey string, v Value, t time.Time)
	DeleteValue(app, fullKey string, t time.Time)
	QueryValue(app, fullKey string, t time.Time)
}

// hives accepted at the head of a key path, normalized to short form.
var hives = map[string]string{
	"HKCU": "HKCU", "HKEY_CURRENT_USER": "HKCU",
	"HKLM": "HKLM", "HKEY_LOCAL_MACHINE": "HKLM",
	"HKCR": "HKCR", "HKEY_CLASSES_ROOT": "HKCR",
	"HKU": "HKU", "HKEY_USERS": "HKU",
	"HKCC": "HKCC", "HKEY_CURRENT_CONFIG": "HKCC",
}

// Registry key names are case-insensitive but case-preserving; children
// are indexed by folded name and remember their display name.
type childEntry struct {
	display string
	node    *keyNode
}

type keyNode struct {
	children map[string]*childEntry
	values   map[string]Value
}

func newKeyNode() *keyNode {
	return &keyNode{children: make(map[string]*childEntry), values: make(map[string]Value)}
}

// Registry is the simulated registry. Safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	roots map[string]*keyNode
	hooks map[int]Hook
	next  int
}

// New returns a registry with all hives present and empty.
func New() *Registry {
	roots := make(map[string]*keyNode)
	for _, short := range []string{"HKCU", "HKLM", "HKCR", "HKU", "HKCC"} {
		roots[short] = newKeyNode()
	}
	return &Registry{roots: roots, hooks: make(map[int]Hook)}
}

// Attach registers a logger hook; the returned cancel detaches it.
func (r *Registry) Attach(h Hook) (cancel func()) {
	r.mu.Lock()
	id := r.next
	r.next++
	r.hooks[id] = h
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		delete(r.hooks, id)
		r.mu.Unlock()
	}
}

// Session returns a handle tagged with the application name, the analogue
// of a hooked process in the paper's deployment.
func (r *Registry) Session(app string) *Session { return &Session{reg: r, app: app} }

// splitPath normalizes and validates a key path into hive + components.
func splitPath(path string) (hive string, parts []string, err error) {
	segs := strings.Split(path, `\`)
	if len(segs) == 0 || segs[0] == "" {
		return "", nil, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	hive, ok := hives[strings.ToUpper(segs[0])]
	if !ok {
		return "", nil, fmt.Errorf("%w: %q", ErrUnknownHive, segs[0])
	}
	for _, s := range segs[1:] {
		if s == "" {
			return "", nil, fmt.Errorf("%w: empty component in %q", ErrBadPath, path)
		}
		parts = append(parts, s)
	}
	return hive, parts, nil
}

// CanonicalPath normalizes a key path to its short-hive canonical form.
func CanonicalPath(path string) (string, error) {
	hive, parts, err := splitPath(path)
	if err != nil {
		return "", err
	}
	if len(parts) == 0 {
		return hive, nil
	}
	return hive + `\` + strings.Join(parts, `\`), nil
}

// FullKey combines a key path and value name into the TTKV key identity.
func FullKey(path, name string) string {
	if name == "" {
		name = Default
	}
	return path + `\` + name
}

// SplitFullKey splits a TTKV key identity back into path and value name.
func SplitFullKey(fullKey string) (path, name string, err error) {
	i := strings.LastIndexByte(fullKey, '\\')
	if i <= 0 || i == len(fullKey)-1 {
		return "", "", fmt.Errorf("%w: %q", ErrBadPath, fullKey)
	}
	path, name = fullKey[:i], fullKey[i+1:]
	if name == Default {
		name = ""
	}
	return path, name, nil
}

// lookup walks to a key node. Caller must hold at least a read lock.
func (r *Registry) lookup(path string) (*keyNode, error) {
	hive, parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	node := r.roots[hive]
	for _, p := range parts {
		child, ok := node.children[lowerKey(p)]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoKey, path)
		}
		node = child.node
	}
	return node, nil
}

// ensure walks to a key node, creating missing components (the behaviour
// of RegCreateKeyEx). Caller must hold the write lock.
func (r *Registry) ensure(path string) (*keyNode, error) {
	hive, parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	node := r.roots[hive]
	for _, p := range parts {
		child, ok := node.children[lowerKey(p)]
		if !ok {
			child = &childEntry{display: p, node: newKeyNode()}
			node.children[lowerKey(p)] = child
		}
		node = child.node
	}
	return node, nil
}

func (r *Registry) snapshotHooks() []Hook {
	ids := make([]int, 0, len(r.hooks))
	for id := range r.hooks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Hook, 0, len(ids))
	for _, id := range ids {
		out = append(out, r.hooks[id])
	}
	return out
}

func lowerKey(s string) string { return strings.ToLower(s) }
