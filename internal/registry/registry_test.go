package registry

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2013, 6, 1, 12, 0, 0, 0, time.UTC)

const wordKey = `HKCU\Software\Microsoft\Office\12.0\Word\Data`

func TestValueEncodeDecodeRoundTrip(t *testing.T) {
	values := []Value{
		String("hello world"),
		String(""),
		DWordValue(0),
		DWordValue(4294967295),
		BinaryValue([]byte{0x00, 0xff, 0x10}),
		BinaryValue(nil),
		MultiString("a", "b", "c"),
		MultiString(),
		MultiString("single"),
	}
	for _, v := range values {
		enc := v.Encode()
		got, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("DecodeValue(%q): %v", enc, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %q: got %+v, want %+v", enc, got, v)
		}
	}
}

func TestDecodeValueErrors(t *testing.T) {
	cases := []string{
		"no-colon",
		"REG_DWORD:notanumber",
		"REG_DWORD:99999999999999",
		"REG_BINARY:abc", // odd length
		"REG_BINARY:zz",
		"REG_WEIRD:x",
	}
	for _, in := range cases {
		if _, err := DecodeValue(in); !errors.Is(err, ErrBadEncoding) {
			t.Errorf("DecodeValue(%q) err = %v, want ErrBadEncoding", in, err)
		}
	}
}

func TestValueTypeString(t *testing.T) {
	if SZ.String() != "REG_SZ" || DWord.String() != "REG_DWORD" ||
		Binary.String() != "REG_BINARY" || MultiSZ.String() != "REG_MULTI_SZ" {
		t.Error("type names wrong")
	}
	if ValueType(99).String() != "REG_TYPE(99)" {
		t.Error("unknown type name wrong")
	}
}

func TestSetQueryValue(t *testing.T) {
	reg := New()
	s := reg.Session("word")
	if err := s.SetValue(wordKey, "Max Display", DWordValue(9), t0); err != nil {
		t.Fatal(err)
	}
	v, err := s.QueryValue(wordKey, "Max Display", t0)
	if err != nil || v.DWord != 9 {
		t.Fatalf("QueryValue = %+v, %v", v, err)
	}
	if _, err := s.QueryValue(wordKey, "missing", t0); !errors.Is(err, ErrNoValue) {
		t.Errorf("missing value err = %v, want ErrNoValue", err)
	}
	if _, err := s.QueryValue(`HKCU\No\Such\Key`, "x", t0); !errors.Is(err, ErrNoKey) {
		t.Errorf("missing key err = %v, want ErrNoKey", err)
	}
}

func TestHiveNormalization(t *testing.T) {
	reg := New()
	s := reg.Session("app")
	if err := s.SetValue(`HKEY_CURRENT_USER\Software\Test`, "v", String("x"), t0); err != nil {
		t.Fatal(err)
	}
	// Long and short hive names address the same key.
	v, err := s.QueryValue(`HKCU\Software\Test`, "v", t0)
	if err != nil || v.SZ != "x" {
		t.Fatalf("hive alias lookup failed: %+v, %v", v, err)
	}
}

func TestCaseInsensitiveKeys(t *testing.T) {
	reg := New()
	s := reg.Session("app")
	if err := s.SetValue(`HKCU\Software\MyApp`, "k", String("1"), t0); err != nil {
		t.Fatal(err)
	}
	v, err := s.QueryValue(`hkcu\SOFTWARE\myapp`, "k", t0)
	if err != nil || v.SZ != "1" {
		t.Fatalf("case-insensitive lookup failed: %v", err)
	}
	// Display name preserves original case.
	subs, err := s.EnumSubkeys("HKCU")
	if err != nil || len(subs) != 1 || subs[0] != "Software" {
		t.Fatalf("EnumSubkeys = %v, %v", subs, err)
	}
}

func TestBadPaths(t *testing.T) {
	reg := New()
	s := reg.Session("app")
	if err := s.CreateKey(`HKXX\Software`); !errors.Is(err, ErrUnknownHive) {
		t.Errorf("unknown hive err = %v", err)
	}
	if err := s.CreateKey(`HKCU\\Double`); !errors.Is(err, ErrBadPath) {
		t.Errorf("empty component err = %v", err)
	}
	if err := s.SetValue("", "v", String("x"), t0); err == nil {
		t.Error("empty path must fail")
	}
}

func TestDeleteValue(t *testing.T) {
	reg := New()
	s := reg.Session("app")
	if err := s.SetValue(wordKey, "Item 1", String("doc1"), t0); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteValue(wordKey, "Item 1", t0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryValue(wordKey, "Item 1", t0); !errors.Is(err, ErrNoValue) {
		t.Errorf("after delete err = %v, want ErrNoValue", err)
	}
	if err := s.DeleteValue(wordKey, "Item 1", t0); !errors.Is(err, ErrNoValue) {
		t.Errorf("double delete err = %v, want ErrNoValue", err)
	}
}

func TestDeleteKey(t *testing.T) {
	reg := New()
	s := reg.Session("app")
	if err := s.SetValue(`HKCU\A\B`, "v", String("1"), t0); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteKey(`HKCU\A`, t0); !errors.Is(err, ErrKeyHasSubkeys) {
		t.Errorf("deleting key with subkeys err = %v, want ErrKeyHasSubkeys", err)
	}
	if err := s.DeleteKey(`HKCU\A\B`, t0); err != nil {
		t.Fatal(err)
	}
	if s.KeyExists(`HKCU\A\B`) {
		t.Error("key must be gone after DeleteKey")
	}
	if !s.KeyExists(`HKCU\A`) {
		t.Error("parent must survive")
	}
	if err := s.DeleteKey(`HKCU\A\B`, t0); !errors.Is(err, ErrNoKey) {
		t.Errorf("deleting missing key err = %v, want ErrNoKey", err)
	}
	if err := s.DeleteKey(`HKCU`, t0); !errors.Is(err, ErrBadPath) {
		t.Errorf("deleting hive err = %v, want ErrBadPath", err)
	}
}

func TestEnumValues(t *testing.T) {
	reg := New()
	s := reg.Session("app")
	if err := s.SetValue(`HKCU\App`, "beta", String("2"), t0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetValue(`HKCU\App`, "alpha", String("1"), t0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetValue(`HKCU\App`, "", String("default"), t0); err != nil {
		t.Fatal(err)
	}
	names, err := s.EnumValues(`HKCU\App`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{Default, "alpha", "beta"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("EnumValues = %v, want %v", names, want)
	}
}

func TestFullKeyRoundTrip(t *testing.T) {
	full := FullKey(`HKCU\Software\App`, "Max Display")
	path, name, err := SplitFullKey(full)
	if err != nil || path != `HKCU\Software\App` || name != "Max Display" {
		t.Fatalf("SplitFullKey = %q,%q,%v", path, name, err)
	}
	full = FullKey(`HKCU\App`, "")
	path, name, err = SplitFullKey(full)
	if err != nil || path != `HKCU\App` || name != "" {
		t.Fatalf("default value round trip = %q,%q,%v", path, name, err)
	}
}

// recordingHook captures hook invocations for assertions.
type recordingHook struct {
	mu      sync.Mutex
	sets    []string
	deletes []string
	queries []string
}

func (h *recordingHook) SetValue(app, fullKey string, v Value, t time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sets = append(h.sets, app+"|"+fullKey+"|"+v.Encode())
}

func (h *recordingHook) DeleteValue(app, fullKey string, t time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.deletes = append(h.deletes, app+"|"+fullKey)
}

func (h *recordingHook) QueryValue(app, fullKey string, t time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.queries = append(h.queries, app+"|"+fullKey)
}

func TestHooksObserveEverything(t *testing.T) {
	reg := New()
	hook := &recordingHook{}
	cancel := reg.Attach(hook)
	s := reg.Session("word")

	if err := s.SetValue(wordKey, "Max Display", DWordValue(4), t0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryValue(wordKey, "Max Display", t0); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteValue(wordKey, "Max Display", t0); err != nil {
		t.Fatal(err)
	}

	if len(hook.sets) != 1 || hook.sets[0] != "word|"+wordKey+`\Max Display|REG_DWORD:4` {
		t.Errorf("sets = %v", hook.sets)
	}
	if len(hook.queries) != 1 {
		t.Errorf("queries = %v", hook.queries)
	}
	if len(hook.deletes) != 1 {
		t.Errorf("deletes = %v", hook.deletes)
	}

	cancel()
	if err := s.SetValue(wordKey, "x", String("y"), t0); err != nil {
		t.Fatal(err)
	}
	if len(hook.sets) != 1 {
		t.Error("detached hook must not receive events")
	}
}

func TestDeleteKeyReportsValueDeletes(t *testing.T) {
	reg := New()
	hook := &recordingHook{}
	reg.Attach(hook)
	s := reg.Session("app")
	if err := s.SetValue(`HKCU\App\Sub`, "a", String("1"), t0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetValue(`HKCU\App\Sub`, "b", String("2"), t0); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteKey(`HKCU\App\Sub`, t0); err != nil {
		t.Fatal(err)
	}
	if len(hook.deletes) != 2 {
		t.Errorf("DeleteKey must report each value deletion, got %v", hook.deletes)
	}
}

func TestSnapshot(t *testing.T) {
	reg := New()
	s := reg.Session("word")
	if err := s.SetValue(wordKey, "Max Display", DWordValue(9), t0); err != nil {
		t.Fatal(err)
	}
	if err := s.SetValue(wordKey+`\MRU`, "Item 1", String("a.doc"), t0); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot(`HKCU\Software\Microsoft`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		wordKey + `\Max Display`: "REG_DWORD:9",
		wordKey + `\MRU\Item 1`:  "REG_SZ:a.doc",
	}
	if !reflect.DeepEqual(snap, want) {
		t.Errorf("Snapshot = %v, want %v", snap, want)
	}
}

func TestApplyEncodedRollback(t *testing.T) {
	reg := New()
	s := reg.Session("word")
	if err := s.SetValue(wordKey, "Max Display", DWordValue(4), t0); err != nil {
		t.Fatal(err)
	}
	// Roll back to a historical encoded value.
	full := FullKey(wordKey, "Max Display")
	if err := s.ApplyEncoded(full, "REG_DWORD:9", t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	v, err := s.QueryValue(wordKey, "Max Display", t0.Add(time.Second))
	if err != nil || v.DWord != 9 {
		t.Fatalf("after rollback = %+v, %v", v, err)
	}
	// Historical deletion rolls back by removing the value.
	if err := s.RemoveEncoded(full, t0.Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryValue(wordKey, "Max Display", t0.Add(2*time.Second)); !errors.Is(err, ErrNoValue) {
		t.Errorf("after RemoveEncoded err = %v, want ErrNoValue", err)
	}
}

func TestConcurrentSessions(t *testing.T) {
	reg := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := reg.Session("app")
			key := `HKCU\Concurrent\K` + string(rune('a'+g))
			for i := 0; i < 100; i++ {
				if err := s.SetValue(key, "v", DWordValue(uint32(i)), t0); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.QueryValue(key, "v", t0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// Property: Encode/DecodeValue round-trips arbitrary payloads.
func TestEncodePropertyRoundTrip(t *testing.T) {
	prop := func(s string, d uint32, bin []byte, multi []string) bool {
		for i, m := range multi {
			// MULTI_SZ entries cannot contain NUL (the separator).
			multi[i] = stripNul(m)
		}
		for _, v := range []Value{String(s), DWordValue(d), BinaryValue(bin), MultiString(multi...)} {
			got, err := DecodeValue(v.Encode())
			if err != nil || !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func stripNul(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r != 0 {
			out = append(out, r)
		}
	}
	return string(out)
}
