package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2013, 6, 1, 12, 0, 0, 0, time.UTC)

func TestWriteReadFile(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/etc/app.conf", []byte("a=1\n"), t0); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/etc/app.conf")
	if err != nil || string(data) != "a=1\n" {
		t.Fatalf("ReadFile = %q,%v", data, err)
	}
	if !fs.Exists("/etc/app.conf") || fs.Exists("/nope") {
		t.Error("Exists wrong")
	}
}

func TestWriteFileCopiesData(t *testing.T) {
	fs := New()
	buf := []byte("original")
	if err := fs.WriteFile("/f", buf, t0); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	data, _ := fs.ReadFile("/f")
	if string(data) != "original" {
		t.Error("FS must copy written data, not alias caller buffers")
	}
	data[0] = 'Y'
	again, _ := fs.ReadFile("/f")
	if string(again) != "original" {
		t.Error("ReadFile must return a copy")
	}
}

func TestReadMissing(t *testing.T) {
	if _, err := New().ReadFile("/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("err = %v, want ErrNotExist", err)
	}
	if err := New().Remove("/missing", t0); !errors.Is(err, ErrNotExist) {
		t.Errorf("Remove err = %v, want ErrNotExist", err)
	}
}

func TestEmptyPathRejected(t *testing.T) {
	if err := New().WriteFile("", []byte("x"), t0); err == nil {
		t.Error("empty path must be rejected")
	}
}

func TestFlushEvents(t *testing.T) {
	fs := New()
	var events []FlushEvent
	cancel := fs.Subscribe(func(ev FlushEvent) { events = append(events, ev) })
	defer cancel()

	if err := fs.WriteFile("/f", []byte("v1"), t0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/f", []byte("v2"), t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/f", t0.Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}

	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Old != nil || string(events[0].New) != "v1" {
		t.Errorf("create event = %+v", events[0])
	}
	if string(events[1].Old) != "v1" || string(events[1].New) != "v2" {
		t.Errorf("update event = %+v", events[1])
	}
	if string(events[2].Old) != "v2" || events[2].New != nil {
		t.Errorf("remove event = %+v", events[2])
	}
	if !events[1].Time.Equal(t0.Add(time.Second)) {
		t.Errorf("event time = %v", events[1].Time)
	}
}

func TestSubscribeCancel(t *testing.T) {
	fs := New()
	count := 0
	cancel := fs.Subscribe(func(FlushEvent) { count++ })
	if err := fs.WriteFile("/f", []byte("1"), t0); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := fs.WriteFile("/f", []byte("2"), t0); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("subscriber called %d times, want 1 (after cancel, none)", count)
	}
}

func TestMultipleSubscribersDeterministicOrder(t *testing.T) {
	fs := New()
	var order []int
	fs.Subscribe(func(FlushEvent) { order = append(order, 1) })
	fs.Subscribe(func(FlushEvent) { order = append(order, 2) })
	if err := fs.WriteFile("/f", []byte("x"), t0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{1, 2}) {
		t.Errorf("delivery order = %v, want [1 2]", order)
	}
}

func TestList(t *testing.T) {
	fs := New()
	for _, p := range []string{"/z", "/a", "/m"} {
		if err := fs.WriteFile(p, []byte("x"), t0); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.List(); !reflect.DeepEqual(got, []string{"/a", "/m", "/z"}) {
		t.Errorf("List = %v", got)
	}
}

func TestConcurrentWrites(t *testing.T) {
	fs := New()
	var mu sync.Mutex
	seen := 0
	fs.Subscribe(func(FlushEvent) {
		mu.Lock()
		seen++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				path := string(rune('a' + g))
				if err := fs.WriteFile(path, []byte{byte(i)}, t0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if seen != 8*50 {
		t.Errorf("subscriber saw %d events, want %d", seen, 8*50)
	}
}

func TestPollWatcher(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "app.conf")
	if err := os.WriteFile(path, []byte("initial"), 0o644); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []FlushEvent
	w := NewPollWatcher(path, 5*time.Millisecond, func(ev FlushEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	w.Start()
	defer w.Stop()

	// Baseline must not produce an event.
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	n := len(events)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("baseline produced %d events, want 0", n)
	}

	// Write atomically (tmp + rename) so the poller never observes a
	// half-written file; real applications flush configs the same way.
	if err := atomicWrite(path, []byte("changed")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n = len(events)
		mu.Unlock()
		if n >= 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("change not observed")
	}
	if string(events[0].Old) != "initial" || string(events[0].New) != "changed" {
		t.Errorf("event = %+v", events[0])
	}
}

func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func TestPollWatcherCreateAndRemove(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "new.conf")
	var mu sync.Mutex
	var events []FlushEvent
	w := NewPollWatcher(path, 5*time.Millisecond, func(ev FlushEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	w.Start()
	defer w.Stop()

	if err := atomicWrite(path, []byte("born")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, &mu, &events, 1)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	waitFor(t, &mu, &events, 2)

	mu.Lock()
	defer mu.Unlock()
	if events[0].Old != nil || string(events[0].New) != "born" {
		t.Errorf("create event = %+v", events[0])
	}
	if string(events[1].Old) != "born" || events[1].New != nil {
		t.Errorf("remove event = %+v", events[1])
	}
}

func waitFor(t *testing.T, mu *sync.Mutex, events *[]FlushEvent, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		cur := len(*events)
		mu.Unlock()
		if cur >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d events (have %d)", n, cur)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
