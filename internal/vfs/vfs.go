// Package vfs provides the file-observation substrate for Ocasta's
// application-file loggers. The paper intercepts applications flushing
// whole configuration files to disk; here a small virtual filesystem
// delivers deterministic flush events (old content, new content, time) to
// subscribers, and a polling watcher provides the same events for real
// on-disk files.
package vfs

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// ErrNotExist is returned when reading or removing a missing file.
var ErrNotExist = errors.New("vfs: file does not exist")

// FlushEvent describes one observed whole-file flush. New is nil when the
// file was removed; Old is nil when the file was created.
type FlushEvent struct {
	Path string
	Old  []byte // nil on create
	New  []byte // nil on remove
	Time time.Time
}

// FS is an in-memory filesystem with flush notification. The zero value is
// not usable; construct with New. FS is safe for concurrent use.
// Subscribers run synchronously inside the mutating call, so by the time
// WriteFile returns every logger has seen the flush — mirroring in-process
// interception, which observes the write before it completes.
type FS struct {
	mu    sync.Mutex
	files map[string][]byte
	subs  map[int]func(FlushEvent)
	next  int
}

// New returns an empty filesystem.
func New() *FS {
	return &FS{files: make(map[string][]byte), subs: make(map[int]func(FlushEvent))}
}

// WriteFile stores data at path, stamped t, and notifies subscribers with
// the previous and new content.
func (fs *FS) WriteFile(path string, data []byte, t time.Time) error {
	if path == "" {
		return fmt.Errorf("vfs: empty path")
	}
	fs.mu.Lock()
	old, existed := fs.files[path]
	cp := make([]byte, len(data))
	copy(cp, data)
	fs.files[path] = cp
	subs := fs.snapshotSubs()
	fs.mu.Unlock()

	ev := FlushEvent{Path: path, New: cp, Time: t}
	if existed {
		ev.Old = old
	}
	for _, fn := range subs {
		fn(ev)
	}
	return nil
}

// ReadFile returns a copy of the file content.
func (fs *FS) ReadFile(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Exists reports whether path exists.
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// Remove deletes path, stamped t, and notifies subscribers with New == nil.
func (fs *FS) Remove(path string, t time.Time) error {
	fs.mu.Lock()
	old, ok := fs.files[path]
	if !ok {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	delete(fs.files, path)
	subs := fs.snapshotSubs()
	fs.mu.Unlock()

	ev := FlushEvent{Path: path, Old: old, Time: t}
	for _, fn := range subs {
		fn(ev)
	}
	return nil
}

// List returns all paths, sorted.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	paths := make([]string, 0, len(fs.files))
	for p := range fs.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Subscribe registers fn to receive every subsequent flush event. The
// returned cancel function unregisters it.
func (fs *FS) Subscribe(fn func(FlushEvent)) (cancel func()) {
	fs.mu.Lock()
	id := fs.next
	fs.next++
	fs.subs[id] = fn
	fs.mu.Unlock()
	return func() {
		fs.mu.Lock()
		delete(fs.subs, id)
		fs.mu.Unlock()
	}
}

// snapshotSubs must be called with fs.mu held.
func (fs *FS) snapshotSubs() []func(FlushEvent) {
	ids := make([]int, 0, len(fs.subs))
	for id := range fs.subs {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic delivery order
	out := make([]func(FlushEvent), 0, len(ids))
	for _, id := range ids {
		out = append(out, fs.subs[id])
	}
	return out
}

// PollWatcher watches one real on-disk file by polling, synthesizing the
// same FlushEvents the virtual filesystem delivers. It exists so the file
// logger can also run against real application configuration files.
type PollWatcher struct {
	path     string
	interval time.Duration
	fn       func(FlushEvent)

	mu   sync.Mutex
	last []byte
	has  bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewPollWatcher creates a watcher for path that calls fn on every observed
// content change, polling at the given interval.
func NewPollWatcher(path string, interval time.Duration, fn func(FlushEvent)) *PollWatcher {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	return &PollWatcher{path: path, interval: interval, fn: fn, done: make(chan struct{})}
}

// Start begins polling. The initial content (if the file exists) is
// recorded as the baseline without emitting an event.
func (w *PollWatcher) Start() {
	if data, err := os.ReadFile(w.path); err == nil {
		w.mu.Lock()
		w.last, w.has = data, true
		w.mu.Unlock()
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		ticker := time.NewTicker(w.interval)
		defer ticker.Stop()
		for {
			select {
			case <-w.done:
				return
			case <-ticker.C:
				w.poll()
			}
		}
	}()
}

// Stop halts polling and waits for the poll goroutine to exit.
func (w *PollWatcher) Stop() {
	close(w.done)
	w.wg.Wait()
}

func (w *PollWatcher) poll() {
	data, err := os.ReadFile(w.path)
	now := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case err != nil && w.has:
		old := w.last
		w.last, w.has = nil, false
		w.fn(FlushEvent{Path: w.path, Old: old, Time: now})
	case err == nil && !w.has:
		w.last, w.has = data, true
		w.fn(FlushEvent{Path: w.path, New: data, Time: now})
	case err == nil && w.has && !bytesEqual(w.last, data):
		old := w.last
		w.last = data
		w.fn(FlushEvent{Path: w.path, Old: old, New: data, Time: now})
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
