package backup

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"ocasta/internal/ttkv"
)

// Manager errors.
var (
	// ErrUpToDate is returned by Incremental (and Auto) when the store has
	// minted no new sequence numbers since the newest backup — there is
	// nothing to archive, and an empty incremental would only pad chains.
	ErrUpToDate = errors.New("backup: no new records since the newest backup")
	// ErrNoBase is returned by Incremental when the directory holds no
	// backup to increment on; take a full backup first (or use Auto).
	ErrNoBase = errors.New("backup: no existing backup to increment on")
	// ErrStoreBehind is returned when the store's current sequence is
	// below the newest backup's — the directory belongs to a different
	// (or further-ahead) store, and chaining onto it would lie.
	ErrStoreBehind = errors.New("backup: store is behind the newest backup")
)

// manifestExt is the manifest file suffix; record files use ".rec" and
// in-flight temp files ".tmp".
const (
	manifestExt = ".bkm"
	recordExt   = ".rec"
	tmpExt      = ".tmp"
)

// DefaultMaxFileBytes is the default record-file segment size: large
// backups split into segments around this size so a verify failure
// localizes to one bounded file and partial-write windows stay small.
const DefaultMaxFileBytes = 64 << 20

// Options tunes a Manager. The zero value is ready to use.
type Options struct {
	// MaxFileBytes caps each record file's size (approximately: a segment
	// closes after the record that crosses the cap). 0 means
	// DefaultMaxFileBytes.
	MaxFileBytes int64
}

// Manager takes backups of one store into one directory. All operations
// serialize on an internal mutex, so a scheduled backup and a BACKUP
// wire command never interleave their directory scans and writes; the
// store itself is never blocked — exports pin a sequence bound and scan
// under per-shard read locks only. A Manager works identically on a
// primary and on a read-only replica (replicas apply the primary's
// sequence numbers verbatim, so a replica's backups restore to the same
// bytes); the one replica hazard — a full resync Reset mid-export — is
// detected and returned as an error rather than archived.
//
//ocasta:durable
type Manager struct {
	dir          string
	store        *ttkv.Store
	maxFileBytes int64

	mu  sync.Mutex
	now func() time.Time // test hook; time.Now outside tests
}

// NewManager returns a Manager writing backups of store into dir,
// creating the directory if needed.
func NewManager(store *ttkv.Store, dir string, opts Options) (*Manager, error) {
	if store == nil {
		return nil, errors.New("backup: nil store")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("backup: creating directory: %w", err)
	}
	maxBytes := opts.MaxFileBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxFileBytes
	}
	return &Manager{dir: dir, store: store, maxFileBytes: maxBytes, now: time.Now}, nil
}

// Dir returns the backup directory.
func (m *Manager) Dir() string { return m.dir }

// Full takes a full backup: every record in (0, CurrentSeq].
func (m *Manager) Full() (*Manifest, error) { return m.run(KindFull) }

// Incremental takes an incremental backup on top of the newest existing
// backup: every record minted since its UpTo. ErrNoBase without an
// existing backup; ErrUpToDate when there is nothing new.
func (m *Manager) Incremental() (*Manifest, error) { return m.run(KindIncr) }

// Auto takes a full backup into an empty directory and an incremental
// otherwise — the right default for a schedule.
func (m *Manager) Auto() (*Manifest, error) { return m.run("") }

// List returns the directory's decodable manifests, oldest first.
// Corrupt manifests are skipped here; Verify reports them.
func (m *Manager) List() ([]*Manifest, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	entries, _, err := loadManifests(m.dir)
	if err != nil {
		return nil, err
	}
	out := make([]*Manifest, len(entries))
	for i, e := range entries {
		out[i] = e.man
	}
	return out, nil
}

// Verify runs the offline verifier against the manager's directory.
func (m *Manager) Verify() (*Report, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return VerifyDir(m.dir)
}

// run takes one backup. kind "" means Auto.
func (m *Manager) run(kind string) (*Manifest, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	entries, _, err := loadManifests(m.dir)
	if err != nil {
		return nil, err
	}
	if kind == "" {
		if len(entries) == 0 {
			kind = KindFull
		} else {
			kind = KindIncr
		}
	}

	man := &Manifest{Kind: kind, Created: m.now().UnixNano()}
	if kind == KindIncr {
		if len(entries) == 0 {
			return nil, ErrNoBase
		}
		newest := entries[len(entries)-1].man
		man.Base, man.Parent = newest.UpTo, newest.ID
	}
	man.UpTo = m.store.CurrentSeq()
	if man.UpTo < man.Base {
		return nil, fmt.Errorf("%w: store at seq %d, newest backup at %d", ErrStoreBehind, man.UpTo, man.Base)
	}
	if kind == KindIncr && man.UpTo == man.Base {
		return nil, ErrUpToDate
	}
	if man.ID, err = newID(); err != nil {
		return nil, err
	}

	recs, err := m.store.ExportRange(man.Base, man.UpTo)
	if err != nil {
		return nil, err
	}
	segs, err := buildSegments(recs, man, m.maxFileBytes)
	if err != nil {
		return nil, err
	}

	// Durability ordering is the crash-safety story: every record file is
	// fully written, fsynced, and renamed into place — and the directory
	// synced — before the manifest that names it is even started. A kill
	// at any instant leaves either "*.tmp" debris or record files no
	// manifest references; both are invisible to verify and restore, and
	// Prune sweeps them.
	for _, seg := range segs {
		if err := writeFileAtomic(m.dir, seg.info.Name, seg.data); err != nil {
			return nil, err
		}
		man.Files = append(man.Files, seg.info)
	}
	syncDir(m.dir)
	if err := writeFileAtomic(m.dir, man.ID+manifestExt, man.Encode()); err != nil {
		return nil, err
	}
	syncDir(m.dir)
	return man, nil
}

// segment is one record file ready to write.
type segment struct {
	info FileInfo
	data []byte
}

// buildSegments encodes records into one or more record files of at most
// roughly maxBytes each, tiling (man.Base, man.UpTo] contiguously. It
// revalidates every record against the archival invariants (strictly
// ascending within the range), so a torn export fails here as
// ErrSnapshotTorn instead of reaching disk.
func buildSegments(recs []ttkv.ReplRecord, man *Manifest, maxBytes int64) ([]segment, error) {
	var segs []segment
	open := func(from uint64) *segment {
		segs = append(segs, segment{
			info: FileInfo{
				Name: fmt.Sprintf("%s-%s-%d%s", man.Kind, man.ID, len(segs), recordExt),
				From: from,
			},
			data: []byte(recMagic),
		})
		return &segs[len(segs)-1]
	}
	cur := open(man.Base)
	last := man.Base
	for i, r := range recs {
		if err := checkRecord(r, last); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrSnapshotTorn, i, err)
		}
		if r.Seq > man.UpTo {
			return nil, fmt.Errorf("%w: record %d: seq %d past pinned bound %d", ErrSnapshotTorn, i, r.Seq, man.UpTo)
		}
		if int64(len(cur.data)) >= maxBytes && cur.info.Records > 0 {
			cur.info.To = last
			cur = open(last)
		}
		cur.data = ttkv.AppendReplRecord(cur.data, r)
		cur.info.Records++
		last = r.Seq
	}
	// The final segment absorbs the tail of the range even when the last
	// records are sparse: its To is the pinned bound, not the last seq.
	cur.info.To = man.UpTo
	for i := range segs {
		sum := sha256.Sum256(segs[i].data)
		segs[i].info.Bytes = int64(len(segs[i].data))
		segs[i].info.SHA256 = hex.EncodeToString(sum[:])
	}
	return segs, nil
}

// writeFileAtomic writes name under dir with the temp-file + fsync +
// rename discipline (as CompactTo does for AOF snapshots): readers and
// crash recovery only ever see absent, in-progress ".tmp", or complete.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+tmpExt)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("backup: creating %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()      // the write error wins
		_ = os.Remove(tmp) // best-effort cleanup of the torn temp file
		return fmt.Errorf("backup: writing %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()      // the sync error wins
		_ = os.Remove(tmp) // best-effort cleanup
		return fmt.Errorf("backup: syncing %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp) // best-effort cleanup
		return fmt.Errorf("backup: closing %s: %w", name, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("backup: publishing %s: %w", name, err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename survives power loss;
// best-effort, as not every filesystem supports directory fsync.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()  // best-effort by contract
	_ = d.Close() // read-only handle; nothing buffered
}

// newID returns 8 random bytes as 16 hex digits.
func newID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("backup: generating id: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// loaded is one decodable manifest plus where it lives.
type loaded struct {
	man  *Manifest
	path string
}

// loadManifests reads every "*.bkm" in dir, returning the decodable ones
// sorted oldest first — by UpTo, then Created, then ID, so "newest"
// means highest store state even if the wall clock stepped — plus the
// paths of any that failed to decode.
func loadManifests(dir string) (entries []loaded, corrupt []string, err error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("backup: reading directory: %w", err)
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, manifestExt) {
			continue
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("backup: reading %s: %w", name, err)
		}
		man, err := DecodeManifest(data)
		if err != nil {
			corrupt = append(corrupt, path)
			continue
		}
		entries = append(entries, loaded{man: man, path: path})
	}
	sort.Slice(entries, func(a, b int) bool {
		ma, mb := entries[a].man, entries[b].man
		if ma.UpTo != mb.UpTo {
			return ma.UpTo < mb.UpTo
		}
		if ma.Created != mb.Created {
			return ma.Created < mb.Created
		}
		return ma.ID < mb.ID
	})
	return entries, corrupt, nil
}
