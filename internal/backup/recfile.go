package backup

import (
	"errors"
	"fmt"

	"ocasta/internal/ttkv"
)

// Record-file errors.
var (
	// ErrRecordFileCorrupt is returned when a backup record file fails
	// structural validation: bad magic, a malformed record, or sequence
	// numbers outside the declared range or not strictly ascending.
	ErrRecordFileCorrupt = errors.New("backup: corrupt record file")
	// ErrSnapshotTorn is returned when an export from the store violates
	// the archival invariants — the signature of a replica that was Reset
	// for a full resync mid-scan, mixing sequence incarnations. The
	// backup is abandoned; retrying after the resync settles succeeds.
	ErrSnapshotTorn = errors.New("backup: torn store snapshot")
)

// recMagic heads every backup record file; the trailing digit is the
// format version.
const recMagic = "OCBKREC1"

// encodeRecordFile renders records into the backup record-file format:
// the magic header followed by back-to-back replication-codec records.
// It enforces what decodeRecordFile will demand back — strictly
// ascending nonzero sequence numbers, nonzero timestamps, nonempty keys,
// no batch flags — so a torn export fails here (ErrSnapshotTorn)
// instead of producing an archive only verify would catch.
func encodeRecordFile(recs []ttkv.ReplRecord) ([]byte, error) {
	buf := []byte(recMagic)
	var last uint64
	for i, r := range recs {
		if err := checkRecord(r, last); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrSnapshotTorn, i, err)
		}
		last = r.Seq
		buf = ttkv.AppendReplRecord(buf, r)
	}
	return buf, nil
}

// decodeRecordFile parses a backup record file, requiring every record
// to fall strictly ascending in (after, upTo]. Callers verifying pure
// structure (the fuzz target) pass the full sequence range. Decoded
// bytes re-encode identically: the record codec is canonical and
// everything encodeRecordFile refuses to write, this refuses to read.
func decodeRecordFile(b []byte, after, upTo uint64) ([]ttkv.ReplRecord, error) {
	if len(b) < len(recMagic) || string(b[:len(recMagic)]) != recMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrRecordFileCorrupt)
	}
	b = b[len(recMagic):]
	var recs []ttkv.ReplRecord
	last := after
	for len(b) > 0 {
		r, n, err := ttkv.DecodeReplRecord(b)
		if err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrRecordFileCorrupt, len(recs), err)
		}
		if err := checkRecord(r, last); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", ErrRecordFileCorrupt, len(recs), err)
		}
		if r.Seq > upTo {
			return nil, fmt.Errorf("%w: record %d: seq %d past range end %d", ErrRecordFileCorrupt, len(recs), r.Seq, upTo)
		}
		last = r.Seq
		recs = append(recs, r)
		b = b[n:]
	}
	return recs, nil
}

// checkRecord validates one record against the archival invariants.
func checkRecord(r ttkv.ReplRecord, last uint64) error {
	if r.Seq <= last {
		return fmt.Errorf("seq %d does not ascend past %d", r.Seq, last)
	}
	if r.Time.UnixNano() == 0 {
		return errors.New("zero timestamp")
	}
	if r.Key == "" {
		return errors.New("empty key")
	}
	if r.BatchOpen {
		// Batch framing is a live-stream visibility concern; an archive
		// is applied offline in bulk, so the flag never belongs on disk.
		return errors.New("batch flag set")
	}
	return nil
}
