package backup

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ocasta/internal/ttkv"
)

// crashEnv names the environment variable that turns the helper test
// into a backup-taking victim process.
const crashEnv = "OCASTA_BACKUP_CRASH_DIR"

// TestBackupCrashHelper is not a test: when crashEnv is set it becomes
// the victim of TestBackupCrashSafety — a process that takes small
// backups in a tight loop (tiny segments, so renames are frequent)
// against a store under write load, until the parent SIGKILLs it.
func TestBackupCrashHelper(t *testing.T) {
	dir := os.Getenv(crashEnv)
	if dir == "" {
		t.Skip("helper for TestBackupCrashSafety; set OCASTA_BACKUP_CRASH_DIR to run")
	}
	store := ttkv.New()
	m, err := NewManager(store, dir, Options{MaxFileBytes: 512})
	if err != nil {
		fmt.Println("HELPER-ERROR", err)
		return
	}
	// Seed synchronously so even the earliest kill lands on a backup
	// with real data in flight, then keep writing until killed.
	for i := 0; i < 50; i++ {
		if err := store.Set(fmt.Sprintf("cfg-%d", i%40), fmt.Sprintf("v%d", i), at(i)); err != nil {
			fmt.Println("HELPER-ERROR", err)
			return
		}
	}
	go func() {
		for i := 50; ; i++ {
			key := fmt.Sprintf("cfg-%d", i%40)
			if err := store.Set(key, fmt.Sprintf("v%d", i), at(i)); err != nil {
				fmt.Println("HELPER-ERROR", err)
				return
			}
		}
	}()
	fmt.Println("HELPER-RUNNING") // parent arms the kill on this marker
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) { // parent kills us long before this
		if _, err := m.Auto(); err != nil && !errors.Is(err, ErrUpToDate) {
			fmt.Println("HELPER-ERROR", err)
			return
		}
	}
}

// TestBackupCrashSafety SIGKILLs a process mid-backup at randomized
// points and asserts the crash-safety contract: the directory still
// verifies clean (any debris is ignorable ".tmp" files or record files
// no manifest references — never a manifest naming missing or partial
// data), whatever was archived restores, and the restored store can
// seed a fresh backup chain.
func TestBackupCrashSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary; skipped in -short")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 5
	for round := 0; round < rounds; round++ {
		dir := filepath.Join(t.TempDir(), "backups")

		cmd := exec.Command(bin, "-test.run=^TestBackupCrashHelper$", "-test.v")
		cmd.Env = append(os.Environ(), crashEnv+"="+dir)
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(out)
		running := false
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "HELPER-ERROR") {
				t.Fatalf("round %d: helper failed: %s", round, line)
			}
			if strings.Contains(line, "HELPER-RUNNING") {
				running = true
				break
			}
		}
		if !running {
			_ = cmd.Process.Kill() // helper never armed; don't leak it
			t.Fatalf("round %d: helper exited before running (scan err %v)", round, sc.Err())
		}
		// Kill at a randomized instant: early kills land mid-first-backup,
		// later ones between segment renames or mid-manifest.
		time.Sleep(time.Duration(rand.Intn(30_000)) * time.Microsecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatalf("round %d: kill: %v", round, err)
		}
		go func() { // drain so the helper can't block on a full pipe first
			for sc.Scan() {
			}
		}()
		_ = cmd.Wait() // exit status is the kill signal; expected

		// Contract 1: verify passes — debris may exist, issues may not.
		rep, err := VerifyDir(dir)
		if err != nil {
			t.Fatalf("round %d: VerifyDir: %v", round, err)
		}
		if !rep.OK() {
			t.Fatalf("round %d: issues after SIGKILL: %v", round, rep.Issues)
		}
		t.Logf("round %d: %d backups, %d temp files, %d orphans after kill",
			round, rep.Backups, len(rep.TempFiles), len(rep.Orphans))

		if rep.Backups == 0 {
			continue // killed before any manifest landed; nothing to restore
		}
		// Contract 2: the archived prefix restores.
		restored, info, err := Restore(dir, Target{}, 0)
		if err != nil {
			t.Fatalf("round %d: Restore: %v", round, err)
		}
		if restored.CurrentSeq() != info.AppliedSeq {
			t.Fatalf("round %d: restored seq %d, info %+v", round, restored.CurrentSeq(), info)
		}
		// Contract 3: the survivor seeds a fresh chain — a manager on the
		// restored store takes the next backup in the same directory.
		m2, err := NewManager(restored, dir, Options{})
		if err != nil {
			t.Fatalf("round %d: NewManager after crash: %v", round, err)
		}
		if err := restored.Set("post-crash", "recovered", at(1_000_000+round)); err != nil {
			t.Fatal(err)
		}
		if _, err := m2.Incremental(); err != nil {
			t.Fatalf("round %d: Incremental after crash: %v", round, err)
		}
		if rep, err := m2.Verify(); err != nil || !rep.OK() {
			t.Fatalf("round %d: verify after recovery: %+v, %v", round, rep, err)
		}
	}
}
