package backup

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"ocasta/internal/ttkv"
)

// Restore errors.
var (
	// ErrNoBackups is returned when the directory holds no restorable
	// backup chain at all.
	ErrNoBackups = errors.New("backup: no restorable backups")
	// ErrTargetUnreachable is returned when a sequence target lies past
	// everything any intact chain covers.
	ErrTargetUnreachable = errors.New("backup: target sequence past every backup")
)

// Target selects the point in time to restore to. The zero value means
// "latest": everything the newest intact chain covers. Seq bounds the
// restore at a store sequence number (state as ViewAt(Seq) saw it);
// Time bounds it at a timestamp (state as GetAt(key, Time) saw it —
// records stamped later are dropped even if they were written, and
// archived, earlier in sequence order, exactly mirroring GetAt's
// timeline semantics). Both may be set; records must pass both bounds.
type Target struct {
	Seq  uint64
	Time time.Time
}

// ParseTarget parses a restore target: "" is latest, a bare decimal
// integer is a sequence number, anything else must be an RFC 3339
// timestamp ("2026-08-07T12:00:00Z", fractional seconds allowed).
func ParseTarget(s string) (Target, error) {
	if s == "" {
		return Target{}, nil
	}
	if isDecimal(s) {
		seq, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return Target{}, fmt.Errorf("backup: bad sequence target %q: %w", s, err)
		}
		if seq == 0 {
			return Target{}, errors.New("backup: sequence target must be positive")
		}
		return Target{Seq: seq}, nil
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return Target{}, fmt.Errorf("backup: target %q is neither a sequence number nor an RFC 3339 time", s)
	}
	return Target{Time: t}, nil
}

func isDecimal(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// RestoreInfo describes what a restore replayed.
type RestoreInfo struct {
	// HeadID is the manifest the chain was restored through and ChainLen
	// how many manifests the chain held (1 for a bare full backup).
	HeadID   string
	ChainLen int
	// UpTo is the head manifest's sequence bound — the latest state the
	// chain could restore.
	UpTo uint64
	// RecordsRead counts records decoded from the chain, RecordsApplied
	// the subset within the target bounds, and AppliedSeq the highest
	// sequence number applied (0 for an empty restore).
	RecordsRead    uint64
	RecordsApplied uint64
	AppliedSeq     uint64
}

// applyChunk bounds how many records are applied under the shard locks
// at once during restore.
const applyChunk = 4096

// Restore materializes the backed-up store at target into a fresh
// in-memory store with the given shard count (0 for the default). It
// picks the newest intact chain that can serve the target, verifies
// every record file's checksum as it reads — a backup that drifted on
// disk fails here, never silently restores — and replays the chain in
// sequence order, so the restored store re-creates the original's exact
// per-version histories and sequence numbers: a snapshot dump of the
// restored store is byte-identical to one of the original at the same
// point.
func Restore(dir string, target Target, shards int) (*ttkv.Store, *RestoreInfo, error) {
	entries, corrupt, err := loadManifests(dir)
	if err != nil {
		return nil, nil, err
	}
	chain, err := pickChain(entries, corrupt, target)
	if err != nil {
		return nil, nil, err
	}
	head := chain[len(chain)-1]
	info := &RestoreInfo{HeadID: head.ID, ChainLen: len(chain), UpTo: head.UpTo}

	if shards <= 0 {
		shards = ttkv.DefaultShards
	}
	store := ttkv.NewSharded(shards)
	var batch []ttkv.ReplRecord
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := store.ApplyReplicated(batch); err != nil {
			return fmt.Errorf("backup: replaying chain: %w", err)
		}
		info.RecordsApplied += uint64(len(batch))
		info.AppliedSeq = batch[len(batch)-1].Seq
		batch = batch[:0]
		return nil
	}
	for _, m := range chain {
		for _, f := range m.Files {
			if target.Seq != 0 && f.From >= target.Seq {
				break // sequences only ascend from here on
			}
			recs, err := readRecordFile(dir, f)
			if err != nil {
				return nil, nil, err
			}
			info.RecordsRead += uint64(len(recs))
			for _, r := range recs {
				if target.Seq != 0 && r.Seq > target.Seq {
					break
				}
				if !target.Time.IsZero() && r.Time.After(target.Time) {
					continue
				}
				batch = append(batch, r)
				if len(batch) >= applyChunk {
					if err := flush(); err != nil {
						return nil, nil, err
					}
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, nil, err
	}
	return store, info, nil
}

// RestoreToAOF restores at target and writes the result as a fresh,
// atomically-published AOF at outPath — the file a daemon then serves
// from. Replaying that AOF re-mints the same sequence numbers the
// backup recorded (sequences are dense on a logging primary), so the
// round trip through cold storage is exact.
func RestoreToAOF(dir string, target Target, outPath string, shards int) (*RestoreInfo, error) {
	store, info, err := Restore(dir, target, shards)
	if err != nil {
		return nil, err
	}
	if err := store.CompactTo(outPath, 0); err != nil {
		return nil, fmt.Errorf("backup: writing restored AOF: %w", err)
	}
	return info, nil
}

// pickChain selects the restore chain: among manifests whose ancestry
// is intact and whose range can serve the target, the newest. Broken or
// corrupt manifests are skipped — a directory where the newest chain is
// damaged still restores from an older intact one.
func pickChain(entries []loaded, corrupt []string, target Target) ([]*Manifest, error) {
	byID := map[string]*Manifest{}
	for _, e := range entries {
		if _, dup := byID[e.man.ID]; dup {
			return nil, fmt.Errorf("backup: duplicate backup id %s in directory", e.man.ID)
		}
		byID[e.man.ID] = e.man
	}
	var bestShort *Manifest // newest intact head, for the error message
	for i := len(entries) - 1; i >= 0; i-- {
		head := entries[i].man
		if _, ok := chainRoot(head, byID); !ok {
			continue
		}
		if target.Seq != 0 && head.UpTo < target.Seq {
			if bestShort == nil {
				bestShort = head
			}
			continue
		}
		var chain []*Manifest
		for cur := head; ; cur = byID[cur.Parent] {
			chain = append(chain, cur)
			if cur.Kind == KindFull {
				break
			}
		}
		// Walked head→root; replay wants root→head.
		for a, b := 0, len(chain)-1; a < b; a, b = a+1, b-1 {
			chain[a], chain[b] = chain[b], chain[a]
		}
		return chain, nil
	}
	if bestShort != nil {
		return nil, fmt.Errorf("%w: want seq %d, newest intact backup covers up to %d", ErrTargetUnreachable, target.Seq, bestShort.UpTo)
	}
	if len(corrupt) > 0 {
		return nil, fmt.Errorf("%w (%d corrupt manifests in directory — run verify)", ErrNoBackups, len(corrupt))
	}
	return nil, ErrNoBackups
}

// readRecordFile reads one record file, insisting on the manifested
// size and checksum before decoding.
func readRecordFile(dir string, f FileInfo) ([]ttkv.ReplRecord, error) {
	path := filepath.Join(dir, f.Name)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("backup: reading %s: %w", f.Name, err)
	}
	if int64(len(data)) != f.Bytes {
		return nil, fmt.Errorf("%w: %s is %d bytes, manifest says %d", ErrRecordFileCorrupt, f.Name, len(data), f.Bytes)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != f.SHA256 {
		return nil, fmt.Errorf("%w: %s checksum mismatch", ErrRecordFileCorrupt, f.Name)
	}
	recs, err := decodeRecordFile(data, f.From, f.To)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", f.Name, err)
	}
	if uint64(len(recs)) != f.Records {
		return nil, fmt.Errorf("%w: %s holds %d records, manifest says %d", ErrRecordFileCorrupt, f.Name, len(recs), f.Records)
	}
	return recs, nil
}
