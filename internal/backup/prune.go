package backup

import (
	"os"
	"path/filepath"
	"strings"
)

// PruneResult summarizes what Prune removed.
type PruneResult struct {
	// Backups is how many manifests (with their record files) were
	// deleted.
	Backups int
	// DataFiles is how many record files were deleted, including orphans
	// no manifest referenced.
	DataFiles int
	// TempFiles is how many "*.tmp" crash leftovers were swept.
	TempFiles int
}

// Prune enforces the retention policy: keep the newest keepFulls full
// backups and every incremental chained on them; delete every backup
// whose chain roots in an older full. keepFulls < 1 keeps all backups
// (only crash debris is swept). Deletion order mirrors the writer's
// creation order in reverse — manifests go before the record files they
// reference — so a crash mid-prune never leaves a manifest naming
// deleted data, only orphan record files the next Prune sweeps.
//
// Conservatism rules the edge cases: a backup whose ancestry cannot be
// resolved (missing or corrupt parent) is never deleted here — Verify
// reports it for a human — and orphan record files are swept only while
// the directory has no corrupt manifests, since a corrupt manifest's
// references are unreadable and its data files would otherwise look
// orphaned.
func (m *Manager) Prune(keepFulls int) (PruneResult, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	var res PruneResult
	entries, corrupt, err := loadManifests(m.dir)
	if err != nil {
		return res, err
	}

	var victims []loaded
	if keepFulls >= 1 {
		// Newest-first fulls; the first keepFulls are the roots to keep.
		keepRoots := map[string]bool{}
		fulls := 0
		for i := len(entries) - 1; i >= 0; i-- {
			if entries[i].man.Kind == KindFull {
				fulls++
				if fulls <= keepFulls {
					keepRoots[entries[i].man.ID] = true
				}
			}
		}
		byID := map[string]*Manifest{}
		for _, e := range entries {
			byID[e.man.ID] = e.man
		}
		for _, e := range entries {
			root, ok := chainRoot(e.man, byID)
			if ok && !keepRoots[root.ID] {
				victims = append(victims, e)
			}
		}
	}

	referenced := map[string]bool{}
	doomed := map[string]bool{}
	for _, v := range victims {
		doomed[v.man.ID] = true
	}
	for _, e := range entries {
		if doomed[e.man.ID] {
			continue
		}
		for _, f := range e.man.Files {
			referenced[f.Name] = true
		}
	}

	// Manifests first: once a victim's manifest is gone, its record files
	// are unreferenced debris whatever happens next.
	for _, v := range victims {
		if err := os.Remove(v.path); err != nil {
			return res, err
		}
		res.Backups++
	}
	for _, v := range victims {
		for _, f := range v.man.Files {
			if referenced[f.Name] {
				continue // shared name with a survivor; never expected, but never delete it
			}
			if err := os.Remove(filepath.Join(m.dir, f.Name)); err != nil && !os.IsNotExist(err) {
				return res, err
			}
			res.DataFiles++
		}
	}

	// Sweep crash debris: temp files always, orphan record files only
	// when every manifest in the directory is readable.
	des, err := os.ReadDir(m.dir)
	if err != nil {
		return res, err
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		switch {
		case strings.HasSuffix(name, tmpExt):
			if err := os.Remove(filepath.Join(m.dir, name)); err != nil && !os.IsNotExist(err) {
				return res, err
			}
			res.TempFiles++
		case strings.HasSuffix(name, recordExt) && len(corrupt) == 0 && !referenced[name]:
			if err := os.Remove(filepath.Join(m.dir, name)); err != nil && !os.IsNotExist(err) {
				return res, err
			}
			res.DataFiles++
		}
	}
	syncDir(m.dir)
	return res, nil
}

// chainRoot walks parent links to the chain's full backup. The second
// result is false when the ancestry cannot be resolved: a missing
// parent, a link whose ranges do not abut, a cycle, or a parentless
// incremental.
func chainRoot(m *Manifest, byID map[string]*Manifest) (*Manifest, bool) {
	cur := m
	for hops := 0; hops <= len(byID); hops++ {
		if cur.Kind == KindFull {
			return cur, true
		}
		parent, ok := byID[cur.Parent]
		if !ok || parent.UpTo != cur.Base {
			return nil, false
		}
		cur = parent
	}
	return nil, false // cycle
}
