package backup

import (
	"fmt"
	"testing"

	"ocasta/internal/ttkv"
)

// benchStore builds a store with n versions spread over n/10 keys —
// ten versions per key, a mixed-history shape rather than a flat
// keyspace — and returns it with its total record count.
func benchStore(b *testing.B, n int) *ttkv.Store {
	b.Helper()
	store := ttkv.New()
	keys := n / 10
	if keys == 0 {
		keys = 1
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("cfg/%04d", i%keys)
		if err := store.Set(key, fmt.Sprintf("value-%d-with-some-realistic-length", i), at(i)); err != nil {
			b.Fatal(err)
		}
	}
	return store
}

// BenchmarkBackupFull measures a full backup of a 50k-record store:
// export, segment, checksum, and the fsync+rename publish sequence.
func BenchmarkBackupFull(b *testing.B) {
	const records = 50_000
	store := benchStore(b, records)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewManager(store, fmt.Sprintf("%s/run-%d", dir, i), Options{})
		if err != nil {
			b.Fatal(err)
		}
		man, err := m.Full()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.SetBytes(man.TotalBytes())
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkBackupIncremental measures the steady-state scheduled case:
// 1000 new records on top of an existing chain.
func BenchmarkBackupIncremental(b *testing.B) {
	const delta = 1_000
	store := benchStore(b, 10_000)
	m, err := NewManager(store, b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Full(); err != nil {
		b.Fatal(err)
	}
	next := 10_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < delta; j++ {
			if err := store.Set(fmt.Sprintf("cfg/%04d", j%100), "incremental-delta-value", at(next)); err != nil {
				b.Fatal(err)
			}
			next++
		}
		b.StartTimer()
		man, err := m.Incremental()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.SetBytes(man.TotalBytes())
		}
	}
	b.ReportMetric(float64(delta)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkRestore measures materializing a 50k-record backup set into
// a fresh store: checksum verification, decode, and sequenced replay.
func BenchmarkRestore(b *testing.B) {
	const records = 50_000
	store := benchStore(b, records)
	m, err := NewManager(store, b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	man, err := m.Full()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(man.TotalBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		restored, info, err := Restore(m.Dir(), Target{}, 0)
		if err != nil {
			b.Fatal(err)
		}
		if info.RecordsApplied != records || restored.CurrentSeq() != records {
			b.Fatalf("restored %d records to seq %d", info.RecordsApplied, restored.CurrentSeq())
		}
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
