package backup

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ocasta/internal/ttkv"
)

// TestBackupUnderLoad is the ISSUE's under-load drill: full and
// incremental backups taken while concurrent writers and cluster
// reverts are mutating the store, then restored and held to
// dump-equivalence — byte-identical snapshot, exact per-version
// histories and sequence numbers — against the quiesced original, with
// point-in-time targets cross-checked against ViewAt and GetAt ground
// truth. Run it under -race and it also proves the export path takes no
// write locks that a writer could deadlock or tear against.
func TestBackupUnderLoad(t *testing.T) {
	store := ttkv.New()
	m := newManager(t, store, Options{MaxFileBytes: 8 << 10})

	const writers = 4
	const perWriter = 600
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			<-start
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("cfg-%d-%d", w, rng.Intn(20))
				// A quarter of writes are stamped into the past to
				// exercise chronological (non-append) inserts.
				ts := at(w*perWriter + i)
				if rng.Intn(4) == 0 {
					ts = ts.Add(-time.Duration(rng.Intn(5000)) * time.Microsecond)
				}
				var err error
				if rng.Intn(19) == 0 {
					err = store.Delete(key, ts)
				} else {
					err = store.Set(key, fmt.Sprintf("v%d.%d", w, i), ts)
				}
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// A revert loop runs concurrently: atomic multi-key batches landing
	// between backups must restore exactly like plain writes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; !stop.Load(); i++ {
			keys := []string{"cfg-0-1", "cfg-1-1", "cfg-2-1"}
			fixAt := at(i * 10)
			if _, err := store.RevertCluster(keys, fixAt, fixAt.Add(time.Hour)); err != nil {
				t.Errorf("RevertCluster: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	close(start)
	time.Sleep(time.Millisecond) // let some writes land before the full
	var backups []*Manifest
	full, err := m.Full()
	if err != nil {
		t.Fatalf("Full under load: %v", err)
	}
	backups = append(backups, full)
	for i := 0; i < 4; i++ {
		time.Sleep(2 * time.Millisecond)
		man, err := m.Incremental()
		if errors.Is(err, ErrUpToDate) {
			continue
		}
		if err != nil {
			t.Fatalf("Incremental %d under load: %v", i, err)
		}
		backups = append(backups, man)
	}
	stop.Store(true)
	wg.Wait()

	// Quiesced: a final incremental captures the tail.
	if man, err := m.Incremental(); err != nil {
		if !errors.Is(err, ErrUpToDate) {
			t.Fatalf("final Incremental: %v", err)
		}
	} else {
		backups = append(backups, man)
	}

	if rep, err := m.Verify(); err != nil || !rep.OK() {
		t.Fatalf("verify after load: %+v, %v", rep, err)
	}

	// Dump-equivalence at latest: byte-identical snapshot.
	restored, info, err := Restore(m.Dir(), Target{}, 4) // different shard count on purpose
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if info.AppliedSeq != store.CurrentSeq() {
		t.Fatalf("restored through seq %d, store at %d", info.AppliedSeq, store.CurrentSeq())
	}
	if !bytes.Equal(dump(t, restored), dump(t, store)) {
		t.Fatal("restored dump differs from original after concurrent load")
	}
	// Exact per-version histories and sequence numbers.
	for _, k := range store.Keys() {
		want, werr := store.History(k)
		got, gerr := restored.History(k)
		if (werr != nil) != (gerr != nil) || len(want) != len(got) {
			t.Fatalf("key %s: history mismatch (%v/%v, %d/%d)", k, werr, gerr, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("key %s version %d: %+v != %+v", k, i, got[i], want[i])
			}
		}
	}

	// Point-in-time: each mid-load backup boundary must restore to
	// exactly ViewAt(boundary).
	for _, man := range backups[:len(backups)-1] {
		if man.UpTo == 0 {
			continue // Target{Seq: 0} means "latest", not "empty"
		}
		pit, _, err := Restore(m.Dir(), Target{Seq: man.UpTo}, 0)
		if err != nil {
			t.Fatalf("Restore at seq %d: %v", man.UpTo, err)
		}
		view := store.ViewAt(man.UpTo)
		wantKeys, gotKeys := view.Keys(), pit.Keys()
		if len(wantKeys) != len(gotKeys) {
			t.Fatalf("seq %d: %d keys, want %d", man.UpTo, len(gotKeys), len(wantKeys))
		}
		for _, k := range wantKeys {
			want, _ := view.History(k)
			got, _ := pit.History(k)
			if len(want) != len(got) {
				t.Fatalf("seq %d key %s: %d versions, want %d", man.UpTo, k, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("seq %d key %s version %d: %+v != %+v", man.UpTo, k, i, got[i], want[i])
				}
			}
		}
	}

	// Time-target: GetAt ground truth at an arbitrary mid-trace cut.
	cut := at(writers * perWriter / 3)
	pit, _, err := Restore(m.Dir(), Target{Time: cut}, 0)
	if err != nil {
		t.Fatalf("Restore at time: %v", err)
	}
	for _, k := range store.Keys() {
		want, werr := store.GetAt(k, cut)
		got, gerr := pit.GetAt(k, cut)
		if (werr != nil) != (gerr != nil) {
			t.Fatalf("key %s at %v: errs %v vs %v", k, cut, gerr, werr)
		}
		if werr == nil && (want.Value != got.Value || want.Deleted != got.Deleted || !want.Time.Equal(got.Time) || want.Seq != got.Seq) {
			t.Fatalf("key %s at %v: %+v, want %+v", k, cut, got, want)
		}
	}
}
