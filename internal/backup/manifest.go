// Package backup implements cold-storage disaster recovery for a TTKV
// store: full and incremental backups written as seq-range record files
// (the replication codec reused as an archival format), described by a
// checksummed manifest so a backup set is self-verifying, plus a verify
// pass, a retention policy, and point-in-time restore. Where replication
// (PR 5) protects against losing a node, backups protect against losing
// the data itself — a fat-finger rm, a corrupting bug, or every AOF on
// every node going away at once.
//
// A backup set is a flat directory. Each backup is one manifest
// ("<id>.bkm") plus one or more record files ("<kind>-<id>-<k>.rec").
// Manifests chain: an incremental's Base equals its parent's UpTo, so a
// chain from a full backup to any manifest covers the contiguous
// sequence range (0, UpTo] and restores to exactly the store state at
// that sequence. Nothing in the directory is ever modified in place;
// writers produce temp files and rename them in, so a SIGKILL at any
// instant leaves only ignorable "*.tmp" debris or unreferenced record
// files, never a manifest naming missing or partial data.
package backup

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Manifest format errors.
var (
	// ErrManifestCorrupt is returned by DecodeManifest for bytes that are
	// not a well-formed manifest: wrong framing, non-canonical numbers, a
	// checksum mismatch, or internally inconsistent ranges. Every accepted
	// manifest re-encodes to the exact input bytes, so the on-disk file is
	// the canonical form — there is no "almost valid" manifest.
	ErrManifestCorrupt = errors.New("backup: corrupt manifest")
)

// Backup kinds.
const (
	// KindFull marks a backup whose record files cover (0, UpTo] — the
	// whole store up to the pinned sequence.
	KindFull = "full"
	// KindIncr marks a backup covering (Base, UpTo] on top of a parent
	// manifest whose UpTo equals Base.
	KindIncr = "incr"
)

// manifestHeader is the first line of every manifest; the trailing
// version integer gates format evolution.
const manifestHeader = "ocasta-backup v1"

// idHexLen is the length of a backup ID: 8 random bytes, lowercase hex.
const idHexLen = 16

// FileInfo describes one record file of a backup: its name (always a
// bare file name inside the backup directory — decoding rejects path
// separators, so a hostile manifest cannot point a verifier or restore
// outside the set), the sequence range (From, To] its records fall in,
// and enough redundancy (count, size, SHA-256) to detect truncation or
// corruption without decoding it.
type FileInfo struct {
	Name    string
	From    uint64 // records have Seq in (From, To]
	To      uint64
	Records uint64
	Bytes   int64
	SHA256  string // 64 lowercase hex digits
}

// Manifest describes one backup: identity, the sequence range covered,
// the parent link for incrementals, and the record files holding the
// data. The encoded form is a line-based text file ending in a SHA-256
// of everything above it, so any truncation or bit flip — including in
// the checksums that guard the data files — is detected by decode alone.
type Manifest struct {
	ID      string // 16 lowercase hex digits
	Kind    string // KindFull or KindIncr
	Created int64  // unix nanoseconds; orders manifests within a set
	Base    uint64 // record files cover (Base, UpTo]; 0 for full backups
	UpTo    uint64
	Parent  string // parent manifest ID; "" for full backups
	Files   []FileInfo
}

// Records sums the record counts of the manifest's files.
func (m *Manifest) Records() uint64 {
	var n uint64
	for _, f := range m.Files {
		n += f.Records
	}
	return n
}

// TotalBytes sums the on-disk sizes of the manifest's record files.
func (m *Manifest) TotalBytes() int64 {
	var n int64
	for _, f := range m.Files {
		n += f.Bytes
	}
	return n
}

// Encode renders the manifest in its canonical on-disk form:
//
//	ocasta-backup v1
//	id 89abcdef01234567
//	kind full
//	created 1722500000000000000
//	base 0
//	upto 12345
//	parent -
//	file full-89abcdef01234567-0.rec 0 12345 12345 456789 <sha256>
//	sum <sha256 of all preceding bytes>
//
// Encode does not validate; callers construct manifests via the writer,
// which only produces valid ones. DecodeManifest(Encode(m)) round-trips.
func (m *Manifest) Encode() []byte {
	var b strings.Builder
	b.WriteString(manifestHeader)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "id %s\n", m.ID)
	fmt.Fprintf(&b, "kind %s\n", m.Kind)
	fmt.Fprintf(&b, "created %d\n", m.Created)
	fmt.Fprintf(&b, "base %d\n", m.Base)
	fmt.Fprintf(&b, "upto %d\n", m.UpTo)
	parent := m.Parent
	if parent == "" {
		parent = "-"
	}
	fmt.Fprintf(&b, "parent %s\n", parent)
	for _, f := range m.Files {
		fmt.Fprintf(&b, "file %s %d %d %d %d %s\n", f.Name, f.From, f.To, f.Records, f.Bytes, f.SHA256)
	}
	body := b.String()
	sum := sha256.Sum256([]byte(body))
	return []byte(body + "sum " + hex.EncodeToString(sum[:]) + "\n")
}

// DecodeManifest parses and validates a manifest. It is strict: line
// order is fixed, numbers must be canonical (no leading zeros, no
// signs), hex must be lowercase and exact-length, file ranges must tile
// (Base, UpTo] contiguously, and the trailing sum line must match the
// SHA-256 of everything before it. Strictness is what makes the format
// safe to trust: an accepted manifest re-encodes byte-identically
// (FuzzBackupManifest holds us to that), so nothing survives decoding
// that the writer could not have produced.
func DecodeManifest(data []byte) (*Manifest, error) {
	d := manifestDecoder{rest: string(data)}

	if line, err := d.line(); err != nil {
		return nil, err
	} else if line != manifestHeader {
		return nil, fmt.Errorf("%w: bad header %q", ErrManifestCorrupt, line)
	}

	m := &Manifest{}
	var err error
	if m.ID, err = d.hexField("id", idHexLen); err != nil {
		return nil, err
	}
	kind, err := d.field("kind")
	if err != nil {
		return nil, err
	}
	if kind != KindFull && kind != KindIncr {
		return nil, fmt.Errorf("%w: unknown kind %q", ErrManifestCorrupt, kind)
	}
	m.Kind = kind
	created, err := d.uintField("created")
	if err != nil {
		return nil, err
	}
	if created > 1<<62 {
		return nil, fmt.Errorf("%w: created %d out of range", ErrManifestCorrupt, created)
	}
	m.Created = int64(created)
	if m.Base, err = d.uintField("base"); err != nil {
		return nil, err
	}
	if m.UpTo, err = d.uintField("upto"); err != nil {
		return nil, err
	}
	if m.Base > m.UpTo {
		return nil, fmt.Errorf("%w: base %d > upto %d", ErrManifestCorrupt, m.Base, m.UpTo)
	}
	parent, err := d.field("parent")
	if err != nil {
		return nil, err
	}
	switch {
	case parent == "-":
		// Absent parent: must be a full backup.
		if m.Kind != KindFull {
			return nil, fmt.Errorf("%w: incremental without parent", ErrManifestCorrupt)
		}
	case isHex(parent, idHexLen):
		if m.Kind != KindIncr {
			return nil, fmt.Errorf("%w: full backup with parent", ErrManifestCorrupt)
		}
		m.Parent = parent
	default:
		return nil, fmt.Errorf("%w: bad parent %q", ErrManifestCorrupt, parent)
	}
	if m.Kind == KindFull && m.Base != 0 {
		return nil, fmt.Errorf("%w: full backup with base %d", ErrManifestCorrupt, m.Base)
	}

	// File lines, then the sum line. File ranges must tile (Base, UpTo]
	// exactly: the first starts at Base, each next picks up where the
	// previous ended, the last ends at UpTo.
	prevTo := m.Base
	seen := map[string]bool{}
	for {
		line, err := d.line()
		if err != nil {
			return nil, err
		}
		if rest, ok := strings.CutPrefix(line, "sum "); ok {
			if len(m.Files) == 0 {
				return nil, fmt.Errorf("%w: no file lines", ErrManifestCorrupt)
			}
			if prevTo != m.UpTo {
				return nil, fmt.Errorf("%w: files end at %d, upto %d", ErrManifestCorrupt, prevTo, m.UpTo)
			}
			if !isHex(rest, 64) {
				return nil, fmt.Errorf("%w: bad sum", ErrManifestCorrupt)
			}
			if d.rest != "" {
				return nil, fmt.Errorf("%w: trailing data after sum", ErrManifestCorrupt)
			}
			body := data[:len(data)-len(rest)-len("sum \n")]
			want := sha256.Sum256(body)
			if rest != hex.EncodeToString(want[:]) {
				return nil, fmt.Errorf("%w: checksum mismatch", ErrManifestCorrupt)
			}
			return m, nil
		}
		fields, ok := strings.CutPrefix(line, "file ")
		if !ok {
			return nil, fmt.Errorf("%w: unexpected line %q", ErrManifestCorrupt, line)
		}
		f, err := parseFileLine(fields)
		if err != nil {
			return nil, err
		}
		if f.From != prevTo {
			return nil, fmt.Errorf("%w: file %s starts at %d, previous range ended at %d", ErrManifestCorrupt, f.Name, f.From, prevTo)
		}
		if f.To > m.UpTo {
			return nil, fmt.Errorf("%w: file %s ends past upto", ErrManifestCorrupt, f.Name)
		}
		if seen[f.Name] {
			return nil, fmt.Errorf("%w: duplicate file %s", ErrManifestCorrupt, f.Name)
		}
		seen[f.Name] = true
		prevTo = f.To
		m.Files = append(m.Files, f)
	}
}

// parseFileLine parses the fields of one "file " line:
// name from to records bytes sha256.
func parseFileLine(s string) (FileInfo, error) {
	parts := strings.Split(s, " ")
	if len(parts) != 6 {
		return FileInfo{}, fmt.Errorf("%w: file line has %d fields", ErrManifestCorrupt, len(parts))
	}
	var f FileInfo
	var err error
	if f.Name = parts[0]; !validFileName(f.Name) {
		return FileInfo{}, fmt.Errorf("%w: bad file name %q", ErrManifestCorrupt, f.Name)
	}
	if f.From, err = parseCanonicalUint(parts[1]); err != nil {
		return FileInfo{}, err
	}
	if f.To, err = parseCanonicalUint(parts[2]); err != nil {
		return FileInfo{}, err
	}
	if f.From > f.To {
		return FileInfo{}, fmt.Errorf("%w: file %s range inverted", ErrManifestCorrupt, f.Name)
	}
	if f.Records, err = parseCanonicalUint(parts[3]); err != nil {
		return FileInfo{}, err
	}
	if f.Records > f.To-f.From {
		return FileInfo{}, fmt.Errorf("%w: file %s claims %d records in a range of %d", ErrManifestCorrupt, f.Name, f.Records, f.To-f.From)
	}
	size, err := parseCanonicalUint(parts[4])
	if err != nil {
		return FileInfo{}, err
	}
	if size < uint64(len(recMagic)) || size > 1<<62 {
		return FileInfo{}, fmt.Errorf("%w: file %s size %d out of range", ErrManifestCorrupt, f.Name, size)
	}
	f.Bytes = int64(size)
	if f.SHA256 = parts[5]; !isHex(f.SHA256, 64) {
		return FileInfo{}, fmt.Errorf("%w: bad file checksum", ErrManifestCorrupt)
	}
	return f, nil
}

// manifestDecoder yields LF-terminated lines; a final line without its
// newline is corruption (truncation), not a line.
type manifestDecoder struct {
	rest string
}

func (d *manifestDecoder) line() (string, error) {
	line, rest, ok := strings.Cut(d.rest, "\n")
	if !ok {
		return "", fmt.Errorf("%w: truncated", ErrManifestCorrupt)
	}
	d.rest = rest
	return line, nil
}

// field reads the next line and strips the "<key> " prefix.
func (d *manifestDecoder) field(key string) (string, error) {
	line, err := d.line()
	if err != nil {
		return "", err
	}
	val, ok := strings.CutPrefix(line, key+" ")
	if !ok {
		return "", fmt.Errorf("%w: expected %q line, got %q", ErrManifestCorrupt, key, line)
	}
	if strings.ContainsAny(val, " \r") || val == "" {
		return "", fmt.Errorf("%w: bad %s value %q", ErrManifestCorrupt, key, val)
	}
	return val, nil
}

func (d *manifestDecoder) uintField(key string) (uint64, error) {
	val, err := d.field(key)
	if err != nil {
		return 0, err
	}
	return parseCanonicalUint(val)
}

func (d *manifestDecoder) hexField(key string, n int) (string, error) {
	val, err := d.field(key)
	if err != nil {
		return "", err
	}
	if !isHex(val, n) {
		return "", fmt.Errorf("%w: bad %s %q", ErrManifestCorrupt, key, val)
	}
	return val, nil
}

// parseCanonicalUint accepts only the one decimal spelling of a uint64:
// no leading zeros, signs, spaces, or underscores. (strconv.ParseUint
// alone accepts "007", which would re-encode as "7" and break the
// byte-identical round-trip.)
func parseCanonicalUint(s string) (uint64, error) {
	if s == "" || (len(s) > 1 && s[0] == '0') || s[0] == '+' || s[0] == '-' {
		return 0, fmt.Errorf("%w: non-canonical number %q", ErrManifestCorrupt, s)
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad number %q", ErrManifestCorrupt, s)
	}
	return v, nil
}

// isHex reports whether s is exactly n lowercase hex digits.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// validFileName accepts bare file names only: portable characters, no
// path separators, not "." or "..", bounded length. This is the
// traversal guard — manifests name files, and verify/restore open what
// manifests name.
func validFileName(s string) bool {
	if s == "" || len(s) > 255 || s == "." || s == ".." {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '-' || c == '_':
		default:
			return false
		}
	}
	return true
}
