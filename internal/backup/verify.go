package backup

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Issue is one verification failure: the offending path and what is
// wrong with it.
type Issue struct {
	Path    string
	Problem string
}

func (i Issue) String() string { return i.Path + ": " + i.Problem }

// Report is the result of verifying a backup directory.
type Report struct {
	// Manifests counts decodable manifests; Backups the subset whose data
	// files and ancestry all check out (restorable heads).
	Manifests int
	Backups   int
	// Fulls counts decodable full backups.
	Fulls int
	// DataFiles/Records/Bytes total the record files referenced by
	// decodable manifests.
	DataFiles int
	Records   uint64
	Bytes     int64
	// Issues are hard failures: a directory with any is not safe to
	// restore the affected chains from.
	Issues []Issue
	// Orphans are record files no decodable manifest references and
	// TempFiles "*.tmp" leftovers — both are the expected debris of a
	// crash mid-backup, ignored by restore and swept by Prune, so they
	// are informational, not Issues.
	Orphans   []string
	TempFiles []string
}

// OK reports whether verification found no hard failures.
func (r *Report) OK() bool { return len(r.Issues) == 0 }

func (r *Report) issuef(path, format string, args ...any) {
	r.Issues = append(r.Issues, Issue{Path: path, Problem: fmt.Sprintf(format, args...)})
}

// VerifyDir checks every backup in dir without replaying any of it:
// manifests must decode (which alone validates framing, ranges, and the
// trailing checksum), every referenced record file must exist with the
// manifested size and SHA-256 and decode structurally within its
// declared sequence range, and every incremental's ancestry must chain
// back to a full backup through abutting ranges. The error return is
// for an unreadable directory; verification failures land in the
// Report.
func VerifyDir(dir string) (*Report, error) {
	rep := &Report{}
	entries, corrupt, err := loadManifests(dir)
	if err != nil {
		return nil, err
	}
	for _, path := range corrupt {
		// Re-decode for the specific failure; loadManifests drops it.
		data, err := os.ReadFile(path)
		if err != nil {
			rep.issuef(path, "unreadable: %v", err)
			continue
		}
		_, derr := DecodeManifest(data)
		rep.issuef(path, "%v", derr)
	}

	byID := map[string]*Manifest{}
	referenced := map[string]bool{}
	broken := map[string]bool{} // IDs whose own files failed checks
	for _, e := range entries {
		rep.Manifests++
		m := e.man
		if m.Kind == KindFull {
			rep.Fulls++
		}
		if want := m.ID + manifestExt; filepath.Base(e.path) != want {
			rep.issuef(e.path, "manifest for id %s misnamed (want %s)", m.ID, want)
		}
		if _, dup := byID[m.ID]; dup {
			rep.issuef(e.path, "duplicate backup id %s", m.ID)
			broken[m.ID] = true
			continue
		}
		byID[m.ID] = m
		for _, f := range m.Files {
			referenced[f.Name] = true
			if !verifyFile(rep, dir, f) {
				broken[m.ID] = true
			}
		}
	}

	// Ancestry: every backup must chain to a full through intact links.
	for _, e := range entries {
		m := e.man
		if m.Kind == KindIncr {
			parent, ok := byID[m.Parent]
			switch {
			case !ok:
				rep.issuef(e.path, "parent %s missing", m.Parent)
			case parent.UpTo != m.Base:
				rep.issuef(e.path, "parent %s covers up to seq %d but base is %d", m.Parent, parent.UpTo, m.Base)
			}
		}
		if _, ok := chainRoot(m, byID); !ok {
			rep.issuef(e.path, "no intact chain to a full backup")
			broken[m.ID] = true
		}
	}
	for _, e := range entries {
		root, ok := chainRoot(e.man, byID)
		if !ok {
			continue
		}
		intact := !broken[e.man.ID]
		for cur := e.man; intact && cur != root; cur = byID[cur.Parent] {
			if broken[cur.Parent] {
				intact = false
			}
		}
		if intact && !broken[root.ID] {
			rep.Backups++
		}
	}

	// Debris census.
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, de := range des {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		switch {
		case strings.HasSuffix(name, tmpExt):
			rep.TempFiles = append(rep.TempFiles, name)
		case strings.HasSuffix(name, recordExt) && !referenced[name]:
			rep.Orphans = append(rep.Orphans, name)
		}
	}
	return rep, nil
}

// verifyFile checks one referenced record file: present, exact size,
// exact SHA-256, and structurally decodable within its declared range
// with the declared record count. Returns false on any failure.
func verifyFile(rep *Report, dir string, f FileInfo) bool {
	path := filepath.Join(dir, f.Name)
	data, err := os.ReadFile(path)
	if err != nil {
		rep.issuef(path, "unreadable: %v", err)
		return false
	}
	rep.DataFiles++
	if int64(len(data)) != f.Bytes {
		rep.issuef(path, "size %d, manifest says %d", len(data), f.Bytes)
		return false
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != f.SHA256 {
		rep.issuef(path, "checksum mismatch")
		return false
	}
	recs, err := decodeRecordFile(data, f.From, f.To)
	if err != nil {
		rep.issuef(path, "%v", err)
		return false
	}
	if uint64(len(recs)) != f.Records {
		rep.issuef(path, "%d records, manifest says %d", len(recs), f.Records)
		return false
	}
	rep.Records += f.Records
	rep.Bytes += f.Bytes
	return true
}
