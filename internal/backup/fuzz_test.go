package backup

import (
	"bytes"
	"math"
	"testing"

	"ocasta/internal/ttkv"
)

// FuzzBackupManifest feeds arbitrary bytes to both on-disk decoders:
// the manifest parser and the record-file parser. Neither may panic on
// any input, and any manifest the parser accepts must re-encode to the
// exact bytes it was decoded from — the canonical-form invariant Verify
// and the checksum chain rely on.
func FuzzBackupManifest(f *testing.F) {
	// Real encoder outputs seed the corpus: a full, a chained
	// incremental, and a multi-file manifest.
	full := &Manifest{
		ID: "00c0ffee00c0ffee", Kind: KindFull, Created: 1_700_000_000_000_000_000,
		Base: 0, UpTo: 120,
		Files: []FileInfo{{
			Name: "full-00c0ffee00c0ffee-0.rec", From: 0, To: 120, Records: 120, Bytes: 4321,
			SHA256: "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08",
		}},
	}
	incr := &Manifest{
		ID: "abcdef0123456789", Kind: KindIncr, Created: 1_700_000_060_000_000_000,
		Base: 120, UpTo: 345, Parent: "00c0ffee00c0ffee",
		Files: []FileInfo{
			{Name: "incr-abcdef0123456789-0.rec", From: 120, To: 300, Records: 180, Bytes: 7000,
				SHA256: "2cf24dba5fb0a30e26e83b2ac5b9e29e1b161e5c1fa7425e73043362938b9824"},
			{Name: "incr-abcdef0123456789-1.rec", From: 300, To: 345, Records: 45, Bytes: 1500,
				SHA256: "486ea46224d1bb4fb680f34f7c9ad96a8f24ec88be73ea8e5a6c65260e9cb8a7"},
		},
	}
	f.Add(full.Encode())
	f.Add(incr.Encode())
	// A real record file too: the two decoders share the fuzz input.
	recs, err := encodeRecordFile([]ttkv.ReplRecord{
		{Seq: 1, Key: "cfg", Value: "v1", Time: at(0)},
		{Seq: 2, Key: "cfg", Time: at(1), Deleted: true},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(recs)
	// Adversarial shapes: truncations, header-only, junk, sign/zero games.
	f.Add([]byte("ocasta-backup v1\n"))
	f.Add([]byte(recMagic))
	f.Add(full.Encode()[:40])
	f.Add(bytes.Replace(incr.Encode(), []byte("base 120"), []byte("base 0120"), 1))
	f.Add(bytes.Replace(full.Encode(), []byte("upto 120"), []byte("upto +120"), 1))
	f.Add([]byte("ocasta-backup v1\nid zz\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		man, err := DecodeManifest(data)
		if err == nil {
			out := man.Encode()
			if !bytes.Equal(out, data) {
				t.Fatalf("accepted manifest is not canonical:\nin:  %q\nout: %q", data, out)
			}
			// Accepted manifests also survive a decode of their re-encode.
			if _, err := DecodeManifest(out); err != nil {
				t.Fatalf("re-encoded manifest rejected: %v", err)
			}
		}
		if recs, err := decodeRecordFile(data, 0, math.MaxUint64); err == nil {
			// Accepted record files round-trip byte-identically too.
			out, err := encodeRecordFile(recs)
			if err != nil {
				t.Fatalf("accepted record file failed re-encode: %v", err)
			}
			if !bytes.Equal(out, data) {
				t.Fatalf("accepted record file is not canonical (%d vs %d bytes)", len(out), len(data))
			}
		}
	})
}
