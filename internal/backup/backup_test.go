package backup

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ocasta/internal/ttkv"
)

// baseTime anchors test timestamps; offsets keep them distinct.
var baseTime = time.Unix(1_700_000_000, 0).UTC()

func at(i int) time.Time { return baseTime.Add(time.Duration(i) * time.Millisecond) }

// fillStore writes n sequential versions across a few keys.
func fillStore(t *testing.T, s *ttkv.Store, start, n int) {
	t.Helper()
	keys := []string{"httpd.conf", "php.ini", "my.cnf", "sshd_config", "crontab"}
	for i := start; i < start+n; i++ {
		k := keys[i%len(keys)]
		if i%17 == 16 {
			if err := s.Delete(k, at(i)); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			continue
		}
		if err := s.Set(k, strings.Repeat("v", 1+i%40)+"-"+k, at(i)); err != nil {
			t.Fatalf("Set: %v", err)
		}
	}
}

// dump renders a store's canonical snapshot bytes.
func dump(t *testing.T, s *ttkv.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

func newManager(t *testing.T, s *ttkv.Store, opts Options) *Manager {
	t.Helper()
	m, err := NewManager(s, t.TempDir(), opts)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func TestFullBackupRestoreRoundTrip(t *testing.T) {
	store := ttkv.New()
	fillStore(t, store, 0, 500)
	m := newManager(t, store, Options{})

	man, err := m.Full()
	if err != nil {
		t.Fatalf("Full: %v", err)
	}
	if man.Kind != KindFull || man.Base != 0 || man.UpTo != store.CurrentSeq() {
		t.Fatalf("manifest = %+v, want full (0, %d]", man, store.CurrentSeq())
	}
	if man.Records() != 500 {
		t.Fatalf("Records() = %d, want 500", man.Records())
	}

	restored, info, err := Restore(m.Dir(), Target{}, 0)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if info.RecordsApplied != 500 || info.AppliedSeq != man.UpTo {
		t.Fatalf("info = %+v, want 500 applied up to %d", info, man.UpTo)
	}
	if !bytes.Equal(dump(t, restored), dump(t, store)) {
		t.Fatal("restored dump differs from original")
	}
}

func TestIncrementalChainRestore(t *testing.T) {
	store := ttkv.New()
	m := newManager(t, store, Options{MaxFileBytes: 2048}) // force multi-file backups

	fillStore(t, store, 0, 300)
	full, err := m.Full()
	if err != nil {
		t.Fatalf("Full: %v", err)
	}
	if len(full.Files) < 2 {
		t.Fatalf("expected the small segment cap to split the full backup, got %d file(s)", len(full.Files))
	}

	var incrs []*Manifest
	for i := 0; i < 3; i++ {
		fillStore(t, store, 300+100*i, 100)
		man, err := m.Incremental()
		if err != nil {
			t.Fatalf("Incremental %d: %v", i, err)
		}
		incrs = append(incrs, man)
	}
	for i, man := range incrs {
		wantParent := full.ID
		if i > 0 {
			wantParent = incrs[i-1].ID
		}
		if man.Parent != wantParent {
			t.Fatalf("incr %d parent = %s, want %s", i, man.Parent, wantParent)
		}
		wantBase := full.UpTo
		if i > 0 {
			wantBase = incrs[i-1].UpTo
		}
		if man.Base != wantBase {
			t.Fatalf("incr %d base = %d, want %d", i, man.Base, wantBase)
		}
	}

	restored, info, err := Restore(m.Dir(), Target{}, 0)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if info.ChainLen != 4 {
		t.Fatalf("ChainLen = %d, want 4", info.ChainLen)
	}
	if !bytes.Equal(dump(t, restored), dump(t, store)) {
		t.Fatal("restored dump differs from original")
	}
}

func TestIncrementalEdges(t *testing.T) {
	store := ttkv.New()
	m := newManager(t, store, Options{})

	if _, err := m.Incremental(); !errors.Is(err, ErrNoBase) {
		t.Fatalf("Incremental on empty dir: %v, want ErrNoBase", err)
	}
	fillStore(t, store, 0, 10)
	if _, err := m.Auto(); err != nil {
		t.Fatalf("Auto (full): %v", err)
	}
	if _, err := m.Incremental(); !errors.Is(err, ErrUpToDate) {
		t.Fatalf("Incremental with nothing new: %v, want ErrUpToDate", err)
	}
	if _, err := m.Auto(); !errors.Is(err, ErrUpToDate) {
		t.Fatalf("Auto with nothing new: %v, want ErrUpToDate", err)
	}
	fillStore(t, store, 10, 5)
	man, err := m.Auto()
	if err != nil || man.Kind != KindIncr {
		t.Fatalf("Auto (incr) = %+v, %v", man, err)
	}

	// A different (behind) store must refuse to chain onto this set.
	m2, err := NewManager(ttkv.New(), m.Dir(), Options{})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	if _, err := m2.Incremental(); !errors.Is(err, ErrStoreBehind) {
		t.Fatalf("Incremental from behind store: %v, want ErrStoreBehind", err)
	}
}

func TestBackupOfEmptyStore(t *testing.T) {
	store := ttkv.New()
	m := newManager(t, store, Options{})
	man, err := m.Full()
	if err != nil {
		t.Fatalf("Full of empty store: %v", err)
	}
	if man.UpTo != 0 || man.Records() != 0 || len(man.Files) != 1 {
		t.Fatalf("manifest = %+v, want empty single-file backup", man)
	}
	restored, info, err := Restore(m.Dir(), Target{}, 0)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.Len() != 0 || info.RecordsApplied != 0 {
		t.Fatalf("restored %d keys, applied %d; want empty", restored.Len(), info.RecordsApplied)
	}
}

func TestRestoreAtSeqMatchesViewAt(t *testing.T) {
	store := ttkv.New()
	m := newManager(t, store, Options{})
	fillStore(t, store, 0, 200)
	if _, err := m.Full(); err != nil {
		t.Fatalf("Full: %v", err)
	}
	fillStore(t, store, 200, 200)
	if _, err := m.Incremental(); err != nil {
		t.Fatalf("Incremental: %v", err)
	}

	for _, seq := range []uint64{1, 37, 200, 250, 400} {
		restored, info, err := Restore(m.Dir(), Target{Seq: seq}, 0)
		if err != nil {
			t.Fatalf("Restore at seq %d: %v", seq, err)
		}
		if info.AppliedSeq != seq {
			t.Fatalf("AppliedSeq = %d, want %d", info.AppliedSeq, seq)
		}
		view := store.ViewAt(seq)
		wantKeys := view.Keys()
		gotKeys := restored.Keys()
		if len(wantKeys) != len(gotKeys) {
			t.Fatalf("seq %d: %d keys, want %d", seq, len(gotKeys), len(wantKeys))
		}
		for _, k := range wantKeys {
			want, werr := view.History(k)
			got, gerr := restored.History(k)
			if (werr != nil) != (gerr != nil) || len(want) != len(got) {
				t.Fatalf("seq %d key %s: history mismatch (%v/%v, %d/%d versions)", seq, k, werr, gerr, len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("seq %d key %s version %d: %+v != %+v", seq, k, i, got[i], want[i])
				}
			}
		}
	}

	if _, _, err := Restore(m.Dir(), Target{Seq: 100000}, 0); !errors.Is(err, ErrTargetUnreachable) {
		t.Fatalf("Restore past backups: %v, want ErrTargetUnreachable", err)
	}
}

func TestRestoreAtTimeMatchesGetAt(t *testing.T) {
	store := ttkv.New()
	m := newManager(t, store, Options{})
	fillStore(t, store, 0, 150)
	// Out-of-order timestamps: a late write stamped into the past must be
	// excluded by a time-target restore, exactly as GetAt excludes it...
	if err := store.Set("php.ini", "backdated", at(60)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Full(); err != nil {
		t.Fatalf("Full: %v", err)
	}

	cut := at(100)
	restored, _, err := Restore(m.Dir(), Target{Time: cut}, 0)
	if err != nil {
		t.Fatalf("Restore at time: %v", err)
	}
	for _, k := range store.Keys() {
		want, werr := store.GetAt(k, cut)
		got, gerr := restored.GetAt(k, cut)
		if (werr != nil) != (gerr != nil) {
			t.Fatalf("key %s: GetAt errs %v vs %v", k, gerr, werr)
		}
		if werr == nil && want != got {
			t.Fatalf("key %s: GetAt = %+v, want %+v", k, got, want)
		}
		// ...and nothing after the cut may exist at all in the restored store.
		hist, err := restored.History(k)
		if err != nil {
			continue
		}
		for _, v := range hist {
			if v.Time.After(cut) {
				t.Fatalf("key %s: restored version stamped %v, after the %v cut", k, v.Time, cut)
			}
		}
	}
	// The backdated write is stamped before the cut, so it must survive.
	if v, err := restored.GetAt("php.ini", at(60)); err != nil || v.Value != "backdated" {
		t.Fatalf("backdated write lost: %+v, %v", v, err)
	}
}

func TestRestoreToAOFRoundTrip(t *testing.T) {
	store := ttkv.New()
	m := newManager(t, store, Options{})
	fillStore(t, store, 0, 250)
	if _, err := m.Full(); err != nil {
		t.Fatalf("Full: %v", err)
	}
	out := filepath.Join(t.TempDir(), "restored.aof")
	if _, err := RestoreToAOF(m.Dir(), Target{}, out, 0); err != nil {
		t.Fatalf("RestoreToAOF: %v", err)
	}
	reloaded, err := ttkv.LoadAOF(out)
	if err != nil {
		t.Fatalf("LoadAOF: %v", err)
	}
	if !bytes.Equal(dump(t, reloaded), dump(t, store)) {
		t.Fatal("AOF round trip dump differs from original")
	}
	if reloaded.CurrentSeq() != store.CurrentSeq() {
		t.Fatalf("reloaded seq %d, want %d", reloaded.CurrentSeq(), store.CurrentSeq())
	}
}

func TestVerifyDetectsDamage(t *testing.T) {
	setup := func(t *testing.T) (*Manager, *Manifest, *Manifest) {
		store := ttkv.New()
		m := newManager(t, store, Options{})
		fillStore(t, store, 0, 100)
		full, err := m.Full()
		if err != nil {
			t.Fatalf("Full: %v", err)
		}
		fillStore(t, store, 100, 50)
		incr, err := m.Incremental()
		if err != nil {
			t.Fatalf("Incremental: %v", err)
		}
		if rep, err := m.Verify(); err != nil || !rep.OK() {
			t.Fatalf("fresh set must verify: %+v, %v", rep, err)
		}
		return m, full, incr
	}

	t.Run("clean", func(t *testing.T) {
		m, _, _ := setup(t)
		rep, err := m.Verify()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Manifests != 2 || rep.Backups != 2 || rep.Fulls != 1 {
			t.Fatalf("report = %+v", rep)
		}
	})
	t.Run("record file bit flip", func(t *testing.T) {
		m, full, _ := setup(t)
		path := filepath.Join(m.Dir(), full.Files[0].Name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		assertIssue(t, m, "checksum mismatch")
	})
	t.Run("record file truncated", func(t *testing.T) {
		m, full, _ := setup(t)
		path := filepath.Join(m.Dir(), full.Files[0].Name)
		if err := os.Truncate(path, full.Files[0].Bytes/2); err != nil {
			t.Fatal(err)
		}
		assertIssue(t, m, "size")
	})
	t.Run("record file missing", func(t *testing.T) {
		m, _, incr := setup(t)
		if err := os.Remove(filepath.Join(m.Dir(), incr.Files[0].Name)); err != nil {
			t.Fatal(err)
		}
		assertIssue(t, m, "unreadable")
	})
	t.Run("manifest bit flip", func(t *testing.T) {
		m, full, _ := setup(t)
		path := filepath.Join(m.Dir(), full.ID+manifestExt)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/3] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		assertIssue(t, m, "corrupt manifest")
	})
	t.Run("broken chain", func(t *testing.T) {
		m, full, _ := setup(t)
		if err := os.Remove(filepath.Join(m.Dir(), full.ID+manifestExt)); err != nil {
			t.Fatal(err)
		}
		assertIssue(t, m, "parent")
		// And restore must refuse: no intact chain remains.
		if _, _, err := Restore(m.Dir(), Target{}, 0); !errors.Is(err, ErrNoBackups) {
			t.Fatalf("Restore with broken chain: %v, want ErrNoBackups", err)
		}
	})
	t.Run("restore falls back to older intact chain", func(t *testing.T) {
		m, _, incr := setup(t)
		// Damage the newest backup's data; restore should use the full.
		if err := os.Remove(filepath.Join(m.Dir(), incr.ID+manifestExt)); err != nil {
			t.Fatal(err)
		}
		_, info, err := Restore(m.Dir(), Target{}, 0)
		if err != nil {
			t.Fatalf("Restore: %v", err)
		}
		if info.ChainLen != 1 || info.UpTo != 100 {
			t.Fatalf("info = %+v, want the 100-seq full backup", info)
		}
	})
}

func assertIssue(t *testing.T, m *Manager, substr string) {
	t.Helper()
	rep, err := m.Verify()
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.OK() {
		t.Fatalf("Verify passed; want an issue containing %q", substr)
	}
	for _, issue := range rep.Issues {
		if strings.Contains(issue.String(), substr) {
			return
		}
	}
	t.Fatalf("no issue contains %q: %+v", substr, rep.Issues)
}

func TestPruneRetention(t *testing.T) {
	store := ttkv.New()
	m := newManager(t, store, Options{})

	// Three full-rooted chains: full+incr, full+incr, full.
	var mans []*Manifest
	for chain := 0; chain < 3; chain++ {
		fillStore(t, store, 100*chain*2, 100)
		full, err := m.Full()
		if err != nil {
			t.Fatalf("Full: %v", err)
		}
		mans = append(mans, full)
		if chain < 2 {
			fillStore(t, store, 100*(chain*2+1), 100)
			incr, err := m.Incremental()
			if err != nil {
				t.Fatalf("Incremental: %v", err)
			}
			mans = append(mans, incr)
		}
	}
	// An incremental chains onto the newest manifest — here the last
	// full — keeping exactly one chain per full in this test.
	if got, _ := m.List(); len(got) != 5 {
		t.Fatalf("List = %d manifests, want 5", len(got))
	}

	// keepFulls < 1 never deletes backups.
	if res, err := m.Prune(0); err != nil || res.Backups != 0 {
		t.Fatalf("Prune(0) = %+v, %v; want no-op", res, err)
	}

	res, err := m.Prune(2)
	if err != nil {
		t.Fatalf("Prune(2): %v", err)
	}
	if res.Backups != 2 { // oldest full + its incr
		t.Fatalf("Prune removed %d backups, want 2", res.Backups)
	}
	left, err := m.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 3 {
		t.Fatalf("%d manifests left, want 3", len(left))
	}
	for _, man := range left {
		if man.ID == mans[0].ID || man.ID == mans[1].ID {
			t.Fatalf("oldest chain survived prune: %s", man.ID)
		}
	}
	if rep, err := m.Verify(); err != nil || !rep.OK() || len(rep.Orphans) != 0 {
		t.Fatalf("post-prune verify: %+v, %v", rep, err)
	}
	// The newest chains must still restore.
	restored, _, err := Restore(m.Dir(), Target{}, 0)
	if err != nil {
		t.Fatalf("Restore after prune: %v", err)
	}
	if !bytes.Equal(dump(t, restored), dump(t, store)) {
		t.Fatal("restored dump differs after prune")
	}
}

func TestPruneSweepsDebris(t *testing.T) {
	store := ttkv.New()
	m := newManager(t, store, Options{})
	fillStore(t, store, 0, 20)
	if _, err := m.Full(); err != nil {
		t.Fatal(err)
	}
	// Simulated crash debris: a temp file and an orphan record file.
	if err := os.WriteFile(filepath.Join(m.Dir(), "full-feedfacefeedface-0.rec.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(m.Dir(), "full-feedfacefeedface-0.rec"), []byte(recMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := m.Verify()
	if err != nil || !rep.OK() {
		t.Fatalf("debris must not fail verify: %+v, %v", rep, err)
	}
	if len(rep.TempFiles) != 1 || len(rep.Orphans) != 1 {
		t.Fatalf("debris census = %+v", rep)
	}
	res, err := m.Prune(1)
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if res.TempFiles != 1 || res.DataFiles != 1 || res.Backups != 0 {
		t.Fatalf("Prune = %+v, want 1 temp + 1 orphan swept", res)
	}
	rep, err = m.Verify()
	if err != nil || !rep.OK() || len(rep.TempFiles) != 0 || len(rep.Orphans) != 0 {
		t.Fatalf("post-sweep report = %+v, %v", rep, err)
	}
}

func TestManifestEncodeDecodeRoundTrip(t *testing.T) {
	m := &Manifest{
		ID:      "0123456789abcdef",
		Kind:    KindIncr,
		Created: baseTime.UnixNano(),
		Base:    100,
		UpTo:    250,
		Parent:  "fedcba9876543210",
		Files: []FileInfo{
			{Name: "incr-0123456789abcdef-0.rec", From: 100, To: 200, Records: 90, Bytes: 4096, SHA256: strings.Repeat("ab", 32)},
			{Name: "incr-0123456789abcdef-1.rec", From: 200, To: 250, Records: 50, Bytes: 2048, SHA256: strings.Repeat("cd", 32)},
		},
	}
	enc := m.Encode()
	dec, err := DecodeManifest(enc)
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("re-encode differs")
	}
	if dec.ID != m.ID || dec.Parent != m.Parent || len(dec.Files) != 2 || dec.Files[1] != m.Files[1] {
		t.Fatalf("decoded = %+v", dec)
	}

	// Tampering anywhere — including flipping a data-file checksum —
	// must fail the trailing sum.
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { b[10] ^= 1; return b },                       // id
		func(b []byte) []byte { b[bytes.IndexByte(b, '4')] = '5'; return b }, // a number
		func(b []byte) []byte { return b[:len(b)-2] },                        // truncation
		func(b []byte) []byte { return append(b, '\n') },                     // trailing junk
	} {
		b := mutate(append([]byte(nil), enc...))
		if _, err := DecodeManifest(b); err == nil {
			t.Fatalf("tampered manifest accepted: %q", b)
		}
	}
}

func TestExportRangeTornDetection(t *testing.T) {
	store := ttkv.New()
	fillStore(t, store, 0, 30)
	if _, err := store.ExportRange(5, store.CurrentSeq()); err != nil {
		t.Fatalf("ExportRange: %v", err)
	}
	if _, err := store.ExportRange(0, store.CurrentSeq()+1); !errors.Is(err, ttkv.ErrExportRange) {
		t.Fatalf("ExportRange past head: %v, want ErrExportRange", err)
	}
	if _, err := store.ExportRange(10, 5); !errors.Is(err, ttkv.ErrExportRange) {
		t.Fatalf("inverted ExportRange: %v, want ErrExportRange", err)
	}
}
