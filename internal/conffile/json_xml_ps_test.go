package conffile

import (
	"errors"
	"reflect"
	"testing"
)

func TestJSONParseFlattens(t *testing.T) {
	in := `{
	  "bookmark_bar": {"show": true, "count": 3},
	  "urls": ["https://a", "https://b"],
	  "homepage": "about:blank",
	  "zoom": 1.25,
	  "proxy": null,
	  "odd~key/name": "x"
	}`
	kv, err := (JSON{}).Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"/bookmark_bar/show":  "true",
		"/bookmark_bar/count": "3",
		"/urls/0":             "https://a",
		"/urls/1":             "https://b",
		"/homepage":           "about:blank",
		"/zoom":               "1.25",
		"/proxy":              "null",
		"/odd~0key~1name":     "x",
	}
	if !reflect.DeepEqual(kv, want) {
		t.Errorf("Parse:\n got %v\nwant %v", kv, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	roundTrip(t, JSON{}, map[string]string{
		"/bookmark_bar/show":  "true",
		"/bookmark_bar/count": "3",
		"/urls/0":             "https://a",
		"/urls/1":             "https://b",
		"/zoom":               "1.25",
		"/title":              "5 o'clock", // string that must stay a string
		"/version":            "007",       // non-canonical number stays a string
		"/note":               "null and void",
		"/odd~0key~1name":     "x",
	})
}

func TestJSONScalarRoot(t *testing.T) {
	kv, err := (JSON{}).Parse([]byte(`42`))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(kv, map[string]string{"/": "42"}) {
		t.Errorf("scalar root = %v", kv)
	}
	roundTrip(t, JSON{}, map[string]string{"/": "42"})
	if _, err := (JSON{}).Serialize(map[string]string{"/": "1", "/other": "2"}); !errors.Is(err, ErrBadKey) {
		t.Errorf("scalar root mixed with paths: err = %v, want ErrBadKey", err)
	}
}

func TestJSONEmpty(t *testing.T) {
	data, err := (JSON{}).Serialize(map[string]string{})
	if err != nil {
		t.Fatal(err)
	}
	kv, err := (JSON{}).Parse(data)
	if err != nil || len(kv) != 0 {
		t.Errorf("empty round trip = %v, %v", kv, err)
	}
}

func TestJSONParseError(t *testing.T) {
	if _, err := (JSON{}).Parse([]byte(`{"unterminated": `)); !errors.Is(err, ErrSyntax) {
		t.Errorf("err = %v, want ErrSyntax", err)
	}
}

func TestJSONSerializeConflicts(t *testing.T) {
	cases := []map[string]string{
		{"no-slash": "v"},
		{"/a": "1", "/a/b": "2"}, // scalar and parent
	}
	for _, kv := range cases {
		if _, err := (JSON{}).Serialize(kv); !errors.Is(err, ErrBadKey) {
			t.Errorf("Serialize(%v) err = %v, want ErrBadKey", kv, err)
		}
	}
}

func TestJSONArrayHeuristic(t *testing.T) {
	// Keys 0..n-1 become an array; a gap forces an object.
	data, err := (JSON{}).Serialize(map[string]string{"/xs/0": "a", "/xs/1": "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !contains(string(data), "[") {
		t.Errorf("contiguous indices should serialize as an array:\n%s", data)
	}
	data, err = JSON{}.Serialize(map[string]string{"/xs/0": "a", "/xs/2": "b"})
	if err != nil {
		t.Fatal(err)
	}
	if contains(string(data), "[") {
		t.Errorf("gapped indices must serialize as an object:\n%s", data)
	}
	// Leading-zero segments are object keys, not array indices.
	kv := map[string]string{"/xs/00": "a"}
	roundTrip(t, JSON{}, kv)
}

func TestXMLParseFlattens(t *testing.T) {
	in := `<?xml version="1.0"?>
<config version="2">
  <view id="main">visible</view>
  <view id="side"/>
  <timeout>1500</timeout>
</config>`
	kv, err := (XML{}).Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"/config[0]/@version":         "2",
		"/config[0]/view[0]/@id":      "main",
		"/config[0]/view[0]/#text":    "visible",
		"/config[0]/view[1]/@id":      "side",
		"/config[0]/timeout[2]/#text": "1500",
	}
	if !reflect.DeepEqual(kv, want) {
		t.Errorf("Parse:\n got %v\nwant %v", kv, want)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	roundTrip(t, XML{}, map[string]string{
		"/config[0]/@version":         "2",
		"/config[0]/view[0]/@id":      "main",
		"/config[0]/view[0]/#text":    "visible <&> \"quoted\"",
		"/config[0]/view[1]/@id":      "side",
		"/config[0]/timeout[2]/#text": "1500",
	})
}

func TestXMLParseErrors(t *testing.T) {
	cases := []string{
		"",
		"<a><b></a>",
		"<a/><b/>", // multiple roots
	}
	for _, in := range cases {
		if _, err := (XML{}).Parse([]byte(in)); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) err = %v, want ErrSyntax", in, err)
		}
	}
}

func TestXMLSerializeErrors(t *testing.T) {
	cases := []map[string]string{
		{},
		{"no-slash": "v"},
		{"/root[1]/#text": "v"}, // root index must be 0
		{"/root[0]/a[0]/#text": "1", "/other[0]/b[0]/#text": "2"}, // two roots
		{"/root[0]/kid[1]/#text": "gap"},                          // non-contiguous children
		{"/root[0]/bad name[0]/#text": "v"},                       // invalid element name
		{"/root[0]/@": "v"},                                       // empty attribute
		{"/root[0]/kid/#text": "v"},                               // missing index
	}
	for _, kv := range cases {
		if _, err := (XML{}).Serialize(kv); !errors.Is(err, ErrBadKey) {
			t.Errorf("Serialize(%v) err = %v, want ErrBadKey", kv, err)
		}
	}
}

func TestXMLConflictingNames(t *testing.T) {
	kv := map[string]string{
		"/root[0]/a[0]/#text": "1",
		"/root[0]/b[0]/#text": "2", // child 0 named both a and b
	}
	if _, err := (XML{}).Serialize(kv); !errors.Is(err, ErrBadKey) {
		t.Errorf("err = %v, want ErrBadKey for conflicting child names", err)
	}
}

func TestPostScriptParseFlattens(t *testing.T) {
	in := `% Acrobat preferences
/ShowMenuBar true
/Zoom 125
/Scale 1.5
/OpenFile (report (final).pdf)
/Toolbar << /Find true /Order [ 1 2 ] >>
/Mode /FullScreen
`
	kv, err := (PostScript{}).Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"/ShowMenuBar":      "true",
		"/Zoom":             "125",
		"/Scale":            "1.5",
		"/OpenFile":         "report (final).pdf",
		"/Toolbar/Find":     "true",
		"/Toolbar/Order[0]": "1",
		"/Toolbar/Order[1]": "2",
		"/Mode":             "/FullScreen",
	}
	if !reflect.DeepEqual(kv, want) {
		t.Errorf("Parse:\n got %v\nwant %v", kv, want)
	}
}

func TestPostScriptRoundTrip(t *testing.T) {
	roundTrip(t, PostScript{}, map[string]string{
		"/ShowMenuBar":      "true",
		"/Zoom":             "125",
		"/Scale":            "1.5",
		"/OpenFile":         "weird (chars) \\ here\nnewline",
		"/Toolbar/Find":     "false",
		"/Toolbar/Order[0]": "1",
		"/Toolbar/Order[1]": "2",
		"/Nested/Deep/Key":  "x",
		"/Mode":             "/FullScreen",
		"/LooksLikeNumber":  "007", // stays a string
		"/Arr[0]/Name":      "dict in array",
		"/Arr[1]":           "plain",
	})
}

func TestPostScriptParseErrors(t *testing.T) {
	cases := []string{
		"/Unterminated (string",
		"/Dangling (esc\\",
		"stray-bare-token",
		"/Key << /Inner (v) ", // unterminated dict: hits EOF expecting name
		"/Key [ (a)",          // unterminated array
		"/ ",                  // empty name
	}
	for _, in := range cases {
		if _, err := (PostScript{}).Parse([]byte(in)); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) err = %v, want ErrSyntax", in, err)
		}
	}
}

func TestPostScriptSerializeErrors(t *testing.T) {
	cases := []map[string]string{
		{"no-slash": "v"},
		{"/a[0]": "1", "/a[2]": "2"}, // hole in array
		{"/a": "1", "/a/b": "2"},     // scalar and dict
		{"/ba d": "v"},               // invalid name
		{"/a[x]": "v"},               // bad index
	}
	for _, kv := range cases {
		if _, err := (PostScript{}).Serialize(kv); !errors.Is(err, ErrBadKey) {
			t.Errorf("Serialize(%v) err = %v, want ErrBadKey", kv, err)
		}
	}
}

func TestPostScriptCommentsAndWhitespace(t *testing.T) {
	in := "% comment line\n\n  /A   1   % trailing comment\n/B (two words)\n"
	kv, err := (PostScript{}).Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if kv["/A"] != "1" || kv["/B"] != "two words" {
		t.Errorf("kv = %v", kv)
	}
}
