package conffile

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"json", "xml", "ini", "plain", "postscript"} {
		f, err := ByName(name)
		if err != nil || f.Name() != name {
			t.Errorf("ByName(%q) = %v, %v", name, f, err)
		}
	}
	if _, err := ByName("yaml"); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("ByName(yaml) err = %v, want ErrUnknownFormat", err)
	}
}

func TestDetectByExtension(t *testing.T) {
	tests := []struct {
		file string
		want string
	}{
		{"Bookmarks.json", "json"},
		{"config.XML", "xml"},
		{"settings.ini", "ini"},
		{"prefs.ps", "postscript"},
		{"app.conf", "plain"},
		{"notes.txt", "plain"},
		{"setup.cfg", "ini"},
	}
	for _, tt := range tests {
		if got := Detect(tt.file, nil).Name(); got != tt.want {
			t.Errorf("Detect(%q) = %q, want %q", tt.file, got, tt.want)
		}
	}
}

func TestDetectBySniffing(t *testing.T) {
	tests := []struct {
		name string
		data string
		want string
	}{
		{"json object", `  {"a": 1}`, "json"},
		{"json array", `[1,2]`, "json"},
		{"xml", `<?xml version="1.0"?><root/>`, "xml"},
		{"postscript", `/Key true`, "postscript"},
		{"ini header line", "x=1\n[section]\ny=2\n", "ini"},
		{"plain", "key=value\nother=thing\n", "plain"},
		{"empty", "", "plain"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Detect("unknown.dat", []byte(tt.data)).Name(); got != tt.want {
				t.Errorf("Detect = %q, want %q", got, tt.want)
			}
		})
	}
}

// roundTrip asserts Parse(Serialize(kv)) == kv for a given format.
func roundTrip(t *testing.T, f Format, kv map[string]string) {
	t.Helper()
	data, err := f.Serialize(kv)
	if err != nil {
		t.Fatalf("%s Serialize: %v", f.Name(), err)
	}
	got, err := f.Parse(data)
	if err != nil {
		t.Fatalf("%s Parse: %v\ninput:\n%s", f.Name(), err, data)
	}
	if !reflect.DeepEqual(got, kv) {
		t.Errorf("%s round trip:\n got %v\nwant %v\nfile:\n%s", f.Name(), got, kv, data)
	}
}

// Property: plain and INI round-trip arbitrary key/value pairs drawn from
// the alphabet the serializers accept. Arbitrary inputs are mapped onto a
// safe alphabet deterministically so quick can still explore shapes
// (lengths, duplicates, empties) without tripping the formats' documented
// restrictions (no '=' in keys, no newlines, no leading/trailing space).
func TestPlainINIRoundTripProperty(t *testing.T) {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABC0123456789_-"
	remap := func(s string, keepInnerSpace bool) string {
		out := make([]byte, 0, len(s))
		for i := 0; i < len(s); i++ {
			c := s[i]
			if keepInnerSpace && c == ' ' && len(out) > 0 {
				out = append(out, ' ')
				continue
			}
			out = append(out, alphabet[int(c)%len(alphabet)])
		}
		return string(out)
	}
	prop := func(keys []string, vals []string) bool {
		kv := make(map[string]string)
		for i, k := range keys {
			v := ""
			if i < len(vals) {
				v = vals[i]
			}
			key := remap(k, false)
			if key == "" {
				key = "k"
			}
			kv[key] = trimSpace(remap(v, true))
		}
		for _, f := range []Format{Plain{}, INI{}} {
			data, err := f.Serialize(kv)
			if err != nil {
				return false
			}
			got, err := f.Parse(data)
			if err != nil || !reflect.DeepEqual(got, kv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// tiny local helpers so the property test reads clearly
func contains(s, sub string) bool { return len(sub) > 0 && indexOf(s, sub) >= 0 }

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func replace(s, old, new string) string {
	i := indexOf(s, old)
	if i < 0 {
		return s
	}
	return s[:i] + new + s[i+len(old):]
}

func trimSpace(s string) string {
	start, end := 0, len(s)
	for start < end && (s[start] == ' ' || s[start] == '\t') {
		start++
	}
	for end > start && (s[end-1] == ' ' || s[end-1] == '\t') {
		end--
	}
	return s[start:end]
}
