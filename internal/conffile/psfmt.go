package conffile

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PostScript parses the PostScript-style preference format Acrobat Reader
// uses: a sequence of "/Name value" pairs where values are numbers,
// booleans, "(strings)", "[ arrays ]", or "<< /nested dicts >>".
// Dictionaries flatten to slash paths and array elements carry bracketed
// indices:
//
//	/Originals << /AVMenus true >>   ->  "/Originals/AVMenus" = "true"
//	/RecentFiles [ (a.pdf) ]         ->  "/RecentFiles[0]"    = "a.pdf"
//
// Booleans and numbers flatten to canonical literals; Serialize re-infers
// their types, so the round trip is exact at the key-value level.
type PostScript struct{}

// Name implements Format.
func (PostScript) Name() string { return "postscript" }

// psValue is a parsed PostScript value.
type psValue struct {
	kind byte // 'd' dict, 'a' array, 's' scalar
	dict map[string]*psValue
	arr  []*psValue
	lit  string // scalar literal, canonical
}

// Parse implements Format.
func (PostScript) Parse(data []byte) (map[string]string, error) {
	tz := &psTokenizer{data: data}
	root := &psValue{kind: 'd', dict: make(map[string]*psValue)}
	for {
		tok, err := tz.next()
		if err != nil {
			return nil, err
		}
		if tok.kind == psEOF {
			break
		}
		if tok.kind != psName {
			return nil, fmt.Errorf("%w: postscript line %d: expected /Name, got %q", ErrSyntax, tok.line, tok.text)
		}
		val, err := parsePSValue(tz)
		if err != nil {
			return nil, err
		}
		root.dict[tok.text] = val
	}
	kv := make(map[string]string)
	flattenPS("", root, kv)
	return kv, nil
}

func parsePSValue(tz *psTokenizer) (*psValue, error) {
	tok, err := tz.next()
	if err != nil {
		return nil, err
	}
	switch tok.kind {
	case psDictOpen:
		d := &psValue{kind: 'd', dict: make(map[string]*psValue)}
		for {
			t, err := tz.next()
			if err != nil {
				return nil, err
			}
			if t.kind == psDictClose {
				return d, nil
			}
			if t.kind != psName {
				return nil, fmt.Errorf("%w: postscript line %d: expected /Name in dict, got %q", ErrSyntax, t.line, t.text)
			}
			v, err := parsePSValue(tz)
			if err != nil {
				return nil, err
			}
			d.dict[t.text] = v
		}
	case psArrOpen:
		a := &psValue{kind: 'a'}
		for {
			t, err := tz.peek()
			if err != nil {
				return nil, err
			}
			if t.kind == psArrClose {
				tz.next() // consume
				return a, nil
			}
			if t.kind == psEOF {
				return nil, fmt.Errorf("%w: postscript: unterminated array", ErrSyntax)
			}
			v, err := parsePSValue(tz)
			if err != nil {
				return nil, err
			}
			a.arr = append(a.arr, v)
		}
	case psString:
		return &psValue{kind: 's', lit: tok.text}, nil
	case psBare:
		return &psValue{kind: 's', lit: canonicalPSScalar(tok.text, tok.line)}, nil
	case psName:
		// A name in value position is a symbolic constant; keep its text.
		return &psValue{kind: 's', lit: "/" + tok.text}, nil
	default:
		return nil, fmt.Errorf("%w: postscript line %d: unexpected token %q", ErrSyntax, tok.line, tok.text)
	}
}

// canonicalPSScalar normalizes bare tokens (numbers, booleans) to canonical
// text so the flatten/serialize round trip is stable.
func canonicalPSScalar(text string, _ int) string {
	if text == "true" || text == "false" {
		return text
	}
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		return strconv.FormatInt(i, 10)
	}
	if f, err := strconv.ParseFloat(text, 64); err == nil {
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	return text
}

func flattenPS(prefix string, v *psValue, kv map[string]string) {
	switch v.kind {
	case 'd':
		for name, child := range v.dict {
			flattenPS(prefix+"/"+name, child, kv)
		}
	case 'a':
		for i, child := range v.arr {
			flattenPS(fmt.Sprintf("%s[%d]", prefix, i), child, kv)
		}
	default:
		kv[prefix] = v.lit
	}
}

// Serialize implements Format.
func (PostScript) Serialize(kv map[string]string) ([]byte, error) {
	root := &psValue{kind: 'd', dict: make(map[string]*psValue)}
	for path, value := range kv {
		if err := insertPSPath(root, path, value); err != nil {
			return nil, err
		}
	}
	var buf bytes.Buffer
	names := make([]string, 0, len(root.dict))
	for n := range root.dict {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		buf.WriteByte('/')
		buf.WriteString(n)
		buf.WriteByte(' ')
		if err := writePSValue(&buf, root.dict[n]); err != nil {
			return nil, err
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// psStep is one step of a flattened path: a dict key or an array index.
type psStep struct {
	name string // dict key when idx < 0
	idx  int
}

func parsePSPath(path string) ([]psStep, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("%w: postscript path %q must start with '/'", ErrBadKey, path)
	}
	var steps []psStep
	for _, seg := range strings.Split(path[1:], "/") {
		name := seg
		var idxs []int
		for strings.HasSuffix(name, "]") {
			open := strings.LastIndexByte(name, '[')
			if open < 0 {
				return nil, fmt.Errorf("%w: unbalanced brackets in %q", ErrBadKey, path)
			}
			idx, err := strconv.Atoi(name[open+1 : len(name)-1])
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("%w: bad array index in %q", ErrBadKey, path)
			}
			idxs = append([]int{idx}, idxs...)
			name = name[:open]
		}
		if name == "" || strings.ContainsAny(name, "()<>[]{}/% \t\r\n") {
			return nil, fmt.Errorf("%w: invalid postscript name %q in %q", ErrBadKey, name, path)
		}
		steps = append(steps, psStep{name: name, idx: -1})
		for _, idx := range idxs {
			steps = append(steps, psStep{idx: idx})
		}
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("%w: empty postscript path", ErrBadKey)
	}
	return steps, nil
}

func insertPSPath(root *psValue, path, value string) error {
	steps, err := parsePSPath(path)
	if err != nil {
		return err
	}
	node := root
	for i, st := range steps {
		last := i == len(steps)-1
		if st.idx < 0 { // dict step
			if node.kind != 'd' {
				return fmt.Errorf("%w: path %q mixes dict and array/scalar", ErrBadKey, path)
			}
			child, ok := node.dict[st.name]
			if !ok {
				child = &psValue{}
				if last {
					child.kind, child.lit = 's', value
				} else if steps[i+1].idx >= 0 {
					child.kind = 'a'
				} else {
					child.kind, child.dict = 'd', make(map[string]*psValue)
				}
				node.dict[st.name] = child
			} else if last && child.kind != 's' {
				return fmt.Errorf("%w: path %q is both scalar and container", ErrBadKey, path)
			}
			node = child
		} else { // array step
			if node.kind != 'a' {
				return fmt.Errorf("%w: path %q indexes a non-array", ErrBadKey, path)
			}
			for len(node.arr) <= st.idx {
				node.arr = append(node.arr, nil)
			}
			child := node.arr[st.idx]
			if child == nil {
				child = &psValue{}
				if last {
					child.kind, child.lit = 's', value
				} else if steps[i+1].idx >= 0 {
					child.kind = 'a'
				} else {
					child.kind, child.dict = 'd', make(map[string]*psValue)
				}
				node.arr[st.idx] = child
			} else if last && child.kind != 's' {
				return fmt.Errorf("%w: path %q is both scalar and container", ErrBadKey, path)
			}
			node = child
		}
	}
	return nil
}

func writePSValue(buf *bytes.Buffer, v *psValue) error {
	switch v.kind {
	case 'd':
		buf.WriteString("<<")
		names := make([]string, 0, len(v.dict))
		for n := range v.dict {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			buf.WriteString(" /")
			buf.WriteString(n)
			buf.WriteByte(' ')
			if err := writePSValue(buf, v.dict[n]); err != nil {
				return err
			}
		}
		buf.WriteString(" >>")
		return nil
	case 'a':
		buf.WriteString("[")
		for _, el := range v.arr {
			if el == nil {
				return fmt.Errorf("%w: array has a hole (non-contiguous indices)", ErrBadKey)
			}
			buf.WriteByte(' ')
			if err := writePSValue(buf, el); err != nil {
				return err
			}
		}
		buf.WriteString(" ]")
		return nil
	default:
		buf.WriteString(renderPSScalar(v.lit))
		return nil
	}
}

// renderPSScalar emits booleans and canonical numbers bare, symbolic names
// as /Name, and everything else as a (string).
func renderPSScalar(lit string) string {
	if lit == "true" || lit == "false" {
		return lit
	}
	if strings.HasPrefix(lit, "/") && len(lit) > 1 &&
		!strings.ContainsAny(lit[1:], "()<>[]{}/% \t\r\n") {
		return lit
	}
	if i, err := strconv.ParseInt(lit, 10, 64); err == nil && strconv.FormatInt(i, 10) == lit {
		return lit
	}
	if f, err := strconv.ParseFloat(lit, 64); err == nil &&
		strconv.FormatFloat(f, 'g', -1, 64) == lit {
		return lit
	}
	var sb strings.Builder
	sb.WriteByte('(')
	for _, r := range lit {
		switch r {
		case '(', ')', '\\':
			sb.WriteByte('\\')
			sb.WriteRune(r)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteRune(r)
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// --- tokenizer ---

type psTokKind uint8

const (
	psEOF psTokKind = iota
	psName
	psString
	psBare
	psDictOpen
	psDictClose
	psArrOpen
	psArrClose
)

type psToken struct {
	kind psTokKind
	text string
	line int
}

type psTokenizer struct {
	data   []byte
	pos    int
	line   int
	peeked *psToken
}

func (tz *psTokenizer) peek() (psToken, error) {
	if tz.peeked == nil {
		tok, err := tz.scan()
		if err != nil {
			return psToken{}, err
		}
		tz.peeked = &tok
	}
	return *tz.peeked, nil
}

func (tz *psTokenizer) next() (psToken, error) {
	if tz.peeked != nil {
		tok := *tz.peeked
		tz.peeked = nil
		return tok, nil
	}
	return tz.scan()
}

func (tz *psTokenizer) scan() (psToken, error) {
	if tz.line == 0 {
		tz.line = 1
	}
	// Skip whitespace and % comments.
	for tz.pos < len(tz.data) {
		c := tz.data[tz.pos]
		if c == '\n' {
			tz.line++
			tz.pos++
		} else if c == ' ' || c == '\t' || c == '\r' {
			tz.pos++
		} else if c == '%' {
			for tz.pos < len(tz.data) && tz.data[tz.pos] != '\n' {
				tz.pos++
			}
		} else {
			break
		}
	}
	if tz.pos >= len(tz.data) {
		return psToken{kind: psEOF, line: tz.line}, nil
	}
	c := tz.data[tz.pos]
	switch {
	case c == '<' && tz.pos+1 < len(tz.data) && tz.data[tz.pos+1] == '<':
		tz.pos += 2
		return psToken{kind: psDictOpen, text: "<<", line: tz.line}, nil
	case c == '>' && tz.pos+1 < len(tz.data) && tz.data[tz.pos+1] == '>':
		tz.pos += 2
		return psToken{kind: psDictClose, text: ">>", line: tz.line}, nil
	case c == '[':
		tz.pos++
		return psToken{kind: psArrOpen, text: "[", line: tz.line}, nil
	case c == ']':
		tz.pos++
		return psToken{kind: psArrClose, text: "]", line: tz.line}, nil
	case c == '/':
		start := tz.pos + 1
		end := start
		for end < len(tz.data) && !isPSDelim(tz.data[end]) {
			end++
		}
		if end == start {
			return psToken{}, fmt.Errorf("%w: postscript line %d: empty name", ErrSyntax, tz.line)
		}
		tz.pos = end
		return psToken{kind: psName, text: string(tz.data[start:end]), line: tz.line}, nil
	case c == '(':
		return tz.scanString()
	default:
		start := tz.pos
		end := start
		for end < len(tz.data) && !isPSDelim(tz.data[end]) {
			end++
		}
		tz.pos = end
		return psToken{kind: psBare, text: string(tz.data[start:end]), line: tz.line}, nil
	}
}

func (tz *psTokenizer) scanString() (psToken, error) {
	line := tz.line
	tz.pos++ // consume '('
	var sb strings.Builder
	depth := 1
	for tz.pos < len(tz.data) {
		c := tz.data[tz.pos]
		switch c {
		case '\\':
			tz.pos++
			if tz.pos >= len(tz.data) {
				return psToken{}, fmt.Errorf("%w: postscript line %d: dangling escape", ErrSyntax, line)
			}
			esc := tz.data[tz.pos]
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case 't':
				sb.WriteByte('\t')
			default:
				sb.WriteByte(esc)
			}
			tz.pos++
		case '(':
			depth++
			sb.WriteByte(c)
			tz.pos++
		case ')':
			depth--
			tz.pos++
			if depth == 0 {
				return psToken{kind: psString, text: sb.String(), line: line}, nil
			}
			sb.WriteByte(c)
		case '\n':
			tz.line++
			sb.WriteByte(c)
			tz.pos++
		default:
			sb.WriteByte(c)
			tz.pos++
		}
	}
	return psToken{}, fmt.Errorf("%w: postscript line %d: unterminated string", ErrSyntax, line)
}

func isPSDelim(c byte) bool {
	switch c {
	case ' ', '\t', '\r', '\n', '/', '(', ')', '<', '>', '[', ']', '%':
		return true
	}
	return false
}
