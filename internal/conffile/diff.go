package conffile

import "sort"

// ChangeOp is the kind of change a flush diff produced.
type ChangeOp uint8

// Flush-diff change kinds.
const (
	ChangeSet ChangeOp = iota + 1 // key added or value modified
	ChangeDelete
)

// String returns the canonical name of the change kind.
func (op ChangeOp) String() string {
	if op == ChangeDelete {
		return "delete"
	}
	return "set"
}

// Change is one inferred key modification between two flushes of a
// configuration file.
type Change struct {
	Op    ChangeOp
	Key   string
	Value string // new value for ChangeSet; empty for ChangeDelete
}

// Diff compares the flattened content of a configuration file before and
// after a flush and returns the inferred per-key changes, sorted by key.
// This is how Ocasta turns whole-file writes into TTKV events: keys present
// only in new are sets, keys present only in old are deletes, and keys with
// different values are sets.
func Diff(old, new map[string]string) []Change {
	var changes []Change
	for k, nv := range new {
		ov, existed := old[k]
		if !existed || ov != nv {
			changes = append(changes, Change{Op: ChangeSet, Key: k, Value: nv})
		}
	}
	for k := range old {
		if _, still := new[k]; !still {
			changes = append(changes, Change{Op: ChangeDelete, Key: k})
		}
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].Key != changes[j].Key {
			return changes[i].Key < changes[j].Key
		}
		return changes[i].Op < changes[j].Op
	})
	return changes
}

// Apply replays changes onto base and returns the result (base is not
// modified). Apply(old, Diff(old, new)) always equals new.
func Apply(base map[string]string, changes []Change) map[string]string {
	out := make(map[string]string, len(base))
	for k, v := range base {
		out[k] = v
	}
	for _, ch := range changes {
		switch ch.Op {
		case ChangeDelete:
			delete(out, ch.Key)
		default:
			out[ch.Key] = ch.Value
		}
	}
	return out
}
