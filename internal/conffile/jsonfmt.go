package conffile

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// JSON flattens arbitrary JSON documents (e.g. Chrome's Preferences and
// Bookmarks files) into JSON-Pointer-style paths: "/profile/name",
// "/bookmarks/0/url". Object keys escape '~' as "~0" and '/' as "~1",
// exactly as in RFC 6901.
//
// Scalars flatten to their natural strings (numbers canonically, booleans
// as "true"/"false", null as "null"). Serialize re-infers scalar types, so
// the round trip is exact at the key-value level; empty objects and arrays
// have no leaves and are therefore dropped by a parse/serialize cycle.
type JSON struct{}

// Name implements Format.
func (JSON) Name() string { return "json" }

// Parse implements Format.
func (JSON) Parse(data []byte) (map[string]string, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var root any
	if err := dec.Decode(&root); err != nil {
		return nil, fmt.Errorf("%w: json: %v", ErrSyntax, err)
	}
	kv := make(map[string]string)
	flattenJSON("", root, kv)
	return kv, nil
}

func flattenJSON(prefix string, node any, kv map[string]string) {
	switch v := node.(type) {
	case map[string]any:
		for key, child := range v {
			flattenJSON(prefix+"/"+escapePointer(key), child, kv)
		}
	case []any:
		for i, child := range v {
			flattenJSON(prefix+"/"+strconv.Itoa(i), child, kv)
		}
	case json.Number:
		kv[rootedPath(prefix)] = v.String()
	case string:
		kv[rootedPath(prefix)] = v
	case bool:
		kv[rootedPath(prefix)] = strconv.FormatBool(v)
	case nil:
		kv[rootedPath(prefix)] = "null"
	}
}

// rootedPath maps the whole-document scalar case ("" prefix) to "/".
func rootedPath(prefix string) string {
	if prefix == "" {
		return "/"
	}
	return prefix
}

func escapePointer(s string) string {
	s = strings.ReplaceAll(s, "~", "~0")
	return strings.ReplaceAll(s, "/", "~1")
}

func unescapePointer(s string) string {
	s = strings.ReplaceAll(s, "~1", "/")
	return strings.ReplaceAll(s, "~0", "~")
}

// Serialize implements Format. A parent whose children are exactly the
// contiguous indices 0..n-1 becomes an array; anything else becomes an
// object. Scalar strings that parse as JSON numbers, booleans, or null are
// emitted with those types, which makes Parse∘Serialize the identity on
// flat maps.
func (JSON) Serialize(kv map[string]string) ([]byte, error) {
	if len(kv) == 0 {
		return []byte("{}\n"), nil
	}
	if v, ok := kv["/"]; ok {
		if len(kv) != 1 {
			return nil, fmt.Errorf("%w: scalar root path %q mixed with other paths", ErrBadKey, "/")
		}
		return append(scalarJSON(v), '\n'), nil
	}
	root := newJSONNode()
	for path, value := range kv {
		if !strings.HasPrefix(path, "/") {
			return nil, fmt.Errorf("%w: json path %q must start with '/'", ErrBadKey, path)
		}
		segs := strings.Split(path[1:], "/")
		node := root
		for i, seg := range segs[:len(segs)-1] {
			child, ok := node.children[seg]
			if !ok {
				child = newJSONNode()
				node.children[seg] = child
			}
			if child.leaf != nil {
				return nil, fmt.Errorf("%w: path %q descends through scalar", ErrBadKey, "/"+strings.Join(segs[:i+1], "/"))
			}
			node = child
		}
		last := segs[len(segs)-1]
		if existing, ok := node.children[last]; ok && len(existing.children) > 0 {
			return nil, fmt.Errorf("%w: path %q is both scalar and parent", ErrBadKey, path)
		}
		v := value
		node.children[last] = &jsonNode{leaf: &v}
	}
	out, err := root.build()
	if err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("conffile: marshaling json: %w", err)
	}
	return append(data, '\n'), nil
}

type jsonNode struct {
	children map[string]*jsonNode
	leaf     *string
}

func newJSONNode() *jsonNode { return &jsonNode{children: make(map[string]*jsonNode)} }

// build converts the path trie into a JSON value tree.
func (n *jsonNode) build() (any, error) {
	if n.leaf != nil {
		return json.RawMessage(scalarJSON(*n.leaf)), nil
	}
	// Array iff children are exactly 0..len-1.
	if isContiguousIndices(n.children) {
		arr := make([]any, len(n.children))
		for seg, child := range n.children {
			idx, _ := strconv.Atoi(seg)
			sub, err := child.build()
			if err != nil {
				return nil, err
			}
			arr[idx] = sub
		}
		return arr, nil
	}
	obj := make(map[string]any, len(n.children))
	for seg, child := range n.children {
		sub, err := child.build()
		if err != nil {
			return nil, err
		}
		obj[unescapePointer(seg)] = sub
	}
	return obj, nil
}

func isContiguousIndices(children map[string]*jsonNode) bool {
	if len(children) == 0 {
		return false
	}
	seen := make([]bool, len(children))
	for seg := range children {
		idx, err := strconv.Atoi(seg)
		if err != nil || idx < 0 || idx >= len(children) || seen[idx] ||
			(len(seg) > 1 && seg[0] == '0') {
			return false
		}
		seen[idx] = true
	}
	return true
}

// scalarJSON renders a flattened scalar back into JSON source.
func scalarJSON(v string) []byte {
	switch v {
	case "true", "false", "null":
		return []byte(v)
	}
	if n := json.Number(v); len(v) > 0 {
		if _, err := n.Int64(); err == nil && jsonNumberCanonical(v) {
			return []byte(v)
		}
		if _, err := n.Float64(); err == nil && jsonNumberCanonical(v) {
			return []byte(v)
		}
	}
	quoted, _ := json.Marshal(v) // cannot fail for strings
	return quoted
}

// jsonNumberCanonical reports whether v is a syntactically valid JSON
// number that would survive a decode/encode cycle byte-for-byte, so we can
// safely emit it unquoted.
func jsonNumberCanonical(v string) bool {
	dec := json.NewDecoder(strings.NewReader(v))
	dec.UseNumber()
	var out any
	if err := dec.Decode(&out); err != nil {
		return false
	}
	num, ok := out.(json.Number)
	if !ok || num.String() != v {
		return false
	}
	// Must consume the whole input.
	return !dec.More()
}

// sortedKeys is shared by tests and debugging helpers.
func sortedKeys(kv map[string]string) []string {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
