package conffile

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// INI is the hierarchical "key= value" format (the paper's name for
// sectioned key-value files). Keys inside a "[section]" flatten to
// "section.key"; keys before any section stay bare. Comments start with
// ';' or '#'.
type INI struct{}

// Name implements Format.
func (INI) Name() string { return "ini" }

// Parse implements Format.
func (INI) Parse(data []byte) (map[string]string, error) {
	kv := make(map[string]string)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	section := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == ';' {
			continue
		}
		if line[0] == '[' {
			if line[len(line)-1] != ']' || len(line) < 3 {
				return nil, fmt.Errorf("%w: ini line %d: malformed section header", ErrSyntax, lineNo)
			}
			section = strings.TrimSpace(line[1 : len(line)-1])
			if section == "" {
				return nil, fmt.Errorf("%w: ini line %d: empty section name", ErrSyntax, lineNo)
			}
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("%w: ini line %d: missing '='", ErrSyntax, lineNo)
		}
		key := strings.TrimSpace(line[:eq])
		if key == "" {
			return nil, fmt.Errorf("%w: ini line %d: empty key", ErrSyntax, lineNo)
		}
		full := key
		if section != "" {
			full = section + "." + key
		}
		kv[full] = strings.TrimSpace(line[eq+1:])
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("conffile: scanning ini file: %w", err)
	}
	return kv, nil
}

// Serialize implements Format. Keys split on the first '.' into
// section/key; keys without a '.' are written before any section.
func (INI) Serialize(kv map[string]string) ([]byte, error) {
	bySection := make(map[string]map[string]string)
	for full, v := range kv {
		if strings.ContainsAny(v, "\n\r") {
			return nil, fmt.Errorf("%w: value of %q contains newline", ErrBadKey, full)
		}
		section, key := "", full
		if dot := strings.IndexByte(full, '.'); dot >= 0 {
			section, key = full[:dot], full[dot+1:]
		}
		if key == "" || strings.ContainsAny(key, "=\n\r[]") || strings.TrimSpace(key) != key {
			return nil, fmt.Errorf("%w: %q", ErrBadKey, full)
		}
		if section != "" && (strings.ContainsAny(section, "]\n\r") || strings.TrimSpace(section) != section) {
			return nil, fmt.Errorf("%w: section of %q", ErrBadKey, full)
		}
		m, ok := bySection[section]
		if !ok {
			m = make(map[string]string)
			bySection[section] = m
		}
		m[key] = v
	}
	sections := make([]string, 0, len(bySection))
	for s := range bySection {
		sections = append(sections, s)
	}
	sort.Strings(sections) // "" sorts first: bare keys precede all sections
	var buf bytes.Buffer
	for _, s := range sections {
		if s != "" {
			fmt.Fprintf(&buf, "[%s]\n", s)
		}
		keys := make([]string, 0, len(bySection[s]))
		for k := range bySection[s] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&buf, "%s=%s\n", k, bySection[s][k])
		}
	}
	return buf.Bytes(), nil
}
