package conffile

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// XML flattens XML documents (e.g. Evolution and OpenOffice configuration
// files) into element paths. Each element segment carries its position
// among its parent's children, so sibling order round-trips:
//
//	/config[0]/view[0]/@id      attribute "id"
//	/config[0]/view[0]/#text    trimmed character data
//
// XML names cannot contain '/', '[', ']', '@' or '#', so paths need no
// escaping.
type XML struct{}

// Name implements Format.
func (XML) Name() string { return "xml" }

// Parse implements Format.
func (XML) Parse(data []byte) (map[string]string, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	kv := make(map[string]string)
	type frame struct {
		path     string
		children int
		text     strings.Builder
	}
	var stack []*frame
	rootSeen := false
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: xml: %v", ErrSyntax, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			var pos int
			parentPath := ""
			if len(stack) > 0 {
				parent := stack[len(stack)-1]
				pos = parent.children
				parent.children++
				parentPath = parent.path
			} else {
				if rootSeen {
					return nil, fmt.Errorf("%w: xml: multiple root elements", ErrSyntax)
				}
				rootSeen = true
			}
			path := fmt.Sprintf("%s/%s[%d]", parentPath, t.Name.Local, pos)
			for _, attr := range t.Attr {
				if attr.Name.Space == "xmlns" || attr.Name.Local == "xmlns" {
					continue // namespace declarations are not settings
				}
				kv[path+"/@"+attr.Name.Local] = attr.Value
			}
			stack = append(stack, &frame{path: path})
		case xml.EndElement:
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if text := strings.TrimSpace(top.text.String()); text != "" {
				kv[top.path+"/#text"] = text
			}
		case xml.CharData:
			if len(stack) > 0 {
				stack[len(stack)-1].text.Write(t)
			}
		}
	}
	if !rootSeen {
		return nil, fmt.Errorf("%w: xml: no root element", ErrSyntax)
	}
	return kv, nil
}

// xmlNode is a reconstructed element.
type xmlNode struct {
	name     string
	attrs    map[string]string
	text     string
	children map[int]*xmlNode
}

func newXMLNode(name string) *xmlNode {
	return &xmlNode{name: name, attrs: make(map[string]string), children: make(map[int]*xmlNode)}
}

// Serialize implements Format. Child indices must be contiguous from 0 for
// every parent (which is what Parse produces); gaps are rejected so the
// round trip stays exact.
func (XML) Serialize(kv map[string]string) ([]byte, error) {
	if len(kv) == 0 {
		return nil, fmt.Errorf("%w: xml document needs at least a root element", ErrBadKey)
	}
	var root *xmlNode
	for path, value := range kv {
		if !strings.HasPrefix(path, "/") {
			return nil, fmt.Errorf("%w: xml path %q must start with '/'", ErrBadKey, path)
		}
		segs := strings.Split(path[1:], "/")
		leafKind, leafName := "", ""
		last := segs[len(segs)-1]
		switch {
		case strings.HasPrefix(last, "@"):
			leafKind, leafName = "attr", last[1:]
			segs = segs[:len(segs)-1]
		case last == "#text":
			leafKind = "text"
			segs = segs[:len(segs)-1]
		default:
			// A bare element path marks element existence with empty text.
			leafKind = "element"
		}
		if len(segs) == 0 {
			return nil, fmt.Errorf("%w: xml path %q has no element", ErrBadKey, path)
		}
		node, err := descendXML(&root, segs)
		if err != nil {
			return nil, fmt.Errorf("%w (path %q)", err, path)
		}
		switch leafKind {
		case "attr":
			if leafName == "" {
				return nil, fmt.Errorf("%w: empty attribute name in %q", ErrBadKey, path)
			}
			node.attrs[leafName] = value
		case "text":
			node.text = value
		}
	}
	if root == nil {
		return nil, fmt.Errorf("%w: xml document needs a root element", ErrBadKey)
	}
	var buf bytes.Buffer
	buf.WriteString(xml.Header)
	if err := writeXMLNode(&buf, root, 0); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// descendXML walks (creating as needed) the element chain named by segs.
func descendXML(root **xmlNode, segs []string) (*xmlNode, error) {
	name, idx, err := splitXMLSeg(segs[0])
	if err != nil {
		return nil, err
	}
	if idx != 0 {
		return nil, fmt.Errorf("%w: root element must have index 0", ErrBadKey)
	}
	if *root == nil {
		*root = newXMLNode(name)
	}
	node := *root
	if node.name != name {
		return nil, fmt.Errorf("%w: conflicting root elements %q and %q", ErrBadKey, node.name, name)
	}
	for _, seg := range segs[1:] {
		name, idx, err := splitXMLSeg(seg)
		if err != nil {
			return nil, err
		}
		child, ok := node.children[idx]
		if !ok {
			child = newXMLNode(name)
			node.children[idx] = child
		}
		if child.name != name {
			return nil, fmt.Errorf("%w: child %d is both %q and %q", ErrBadKey, idx, child.name, name)
		}
		node = child
	}
	return node, nil
}

func splitXMLSeg(seg string) (name string, idx int, err error) {
	open := strings.LastIndexByte(seg, '[')
	if open <= 0 || !strings.HasSuffix(seg, "]") {
		return "", 0, fmt.Errorf("%w: segment %q needs name[index]", ErrBadKey, seg)
	}
	name = seg[:open]
	idx, convErr := strconv.Atoi(seg[open+1 : len(seg)-1])
	if convErr != nil || idx < 0 {
		return "", 0, fmt.Errorf("%w: bad index in segment %q", ErrBadKey, seg)
	}
	if strings.ContainsAny(name, "/[]@#<>\"'& \t") {
		return "", 0, fmt.Errorf("%w: invalid element name %q", ErrBadKey, name)
	}
	return name, idx, nil
}

func writeXMLNode(buf *bytes.Buffer, n *xmlNode, depth int) error {
	indent := strings.Repeat("  ", depth)
	buf.WriteString(indent)
	buf.WriteByte('<')
	buf.WriteString(n.name)
	attrNames := make([]string, 0, len(n.attrs))
	for a := range n.attrs {
		attrNames = append(attrNames, a)
	}
	sort.Strings(attrNames)
	for _, a := range attrNames {
		buf.WriteByte(' ')
		buf.WriteString(a)
		buf.WriteString(`="`)
		if err := xml.EscapeText(buf, []byte(n.attrs[a])); err != nil {
			return err
		}
		buf.WriteByte('"')
	}
	// Children must be contiguous 0..n-1.
	idxs := make([]int, 0, len(n.children))
	for i := range n.children {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for want, got := range idxs {
		if want != got {
			return fmt.Errorf("%w: element %q has non-contiguous child indices", ErrBadKey, n.name)
		}
	}
	if len(idxs) == 0 && n.text == "" {
		buf.WriteString("/>\n")
		return nil
	}
	buf.WriteByte('>')
	if n.text != "" {
		if err := xml.EscapeText(buf, []byte(n.text)); err != nil {
			return err
		}
	}
	if len(idxs) > 0 {
		buf.WriteByte('\n')
		for _, i := range idxs {
			if err := writeXMLNode(buf, n.children[i], depth+1); err != nil {
				return err
			}
		}
		buf.WriteString(indent)
	}
	buf.WriteString("</")
	buf.WriteString(n.name)
	buf.WriteString(">\n")
	return nil
}
