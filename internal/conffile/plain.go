package conffile

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// Plain is the flat "key= value" list format the paper observed in several
// applications (e.g. GNOME application state files). Lines starting with
// '#' or ';' are comments; blank lines are ignored. Keys may not contain
// '=' or newlines; values may contain anything but newlines.
type Plain struct{}

// Name implements Format.
func (Plain) Name() string { return "plain" }

// Parse implements Format.
func (Plain) Parse(data []byte) (map[string]string, error) {
	kv := make(map[string]string)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == ';' {
			continue
		}
		eq := strings.IndexByte(line, '=')
		if eq < 0 {
			return nil, fmt.Errorf("%w: plain line %d: missing '='", ErrSyntax, lineNo)
		}
		key := strings.TrimSpace(line[:eq])
		if key == "" {
			return nil, fmt.Errorf("%w: plain line %d: empty key", ErrSyntax, lineNo)
		}
		kv[key] = strings.TrimSpace(line[eq+1:])
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("conffile: scanning plain file: %w", err)
	}
	return kv, nil
}

// Serialize implements Format.
func (Plain) Serialize(kv map[string]string) ([]byte, error) {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		if err := checkPlainKey(k); err != nil {
			return nil, err
		}
		if strings.ContainsAny(kv[k], "\n\r") {
			return nil, fmt.Errorf("%w: value of %q contains newline", ErrBadKey, k)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	for _, k := range keys {
		fmt.Fprintf(&buf, "%s=%s\n", k, kv[k])
	}
	return buf.Bytes(), nil
}

func checkPlainKey(k string) error {
	if k == "" || strings.ContainsAny(k, "=\n\r") ||
		strings.TrimSpace(k) != k || k[0] == '#' || k[0] == ';' {
		return fmt.Errorf("%w: %q", ErrBadKey, k)
	}
	return nil
}
