package conffile

import (
	"errors"
	"reflect"
	"testing"
)

func TestPlainParse(t *testing.T) {
	in := `# GNOME text editor state
window_width = 1024
window_height=768

; another comment
font=Monospace 11
empty=
`
	kv, err := (Plain{}).Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"window_width":  "1024",
		"window_height": "768",
		"font":          "Monospace 11",
		"empty":         "",
	}
	if !reflect.DeepEqual(kv, want) {
		t.Errorf("Parse = %v, want %v", kv, want)
	}
}

func TestPlainParseErrors(t *testing.T) {
	for _, in := range []string{"no-equals-sign\n", "=value-without-key\n"} {
		if _, err := (Plain{}).Parse([]byte(in)); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) err = %v, want ErrSyntax", in, err)
		}
	}
}

func TestPlainSerializeDeterministic(t *testing.T) {
	kv := map[string]string{"z": "26", "a": "1", "m": "13"}
	d1, err := (Plain{}).Serialize(kv)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := (Plain{}).Serialize(kv)
	if string(d1) != string(d2) {
		t.Error("Serialize must be deterministic")
	}
	if string(d1) != "a=1\nm=13\nz=26\n" {
		t.Errorf("Serialize = %q", d1)
	}
}

func TestPlainSerializeRejectsBadKeys(t *testing.T) {
	bads := []map[string]string{
		{"has=equals": "v"},
		{"has\nnewline": "v"},
		{"": "v"},
		{"#looks-like-comment": "v"},
		{" padded ": "v"},
		{"ok": "multi\nline"},
	}
	for _, kv := range bads {
		if _, err := (Plain{}).Serialize(kv); !errors.Is(err, ErrBadKey) {
			t.Errorf("Serialize(%v) err = %v, want ErrBadKey", kv, err)
		}
	}
}

func TestPlainRoundTrip(t *testing.T) {
	roundTrip(t, Plain{}, map[string]string{
		"statusbar-visible": "true",
		"side-panel-size":   "200",
		"print-font":        "Sans 10",
	})
}

func TestINIParse(t *testing.T) {
	in := `; Paint settings
global_key=1

[View]
ShowTextTool = yes
Zoom=100

[Window]
Maximized=0
`
	kv, err := (INI{}).Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"global_key":        "1",
		"View.ShowTextTool": "yes",
		"View.Zoom":         "100",
		"Window.Maximized":  "0",
	}
	if !reflect.DeepEqual(kv, want) {
		t.Errorf("Parse = %v, want %v", kv, want)
	}
}

func TestINIParseErrors(t *testing.T) {
	cases := []string{
		"[unclosed\nk=v\n",
		"[]\nk=v\n",
		"[s]\nno-equals\n",
		"[s]\n=nokey\n",
	}
	for _, in := range cases {
		if _, err := (INI{}).Parse([]byte(in)); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) err = %v, want ErrSyntax", in, err)
		}
	}
}

func TestINIRoundTrip(t *testing.T) {
	roundTrip(t, INI{}, map[string]string{
		"bare":              "value",
		"View.ShowTextTool": "yes",
		"View.Zoom":         "100",
		"Window.Maximized":  "0",
		"Recent.File.0":     "a.bmp", // nested dots: section Recent, key File.0
	})
}

func TestINISerializeLayout(t *testing.T) {
	data, err := (INI{}).Serialize(map[string]string{
		"bare":   "1",
		"B.key":  "2",
		"A.key":  "3",
		"A.also": "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "bare=1\n[A]\nalso=4\nkey=3\n[B]\nkey=2\n"
	if string(data) != want {
		t.Errorf("Serialize = %q, want %q", data, want)
	}
}

func TestINISerializeRejectsBadKeys(t *testing.T) {
	bads := []map[string]string{
		{"sec.": "v"},              // empty key after dot
		{"se]c.key": "v"},          // ']' in section
		{"sec.k=ey": "v"},          // '=' in key
		{"sec.key": "multi\nline"}, // newline in value
	}
	for _, kv := range bads {
		if _, err := (INI{}).Serialize(kv); !errors.Is(err, ErrBadKey) {
			t.Errorf("Serialize(%v) err = %v, want ErrBadKey", kv, err)
		}
	}
}
