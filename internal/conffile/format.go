// Package conffile implements Ocasta's application-specific file loggers:
// parsers that flatten the common configuration file formats — JSON, XML,
// INI, plain text, and PostScript-style preferences — into key-value pairs,
// serializers that reconstruct files from flattened pairs, and a diff
// engine that turns before/after flush snapshots into key write and delete
// events.
//
// Applications that do not use an OS-provided store read their whole
// configuration file into memory, mutate it, and flush it back; Ocasta
// infers per-key changes by comparing the flattened file content before and
// after each flush (paper §IV-B3).
package conffile

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
)

// Parse/serialize errors.
var (
	ErrSyntax        = errors.New("conffile: syntax error")
	ErrBadKey        = errors.New("conffile: key not representable in this format")
	ErrUnknownFormat = errors.New("conffile: unknown format")
)

// Format parses a configuration file format to and from a flat
// key-to-value map. Implementations must guarantee the round-trip property
// Parse(Serialize(kv)) == kv for any kv they themselves produced or that
// Serialize accepts.
type Format interface {
	// Name is the canonical lower-case format name ("json", "ini", ...).
	Name() string
	// Parse flattens file content into key/value pairs.
	Parse(data []byte) (map[string]string, error)
	// Serialize renders a flat map back into file content,
	// deterministically (sorted keys).
	Serialize(kv map[string]string) ([]byte, error)
}

// Registered formats, in sniffing order.
func formats() []Format {
	return []Format{JSON{}, XML{}, PostScript{}, INI{}, Plain{}}
}

// ByName returns the format with the given name.
func ByName(name string) (Format, error) {
	for _, f := range formats() {
		if f.Name() == strings.ToLower(name) {
			return f, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownFormat, name)
}

// extFormats maps well-known file extensions to formats.
var extFormats = map[string]string{
	".json":       "json",
	".xml":        "xml",
	".ini":        "ini",
	".ps":         "postscript",
	".joboptions": "postscript",
	".conf":       "plain",
	".txt":        "plain",
	".cfg":        "ini",
}

// Detect guesses the format of a configuration file from its name and
// content: extension first, then content sniffing, falling back to plain
// text (which accepts any "key=value" list).
func Detect(filename string, data []byte) Format {
	if name, ok := extFormats[strings.ToLower(filepath.Ext(filename))]; ok {
		f, err := ByName(name)
		if err == nil {
			return f
		}
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	switch {
	case len(trimmed) > 0 && (trimmed[0] == '{' || trimmed[0] == '['):
		return JSON{}
	case bytes.HasPrefix(trimmed, []byte("<")):
		return XML{}
	case len(trimmed) > 0 && trimmed[0] == '/':
		return PostScript{}
	case bytes.HasPrefix(trimmed, []byte("[")):
		return INI{}
	}
	// An INI section header anywhere suggests INI over plain.
	for _, line := range bytes.Split(trimmed, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) > 1 && line[0] == '[' && line[len(line)-1] == ']' {
			return INI{}
		}
	}
	return Plain{}
}
