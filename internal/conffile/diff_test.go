package conffile

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestDiffBasics(t *testing.T) {
	old := map[string]string{"keep": "1", "change": "old", "gone": "x"}
	new := map[string]string{"keep": "1", "change": "new", "added": "y"}
	got := Diff(old, new)
	want := []Change{
		{Op: ChangeSet, Key: "added", Value: "y"},
		{Op: ChangeSet, Key: "change", Value: "new"},
		{Op: ChangeDelete, Key: "gone"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Diff = %+v, want %+v", got, want)
	}
}

func TestDiffEmpty(t *testing.T) {
	if got := Diff(map[string]string{"a": "1"}, map[string]string{"a": "1"}); len(got) != 0 {
		t.Errorf("identical maps produced changes: %+v", got)
	}
	if got := Diff(nil, nil); len(got) != 0 {
		t.Errorf("nil maps produced changes: %+v", got)
	}
}

func TestApply(t *testing.T) {
	base := map[string]string{"a": "1", "b": "2"}
	changes := []Change{
		{Op: ChangeSet, Key: "a", Value: "changed"},
		{Op: ChangeDelete, Key: "b"},
		{Op: ChangeSet, Key: "c", Value: "new"},
	}
	got := Apply(base, changes)
	want := map[string]string{"a": "changed", "c": "new"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Apply = %v, want %v", got, want)
	}
	if base["a"] != "1" || len(base) != 2 {
		t.Error("Apply must not modify its input")
	}
}

func TestChangeOpString(t *testing.T) {
	if ChangeSet.String() != "set" || ChangeDelete.String() != "delete" {
		t.Error("ChangeOp names wrong")
	}
}

// Property: Apply(old, Diff(old, new)) == new — the soundness guarantee the
// file logger relies on.
func TestDiffApplyProperty(t *testing.T) {
	prop := func(oldKeys, newKeys []string, vals []string) bool {
		val := func(i int) string {
			if i < len(vals) {
				return vals[i]
			}
			return "v"
		}
		old := make(map[string]string)
		for i, k := range oldKeys {
			old[k] = val(i)
		}
		new := make(map[string]string)
		for i, k := range newKeys {
			new[k] = val(len(oldKeys) + i)
		}
		got := Apply(old, Diff(old, new))
		return reflect.DeepEqual(got, new)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end: parse two versions of a Chrome-like JSON file, diff them, and
// confirm the inferred events match the edit the "application" made.
func TestFlushDiffScenario(t *testing.T) {
	before := []byte(`{"bookmark_bar": {"show": true}, "home_button": true}`)
	after := []byte(`{"bookmark_bar": {"show": false}}`)
	f := JSON{}
	oldKV, err := f.Parse(before)
	if err != nil {
		t.Fatal(err)
	}
	newKV, err := f.Parse(after)
	if err != nil {
		t.Fatal(err)
	}
	changes := Diff(oldKV, newKV)
	want := []Change{
		{Op: ChangeSet, Key: "/bookmark_bar/show", Value: "false"},
		{Op: ChangeDelete, Key: "/home_button"},
	}
	if !reflect.DeepEqual(changes, want) {
		t.Errorf("changes = %+v, want %+v", changes, want)
	}
}
