package logger

import (
	"errors"
	"net"
	"testing"
	"time"

	"ocasta/internal/conffile"
	"ocasta/internal/gconf"
	"ocasta/internal/registry"
	"ocasta/internal/trace"
	"ocasta/internal/ttkv"
	"ocasta/internal/ttkvwire"
	"ocasta/internal/vfs"
)

var t0 = time.Date(2013, 6, 1, 12, 0, 0, 0, time.UTC)

func TestRegistryLogging(t *testing.T) {
	store := ttkv.New()
	l := New(store, WithUser("u1"), WithTraceRecording("Windows 7"))
	reg := registry.New()
	defer reg.Attach(l.RegistryHook())()

	s := reg.Session("word")
	key := `HKCU\Software\Word\Data`
	if err := s.SetValue(key, "Max Display", registry.DWordValue(9), t0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryValue(key, "Max Display", t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteValue(key, "Max Display", t0.Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}

	full := registry.FullKey(key, "Max Display")
	hist, err := store.History(full)
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(hist) != 2 {
		t.Fatalf("history = %d versions, want 2 (set + tombstone)", len(hist))
	}
	if hist[0].Value != "REG_DWORD:9" || !hist[1].Deleted {
		t.Errorf("history = %+v", hist)
	}
	st := store.Stats()
	if st.Reads != 1 {
		t.Errorf("Reads = %d, want 1", st.Reads)
	}

	tr := l.Trace()
	if tr.Name != "Windows 7" || len(tr.Events) != 3 {
		t.Fatalf("trace = %q with %d events", tr.Name, len(tr.Events))
	}
	if tr.Events[0].Op != trace.OpWrite || tr.Events[0].Store != trace.StoreRegistry ||
		tr.Events[0].App != "word" || tr.Events[0].User != "u1" {
		t.Errorf("event 0 = %+v", tr.Events[0])
	}
	if tr.Events[1].Op != trace.OpRead || tr.Events[2].Op != trace.OpDelete {
		t.Errorf("ops = %v, %v", tr.Events[1].Op, tr.Events[2].Op)
	}
	if l.Err() != nil {
		t.Errorf("unexpected logger error: %v", l.Err())
	}
}

func TestGConfLogging(t *testing.T) {
	store := ttkv.New()
	l := New(store, WithTraceRecording("Linux-1"))
	db := gconf.New()
	defer db.Attach(l.GConfHook())()

	c := db.Client("evolution")
	key := "/apps/evolution/mail/mark_seen"
	if err := c.SetBool(key, true, t0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetBool(key, t0); err != nil {
		t.Fatal(err)
	}
	if err := c.Unset(key, t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}

	hist, err := store.History(key)
	if err != nil || len(hist) != 2 {
		t.Fatalf("history = %v, %v", hist, err)
	}
	if hist[0].Value != "b:true" || !hist[1].Deleted {
		t.Errorf("history = %+v", hist)
	}
	tr := l.Trace()
	if len(tr.Events) != 3 || tr.Events[0].Store != trace.StoreGConf {
		t.Errorf("trace events = %+v", tr.Events)
	}
}

func TestFileLogging(t *testing.T) {
	store := ttkv.New()
	l := New(store, WithTraceRecording("Linux-2"))
	fs := vfs.New()
	path := "/home/u/.config/chrome/Preferences"
	fl := l.NewFileLogger(fs, map[string]FileSpec{
		path: {App: "chrome", Format: conffile.JSON{}},
	})
	defer fl.Close()

	if err := fs.WriteFile(path, []byte(`{"bookmark_bar": {"show": true}, "home": "x"}`), t0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(path, []byte(`{"bookmark_bar": {"show": false}}`), t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}

	showKey := FileKey(path, "/bookmark_bar/show")
	hist, err := store.History(showKey)
	if err != nil {
		t.Fatalf("History(%q): %v", showKey, err)
	}
	if len(hist) != 2 || hist[0].Value != "true" || hist[1].Value != "false" {
		t.Fatalf("history = %+v", hist)
	}
	homeKey := FileKey(path, "/home")
	hh, err := store.History(homeKey)
	if err != nil || len(hh) != 2 || !hh[1].Deleted {
		t.Fatalf("removed key history = %+v, %v", hh, err)
	}
	if fl.Err() != nil {
		t.Errorf("file logger error: %v", fl.Err())
	}
	// Unwatched files are ignored.
	if err := fs.WriteFile("/other", []byte("k=v\n"), t0); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 2 {
		t.Errorf("store keys = %v, unwatched file must not log", store.Keys())
	}
}

func TestFileLoggerSeedsBaseline(t *testing.T) {
	store := ttkv.New()
	l := New(store)
	fs := vfs.New()
	path := "/cfg/app.ini"
	// File exists before the logger attaches.
	if err := fs.WriteFile(path, []byte("[s]\nk=1\n"), t0); err != nil {
		t.Fatal(err)
	}
	fl := l.NewFileLogger(fs, map[string]FileSpec{path: {App: "app"}})
	defer fl.Close()

	// Only the changed key is logged, not the whole pre-existing file.
	if err := fs.WriteFile(path, []byte("[s]\nk=1\nnew=2\n"), t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("store keys = %v, want only the new key", store.Keys())
	}
	if _, err := store.History(FileKey(path, "s.new")); err != nil {
		t.Errorf("expected s.new to be logged: %v", err)
	}
}

func TestFileLoggerCorruptFlushSkipped(t *testing.T) {
	store := ttkv.New()
	l := New(store)
	fs := vfs.New()
	path := "/cfg/prefs.json"
	fl := l.NewFileLogger(fs, map[string]FileSpec{path: {App: "app", Format: conffile.JSON{}}})
	defer fl.Close()

	if err := fs.WriteFile(path, []byte(`{"a": 1}`), t0); err != nil {
		t.Fatal(err)
	}
	// A corrupt intermediate flush must not emit events or lose the baseline.
	if err := fs.WriteFile(path, []byte(`{"a": `), t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	if fl.Err() == nil {
		t.Error("corrupt flush should latch a parse error")
	}
	if err := fs.WriteFile(path, []byte(`{"a": 2}`), t0.Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	hist, err := store.History(FileKey(path, "/a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || hist[0].Value != "1" || hist[1].Value != "2" {
		t.Fatalf("history = %+v, want clean 1 -> 2 (corrupt flush skipped)", hist)
	}
}

func TestFileRemovalLogsDeletes(t *testing.T) {
	store := ttkv.New()
	l := New(store)
	fs := vfs.New()
	path := "/cfg/state.conf"
	fl := l.NewFileLogger(fs, map[string]FileSpec{path: {App: "app", Format: conffile.Plain{}}})
	defer fl.Close()

	if err := fs.WriteFile(path, []byte("a=1\nb=2\n"), t0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(path, t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b"} {
		hist, err := store.History(FileKey(path, k))
		if err != nil || len(hist) != 2 || !hist[1].Deleted {
			t.Errorf("key %s history = %+v, %v, want tombstone", k, hist, err)
		}
	}
}

func TestObserveFileRead(t *testing.T) {
	store := ttkv.New()
	l := New(store, WithTraceRecording("tr"))
	fs := vfs.New()
	path := "/cfg/app.conf"
	fl := l.NewFileLogger(fs, map[string]FileSpec{path: {App: "app", Format: conffile.Plain{}}})
	defer fl.Close()
	if err := fs.WriteFile(path, []byte("a=1\nb=2\n"), t0); err != nil {
		t.Fatal(err)
	}
	fl.ObserveFileRead(path, t0.Add(time.Second))
	fl.ObserveFileRead("/unwatched", t0) // no-op
	if st := store.Stats(); st.Reads != 2 {
		t.Errorf("Reads = %d, want 2 (one per key)", st.Reads)
	}
	reads := 0
	for _, ev := range l.Trace().Events {
		if ev.Op == trace.OpRead {
			reads++
		}
	}
	if reads != 2 {
		t.Errorf("trace reads = %d, want 2", reads)
	}
}

func TestRemoteSinkEndToEnd(t *testing.T) {
	// Full pipeline: registry hook -> logger -> wire client -> server store.
	serverStore := ttkv.New()
	srv := ttkvwire.NewServer(serverStore)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); !errors.Is(err, ttkvwire.ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	}()
	defer func() { srv.Close(); <-done }()

	client, err := ttkvwire.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	l := New(NewRemoteSink(client))
	reg := registry.New()
	defer reg.Attach(l.RegistryHook())()
	s := reg.Session("explorer")
	if err := s.SetValue(`HKCU\Software\Explorer`, "Toolbar", registry.String("on"), t0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryValue(`HKCU\Software\Explorer`, "Toolbar", t0); err != nil {
		t.Fatal(err)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("logger error: %v", err)
	}

	full := registry.FullKey(`HKCU\Software\Explorer`, "Toolbar")
	v, ok := serverStore.Get(full)
	if !ok || v != "REG_SZ:on" {
		t.Fatalf("server store value = %q,%v", v, ok)
	}
	if st := serverStore.Stats(); st.Reads < 1 {
		t.Errorf("server read count = %d, want >= 1", st.Reads)
	}
}
