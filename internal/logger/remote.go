package logger

import (
	"time"

	"ocasta/internal/ttkvwire"
)

// RemoteSink adapts a TTKV network client into a Sink, so loggers in one
// process can feed the shared TTKV daemon (the role Redis played in the
// paper's deployment).
type RemoteSink struct {
	c *ttkvwire.Client
}

// NewRemoteSink wraps a connected client.
func NewRemoteSink(c *ttkvwire.Client) *RemoteSink { return &RemoteSink{c: c} }

// Set implements Sink.
func (r *RemoteSink) Set(key, value string, t time.Time) error {
	return r.c.Set(key, value, t)
}

// Delete implements Sink.
func (r *RemoteSink) Delete(key string, t time.Time) error {
	return r.c.Delete(key, t)
}

// CountRead implements Sink. The server counts a read for every GET, so a
// fetch-and-discard is the wire-level read marker.
func (r *RemoteSink) CountRead(key string) {
	_, _ = r.c.Get(key) // a miss still counts as a read server-side
}
