// Package logger is Ocasta's unified logging layer: it adapts the
// store-specific interception hooks (Windows registry, GConf, application
// configuration files) into the common key-value event stream, recording
// every access both into a TTKV sink and, optionally, into an in-memory
// trace for later analysis.
//
// This is the glue the paper describes in §IV-B: loggers intercept accesses
// an application makes to its persistent storage and abstract those into
// key-values that can be stored into the TTKV.
package logger

import (
	"sync"
	"time"

	"ocasta/internal/conffile"
	"ocasta/internal/gconf"
	"ocasta/internal/registry"
	"ocasta/internal/trace"
	"ocasta/internal/vfs"
)

// Sink receives the abstracted key-value events. *ttkv.Store implements it
// directly; RemoteSink adapts a ttkvwire client.
type Sink interface {
	Set(key, value string, t time.Time) error
	Delete(key string, t time.Time) error
	CountRead(key string)
}

// Logger multiplexes store-specific hooks into a sink and an optional
// trace recorder. Safe for concurrent use.
type Logger struct {
	mu     sync.Mutex
	sink   Sink
	user   string
	record bool
	tr     trace.Trace
	err    error // first sink error observed
}

// Option configures a Logger.
type Option func(*Logger)

// WithUser tags every recorded event with a user name (the paper links
// traces on shared machines per user).
func WithUser(user string) Option {
	return func(l *Logger) { l.user = user }
}

// WithTraceRecording makes the logger accumulate an in-memory trace with
// the given name alongside the sink writes.
func WithTraceRecording(name string) Option {
	return func(l *Logger) {
		l.record = true
		l.tr.Name = name
	}
}

// New returns a logger writing to sink.
func New(sink Sink, opts ...Option) *Logger {
	l := &Logger{sink: sink}
	for _, opt := range opts {
		opt(l)
	}
	return l
}

// Err returns the first sink error the logger encountered, if any. Hook
// interfaces cannot propagate errors, so the logger latches them here.
func (l *Logger) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Trace returns a copy of the recorded trace (empty unless
// WithTraceRecording was used).
func (l *Logger) Trace() *trace.Trace {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tr.Clone()
}

func (l *Logger) logWrite(store trace.StoreKind, app, key, value string, t time.Time) {
	l.mu.Lock()
	if err := l.sink.Set(key, value, t); err != nil && l.err == nil {
		l.err = err
	}
	if l.record {
		l.tr.Events = append(l.tr.Events, trace.Event{
			Time: t, Op: trace.OpWrite, Store: store, App: app, User: l.user, Key: key, Value: value,
		})
	}
	l.mu.Unlock()
}

func (l *Logger) logDelete(store trace.StoreKind, app, key string, t time.Time) {
	l.mu.Lock()
	if err := l.sink.Delete(key, t); err != nil && l.err == nil {
		l.err = err
	}
	if l.record {
		l.tr.Events = append(l.tr.Events, trace.Event{
			Time: t, Op: trace.OpDelete, Store: store, App: app, User: l.user, Key: key,
		})
	}
	l.mu.Unlock()
}

func (l *Logger) logRead(store trace.StoreKind, app, key string, t time.Time) {
	l.mu.Lock()
	l.sink.CountRead(key)
	if l.record {
		l.tr.Events = append(l.tr.Events, trace.Event{
			Time: t, Op: trace.OpRead, Store: store, App: app, User: l.user, Key: key,
		})
	}
	l.mu.Unlock()
}

// RegistryHook returns a hook to attach to a simulated Windows registry.
func (l *Logger) RegistryHook() registry.Hook { return registryHook{l} }

type registryHook struct{ l *Logger }

func (h registryHook) SetValue(app, fullKey string, v registry.Value, t time.Time) {
	h.l.logWrite(trace.StoreRegistry, app, fullKey, v.Encode(), t)
}

func (h registryHook) DeleteValue(app, fullKey string, t time.Time) {
	h.l.logDelete(trace.StoreRegistry, app, fullKey, t)
}

func (h registryHook) QueryValue(app, fullKey string, t time.Time) {
	h.l.logRead(trace.StoreRegistry, app, fullKey, t)
}

// GConfHook returns a hook to attach to a simulated GConf database.
func (l *Logger) GConfHook() gconf.Hook { return gconfHook{l} }

type gconfHook struct{ l *Logger }

func (h gconfHook) Set(app, key string, v gconf.Value, t time.Time) {
	h.l.logWrite(trace.StoreGConf, app, key, v.Encode(), t)
}

func (h gconfHook) Unset(app, key string, t time.Time) {
	h.l.logDelete(trace.StoreGConf, app, key, t)
}

func (h gconfHook) Get(app, key string, t time.Time) {
	h.l.logRead(trace.StoreGConf, app, key, t)
}

// FileSpec describes one watched configuration file.
type FileSpec struct {
	App string
	// Format parses the file; when nil it is auto-detected from the path
	// and content at each flush.
	Format conffile.Format
}

// FileKey builds the TTKV identity of one key inside a configuration file.
func FileKey(path, flatKey string) string { return path + ":" + flatKey }

// FileLogger infers per-key events from whole-file flushes, the mechanism
// the paper uses for applications with private configuration files. It
// subscribes to a vfs.FS and diffs the flattened content before and after
// every flush of a watched file.
type FileLogger struct {
	l     *Logger
	specs map[string]FileSpec
	// lastGood remembers the most recent successfully parsed content per
	// path, so one corrupt intermediate flush does not lose the baseline.
	mu       sync.Mutex
	lastGood map[string]map[string]string
	parseErr error
	cancel   func()
}

// NewFileLogger attaches a file logger to fs for the given path specs.
// Close it to detach.
func (l *Logger) NewFileLogger(fs *vfs.FS, specs map[string]FileSpec) *FileLogger {
	fl := &FileLogger{
		l:        l,
		specs:    make(map[string]FileSpec, len(specs)),
		lastGood: make(map[string]map[string]string),
	}
	for p, s := range specs {
		fl.specs[p] = s
	}
	// Seed baselines from files that already exist.
	for path, spec := range fl.specs {
		if data, err := fs.ReadFile(path); err == nil {
			if kv, err := fl.parse(path, spec, data); err == nil {
				fl.lastGood[path] = kv
			}
		}
	}
	fl.cancel = fs.Subscribe(fl.onFlush)
	return fl
}

// Close detaches the file logger from the filesystem.
func (fl *FileLogger) Close() {
	if fl.cancel != nil {
		fl.cancel()
	}
}

// Err returns the first parse error encountered on a watched flush.
func (fl *FileLogger) Err() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.parseErr
}

func (fl *FileLogger) parse(path string, spec FileSpec, data []byte) (map[string]string, error) {
	f := spec.Format
	if f == nil {
		f = conffile.Detect(path, data)
	}
	return f.Parse(data)
}

func (fl *FileLogger) onFlush(ev vfs.FlushEvent) {
	spec, watched := fl.specs[ev.Path]
	if !watched {
		return
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	oldKV, haveBase := fl.lastGood[ev.Path]
	if !haveBase {
		oldKV = map[string]string{}
	}
	var newKV map[string]string
	if ev.New == nil { // file removed: everything deleted
		newKV = map[string]string{}
	} else {
		parsed, err := fl.parse(ev.Path, spec, ev.New)
		if err != nil {
			if fl.parseErr == nil {
				fl.parseErr = err
			}
			return // keep the old baseline; skip this flush
		}
		newKV = parsed
	}
	for _, ch := range conffile.Diff(oldKV, newKV) {
		key := FileKey(ev.Path, ch.Key)
		if ch.Op == conffile.ChangeDelete {
			fl.l.logDelete(trace.StoreFile, spec.App, key, ev.Time)
		} else {
			fl.l.logWrite(trace.StoreFile, spec.App, key, ch.Value, ev.Time)
		}
	}
	fl.lastGood[ev.Path] = newKV
}

// ObserveFileRead records that an application read its configuration file:
// a read is counted for every key currently in the file (file-based stores
// only expose whole-file reads, the coarseness the paper notes in §IV-B3).
func (fl *FileLogger) ObserveFileRead(path string, t time.Time) {
	fl.mu.Lock()
	spec, watched := fl.specs[path]
	kv := fl.lastGood[path]
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	fl.mu.Unlock()
	if !watched {
		return
	}
	for _, k := range keys {
		fl.l.logRead(trace.StoreFile, spec.App, FileKey(path, k), t)
	}
}
