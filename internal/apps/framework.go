// Package apps models the 11 desktop applications of the paper's
// evaluation (Table II). Each model declares the application's
// configuration universe — related-setting groups (the ground truth
// clustering is scored against), independent settings, read-only settings,
// and high-frequency non-configuration state keys — plus a deterministic
// "screen" renderer that the repair tool screenshots and the simulated user
// inspects.
//
// The update behaviours encoded in the group specs (co-flush bundles,
// dominant keys, split-second flushes) are what produce the oversized and
// undersized clusters the paper analyses in §VI-A.
package apps

import (
	"fmt"
	"sort"
	"strings"

	"ocasta/internal/conffile"
	"ocasta/internal/trace"
)

// Config is an application's configuration state: native key to encoded
// value.
type Config map[string]string

// Clone returns a copy of the config.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// KeySpec is one setting: its native key and a deterministic generator for
// the value written at a given update episode.
type KeySpec struct {
	Key string
	// Gen produces the value written at episode e (0-based). Nil means the
	// generic "<short>#<e>" placeholder.
	Gen func(e int) string
}

// Value returns the value for episode e.
func (ks KeySpec) Value(e int) string {
	if ks.Gen != nil {
		return ks.Gen(e)
	}
	short := ks.Key
	if i := strings.LastIndexAny(short, `\/`); i >= 0 {
		short = short[i+1:]
	}
	return fmt.Sprintf("%s#%d", short, e)
}

// GroupSpec is a ground-truth group of related settings together with its
// update behaviour, which the workload generator reproduces.
type GroupSpec struct {
	Name string
	Keys []KeySpec
	// Episodes is how many co-update episodes the group receives over a
	// full trace.
	Episodes int
	// Bundle links groups that always flush in the same second (one
	// settings-dialog "Apply" persisting several dependent groups at
	// once). Groups sharing a non-zero Bundle id become one oversized
	// cluster under a 1-second window — the paper's main error source.
	Bundle int
	// DominantEvery, when > 0, makes the first RareCount keys (default 1)
	// rarely-changing dominant settings that join only every n-th episode,
	// while the remaining keys are co-written every episode (the Microsoft
	// Word Fig 1a pattern). The extracted cluster is then undersized with
	// respect to the ground truth.
	DominantEvery int
	// RareCount is how many leading keys are on the rarely-changing side
	// when DominantEvery > 0. Zero means 1.
	RareCount int
	// SplitFlush makes roughly half of episodes stagger their writes
	// across two adjacent seconds, which a 1-second window still groups
	// but a 0-second window does not (the Fig 3a cliff).
	SplitFlush bool
	// EarlyOnly schedules every episode within the first 40% of the
	// trace. Fault-related settings use it so an injected error is not
	// erased by later legitimate writes — mirroring the paper's
	// requirement that the offending settings have history but stay
	// untouched after the error appears.
	EarlyOnly bool
}

// GroupKeys returns the native keys of the group.
func (g *GroupSpec) GroupKeys() []string {
	out := make([]string, len(g.Keys))
	for i, ks := range g.Keys {
		out[i] = ks.Key
	}
	return out
}

// SingletonSpec is an independent setting with its own update count.
type SingletonSpec struct {
	KeySpec
	Episodes int
	// EarlyOnly schedules every episode within the first 40% of the
	// trace (see GroupSpec.EarlyOnly).
	EarlyOnly bool
}

// UIElement is one observable piece of the application's interface whose
// state depends on configuration settings.
type UIElement struct {
	Name string
	// Visible decides from config and the trial's UI actions whether the
	// element shows on screen.
	Visible func(cfg Config, actions []string) bool
	// Detail optionally renders element content (e.g. the recent-file
	// list), so content changes alter the screenshot too.
	Detail func(cfg Config) string
}

// Model is one simulated application.
type Model struct {
	Name        string // canonical id ("msword")
	DisplayName string // "MS Word"
	Description string // "Word Processor" (Table II column)
	Store       trace.StoreKind
	// ConfigPath roots the app's keys: a registry prefix, a GConf prefix,
	// or a configuration file path.
	ConfigPath string
	FileFormat conffile.Format // only for StoreFile
	Groups     []GroupSpec
	Singletons []SingletonSpec
	// ReadOnly settings are present and read at launch but never written,
	// so they contribute to Table I/II key counts but never to clusters.
	ReadOnly []string
	// Noise keys are high-frequency non-configuration state (window
	// geometry, MRU timestamps) written many times per session.
	Noise    []KeySpec
	Elements []UIElement
}

// OwnsKey reports whether a TTKV key belongs to this application.
func (m *Model) OwnsKey(key string) bool {
	switch m.Store {
	case trace.StoreFile:
		return strings.HasPrefix(key, m.ConfigPath+":")
	default:
		return key == m.ConfigPath || strings.HasPrefix(key, m.ConfigPath+sep(m.Store))
	}
}

func sep(s trace.StoreKind) string {
	if s == trace.StoreRegistry {
		return `\`
	}
	return "/"
}

// AllWritableKeys returns every key the workload may write, sorted.
func (m *Model) AllWritableKeys() []string {
	var out []string
	for i := range m.Groups {
		out = append(out, m.Groups[i].GroupKeys()...)
	}
	for i := range m.Singletons {
		out = append(out, m.Singletons[i].Key)
	}
	for i := range m.Noise {
		out = append(out, m.Noise[i].Key)
	}
	sort.Strings(out)
	return out
}

// KeyCount returns the total settings universe (Table II "#Keys"):
// writable plus read-only.
func (m *Model) KeyCount() int {
	return len(m.AllWritableKeys()) + len(m.ReadOnly)
}

// GroundTruthGroups returns the related-setting groups for accuracy
// scoring.
func (m *Model) GroundTruthGroups() [][]string {
	out := make([][]string, 0, len(m.Groups))
	for i := range m.Groups {
		out = append(out, m.Groups[i].GroupKeys())
	}
	return out
}

// Render draws the application screen for a configuration and a trial's UI
// actions. Identical (config, actions) always produce identical output, so
// screenshots can be compared byte-for-byte as the paper compares images.
func (m *Model) Render(cfg Config, actions []string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s ===\n", m.DisplayName)
	fmt.Fprintf(&sb, "actions: %s\n", strings.Join(actions, "; "))
	for i := range m.Elements {
		el := &m.Elements[i]
		mark := "[ ]"
		if el.Visible == nil || el.Visible(cfg, actions) {
			mark = "[x]"
		}
		fmt.Fprintf(&sb, "%s %s", mark, el.Name)
		if el.Detail != nil {
			if d := el.Detail(cfg); d != "" {
				fmt.Fprintf(&sb, " {%s}", d)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// --- config interpretation helpers shared by element definitions ---

// FlagSet interprets an encoded value as a boolean flag across the three
// stores' encodings. missing selects the result when the key is absent.
func FlagSet(cfg Config, key string, missing bool) bool {
	v, ok := cfg[key]
	if !ok {
		return missing
	}
	switch v {
	case "b:true", "REG_DWORD:1", "true", "1", "s:true", "REG_SZ:1", "REG_SZ:true":
		return true
	case "b:false", "REG_DWORD:0", "false", "0", "s:false", "REG_SZ:0", "REG_SZ:false":
		return false
	default:
		return missing
	}
}

// Raw returns the encoded value or "" when absent.
func Raw(cfg Config, key string) string { return cfg[key] }

// HasAction reports whether the trial performed the named UI action.
func HasAction(actions []string, name string) bool {
	for _, a := range actions {
		if a == name {
			return true
		}
	}
	return false
}

// constGen returns a generator that always emits v (stable settings whose
// rewrites carry the same value).
func constGen(v string) func(int) string { return func(int) string { return v } }

// cycleGen returns a generator cycling through vs.
func cycleGen(vs ...string) func(int) string {
	return func(e int) string { return vs[e%len(vs)] }
}
