package apps

import (
	"fmt"
	"strings"

	"ocasta/internal/conffile"
	"ocasta/internal/trace"
)

// Native key paths used by the fault catalog (internal/faults) and the
// examples. Exported so the error scenarios reference the same identities.
const (
	OutlookPrefix      = `HKCU\Software\Microsoft\Office\12.0\Outlook`
	KeyOutlookNavPane  = OutlookPrefix + `\Preferences\ShowNavPane`
	KeyOutlookNavWidth = OutlookPrefix + `\Preferences\NavPaneWidth`

	WordPrefix        = `HKCU\Software\Microsoft\Office\12.0\Word`
	KeyWordMaxDisplay = WordPrefix + `\Data\Settings\Max Display`
	wordItemFmt       = WordPrefix + `\Data\MRU\Item %d`

	IEPrefix         = `HKCU\Software\Microsoft\Internet Explorer`
	KeyIENoAddonDlg  = IEPrefix + `\Ext\DisableAddonPrompt`
	KeyIEApprovedCnt = IEPrefix + `\Ext\ApprovedCount`

	ExplorerPrefix    = `HKCU\Software\Microsoft\Windows\CurrentVersion\Explorer`
	KeyFlvMRUList     = ExplorerPrefix + `\FileExts\.flv\OpenWithList\MRUList`
	KeyFlvAppA        = ExplorerPrefix + `\FileExts\.flv\OpenWithList\a`
	KeyFlvAppB        = ExplorerPrefix + `\FileExts\.flv\OpenWithList\b`
	KeyImgWindowMode  = ExplorerPrefix + `\Streams\ImageWindow\Mode`
	KeyImgWindowPlace = ExplorerPrefix + `\Streams\ImageWindow\Placement`

	WMPPrefix          = `HKCU\Software\Microsoft\MediaPlayer`
	KeyWMPCaptionsOn   = WMPPrefix + `\Player\Settings\CaptionsOn`
	KeyWMPCaptionsLang = WMPPrefix + `\Player\Settings\CaptionsLang`
	KeyWMPCaptionsSize = WMPPrefix + `\Player\Settings\CaptionsSize`
	KeyWMPCaptionsClr  = WMPPrefix + `\Player\Settings\CaptionsColor`

	PaintPrefix          = `HKCU\Software\Microsoft\Paint`
	KeyPaintShowTextTool = PaintPrefix + `\View\ShowTextTool`

	EvolutionPrefix    = `/apps/evolution`
	KeyEvoStartOffline = EvolutionPrefix + "/shell/start_offline"
	KeyEvoOfflineSync  = EvolutionPrefix + "/shell/offline_sync"
	KeyEvoMarkSeen     = EvolutionPrefix + "/mail/display/mark_seen"
	KeyEvoMarkSeenTime = EvolutionPrefix + "/mail/display/mark_seen_timeout"
	KeyEvoReplyBottom  = EvolutionPrefix + "/mail/composer/reply_start_bottom"
	KeyEvoTopSignature = EvolutionPrefix + "/mail/composer/top_signature"

	EOGPrefix      = "/apps/eog"
	KeyEOGPrinting = EOGPrefix + "/print/enable_printing"

	GEditPrefix        = "/apps/gedit-2"
	KeyGEditSaveScheme = GEditPrefix + "/preferences/editor/save/save_scheme"

	ChromePrefs          = "/home/user/.config/google-chrome/Default/Preferences"
	KeyChromeBookmarkBar = ChromePrefs + ":/bookmark_bar/show"
	KeyChromeHomeButton  = ChromePrefs + ":/browser/show_home_button"

	AcrobatPrefs       = "/home/user/.adobe/Acrobat/9.0/Preferences/reader_prefs"
	KeyAcroShowMenuBar = AcrobatPrefs + ":/Originals/ShowMenuBar"
	KeyAcroShowFind    = AcrobatPrefs + ":/Toolbars/ShowFind"
)

// WordItemKey returns the registry key of MRU slot n (1-based), as in
// Fig 1a of the paper.
func WordItemKey(n int) string { return fmt.Sprintf(wordItemFmt, n) }

// addSettingsPanel appends a generic panel element that displays the
// values of a few independent settings, so rolling those settings back
// produces visibly different screenshots — the source of the "unique
// screenshots the user must examine" count in Table IV.
func addSettingsPanel(m *Model) {
	var keys []string
	for _, idx := range []int{0, len(m.Singletons) / 2, len(m.Singletons) - 1} {
		if idx >= 0 && idx < len(m.Singletons) {
			keys = append(keys, m.Singletons[idx].Key)
		}
	}
	if len(keys) == 0 {
		return
	}
	m.Elements = append(m.Elements, UIElement{
		Name: "settings-panel",
		Detail: func(cfg Config) string {
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				if v, ok := cfg[k]; ok {
					parts = append(parts, v)
				}
			}
			return strings.Join(parts, "|")
		},
	})
}

// WordMRUSlots is how many recently-used-document slots the Word model
// maintains; together with Max Display they form the Fig 1a ground-truth
// group.
const WordMRUSlots = 8

// Models returns all 11 application models of Table II, freshly
// constructed (callers may mutate them safely).
func Models() []*Model {
	return []*Model{
		Outlook(), Evolution(), InternetExplorer(), Chrome(), Word(),
		GEdit(), Paint(), EyeOfGNOME(), Acrobat(), Explorer(), MediaPlayer(),
	}
}

// ModelByName returns the model with the given canonical name, or nil.
func ModelByName(name string) *Model {
	for _, m := range Models() {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Outlook models MS Outlook (Table II: 182 keys, 33/82 clusters, 97.0%).
func Outlook() *Model {
	m := &Model{
		Name: "outlook", DisplayName: "MS Outlook", Description: "E-mail Client",
		Store: trace.StoreRegistry, ConfigPath: OutlookPrefix,
	}
	m.Groups = append(m.Groups, GroupSpec{
		Name: "navpane",
		Keys: []KeySpec{
			{Key: KeyOutlookNavPane, Gen: constGen("REG_DWORD:1")},
			{Key: KeyOutlookNavWidth, Gen: cycleGen("REG_DWORD:200", "REG_DWORD:250", "REG_DWORD:300")},
		},
		Episodes:  3,
		EarlyOnly: true,
	})
	m.Groups = append(m.Groups, genGroups(OutlookPrefix, `\`, 31)...)
	m.Groups = append(m.Groups, genBundles(OutlookPrefix, `\`, 1, 2, 0)...)
	m.Singletons = genSingles(OutlookPrefix, `\`, 43)
	m.Noise = genNoise(OutlookPrefix, `\`, 6)
	m.ReadOnly = genReadOnly(OutlookPrefix, `\`, 182-m.KeyCount())
	m.Elements = []UIElement{
		{Name: "navigation-panel", Visible: func(cfg Config, _ []string) bool {
			return FlagSet(cfg, KeyOutlookNavPane, true)
		}},
		{Name: "inbox", Visible: nil},
	}
	addSettingsPanel(m)
	return m
}

// Word models MS Word (Table II: 143 keys, 18/110 clusters, 100%).
// Its MRU group reproduces Fig 1a: Max Display is a dominant setting that
// changes rarely, while the Item slots change on every document open, so
// the default threshold extracts the undersized-but-correct Items cluster.
func Word() *Model {
	m := &Model{
		Name: "msword", DisplayName: "MS Word", Description: "Word Processor",
		Store: trace.StoreRegistry, ConfigPath: WordPrefix,
	}
	mru := GroupSpec{
		Name: "recent-documents",
		Keys: []KeySpec{{Key: KeyWordMaxDisplay, Gen: cycleGen("REG_DWORD:9", "REG_DWORD:6", "REG_DWORD:8")}},
		// Items co-write on every document open; Max Display joins only
		// when the user edits the preference.
		Episodes:      30,
		DominantEvery: 6,
		EarlyOnly:     true,
	}
	for i := 1; i <= WordMRUSlots; i++ {
		slot := i
		mru.Keys = append(mru.Keys, KeySpec{
			Key: WordItemKey(slot),
			Gen: func(e int) string { return fmt.Sprintf("REG_SZ:doc-%d-%d.docx", slot, e) },
		})
	}
	m.Groups = append(m.Groups, mru)
	m.Groups = append(m.Groups, genGroups(WordPrefix, `\`, 17)...)
	m.Singletons = genSingles(WordPrefix, `\`, 85)
	m.Noise = genNoise(WordPrefix, `\`, 6)
	m.ReadOnly = genReadOnly(WordPrefix, `\`, 143-m.KeyCount())
	m.Elements = []UIElement{
		{
			Name: "recent-documents",
			Visible: func(cfg Config, _ []string) bool {
				raw := Raw(cfg, KeyWordMaxDisplay)
				return raw != "" && raw != "REG_DWORD:0" && anyWordItem(cfg)
			},
			Detail: wordMRUDetail,
		},
		{Name: "document-pane", Visible: nil},
	}
	addSettingsPanel(m)
	return m
}

func anyWordItem(cfg Config) bool {
	for i := 1; i <= WordMRUSlots; i++ {
		if _, ok := cfg[WordItemKey(i)]; ok {
			return true
		}
	}
	return false
}

func wordMRUDetail(cfg Config) string {
	var items []string
	for i := 1; i <= WordMRUSlots; i++ {
		if v, ok := cfg[WordItemKey(i)]; ok {
			items = append(items, v)
		}
	}
	return strings.Join(items, ",")
}

// InternetExplorer models IE (Table II: 33 keys, 9/12 clusters, 66.7%).
func InternetExplorer() *Model {
	m := &Model{
		Name: "ie", DisplayName: "Internet Explorer", Description: "Web Browser",
		Store: trace.StoreRegistry, ConfigPath: IEPrefix,
	}
	m.Groups = append(m.Groups, GroupSpec{
		Name: "addon-approval",
		Keys: []KeySpec{
			{Key: KeyIENoAddonDlg, Gen: constGen("REG_DWORD:1")},
			{Key: KeyIEApprovedCnt, Gen: cycleGen("REG_DWORD:3", "REG_DWORD:4", "REG_DWORD:5")},
		},
		Episodes:  3,
		EarlyOnly: true,
	})
	m.Groups = append(m.Groups, genGroups(IEPrefix, `\`, 5)...)
	m.Groups = append(m.Groups, genBundles(IEPrefix, `\`, 3, 2, 0)...)
	m.Singletons = genSingles(IEPrefix, `\`, 2)
	m.Noise = genNoise(IEPrefix, `\`, 1)
	m.ReadOnly = genReadOnly(IEPrefix, `\`, 33-m.KeyCount())
	m.Elements = []UIElement{
		{Name: "addon-warning-dialog", Visible: func(cfg Config, _ []string) bool {
			return !FlagSet(cfg, KeyIENoAddonDlg, true)
		}},
		{Name: "browser-window", Visible: nil},
	}
	addSettingsPanel(m)
	return m
}

// Chrome models Chrome Browser (Table II: 35 keys, 1/34 clusters, 100%).
func Chrome() *Model {
	m := &Model{
		Name: "chrome", DisplayName: "Chrome Browser", Description: "Web Browser",
		Store: trace.StoreFile, ConfigPath: ChromePrefs, FileFormat: conffile.JSON{},
	}
	m.Groups = append(m.Groups, GroupSpec{
		Name: "sync",
		Keys: []KeySpec{
			{Key: ChromePrefs + ":/sync/enabled", Gen: constGen("true")},
			{Key: ChromePrefs + ":/sync/account", Gen: cycleGen("user@example.com", "user2@example.com")},
		},
		Episodes: 2,
	})
	m.Singletons = append(m.Singletons,
		SingletonSpec{KeySpec: KeySpec{Key: KeyChromeBookmarkBar, Gen: constGen("true")}, Episodes: 3, EarlyOnly: true},
		SingletonSpec{KeySpec: KeySpec{Key: KeyChromeHomeButton, Gen: constGen("true")}, Episodes: 2, EarlyOnly: true},
	)
	m.Singletons = append(m.Singletons, genSinglesFile(ChromePrefs, 29)...)
	m.Noise = []KeySpec{
		{Key: ChromePrefs + ":/session/last_window_rect"},
		{Key: ChromePrefs + ":/session/last_active_time"},
	}
	m.Elements = []UIElement{
		{Name: "bookmark-bar", Visible: func(cfg Config, _ []string) bool {
			return FlagSet(cfg, KeyChromeBookmarkBar, true)
		}},
		{Name: "home-button", Visible: func(cfg Config, _ []string) bool {
			return FlagSet(cfg, KeyChromeHomeButton, true)
		}},
		{Name: "omnibox", Visible: nil},
	}
	addSettingsPanel(m)
	return m
}

// genSinglesFile generates independent flattened-file settings.
func genSinglesFile(path string, count int) []SingletonSpec {
	out := make([]SingletonSpec, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, SingletonSpec{
			KeySpec:  KeySpec{Key: fmt.Sprintf("%s:/settings/single%03d", path, i)},
			Episodes: 1 + i%4,
		})
	}
	return out
}

// Evolution models Evolution Mail (Table II: 183 keys, 18/65, 38.9%).
// Its many co-flush bundles — including one six-group bundle, which the
// paper calls out explicitly — are why its accuracy is the worst.
func Evolution() *Model {
	m := &Model{
		Name: "evolution", DisplayName: "Evolution Mail", Description: "E-mail Client",
		Store: trace.StoreGConf, ConfigPath: EvolutionPrefix,
	}
	m.Groups = append(m.Groups,
		GroupSpec{
			Name: "offline",
			Keys: []KeySpec{
				{Key: KeyEvoStartOffline, Gen: constGen("b:false")},
				{Key: KeyEvoOfflineSync, Gen: cycleGen("b:true", "b:false")},
			},
			Episodes:  3,
			EarlyOnly: true,
		},
		GroupSpec{
			Name: "mark-seen",
			Keys: []KeySpec{
				{Key: KeyEvoMarkSeen, Gen: constGen("b:true")},
				{Key: KeyEvoMarkSeenTime, Gen: cycleGen("i:1500", "i:2000", "i:1000")},
			},
			Episodes:  4,
			EarlyOnly: true,
		},
		GroupSpec{
			Name: "reply-position",
			Keys: []KeySpec{
				{Key: KeyEvoReplyBottom, Gen: constGen("b:false")},
				{Key: KeyEvoTopSignature, Gen: cycleGen("b:true", "b:false")},
			},
			Episodes:  3,
			EarlyOnly: true,
		},
	)
	m.Groups = append(m.Groups, genGroups(EvolutionPrefix, "/", 4)...)
	// One 6-group bundle plus ten 2-group bundles -> 11 oversized clusters.
	m.Groups = append(m.Groups, genBundles(EvolutionPrefix, "/", 1, 6, 0)...)
	m.Groups = append(m.Groups, genBundles(EvolutionPrefix, "/", 10, 2, 10)...)
	m.Singletons = genSingles(EvolutionPrefix, "/", 43)
	m.Noise = genNoise(EvolutionPrefix, "/", 4)
	m.ReadOnly = genReadOnly(EvolutionPrefix, "/", 183-m.KeyCount())
	m.Elements = []UIElement{
		{Name: "online-mode", Visible: func(cfg Config, _ []string) bool {
			return !FlagSet(cfg, KeyEvoStartOffline, false)
		}},
		{Name: "auto-mark-read", Visible: func(cfg Config, _ []string) bool {
			if !FlagSet(cfg, KeyEvoMarkSeen, true) {
				return false
			}
			timeout := Raw(cfg, KeyEvoMarkSeenTime)
			return timeout == "" || (strings.HasPrefix(timeout, "i:") && !strings.HasPrefix(timeout, "i:-"))
		}},
		{Name: "reply-at-top", Visible: func(cfg Config, _ []string) bool {
			return !FlagSet(cfg, KeyEvoReplyBottom, false)
		}},
		{Name: "folder-list", Visible: nil},
	}
	addSettingsPanel(m)
	return m
}

// GEdit models GNOME Edit (Table II: 10 keys, 1/7 clusters, 0.0%).
func GEdit() *Model {
	m := &Model{
		Name: "gedit", DisplayName: "GNOME Edit", Description: "Word Processor",
		Store: trace.StoreGConf, ConfigPath: GEditPrefix,
	}
	m.Groups = append(m.Groups, genBundles(GEditPrefix, "/", 1, 2, 0)...)
	m.Singletons = append(m.Singletons, SingletonSpec{
		KeySpec:   KeySpec{Key: KeyGEditSaveScheme, Gen: constGen("s:file")},
		Episodes:  2,
		EarlyOnly: true,
	})
	m.Singletons = append(m.Singletons, genSingles(GEditPrefix, "/", 4)...)
	m.Noise = genNoise(GEditPrefix, "/", 1)
	m.Elements = []UIElement{
		{Name: "save-button", Visible: func(cfg Config, _ []string) bool {
			v := Raw(cfg, KeyGEditSaveScheme)
			return v == "" || v == "s:file"
		}},
		{Name: "editor-pane", Visible: nil},
	}
	addSettingsPanel(m)
	return m
}

// Paint models MS Paint (Table II: 66 keys, 2/8 clusters, 50.0%). The
// eight-key text-toolbar group backs error #6 (all eight settings must
// roll back together).
func Paint() *Model {
	m := &Model{
		Name: "mspaint", DisplayName: "MS Paint", Description: "Image Editor",
		Store: trace.StoreRegistry, ConfigPath: PaintPrefix,
	}
	text := GroupSpec{
		Name: "text-toolbar",
		Keys: []KeySpec{{Key: KeyPaintShowTextTool, Gen: constGen("REG_DWORD:1")}},
		// The toolbar state persists together whenever the user moves or
		// restyles it.
		Episodes:  4,
		EarlyOnly: true,
	}
	for _, part := range []string{"TextToolX", "TextToolY", "TextFont", "TextSize", "TextBold", "TextItalic", "TextCharset"} {
		p := part
		text.Keys = append(text.Keys, KeySpec{
			Key: PaintPrefix + `\View\` + p,
			Gen: func(e int) string { return fmt.Sprintf("REG_SZ:%s-%d", p, e) },
		})
	}
	m.Groups = append(m.Groups, text)
	m.Groups = append(m.Groups, genBundles(PaintPrefix, `\`, 1, 2, 0)...)
	m.Singletons = genSingles(PaintPrefix, `\`, 4)
	m.Noise = genNoise(PaintPrefix, `\`, 2)
	m.ReadOnly = genReadOnly(PaintPrefix, `\`, 66-m.KeyCount())
	m.Elements = []UIElement{
		{Name: "text-toolbar", Visible: func(cfg Config, actions []string) bool {
			if !HasAction(actions, "enter-text") {
				return false
			}
			if !FlagSet(cfg, KeyPaintShowTextTool, true) {
				return false
			}
			// A corrupt toolbar state (any part missing) also hides it.
			for _, part := range []string{"TextToolX", "TextToolY", "TextFont", "TextSize", "TextBold", "TextItalic", "TextCharset"} {
				if _, ok := cfg[PaintPrefix+`\View\`+part]; !ok {
					return false
				}
			}
			return true
		}},
		{Name: "canvas", Visible: nil},
	}
	addSettingsPanel(m)
	return m
}

// EyeOfGNOME models Eye of GNOME (Table II: 5 keys, 0/5 clusters, N/A).
func EyeOfGNOME() *Model {
	m := &Model{
		Name: "eog", DisplayName: "Eye of GNOME", Description: "Image Viewer",
		Store: trace.StoreGConf, ConfigPath: EOGPrefix,
	}
	m.Singletons = append(m.Singletons, SingletonSpec{
		KeySpec:   KeySpec{Key: KeyEOGPrinting, Gen: constGen("b:true")},
		Episodes:  2,
		EarlyOnly: true,
	})
	m.Singletons = append(m.Singletons, genSingles(EOGPrefix, "/", 4)...)
	m.Elements = []UIElement{
		{Name: "print-dialog", Visible: func(cfg Config, actions []string) bool {
			return HasAction(actions, "print") && FlagSet(cfg, KeyEOGPrinting, true)
		}},
		{Name: "image-view", Visible: nil},
	}
	addSettingsPanel(m)
	return m
}

// Acrobat models Acrobat Reader (Table II: 751 keys, 120/550, 95.8%).
func Acrobat() *Model {
	m := &Model{
		Name: "acrobat", DisplayName: "Acrobat Reader", Description: "Document Reader",
		Store: trace.StoreFile, ConfigPath: AcrobatPrefs, FileFormat: conffile.PostScript{},
	}
	m.Groups = append(m.Groups, genGroupsFile(AcrobatPrefs, 115)...)
	m.Groups = append(m.Groups, genBundlesFile(AcrobatPrefs, 5, 2, 0)...)
	m.Singletons = append(m.Singletons,
		SingletonSpec{KeySpec: KeySpec{Key: KeyAcroShowMenuBar, Gen: constGen("true")}, Episodes: 2, EarlyOnly: true},
		SingletonSpec{KeySpec: KeySpec{Key: KeyAcroShowFind, Gen: constGen("true")}, Episodes: 2, EarlyOnly: true},
	)
	m.Singletons = append(m.Singletons, genSinglesFile(AcrobatPrefs, 423)...)
	m.Noise = []KeySpec{
		{Key: AcrobatPrefs + ":/AVGeneral/WindowRect"},
		{Key: AcrobatPrefs + ":/AVGeneral/LastOpened"},
		{Key: AcrobatPrefs + ":/AVGeneral/SessionCount"},
		{Key: AcrobatPrefs + ":/AVGeneral/RecentTimestamp"},
		{Key: AcrobatPrefs + ":/AVGeneral/ScrollPos"},
	}
	m.ReadOnly = genReadOnlyFile(AcrobatPrefs, 751-m.KeyCount())
	m.Elements = []UIElement{
		{Name: "menu-bar", Visible: func(cfg Config, actions []string) bool {
			if HasAction(actions, "open-fullscreen.pdf") && !FlagSet(cfg, KeyAcroShowMenuBar, true) {
				return false
			}
			return true
		}},
		{Name: "find-box", Visible: func(cfg Config, _ []string) bool {
			return FlagSet(cfg, KeyAcroShowFind, true)
		}},
		{Name: "page-view", Visible: nil},
	}
	addSettingsPanel(m)
	return m
}

func genGroupsFile(path string, count int) []GroupSpec {
	out := make([]GroupSpec, 0, count)
	for i := 0; i < count; i++ {
		size := 2 + i%2
		keys := make([]KeySpec, 0, size)
		for k := 0; k < size; k++ {
			keys = append(keys, KeySpec{Key: fmt.Sprintf("%s:/settings/group%03d/k%d", path, i, k)})
		}
		out = append(out, GroupSpec{
			Name:       fmt.Sprintf("group%03d", i),
			Keys:       keys,
			Episodes:   3 + i%6,
			SplitFlush: i%3 != 2,
		})
	}
	return out
}

func genBundlesFile(path string, nBundles, groupsPer, bundleBase int) []GroupSpec {
	var out []GroupSpec
	for b := 0; b < nBundles; b++ {
		id := bundleBase + b
		for g := 0; g < groupsPer; g++ {
			out = append(out, GroupSpec{
				Name: fmt.Sprintf("bundle%02d-g%d", id, g),
				Keys: []KeySpec{
					{Key: fmt.Sprintf("%s:/settings/bundle%02d/g%d/k0", path, id, g)},
					{Key: fmt.Sprintf("%s:/settings/bundle%02d/g%d/k1", path, id, g)},
				},
				Episodes: 2 + b%3,
				Bundle:   id + 1,
			})
		}
	}
	return out
}

func genReadOnlyFile(path string, count int) []string {
	out := make([]string, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, fmt.Sprintf("%s:/settings/ro%03d", path, i))
	}
	return out
}

// Explorer models the Windows shell (Table II: 298 keys, 32/91, 84.4%).
// Its open-with group reproduces error #4's structure: the MRU order list
// changes even when the application names do not, so the default threshold
// splits the list from the names.
func Explorer() *Model {
	m := &Model{
		Name: "explorer", DisplayName: "Explorer", Description: "Windows Shell",
		Store: trace.StoreRegistry, ConfigPath: ExplorerPrefix,
	}
	m.Groups = append(m.Groups,
		GroupSpec{
			Name: "openwith-flv",
			Keys: []KeySpec{
				// The two application-name keys change rarely; the MRU
				// order list changes on most episodes.
				{Key: KeyFlvAppA, Gen: constGen("REG_SZ:vlc.exe")},
				{Key: KeyFlvAppB, Gen: constGen("REG_SZ:wmplayer.exe")},
				{Key: KeyFlvMRUList, Gen: cycleGen("REG_SZ:ab", "REG_SZ:ba")},
			},
			Episodes:      12,
			DominantEvery: 6,
			// Both name keys are the rarely-changing side.
			RareCount: 2,
			EarlyOnly: true,
		},
		GroupSpec{
			Name: "image-window",
			Keys: []KeySpec{
				{Key: KeyImgWindowMode, Gen: constGen("REG_SZ:normal")},
				{Key: KeyImgWindowPlace, Gen: cycleGen("REG_BINARY:00ff", "REG_BINARY:01ff")},
			},
			Episodes:  4,
			EarlyOnly: true,
		},
	)
	m.Groups = append(m.Groups, genGroups(ExplorerPrefix, `\`, 25)...)
	m.Groups = append(m.Groups, genBundles(ExplorerPrefix, `\`, 5, 2, 0)...)
	m.Singletons = genSingles(ExplorerPrefix, `\`, 50)
	m.Noise = genNoise(ExplorerPrefix, `\`, 8)
	m.ReadOnly = genReadOnly(ExplorerPrefix, `\`, 298-m.KeyCount())
	m.Elements = []UIElement{
		{
			Name: "openwith-flv-apps",
			Visible: func(cfg Config, actions []string) bool {
				if !HasAction(actions, "context-menu-flv") {
					return true // only observable from the context menu
				}
				list := Raw(cfg, KeyFlvMRUList)
				_, haveA := cfg[KeyFlvAppA]
				_, haveB := cfg[KeyFlvAppB]
				return list != "" && list != "REG_SZ:" && haveA && haveB
			},
			Detail: func(cfg Config) string {
				return Raw(cfg, KeyFlvAppA) + ";" + Raw(cfg, KeyFlvAppB)
			},
		},
		{
			Name: "image-window-normal",
			Visible: func(cfg Config, actions []string) bool {
				if !HasAction(actions, "open-image") {
					return true
				}
				return Raw(cfg, KeyImgWindowMode) == "REG_SZ:normal" &&
					strings.HasPrefix(Raw(cfg, KeyImgWindowPlace), "REG_BINARY:0")
			},
		},
		{Name: "file-list", Visible: nil},
	}
	addSettingsPanel(m)
	return m
}

// MediaPlayer models Windows Media Player (Table II: 165 keys, 21/41,
// 90.5%).
func MediaPlayer() *Model {
	m := &Model{
		Name: "wmp", DisplayName: "Windows Media Player", Description: "Media Player",
		Store: trace.StoreRegistry, ConfigPath: WMPPrefix,
	}
	m.Groups = append(m.Groups, GroupSpec{
		Name: "captions",
		Keys: []KeySpec{
			{Key: KeyWMPCaptionsOn, Gen: constGen("REG_DWORD:1")},
			{Key: KeyWMPCaptionsLang, Gen: cycleGen("REG_SZ:en", "REG_SZ:fr")},
			{Key: KeyWMPCaptionsSize, Gen: cycleGen("REG_DWORD:12", "REG_DWORD:14")},
			{Key: KeyWMPCaptionsClr, Gen: cycleGen("REG_SZ:white", "REG_SZ:yellow")},
		},
		Episodes:  3,
		EarlyOnly: true,
	})
	m.Groups = append(m.Groups, genGroups(WMPPrefix, `\`, 18)...)
	m.Groups = append(m.Groups, genBundles(WMPPrefix, `\`, 2, 2, 0)...)
	m.Singletons = genSingles(WMPPrefix, `\`, 15)
	m.Noise = genNoise(WMPPrefix, `\`, 5)
	m.ReadOnly = genReadOnly(WMPPrefix, `\`, 165-m.KeyCount())
	m.Elements = []UIElement{
		{Name: "captions", Visible: func(cfg Config, actions []string) bool {
			return HasAction(actions, "play-video") && FlagSet(cfg, KeyWMPCaptionsOn, true)
		}},
		{Name: "playback-controls", Visible: nil},
	}
	addSettingsPanel(m)
	return m
}
