package apps

import "fmt"

// Generators for the bulk of each application's configuration universe.
// The handful of settings involved in the paper's 16 errors are declared
// by hand in models.go; the rest of the key population (generic related
// groups, independent settings, read-only settings, noise state) is
// synthesized here so each model matches its Table II row.

// genGroups makes count clean related-setting groups under prefix, with
// sizes alternating 2 and 3 and deterministic per-group episode counts.
// Every third group staggers its flushes across two adjacent seconds (the
// Fig 3a zero-window cliff).
func genGroups(prefix, sp string, count int) []GroupSpec {
	out := make([]GroupSpec, 0, count)
	for i := 0; i < count; i++ {
		size := 2 + i%2
		keys := make([]KeySpec, 0, size)
		for k := 0; k < size; k++ {
			keys = append(keys, KeySpec{Key: fmt.Sprintf("%s%sgroup%03d%sk%d", prefix, sp, i, sp, k)})
		}
		out = append(out, GroupSpec{
			Name:       fmt.Sprintf("group%03d", i),
			Keys:       keys,
			Episodes:   3 + i%6,
			SplitFlush: i%3 != 2,
		})
	}
	return out
}

// genBundles makes nBundles co-flush bundles, each of groupsPer 2-key
// groups. Groups in a bundle always persist in the same second, so the
// 1-second window merges them into one oversized cluster. bundleBase keeps
// bundle ids unique within a model.
func genBundles(prefix, sp string, nBundles, groupsPer, bundleBase int) []GroupSpec {
	var out []GroupSpec
	for b := 0; b < nBundles; b++ {
		id := bundleBase + b
		for g := 0; g < groupsPer; g++ {
			keys := []KeySpec{
				{Key: fmt.Sprintf("%s%sbundle%02d%sg%d%sk0", prefix, sp, id, sp, g, sp)},
				{Key: fmt.Sprintf("%s%sbundle%02d%sg%d%sk1", prefix, sp, id, sp, g, sp)},
			}
			out = append(out, GroupSpec{
				Name:     fmt.Sprintf("bundle%02d-g%d", id, g),
				Keys:     keys,
				Episodes: 2 + b%3,
				Bundle:   id + 1,
			})
		}
	}
	return out
}

// genSingles makes count independent settings with 1-8 episodes each.
func genSingles(prefix, sp string, count int) []SingletonSpec {
	out := make([]SingletonSpec, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, SingletonSpec{
			KeySpec:  KeySpec{Key: fmt.Sprintf("%s%ssingle%03d", prefix, sp, i)},
			Episodes: 1 + i%4,
		})
	}
	return out
}

// genReadOnly makes count settings that are read at launch but never
// written (they count toward #Keys, never toward clusters).
func genReadOnly(prefix, sp string, count int) []string {
	out := make([]string, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, fmt.Sprintf("%s%sro%03d", prefix, sp, i))
	}
	return out
}

// genNoise makes count high-frequency non-configuration state keys
// (window geometry, MRU timestamps) written many times per session.
func genNoise(prefix, sp string, count int) []KeySpec {
	out := make([]KeySpec, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, KeySpec{Key: fmt.Sprintf("%s%snoise%02d", prefix, sp, i)})
	}
	return out
}
