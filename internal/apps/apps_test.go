package apps

import (
	"strings"
	"testing"

	"ocasta/internal/trace"
)

func TestModelsRoster(t *testing.T) {
	ms := Models()
	if len(ms) != 11 {
		t.Fatalf("Models() = %d models, want 11 (Table II)", len(ms))
	}
	seen := make(map[string]bool)
	for _, m := range ms {
		if m.Name == "" || m.DisplayName == "" || m.Description == "" {
			t.Errorf("model %q has empty identity fields", m.Name)
		}
		if seen[m.Name] {
			t.Errorf("duplicate model name %q", m.Name)
		}
		seen[m.Name] = true
		if !m.Store.Valid() {
			t.Errorf("model %q has invalid store", m.Name)
		}
		if len(m.Elements) == 0 {
			t.Errorf("model %q has no UI elements", m.Name)
		}
	}
}

func TestModelByName(t *testing.T) {
	if m := ModelByName("msword"); m == nil || m.DisplayName != "MS Word" {
		t.Errorf("ModelByName(msword) = %+v", m)
	}
	if m := ModelByName("nope"); m != nil {
		t.Errorf("ModelByName(nope) = %+v, want nil", m)
	}
}

// Table II key counts: the models must reproduce the paper's #Keys column.
func TestKeyCountsMatchTableII(t *testing.T) {
	want := map[string]int{
		"outlook": 182, "evolution": 183, "ie": 33, "chrome": 35,
		"msword": 143, "gedit": 10, "mspaint": 66, "eog": 5,
		"acrobat": 751, "explorer": 298, "wmp": 165,
	}
	total := 0
	for _, m := range Models() {
		got := m.KeyCount()
		if got != want[m.Name] {
			t.Errorf("%s: KeyCount = %d, want %d", m.Name, got, want[m.Name])
		}
		total += got
	}
	if total != 1871 {
		t.Errorf("total keys = %d, want 1871 (Table II)", total)
	}
}

func TestNoDuplicateKeysWithinModel(t *testing.T) {
	for _, m := range Models() {
		seen := make(map[string]string)
		add := func(key, where string) {
			if prev, dup := seen[key]; dup {
				t.Errorf("%s: key %q in both %s and %s", m.Name, key, prev, where)
			}
			seen[key] = where
		}
		for i := range m.Groups {
			for _, ks := range m.Groups[i].Keys {
				add(ks.Key, "group "+m.Groups[i].Name)
			}
		}
		for i := range m.Singletons {
			add(m.Singletons[i].Key, "singleton")
		}
		for i := range m.Noise {
			add(m.Noise[i].Key, "noise")
		}
		for _, k := range m.ReadOnly {
			add(k, "readonly")
		}
	}
}

func TestOwnsKey(t *testing.T) {
	word := Word()
	if !word.OwnsKey(KeyWordMaxDisplay) {
		t.Error("Word must own its Max Display key")
	}
	if word.OwnsKey(KeyOutlookNavPane) {
		t.Error("Word must not own Outlook keys")
	}
	chrome := Chrome()
	if !chrome.OwnsKey(KeyChromeBookmarkBar) {
		t.Error("Chrome must own its bookmark bar key")
	}
	if chrome.OwnsKey(AcrobatPrefs + ":/x") {
		t.Error("Chrome must not own Acrobat file keys")
	}
}

func TestAllKeysBelongToModel(t *testing.T) {
	for _, m := range Models() {
		for _, k := range m.AllWritableKeys() {
			if !m.OwnsKey(k) {
				t.Errorf("%s: writable key %q fails OwnsKey", m.Name, k)
			}
		}
		for _, k := range m.ReadOnly {
			if !m.OwnsKey(k) {
				t.Errorf("%s: readonly key %q fails OwnsKey", m.Name, k)
			}
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	m := Chrome()
	cfg := Config{KeyChromeBookmarkBar: "true", KeyChromeHomeButton: "false"}
	a := m.Render(cfg, []string{"launch"})
	b := m.Render(cfg.Clone(), []string{"launch"})
	if a != b {
		t.Error("Render must be deterministic for identical inputs")
	}
	if !strings.Contains(a, "[x] bookmark-bar") {
		t.Errorf("bookmark bar should be visible:\n%s", a)
	}
	if !strings.Contains(a, "[ ] home-button") {
		t.Errorf("home button should be hidden:\n%s", a)
	}
}

func TestRenderChangesWithConfig(t *testing.T) {
	m := Acrobat()
	good := Config{KeyAcroShowMenuBar: "true"}
	bad := Config{KeyAcroShowMenuBar: "false"}
	actions := []string{"open-fullscreen.pdf"}
	if m.Render(good, actions) == m.Render(bad, actions) {
		t.Error("config change must alter the rendered screen")
	}
	if !strings.Contains(m.Render(bad, actions), "[ ] menu-bar") {
		t.Error("menu bar must disappear for the bad config")
	}
	// Without the triggering document, the menu bar stays visible (the
	// paper's error #15 manifests only for certain PDFs).
	if !strings.Contains(m.Render(bad, []string{"open-normal.pdf"}), "[x] menu-bar") {
		t.Error("menu bar must be visible for ordinary documents")
	}
}

func TestWordMRUElement(t *testing.T) {
	m := Word()
	cfg := Config{
		KeyWordMaxDisplay: "REG_DWORD:9",
		WordItemKey(1):    "REG_SZ:a.docx",
		WordItemKey(2):    "REG_SZ:b.docx",
	}
	screen := m.Render(cfg, nil)
	if !strings.Contains(screen, "[x] recent-documents") || !strings.Contains(screen, "a.docx") {
		t.Errorf("MRU should be visible with items:\n%s", screen)
	}
	// Error #2 state: Max Display zeroed and items deleted.
	broken := Config{KeyWordMaxDisplay: "REG_DWORD:0"}
	screen = m.Render(broken, nil)
	if !strings.Contains(screen, "[ ] recent-documents") {
		t.Errorf("MRU must be hidden in the error state:\n%s", screen)
	}
}

func TestFlagSet(t *testing.T) {
	cfg := Config{
		"t1": "b:true", "t2": "REG_DWORD:1", "t3": "true", "t4": "1",
		"f1": "b:false", "f2": "REG_DWORD:0", "f3": "false", "f4": "0",
		"odd": "REG_SZ:something",
	}
	for _, k := range []string{"t1", "t2", "t3", "t4"} {
		if !FlagSet(cfg, k, false) {
			t.Errorf("FlagSet(%s) = false, want true", k)
		}
	}
	for _, k := range []string{"f1", "f2", "f3", "f4"} {
		if FlagSet(cfg, k, true) {
			t.Errorf("FlagSet(%s) = true, want false", k)
		}
	}
	if !FlagSet(cfg, "missing", true) || FlagSet(cfg, "missing", false) {
		t.Error("FlagSet must fall back to the missing default")
	}
	if !FlagSet(cfg, "odd", true) || FlagSet(cfg, "odd", false) {
		t.Error("unparseable values must fall back to the missing default")
	}
}

func TestConfigClone(t *testing.T) {
	cfg := Config{"a": "1"}
	cl := cfg.Clone()
	cl["a"] = "2"
	cl["b"] = "3"
	if cfg["a"] != "1" || len(cfg) != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestGroundTruthGroupsCoverMultiKeyGroups(t *testing.T) {
	m := Evolution()
	gt := m.GroundTruthGroups()
	if len(gt) != len(m.Groups) {
		t.Fatalf("gt groups = %d, want %d", len(gt), len(m.Groups))
	}
	found := false
	for _, g := range gt {
		for _, k := range g {
			if k == KeyEvoMarkSeen {
				found = true
			}
		}
	}
	if !found {
		t.Error("mark_seen must be part of a ground-truth group")
	}
}

func TestKeySpecValueGenerators(t *testing.T) {
	plain := KeySpec{Key: `HKCU\App\some_setting`}
	if got := plain.Value(3); got != "some_setting#3" {
		t.Errorf("generic value = %q", got)
	}
	slash := KeySpec{Key: "/apps/x/key"}
	if got := slash.Value(0); got != "key#0" {
		t.Errorf("slash-path value = %q", got)
	}
	c := KeySpec{Key: "k", Gen: constGen("fixed")}
	if c.Value(0) != "fixed" || c.Value(9) != "fixed" {
		t.Error("constGen wrong")
	}
	cy := KeySpec{Key: "k", Gen: cycleGen("a", "b")}
	if cy.Value(0) != "a" || cy.Value(1) != "b" || cy.Value(2) != "a" {
		t.Error("cycleGen wrong")
	}
}

func TestStoreKindsPerTableIII(t *testing.T) {
	wantStore := map[string]trace.StoreKind{
		"outlook": trace.StoreRegistry, "msword": trace.StoreRegistry,
		"ie": trace.StoreRegistry, "explorer": trace.StoreRegistry,
		"wmp": trace.StoreRegistry, "mspaint": trace.StoreRegistry,
		"evolution": trace.StoreGConf, "eog": trace.StoreGConf, "gedit": trace.StoreGConf,
		"chrome": trace.StoreFile, "acrobat": trace.StoreFile,
	}
	for _, m := range Models() {
		if m.Store != wantStore[m.Name] {
			t.Errorf("%s store = %v, want %v", m.Name, m.Store, wantStore[m.Name])
		}
	}
}
