package workload

import (
	"fmt"
	"math/rand"
	"time"

	"ocasta/internal/trace"
)

// StreamSpec describes a synthetic co-modification write stream for the
// streaming-analytics benchmarks and tests: a key universe partitioned
// into many small components (clusters of settings that flush together),
// written episode by episode at distinct seconds, so the trace's
// statistical shape matches the paper's workloads while the scale knobs
// (events, components) turn independently.
type StreamSpec struct {
	// Apps is how many applications interleave in the stream (>= 1).
	Apps int
	// Components is the number of co-flush key groups per app.
	Components int
	// KeysPerComponent is the size of each group (>= 1).
	KeysPerComponent int
	// Episodes is the total number of co-modification episodes emitted
	// across all apps; each episode writes one component's keys.
	Episodes int
	// Seed drives the deterministic generator.
	Seed int64
}

// Events returns the total event count the spec generates. Every third
// episode writes only half its component (correlation variety), so this
// is exact, not an estimate.
func (s StreamSpec) Events() int {
	n := 0
	for e := 0; e < s.Episodes; e++ {
		if e%3 == 2 {
			n += (s.KeysPerComponent + 1) / 2
		} else {
			n += s.KeysPerComponent
		}
	}
	return n
}

// SyntheticStream generates the spec's trace: chronologically sorted,
// second-granular, one episode per distinct second (each episode sits in
// its own 1-second window). Every third episode writes only the first
// half of its component's keys, so intra-component correlations vary
// instead of all sitting at the clean maximum.
func SyntheticStream(spec StreamSpec) *trace.Trace {
	if spec.Apps < 1 {
		spec.Apps = 1
	}
	if spec.Components < 1 {
		spec.Components = 1
	}
	if spec.KeysPerComponent < 1 {
		spec.KeysPerComponent = 1
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	tr := &trace.Trace{Name: fmt.Sprintf("synthetic-stream-%d", spec.Seed)}
	base := DefaultStart
	for e := 0; e < spec.Episodes; e++ {
		app := rng.Intn(spec.Apps)
		comp := rng.Intn(spec.Components)
		t := base.Add(time.Duration(e) * 2 * time.Second)
		keys := spec.KeysPerComponent
		if e%3 == 2 {
			keys = (keys + 1) / 2
		}
		appendEpisode(tr, app, comp, keys, e, t)
	}
	return tr
}

// DirtyEpisodes generates follow-up episodes touching only components
// [0, dirtyComponents) of app 0, timestamped after every event of the
// base spec — the "1% of the universe changed" workload the incremental
// reclustering benchmark replays.
func DirtyEpisodes(spec StreamSpec, dirtyComponents, episodes, round int) *trace.Trace {
	tr := &trace.Trace{Name: "dirty"}
	base := DefaultStart.Add(time.Duration(spec.Episodes+round*episodes) * 2 * time.Second)
	for e := 0; e < episodes; e++ {
		comp := e % dirtyComponents
		t := base.Add(time.Duration(e) * 2 * time.Second)
		appendEpisode(tr, 0, comp, spec.KeysPerComponent, e, t)
	}
	return tr
}

func appendEpisode(tr *trace.Trace, app, comp, keys, episode int, t time.Time) {
	appName := fmt.Sprintf("app%02d", app)
	for k := 0; k < keys; k++ {
		tr.Events = append(tr.Events, trace.Event{
			Time:  t,
			Op:    trace.OpWrite,
			Store: trace.StoreRegistry,
			App:   appName,
			User:  "bench",
			Key:   fmt.Sprintf("app%02d/c%04d/k%02d", app, comp, k),
			Value: fmt.Sprintf("v%d", episode),
		})
	}
}
