package workload

import (
	"ocasta/internal/apps"
	"ocasta/internal/trace"
)

// Profiles returns the nine deployment machines of Table I, with
// application rosters chosen so every error of Table III lives on the
// trace the paper reports it on, and volumes tuned toward the paper's
// read/write/key counts.
func Profiles() []MachineProfile {
	return []MachineProfile{
		{
			Name: "Windows 7", User: "w7", Days: 42, Seed: 701,
			Apps: []AppUsage{
				{Model: apps.Outlook(), SessionsPerDay: 3, ScansPerSession: 11, NoiseWritesPerDay: 320},
				{Model: apps.Word(), SessionsPerDay: 3, ScansPerSession: 11, NoiseWritesPerDay: 300},
				{Model: apps.InternetExplorer(), SessionsPerDay: 3, ScansPerSession: 11, NoiseWritesPerDay: 260},
				{Model: apps.Explorer(), SessionsPerDay: 3, ScansPerSession: 11, NoiseWritesPerDay: 420},
			},
			Fill: Filler{Keys: 3955, WritesPerDay: 300, ScansPerDay: 33, PathPrefix: `HKCU\Software\System7`},
		},
		{
			Name: "Windows Vista", User: "vista", Days: 53, Seed: 702,
			Apps: []AppUsage{
				{Model: apps.Explorer(), SessionsPerDay: 2, ScansPerSession: 2, NoiseWritesPerDay: 140},
				{Model: apps.InternetExplorer(), SessionsPerDay: 2, ScansPerSession: 2, NoiseWritesPerDay: 90},
				{Model: apps.MediaPlayer(), SessionsPerDay: 1, ScansPerSession: 2, NoiseWritesPerDay: 80},
			},
			Fill: Filler{Keys: 14177, WritesPerDay: 75, ScansPerDay: 4, PathPrefix: `HKCU\Software\SystemV`},
		},
		{
			Name: "Windows Vista-2", User: "vista2", Days: 18, Seed: 703,
			Apps: []AppUsage{
				{Model: apps.Word(), SessionsPerDay: 4, ScansPerSession: 40, NoiseWritesPerDay: 6200},
				{Model: apps.Explorer(), SessionsPerDay: 4, ScansPerSession: 40, NoiseWritesPerDay: 6000},
			},
			Fill: Filler{Keys: 682, WritesPerDay: 280, ScansPerDay: 630, PathPrefix: `HKCU\Software\SystemV2`},
		},
		{
			Name: "Windows XP", User: "xp", Days: 25, Seed: 704,
			Apps: []AppUsage{
				{Model: apps.MediaPlayer(), SessionsPerDay: 4, ScansPerSession: 15, NoiseWritesPerDay: 4200},
				{Model: apps.Paint(), SessionsPerDay: 2, ScansPerSession: 15, NoiseWritesPerDay: 3900},
				{Model: apps.Explorer(), SessionsPerDay: 4, ScansPerSession: 15, NoiseWritesPerDay: 4200},
			},
			Fill: Filler{Keys: 14138, WritesPerDay: 180, ScansPerDay: 63, PathPrefix: `HKCU\Software\SystemXP`},
		},
		{
			Name: "Windows XP-2", User: "xp2", Days: 32, Seed: 705,
			Apps: []AppUsage{
				{Model: apps.Outlook(), SessionsPerDay: 3, ScansPerSession: 14, NoiseWritesPerDay: 2900},
				{Model: apps.Word(), SessionsPerDay: 3, ScansPerSession: 14, NoiseWritesPerDay: 2700},
				{Model: apps.Explorer(), SessionsPerDay: 3, ScansPerSession: 14, NoiseWritesPerDay: 2700},
			},
			Fill: Filler{Keys: 18878, WritesPerDay: 100, ScansPerDay: 43, PathPrefix: `HKCU\Software\SystemXP2`},
		},
		{
			Name: "Linux-1", User: "linux1", Days: 25, Seed: 706,
			Apps: []AppUsage{
				{Model: apps.Evolution(), SessionsPerDay: 2, ScansPerSession: 1, NoiseWritesPerDay: 70},
				{Model: apps.EyeOfGNOME(), SessionsPerDay: 1, ScansPerSession: 1, NoiseWritesPerDay: 20},
				{Model: apps.GEdit(), SessionsPerDay: 1, ScansPerSession: 1, NoiseWritesPerDay: 40},
			},
			Fill: Filler{Keys: 1462, WritesPerDay: 2, ScansPerDay: 2, PathPrefix: "/system/linux1", Store: trace.StoreGConf},
		},
		{
			Name: "Linux-2", User: "linux2", Days: 84, Seed: 707,
			Apps: []AppUsage{
				{Model: apps.Chrome(), SessionsPerDay: 1, ScansPerSession: 3, NoiseWritesPerDay: 5},
			},
		},
		{
			Name: "Linux-3", User: "linux3", Days: 46, Seed: 708,
			Apps: []AppUsage{
				{Model: apps.Acrobat(), SessionsPerDay: 1, ScansPerSession: 1, NoiseWritesPerDay: 7},
			},
		},
		{
			Name: "Linux-4", User: "linux4", Days: 64, Seed: 709,
			Apps: []AppUsage{
				{Model: apps.Acrobat(), SessionsPerDay: 2, ScansPerSession: 5, NoiseWritesPerDay: 80},
			},
		},
	}
}

// ProfileByName returns the Table I machine with the given name.
func ProfileByName(name string) (MachineProfile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return MachineProfile{}, false
}

// StudyUsage returns a focused single-application deployment used for the
// Table II clustering study: long enough for every group to receive its
// full episode schedule, with normal noise volume.
func StudyUsage(m *apps.Model, seed int64) MachineProfile {
	return MachineProfile{
		Name: "study-" + m.Name,
		User: "study",
		Days: 30,
		Seed: seed,
		Apps: []AppUsage{
			{Model: m, SessionsPerDay: 3, ScansPerSession: 2, NoiseWritesPerDay: 120},
		},
	}
}
