package workload

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/core"
	"ocasta/internal/trace"
)

func TestGenerateDeterministic(t *testing.T) {
	p := StudyUsage(apps.Chrome(), 42)
	a := Generate(p)
	b := Generate(p)
	if len(a.Trace.Events) != len(b.Trace.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Trace.Events), len(b.Trace.Events))
	}
	for i := range a.Trace.Events {
		if a.Trace.Events[i] != b.Trace.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Trace.Events[i], b.Trace.Events[i])
		}
	}
	if a.AccessedKeys != b.AccessedKeys {
		t.Error("accessed key counts differ")
	}
}

func TestGenerateEventsSortedAndStamped(t *testing.T) {
	res := Generate(StudyUsage(apps.Evolution(), 7))
	var prev time.Time
	for i, ev := range res.Trace.Events {
		if ev.Time.Before(prev) {
			t.Fatalf("event %d out of order", i)
		}
		prev = ev.Time
		if ev.App == "" || ev.Key == "" || !ev.Op.Valid() || !ev.Store.Valid() {
			t.Fatalf("event %d malformed: %+v", i, ev)
		}
	}
	if _, last, ok := res.Trace.Span(); !ok || last.After(DefaultStart.Add(31*24*time.Hour)) {
		t.Errorf("trace extends past the configured days: %v", last)
	}
}

func TestGroupsAlwaysCoWritten(t *testing.T) {
	// Every independent clean group must form a full co-modification group
	// under the default 1-second window in every episode.
	m := apps.Outlook()
	res := Generate(StudyUsage(m, 99))
	w := trace.NewWindower(trace.DefaultWindow, trace.GroupAnchored)
	groups := w.GroupTrace(res.Trace.ByApp(m.Name))
	ps := core.NewPairStats(groups)
	// The nav pane pair must have correlation exactly 2.
	if corr := ps.KeyCorrelation(apps.KeyOutlookNavPane, apps.KeyOutlookNavWidth); corr != 2 {
		t.Errorf("navpane correlation = %v, want 2", corr)
	}
}

func TestDominantKeySplitsFromItems(t *testing.T) {
	m := apps.Word()
	res := Generate(StudyUsage(m, 5))
	w := trace.NewWindower(trace.DefaultWindow, trace.GroupAnchored)
	ps := core.NewPairStats(w.GroupTrace(res.Trace.ByApp(m.Name)))
	// Items are always co-written: corr = 2.
	if corr := ps.KeyCorrelation(apps.WordItemKey(1), apps.WordItemKey(2)); corr != 2 {
		t.Errorf("item-item correlation = %v, want 2", corr)
	}
	// Max Display joins only every 6th episode: corr strictly below 2 but
	// above 1 (it is never written alone).
	corr := ps.KeyCorrelation(apps.KeyWordMaxDisplay, apps.WordItemKey(1))
	if corr >= 2 || corr <= 1 {
		t.Errorf("dominant-item correlation = %v, want in (1,2)", corr)
	}
}

func TestBundleGroupsShareSeconds(t *testing.T) {
	m := apps.GEdit() // one bundle of two 2-key groups
	res := Generate(StudyUsage(m, 13))
	w := trace.NewWindower(trace.DefaultWindow, trace.GroupAnchored)
	ps := core.NewPairStats(w.GroupTrace(res.Trace.ByApp(m.Name)))
	var bundleKeys []string
	for i := range m.Groups {
		if m.Groups[i].Bundle != 0 {
			bundleKeys = append(bundleKeys, m.Groups[i].GroupKeys()...)
		}
	}
	if len(bundleKeys) != 4 {
		t.Fatalf("expected 4 bundle keys, got %v", bundleKeys)
	}
	// Cross-group keys inside one bundle must be fully correlated, which
	// is what produces the oversized cluster.
	if corr := ps.KeyCorrelation(bundleKeys[0], bundleKeys[2]); corr != 2 {
		t.Errorf("cross-group bundle correlation = %v, want 2", corr)
	}
}

func TestReadsAndKeysAccumulate(t *testing.T) {
	res := Generate(StudyUsage(apps.EyeOfGNOME(), 3))
	st := res.Store.Stats()
	if st.Reads == 0 {
		t.Error("sessions must produce reads")
	}
	if res.AccessedKeys < apps.EyeOfGNOME().KeyCount() {
		t.Errorf("AccessedKeys = %d, want >= %d", res.AccessedKeys, apps.EyeOfGNOME().KeyCount())
	}
}

func TestFillerKeysNeverPair(t *testing.T) {
	p := MachineProfile{
		Name: "fill-test", User: "u", Days: 10, Seed: 21,
		Fill: Filler{Keys: 50, WritesPerDay: 40, ScansPerDay: 1, PathPrefix: `HKCU\Software\F`},
	}
	res := Generate(p)
	w := trace.NewWindower(trace.DefaultWindow, trace.GroupAnchored)
	for _, g := range w.GroupTrace(res.Trace) {
		if len(g.Keys) > 1 {
			t.Fatalf("filler keys grouped together: %v", g.Keys)
		}
	}
}

func TestProfilesCoverTableI(t *testing.T) {
	ps := Profiles()
	if len(ps) != 9 {
		t.Fatalf("Profiles() = %d, want 9 (Table I rows)", len(ps))
	}
	wantDays := map[string]int{
		"Windows 7": 42, "Windows Vista": 53, "Windows Vista-2": 18,
		"Windows XP": 25, "Windows XP-2": 32,
		"Linux-1": 25, "Linux-2": 84, "Linux-3": 46, "Linux-4": 64,
	}
	for _, p := range ps {
		if wantDays[p.Name] != p.Days {
			t.Errorf("%s days = %d, want %d", p.Name, p.Days, wantDays[p.Name])
		}
	}
	if _, ok := ProfileByName("Windows 7"); !ok {
		t.Error("ProfileByName(Windows 7) not found")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("ProfileByName(nope) should be missing")
	}
}

// Every Table III error's application must be present on its trace.
func TestErrorAppsOnTheirTraces(t *testing.T) {
	placement := map[string][]string{
		"Windows 7":     {"outlook", "msword", "ie"},
		"Windows Vista": {"explorer"},
		"Windows XP":    {"wmp", "mspaint", "explorer"},
		"Linux-1":       {"evolution", "eog", "gedit"},
		"Linux-2":       {"chrome"},
		"Linux-3":       {"acrobat"},
		"Linux-4":       {"acrobat"},
	}
	for machine, appNames := range placement {
		p, ok := ProfileByName(machine)
		if !ok {
			t.Fatalf("missing profile %s", machine)
		}
		for _, name := range appNames {
			found := false
			for _, u := range p.Apps {
				if u.Model.Name == name {
					found = true
				}
			}
			if !found {
				t.Errorf("%s must run %s (Table III placement)", machine, name)
			}
		}
	}
}

func TestSyntheticStreamShape(t *testing.T) {
	spec := StreamSpec{Apps: 2, Components: 10, KeysPerComponent: 4, Episodes: 300, Seed: 7}
	tr := SyntheticStream(spec)
	if got, want := len(tr.Events), spec.Events(); got != want {
		t.Fatalf("generated %d events, Events() says %d", got, want)
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Time.Before(tr.Events[i-1].Time) {
			t.Fatalf("events out of order at %d", i)
		}
	}
	// Deterministic for a seed.
	again := SyntheticStream(spec)
	if !reflect.DeepEqual(tr, again) {
		t.Fatal("SyntheticStream not deterministic")
	}
	// Dirty episodes land strictly after the base stream and only touch
	// the designated components.
	dirty := DirtyEpisodes(spec, 2, 6, 0)
	last := tr.Events[len(tr.Events)-1].Time
	for _, ev := range dirty.Events {
		if !ev.Time.After(last) {
			t.Fatalf("dirty event at %v not after base end %v", ev.Time, last)
		}
		if !strings.Contains(ev.Key, "/c0000/") && !strings.Contains(ev.Key, "/c0001/") {
			t.Fatalf("dirty event touched unexpected key %s", ev.Key)
		}
	}
}
