// Package workload synthesizes the application-usage traces the paper
// collected from 29 real desktops (Table I). The generator reproduces the
// statistical structure the clustering pipeline depends on — related
// settings co-written within a second, co-flush bundles, dominant keys
// joining only some episodes, split-second flushes, high-frequency noise
// state, and read-mostly key populations — while remaining fully
// deterministic for a given seed.
//
// The paper's raw traces are private human-subject data; this generator is
// the documented substitution (see README.md). Real traces can be replayed
// through the identical trace.Trace interfaces.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/trace"
	"ocasta/internal/ttkv"
)

// DefaultStart is the first day of every generated trace.
var DefaultStart = time.Date(2013, 9, 1, 0, 0, 0, 0, time.UTC)

// AppUsage describes how intensively one application is used on a machine.
type AppUsage struct {
	Model *apps.Model
	// SessionsPerDay is how many times the application is launched daily.
	SessionsPerDay int
	// ScansPerSession is how many times a session re-reads the whole
	// configuration (drives Table I read volume).
	ScansPerSession int
	// NoiseWritesPerDay is the total daily writes across the model's
	// noise keys (drives Table I write volume).
	NoiseWritesPerDay int
}

// Filler models the rest of the machine: settings of applications outside
// the 11 studied ones, which contribute key and read/write volume but are
// not clustered.
type Filler struct {
	Keys         int
	WritesPerDay int
	ScansPerDay  int
	// PathPrefix roots the filler keys (registry- or gconf-style).
	PathPrefix string
	Store      trace.StoreKind
}

// MachineProfile describes one deployment machine (a Table I row).
type MachineProfile struct {
	Name  string
	User  string
	Days  int
	Seed  int64
	Start time.Time // zero means DefaultStart
	Apps  []AppUsage
	Fill  Filler
}

// Result is a generated deployment: the write/delete event trace (reads
// are counted in the store, not materialized as events) and the populated
// TTKV.
type Result struct {
	Trace *trace.Trace
	Store *ttkv.Store
	// AccessedKeys is the number of distinct keys read or written,
	// Table I's "# Keys" column.
	AccessedKeys int
}

type session struct{ start, end time.Time }

// Generate synthesizes one machine's deployment.
func Generate(p MachineProfile) *Result {
	start := p.Start
	if start.IsZero() {
		start = DefaultStart
	}
	res := &Result{
		Trace: &trace.Trace{Name: p.Name},
		Store: ttkv.New(),
	}
	accessed := make(map[string]struct{})
	for i, usage := range p.Apps {
		g := &appGen{
			rng:     rand.New(rand.NewSource(p.Seed*1000003 + int64(i))),
			usage:   usage,
			days:    p.Days,
			start:   start,
			used:    make(map[int64]struct{}),
			anchors: make(map[int64]struct{}),
			res:     res,
			user:    p.User,
		}
		g.run(accessed)
	}
	if p.Fill.Keys > 0 {
		genFiller(p, start, res, accessed)
	}
	res.Trace.SortByTime()
	res.AccessedKeys = len(accessed)
	return res
}

// appGen generates one application's activity on one machine.
type appGen struct {
	rng   *rand.Rand
	usage AppUsage
	days  int
	start time.Time
	used  map[int64]struct{} // reserved episode seconds for this app
	// anchors are episode start seconds. Noise may share an episode's
	// second (a realistic same-second collision, harmless to the
	// correlation of the group's members) but must not land one second
	// before an anchor, where it would hijack the sliding window's anchor
	// and cut a split flush in half.
	anchors map[int64]struct{}
	res     *Result
	user    string
	// batch accumulates this app's store mutations so they land through
	// the store's batch API in one Apply instead of per-event calls.
	// Call order is preserved, so histories (and sequence numbers) are
	// identical to per-event application.
	batch []ttkv.Mutation
}

func (g *appGen) run(accessed map[string]struct{}) {
	m := g.usage.Model
	sessions := g.makeSessions()

	// Group episodes: bundles share the leader's schedule.
	byBundle := make(map[int][]*apps.GroupSpec)
	var independent []*apps.GroupSpec
	for i := range m.Groups {
		gr := &m.Groups[i]
		if gr.Bundle != 0 {
			byBundle[gr.Bundle] = append(byBundle[gr.Bundle], gr)
		} else {
			independent = append(independent, gr)
		}
	}
	for _, gr := range independent {
		times := g.episodeTimes(sessions, gr.Episodes, gr.EarlyOnly)
		g.writeGroupEpisodes([]*apps.GroupSpec{gr}, times)
	}
	bundleIDs := make([]int, 0, len(byBundle))
	for id := range byBundle {
		bundleIDs = append(bundleIDs, id)
	}
	sort.Ints(bundleIDs)
	for _, id := range bundleIDs {
		groups := byBundle[id]
		times := g.episodeTimes(sessions, groups[0].Episodes, groups[0].EarlyOnly)
		g.writeGroupEpisodes(groups, times)
	}

	// Independent settings.
	for i := range m.Singletons {
		s := &m.Singletons[i]
		times := g.episodeTimes(sessions, s.Episodes, s.EarlyOnly)
		for e, t := range times {
			g.write(s.Key, s.Value(e), t)
		}
	}

	// Noise state: frequent writes at unreserved times (collisions with
	// configuration episodes are realistic and harmless at the default
	// threshold).
	if len(m.Noise) > 0 && g.usage.NoiseWritesPerDay > 0 {
		total := g.usage.NoiseWritesPerDay * g.days
		for w := 0; w < total; w++ {
			ks := m.Noise[g.rng.Intn(len(m.Noise))]
			t := g.randomSessionTime(sessions)
			for tries := 0; tries < 8; tries++ {
				if _, bad := g.anchors[t.Unix()+1]; !bad {
					break
				}
				t = g.randomSessionTime(sessions)
			}
			g.write(ks.Key, ks.Value(w), t)
		}
	}

	// Apply the buffered writes before counting reads: CountReads only
	// counts keys that exist in the store.
	g.flush()

	// Reads: every session scans the whole configuration universe.
	// ReadOnly keys are never written, so their scans contribute to the
	// accessed-key universe but not to stored read counters.
	allKeys := append(m.AllWritableKeys(), m.ReadOnly...)
	scans := len(sessions) * g.usage.ScansPerSession
	if scans > 0 {
		for _, key := range allKeys {
			g.res.Store.CountReads(key, scans)
		}
	}
	for _, key := range allKeys {
		accessed[key] = struct{}{}
	}
}

func (g *appGen) makeSessions() []session {
	per := g.usage.SessionsPerDay
	if per <= 0 {
		per = 1
	}
	sessions := make([]session, 0, g.days*per)
	for d := 0; d < g.days; d++ {
		day := g.start.Add(time.Duration(d) * 24 * time.Hour)
		for s := 0; s < per; s++ {
			startMin := 8*60 + g.rng.Intn(12*60) // 08:00 .. 20:00
			dur := 20 + g.rng.Intn(100)          // 20..120 minutes
			st := day.Add(time.Duration(startMin) * time.Minute)
			sessions = append(sessions, session{start: st, end: st.Add(time.Duration(dur) * time.Minute)})
		}
	}
	return sessions
}

// episodeTimes reserves count distinct seconds (plus their successors, so
// split flushes stay private) across random sessions and returns them in
// chronological order. With early, episodes are drawn only from the first
// 40% of the trace.
func (g *appGen) episodeTimes(sessions []session, count int, early bool) []time.Time {
	pool := sessions
	if early {
		n := len(sessions) * 2 / 5
		if n < 1 {
			n = 1
		}
		pool = sessions[:n]
	}
	out := make([]time.Time, 0, count)
	for len(out) < count {
		t := g.randomSessionTime(pool)
		sec := t.Unix()
		if _, taken := g.used[sec]; taken {
			continue
		}
		if _, taken := g.used[sec+1]; taken {
			continue
		}
		if _, taken := g.used[sec-1]; taken {
			continue // the predecessor may split into our second
		}
		g.used[sec] = struct{}{}
		g.used[sec+1] = struct{}{}
		g.anchors[sec] = struct{}{}
		out = append(out, time.Unix(sec, 0).UTC())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

func (g *appGen) randomSessionTime(sessions []session) time.Time {
	s := sessions[g.rng.Intn(len(sessions))]
	span := int64(s.end.Sub(s.start) / time.Second)
	if span <= 0 {
		span = 1
	}
	return s.start.Add(time.Duration(g.rng.Int63n(span)) * time.Second).Truncate(time.Second)
}

// writeGroupEpisodes writes every group's keys at each episode time; all
// groups passed in share the timestamps (co-flush bundles).
func (g *appGen) writeGroupEpisodes(groups []*apps.GroupSpec, times []time.Time) {
	for e, t := range times {
		for _, gr := range groups {
			rare := gr.RareCount
			if rare == 0 && gr.DominantEvery > 0 {
				rare = 1
			}
			split := gr.SplitFlush && e%2 == 1
			for ki := range gr.Keys {
				if gr.DominantEvery > 0 && ki < rare && e%gr.DominantEvery != 0 {
					continue // dominant keys join only every n-th episode
				}
				wt := t
				if split && ki >= len(gr.Keys)/2 {
					wt = t.Add(time.Second) // staggered flush
				}
				g.write(gr.Keys[ki].Key, gr.Keys[ki].Value(e), wt)
			}
		}
	}
}

func (g *appGen) write(key, value string, t time.Time) {
	m := g.usage.Model
	g.res.Trace.Events = append(g.res.Trace.Events, trace.Event{
		Time: t, Op: trace.OpWrite, Store: m.Store, App: m.Name, User: g.user, Key: key, Value: value,
	})
	g.batch = append(g.batch, ttkv.Mutation{Key: key, Value: value, Time: t})
}

// flush applies the buffered mutations through the store's batch API.
// Errors are impossible by construction (non-empty keys, non-zero times).
func (g *appGen) flush() {
	if len(g.batch) == 0 {
		return
	}
	if _, err := g.res.Store.Apply(g.batch); err != nil {
		panic(fmt.Sprintf("workload: store apply: %v", err))
	}
	g.batch = g.batch[:0]
}

// genFiller populates the machine's remaining key universe.
func genFiller(p MachineProfile, start time.Time, res *Result, accessed map[string]struct{}) {
	rng := rand.New(rand.NewSource(p.Seed*7919 + 17))
	prefix := p.Fill.PathPrefix
	if prefix == "" {
		prefix = `HKCU\Software\System`
	}
	store := p.Fill.Store
	if !store.Valid() {
		store = trace.StoreRegistry
	}
	sp := "/"
	if store == trace.StoreRegistry {
		sp = `\`
	}
	keys := make([]string, p.Fill.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("%s%sk%05d", prefix, sp, i)
		accessed[keys[i]] = struct{}{}
	}
	// Writes: each at a unique second so filler keys never pair up. The
	// whole filler population goes through the batch API in one Apply.
	used := make(map[int64]struct{})
	total := p.Fill.WritesPerDay * p.Days
	span := int64(p.Days) * 24 * 3600
	muts := make([]ttkv.Mutation, 0, total)
	for w := 0; w < total; w++ {
		var sec int64
		for {
			sec = start.Unix() + rng.Int63n(span)
			if _, taken := used[sec]; !taken {
				used[sec] = struct{}{}
				break
			}
		}
		t := time.Unix(sec, 0).UTC()
		key := keys[rng.Intn(len(keys))]
		value := fmt.Sprintf("v%d", w)
		res.Trace.Events = append(res.Trace.Events, trace.Event{
			Time: t, Op: trace.OpWrite, Store: store, App: "system", User: p.User, Key: key, Value: value,
		})
		muts = append(muts, ttkv.Mutation{Key: key, Value: value, Time: t})
	}
	if _, err := res.Store.Apply(muts); err != nil {
		panic(fmt.Sprintf("workload: filler apply: %v", err))
	}
	// Reads: scans of the filler population.
	scans := p.Fill.ScansPerDay * p.Days
	for _, key := range keys {
		res.Store.CountReads(key, scans)
	}
}
