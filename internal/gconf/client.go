package gconf

import (
	"fmt"
	"time"
)

// Client is an application-tagged handle to the database, the analogue of
// a process running with Ocasta's preloaded logger library.
type Client struct {
	db  *Database
	app string
}

// App returns the application name the client is tagged with.
func (c *Client) App() string { return c.app }

// Set stores a typed value at key, notifying hooks and directory watchers.
func (c *Client) Set(key string, v Value, t time.Time) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	c.db.mu.Lock()
	c.db.entries[key] = v
	hooks := c.db.snapshotHooks()
	notifiers := c.db.matchingNotifiers(key)
	c.db.mu.Unlock()
	for _, h := range hooks {
		h.Set(c.app, key, v, t)
	}
	vCopy := v
	for _, fn := range notifiers {
		fn(key, &vCopy)
	}
	return nil
}

// Unset removes key, notifying hooks and directory watchers.
func (c *Client) Unset(key string, t time.Time) error {
	if err := ValidateKey(key); err != nil {
		return err
	}
	c.db.mu.Lock()
	if _, ok := c.db.entries[key]; !ok {
		c.db.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoEntry, key)
	}
	delete(c.db.entries, key)
	hooks := c.db.snapshotHooks()
	notifiers := c.db.matchingNotifiers(key)
	c.db.mu.Unlock()
	for _, h := range hooks {
		h.Unset(c.app, key, t)
	}
	for _, fn := range notifiers {
		fn(key, nil)
	}
	return nil
}

// Get fetches the value at key, notifying hooks of the read.
func (c *Client) Get(key string, t time.Time) (Value, error) {
	if err := ValidateKey(key); err != nil {
		return Value{}, err
	}
	c.db.mu.RLock()
	v, ok := c.db.entries[key]
	hooks := c.db.snapshotHooks()
	c.db.mu.RUnlock()
	for _, h := range hooks {
		h.Get(c.app, key, t)
	}
	if !ok {
		return Value{}, fmt.Errorf("%w: %q", ErrNoEntry, key)
	}
	return v, nil
}

// Typed convenience setters, mirroring gconf_client_set_*.

// SetBool stores a boolean.
func (c *Client) SetBool(key string, b bool, t time.Time) error { return c.Set(key, Bool(b), t) }

// SetInt stores an integer.
func (c *Client) SetInt(key string, n int, t time.Time) error { return c.Set(key, Int(n), t) }

// SetFloat stores a float.
func (c *Client) SetFloat(key string, f float64, t time.Time) error {
	return c.Set(key, Float(f), t)
}

// SetString stores a string.
func (c *Client) SetString(key, s string, t time.Time) error { return c.Set(key, String(s), t) }

// SetList stores a string list.
func (c *Client) SetList(key string, items []string, t time.Time) error {
	return c.Set(key, List(items...), t)
}

// Typed getters, mirroring gconf_client_get_*.

// GetBool fetches a boolean.
func (c *Client) GetBool(key string, t time.Time) (bool, error) {
	v, err := c.Get(key, t)
	if err != nil {
		return false, err
	}
	if v.Kind != KindBool {
		return false, fmt.Errorf("%w: %q is %v", ErrWrongType, key, v.Kind)
	}
	return v.Bool, nil
}

// GetInt fetches an integer.
func (c *Client) GetInt(key string, t time.Time) (int, error) {
	v, err := c.Get(key, t)
	if err != nil {
		return 0, err
	}
	if v.Kind != KindInt {
		return 0, fmt.Errorf("%w: %q is %v", ErrWrongType, key, v.Kind)
	}
	return v.Int, nil
}

// GetFloat fetches a float.
func (c *Client) GetFloat(key string, t time.Time) (float64, error) {
	v, err := c.Get(key, t)
	if err != nil {
		return 0, err
	}
	if v.Kind != KindFloat {
		return 0, fmt.Errorf("%w: %q is %v", ErrWrongType, key, v.Kind)
	}
	return v.Float, nil
}

// GetString fetches a string.
func (c *Client) GetString(key string, t time.Time) (string, error) {
	v, err := c.Get(key, t)
	if err != nil {
		return "", err
	}
	if v.Kind != KindString {
		return "", fmt.Errorf("%w: %q is %v", ErrWrongType, key, v.Kind)
	}
	return v.Str, nil
}

// GetList fetches a string list.
func (c *Client) GetList(key string, t time.Time) ([]string, error) {
	v, err := c.Get(key, t)
	if err != nil {
		return nil, err
	}
	if v.Kind != KindList {
		return nil, fmt.Errorf("%w: %q is %v", ErrWrongType, key, v.Kind)
	}
	out := make([]string, len(v.List))
	copy(out, v.List)
	return out, nil
}

// ApplyEncoded writes an encoded value (as stored in the TTKV) back into
// the database — the rollback primitive.
func (c *Client) ApplyEncoded(key, encoded string, t time.Time) error {
	v, err := DecodeValue(encoded)
	if err != nil {
		return err
	}
	return c.Set(key, v, t)
}
