package gconf

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2013, 6, 1, 12, 0, 0, 0, time.UTC)

const markSeen = "/apps/evolution/mail/display/mark_seen"

func TestEncodeDecodeRoundTrip(t *testing.T) {
	values := []Value{
		Bool(true), Bool(false),
		Int(0), Int(-42), Int(1500),
		Float(1.5), Float(-0.25),
		String("hello"), String(""),
		List("a", "b"), List(), List("only"),
	}
	for _, v := range values {
		got, err := DecodeValue(v.Encode())
		if err != nil {
			t.Fatalf("DecodeValue(%q): %v", v.Encode(), err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %q: got %+v, want %+v", v.Encode(), got, v)
		}
	}
}

func TestDecodeValueErrors(t *testing.T) {
	for _, in := range []string{"", "x", "b:maybe", "i:one", "f:pi", "?:x", "noprefix"} {
		if _, err := DecodeValue(in); !errors.Is(err, ErrBadEncoding) {
			t.Errorf("DecodeValue(%q) err = %v, want ErrBadEncoding", in, err)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindBool: "bool", KindInt: "int", KindFloat: "float",
		KindString: "string", KindList: "list", Kind(9): "kind(9)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValidateKey(t *testing.T) {
	good := []string{"/apps/evolution/mail", "/a", markSeen}
	for _, k := range good {
		if err := ValidateKey(k); err != nil {
			t.Errorf("ValidateKey(%q) = %v, want nil", k, err)
		}
	}
	bad := []string{"", "/", "relative/key", "/double//slash", "/trailing/"}
	for _, k := range bad {
		if err := ValidateKey(k); !errors.Is(err, ErrBadKey) {
			t.Errorf("ValidateKey(%q) = %v, want ErrBadKey", k, err)
		}
	}
}

func TestSetGetTyped(t *testing.T) {
	db := New()
	c := db.Client("evolution")
	if err := c.SetBool(markSeen, true, t0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetInt(markSeen+"_timeout", 1500, t0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetString("/apps/evolution/version", "2.30", t0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetFloat("/apps/evolution/zoom", 1.25, t0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetList("/apps/evolution/accounts", []string{"a@x", "b@y"}, t0); err != nil {
		t.Fatal(err)
	}

	if b, err := c.GetBool(markSeen, t0); err != nil || !b {
		t.Errorf("GetBool = %v,%v", b, err)
	}
	if n, err := c.GetInt(markSeen+"_timeout", t0); err != nil || n != 1500 {
		t.Errorf("GetInt = %v,%v", n, err)
	}
	if s, err := c.GetString("/apps/evolution/version", t0); err != nil || s != "2.30" {
		t.Errorf("GetString = %v,%v", s, err)
	}
	if f, err := c.GetFloat("/apps/evolution/zoom", t0); err != nil || f != 1.25 {
		t.Errorf("GetFloat = %v,%v", f, err)
	}
	if l, err := c.GetList("/apps/evolution/accounts", t0); err != nil || len(l) != 2 {
		t.Errorf("GetList = %v,%v", l, err)
	}
}

func TestTypeMismatch(t *testing.T) {
	db := New()
	c := db.Client("app")
	if err := c.SetBool("/k", true, t0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetInt("/k", t0); !errors.Is(err, ErrWrongType) {
		t.Errorf("GetInt on bool err = %v, want ErrWrongType", err)
	}
	if _, err := c.GetString("/k", t0); !errors.Is(err, ErrWrongType) {
		t.Errorf("GetString on bool err = %v, want ErrWrongType", err)
	}
}

func TestUnset(t *testing.T) {
	db := New()
	c := db.Client("app")
	if err := c.SetBool("/k", true, t0); err != nil {
		t.Fatal(err)
	}
	if err := c.Unset("/k", t0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("/k", t0); !errors.Is(err, ErrNoEntry) {
		t.Errorf("Get after Unset err = %v, want ErrNoEntry", err)
	}
	if err := c.Unset("/k", t0); !errors.Is(err, ErrNoEntry) {
		t.Errorf("double Unset err = %v, want ErrNoEntry", err)
	}
}

func TestGetListReturnsCopy(t *testing.T) {
	db := New()
	c := db.Client("app")
	if err := c.SetList("/l", []string{"a", "b"}, t0); err != nil {
		t.Fatal(err)
	}
	l, err := c.GetList("/l", t0)
	if err != nil {
		t.Fatal(err)
	}
	l[0] = "mutated"
	again, _ := c.GetList("/l", t0)
	if again[0] != "a" {
		t.Error("GetList must return a copy")
	}
}

// recordingHook captures hook invocations.
type recordingHook struct {
	mu     sync.Mutex
	sets   []string
	unsets []string
	gets   []string
}

func (h *recordingHook) Set(app, key string, v Value, t time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sets = append(h.sets, app+"|"+key+"|"+v.Encode())
}

func (h *recordingHook) Unset(app, key string, t time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.unsets = append(h.unsets, app+"|"+key)
}

func (h *recordingHook) Get(app, key string, t time.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.gets = append(h.gets, app+"|"+key)
}

func TestHooksObserveEverything(t *testing.T) {
	db := New()
	hook := &recordingHook{}
	cancel := db.Attach(hook)
	c := db.Client("evolution")

	if err := c.SetBool(markSeen, true, t0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetBool(markSeen, t0); err != nil {
		t.Fatal(err)
	}
	if err := c.Unset(markSeen, t0); err != nil {
		t.Fatal(err)
	}

	if len(hook.sets) != 1 || hook.sets[0] != "evolution|"+markSeen+"|b:true" {
		t.Errorf("sets = %v", hook.sets)
	}
	if len(hook.gets) != 1 || len(hook.unsets) != 1 {
		t.Errorf("gets/unsets = %v/%v", hook.gets, hook.unsets)
	}

	cancel()
	if err := c.SetBool(markSeen, false, t0); err != nil {
		t.Fatal(err)
	}
	if len(hook.sets) != 1 {
		t.Error("detached hook must not see events")
	}
}

func TestAddNotify(t *testing.T) {
	db := New()
	c := db.Client("evolution")
	var mu sync.Mutex
	var events []string
	cancel, err := db.AddNotify("/apps/evolution", func(key string, v *Value) {
		mu.Lock()
		defer mu.Unlock()
		if v == nil {
			events = append(events, "unset:"+key)
		} else {
			events = append(events, "set:"+key)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetBool(markSeen, true, t0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetBool("/apps/other/key", true, t0); err != nil {
		t.Fatal(err)
	}
	if err := c.Unset(markSeen, t0); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := append([]string(nil), events...)
	mu.Unlock()
	want := []string{"set:" + markSeen, "unset:" + markSeen}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("notifications = %v, want %v", got, want)
	}
	cancel()
	if err := c.SetBool(markSeen, true, t0); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Error("cancelled notifier must not fire")
	}
}

func TestAddNotifyBadDir(t *testing.T) {
	if _, err := New().AddNotify("not-absolute", func(string, *Value) {}); !errors.Is(err, ErrBadKey) {
		t.Errorf("err = %v, want ErrBadKey", err)
	}
}

func TestSnapshotAndKeys(t *testing.T) {
	db := New()
	c := db.Client("evolution")
	if err := c.SetBool(markSeen, true, t0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetInt("/apps/evolution/mail/display/mark_seen_timeout", 1500, t0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetBool("/apps/gedit/auto_save", false, t0); err != nil {
		t.Fatal(err)
	}
	snap := db.Snapshot("/apps/evolution")
	if len(snap) != 2 {
		t.Errorf("Snapshot = %v, want 2 evolution entries", snap)
	}
	if snap[markSeen] != "b:true" {
		t.Errorf("snapshot value = %q", snap[markSeen])
	}
	keys := db.Keys()
	if len(keys) != 3 || keys[0] != "/apps/evolution/mail/display/mark_seen" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestApplyEncoded(t *testing.T) {
	db := New()
	c := db.Client("evolution")
	if err := c.ApplyEncoded(markSeen, "b:true", t0); err != nil {
		t.Fatal(err)
	}
	b, err := c.GetBool(markSeen, t0)
	if err != nil || !b {
		t.Fatalf("after ApplyEncoded = %v,%v", b, err)
	}
	if err := c.ApplyEncoded(markSeen, "garbage", t0); !errors.Is(err, ErrBadEncoding) {
		t.Errorf("bad encoding err = %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := db.Client("app")
			key := "/stress/k" + string(rune('a'+g))
			for i := 0; i < 100; i++ {
				if err := c.SetInt(key, i, t0); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.GetInt(key, t0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// Property: encode/decode round-trips arbitrary typed values.
func TestEncodePropertyRoundTrip(t *testing.T) {
	prop := func(b bool, n int, f float64, s string, list []string) bool {
		clean := make([]string, len(list))
		for i, item := range list {
			out := make([]rune, 0, len(item))
			for _, r := range item {
				if r != 0x1f {
					out = append(out, r)
				}
			}
			clean[i] = string(out)
		}
		for _, v := range []Value{Bool(b), Int(n), Float(f), String(s), List(clean...)} {
			got, err := DecodeValue(v.Encode())
			if err != nil || !got.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
