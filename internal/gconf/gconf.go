// Package gconf implements a simulated GConf configuration database: the
// hierarchical, slash-pathed, typed key-value store GNOME applications used
// on the paper's Linux deployments, together with an interposition layer
// mirroring the LD_PRELOAD shim Ocasta loads into every process (every set,
// unset, and get made through a Client is observable by attached hooks,
// tagged with the application name).
package gconf

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// GConf errors.
var (
	ErrBadKey      = errors.New("gconf: malformed key path")
	ErrNoEntry     = errors.New("gconf: no such entry")
	ErrWrongType   = errors.New("gconf: value has a different type")
	ErrBadEncoding = errors.New("gconf: malformed encoded value")
)

// Kind enumerates GConf value types.
type Kind uint8

// GConf value kinds.
const (
	KindBool Kind = iota + 1
	KindInt
	KindFloat
	KindString
	KindList
)

// String returns the canonical GConf type name.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is one typed GConf value.
type Value struct {
	Kind  Kind
	Bool  bool
	Int   int
	Float float64
	Str   string
	List  []string
}

// Constructors.
func Bool(b bool) Value          { return Value{Kind: KindBool, Bool: b} }
func Int(n int) Value            { return Value{Kind: KindInt, Int: n} }
func Float(f float64) Value      { return Value{Kind: KindFloat, Float: f} }
func String(s string) Value      { return Value{Kind: KindString, Str: s} }
func List(items ...string) Value { return Value{Kind: KindList, List: items} }

// Encode renders the value as a single type-prefixed string for the TTKV;
// DecodeValue reverses it. List items are separated by the unit separator
// (0x1F), which GConf string lists cannot contain.
func (v Value) Encode() string {
	switch v.Kind {
	case KindBool:
		return "b:" + strconv.FormatBool(v.Bool)
	case KindInt:
		return "i:" + strconv.Itoa(v.Int)
	case KindFloat:
		return "f:" + strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return "s:" + v.Str
	case KindList:
		return "l:" + strings.Join(v.List, "\x1f")
	default:
		return "?:"
	}
}

// DecodeValue parses a string produced by Encode.
func DecodeValue(s string) (Value, error) {
	if len(s) < 2 || s[1] != ':' {
		return Value{}, fmt.Errorf("%w: %q", ErrBadEncoding, s)
	}
	payload := s[2:]
	switch s[0] {
	case 'b':
		b, err := strconv.ParseBool(payload)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad bool %q", ErrBadEncoding, payload)
		}
		return Bool(b), nil
	case 'i':
		n, err := strconv.Atoi(payload)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad int %q", ErrBadEncoding, payload)
		}
		return Int(n), nil
	case 'f':
		f, err := strconv.ParseFloat(payload, 64)
		if err != nil {
			return Value{}, fmt.Errorf("%w: bad float %q", ErrBadEncoding, payload)
		}
		return Float(f), nil
	case 's':
		return String(payload), nil
	case 'l':
		if payload == "" {
			return List(), nil
		}
		return List(strings.Split(payload, "\x1f")...), nil
	default:
		return Value{}, fmt.Errorf("%w: unknown kind %q", ErrBadEncoding, s[0])
	}
}

// Equal reports deep equality.
func (v Value) Equal(o Value) bool { return v.Encode() == o.Encode() }

// Hook observes GConf activity, mirroring the paper's preloaded logger
// library.
type Hook interface {
	Set(app, key string, v Value, t time.Time)
	Unset(app, key string, t time.Time)
	Get(app, key string, t time.Time)
}

// Database is the simulated GConf store. Safe for concurrent use.
type Database struct {
	mu      sync.RWMutex
	entries map[string]Value
	hooks   map[int]Hook
	nextID  int

	notify map[int]notifyEntry
	nextNf int
}

type notifyEntry struct {
	prefix string
	fn     func(key string, v *Value)
}

// New returns an empty database.
func New() *Database {
	return &Database{
		entries: make(map[string]Value),
		hooks:   make(map[int]Hook),
		notify:  make(map[int]notifyEntry),
	}
}

// ValidateKey checks GConf key syntax: absolute slash-separated path with
// non-empty components, e.g. "/apps/evolution/mail/mark_seen".
func ValidateKey(key string) error {
	if !strings.HasPrefix(key, "/") || key == "/" {
		return fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	for _, comp := range strings.Split(key[1:], "/") {
		if comp == "" {
			return fmt.Errorf("%w: empty component in %q", ErrBadKey, key)
		}
	}
	return nil
}

// Attach registers a logger hook; the returned cancel detaches it.
func (d *Database) Attach(h Hook) (cancel func()) {
	d.mu.Lock()
	id := d.nextID
	d.nextID++
	d.hooks[id] = h
	d.mu.Unlock()
	return func() {
		d.mu.Lock()
		delete(d.hooks, id)
		d.mu.Unlock()
	}
}

// AddNotify registers fn for changes under dir (a key prefix, as in
// gconf_client_add_dir). fn receives nil for unsets. The returned cancel
// unregisters.
func (d *Database) AddNotify(dir string, fn func(key string, v *Value)) (cancel func(), err error) {
	if err := ValidateKey(dir); err != nil {
		return nil, err
	}
	d.mu.Lock()
	id := d.nextNf
	d.nextNf++
	d.notify[id] = notifyEntry{prefix: dir, fn: fn}
	d.mu.Unlock()
	return func() {
		d.mu.Lock()
		delete(d.notify, id)
		d.mu.Unlock()
	}, nil
}

// Client returns a handle tagged with an application name, the analogue of
// one preloaded process.
func (d *Database) Client(app string) *Client { return &Client{db: d, app: app} }

func (d *Database) snapshotHooks() []Hook {
	ids := make([]int, 0, len(d.hooks))
	for id := range d.hooks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]Hook, 0, len(ids))
	for _, id := range ids {
		out = append(out, d.hooks[id])
	}
	return out
}

func (d *Database) matchingNotifiers(key string) []func(string, *Value) {
	ids := make([]int, 0, len(d.notify))
	for id, ne := range d.notify {
		if key == ne.prefix || strings.HasPrefix(key, ne.prefix+"/") {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	out := make([]func(string, *Value), 0, len(ids))
	for _, id := range ids {
		out = append(out, d.notify[id].fn)
	}
	return out
}

// Snapshot returns every entry under prefix (inclusive) as encoded strings.
func (d *Database) Snapshot(prefix string) map[string]string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[string]string)
	for k, v := range d.entries {
		if k == prefix || strings.HasPrefix(k, prefix+"/") {
			out[k] = v.Encode()
		}
	}
	return out
}

// Keys returns all keys, sorted.
func (d *Database) Keys() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	keys := make([]string, 0, len(d.entries))
	for k := range d.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
