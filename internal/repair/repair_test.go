package repair

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/core"
	"ocasta/internal/trace"
	"ocasta/internal/ttkv"
)

var t0 = time.Date(2013, 10, 1, 12, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

// miniModel is a small two-element application: a feature flag pair
// ("mode" + "level" are related) and an independent "color" setting.
func miniModel() *apps.Model {
	return &apps.Model{
		Name: "mini", DisplayName: "Mini App", Description: "Test App",
		Store: trace.StoreGConf, ConfigPath: "/apps/mini",
		Elements: []apps.UIElement{
			{Name: "feature", Visible: func(cfg apps.Config, _ []string) bool {
				return apps.FlagSet(cfg, "/apps/mini/mode", true)
			}},
			{Name: "palette", Detail: func(cfg apps.Config) string {
				return cfg["/apps/mini/color"]
			}},
		},
	}
}

// seedStore writes a history where mode+level are always co-modified and
// color changes independently, then breaks mode at breakSec.
func seedStore(t *testing.T, breakSec int) *ttkv.Store {
	t.Helper()
	store := ttkv.New()
	set := func(key, val string, sec int) {
		t.Helper()
		if err := store.Set(key, val, at(sec)); err != nil {
			t.Fatal(err)
		}
	}
	// Three co-modification episodes of the related pair.
	for i, sec := range []int{0, 100, 200} {
		set("/apps/mini/mode", "b:true", sec)
		set("/apps/mini/level", []string{"i:1", "i:2", "i:3"}[i], sec)
	}
	// Independent color changes.
	set("/apps/mini/color", "s:red", 50)
	set("/apps/mini/color", "s:blue", 150)
	// The error: mode flipped off (with its partner co-written, as the
	// application persists the dialog group together).
	set("/apps/mini/mode", "b:false", breakSec)
	set("/apps/mini/level", "i:3", breakSec)
	return store
}

func fixedOracle() UserOracle { return MarkerOracle("[x] feature", "[ ] feature") }

func TestSearchFindsFix(t *testing.T) {
	store := seedStore(t, 300)
	tool := NewTool(store, miniModel())
	res, err := tool.Search(Options{
		Trial:  []string{"launch"},
		Oracle: fixedOracle(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("fix not found")
	}
	if res.Offending.Size() != 2 || !res.Offending.Contains("/apps/mini/mode") {
		t.Errorf("offending cluster = %+v, want the mode+level pair", res.Offending)
	}
	if res.Trials == 0 || res.SimTime == 0 {
		t.Error("trials and simulated time must be counted")
	}
	if res.Trials > res.TotalTrials {
		t.Errorf("trials %d > total %d", res.Trials, res.TotalTrials)
	}
}

func TestSearchRollsBackWholeCluster(t *testing.T) {
	store := seedStore(t, 300)
	tool := NewTool(store, miniModel())
	res, err := tool.Search(Options{Trial: []string{"launch"}, Oracle: fixedOracle()})
	if err != nil || !res.Found {
		t.Fatal(err)
	}
	// The fix must restore a historical state strictly before the error.
	if !res.FixAt.Before(at(300)) {
		t.Errorf("FixAt = %v, want before the error at %v", res.FixAt, at(300))
	}
}

func TestApplyFix(t *testing.T) {
	store := seedStore(t, 300)
	tool := NewTool(store, miniModel())
	res, err := tool.Search(Options{Trial: []string{"launch"}, Oracle: fixedOracle()})
	if err != nil || !res.Found {
		t.Fatal(err)
	}
	if err := tool.ApplyFix(res, at(400)); err != nil {
		t.Fatal(err)
	}
	if v, _ := store.Get("/apps/mini/mode"); v != "b:true" {
		t.Errorf("after ApplyFix mode = %q, want b:true", v)
	}
	// The rollback is recorded as a new version, preserving history.
	hist, _ := store.History("/apps/mini/mode")
	if len(hist) != 5 {
		t.Errorf("history = %d versions, want 5 (4 + rollback)", len(hist))
	}
}

func TestApplyFixWithoutResult(t *testing.T) {
	tool := NewTool(ttkv.New(), miniModel())
	if err := tool.ApplyFix(&Result{}, t0); err == nil {
		t.Error("ApplyFix without a found fix must error")
	}
}

func TestApplyFixRestoresDeletion(t *testing.T) {
	store := ttkv.New()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// "mode" created only at sec 100; before that it did not exist.
	must(store.Set("/apps/mini/mode", "b:true", at(100)))
	must(store.Set("/apps/mini/mode", "b:true", at(150)))
	must(store.Set("/apps/mini/mode", "b:false", at(300)))
	tool := NewTool(store, miniModel())
	res := &Result{
		Found:     true,
		Offending: coreCluster("/apps/mini/mode"),
		FixAt:     at(50), // before the key existed
	}
	if err := tool.ApplyFix(res, at(400)); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get("/apps/mini/mode"); ok {
		t.Error("rolling back before creation must delete the key")
	}
}

func TestNoClustCannotFixPairError(t *testing.T) {
	// Break BOTH settings; the symptom needs both restored: visible iff
	// mode true; here we make the element require mode && level valid.
	model := miniModel()
	model.Elements[0].Visible = func(cfg apps.Config, _ []string) bool {
		return apps.FlagSet(cfg, "/apps/mini/mode", true) && cfg["/apps/mini/level"] != "i:-1"
	}
	store := seedStore(t, 300)
	if err := store.Set("/apps/mini/level", "i:-1", at(300)); err != nil {
		t.Fatal(err)
	}
	tool := NewTool(store, model)

	clustered, err := tool.Search(Options{Trial: []string{"launch"}, Oracle: fixedOracle()})
	if err != nil || !clustered.Found {
		t.Fatalf("clustered search should fix the pair error: %+v, %v", clustered, err)
	}
	noclust, err := tool.Search(Options{Trial: []string{"launch"}, Oracle: fixedOracle(), NoClust: true})
	if err != nil {
		t.Fatal(err)
	}
	if noclust.Found {
		t.Error("NoClust must fail when two settings must roll back together")
	}
	if noclust.Trials != noclust.TotalTrials {
		t.Errorf("failed search must exhaust the space: %d/%d", noclust.Trials, noclust.TotalTrials)
	}
}

func TestAlreadyFixedShortCircuits(t *testing.T) {
	store := ttkv.New()
	if err := store.Set("/apps/mini/mode", "b:true", at(0)); err != nil {
		t.Fatal(err)
	}
	tool := NewTool(store, miniModel())
	res, err := tool.Search(Options{Trial: []string{"launch"}, Oracle: fixedOracle()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Trials != 0 {
		t.Errorf("healthy app: found=%v trials=%d, want true/0", res.Found, res.Trials)
	}
}

func TestOptionValidation(t *testing.T) {
	tool := NewTool(ttkv.New(), miniModel())
	if _, err := tool.Search(Options{Oracle: fixedOracle()}); !errors.Is(err, ErrNoTrial) {
		t.Errorf("missing trial err = %v", err)
	}
	if _, err := tool.Search(Options{Trial: []string{"x"}}); !errors.Is(err, ErrNoOracle) {
		t.Errorf("missing oracle err = %v", err)
	}
	if _, err := tool.Search(Options{
		Trial: []string{"x"}, Oracle: fixedOracle(),
		Start: at(10), End: at(5),
	}); !errors.Is(err, ErrInvalidSpan) {
		t.Errorf("inverted span err = %v", err)
	}
}

func TestBFSAndDFSBothFind(t *testing.T) {
	for _, strat := range []Strategy{StrategyDFS, StrategyBFS} {
		store := seedStore(t, 300)
		tool := NewTool(store, miniModel())
		res, err := tool.Search(Options{
			Strategy: strat, Trial: []string{"launch"}, Oracle: fixedOracle(),
		})
		if err != nil || !res.Found {
			t.Errorf("%v: found=%v err=%v", strat, res != nil && res.Found, err)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyDFS.String() != "dfs" || StrategyBFS.String() != "bfs" {
		t.Error("strategy names wrong")
	}
}

func TestScreenshotDedup(t *testing.T) {
	store := seedStore(t, 300)
	tool := NewTool(store, miniModel())
	res, err := tool.Search(Options{Trial: []string{"launch"}, Oracle: fixedOracle()})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, s := range res.Screenshots {
		if seen[s.Hash] {
			t.Errorf("duplicate screenshot hash %s", s.Hash)
		}
		seen[s.Hash] = true
		if strings.Contains(s.Rendered, "[ ] feature") && s.Trial == res.Trials {
			t.Error("final screenshot should show the fixed app")
		}
	}
	if len(res.Screenshots) > res.Trials {
		t.Error("cannot have more screenshots than trials")
	}
}

func TestSearchBounds(t *testing.T) {
	store := seedStore(t, 300)
	tool := NewTool(store, miniModel())
	// Bound the search to a window containing only the error episode;
	// undoing that episode reaches the pre-error state.
	res, err := tool.Search(Options{
		Trial: []string{"launch"}, Oracle: fixedOracle(),
		Start: at(250), End: at(301),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("fix reachable by undoing the in-window error episode")
	}
	if !res.FixAt.Before(at(300)) || res.FixAt.Before(at(299)) {
		t.Errorf("FixAt = %v, want just before the error at %v", res.FixAt, at(300))
	}
	// A window that excludes the error episode entirely cannot fix it.
	none, err := tool.Search(Options{
		Trial: []string{"launch"}, Oracle: fixedOracle(),
		Start: at(301), End: at(400),
	})
	if err != nil {
		t.Fatal(err)
	}
	if none.Found {
		t.Error("search outside the modification window must not find a fix")
	}
}

func TestMaxTrialsCap(t *testing.T) {
	store := seedStore(t, 300)
	tool := NewTool(store, miniModel())
	res, err := tool.Search(Options{
		Trial: []string{"launch"}, Oracle: func(string) bool { return false },
		MaxTrials: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 3 || res.Found {
		t.Errorf("capped search: trials=%d found=%v", res.Trials, res.Found)
	}
}

func TestCostModel(t *testing.T) {
	c := DefaultCosts()
	cost := c.TrialCost(2)
	want := c.Launch + 2*c.PerAction + c.Screenshot
	if cost != want {
		t.Errorf("TrialCost = %v, want %v", cost, want)
	}
}

func TestMarkerOracle(t *testing.T) {
	o := MarkerOracle("[x] good", "[ ] good")
	if !o("header\n[x] good\n") {
		t.Error("fixed screen rejected")
	}
	if o("header\n[ ] good\n") {
		t.Error("broken screen accepted")
	}
	both := MarkerOracle("", "[x] dialog")
	if both("[x] dialog shown") {
		t.Error("broken-marker-only oracle accepted a broken screen")
	}
	if !both("all clear") {
		t.Error("broken-marker-only oracle rejected a clean screen")
	}
}

func TestClustersFromTTKVOnly(t *testing.T) {
	// The tool reconstructs co-modification purely from TTKV histories.
	store := seedStore(t, 300)
	tool := NewTool(store, miniModel())
	clusters := tool.Clusters(trace.DefaultWindow, 2, false)
	var pair *int
	for i := range clusters {
		if clusters[i].Size() == 2 {
			pair = &i
			break
		}
	}
	if pair == nil {
		t.Fatalf("expected the mode+level pair cluster, got %+v", clusters)
	}
	// NoClust mode: every key is a singleton.
	for _, c := range tool.Clusters(trace.DefaultWindow, 2, true) {
		if c.Size() != 1 {
			t.Errorf("NoClust cluster has size %d", c.Size())
		}
	}
}

// coreCluster builds a cluster literal for direct Result construction.
func coreCluster(keys ...string) core.Cluster {
	return core.Cluster{Keys: keys}
}
