package repair

import (
	"errors"
	"sync/atomic"
	"testing"

	"ocasta/internal/apps"
	"ocasta/internal/core"
)

func TestParallelFindsSameFixAsSequential(t *testing.T) {
	store := seedStore(t, 300)
	tool := NewTool(store, miniModel())
	for _, workers := range []int{2, 8} {
		res, err := tool.Search(Options{
			Trial: []string{"launch"}, Oracle: fixedOracle(), Workers: workers,
		})
		if err != nil || !res.Found {
			t.Fatalf("w=%d: found=%v err=%v", workers, res != nil && res.Found, err)
		}
		if res.Offending.Size() != 2 || !res.Offending.Contains("/apps/mini/mode") {
			t.Errorf("w=%d: offending = %+v, want the mode+level pair", workers, res.Offending)
		}
	}
}

func TestSearchCancel(t *testing.T) {
	store := seedStore(t, 300)
	tool := NewTool(store, miniModel())
	done := make(chan struct{})
	close(done)
	for _, workers := range []int{1, 4} {
		res, err := tool.Search(Options{
			Trial:  []string{"launch"},
			Oracle: func(string) bool { return false },
			Cancel: done, Workers: workers,
		})
		if !errors.Is(err, ErrCancelled) {
			t.Errorf("w=%d: err = %v, want ErrCancelled", workers, err)
		}
		if res == nil {
			t.Fatalf("w=%d: cancelled search must still return the partial result", workers)
		}
	}
}

func TestOnProgress(t *testing.T) {
	store := seedStore(t, 300)
	tool := NewTool(store, miniModel())
	for _, workers := range []int{1, 8} {
		var calls, last int
		res, err := tool.Search(Options{
			Trial:  []string{"launch"},
			Oracle: func(string) bool { return false }, // exhaustive
			OnProgress: func(done, _ int) {
				calls++
				if done != last+1 {
					t.Fatalf("w=%d: progress jumped %d -> %d", workers, last, done)
				}
				last = done
			},
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if calls != res.Trials {
			t.Errorf("w=%d: %d progress calls for %d trials", workers, calls, res.Trials)
		}
	}
}

func TestOnProgressTotal(t *testing.T) {
	store := seedStore(t, 300)
	tool := NewTool(store, miniModel())
	var sawTotal int
	res, err := tool.Search(Options{
		Trial:  []string{"launch"},
		Oracle: func(string) bool { return false },
		OnProgress: func(_, total int) {
			sawTotal = total
		},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawTotal != res.TotalTrials {
		t.Errorf("progress total = %d, want %d", sawTotal, res.TotalTrials)
	}
}

func TestSandboxOverride(t *testing.T) {
	store := seedStore(t, 300)
	tool := NewTool(store, miniModel())
	var trials atomic.Int64
	model := miniModel()
	res, err := tool.Search(Options{
		Trial:  []string{"launch"},
		Oracle: fixedOracle(),
		Sandbox: func(cfg apps.Config, trial []string) string {
			trials.Add(1)
			return model.Render(cfg, trial)
		},
		Workers: 4,
	})
	if err != nil || !res.Found {
		t.Fatalf("custom sandbox search: %+v, %v", res, err)
	}
	// The sandbox ran the error screen plus at least the committed trials
	// (workers may overshoot past the fix by design).
	if got := trials.Load(); got < int64(res.Trials)+1 {
		t.Errorf("sandbox ran %d times, want >= %d", got, res.Trials+1)
	}
}

func TestClustersForApp(t *testing.T) {
	model := miniModel()
	in := []core.Cluster{
		{Keys: []string{"/apps/mini/mode", "/apps/other/x"}, ModCount: 4},
		{Keys: []string{"/apps/other/y"}, ModCount: 1},
		{Keys: []string{"/apps/mini/color"}, ModCount: 2},
	}
	out := ClustersForApp(in, model)
	if len(out) != 2 {
		t.Fatalf("ClustersForApp kept %d clusters, want 2: %+v", len(out), out)
	}
	if len(out[0].Keys) != 1 || out[0].Keys[0] != "/apps/mini/mode" || out[0].ModCount != 4 {
		t.Errorf("trimmed cluster = %+v", out[0])
	}
	// The input must not be mutated (engine snapshots are shared).
	if len(in[0].Keys) != 2 {
		t.Error("ClustersForApp mutated its input")
	}
}

func TestProvidedClustersDriveTheSearch(t *testing.T) {
	store := seedStore(t, 300)
	tool := NewTool(store, miniModel())
	// Supply only the offending pair: the search space shrinks to that
	// cluster's history, and the fix is still found.
	provided := []core.Cluster{
		{Keys: []string{"/apps/mini/level", "/apps/mini/mode"}, ModCount: 4},
	}
	res, err := tool.Search(Options{
		Trial: []string{"launch"}, Oracle: fixedOracle(), Clusters: provided,
	})
	if err != nil || !res.Found {
		t.Fatalf("provided-cluster search: %+v, %v", res, err)
	}
	if res.Clusters != 1 {
		t.Errorf("candidate clusters = %d, want 1", res.Clusters)
	}
	if !res.Offending.Contains("/apps/mini/mode") {
		t.Errorf("offending = %+v", res.Offending)
	}
}

func TestParseStrategy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Strategy
		ok   bool
	}{
		{"", StrategyDFS, true},
		{"dfs", StrategyDFS, true},
		{"bfs", StrategyBFS, true},
		{"greedy", 0, false},
	} {
		got, err := ParseStrategy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseStrategy(%q) = %v, %v", tc.in, got, err)
		}
	}
}

// TestSearchStableUnderLiveWrites pins the view guarantee: every read of
// a search goes through a view pinned at call time, so a search that
// raced live writers still returns a self-consistent result (the fix for
// the history as of its pin), run under -race in CI.
func TestSearchStableUnderLiveWrites(t *testing.T) {
	store := seedStore(t, 300)
	tool := NewTool(store, miniModel())
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		// A bounded burst: enough writes to overlap several searches, few
		// enough that the growing history keeps trial counts small.
		for i := 0; i < 300; i++ {
			// Keep re-breaking mode and churning the independent color key
			// while searches run.
			_ = store.Set("/apps/mini/mode", "b:false", at(500+2*i))
			_ = store.Set("/apps/mini/color", "s:chaos", at(600+2*i))
		}
	}()
	check := func(i int) {
		t.Helper()
		got, err := tool.Search(Options{Trial: []string{"launch"}, Oracle: fixedOracle(), Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		// The writers only ever extend the broken tail of history, so the
		// semantic outcome — the mode cluster, rolled back to a working
		// state — must hold for every pin.
		if !got.Found || !got.Offending.Contains("/apps/mini/mode") {
			t.Fatalf("iteration %d: live-write search diverged: %+v", i, got)
		}
	}
	for i := 0; i < 10; i++ {
		check(i)
	}
	<-writerDone
	check(-1) // once more over the quiescent final history
}
