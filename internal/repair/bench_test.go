package repair

import (
	"fmt"
	"testing"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/trace"
	"ocasta/internal/ttkv"
)

// benchTrialLatency models the sandboxed trial's wall-clock cost —
// launching the application, replaying the UI actions, screenshotting.
// The paper measures ~11 s per trial; the benchmark scales that down by
// ~20000x so a full exhaustive search stays in the hundreds of
// milliseconds. The ratio between sequential and parallel search is what
// the benchmark reports: trials are latency-bound, so workers overlap
// them near-linearly even on one core.
const benchTrialLatency = 500 * time.Microsecond

// benchDeployment builds a 12-cluster, 36-key application with ~25
// episodes per cluster: an exhaustive search of ~300 trials.
func benchDeployment(b *testing.B) (*ttkv.Store, *apps.Model) {
	b.Helper()
	const groups = 12
	const keysPer = 3
	const episodes = 24
	model := &apps.Model{
		Name: "benchapp", DisplayName: "Bench App", Description: "Benchmark",
		Store: trace.StoreGConf, ConfigPath: "/apps/bench",
	}
	store := ttkv.New()
	t0 := time.Date(2013, 9, 1, 8, 0, 0, 0, time.UTC)
	sec := 0
	for g := 0; g < groups; g++ {
		keys := make([]string, keysPer)
		for k := range keys {
			keys[k] = fmt.Sprintf("/apps/bench/g%02d/k%d", g, k)
		}
		ks := keys
		gi := g
		model.Elements = append(model.Elements, apps.UIElement{
			Name: fmt.Sprintf("panel%02d", gi),
			Detail: func(cfg apps.Config) string {
				out := ""
				for _, k := range ks {
					out += cfg[k] + "|"
				}
				return out
			},
		})
		for e := 0; e < episodes; e++ {
			sec += 3
			at := t0.Add(time.Duration(sec) * time.Second)
			for _, k := range keys {
				if err := store.Set(k, fmt.Sprintf("g%d-e%d", g, e), at); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	return store, model
}

// BenchmarkRepairSearch measures the exhaustive repair search (the
// worst case: the oracle never matches, every candidate is tried) with
// the trial executor at 1, 4, and 16 workers, plus the cost of
// re-clustering per call versus accepting a pre-computed clustering (the
// serving daemon's live path). BENCH_repair.json records the results.
func BenchmarkRepairSearch(b *testing.B) {
	store, model := benchDeployment(b)
	tool := NewTool(store, model)
	never := func(string) bool { return false }
	sandbox := func(cfg apps.Config, trial []string) string {
		time.Sleep(benchTrialLatency)
		return model.Render(cfg, trial)
	}
	clusters := tool.Clusters(trace.DefaultWindow, 2, false)

	b.Run("recluster-per-call", func(b *testing.B) {
		// Sequential search that also re-clusters the history per call —
		// the pre-PR baseline behaviour.
		for i := 0; i < b.N; i++ {
			res, err := tool.Search(Options{
				Trial: []string{"launch"}, Oracle: never,
				Sandbox: sandbox, Workers: 1,
			})
			if err != nil || res.Found {
				b.Fatalf("res=%+v err=%v", res, err)
			}
		}
	})
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var trials int
			for i := 0; i < b.N; i++ {
				res, err := tool.Search(Options{
					Trial: []string{"launch"}, Oracle: never,
					Sandbox: sandbox, Workers: workers,
					Clusters: clusters,
				})
				if err != nil || res.Found {
					b.Fatalf("res=%+v err=%v", res, err)
				}
				trials = res.Trials
			}
			b.ReportMetric(float64(trials), "trials/op")
		})
	}
}
