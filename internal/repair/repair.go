// Package repair implements Ocasta's configuration error repair tool
// (paper §III-B): given a user-provided trial that makes the error's
// symptoms visible on screen, it searches historical values of the
// clusters of configuration settings, rolling back one whole cluster at a
// time inside a sandbox, screenshotting the result, and letting the user
// confirm a screenshot that shows the fixed application.
package repair

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/core"
	"ocasta/internal/trace"
	"ocasta/internal/ttkv"
)

// Repair errors.
var (
	ErrNoTrial     = errors.New("repair: a trial (UI action script) is required")
	ErrNoOracle    = errors.New("repair: a screenshot oracle is required")
	ErrInvalidSpan = errors.New("repair: start time is after end time")
)

// Strategy selects the search order over cluster version histories.
type Strategy uint8

const (
	// StrategyDFS exhausts one cluster's historical values before moving
	// to the next cluster. Works best when the cluster sort ranks the
	// offending cluster early.
	StrategyDFS Strategy = iota + 1
	// StrategyBFS tries the most recent historical value of every cluster
	// before moving to the next-most-recent values.
	StrategyBFS
)

// String returns the canonical strategy name.
func (s Strategy) String() string {
	if s == StrategyBFS {
		return "bfs"
	}
	return "dfs"
}

// UserOracle inspects a screenshot and reports whether it shows the fixed
// application — the human step of the paper's loop, where the user picks
// the screenshot in which the symptom is gone.
type UserOracle func(screenshot string) bool

// MarkerOracle builds an oracle that accepts screenshots containing fixed
// and not containing broken (either may be empty).
func MarkerOracle(fixed, broken string) UserOracle {
	return func(s string) bool {
		if fixed != "" && !containsLine(s, fixed) {
			return false
		}
		if broken != "" && containsLine(s, broken) {
			return false
		}
		return true
	}
}

func containsLine(s, marker string) bool {
	for start := 0; start+len(marker) <= len(s); start++ {
		if s[start:start+len(marker)] == marker {
			return true
		}
	}
	return false
}

// Screenshot is one recorded, deduplicated trial screen.
type Screenshot struct {
	Rendered string
	Hash     string
	Trial    int       // 1-based trial number that produced it
	Cluster  int       // index into the sorted cluster list
	At       time.Time // historical version the cluster was rolled to
}

// CostModel converts trial executions into simulated wall-clock time,
// standing in for the paper's measured recovery minutes: launching the
// application, replaying the recorded UI actions, and taking the
// screenshot.
type CostModel struct {
	Launch     time.Duration // per trial application start
	PerAction  time.Duration
	Screenshot time.Duration
}

// DefaultCosts approximates the paper's observed per-trial latencies.
func DefaultCosts() CostModel {
	return CostModel{Launch: 8 * time.Second, PerAction: 2 * time.Second, Screenshot: time.Second}
}

// TrialCost is the simulated duration of one trial with n UI actions.
func (c CostModel) TrialCost(actions int) time.Duration {
	return c.Launch + time.Duration(actions)*c.PerAction + c.Screenshot
}

// Options configures one repair search.
type Options struct {
	Strategy Strategy
	// Window and Threshold are Ocasta's tunables: the co-modification
	// window and the user-facing correlation threshold in (0, 2]. Zero
	// values select the defaults (1 s, 2.0).
	Window    time.Duration
	Threshold float64
	// Start and End bound the history searched, as the user supplies them
	// to the tool. Zero Start searches the whole recorded history; zero
	// End searches up to the newest record.
	Start, End time.Time
	// NoClust makes the tool roll back one setting at a time — the
	// Ocasta-NoClust baseline of Table IV.
	NoClust bool
	// Trial is the recorded UI action script that makes the symptom
	// visible.
	Trial []string
	// Oracle is the user's screenshot check.
	Oracle UserOracle
	// Costs is the simulated time model; zero value selects DefaultCosts.
	Costs CostModel
	// MaxTrials caps the search (0 = unlimited).
	MaxTrials int
}

func (o *Options) normalize() {
	if o.Strategy != StrategyBFS {
		o.Strategy = StrategyDFS
	}
	if o.Window <= 0 {
		o.Window = trace.DefaultWindow
	}
	if o.Threshold <= 0 || o.Threshold > 2 {
		o.Threshold = 2
	}
	if o.Costs == (CostModel{}) {
		o.Costs = DefaultCosts()
	}
}

// Result reports a repair search.
type Result struct {
	Found bool
	// Offending is the cluster whose rollback fixed the error.
	Offending core.Cluster
	// FixAt is the historical time whose values fixed the error.
	FixAt time.Time
	// Trials executed until the fix was found (or the search space was
	// exhausted).
	Trials int
	// TotalTrials is the size of the full search space (every historical
	// value of every cluster within bounds).
	TotalTrials int
	// Screenshots are the deduplicated screens recorded until the fix.
	Screenshots []Screenshot
	// SimTime and SimTotalTime are the simulated durations to find the
	// fix and to search everything (the two halves of Table IV's Time
	// column).
	SimTime      time.Duration
	SimTotalTime time.Duration
	// Clusters is the number of candidate clusters considered.
	Clusters int
	// AvgClusterSize is the mean size of candidate clusters (Table IV's
	// Cl.Size).
	AvgClusterSize float64
}

// Tool searches a TTKV's history for configuration fixes for one
// application.
type Tool struct {
	store *ttkv.Store
	model *apps.Model
	// Parallelism bounds how many co-modification-graph components the
	// tool's clustering runs concurrently; <= 0 (the default) uses all
	// CPUs. Results are identical at every setting.
	Parallelism int
}

// NewTool builds a repair tool over a recorded store for one application.
func NewTool(store *ttkv.Store, model *apps.Model) *Tool {
	return &Tool{store: store, model: model}
}

// appKeys returns every store key owned by the application.
func (t *Tool) appKeys() []string {
	var keys []string
	for _, k := range t.store.Keys() {
		if t.model.OwnsKey(k) {
			keys = append(keys, k)
		}
	}
	return keys
}

// events reconstructs the application's write stream from the TTKV
// histories (the repair tool needs only the TTKV, exactly as in the
// paper).
func (t *Tool) events() []trace.Event {
	var evs []trace.Event
	for _, key := range t.appKeys() {
		hist, err := t.store.History(key)
		if err != nil {
			continue
		}
		for _, v := range hist {
			op := trace.OpWrite
			if v.Deleted {
				op = trace.OpDelete
			}
			evs = append(evs, trace.Event{
				Time: v.Time, Op: op, Store: t.model.Store, App: t.model.Name, Key: key, Value: v.Value,
			})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
	return evs
}

// Clusters extracts and recovery-sorts the application's configuration
// clusters from the TTKV history. With noClust each modified key becomes
// its own cluster (the Table IV baseline).
func (t *Tool) Clusters(window time.Duration, corrThreshold float64, noClust bool) []core.Cluster {
	evs := t.events()
	w := trace.NewWindower(window, trace.GroupAnchored)
	groups := w.Groups(evs)
	ps := core.NewPairStats(groups)
	var clusters []core.Cluster
	if noClust {
		clusters = singletonClusters(ps)
	} else {
		threshold := core.ThresholdFromCorrelation(corrThreshold)
		clusters = core.NewClusterer(core.LinkageComplete).
			WithParallelism(t.Parallelism).
			Cluster(ps, threshold)
	}
	core.SortForRecovery(clusters)
	return clusters
}

func singletonClusters(ps *core.PairStats) []core.Cluster {
	keys := ps.Keys()
	out := make([]core.Cluster, 0, len(keys))
	for _, k := range keys {
		out = append(out, core.Cluster{Keys: []string{k}, ModCount: ps.Episodes(k)})
	}
	return out
}

// Snapshot returns the application's current configuration: the newest
// non-deleted value of every key.
func (t *Tool) Snapshot() apps.Config {
	cfg := make(apps.Config)
	for _, key := range t.appKeys() {
		if v, ok := t.store.Get(key); ok {
			cfg[key] = v
		}
	}
	return cfg
}

// rollback returns a sandboxed configuration with the cluster's keys reset
// to their state at time at. Keys with no version at or before at did not
// exist then and are removed.
func (t *Tool) rollback(base apps.Config, cluster *core.Cluster, at time.Time) apps.Config {
	cfg := base.Clone()
	for _, key := range cluster.Keys {
		v, err := t.store.GetAt(key, at)
		if err != nil || v.Deleted {
			delete(cfg, key)
			continue
		}
		cfg[key] = v.Value
	}
	return cfg
}

// rollbackPoint is one historical candidate of a cluster: the cluster's
// state at an episode time, or — for the final candidate — the state just
// before the oldest in-bounds episode (undoing it), which is how the
// search reaches the pre-error state even when the error was the cluster's
// only in-bounds modification.
type rollbackPoint struct {
	at   time.Time
	undo bool
}

// state returns the instant whose stored values the trial restores.
func (rp rollbackPoint) state() time.Time {
	if rp.undo {
		return rp.at.Add(-time.Nanosecond)
	}
	return rp.at
}

// candidates lists a cluster's historical rollback points within bounds,
// newest first, ending with the undo-oldest sentinel. The start bound
// limits how far back the search goes, as the user supplies it to the
// tool; clusters not modified within bounds have nothing to roll back.
func (t *Tool) candidates(cluster *core.Cluster, start, end time.Time) []rollbackPoint {
	all := t.store.ModTimes(cluster.Keys)
	out := make([]rollbackPoint, 0, len(all)+1)
	for _, mt := range all {
		if !end.IsZero() && mt.After(end) {
			continue
		}
		if !start.IsZero() && mt.Before(start) {
			continue
		}
		out = append(out, rollbackPoint{at: mt})
	}
	if len(out) > 0 {
		out = append(out, rollbackPoint{at: out[len(out)-1].at, undo: true})
	}
	return out
}

// Search runs the repair search.
func (t *Tool) Search(opts Options) (*Result, error) {
	opts.normalize()
	if len(opts.Trial) == 0 {
		return nil, ErrNoTrial
	}
	if opts.Oracle == nil {
		return nil, ErrNoOracle
	}
	if !opts.Start.IsZero() && !opts.End.IsZero() && opts.Start.After(opts.End) {
		return nil, ErrInvalidSpan
	}

	clusters := t.Clusters(opts.Window, opts.Threshold, opts.NoClust)
	res := &Result{Clusters: len(clusters)}
	sizeSum := 0
	for i := range clusters {
		sizeSum += clusters[i].Size()
	}
	if len(clusters) > 0 {
		res.AvgClusterSize = float64(sizeSum) / float64(len(clusters))
	}

	base := t.Snapshot()
	trialCost := opts.Costs.TrialCost(len(opts.Trial))
	errorScreen := t.model.Render(base, opts.Trial)
	if opts.Oracle(errorScreen) {
		// Nothing to repair: the symptom is not visible.
		res.Found = true
		return res, nil
	}
	seen := map[string]struct{}{hashScreen(errorScreen): {}}

	versions := make([][]rollbackPoint, len(clusters))
	for i := range clusters {
		versions[i] = t.candidates(&clusters[i], opts.Start, opts.End)
		res.TotalTrials += len(versions[i])
	}
	res.SimTotalTime = time.Duration(res.TotalTrials) * trialCost

	tryOne := func(ci, vi int) bool {
		at := versions[ci][vi].state()
		cfg := t.rollback(base, &clusters[ci], at)
		res.Trials++
		res.SimTime += trialCost
		screen := t.model.Render(cfg, opts.Trial)
		h := hashScreen(screen)
		if _, dup := seen[h]; !dup {
			seen[h] = struct{}{}
			res.Screenshots = append(res.Screenshots, Screenshot{
				Rendered: screen, Hash: h, Trial: res.Trials, Cluster: ci, At: at,
			})
			if opts.Oracle(screen) {
				res.Found = true
				res.Offending = clusters[ci]
				res.FixAt = at
				return true
			}
		}
		return false
	}

	capped := func() bool { return opts.MaxTrials > 0 && res.Trials >= opts.MaxTrials }

	switch opts.Strategy {
	case StrategyBFS:
		for depth := 0; ; depth++ {
			progressed := false
			for ci := range clusters {
				if depth >= len(versions[ci]) {
					continue
				}
				progressed = true
				if tryOne(ci, depth) {
					return res, nil
				}
				if capped() {
					return res, nil
				}
			}
			if !progressed {
				return res, nil
			}
		}
	default: // DFS
		for ci := range clusters {
			for vi := range versions[ci] {
				if tryOne(ci, vi) {
					return res, nil
				}
				if capped() {
					return res, nil
				}
			}
		}
		return res, nil
	}
}

// ApplyFix permanently rolls the offending cluster back to the fixed
// historical values, recording the rollback as new writes at time at —
// the paper's final step before Ocasta returns to recording mode.
func (t *Tool) ApplyFix(res *Result, at time.Time) error {
	if !res.Found || len(res.Offending.Keys) == 0 {
		return errors.New("repair: no fix to apply")
	}
	for _, key := range res.Offending.Keys {
		v, err := t.store.GetAt(key, res.FixAt)
		switch {
		case err != nil || v.Deleted:
			// The key did not exist at the fix point; record a deletion if
			// it currently exists.
			if _, ok := t.store.Get(key); ok {
				if err := t.store.Delete(key, at); err != nil {
					return fmt.Errorf("repair: applying fix delete of %s: %w", key, err)
				}
			}
		default:
			if err := t.store.Set(key, v.Value, at); err != nil {
				return fmt.Errorf("repair: applying fix write of %s: %w", key, err)
			}
		}
	}
	return nil
}

func hashScreen(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:8])
}
