// Package repair implements Ocasta's configuration error repair tool
// (paper §III-B): given a user-provided trial that makes the error's
// symptoms visible on screen, it searches historical values of the
// clusters of configuration settings, rolling back one whole cluster at a
// time inside a sandbox, screenshotting the result, and letting the user
// confirm a screenshot that shows the fixed application.
//
// The search is split into candidate generation — every (cluster,
// historical version) pair, flattened into the strategy's trial order —
// and trial execution. With Options.Workers > 1 trials execute on a
// worker pool (parallel.go), each against a point-in-time ttkv.View
// pinned at search start, with deterministic arbitration that makes the
// parallel result byte-identical to the sequential search.
package repair

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/core"
	"ocasta/internal/trace"
	"ocasta/internal/ttkv"
)

// Repair errors.
var (
	ErrNoTrial     = errors.New("repair: a trial (UI action script) is required")
	ErrNoOracle    = errors.New("repair: a screenshot oracle is required")
	ErrInvalidSpan = errors.New("repair: start time is after end time")
	ErrCancelled   = errors.New("repair: search cancelled")
)

// Reader is the read-only store surface the repair search runs against.
// Both a live *ttkv.Store and a pinned *ttkv.View satisfy it; Search
// always pins a view so concurrent trial workers never race live writers.
type Reader interface {
	Keys() []string
	Get(key string) (string, bool)
	GetAt(key string, t time.Time) (ttkv.Version, error)
	History(key string) ([]ttkv.Version, error)
	ModTimes(keys []string) []time.Time
}

// Strategy selects the search order over cluster version histories.
type Strategy uint8

const (
	// StrategyDFS exhausts one cluster's historical values before moving
	// to the next cluster. Works best when the cluster sort ranks the
	// offending cluster early.
	StrategyDFS Strategy = iota + 1
	// StrategyBFS tries the most recent historical value of every cluster
	// before moving to the next-most-recent values.
	StrategyBFS
)

// String returns the canonical strategy name.
func (s Strategy) String() string {
	if s == StrategyBFS {
		return "bfs"
	}
	return "dfs"
}

// ParseStrategy parses "dfs" or "bfs".
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "", "dfs":
		return StrategyDFS, nil
	case "bfs":
		return StrategyBFS, nil
	}
	return 0, fmt.Errorf("repair: unknown strategy %q", s)
}

// UserOracle inspects a screenshot and reports whether it shows the fixed
// application — the human step of the paper's loop, where the user picks
// the screenshot in which the symptom is gone. Oracles must be pure
// functions of the screenshot: the parallel executor memoizes verdicts by
// screenshot hash and may consult them from several workers.
type UserOracle func(screenshot string) bool

// MarkerOracle builds an oracle that accepts screenshots containing fixed
// and not containing broken (either may be empty).
func MarkerOracle(fixed, broken string) UserOracle {
	return func(s string) bool {
		if fixed != "" && !containsLine(s, fixed) {
			return false
		}
		if broken != "" && containsLine(s, broken) {
			return false
		}
		return true
	}
}

func containsLine(s, marker string) bool {
	for start := 0; start+len(marker) <= len(s); start++ {
		if s[start:start+len(marker)] == marker {
			return true
		}
	}
	return false
}

// SandboxFunc executes one sandboxed trial: start the application with
// the rolled-back configuration, replay the recorded UI actions, and
// return the resulting screenshot. The default sandbox renders the
// tool's simulated application model; a real deployment would launch the
// application in a container here. Sandboxes must be deterministic in
// (cfg, trial) and, when Options.Workers > 1, safe for concurrent use.
type SandboxFunc func(cfg apps.Config, trial []string) string

// Screenshot is one recorded, deduplicated trial screen.
type Screenshot struct {
	Rendered string
	Hash     string
	Trial    int       // 1-based trial number that produced it
	Cluster  int       // index into the sorted cluster list
	At       time.Time // historical version the cluster was rolled to
}

// CostModel converts trial executions into simulated wall-clock time,
// standing in for the paper's measured recovery minutes: launching the
// application, replaying the recorded UI actions, and taking the
// screenshot.
type CostModel struct {
	Launch     time.Duration // per trial application start
	PerAction  time.Duration
	Screenshot time.Duration
}

// DefaultCosts approximates the paper's observed per-trial latencies.
func DefaultCosts() CostModel {
	return CostModel{Launch: 8 * time.Second, PerAction: 2 * time.Second, Screenshot: time.Second}
}

// TrialCost is the simulated duration of one trial with n UI actions.
func (c CostModel) TrialCost(actions int) time.Duration {
	return c.Launch + time.Duration(actions)*c.PerAction + c.Screenshot
}

// Options configures one repair search.
type Options struct {
	Strategy Strategy
	// Window and Threshold are Ocasta's tunables: the co-modification
	// window and the user-facing correlation threshold in (0, 2]. Zero
	// values select the defaults (1 s, 2.0).
	Window    time.Duration
	Threshold float64
	// Start and End bound the history searched, as the user supplies them
	// to the tool. Zero Start searches the whole recorded history; zero
	// End searches up to the newest record.
	Start, End time.Time
	// NoClust makes the tool roll back one setting at a time — the
	// Ocasta-NoClust baseline of Table IV.
	NoClust bool
	// Clusters, when non-nil, supplies a pre-computed clustering — e.g. a
	// live core.Engine snapshot from a serving daemon — instead of
	// re-clustering the TTKV history on every search. The clusters are
	// trimmed to the tool's application (keys the model does not own are
	// dropped; see ClustersForApp) and recovery-sorted. Ignored with
	// NoClust.
	Clusters []core.Cluster
	// Trial is the recorded UI action script that makes the symptom
	// visible.
	Trial []string
	// Oracle is the user's screenshot check.
	Oracle UserOracle
	// Sandbox executes one trial; nil renders the tool's app model.
	Sandbox SandboxFunc
	// Costs is the simulated time model; zero value selects DefaultCosts.
	Costs CostModel
	// MaxTrials caps the search (0 = unlimited).
	MaxTrials int
	// Workers sets how many trials execute concurrently; <= 1 runs the
	// sequential reference search. Results are byte-identical at every
	// setting (trials are arbitrated in sequential order), only wall-clock
	// time changes: trials are dominated by sandbox latency, which
	// workers overlap.
	Workers int
	// Cancel, when non-nil, aborts the search once closed; Search then
	// returns the partial result with ErrCancelled.
	Cancel <-chan struct{}
	// OnProgress, when non-nil, is called after every committed trial
	// with the running trial count and the total search-space size. It is
	// called from the search goroutine, never concurrently.
	OnProgress func(done, total int)
}

func (o *Options) normalize() {
	if o.Strategy != StrategyBFS {
		o.Strategy = StrategyDFS
	}
	if o.Window <= 0 {
		o.Window = trace.DefaultWindow
	}
	if o.Threshold <= 0 || o.Threshold > 2 {
		o.Threshold = 2
	}
	if o.Costs == (CostModel{}) {
		o.Costs = DefaultCosts()
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
}

// Result reports a repair search.
type Result struct {
	Found bool
	// Offending is the cluster whose rollback fixed the error.
	Offending core.Cluster
	// FixAt is the historical time whose values fixed the error.
	FixAt time.Time
	// Trials executed until the fix was found (or the search space was
	// exhausted).
	Trials int
	// TotalTrials is the size of the full search space (every historical
	// value of every cluster within bounds).
	TotalTrials int
	// Screenshots are the deduplicated screens recorded until the fix.
	Screenshots []Screenshot
	// SimTime and SimTotalTime are the simulated durations to find the
	// fix and to search everything (the two halves of Table IV's Time
	// column).
	SimTime      time.Duration
	SimTotalTime time.Duration
	// Clusters is the number of candidate clusters considered.
	Clusters int
	// AvgClusterSize is the mean size of candidate clusters (Table IV's
	// Cl.Size).
	AvgClusterSize float64
}

// Tool searches a TTKV's history for configuration fixes for one
// application.
type Tool struct {
	store *ttkv.Store
	model *apps.Model
	// Parallelism bounds how many co-modification-graph components the
	// tool's clustering runs concurrently; <= 0 (the default) uses all
	// CPUs. Results are identical at every setting.
	Parallelism int
}

// NewTool builds a repair tool over a recorded store for one application.
func NewTool(store *ttkv.Store, model *apps.Model) *Tool {
	return &Tool{store: store, model: model}
}

// appKeysIn returns every key of r owned by the application.
func (t *Tool) appKeysIn(r Reader) []string {
	var keys []string
	for _, k := range r.Keys() {
		if t.model.OwnsKey(k) {
			keys = append(keys, k)
		}
	}
	return keys
}

// eventsIn reconstructs the application's write stream from the TTKV
// histories (the repair tool needs only the TTKV, exactly as in the
// paper).
func (t *Tool) eventsIn(r Reader) []trace.Event {
	var evs []trace.Event
	for _, key := range t.appKeysIn(r) {
		hist, err := r.History(key)
		if err != nil {
			continue
		}
		for _, v := range hist {
			op := trace.OpWrite
			if v.Deleted {
				op = trace.OpDelete
			}
			evs = append(evs, trace.Event{
				Time: v.Time, Op: op, Store: t.model.Store, App: t.model.Name, Key: key, Value: v.Value,
			})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
	return evs
}

// Clusters extracts and recovery-sorts the application's configuration
// clusters from the TTKV history. With noClust each modified key becomes
// its own cluster (the Table IV baseline).
func (t *Tool) Clusters(window time.Duration, corrThreshold float64, noClust bool) []core.Cluster {
	return t.clustersIn(t.store, window, corrThreshold, noClust)
}

func (t *Tool) clustersIn(r Reader, window time.Duration, corrThreshold float64, noClust bool) []core.Cluster {
	evs := t.eventsIn(r)
	w := trace.NewWindower(window, trace.GroupAnchored)
	groups := w.Groups(evs)
	ps := core.NewPairStats(groups)
	var clusters []core.Cluster
	if noClust {
		clusters = singletonClusters(ps)
	} else {
		threshold := core.ThresholdFromCorrelation(corrThreshold)
		clusters = core.NewClusterer(core.LinkageComplete).
			WithParallelism(t.Parallelism).
			Cluster(ps, threshold)
	}
	core.SortForRecovery(clusters)
	return clusters
}

func singletonClusters(ps *core.PairStats) []core.Cluster {
	keys := ps.Keys()
	out := make([]core.Cluster, 0, len(keys))
	for _, k := range keys {
		out = append(out, core.Cluster{Keys: []string{k}, ModCount: ps.Episodes(k)})
	}
	return out
}

// ClustersForApp restricts a store-wide clustering (such as a live
// core.Engine snapshot, which windows every application's writes as one
// stream) to one application: each cluster is trimmed to the keys the
// model owns and clusters left empty are dropped. The input is never
// mutated — engine snapshots are shared — and episode counts carry over
// unchanged, so recovery sorting still ranks by modification rarity.
func ClustersForApp(clusters []core.Cluster, model *apps.Model) []core.Cluster {
	out := make([]core.Cluster, 0, len(clusters))
	for i := range clusters {
		cl := &clusters[i]
		var keys []string
		for _, k := range cl.Keys {
			if model.OwnsKey(k) {
				keys = append(keys, k)
			}
		}
		if len(keys) == 0 {
			continue
		}
		out = append(out, core.Cluster{
			Keys: keys, ModCount: cl.ModCount, LastModified: cl.LastModified,
		})
	}
	return out
}

// Snapshot returns the application's current configuration: the newest
// non-deleted value of every key.
func (t *Tool) Snapshot() apps.Config { return t.snapshotIn(t.store) }

func (t *Tool) snapshotIn(r Reader) apps.Config {
	cfg := make(apps.Config)
	for _, key := range t.appKeysIn(r) {
		if v, ok := r.Get(key); ok {
			cfg[key] = v
		}
	}
	return cfg
}

// rollbackIn returns a sandboxed configuration with the cluster's keys
// reset to their state at time at. Keys with no version at or before at
// did not exist then and are removed.
func (t *Tool) rollbackIn(r Reader, base apps.Config, cluster *core.Cluster, at time.Time) apps.Config {
	cfg := base.Clone()
	for _, key := range cluster.Keys {
		v, err := r.GetAt(key, at)
		if err != nil || v.Deleted {
			delete(cfg, key)
			continue
		}
		cfg[key] = v.Value
	}
	return cfg
}

// rollbackPoint is one historical candidate of a cluster: the cluster's
// state at an episode time, or — for the final candidate — the state just
// before the oldest in-bounds episode (undoing it), which is how the
// search reaches the pre-error state even when the error was the cluster's
// only in-bounds modification.
type rollbackPoint struct {
	at   time.Time
	undo bool
}

// state returns the instant whose stored values the trial restores.
func (rp rollbackPoint) state() time.Time {
	if rp.undo {
		return rp.at.Add(-time.Nanosecond)
	}
	return rp.at
}

// candidatesIn lists a cluster's historical rollback points within bounds,
// newest first, ending with the undo-oldest sentinel. The start bound
// limits how far back the search goes, as the user supplies it to the
// tool; clusters not modified within bounds have nothing to roll back.
func (t *Tool) candidatesIn(r Reader, cluster *core.Cluster, start, end time.Time) []rollbackPoint {
	all := r.ModTimes(cluster.Keys)
	out := make([]rollbackPoint, 0, len(all)+1)
	for _, mt := range all {
		if !end.IsZero() && mt.After(end) {
			continue
		}
		if !start.IsZero() && mt.Before(start) {
			continue
		}
		out = append(out, rollbackPoint{at: mt})
	}
	if len(out) > 0 {
		out = append(out, rollbackPoint{at: out[len(out)-1].at, undo: true})
	}
	return out
}

// cand is one trial of the flattened search space.
type cand struct{ ci, vi int }

// orderedCandidates flattens the per-cluster rollback points into the
// strategy's sequential trial order: DFS exhausts a cluster before moving
// on, BFS sweeps one depth across every cluster before descending.
func orderedCandidates(strategy Strategy, versions [][]rollbackPoint) []cand {
	var out []cand
	switch strategy {
	case StrategyBFS:
		for depth := 0; ; depth++ {
			progressed := false
			for ci := range versions {
				if depth < len(versions[ci]) {
					progressed = true
					out = append(out, cand{ci, depth})
				}
			}
			if !progressed {
				return out
			}
		}
	default: // DFS
		for ci := range versions {
			for vi := range versions[ci] {
				out = append(out, cand{ci, vi})
			}
		}
		return out
	}
}

// search carries the immutable state of one running search.
type search struct {
	view      Reader
	opts      *Options
	clusters  []core.Cluster
	versions  [][]rollbackPoint
	cands     []cand
	base      apps.Config
	sandbox   SandboxFunc
	trialCost time.Duration
	errorHash string
}

// runTrial executes candidate i's sandboxed trial and returns the screen.
func (s *search) runTrial(t *Tool, i int) (screen string, at time.Time) {
	c := s.cands[i]
	at = s.versions[c.ci][c.vi].state()
	cfg := t.rollbackIn(s.view, s.base, &s.clusters[c.ci], at)
	return s.sandbox(cfg, s.opts.Trial), at
}

func (s *search) progress(res *Result) {
	if s.opts.OnProgress != nil {
		s.opts.OnProgress(res.Trials, res.TotalTrials)
	}
}

func cancelled(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// Search runs the repair search. The entire search — clustering (unless
// pre-computed clusters are supplied), candidate enumeration, and every
// sandboxed trial — reads from a point-in-time view pinned at call time,
// so results are stable even while live writers keep recording.
func (t *Tool) Search(opts Options) (*Result, error) {
	opts.normalize()
	if len(opts.Trial) == 0 {
		return nil, ErrNoTrial
	}
	if opts.Oracle == nil {
		return nil, ErrNoOracle
	}
	if !opts.Start.IsZero() && !opts.End.IsZero() && opts.Start.After(opts.End) {
		return nil, ErrInvalidSpan
	}

	view := t.store.ViewAt(t.store.CurrentSeq())
	var clusters []core.Cluster
	if opts.Clusters != nil && !opts.NoClust {
		clusters = ClustersForApp(opts.Clusters, t.model)
		core.SortForRecovery(clusters)
	} else {
		clusters = t.clustersIn(view, opts.Window, opts.Threshold, opts.NoClust)
	}
	res := &Result{Clusters: len(clusters)}
	sizeSum := 0
	for i := range clusters {
		sizeSum += clusters[i].Size()
	}
	if len(clusters) > 0 {
		res.AvgClusterSize = float64(sizeSum) / float64(len(clusters))
	}

	sandbox := opts.Sandbox
	if sandbox == nil {
		sandbox = t.model.Render
	}
	base := t.snapshotIn(view)
	trialCost := opts.Costs.TrialCost(len(opts.Trial))
	errorScreen := sandbox(base, opts.Trial)
	if opts.Oracle(errorScreen) {
		// Nothing to repair: the symptom is not visible.
		res.Found = true
		return res, nil
	}

	versions := make([][]rollbackPoint, len(clusters))
	for i := range clusters {
		versions[i] = t.candidatesIn(view, &clusters[i], opts.Start, opts.End)
		res.TotalTrials += len(versions[i])
	}
	res.SimTotalTime = time.Duration(res.TotalTrials) * trialCost

	s := &search{
		view: view, opts: &opts, clusters: clusters, versions: versions,
		cands: orderedCandidates(opts.Strategy, versions), base: base,
		sandbox: sandbox, trialCost: trialCost, errorHash: hashScreen(errorScreen),
	}
	if opts.Workers > 1 {
		return t.searchParallel(s, res)
	}
	return t.searchSequential(s, res)
}

// searchSequential is the reference executor: one trial at a time, in
// candidate order. The parallel executor is defined (and property-tested)
// to return byte-identical results.
func (t *Tool) searchSequential(s *search, res *Result) (*Result, error) {
	seen := map[string]struct{}{s.errorHash: {}}
	for i := range s.cands {
		if cancelled(s.opts.Cancel) {
			return res, ErrCancelled
		}
		screen, at := s.runTrial(t, i)
		res.Trials++
		res.SimTime += s.trialCost
		h := hashScreen(screen)
		if _, dup := seen[h]; !dup {
			seen[h] = struct{}{}
			res.Screenshots = append(res.Screenshots, Screenshot{
				Rendered: screen, Hash: h, Trial: res.Trials, Cluster: s.cands[i].ci, At: at,
			})
			if s.opts.Oracle(screen) {
				res.Found = true
				res.Offending = s.clusters[s.cands[i].ci]
				res.FixAt = at
				s.progress(res)
				return res, nil
			}
		}
		s.progress(res)
		if s.opts.MaxTrials > 0 && res.Trials >= s.opts.MaxTrials {
			return res, nil
		}
	}
	return res, nil
}

// ApplyFix permanently rolls the offending cluster back to the fixed
// historical values, recording the rollback as new writes at time at —
// the paper's final step before Ocasta returns to recording mode. The
// rollback is applied atomically: concurrent readers see either the
// broken or the fixed cluster, never half of each.
func (t *Tool) ApplyFix(res *Result, at time.Time) error {
	if !res.Found || len(res.Offending.Keys) == 0 {
		return errors.New("repair: no fix to apply")
	}
	if _, err := t.store.RevertCluster(res.Offending.Keys, res.FixAt, at); err != nil {
		return fmt.Errorf("repair: applying fix: %w", err)
	}
	return nil
}

func hashScreen(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:8])
}
