package repair

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"ocasta/internal/apps"
	"ocasta/internal/trace"
	"ocasta/internal/ttkv"
)

// randScenario is one randomized fault/machine scenario: a synthetic
// application with grouped settings, a recorded history of co-modification
// episodes plus noise, and an injected fault corrupting part of one group.
type randScenario struct {
	model *apps.Model
	store *ttkv.Store
	opts  Options
}

// genScenario builds a deterministic random scenario from seed.
//
// The model has G related-setting groups; each group renders its values
// in a screen element, so a rollback changes the screenshot and the
// injected "BAD" values are visible symptoms. The fault corrupts a random
// non-empty subset of one group's keys at a late time, so fixing it
// requires rolling the whole group back — the paper's cluster-granularity
// argument, randomized.
func genScenario(seed int64) *randScenario {
	rng := rand.New(rand.NewSource(seed))
	groups := 2 + rng.Intn(4) // 2..5 groups
	model := &apps.Model{
		Name: "rt", DisplayName: "RandTest", Description: "Equivalence App",
		Store: trace.StoreGConf, ConfigPath: "/apps/rt",
	}
	var groupKeys [][]string
	for g := 0; g < groups; g++ {
		size := 2 + rng.Intn(3) // 2..4 keys
		keys := make([]string, size)
		for k := range keys {
			keys[k] = fmt.Sprintf("/apps/rt/g%d/k%d", g, k)
		}
		groupKeys = append(groupKeys, keys)
		keysCopy := keys
		model.Elements = append(model.Elements, apps.UIElement{
			Name: fmt.Sprintf("panel%d", g),
			Detail: func(cfg apps.Config) string {
				vals := make([]string, 0, len(keysCopy))
				for _, k := range keysCopy {
					vals = append(vals, cfg[k])
				}
				return strings.Join(vals, ",")
			},
		})
	}

	store := ttkv.New()
	t0 := time.Date(2013, 11, 1, 8, 0, 0, 0, time.UTC)
	// Episodes: each group co-modified at its own distinct seconds.
	sec := 0
	for g, keys := range groupKeys {
		episodes := 2 + rng.Intn(4) // 2..5
		for e := 0; e < episodes; e++ {
			sec += 2 + rng.Intn(5)
			at := t0.Add(time.Duration(sec) * time.Second)
			for ki, k := range keys {
				// Occasionally skip a member (dominant-key pattern).
				if ki > 0 && rng.Intn(8) == 0 {
					continue
				}
				if err := store.Set(k, fmt.Sprintf("g%d-v%d", g, e), at); err != nil {
					panic(err)
				}
			}
		}
	}
	// Independent noise keys at unique seconds.
	for n := 0; n < 3; n++ {
		sec += 2 + rng.Intn(4)
		at := t0.Add(time.Duration(sec) * time.Second)
		if err := store.Set(fmt.Sprintf("/apps/rt/noise%d", n), fmt.Sprintf("n%d", n), at); err != nil {
			panic(err)
		}
	}
	// The fault: corrupt a random non-empty subset of one group late in
	// the history (the rest of the group co-writes its current values, as
	// a dialog flush would).
	victim := rng.Intn(groups)
	faultAt := t0.Add(time.Duration(sec+1000) * time.Second)
	for ki, k := range groupKeys[victim] {
		if ki == 0 || rng.Intn(2) == 0 {
			if err := store.Set(k, "BAD", faultAt); err != nil {
				panic(err)
			}
		} else if cur, ok := store.Get(k); ok {
			if err := store.Set(k, cur, faultAt); err != nil {
				panic(err)
			}
		}
	}

	opts := Options{
		Trial:  []string{"launch"},
		Oracle: MarkerOracle("", "BAD"),
	}
	// Randomize the searchable span and trial cap sometimes, so the
	// equivalence property also covers bounded and capped searches.
	switch rng.Intn(4) {
	case 0:
		opts.Start = t0.Add(time.Duration(sec/2) * time.Second)
	case 1:
		opts.MaxTrials = 1 + rng.Intn(6)
	case 2:
		opts.End = faultAt.Add(-time.Second) // excludes the fix-reaching undo
	}
	return &randScenario{model: model, store: store, opts: opts}
}

// TestParallelSearchEquivalence is the property suite: for randomized
// fault/machine scenarios, the parallel search at 4 and 16 workers — under
// both strategies — returns a Result byte-identical to the sequential
// searcher: same offending cluster, same FixAt, same screenshot hashes and
// ordering, same trial and simulated-time accounting. CI runs it under
// -race, which also exercises the worker pool's synchronization.
func TestParallelSearchEquivalence(t *testing.T) {
	scenarios := 40
	if testing.Short() {
		scenarios = 10
	}
	foundSome := false
	for seed := int64(0); seed < int64(scenarios); seed++ {
		for _, strat := range []Strategy{StrategyDFS, StrategyBFS} {
			sc := genScenario(seed)
			tool := NewTool(sc.store, sc.model)
			opts := sc.opts
			opts.Strategy = strat

			opts.Workers = 1
			want, err := tool.Search(opts)
			if err != nil {
				t.Fatalf("seed %d %v: sequential: %v", seed, strat, err)
			}
			if want.Found {
				foundSome = true
			}
			for _, workers := range []int{4, 16} {
				opts.Workers = workers
				got, err := tool.Search(opts)
				if err != nil {
					t.Fatalf("seed %d %v w=%d: %v", seed, strat, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d %v w=%d: parallel result diverges\n got: %+v\nwant: %+v",
						seed, strat, workers, got, want)
				}
			}
		}
	}
	if !foundSome {
		t.Error("no scenario found a fix; the generator is broken")
	}
}

// TestParallelEquivalenceWithProvidedClusters re-runs the property with a
// pre-computed clustering (what a live engine snapshot supplies over the
// wire): supplying the tool's own clustering must not change any result,
// sequential or parallel.
func TestParallelEquivalenceWithProvidedClusters(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		sc := genScenario(seed)
		tool := NewTool(sc.store, sc.model)
		opts := sc.opts
		want, err := tool.Search(opts)
		if err != nil {
			t.Fatal(err)
		}
		// Same tunables Search normalizes zero options to.
		opts.Clusters = tool.Clusters(trace.DefaultWindow, 2, false)
		for _, workers := range []int{1, 16} {
			opts.Workers = workers
			got, err := tool.Search(opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d w=%d: provided-cluster result diverges\n got: %+v\nwant: %+v",
					seed, workers, got, want)
			}
		}
	}
}

// TestParallelDedupRace is the -race regression test for the screenshot
// dedup/oracle cache: most trials of this scenario render identical
// screens (the elements ignore the rolled-back keys), so many workers hit
// the shared verdict cache for the same hash concurrently. Before the
// cache was mutex-guarded this was an unsynchronized map access.
func TestParallelDedupRace(t *testing.T) {
	model := &apps.Model{
		Name: "dup", DisplayName: "Dup App", Description: "Dedup Race",
		Store: trace.StoreGConf, ConfigPath: "/apps/dup",
		Elements: []apps.UIElement{{Name: "static"}}, // ignores all config
	}
	store := ttkv.New()
	t0 := time.Date(2013, 11, 2, 8, 0, 0, 0, time.UTC)
	for k := 0; k < 8; k++ {
		key := fmt.Sprintf("/apps/dup/k%d", k)
		for e := 0; e < 12; e++ {
			at := t0.Add(time.Duration(k*1000+e*7) * time.Second)
			if err := store.Set(key, fmt.Sprintf("v%d", e), at); err != nil {
				t.Fatal(err)
			}
		}
	}
	tool := NewTool(store, model)
	res, err := tool.Search(Options{
		Trial:   []string{"launch"},
		Oracle:  func(string) bool { return false },
		Workers: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.Trials != res.TotalTrials {
		t.Errorf("exhaustive dedup search: found=%v trials=%d/%d", res.Found, res.Trials, res.TotalTrials)
	}
	// Every screen is identical, and identical to the error screen: the
	// committed walk must have deduplicated all of them.
	if len(res.Screenshots) != 0 {
		t.Errorf("expected full dedup, got %d screenshots", len(res.Screenshots))
	}
}
