// Parallel trial execution for the repair search: a worker pool runs
// sandboxed trials concurrently against the search's pinned point-in-time
// view, and an arbiter commits their outcomes in exact sequential-search
// order, so the parallel Result is byte-identical to the sequential one
// at every worker count. Trials are dominated by sandbox latency (the
// paper measures ~11 s per trial: application launch, UI replay,
// screenshot), which is what the workers overlap.
package repair

import (
	"sync"
	"sync/atomic"
	"time"
)

// oracleCache memoizes oracle verdicts by screenshot hash, shared by all
// trial workers. The screenshot-dedup map was unsynchronized while trials
// only ran sequentially; concurrent workers require the mutex. The oracle
// itself runs outside the lock — oracles can be arbitrarily slow (in the
// paper's loop, a human) — so two workers may race to evaluate the same
// fresh screen; for the required pure oracles both compute the same
// verdict and the double store is harmless.
type oracleCache struct {
	mu       sync.Mutex
	verdicts map[string]bool
}

func newOracleCache() *oracleCache {
	return &oracleCache{verdicts: make(map[string]bool)}
}

func (c *oracleCache) verdict(hash, screen string, oracle UserOracle) bool {
	c.mu.Lock()
	v, ok := c.verdicts[hash]
	c.mu.Unlock()
	if ok {
		return v
	}
	v = oracle(screen)
	c.mu.Lock()
	c.verdicts[hash] = v
	c.mu.Unlock()
	return v
}

// trialOutcome is one executed trial, produced by a worker and consumed
// by the arbiter.
type trialOutcome struct {
	screen string
	hash   string
	at     time.Time
	match  bool // the oracle's verdict on this screen's content
}

// searchParallel executes the candidate list on opts.Workers goroutines
// with deterministic arbitration.
//
// Workers claim candidate indices from an atomic counter, run the
// sandboxed trial, and publish the outcome into a per-candidate slot. The
// arbiter (the calling goroutine) consumes slots strictly in candidate
// order and applies exactly the sequential search's accounting: trial
// counting, screenshot dedup against previously *committed* screens, and
// the oracle verdict on first occurrences. Because arbitration order,
// dedup state, and verdicts (pure oracles, memoized by content hash) all
// match the sequential walk, the returned Result is byte-identical.
//
// Two bounds keep the pool from wasting work: MaxTrials caps how many
// candidates may ever commit, and when any worker's trial matches the
// oracle at index i the claim limit drops to i+1 — the committed fix is
// then guaranteed at or before i (the first occurrence of matching screen
// content cannot come later), so candidates beyond it are unreachable.
// In-flight trials past the final fix still finish (bounded overshoot of
// at most one trial per worker); their outcomes are simply never
// committed, so they cannot perturb the result.
func (t *Tool) searchParallel(s *search, res *Result) (*Result, error) {
	n := len(s.cands)
	effLimit := n
	if s.opts.MaxTrials > 0 && s.opts.MaxTrials < effLimit {
		effLimit = s.opts.MaxTrials
	}
	if effLimit == 0 {
		return res, nil
	}

	var (
		next  atomic.Int64
		limit atomic.Int64
		stop  atomic.Bool
	)
	limit.Store(int64(effLimit))
	outcomes := make([]trialOutcome, effLimit)
	ready := make([]chan struct{}, effLimit)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	cache := newOracleCache()

	workers := s.opts.Workers
	if workers > effLimit {
		workers = effLimit
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if int64(i) >= limit.Load() {
					// Every candidate the arbiter can still commit is at
					// or below the limit and was claimed before this one
					// (claims are monotone), so nothing is stranded.
					return
				}
				screen, at := s.runTrial(t, i)
				h := hashScreen(screen)
				o := trialOutcome{
					screen: screen, hash: h, at: at,
					match: cache.verdict(h, screen, s.opts.Oracle),
				}
				outcomes[i] = o
				close(ready[i])
				if o.match {
					// The committed fix is at or before i; stop claiming
					// past it.
					for {
						cur := limit.Load()
						if cur <= int64(i)+1 || limit.CompareAndSwap(cur, int64(i)+1) {
							break
						}
					}
				}
			}
		}()
	}
	defer func() {
		stop.Store(true)
		wg.Wait()
	}()

	seen := map[string]struct{}{s.errorHash: {}}
	for i := 0; i < effLimit; i++ {
		select {
		case <-ready[i]:
		case <-s.opts.Cancel:
			return res, ErrCancelled
		}
		o := &outcomes[i]
		res.Trials++
		res.SimTime += s.trialCost
		if _, dup := seen[o.hash]; !dup {
			seen[o.hash] = struct{}{}
			res.Screenshots = append(res.Screenshots, Screenshot{
				Rendered: o.screen, Hash: o.hash, Trial: res.Trials, Cluster: s.cands[i].ci, At: o.at,
			})
			if o.match {
				res.Found = true
				res.Offending = s.clusters[s.cands[i].ci]
				res.FixAt = o.at
				s.progress(res)
				return res, nil
			}
		}
		s.progress(res)
	}
	return res, nil
}
