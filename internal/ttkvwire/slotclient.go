package ttkvwire

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"ocasta/internal/ttkv"
)

// Slot-aware routing for FailoverClient. The moment any TOPO reply
// advertises a slot map (SlotCount > 0), the client switches keyed
// operations from "follow the single leader" to "route to the slot's
// owner": it keeps a per-slot owner cache and one pooled connection per
// owner, updates the cache from MOVED redirects (which name the owner),
// and falls back to a full TOPO sweep of the known peers when a slot's
// owner is unknown. Non-keyed operations (STATS, CLUSTERS, TOPO, PING)
// stay on the primary attachment; KEYS and MSET get cluster-wide forms
// (keysSlots, msetSlots).

// SlotCount reports the slot-space size the client learned from TOPO
// (0 until it talks to a slot-partitioned cluster).
func (fc *FailoverClient) SlotCount() int { return fc.slotCount() }

// SlotOwner reports the cached owner address for a slot ("" = unknown).
func (fc *FailoverClient) SlotOwner(slot int) string {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if slot < 0 || slot >= len(fc.slotOwner) {
		return ""
	}
	return fc.slotOwner[slot]
}

func (fc *FailoverClient) slotCount() int {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.slots
}

// noteSlotRangesLocked folds a TOPO reply's slot map into the owner
// cache; the owners join the peer list so rediscovery probes them.
// A node's claim about its own slots (ranges labeled with itself or its
// group leader) is authoritative — it is serving them — and overwrites
// the cache; its view of other nodes' ranges is hearsay seeded from
// static -slot-peers flags and only fills unknown entries. Otherwise a
// sweep would let one peer's stale advisory clobber the live owner a
// failover or migration just installed, and routing would chase a dead
// address until the hop budget ran out. Caller holds fc.mu.
func (fc *FailoverClient) noteSlotRangesLocked(topo Topology) {
	if topo.SlotCount <= 0 {
		return
	}
	if fc.slots != topo.SlotCount {
		fc.slots = topo.SlotCount
		fc.slotOwner = make([]string, topo.SlotCount)
	}
	var owners []string
	for _, r := range topo.SlotRanges {
		if r.Addr == "" {
			continue
		}
		owners = append(owners, r.Addr)
		authoritative := r.Addr == topo.Self || (topo.Leader != "" && r.Addr == topo.Leader)
		for i := r.Lo; i >= 0 && i <= r.Hi && i < fc.slots; i++ {
			if authoritative || fc.slotOwner[i] == "" {
				fc.slotOwner[i] = r.Addr
			}
		}
	}
	fc.peers = dedupe(append(fc.peers, owners...))
}

func (fc *FailoverClient) slotOwnerAddr(slot int) string {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if slot < 0 || slot >= len(fc.slotOwner) {
		return ""
	}
	return fc.slotOwner[slot]
}

// setSlotOwner records a MOVED-announced owner ("" clears the entry,
// forcing rediscovery).
func (fc *FailoverClient) setSlotOwner(slot int, addr string) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if slot < 0 || slot >= len(fc.slotOwner) {
		return
	}
	fc.slotOwner[slot] = addr
	if addr != "" {
		fc.peers = dedupe(append(fc.peers, addr))
	}
}

// clearSlotOwner forgets a slot's owner, but only if it still is ifAddr —
// a concurrent MOVED may have installed a fresher owner.
func (fc *FailoverClient) clearSlotOwner(slot int, ifAddr string) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if slot >= 0 && slot < len(fc.slotOwner) && fc.slotOwner[slot] == ifAddr {
		fc.slotOwner[slot] = ""
	}
}

// ownerAddrs lists the distinct owner addresses in the slot map.
func (fc *FailoverClient) ownerAddrs() []string {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return dedupe(append([]string(nil), fc.slotOwner...))
}

// connTo returns the pooled connection for addr, dialing and
// TOPO-probing it on first use (the probe refreshes the slot map as a
// side effect) and negotiating the configured semi-sync level.
func (fc *FailoverClient) connTo(ctx context.Context, addr string) (*Client, error) {
	fc.mu.Lock()
	if cl, ok := fc.slotConns[addr]; ok {
		fc.mu.Unlock()
		return cl, nil
	}
	fc.mu.Unlock()
	cl, topo, err := fc.probe(ctx, addr)
	if err != nil {
		return nil, err
	}
	fc.notePeers(topo)
	if fc.opts.semiSyncAcks > 0 {
		if err := cl.SemiSyncContext(ctx, fc.opts.semiSyncAcks); err != nil {
			cl.Close()
			return nil, fmt.Errorf("ttkvwire: negotiating semi-sync with %s: %w", addr, err)
		}
	}
	fc.mu.Lock()
	if existing, ok := fc.slotConns[addr]; ok {
		fc.mu.Unlock()
		cl.Close()
		return existing, nil
	}
	if fc.slotConns == nil {
		fc.slotConns = make(map[string]*Client)
	}
	fc.slotConns[addr] = cl
	fc.mu.Unlock()
	return cl, nil
}

// dropSlotConn discards addr's pooled connection if it is still cl.
func (fc *FailoverClient) dropSlotConn(addr string, cl *Client) {
	fc.mu.Lock()
	if fc.slotConns[addr] == cl {
		delete(fc.slotConns, addr)
	}
	fc.mu.Unlock()
	cl.Close()
}

// refreshSlotMap re-probes every known peer's TOPO, merging slot maps.
// Succeeds if any probe does.
func (fc *FailoverClient) refreshSlotMap(ctx context.Context) error {
	var lastErr error
	ok := false
	for _, addr := range fc.Peers() {
		cl, topo, err := fc.probe(ctx, addr)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			continue
		}
		cl.Close()
		fc.notePeers(topo)
		ok = true
	}
	if ok {
		return nil
	}
	if lastErr == nil {
		lastErr = ErrNoCluster
	}
	return lastErr
}

// doKey routes op for key: to the slot owner in slot-cluster mode, else
// through the leader-following do loop. Redirects, rediscoveries, and
// transient retries share the same hop budget and backoff as do.
func (fc *FailoverClient) doKey(ctx context.Context, key string, op func(ctx context.Context, cl *Client) error) error {
	slots := fc.slotCount()
	if slots == 0 {
		return fc.do(ctx, op)
	}
	slot := ttkv.KeySlot(key, slots)
	var lastErr error
	backoff := fc.opts.retryBackoff
	maxBackoff := 16 * fc.opts.retryBackoff
	for hop := 0; hop <= fc.opts.maxRedirects; hop++ {
		if hop > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			if backoff < maxBackoff {
				backoff *= 2
			}
		}
		addr := fc.slotOwnerAddr(slot)
		if addr == "" {
			if err := fc.refreshSlotMap(ctx); err != nil {
				lastErr = err
				continue
			}
			if addr = fc.slotOwnerAddr(slot); addr == "" {
				lastErr = fmt.Errorf("ttkvwire: no known owner for slot %d", slot)
				continue
			}
		}
		cl, err := fc.connTo(ctx, addr)
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			fc.logf("failover client: slot %d owner %s unreachable: %v", slot, addr, err)
			fc.clearSlotOwner(slot, addr)
			lastErr = err
			continue
		}
		opctx := ctx
		cancel := func() {}
		if fc.opts.callTimeout > 0 {
			opctx, cancel = context.WithTimeout(ctx, fc.opts.callTimeout)
		}
		err = op(opctx, cl)
		cancel()
		switch {
		case err == nil:
			return nil
		case ctx.Err() != nil:
			return err
		}
		var notLeader *ErrNotLeader
		var partial *ErrPartialApply
		var remote *RemoteError
		switch {
		case errors.As(err, &notLeader):
			fc.logf("failover client: slot %d moved to %q", slot, notLeader.Leader)
			fc.setSlotOwner(slot, notLeader.Leader)
		case errors.Is(err, ErrReadOnly):
			// The owner demoted; its group's new primary surfaces through
			// the next TOPO sweep.
			fc.logf("failover client: slot %d owner %s is read-only; rediscovering", slot, addr)
			fc.clearSlotOwner(slot, addr)
		case errors.Is(err, ErrRetryable):
			fc.logf("failover client: transient on slot %d: %v", slot, err)
		case errors.As(err, &partial), errors.As(err, &remote),
			errors.Is(err, ErrNotFound), errors.Is(err, ErrProtocol):
			// Application-level outcome; retrying cannot change it.
			return err
		default:
			fc.logf("failover client: connection to %s failed: %v", addr, err)
			fc.dropSlotConn(addr, cl)
			fc.clearSlotOwner(slot, addr)
		}
		lastErr = err
	}
	return fmt.Errorf("ttkvwire: failover budget exhausted: %w", lastErr)
}

// msetJob is one owner-aligned chunk of a cluster MSet.
type msetJob struct {
	addr string // "" = owner unknown for these keys
	muts []ttkv.Mutation
}

// partitionMuts groups mutations by their slots' cached owners,
// preserving first-appearance order within each group.
func (fc *FailoverClient) partitionMuts(muts []ttkv.Mutation) []msetJob {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	idx := make(map[string]int)
	var jobs []msetJob
	for _, m := range muts {
		addr := ""
		if slot := ttkv.KeySlot(m.Key, fc.slots); slot < len(fc.slotOwner) {
			addr = fc.slotOwner[slot]
		}
		j, ok := idx[addr]
		if !ok {
			j = len(jobs)
			idx[addr] = j
			jobs = append(jobs, msetJob{addr: addr})
		}
		jobs[j].muts = append(jobs[j].muts, m)
	}
	return jobs
}

// clearJobOwners forgets the cached owner of every slot the job touches
// that still points at the job's address.
func (fc *FailoverClient) clearJobOwners(job msetJob) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	for i := range job.muts {
		slot := ttkv.KeySlot(job.muts[i].Key, fc.slots)
		if slot < len(fc.slotOwner) && fc.slotOwner[slot] == job.addr {
			fc.slotOwner[slot] = ""
		}
	}
}

// msetSlots applies a batch across a slot-partitioned cluster: it splits
// the batch by slot owner and applies the chunks sequentially, re-
// partitioning on MOVED/ownership changes. A node refuses a chunk with
// any foreign key before applying anything, so re-sends after a redirect
// never duplicate. On terminal failure the returned *ErrPartialApply
// reports Applied as the count of mutations that landed across all nodes
// — NOT a prefix of the original batch, since chunks apply out of batch
// order.
func (fc *FailoverClient) msetSlots(ctx context.Context, muts []ttkv.Mutation) error {
	if len(muts) == 0 {
		return nil
	}
	applied := 0
	wrap := func(err error) error {
		if applied > 0 {
			return &ErrPartialApply{Applied: applied, Msg: err.Error()}
		}
		return err
	}
	backoff := fc.opts.retryBackoff
	maxBackoff := 16 * fc.opts.retryBackoff
	hops := 0
	// spend consumes one hop (with backoff); non-nil means the budget or
	// context is exhausted and the caller must return the wrapped error.
	spend := func(opErr error) error {
		hops++
		if hops > fc.opts.maxRedirects {
			return wrap(fmt.Errorf("ttkvwire: failover budget exhausted: %w", opErr))
		}
		select {
		case <-ctx.Done():
			return wrap(ctx.Err())
		case <-time.After(backoff):
		}
		if backoff < maxBackoff {
			backoff *= 2
		}
		return nil
	}
	queue := fc.partitionMuts(muts)
	for len(queue) > 0 {
		job := queue[0]
		if job.addr == "" {
			// Unknown owners: sweep TOPO and re-partition this job.
			if err := fc.refreshSlotMap(ctx); err != nil {
				if err := spend(err); err != nil {
					return err
				}
				continue
			}
			repart := fc.partitionMuts(job.muts)
			if len(repart) == 1 && repart[0].addr == "" {
				if err := spend(fmt.Errorf("ttkvwire: no known owner for %d mutation(s)", len(job.muts))); err != nil {
					return err
				}
				continue
			}
			queue = append(repart, queue[1:]...)
			continue
		}
		cl, err := fc.connTo(ctx, job.addr)
		var opErr error
		if err != nil {
			opErr = err
		} else {
			opctx := ctx
			cancel := func() {}
			if fc.opts.callTimeout > 0 {
				opctx, cancel = context.WithTimeout(ctx, fc.opts.callTimeout)
			}
			opErr = cl.MSetContext(opctx, job.muts)
			cancel()
		}
		if opErr == nil {
			applied += len(job.muts)
			queue = queue[1:]
			continue
		}
		if ctx.Err() != nil {
			return wrap(opErr)
		}
		var partial *ErrPartialApply
		var notLeader *ErrNotLeader
		var remote *RemoteError
		switch {
		case errors.As(opErr, &partial):
			// Deterministic application failure (or a mid-chunk transport
			// loss the plain client already folded): the connection-level
			// count is exact, so fold it into the cluster-wide count and
			// stop — later jobs stay unapplied.
			applied += partial.Applied
			return &ErrPartialApply{Applied: applied, Msg: fmt.Sprintf("node %s: %s", job.addr, partial.Msg)}
		case errors.As(opErr, &remote), errors.Is(opErr, ErrProtocol):
			return wrap(fmt.Errorf("node %s: %w", job.addr, opErr))
		case errors.As(opErr, &notLeader), errors.Is(opErr, ErrReadOnly), errors.Is(opErr, ErrRetryable):
			// Ownership moved, the node demoted, or the slot is mid-
			// migration. Nothing from this job applied (the owner check
			// precedes the apply), so remapping and re-sending is safe.
			fc.logf("failover client: mset chunk for %s bounced: %v", job.addr, opErr)
			fc.clearJobOwners(job)
			if err := spend(opErr); err != nil {
				return err
			}
			queue = append(fc.partitionMuts(job.muts), queue[1:]...)
		default:
			if cl != nil {
				fc.dropSlotConn(job.addr, cl)
			}
			fc.clearJobOwners(job)
			if err := spend(opErr); err != nil {
				return err
			}
			queue = append(fc.partitionMuts(job.muts), queue[1:]...)
		}
	}
	return nil
}

// keysSlots merges KEYS across every known slot owner; slots partition
// the keyspace, so the union is duplicate-free by construction (the
// dedupe below only guards against transient double-ownership views).
func (fc *FailoverClient) keysSlots(ctx context.Context) ([]string, error) {
	addrs := fc.ownerAddrs()
	if len(addrs) == 0 {
		if err := fc.refreshSlotMap(ctx); err != nil {
			return nil, err
		}
		addrs = fc.ownerAddrs()
	}
	seen := make(map[string]struct{})
	out := []string{}
	for _, addr := range addrs {
		cl, err := fc.connTo(ctx, addr)
		if err != nil {
			return nil, fmt.Errorf("ttkvwire: listing keys on %s: %w", addr, err)
		}
		opctx := ctx
		cancel := func() {}
		if fc.opts.callTimeout > 0 {
			opctx, cancel = context.WithTimeout(ctx, fc.opts.callTimeout)
		}
		ks, err := cl.KeysContext(opctx)
		cancel()
		if err != nil {
			var remote *RemoteError
			if !errors.As(err, &remote) {
				fc.dropSlotConn(addr, cl)
			}
			return nil, fmt.Errorf("ttkvwire: listing keys on %s: %w", addr, err)
		}
		for _, k := range ks {
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				out = append(out, k)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}
