package ttkvwire

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadValue feeds arbitrary bytes to the wire protocol parser and
// checks the value-level roundtrip property: any value the parser
// accepts, the writer re-serializes into bytes the parser accepts again
// as a deeply-equal value. This pins both directions of the codec against
// each other — a parser that accepts malformed framing, or a writer that
// emits it, breaks the property — while hammering the length-prefix
// guards (maxBulkLen, maxArrayLen) that keep hostile peers from forcing
// giant allocations or deep recursion.
func FuzzReadValue(f *testing.F) {
	// One seed per protocol shape, plus malformed framing.
	seeds := []string{
		"+OK\r\n",
		"-ERR boom\r\n",
		":42\r\n",
		":-7\r\n",
		"$5\r\nhello\r\n",
		"$0\r\n\r\n",
		"$-1\r\n",
		"$3\r\nb\x00b\r\n",
		"*0\r\n",
		"*2\r\n$3\r\nSET\r\n$1\r\nk\r\n",
		"*2\r\n*1\r\n:1\r\n$2\r\nab\r\n", // nested array
		"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$1\r\nv\r\n",
		"$10\r\nshort\r\n",    // length longer than payload
		"$99999999999999\r\n", // over maxBulkLen
		"*99999999999999\r\n", // over maxArrayLen
		"+no-terminator",      // missing CRLF
		"+bare-lf\n",          // LF without CR
		"?1\r\n",              // unknown type byte
		"\r\n",                // empty line
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ReadValue(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := WriteValue(bw, v); err != nil {
			t.Fatalf("re-serializing accepted value %+v: %v", v, err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		v2, err := ReadValue(bufio.NewReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatalf("re-parsing serialized value %+v (bytes %q): %v", v, buf.Bytes(), err)
		}
		if !reflect.DeepEqual(v, v2) {
			t.Fatalf("roundtrip altered value:\n in: %+v\nout: %+v\nbytes: %q", v, v2, buf.Bytes())
		}
	})
}
