package ttkvwire

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"ocasta/internal/ttkv"
)

var t0 = time.Date(2013, 6, 1, 12, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

// --- protocol unit tests ---

func roundTripValue(t *testing.T, v Value) Value {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := WriteValue(bw, v); err != nil {
		t.Fatalf("WriteValue: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadValue(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadValue: %v", err)
	}
	return got
}

func TestProtoRoundTrip(t *testing.T) {
	tests := []Value{
		simple("OK"),
		errValue("ERR boom"),
		intValue(-42),
		bulk("hello world"),
		bulk(""),
		bulk("binary\r\n\x00bytes"),
		nilValue(),
		array(),
		array(bulk("a"), intValue(1), nilValue(), array(simple("nested"))),
	}
	for i, v := range tests {
		got := roundTripValue(t, v)
		want := v
		if want.Kind == KindArray && want.Array == nil {
			want.Array = []Value{}
		}
		if got.Kind == KindArray && got.Array == nil {
			got.Array = []Value{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: got %+v, want %+v", i, got, want)
		}
	}
}

func TestProtoRejectsGarbage(t *testing.T) {
	cases := []string{
		"!bogus\r\n",
		"$notanumber\r\n",
		":xyz\r\n",
		"*-2\r\n",
		"$99999999999\r\n",
		"+no-crlf\n",
		"$5\r\nab\r\n", // short bulk
	}
	for _, in := range cases {
		if _, err := ReadValue(bufio.NewReader(strings.NewReader(in))); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestProtoOversizedGuards(t *testing.T) {
	in := fmt.Sprintf("$%d\r\n", maxBulkLen+1)
	if _, err := ReadValue(bufio.NewReader(strings.NewReader(in))); !errors.Is(err, ErrTooLarge) {
		t.Errorf("bulk guard: err = %v, want ErrTooLarge", err)
	}
	in = fmt.Sprintf("*%d\r\n", maxArrayLen+1)
	if _, err := ReadValue(bufio.NewReader(strings.NewReader(in))); !errors.Is(err, ErrTooLarge) {
		t.Errorf("array guard: err = %v, want ErrTooLarge", err)
	}
}

func TestProtoBulkPropertyRoundTrip(t *testing.T) {
	prop := func(s string) bool {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		if err := WriteValue(bw, bulk(s)); err != nil {
			return false
		}
		bw.Flush()
		got, err := ReadValue(bufio.NewReader(&buf))
		return err == nil && got.Kind == KindBulk && got.Str == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- client/server integration over real TCP ---

func startServer(t testing.TB) (*Server, *Client) {
	t.Helper()
	store := ttkv.New()
	srv := NewServer(store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		<-done
	})
	return srv, client
}

func TestClientServerBasics(t *testing.T) {
	_, c := startServer(t)
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := c.Set("k", "v1", at(0)); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := c.Set("k", "v2", at(10)); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("k")
	if err != nil || v != "v2" {
		t.Fatalf("Get = %q,%v, want v2", v, err)
	}
	ver, err := c.GetAt("k", at(5))
	if err != nil || ver.Value != "v1" || !ver.Time.Equal(at(0)) {
		t.Fatalf("GetAt = %+v,%v, want v1@0", ver, err)
	}
	if err := c.Delete("k", at(20)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: err = %v, want ErrNotFound", err)
	}
	hist, err := c.History("k")
	if err != nil || len(hist) != 3 {
		t.Fatalf("History = %d versions,%v, want 3", len(hist), err)
	}
	if !hist[2].Deleted {
		t.Error("final version must be the tombstone")
	}
}

func TestClientServerKeysStatsModTimes(t *testing.T) {
	_, c := startServer(t)
	if err := c.Set("b", "1", at(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("a", "1", at(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("a", "2", at(2)); err != nil {
		t.Fatal(err)
	}
	keys, err := c.Keys()
	if err != nil || !reflect.DeepEqual(keys, []string{"a", "b"}) {
		t.Fatalf("Keys = %v,%v", keys, err)
	}
	n, err := c.ModCount("a")
	if err != nil || n != 2 {
		t.Fatalf("ModCount(a) = %d,%v, want 2", n, err)
	}
	times, err := c.ModTimes("a", "b")
	if err != nil || len(times) != 3 {
		t.Fatalf("ModTimes = %v,%v, want 3 times", times, err)
	}
	if !times[0].Equal(at(2)) {
		t.Errorf("ModTimes[0] = %v, want newest first", times[0])
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Keys != 2 || st.Writes != 3 {
		t.Errorf("Stats = %+v, want Keys=2 Writes=3", st)
	}
}

func TestClientServerMisses(t *testing.T) {
	_, c := startServer(t)
	if _, err := c.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get miss: %v, want ErrNotFound", err)
	}
	if _, err := c.GetAt("nope", at(0)); !errors.Is(err, ErrNotFound) {
		t.Errorf("GetAt miss: %v, want ErrNotFound", err)
	}
	hist, err := c.History("nope")
	if err != nil || len(hist) != 0 {
		t.Errorf("History miss = %v,%v, want empty", hist, err)
	}
}

func TestServerRejectsBadCommands(t *testing.T) {
	_, c := startServer(t)
	var remote *RemoteError
	if _, err := c.roundTrip(context.Background(), "BOGUS"); !errors.As(err, &remote) {
		t.Errorf("unknown command: err = %v, want RemoteError", err)
	}
	if _, err := c.roundTrip(context.Background(), "SET", "only-key"); !errors.As(err, &remote) {
		t.Errorf("bad arity: err = %v, want RemoteError", err)
	}
	if _, err := c.roundTrip(context.Background(), "SET", "k", "v", "not-a-time"); !errors.As(err, &remote) {
		t.Errorf("bad timestamp: err = %v, want RemoteError", err)
	}
	if _, err := c.roundTrip(context.Background(), "SET", "", "v", "0"); !errors.As(err, &remote) {
		t.Errorf("empty key: err = %v, want RemoteError", err)
	}
	// Connection must still be usable after errors.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after errors: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t)
	addr := srv.Addr().String()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := c.Set(key, "v", at(i)); err != nil {
					errs <- err
					return
				}
				if _, err := c.Get(key); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	store := ttkv.New()
	srv := NewServer(store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	// Give the accept loop a moment to start, then close.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve = %v, want ErrServerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close = %v, want nil", err)
	}
}

func TestServeAfterCloseFails(t *testing.T) {
	srv := NewServer(ttkv.New())
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(ln); !errors.Is(err, ErrServerClosed) {
		t.Errorf("Serve after Close = %v, want ErrServerClosed", err)
	}
}

func TestMSet(t *testing.T) {
	_, c := startServer(t)
	muts := []ttkv.Mutation{
		{Key: "a", Value: "1", Time: at(0)},
		{Key: "b", Value: "2", Time: at(1)},
		{Key: "a", Value: "3", Time: at(2)},
	}
	if err := c.MSet(muts); err != nil {
		t.Fatalf("MSet: %v", err)
	}
	if v, err := c.Get("a"); err != nil || v != "3" {
		t.Fatalf("a = %q,%v, want 3", v, err)
	}
	n, err := c.ModCount("a")
	if err != nil || n != 2 {
		t.Fatalf("ModCount(a) = %d,%v, want 2", n, err)
	}
	if err := c.MSet(nil); err != nil {
		t.Errorf("empty MSet = %v, want nil", err)
	}
	if err := c.MSet([]ttkv.Mutation{{Key: "x", Time: at(0), Delete: true}}); err == nil {
		t.Error("MSet with a delete must be rejected client-side")
	}
}

func TestMSetServerRejectsBadBatches(t *testing.T) {
	_, c := startServer(t)
	var remote *RemoteError
	if _, err := c.roundTrip(context.Background(), "MSET", "k", "v"); !errors.As(err, &remote) {
		t.Errorf("bad arity: err = %v, want RemoteError", err)
	}
	if _, err := c.roundTrip(context.Background(), "MSET", "k", "v", "not-a-time"); !errors.As(err, &remote) {
		t.Errorf("bad timestamp: err = %v, want RemoteError", err)
	}
	if _, err := c.roundTrip(context.Background(), "MSET", "", "v", "0"); !errors.As(err, &remote) {
		t.Errorf("empty key: err = %v, want RemoteError", err)
	}
	// A batch that fails validation applies nothing.
	if _, err := c.roundTrip(context.Background(), "MSET", "good", "v", "12345", "", "v", "12345"); !errors.As(err, &remote) {
		t.Errorf("half-bad batch: err = %v, want RemoteError", err)
	}
	if _, err := c.Get("good"); !errors.Is(err, ErrNotFound) {
		t.Error("failed batch must not partially apply")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after errors: %v", err)
	}
}

func TestPipeline(t *testing.T) {
	_, c := startServer(t)
	p := c.Pipeline()
	for i := 0; i < 50; i++ {
		p.Set(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i), at(i))
	}
	p.Delete("k0", at(100))
	if p.Len() != 51 {
		t.Fatalf("Len = %d, want 51", p.Len())
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if p.Len() != 0 {
		t.Errorf("Len after Flush = %d, want 0", p.Len())
	}
	if _, err := c.Get("k0"); !errors.Is(err, ErrNotFound) {
		t.Error("pipelined delete must apply in order")
	}
	if v, err := c.Get("k49"); err != nil || v != "v49" {
		t.Fatalf("k49 = %q,%v, want v49", v, err)
	}
	// Empty flush is a no-op.
	if err := c.Pipeline().Flush(); err != nil {
		t.Errorf("empty Flush = %v, want nil", err)
	}
}

// Zero timestamps must fail client-side: serialized as raw UnixNano they
// would arrive server-side as a bogus non-zero time, silently dodging the
// store's ErrZeroTime validation.
func TestClientRejectsZeroTime(t *testing.T) {
	_, c := startServer(t)
	var zero time.Time
	if err := c.Set("k", "v", zero); !errors.Is(err, ttkv.ErrZeroTime) {
		t.Errorf("Set zero time = %v, want ErrZeroTime", err)
	}
	if err := c.Delete("k", zero); !errors.Is(err, ttkv.ErrZeroTime) {
		t.Errorf("Delete zero time = %v, want ErrZeroTime", err)
	}
	if err := c.MSet([]ttkv.Mutation{{Key: "k", Value: "v"}}); !errors.Is(err, ttkv.ErrZeroTime) {
		t.Errorf("MSet zero time = %v, want ErrZeroTime", err)
	}
	p := c.Pipeline()
	p.Set("ok", "v", at(0))
	p.Set("k", "v", zero)
	if err := p.Flush(); !errors.Is(err, ttkv.ErrZeroTime) {
		t.Errorf("pipelined zero time Flush = %v, want ErrZeroTime", err)
	}
	keys, err := c.Keys()
	if err != nil || len(keys) != 0 {
		t.Errorf("rejected writes reached the server: keys = %v,%v", keys, err)
	}
}

// Batches larger than the per-command chunk must split into several MSET
// commands (a single array would eventually exceed the protocol's
// maxArrayLen and kill the connection).
func TestMSetLargerThanChunk(t *testing.T) {
	_, c := startServer(t)
	const n = msetChunk + 100
	muts := make([]ttkv.Mutation, n)
	for i := range muts {
		muts[i] = ttkv.Mutation{Key: "k", Value: fmt.Sprintf("v%d", i), Time: at(i)}
	}
	if err := c.MSet(muts); err != nil {
		t.Fatalf("MSet: %v", err)
	}
	hist, err := c.History("k")
	if err != nil || len(hist) != n {
		t.Fatalf("History = %d versions,%v, want %d", len(hist), err, n)
	}
	if hist[n-1].Value != fmt.Sprintf("v%d", n-1) {
		t.Errorf("last version = %q, want v%d", hist[n-1].Value, n-1)
	}
}

// A pipeline far larger than the internal flush chunk must apply fully
// and in order (chunking keeps the in-flight byte volume bounded so big
// pipelines cannot deadlock against a non-reading peer).
func TestPipelineLargerThanChunk(t *testing.T) {
	_, c := startServer(t)
	const n = pipelineChunk*2 + 100
	p := c.Pipeline()
	for i := 0; i < n; i++ {
		p.Set("k", fmt.Sprintf("v%d", i), at(i))
	}
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	hist, err := c.History("k")
	if err != nil || len(hist) != n {
		t.Fatalf("History = %d versions,%v, want %d", len(hist), err, n)
	}
	if hist[n-1].Value != fmt.Sprintf("v%d", n-1) {
		t.Errorf("last version = %q, want v%d", hist[n-1].Value, n-1)
	}
}

func TestPipelineSurfacesRemoteErrors(t *testing.T) {
	_, c := startServer(t)
	p := c.Pipeline()
	p.Set("ok1", "v", at(0))
	p.Set("", "v", at(1)) // server rejects empty key
	p.Set("ok2", "v", at(2))
	var remote *RemoteError
	if err := p.Flush(); !errors.As(err, &remote) {
		t.Fatalf("Flush = %v, want RemoteError", err)
	}
	// All responses were drained: the connection is still usable, and the
	// valid commands around the bad one were applied.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after pipeline error: %v", err)
	}
	for _, k := range []string{"ok1", "ok2"} {
		if _, err := c.Get(k); err != nil {
			t.Errorf("%s missing after pipeline with one bad command: %v", k, err)
		}
	}
}

func TestPipelineConcurrentWithRoundTrips(t *testing.T) {
	// Pipelines and plain round trips share a connection; the client
	// semaphore must keep request/response pairing intact.
	_, c := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p := c.Pipeline()
				for j := 0; j < 10; j++ {
					p.Set(fmt.Sprintf("p%d-%d-%d", g, i, j), "v", at(j))
				}
				if err := p.Flush(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := c.Ping(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestBinaryValuesSurviveWire(t *testing.T) {
	_, c := startServer(t)
	nasty := "line1\r\nline2\x00\xff *$+:-"
	if err := c.Set("bin", nasty, at(0)); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("bin")
	if err != nil || v != nasty {
		t.Fatalf("binary value mangled: %q, %v", v, err)
	}
}
