package ttkvwire

// Benchmarks behind BENCH_cluster.json: a fixed write workload routed
// across 1/2/3 hash-slot primaries by the slot-aware client, and a full
// analytics drain rebuilding global CLUSTERS from every node's stream.
//
// On a single-core host the primaries share the CPU, so aggregate
// wall-clock throughput cannot rise with the node count; what the write
// benchmark records instead is the per-node work balance ("node-scaling"
// = total writes / max writes on any one node). That is the quantity
// partitioning actually controls — with even slot ownership each node
// applies ~1/N of the workload, which is the capacity multiple once
// nodes own their own cores or machines.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ocasta/internal/core"
	"ocasta/internal/ttkv"
)

func BenchmarkClusterWrite(b *testing.B) {
	for _, n := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("primaries=%d", n), func(b *testing.B) {
			nodes := startSlotCluster(b, n, ttkv.DefaultSlotCount)
			ctx := context.Background()
			fc, err := DialCluster(ctx,
				WithPeers(clusterAddrs(nodes)...),
				WithMaxRedirects(8),
				WithRetryBackoff(time.Millisecond),
			)
			if err != nil {
				b.Fatal(err)
			}
			defer fc.Close()
			keys := make([]string, 4096)
			for i := range keys {
				keys[i] = fmt.Sprintf("bench/k%06d", i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[i%len(keys)]
				if err := fc.Set(ctx, k, "v", t0.Add(time.Duration(i)*time.Microsecond)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var total, max uint64
			for _, nd := range nodes {
				s := nd.store.CurrentSeq()
				total += s
				if s > max {
					max = s
				}
			}
			if max > 0 {
				b.ReportMetric(float64(total)/float64(max), "node-scaling")
			}
		})
	}
}

// BenchmarkClusterAnalyticsDrain rebuilds a 3-primary cluster's global
// analytics from scratch: one full drain of every node's replication
// stream, time-merged into a fresh engine.
func BenchmarkClusterAnalyticsDrain(b *testing.B) {
	const slots = ttkv.DefaultSlotCount
	const records = 12000
	nodes := startSlotCluster(b, 3, slots)
	ctx := context.Background()
	fc, err := DialCluster(ctx,
		WithPeers(clusterAddrs(nodes)...),
		WithMaxRedirects(8),
		WithRetryBackoff(time.Millisecond),
	)
	if err != nil {
		b.Fatal(err)
	}
	defer fc.Close()
	// Writes land in pairs 250ms apart, so each 1s co-modification
	// window holds a handful of keys (pair counting is quadratic in
	// window size; packing thousands of keys into one window would
	// benchmark the engine's worst case, not the drain path).
	for i := 0; i < records; i++ {
		k := fmt.Sprintf("bench/k%06d", i%1024)
		if err := fc.Set(ctx, k, "v", t0.Add(time.Duration(i/2)*250*time.Millisecond)); err != nil {
			b.Fatal(err)
		}
	}
	addrs := clusterAddrs(nodes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := core.NewEngine(core.EngineConfig{})
		if err := DrainAnalytics(ctx, engine, addrs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
