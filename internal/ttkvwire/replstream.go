package ttkvwire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Replication stream framing. After a successful SYNC handshake (plain
// wire-protocol request and reply), the connection leaves the
// request/response protocol: the primary pushes frames, the replica
// pushes acknowledgements back on the same connection.
//
//	'D' | u32 len | payload     primary→replica: whole ttkv repl records
//	'H' | u64 durableSeq        primary→replica: heartbeat while idle
//	'A' | u64 appliedSeq        replica→primary: apply progress
//
// Data frames always carry whole records (a record never splits across
// frames), but an atomic batch may span frames; the replica buffers until
// the batch closes.
const (
	replFrameData      = 'D'
	replFrameHeartbeat = 'H'
	replFrameAck       = 'A'

	// maxReplFrameLen bounds a data frame's declared payload so a corrupt
	// or hostile peer cannot force a giant allocation. A single record can
	// approach 16 MiB (two MaxStringLen strings); frames are normally
	// chunked far smaller (replFrameChunk).
	maxReplFrameLen = 24 << 20

	// replFrameChunk is the outbox's target data-frame payload size: small
	// enough to interleave heartbeats and acks promptly, large enough to
	// amortize the frame header and write syscall. A frame always carries
	// at least one whole record, however large.
	replFrameChunk = 128 << 10
)

// writeReplData writes one data frame (without flushing, so callers can
// coalesce frames into one network write).
func writeReplData(w *bufio.Writer, payload []byte) error {
	if err := w.WriteByte(replFrameData); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// writeReplSeq writes a heartbeat or ack frame (without flushing).
func writeReplSeq(w *bufio.Writer, kind byte, seq uint64) error {
	if err := w.WriteByte(kind); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], seq)
	_, err := w.Write(buf[:])
	return err
}

// readReplFrame reads one frame. For data frames payload is non-nil (and
// may be empty); for heartbeat/ack frames seq carries the watermark.
func readReplFrame(r *bufio.Reader) (kind byte, payload []byte, seq uint64, err error) {
	kind, err = r.ReadByte()
	if err != nil {
		return 0, nil, 0, err
	}
	switch kind {
	case replFrameData:
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return 0, nil, 0, err
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > maxReplFrameLen {
			return 0, nil, 0, fmt.Errorf("%w: repl frame length %d", ErrTooLarge, n)
		}
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, 0, err
		}
		return kind, payload, 0, nil
	case replFrameHeartbeat, replFrameAck:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, nil, 0, err
		}
		return kind, nil, binary.LittleEndian.Uint64(buf[:]), nil
	default:
		return 0, nil, 0, fmt.Errorf("%w: unknown repl frame type %q", ErrProtocol, kind)
	}
}
