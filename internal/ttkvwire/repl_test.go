package ttkvwire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ocasta/internal/core"
	"ocasta/internal/ttkv"
)

// storeDump returns the snapshot serialization of s: the byte-identity
// oracle for primary/replica equivalence (global sequence order included).
func storeDump(t testing.TB, s *ttkv.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startReplPrimary serves store as a replication primary on an ephemeral
// port. rl must already be attached to store.
func startReplPrimary(t testing.TB, store *ttkv.Store, rl *ttkv.ReplLog, engine *core.Engine) (*Server, string) {
	t.Helper()
	srv := NewServer(store)
	srv.EnableReplication(rl, ReplicationConfig{HeartbeatInterval: 50 * time.Millisecond})
	if engine != nil {
		srv.SetAnalytics(engine)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// startReplicaNode builds a replica store, its sync client against
// primaryAddr, and a read-only server in front of it.
func startReplicaNode(t testing.TB, primaryAddr string, engine *core.Engine) (*ttkv.Store, *ReplicaClient, string) {
	t.Helper()
	store := ttkv.NewSharded(4)
	if engine != nil {
		store.SetStatsObserver(engine)
	}
	cfg := ReplicaConfig{
		Primary:    primaryAddr,
		Store:      store,
		MinBackoff: 10 * time.Millisecond,
		MaxBackoff: 200 * time.Millisecond,
	}
	if engine != nil {
		cfg.OnReset = engine.Reset
	}
	rc, err := StartReplica(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rc.Stop)
	srv := NewServer(store)
	srv.SetReadOnly(true)
	srv.SetReplicaStatus(rc)
	if engine != nil {
		srv.SetAnalytics(engine)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { srv.Close() })
	return store, rc, ln.Addr().String()
}

// drainReplicas flushes the primary's log and waits until every replica
// has applied the durable watermark.
func drainReplicas(t testing.TB, primary *ttkv.Store, rl *ttkv.ReplLog, rcs ...*ReplicaClient) {
	t.Helper()
	if err := primary.SyncAOF(); err != nil {
		t.Fatal(err)
	}
	target := rl.DurableSeq()
	deadline := time.Now().Add(15 * time.Second)
	for _, rc := range rcs {
		for rc.AppliedSeq() < target {
			if time.Now().After(deadline) {
				t.Fatalf("replica stuck at seq %d, want %d (status %+v)",
					rc.AppliedSeq(), target, rc.ReplicaStatus())
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestReplicationPairServesReads(t *testing.T) {
	primary := ttkv.NewSharded(8)
	rl := ttkv.NewReplLog(nil)
	if err := primary.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	_, addr := startReplPrimary(t, primary, rl, nil)

	// Pre-sync history exercises the snapshot phase; post-sync writes the
	// live tail.
	for i := 0; i < 50; i++ {
		if err := primary.Set(fmt.Sprintf("snap/k%d", i%7), fmt.Sprintf("v%d", i), at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Delete("snap/k0", at(60)); err != nil {
		t.Fatal(err)
	}

	replica, rc, raddr := startReplicaNode(t, addr, nil)
	for i := 0; i < 50; i++ {
		if err := primary.Set(fmt.Sprintf("live/k%d", i%5), fmt.Sprintf("w%d", i), at(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	drainReplicas(t, primary, rl, rc)

	if got, want := storeDump(t, replica), storeDump(t, primary); !bytes.Equal(got, want) {
		t.Fatal("replica dump differs from primary after drain")
	}

	// Reads served by the replica's own server match the primary.
	rcl, err := Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	if v, err := rcl.Get("live/k3"); err != nil || v != primaryGet(t, primary, "live/k3") {
		t.Fatalf("replica Get = %q, %v", v, err)
	}
	if _, err := rcl.Get("snap/k0"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key on replica: err = %v, want ErrNotFound", err)
	}
	ver, err := rcl.GetAt("snap/k0", at(50))
	if err != nil || ver.Deleted {
		t.Fatalf("replica GetAt before delete = %+v, %v", ver, err)
	}
	hist, err := rcl.History("snap/k1")
	if err != nil {
		t.Fatal(err)
	}
	want, err := primary.History("snap/k1")
	if err != nil || len(hist) != len(want) {
		t.Fatalf("replica history %d versions, want %d (%v)", len(hist), len(want), err)
	}
}

func primaryGet(t testing.TB, s *ttkv.Store, key string) string {
	t.Helper()
	v, ok := s.Get(key)
	if !ok {
		t.Fatalf("primary missing %q", key)
	}
	return v
}

func TestReplicaRejectsWrites(t *testing.T) {
	primary := ttkv.New()
	rl := ttkv.NewReplLog(nil)
	if err := primary.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	_, addr := startReplPrimary(t, primary, rl, nil)
	_, rc, raddr := startReplicaNode(t, addr, nil)
	if err := primary.Set("k", "v", at(1)); err != nil {
		t.Fatal(err)
	}
	drainReplicas(t, primary, rl, rc)

	cl, err := Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	assertReadonly := func(name string, err error) {
		t.Helper()
		if !errors.Is(err, ErrReadOnly) {
			t.Errorf("%s on replica: err = %v, want errors.Is(err, ErrReadOnly)", name, err)
		}
	}
	assertReadonly("SET", cl.Set("k", "x", at(2)))
	assertReadonly("DEL", cl.Delete("k", at(2)))
	assertReadonly("MSET", cl.MSet([]ttkv.Mutation{{Key: "k", Value: "x", Time: at(2)}}))
	_, err = cl.RepairFix("job-1", at(2))
	assertReadonly("RFIX", err)

	// Reads still work, and the primary's value is untouched.
	if v, err := cl.Get("k"); err != nil || v != "v" {
		t.Fatalf("replica Get after rejected writes = %q, %v", v, err)
	}
}

func TestReplStatRoles(t *testing.T) {
	// Standalone server: role none.
	standalone := NewServer(ttkv.New())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go standalone.Serve(ln) //nolint:errcheck
	t.Cleanup(func() { standalone.Close() })
	scl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer scl.Close()
	if st, err := scl.ReplStatus(); err != nil || st.Role != "none" {
		t.Fatalf("standalone REPLSTAT = %+v, %v; want role none", st, err)
	}
	// A standalone server also refuses SYNC without killing the conn.
	if _, err := scl.roundTrip(context.Background(), "SYNC", "0", "?"); err == nil {
		t.Fatal("SYNC on a non-replicating server must error")
	}
	if err := scl.Ping(); err != nil {
		t.Fatalf("connection unusable after refused SYNC: %v", err)
	}

	primary := ttkv.New()
	rl := ttkv.NewReplLog(nil)
	if err := primary.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	_, addr := startReplPrimary(t, primary, rl, nil)
	_, rc, raddr := startReplicaNode(t, addr, nil)
	for i := 0; i < 10; i++ {
		if err := primary.Set("k", fmt.Sprintf("v%d", i), at(i)); err != nil {
			t.Fatal(err)
		}
	}
	drainReplicas(t, primary, rl, rc)

	pcl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pcl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := pcl.ReplStatus()
		if err != nil {
			t.Fatal(err)
		}
		if st.Role != "primary" || st.RunID == "" || st.DurableSeq != 10 {
			t.Fatalf("primary REPLSTAT = %+v", st)
		}
		// The ack races the drain check; poll briefly for it.
		if len(st.Replicas) == 1 && st.Replicas[0].AckedSeq == 10 &&
			st.Replicas[0].State == "streaming" && st.Replicas[0].LagRecords == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never saw the replica fully acked: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	rcl, err := Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	st, err := rcl.ReplStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Role != "replica" || st.State != ReplicaStreaming || st.AppliedSeq != 10 {
		t.Fatalf("replica REPLSTAT = %+v", st)
	}
}

// TestRepairFixConvergesOnReplica is the satellite regression test: a
// repair RFIX on the primary flows through the replication tap in commit
// order and lands on the replica as one atomic cluster revert.
func TestRepairFixConvergesOnReplica(t *testing.T) {
	primary := ttkv.NewSharded(8)
	rl := ttkv.NewReplLog(nil)
	if err := primary.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	_, errAt := seedEvolutionFault(t, primary)
	srv, addr := startReplPrimary(t, primary, rl, nil)
	srv.SetRepair(RepairConfig{Workers: 4})
	replica, rc, _ := startReplicaNode(t, addr, nil)
	drainReplicas(t, primary, rl, rc)

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	id, err := cl.RepairSubmit(RepairRequest{
		App:          "evolution",
		Trial:        []string{"launch"},
		FixedMarker:  "[x] online-mode",
		BrokenMarker: "[ ] online-mode",
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.RepairWait(id, time.Millisecond, 10*time.Second)
	if err != nil || !st.Found {
		t.Fatalf("repair = %+v, %v; want found", st, err)
	}
	applyAt := errAt.Add(time.Hour)
	n, err := cl.RepairFix(id, applyAt)
	if err != nil || n == 0 {
		t.Fatalf("RFIX = (%d, %v)", n, err)
	}

	drainReplicas(t, primary, rl, rc)
	if got, want := storeDump(t, replica), storeDump(t, primary); !bytes.Equal(got, want) {
		t.Fatal("replica dump differs from primary after RFIX")
	}
	if v, _ := replica.Get(evoOffline); v != "b:false" {
		t.Fatalf("replica %s = %q after revert, want b:false", evoOffline, v)
	}
	// The fault stays in replicated history too (time travel preserved).
	ver, err := replica.GetAt(evoOffline, errAt)
	if err != nil || ver.Value != "b:true" {
		t.Fatalf("replica GetAt(errAt) = %+v, %v; history must keep the fault", ver, err)
	}
}

// TestReplicaClustersComputedLocally: the replica's own engine consumes
// the replicated stream and serves CLUSTERS without touching the primary.
func TestReplicaClustersComputedLocally(t *testing.T) {
	primary := ttkv.New()
	rl := ttkv.NewReplLog(nil)
	if err := primary.AttachReplLog(rl); err != nil {
		t.Fatal(err)
	}
	pEngine := core.NewEngine(core.EngineConfig{})
	primary.SetStatsObserver(pEngine)
	_, addr := startReplPrimary(t, primary, rl, pEngine)

	rEngine := core.NewEngine(core.EngineConfig{})
	replica, rc, raddr := startReplicaNode(t, addr, rEngine)

	// Co-modification episodes: the pair flushes together, far apart in
	// time so every episode closes its own window.
	for i := 0; i < 6; i++ {
		ts := at(i * 10)
		if err := primary.Set("app/a", fmt.Sprintf("v%d", i), ts); err != nil {
			t.Fatal(err)
		}
		if err := primary.Set("app/b", fmt.Sprintf("v%d", i), ts); err != nil {
			t.Fatal(err)
		}
	}
	drainReplicas(t, primary, rl, rc)

	for _, e := range []*core.Engine{pEngine, rEngine} {
		e.Flush()
		e.Recluster()
	}
	pSnap, _ := pEngine.Snapshot()
	rSnap, _ := rEngine.Snapshot()
	if len(rSnap) != len(pSnap) {
		t.Fatalf("replica published %d clusters, primary %d", len(rSnap), len(pSnap))
	}
	for i := range pSnap {
		if !clustersEqual(&pSnap[i], &rSnap[i]) {
			t.Fatalf("cluster %d differs: primary %+v, replica %+v", i, pSnap[i], rSnap[i])
		}
	}

	// And the replica's server answers CLUSTERS from that local engine.
	rcl, err := Dial(raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rcl.Close()
	snap, err := rcl.Clusters(2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range snap.Clusters {
		if c.Contains("app/a") && c.Contains("app/b") {
			found = true
		}
	}
	if !found {
		t.Fatalf("replica CLUSTERS does not contain the pair: %+v", snap.Clusters)
	}
	_ = replica
}

func clustersEqual(a, b *core.Cluster) bool {
	if len(a.Keys) != len(b.Keys) || a.ModCount != b.ModCount || !a.LastModified.Equal(b.LastModified) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
	}
	return true
}

// TestReplicaFullResyncOnNewPrimary: a replica pointed at a different
// primary incarnation (new run ID) must reset its local store — and its
// engine, via OnReset — and converge on the new history.
func TestReplicaFullResyncOnNewPrimary(t *testing.T) {
	primaryA := ttkv.New()
	rlA := ttkv.NewReplLog(nil)
	if err := primaryA.AttachReplLog(rlA); err != nil {
		t.Fatal(err)
	}
	srvA := NewServer(primaryA)
	srvA.EnableReplication(rlA, ReplicationConfig{HeartbeatInterval: 20 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srvA.Serve(ln) //nolint:errcheck

	for i := 0; i < 20; i++ {
		if err := primaryA.Set("a/key", fmt.Sprintf("a%d", i), at(i)); err != nil {
			t.Fatal(err)
		}
	}

	var resets atomic.Int32
	replica := ttkv.New()
	rc, err := StartReplica(ReplicaConfig{
		Primary:    addr,
		Store:      replica,
		MinBackoff: 10 * time.Millisecond,
		MaxBackoff: 100 * time.Millisecond,
		OnReset:    func() { resets.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Stop()
	drainReplicas(t, primaryA, rlA, rc)
	if got, want := storeDump(t, replica), storeDump(t, primaryA); !bytes.Equal(got, want) {
		t.Fatal("replica did not converge on primary A")
	}

	// Primary A dies; a different incarnation takes over the address with
	// divergent history.
	srvA.Close()
	primaryB := ttkv.New()
	rlB := ttkv.NewReplLog(nil)
	if err := primaryB.AttachReplLog(rlB); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := primaryB.Set("b/key", fmt.Sprintf("b%d", i), at(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	srvB := NewServer(primaryB)
	srvB.EnableReplication(rlB, ReplicationConfig{HeartbeatInterval: 20 * time.Millisecond})
	lnB, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	go srvB.Serve(lnB) //nolint:errcheck
	t.Cleanup(func() { srvB.Close() })

	// The applied watermark moves backwards through the reset; wait for
	// the reset itself before waiting for the drain.
	deadline := time.Now().Add(15 * time.Second)
	for resets.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never reset for the new primary (status %+v)", rc.ReplicaStatus())
		}
		time.Sleep(time.Millisecond)
	}
	drainReplicas(t, primaryB, rlB, rc)
	if got, want := storeDump(t, replica), storeDump(t, primaryB); !bytes.Equal(got, want) {
		t.Fatal("replica did not converge on primary B after full resync")
	}
	if _, ok := replica.Get("a/key"); ok {
		t.Fatal("stale primary-A history survived the full resync")
	}
	if resets.Load() == 0 {
		t.Fatal("OnReset hook never ran")
	}
}
