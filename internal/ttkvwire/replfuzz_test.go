package ttkvwire

import (
	"bufio"
	"bytes"
	"testing"
	"time"

	"ocasta/internal/ttkv"
)

// replStreamSeeds builds valid replication streams with the real
// encoders, so the fuzzer starts from the interesting shapes: heartbeats,
// acks, data frames carrying sets/deletes/atomic batches, plus malformed
// framing.
func replStreamSeeds() [][]byte {
	ts := time.Date(2014, 6, 23, 10, 0, 0, 0, time.UTC)
	frame := func(fn func(w *bufio.Writer)) []byte {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		fn(w)
		w.Flush()
		return buf.Bytes()
	}
	recs := func(rs ...ttkv.ReplRecord) []byte {
		var b []byte
		for _, r := range rs {
			b = ttkv.AppendReplRecord(b, r)
		}
		return b
	}
	seeds := [][]byte{
		frame(func(w *bufio.Writer) { writeReplSeq(w, replFrameHeartbeat, 42) }),
		frame(func(w *bufio.Writer) { writeReplSeq(w, replFrameAck, 7) }),
		frame(func(w *bufio.Writer) { writeReplData(w, nil) }), // empty data frame
		frame(func(w *bufio.Writer) {
			writeReplData(w, recs(ttkv.ReplRecord{Seq: 1, Key: "k", Value: "v", Time: ts}))
		}),
		frame(func(w *bufio.Writer) {
			writeReplData(w, recs(
				ttkv.ReplRecord{Seq: 2, Key: "a", Value: "x\x00y", Time: ts, BatchOpen: true},
				ttkv.ReplRecord{Seq: 3, Key: "b", Time: ts, Deleted: true},
			))
			writeReplSeq(w, replFrameHeartbeat, 3)
		}),
		[]byte{replFrameData, 0xff, 0xff, 0xff, 0xff},                         // over maxReplFrameLen
		[]byte{replFrameData, 4, 0, 0, 0, 1, 2},                               // truncated payload
		[]byte{replFrameHeartbeat, 1, 2, 3},                                   // truncated seq
		[]byte{'Z', 0, 0, 0, 0},                                               // unknown frame kind
		[]byte{replFrameData, 3, 0, 0, 0, 0x04, 1, 2},                         // bad record flags
		frame(func(w *bufio.Writer) { writeReplData(w, []byte{0x01, 0x02}) }), // truncated record
	}
	return seeds
}

// FuzzReplStream hammers the replication stream decoders with arbitrary
// bytes: the frame reader and the record decoder must never panic, never
// over-allocate past their declared bounds, and every record they accept
// must re-encode byte-identically (the framing is its own inverse) — the
// property that keeps a primary and a replica agreeing about what was
// shipped.
func FuzzReplStream(f *testing.F) {
	for _, s := range replStreamSeeds() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for {
			kind, payload, seq, err := readReplFrame(br)
			if err != nil {
				return // malformed or exhausted: rejecting is always fine
			}
			switch kind {
			case replFrameHeartbeat, replFrameAck:
				// Roundtrip the control frame.
				var buf bytes.Buffer
				w := bufio.NewWriter(&buf)
				if err := writeReplSeq(w, kind, seq); err != nil {
					t.Fatalf("re-encoding %c frame: %v", kind, err)
				}
				w.Flush()
				k2, _, s2, err := readReplFrame(bufio.NewReader(&buf))
				if err != nil || k2 != kind || s2 != seq {
					t.Fatalf("control frame roundtrip: (%c,%d) -> (%c,%d,%v)", kind, seq, k2, s2, err)
				}
			case replFrameData:
				// Decode every record; each accepted record must re-encode
				// to the exact bytes it was decoded from.
				rest := payload
				for len(rest) > 0 {
					rec, n, err := ttkv.DecodeReplRecord(rest)
					if err != nil {
						break // corrupt tail: rejecting is fine
					}
					if n <= 0 || n > len(rest) {
						t.Fatalf("decoder consumed %d of %d bytes", n, len(rest))
					}
					re := ttkv.AppendReplRecord(nil, rec)
					if !bytes.Equal(re, rest[:n]) {
						t.Fatalf("record %+v re-encodes to %x, was %x", rec, re, rest[:n])
					}
					back, m, err := ttkv.DecodeReplRecord(re)
					if err != nil || m != n {
						t.Fatalf("re-decoding own encoding: %v (consumed %d, want %d)", err, m, n)
					}
					if back.Seq != rec.Seq || back.Key != rec.Key || back.Value != rec.Value ||
						!back.Time.Equal(rec.Time) || back.Deleted != rec.Deleted || back.BatchOpen != rec.BatchOpen {
						t.Fatalf("record roundtrip altered: %+v -> %+v", rec, back)
					}
					rest = rest[n:]
				}
			}
		}
	})
}
