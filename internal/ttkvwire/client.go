package ttkvwire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"ocasta/internal/ttkv"
)

// Client errors.
var (
	// ErrNotFound is returned for GET/GETAT misses.
	ErrNotFound = errors.New("ttkvwire: not found")
)

// RemoteError is an error the server reported.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "ttkvwire: server: " + e.Msg }

// Client is a connection to a TTKV server. Methods are safe for concurrent
// use; requests are serialized over the single connection.
type Client struct {
	mu   chan struct{} // 1-token semaphore guarding conn+buffers
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a TTKV server at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ttkvwire: dial: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		mu:   make(chan struct{}, 1),
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}
	c.mu <- struct{}{}
	return c
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one command and reads one response.
func (c *Client) roundTrip(args ...string) (Value, error) {
	<-c.mu
	defer func() { c.mu <- struct{}{} }()
	if err := writeCommand(c.bw, args...); err != nil {
		return Value{}, fmt.Errorf("ttkvwire: send: %w", err)
	}
	v, err := ReadValue(c.br)
	if err != nil {
		return Value{}, fmt.Errorf("ttkvwire: recv: %w", err)
	}
	if v.Kind == KindError {
		return Value{}, &RemoteError{Msg: v.Str}
	}
	return v, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	v, err := c.roundTrip("PING")
	if err != nil {
		return err
	}
	if v.Kind != KindSimple || v.Str != "PONG" {
		return fmt.Errorf("%w: unexpected PING reply %+v", ErrProtocol, v)
	}
	return nil
}

// Set records a write of key at time t.
func (c *Client) Set(key, value string, t time.Time) error {
	_, err := c.roundTrip("SET", key, value, strconv.FormatInt(t.UnixNano(), 10))
	return err
}

// Delete records a deletion of key at time t.
func (c *Client) Delete(key string, t time.Time) error {
	_, err := c.roundTrip("DEL", key, strconv.FormatInt(t.UnixNano(), 10))
	return err
}

// Get fetches the current value of key; ErrNotFound if absent or deleted.
func (c *Client) Get(key string) (string, error) {
	v, err := c.roundTrip("GET", key)
	if err != nil {
		return "", err
	}
	switch v.Kind {
	case KindNil:
		return "", ErrNotFound
	case KindBulk:
		return v.Str, nil
	default:
		return "", fmt.Errorf("%w: unexpected GET reply %+v", ErrProtocol, v)
	}
}

// GetAt fetches the version of key in effect at time t.
func (c *Client) GetAt(key string, t time.Time) (ttkv.Version, error) {
	v, err := c.roundTrip("GETAT", key, strconv.FormatInt(t.UnixNano(), 10))
	if err != nil {
		return ttkv.Version{}, err
	}
	if v.Kind == KindNil {
		return ttkv.Version{}, ErrNotFound
	}
	return parseVersion(v)
}

// History fetches the full version history of key, oldest first. A key the
// server has never seen yields an empty history.
func (c *Client) History(key string) ([]ttkv.Version, error) {
	v, err := c.roundTrip("HIST", key)
	if err != nil {
		return nil, err
	}
	if v.Kind != KindArray {
		return nil, fmt.Errorf("%w: unexpected HIST reply %+v", ErrProtocol, v)
	}
	out := make([]ttkv.Version, 0, len(v.Array))
	for _, el := range v.Array {
		ver, err := parseVersion(el)
		if err != nil {
			return nil, err
		}
		out = append(out, ver)
	}
	return out, nil
}

// Keys lists every key the server has seen, sorted.
func (c *Client) Keys() ([]string, error) {
	v, err := c.roundTrip("KEYS")
	if err != nil {
		return nil, err
	}
	if v.Kind != KindArray {
		return nil, fmt.Errorf("%w: unexpected KEYS reply %+v", ErrProtocol, v)
	}
	out := make([]string, 0, len(v.Array))
	for _, el := range v.Array {
		if el.Kind != KindBulk {
			return nil, fmt.Errorf("%w: non-bulk key %+v", ErrProtocol, el)
		}
		out = append(out, el.Str)
	}
	return out, nil
}

// ModCount returns the total modifications (writes + deletes) of key.
func (c *Client) ModCount(key string) (int, error) {
	v, err := c.roundTrip("MODCOUNT", key)
	if err != nil {
		return 0, err
	}
	if v.Kind != KindInt {
		return 0, fmt.Errorf("%w: unexpected MODCOUNT reply %+v", ErrProtocol, v)
	}
	return int(v.Int), nil
}

// ModTimes returns the distinct modification timestamps of keys, newest
// first.
func (c *Client) ModTimes(keys ...string) ([]time.Time, error) {
	args := append([]string{"MODTIMES"}, keys...)
	v, err := c.roundTrip(args...)
	if err != nil {
		return nil, err
	}
	if v.Kind != KindArray {
		return nil, fmt.Errorf("%w: unexpected MODTIMES reply %+v", ErrProtocol, v)
	}
	out := make([]time.Time, 0, len(v.Array))
	for _, el := range v.Array {
		ns, err := strconv.ParseInt(el.Str, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad timestamp %q", ErrProtocol, el.Str)
		}
		out = append(out, time.Unix(0, ns).UTC())
	}
	return out, nil
}

// Stats fetches the server's store statistics.
func (c *Client) Stats() (ttkv.Stats, error) {
	v, err := c.roundTrip("STATS")
	if err != nil {
		return ttkv.Stats{}, err
	}
	if v.Kind != KindArray || len(v.Array) != 6 {
		return ttkv.Stats{}, fmt.Errorf("%w: unexpected STATS reply %+v", ErrProtocol, v)
	}
	for _, el := range v.Array {
		if el.Kind != KindInt {
			return ttkv.Stats{}, fmt.Errorf("%w: non-int stat %+v", ErrProtocol, el)
		}
	}
	return ttkv.Stats{
		Keys:        int(v.Array[0].Int),
		Writes:      uint64(v.Array[1].Int),
		Deletes:     uint64(v.Array[2].Int),
		Reads:       uint64(v.Array[3].Int),
		Versions:    int(v.Array[4].Int),
		ApproxBytes: v.Array[5].Int,
	}, nil
}

func parseVersion(v Value) (ttkv.Version, error) {
	if v.Kind != KindArray || len(v.Array) != 3 {
		return ttkv.Version{}, fmt.Errorf("%w: bad version shape %+v", ErrProtocol, v)
	}
	ns, err := strconv.ParseInt(v.Array[0].Str, 10, 64)
	if err != nil {
		return ttkv.Version{}, fmt.Errorf("%w: bad version time %q", ErrProtocol, v.Array[0].Str)
	}
	return ttkv.Version{
		Time:    time.Unix(0, ns).UTC(),
		Deleted: v.Array[1].Str == "1",
		Value:   v.Array[2].Str,
	}, nil
}
